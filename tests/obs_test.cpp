// Tests for the observability subsystem (src/obs) and its integration with
// the experiment runner. The two load-bearing contracts:
//  1. With observability off, trajectories are bit-identical to a build that
//     never had the subsystem (pinned by an embedded pre-subsystem golden).
//  2. With observability on, the trajectory does not move, and every exported
//     artifact is a pure function of the cell list — byte-stable across
//     thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exp/artifacts.hpp"
#include "exp/config.hpp"
#include "exp/runner.hpp"
#include "math/stats.hpp"
#include "obs/audit.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

using namespace smiless;

namespace {

/// Hexfloat trajectory fingerprint of one executed cell: every aggregate the
/// simulator books, each end-to-end latency, and each window sample. Captured
/// from the commit *before* the observability subsystem existed, for the
/// exact config below — any drift means telemetry perturbed the simulation.
constexpr const char* kGolden = "SMIless|0x1.39079b1c9bf38p-6|0x1.8618618618618p-5|21|21|0|126|6|0|0|0|0|0x1.f9be024b9e7d6p+10|0x0p+0"
    ";0x1.9f9ceeee9389ep+1;0x1.830845a939a04p+0;0x1.747f0ff39a84p+0;0x1.6762f10012d1p+0;0x1.665113b1db8f8"
    "p+0;0x1.64187c5efb878p+0;0x1.84dac458acd5p+0;0x1.6e015aaacd85p+0;0x1.6b5793745fc2p+0;0x1.707d9d1cdd8"
    "p+0;0x1.749afc1a9ee8p+0;0x1.8390c33e4ep+0;0x1.7bac420f4304p+0;0x1.6a1b1ee1e44ep+0;0x1.871499ec11f4p+"
    "0;0x1.773a747ca988p+0;0x1.796e9f24d93ap+0;0x1.6accf98613e2p+0;0x1.6945b27fdedp+0;0x1.6d3add299608p+0"
    ";0x1.83c681a9207ap+0#0,0,0#1,6,0#0,6,0#0,6,0#1,6,0#0,6,0#0,6,0#1,6,0#0,6,0#1,6,0#0,6,0#0,6,0#1,6,0#0"
    ",6,0#0,6,0#1,6,0#0,6,0#0,6,0#1,6,0#0,6,0#0,6,0#1,6,0#0,6,0#0,6,0#0,6,0#1,6,0#0,6,0#1,6,0#0,6,0#0,6,0"
    "#1,6,0#0,6,0#1,6,0#0,6,0#0,6,0#1,6,0#0,6,0#0,6,0#1,6,0#0,6,0#0,6,0#0,6,0#1,6,0#0,6,0#0,6,0#1,6,0#0,6"
    ",0#0,6,0#0,6,0#1,6,0#0,6,0#0,6,0#0,6,0#1,6,0#0,6,0#1,6,0#0,6,0#1,6,0#0,6,0#1,6,0#0,6,0#0,6,0#0,6,0#0"
    ",6,0#0,6,0#0,6,0#0,6,0#0,6,0#0,6,0#0,6,0#0,6,0#0,6,0#0,6,0#0,3,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0"
    "#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0"
    ",0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0"
    ",0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0"
    "#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0"
    ",0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0"
    ",0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0#0,0,0";

exp::ExperimentConfig golden_config() {
  exp::ExperimentConfig config;
  config.app = "wl1";
  config.policy = "smiless";
  config.use_lstm = false;
  config.seed = 5;
  config.trace.kind = "regular";
  config.trace.interval = 3.0;
  config.trace.jitter = 0.2;
  config.trace.duration = 60.0;
  config.trace.seed = 5;
  config.faults.init_failure_prob = 0.05;
  config.platform.request_timeout = 45.0;
  config.platform.max_retries = 2;
  return config;
}

std::string summarize(const baselines::RunResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << r.policy << '|' << r.cost << '|' << r.violation_ratio << '|' << r.submitted << '|'
     << r.completed << '|' << r.failed << '|' << r.invocations << '|' << r.initializations
     << '|' << r.init_failures << '|' << r.evictions << '|' << r.retries << '|' << r.timeouts
     << '|' << r.cpu_core_seconds << '|' << r.gpu_pct_seconds;
  for (const double e : r.e2e) os << ';' << e;
  for (const auto& w : r.windows)
    os << '#' << w.arrivals << ',' << w.instances_cpu << ',' << w.instances_gpu;
  return os.str();
}

exp::CellResult run_golden(bool with_obs) {
  auto config = golden_config();
  // Any non-empty artifact path attaches a Telemetry; nothing is written
  // unless write_artifacts is called, which these tests never do.
  if (with_obs) config.obs.audit_out = "(in-memory)";
  exp::Runner runner({/*threads=*/1, /*policy_threads=*/2});
  return exp::Runner::run_cell(config, runner.profiles(config.profile_seed),
                               runner.policy_pool());
}

}  // namespace

TEST(ObsGolden, DisabledRunIsBitIdenticalToPreSubsystemBuild) {
  const auto cell = run_golden(/*with_obs=*/false);
  EXPECT_EQ(cell.telemetry, nullptr);
  EXPECT_EQ(summarize(cell.result), kGolden);
}

TEST(ObsGolden, EnabledRunLeavesTrajectoryUntouched) {
  const auto cell = run_golden(/*with_obs=*/true);
  ASSERT_NE(cell.telemetry, nullptr);
  EXPECT_FALSE(cell.telemetry->bus().events().empty());
  EXPECT_EQ(summarize(cell.result), kGolden);
}

TEST(ObsEvents, StreamIsOrderedBySimTimeAndMatchesTheBooks) {
  const auto cell = run_golden(/*with_obs=*/true);
  const auto& events = cell.telemetry->bus().events();
  ASSERT_FALSE(events.empty());

  double last = -1.0;
  std::map<obs::EventType, int> by_type;
  for (const auto& e : events) {
    EXPECT_GE(e.t, last) << "event stream must be nondecreasing in sim time";
    last = e.t;
    ++by_type[e.type];
  }

  const auto& r = cell.result;
  EXPECT_EQ(by_type[obs::EventType::RequestSubmitted], r.submitted);
  EXPECT_EQ(by_type[obs::EventType::RequestCompleted], r.completed);
  EXPECT_EQ(by_type[obs::EventType::RequestFailed], r.failed);
  EXPECT_EQ(by_type[obs::EventType::InvocationDone], r.invocations);
  EXPECT_EQ(by_type[obs::EventType::InstanceCreated], r.initializations);
  EXPECT_EQ(by_type[obs::EventType::InstanceInitFailed], r.init_failures);
  EXPECT_EQ(by_type[obs::EventType::InstanceEvicted], r.evictions);
  EXPECT_EQ(by_type[obs::EventType::TimeoutFired], r.timeouts);
  // Every created instance eventually leaves one way or another.
  EXPECT_EQ(by_type[obs::EventType::InstanceCreated],
            by_type[obs::EventType::InstanceTerminated] +
                by_type[obs::EventType::InstanceEvicted] +
                by_type[obs::EventType::InstanceInitFailed]);
}

TEST(ObsMetrics, RegistryAgreesWithSimulatorBooks) {
  const auto cell = run_golden(/*with_obs=*/true);
  const auto& reg = cell.telemetry->registry();
  const auto& r = cell.result;

  EXPECT_EQ(reg.counter("events/request_submitted"),
            static_cast<std::uint64_t>(r.submitted));
  EXPECT_EQ(reg.counter("events/request_completed"),
            static_cast<std::uint64_t>(r.completed));
  EXPECT_EQ(reg.counter("events/invocation_done"),
            static_cast<std::uint64_t>(r.invocations));
  EXPECT_GT(reg.counter("engine/events_fired"), 0u);
  EXPECT_GE(reg.counter("engine/events_scheduled"), reg.counter("engine/events_fired"));

  const obs::Histogram* e2e = reg.histogram("e2e/WL1-AMBER-Alert");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->count(), static_cast<std::uint64_t>(r.e2e.size()));
  // The histogram quantile is a bucket upper bound clamped to [min, max]:
  // never below the exact nearest-rank sample value, and at most one
  // log-scale bucket (10^(1/8)) above it.
  constexpr double kBucketRatio = 1.3335214321633240;  // 10^(1/8)
  for (const double p : {50.0, 90.0, 95.0, 99.0}) {
    const double exact = math::quantile_nearest_rank(r.e2e, p);
    const double binned = e2e->quantile(p);
    EXPECT_GE(binned, exact - 1e-12) << "p" << p;
    EXPECT_LE(binned, exact * kBucketRatio + 1e-12) << "p" << p;
  }
}

TEST(ObsHistogram, QuantileContract) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile(50), 0.0);  // empty
  h.add(0.5);
  // A single sample: every quantile clamps to the one observed value.
  EXPECT_DOUBLE_EQ(h.quantile(0), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(50), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(100), 0.5);
  // Values below the tracked range land in the underflow bucket and report
  // the observed minimum, not a negative bound.
  obs::Histogram tiny;
  tiny.add(1e-7);
  EXPECT_DOUBLE_EQ(tiny.quantile(50), 1e-7);
}

TEST(ObsHistogram, MergeIsAssociativeAndOrderIndependent) {
  // Deterministic pseudo-random samples spanning several decades.
  std::vector<double> values;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 300; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(1e-3 * static_cast<double>(1 + x % 100000));
  }

  obs::Histogram whole;
  for (const double v : values) whole.add(v);

  obs::Histogram a, b, c;
  for (std::size_t i = 0; i < values.size(); ++i)
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(values[i]);

  obs::Histogram ab = a;
  ab.merge(b);
  obs::Histogram ab_c = ab;
  ab_c.merge(c);

  obs::Histogram bc = b;
  bc.merge(c);
  obs::Histogram a_bc = a;
  a_bc.merge(bc);

  // Bucket counts, extrema and every quantile are exactly associative and
  // independent of how (and in what order) the samples were sharded. The
  // running sum is floating-point addition, so it is only near-associative.
  for (const obs::Histogram* h : {&ab_c, &a_bc}) {
    EXPECT_EQ(h->count(), values.size());
    EXPECT_DOUBLE_EQ(h->min(), whole.min());
    EXPECT_DOUBLE_EQ(h->max(), whole.max());
    EXPECT_NEAR(h->sum(), whole.sum(), 1e-9 * whole.sum());
    for (const double p : {0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0})
      EXPECT_DOUBLE_EQ(h->quantile(p), whole.quantile(p)) << "p" << p;
    EXPECT_EQ(h->to_json()["buckets"].dump(), whole.to_json()["buckets"].dump());
  }
}

TEST(ObsAudit, DecisionLogRoundTripsAndProfilesSolver) {
  const auto cell = run_golden(/*with_obs=*/true);
  const auto& audit = cell.telemetry->audit();
  ASSERT_GE(audit.records().size(), 1u);
  EXPECT_EQ(audit.records().front().kind, "reoptimize");
  EXPECT_EQ(audit.records().front().policy, "SMIless");
  EXPECT_FALSE(audit.records().front().chosen.empty());
  // The self-profiling aggregate saw every solver call.
  EXPECT_GE(audit.solver_calls(), 1u);
  EXPECT_GT(audit.total_solver_seconds(), 0.0);

  const json::Value j = audit.to_json();
  const auto back = obs::AuditLog::from_json(json::Value::parse(j.dump()));
  EXPECT_EQ(back.to_json().dump(), j.dump());
  ASSERT_EQ(back.records().size(), audit.records().size());
  // Solver wall time is deliberately not serialized (nondeterministic).
  EXPECT_EQ(back.records().front().solver_seconds, 0.0);
}

TEST(ObsPerfetto, ExportIsValidJsonWithDisjointSpansPerTrack) {
  const auto cell = run_golden(/*with_obs=*/true);
  const json::Value trace = cell.telemetry->perfetto_json(0, "golden");
  ASSERT_TRUE(trace.is_array());
  ASSERT_FALSE(trace.items().empty());

  // Round-trips through the parser: the export is well-formed JSON.
  const json::Value parsed = json::Value::parse(trace.dump(2));
  ASSERT_EQ(parsed.items().size(), trace.items().size());

  bool seen_non_meta = false;
  std::map<std::pair<long long, long long>, std::vector<std::pair<double, double>>> spans;
  std::map<long long, int> flow_phases;  // flow id -> bitmask of s/f seen
  for (const auto& e : parsed.items()) {
    const std::string ph = e.get("ph", std::string());
    ASSERT_FALSE(ph.empty());
    if (ph == "M") {
      // Track-naming metadata is emitted before any payload event.
      EXPECT_FALSE(seen_non_meta);
      continue;
    }
    seen_non_meta = true;
    EXPECT_GE(e.get("ts", -1.0), 0.0);
    if (ph == "X") {
      EXPECT_GE(e.get("dur", -1.0), 0.0);
      spans[{e.get("pid", -1ll), e.get("tid", -1ll)}].emplace_back(e.get("ts", 0.0),
                                                                   e.get("dur", 0.0));
    } else if (ph == "s") {
      flow_phases[e.get("id", -1ll)] |= 1;
    } else if (ph == "f") {
      flow_phases[e.get("id", -1ll)] |= 2;
    }
  }

  // Per track: slices sorted by start must not overlap (instances run one
  // batch at a time; machines are down in disjoint windows).
  ASSERT_FALSE(spans.empty());
  for (auto& [track, xs] : spans) {
    std::sort(xs.begin(), xs.end());
    for (std::size_t i = 1; i < xs.size(); ++i)
      EXPECT_GE(xs[i].first + 1e-6, xs[i - 1].first + xs[i - 1].second)
          << "overlap on pid/tid " << track.first << "/" << track.second;
  }

  // Every request flow that starts also finishes.
  ASSERT_FALSE(flow_phases.empty());
  for (const auto& [id, mask] : flow_phases) EXPECT_EQ(mask, 3) << "flow id " << id;
}

TEST(ObsArtifacts, ByteStableAcrossThreadCounts) {
  exp::ExperimentGrid grid;
  grid.base = golden_config();
  grid.base.obs.trace_out = "(in-memory)";  // attach telemetry; nothing written
  grid.policies = {"smiless", "grandslam"};
  grid.seeds = {5, 6};

  exp::Runner serial({/*threads=*/1, /*policy_threads=*/2});
  exp::Runner parallel({/*threads=*/4, /*policy_threads=*/2});
  const auto a = serial.run(grid);
  const auto b = parallel.run(grid);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);

  EXPECT_EQ(exp::combined_trace(a).dump(), exp::combined_trace(b).dump());
  EXPECT_EQ(exp::combined_metrics(a).dump(), exp::combined_metrics(b).dump());
  EXPECT_EQ(exp::combined_audit(a).dump(), exp::combined_audit(b).dump());
  EXPECT_EQ(exp::windows_csv(a), exp::windows_csv(b));
  // Cells land in their own pid ranges, in input order.
  const auto combined = exp::combined_trace(a);
  long long max_pid = -1;
  for (const auto& e : combined.items()) max_pid = std::max(max_pid, e.get("pid", -1ll));
  EXPECT_GE(max_pid, 3 * 64);  // the 4th cell's range was used
}
