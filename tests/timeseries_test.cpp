// Windowed time-series telemetry suite (DESIGN.md §15).
//
// Contracts under test:
//  - bin semantics: right-inclusive fixed-cadence bins on sim time, gauges
//    snapshotted at close, time-weighted utilization split at boundaries;
//  - the exported series is byte-identical across lane counts and lane
//    thread counts (the merge_lanes republish keeps it merge-associative);
//  - the series cadence and artifact paths round-trip through the
//    ExperimentConfig JSON;
//  - the HTML serving report is structurally sound: standalone document,
//    embedded JSON island that parses back, no network fetches.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "exp/config.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeseries.hpp"

using namespace smiless;

namespace {

obs::Event ev(obs::EventType type, double t) {
  obs::Event e;
  e.type = type;
  e.t = t;
  e.app = 0;
  e.node = 0;
  e.request = 0;
  return e;
}

TEST(TimeSeries, BinsAreRightInclusiveOnTheCadenceGrid) {
  obs::TimeSeries s;
  s.enable(1.0);
  // An arrival at exactly t = 1.0 belongs to bin 1 ((0, 1]), not bin 2.
  s.on_event(ev(obs::EventType::RequestSubmitted, 1.0));
  auto e2 = ev(obs::EventType::RequestSubmitted, 1.5);
  e2.request = 1;
  s.on_event(e2);
  s.finalize(2.0);

  json::Value doc = s.to_json({});
  ASSERT_EQ(doc.get("bins", 0LL), 2LL);
  const auto& arrivals = doc["arrivals"].items();
  EXPECT_EQ(arrivals[0].as_double(), 1.0);
  EXPECT_EQ(arrivals[1].as_double(), 1.0);
}

TEST(TimeSeries, SloAttainmentUsesTheRegisteredSla) {
  obs::TimeSeries s;
  s.enable(10.0);
  s.set_app_sla(0, 2.0);
  s.on_event(ev(obs::EventType::RequestSubmitted, 0.5));
  auto done = ev(obs::EventType::RequestCompleted, 1.5);
  done.t2 = 0.5;  // e2e = 1.0 <= SLA
  s.on_event(done);

  auto late_sub = ev(obs::EventType::RequestSubmitted, 2.0);
  late_sub.request = 1;
  s.on_event(late_sub);
  auto late = ev(obs::EventType::RequestCompleted, 7.0);
  late.request = 1;
  late.t2 = 2.0;  // e2e = 5.0 > SLA
  s.on_event(late);
  s.finalize(10.0);

  json::Value doc = s.to_json({});
  ASSERT_EQ(doc.get("bins", 0LL), 1LL);
  EXPECT_DOUBLE_EQ(doc["slo_attainment"].items()[0].as_double(), 0.5);
  EXPECT_EQ(doc["completions"].items()[0].as_double(), 2.0);
}

exp::ExperimentConfig series_cell(int lanes) {
  exp::ExperimentConfig c;
  c.app = "wl1";
  c.policy = "orion";
  c.seed = 42;
  c.trace.seed = 42;
  c.trace.duration = 90.0;
  c.lanes = lanes;
  c.obs.series_out = "unused.json";  // enables the series; nothing written
  c.obs.series_cadence = 2.0;
  return c;
}

exp::Runner& runner() {
  static exp::Runner r(exp::RunnerOptions{});
  return r;
}

/// The acceptance bar: the exported series must be byte-identical across
/// lane counts K in {1, 2, 4, 8} and lane thread counts — the merge_lanes
/// republish makes per-lane collection associative.
TEST(TimeSeries, SeriesIsByteIdenticalAcrossLanesAndLaneThreads) {
  const auto& store = runner().profiles(2024);
  const exp::CellResult base =
      exp::Runner::run_cell(series_cell(1), store, runner().policy_pool());
  ASSERT_NE(base.telemetry, nullptr);
  ASSERT_TRUE(base.telemetry->series_enabled());
  const std::string golden = base.telemetry->series_json().dump();
  EXPECT_FALSE(golden.empty());

  for (const int k : {2, 4, 8}) {
    for (const int lane_threads : {1, 2, 4}) {
      SCOPED_TRACE("lanes=" + std::to_string(k) +
                   " lane_threads=" + std::to_string(lane_threads));
      const exp::CellResult sharded =
          exp::Runner::run_cell(series_cell(k), store, runner().policy_pool(), lane_threads);
      ASSERT_NE(sharded.telemetry, nullptr);
      EXPECT_EQ(golden, sharded.telemetry->series_json().dump());
    }
  }
}

TEST(TimeSeries, CadenceRoundTripsThroughExperimentConfigJson) {
  exp::ExperimentConfig c;
  c.obs.series_out = "series.json";
  c.obs.report_out = "report.html";
  c.obs.profile_out = "profile.json";
  c.obs.series_cadence = 7.5;
  c.obs.internal_stats = true;

  const exp::ExperimentConfig back = exp::ExperimentConfig::from_json(c.to_json());
  EXPECT_EQ(back.obs.series_out, "series.json");
  EXPECT_EQ(back.obs.report_out, "report.html");
  EXPECT_EQ(back.obs.profile_out, "profile.json");
  EXPECT_EQ(back.obs.series_cadence, 7.5);
  EXPECT_TRUE(back.obs.internal_stats);
  EXPECT_TRUE(back.obs.collect());
  EXPECT_TRUE(back.obs.profile());

  // Defaults must survive a config written before these fields existed.
  const exp::ExperimentConfig blank =
      exp::ExperimentConfig::from_json(exp::ExperimentConfig{}.to_json());
  EXPECT_EQ(blank.obs.series_cadence, 1.0);
  EXPECT_FALSE(blank.obs.internal_stats);
  EXPECT_FALSE(blank.obs.profile());

  // The new knobs never split aggregation groups: obs is excluded wholesale.
  exp::ExperimentConfig other = c;
  other.obs.series_cadence = 0.25;
  other.obs.report_out = "elsewhere.html";
  EXPECT_EQ(c.group_key(), other.group_key());
}

/// Structural golden for the HTML report: shape, not bytes (the profiler
/// section is wall-clock data).
TEST(TimeSeries, HtmlReportIsSelfContainedAndParsesBack) {
  const auto& store = runner().profiles(2024);
  auto config = series_cell(1);
  config.obs.report_out = "unused.html";  // turns the profiler on too
  const exp::CellResult cell =
      exp::Runner::run_cell(config, store, runner().policy_pool());
  ASSERT_NE(cell.profile, nullptr);

  const json::Value payload = exp::report_payload({cell}, "test report");
  const std::string html = exp::render_report(payload);

  EXPECT_EQ(html.rfind("<!doctype html>", 0), 0u);
  EXPECT_NE(html.find("<script type=\"application/json\" id=\"data\">"), std::string::npos);
  EXPECT_NE(html.find("</body>"), std::string::npos);

  // Self-contained: no external fetches. The SVG namespace URI is an
  // identifier, not a request, and is the only http occurrence allowed.
  std::string stripped = html;
  for (std::string::size_type pos;
       (pos = stripped.find("http://www.w3.org/2000/svg")) != std::string::npos;)
    stripped.erase(pos, std::strlen("http://www.w3.org/2000/svg"));
  EXPECT_EQ(stripped.find("http://"), std::string::npos);
  EXPECT_EQ(stripped.find("https://"), std::string::npos);
  EXPECT_EQ(stripped.find("<link"), std::string::npos);
  EXPECT_EQ(stripped.find("src="), std::string::npos);

  // The data island must parse back to the payload (modulo the </ escape).
  const std::string open = "<script type=\"application/json\" id=\"data\">";
  const auto a = html.find(open) + open.size();
  const auto b = html.find("</script>", a);
  ASSERT_NE(b, std::string::npos);
  std::string island = html.substr(a, b - a);
  for (std::string::size_type pos; (pos = island.find("<\\/")) != std::string::npos;)
    island.replace(pos, 3, "</");
  json::Value parsed = json::Value::parse(island);
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.get("title", ""), "test report");
  const auto& cells = parsed["cells"].items();
  ASSERT_EQ(cells.size(), 1u);
  const json::Value* series = cells[0].find("series");
  const json::Value* profile = cells[0].find("profile");
  ASSERT_NE(series, nullptr);
  ASSERT_NE(profile, nullptr);
  EXPECT_TRUE(series->is_object());
  EXPECT_TRUE(profile->is_object());
  EXPECT_GE(profile->get("coverage", 0.0), 0.9);
  EXPECT_EQ(series->get("cadence", 0.0), 2.0);
}

}  // namespace
