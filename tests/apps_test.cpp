#include <gtest/gtest.h>

#include <memory>

#include "apps/catalog.hpp"
#include "apps/serialize.hpp"
#include "baselines/experiment.hpp"
#include "core/workflow_manager.hpp"

namespace smiless::apps {
namespace {

TEST(Ipa, MatchesFig1Topology) {
  const auto app = make_ipa();
  EXPECT_EQ(app.dag.size(), 4u);
  // Two independent entry modules (language understanding + image
  // recognition) feeding QA, then TTS.
  EXPECT_EQ(app.dag.sources().size(), 2u);
  EXPECT_EQ(app.dag.sinks().size(), 1u);
  EXPECT_EQ(app.dag.all_paths().size(), 2u);
}

TEST(Ipa, ServesRequestsWithMultipleSources) {
  // A multi-source DAG triggers *all* sources per request; the request
  // completes only after the join ran once.
  Rng srng(71);
  baselines::ProfileStore store{profiler::OfflineProfiler{}, srng};
  const auto app = make_ipa();
  Rng trng(72);
  workload::TraceOptions o;
  o.duration = 90.0;
  const auto trace = workload::generate_trace(o, trng);
  baselines::PolicySettings s;
  s.use_lstm = false;
  baselines::ExperimentOptions eo;
  eo.drain_slack = 60.0;
  const auto r = baselines::run_experiment(
      app, trace, baselines::make_policy(baselines::PolicyKind::Smiless, app, store, s), eo);
  EXPECT_EQ(r.completed, r.submitted);
  // QA executed exactly once per request, not once per source.
  const auto qa = app.dag.find("QA");
  ASSERT_GE(qa, 0);
  EXPECT_EQ(r.invocations, 4 * r.submitted);
}

TEST(Ipa, ManifestRoundTrip) {
  const auto app = make_ipa(3.0);
  const auto parsed = parse_app(to_manifest(app));
  EXPECT_EQ(parsed.dag.all_paths().size(), app.dag.all_paths().size());
  EXPECT_DOUBLE_EQ(parsed.sla, 3.0);
}

TEST(SyntheticFanout, StructureMatchesParameters) {
  const auto app = make_synthetic_fanout(3, 2, 5.0);
  // Nodes: start + per stage (width branches + join) = 1 + 2*(3+1) = 9.
  EXPECT_EQ(app.dag.size(), 9u);
  // Paths multiply: width^depth.
  EXPECT_EQ(app.dag.all_paths().size(), 9u);
  EXPECT_EQ(app.dag.sources().size(), 1u);
  EXPECT_EQ(app.dag.sinks().size(), 1u);
  // At least the two per-stage fork/join substructures (transitive pairs —
  // start fork to final join — are also reported); smallest-first ordering
  // puts the per-stage ones in front.
  const auto fj = app.dag.fork_join_pairs();
  ASSERT_GE(fj.size(), 2u);
  EXPECT_EQ(fj[0].interior_size(), 3u);
  EXPECT_EQ(fj[1].interior_size(), 3u);
}

TEST(SyntheticFanout, WorkflowManagerSolvesWideDags) {
  core::WorkflowManager wm{core::StrategyOptimizer{}};
  for (std::size_t width : {2u, 3u, 4u}) {
    const auto app = make_synthetic_fanout(width, 2, 4.0);
    const auto sol = wm.optimize(app.dag, app.truth, 2.0, app.sla);
    EXPECT_TRUE(sol.feasible) << width;
    EXPECT_LE(sol.e2e_latency, app.sla) << width;
    // Branch functions within a stage share their start offset. Only the
    // per-stage pairs have single-node branches; skip the transitive
    // (start fork -> final join) pairs the detector also reports.
    for (const auto& pair : app.dag.fork_join_pairs()) {
      bool per_stage = true;
      for (const auto& branch : pair.branches)
        if (branch.size() != 1u) per_stage = false;
      if (!per_stage) continue;
      double first = -1.0;
      for (const auto& branch : pair.branches) {
        if (first < 0.0)
          first = sol.start_offset[branch[0]];
        else
          EXPECT_NEAR(sol.start_offset[branch[0]], first, 1e-9);
      }
    }
  }
}

class FanoutSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FanoutSweep, PathCountIsWidthToTheDepth) {
  const auto [width, depth] = GetParam();
  const auto app = make_synthetic_fanout(static_cast<std::size_t>(width),
                                         static_cast<std::size_t>(depth), 10.0);
  std::size_t expected = 1;
  for (int d = 0; d < depth; ++d) expected *= static_cast<std::size_t>(width);
  EXPECT_EQ(app.dag.all_paths().size(), expected);
  EXPECT_EQ(app.dag.size(), 1u + static_cast<std::size_t>(depth) *
                                     (static_cast<std::size_t>(width) + 1u));
}

INSTANTIATE_TEST_SUITE_P(Shapes, FanoutSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 3)));

TEST(Workloads, AllWorkloadsHaveDistinctComplexity) {
  const auto apps = make_all_workloads(2.0);
  ASSERT_EQ(apps.size(), 3u);
  // WL1 has more paths than WL2, which has more than WL3 (the paper's
  // "as DAG complexity increases" axis).
  EXPECT_GT(apps[0].dag.all_paths().size(), apps[1].dag.all_paths().size());
  EXPECT_GT(apps[1].dag.all_paths().size(), apps[2].dag.all_paths().size());
}

TEST(Workloads, EveryWorkloadMeetsItsSlaOnFastHardware) {
  // Feasibility invariant: on full-GPU hardware the critical path of every
  // shipped workload fits well inside the default 2 s SLA.
  for (const auto& app : make_all_workloads(2.0)) {
    std::vector<double> w(app.dag.size());
    for (std::size_t n = 0; n < app.dag.size(); ++n)
      w[n] = app.truth[n].inference_time({perf::Backend::Gpu, 0, 100}, 1);
    EXPECT_LT(app.dag.critical_path_weight(w), 0.25) << app.name;
  }
}

}  // namespace
}  // namespace smiless::apps
