// Lane-equivalence suite for intra-cell sharding (DESIGN.md §14).
//
// The contracts under test, all byte-level:
//  - run_sharded with one lane reproduces the monolithic run_colocated
//    trajectory exactly (streaming arrival injection included);
//  - a single-app cell is invariant in the lane count K (the lone populated
//    lane inherits the whole cluster and the unmixed seed), across policies,
//    seeds, and with fault injection + observability on;
//  - a multi-app sharded cell is invariant in lane_threads (parallelism is
//    wall-clock only).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/experiment.hpp"
#include "exp/config.hpp"
#include "exp/runner.hpp"
#include "obs/telemetry.hpp"
#include "serverless/sharding.hpp"
#include "workload/trace.hpp"

using namespace smiless;

namespace {

/// Field-by-field byte equality of two run outcomes.
void expect_same_result(const baselines::RunResult& a, const baselines::RunResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.violation_ratio, b.violation_ratio);
  EXPECT_EQ(a.e2e, b.e2e);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.invocations, b.invocations);
  EXPECT_EQ(a.initializations, b.initializations);
  EXPECT_EQ(a.init_failures, b.init_failures);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.cpu_core_seconds, b.cpu_core_seconds);
  EXPECT_EQ(a.gpu_pct_seconds, b.gpu_pct_seconds);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].window_start, b.windows[i].window_start);
    EXPECT_EQ(a.windows[i].arrivals, b.windows[i].arrivals);
    EXPECT_EQ(a.windows[i].instances_total, b.windows[i].instances_total);
    EXPECT_EQ(a.windows[i].instances_cpu, b.windows[i].instances_cpu);
    EXPECT_EQ(a.windows[i].instances_gpu, b.windows[i].instances_gpu);
  }
}

/// Byte equality of every exported observability artifact.
void expect_same_telemetry(const obs::Telemetry& a, const obs::Telemetry& b) {
  EXPECT_EQ(a.bus().size(), b.bus().size());
  EXPECT_EQ(a.perfetto_json().dump(), b.perfetto_json().dump());
  EXPECT_EQ(a.metrics_json().dump(), b.metrics_json().dump());
  EXPECT_EQ(a.audit_json().dump(), b.audit_json().dump());
}

/// A single-app cell with faults and observability on — the full surface a
/// lane must reproduce.
exp::ExperimentConfig cell(const std::string& policy, std::uint64_t seed, int lanes) {
  exp::ExperimentConfig c;
  c.app = "wl1";
  c.policy = policy;
  c.seed = seed;
  c.trace.seed = seed;
  c.trace.duration = 120.0;
  c.lanes = lanes;
  c.faults.init_failure_prob = 0.05;
  c.faults.straggler_prob = 0.02;
  c.faults.crash_rate = 0.0005;
  c.faults.crash_horizon = 100.0;
  // Any non-empty artifact path turns collection on; run_cell never writes
  // the files itself, so the names are inert.
  c.obs.trace_out = "unused.json";
  c.obs.metrics_out = "unused.json";
  c.obs.audit_out = "unused.json";
  return c;
}

exp::Runner& runner() {
  static exp::Runner r(exp::RunnerOptions{});
  return r;
}

/// K=1 vs K in {2,4,8}, 2 policies x 2 seeds, faults + obs on. Single-app
/// cells must be invariant in K at the artifact byte level.
TEST(Sharding, SingleAppCellIsInvariantInLaneCount) {
  const auto& store = runner().profiles(2024);
  for (const std::string policy : {"smiless", "orion"}) {
    for (const std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{1337}}) {
      const exp::CellResult base =
          exp::Runner::run_cell(cell(policy, seed, 1), store, runner().policy_pool());
      ASSERT_NE(base.telemetry, nullptr);
      for (const int k : {2, 4, 8}) {
        for (const int lane_threads : {1, 2}) {
          const exp::CellResult sharded = exp::Runner::run_cell(
              cell(policy, seed, k), store, runner().policy_pool(), lane_threads);
          SCOPED_TRACE(policy + " seed=" + std::to_string(seed) +
                       " lanes=" + std::to_string(k) +
                       " lane_threads=" + std::to_string(lane_threads));
          expect_same_result(base.result, sharded.result);
          ASSERT_NE(sharded.telemetry, nullptr);
          expect_same_telemetry(*base.telemetry, *sharded.telemetry);
        }
      }
    }
  }
}

/// The multi-app fixture: three preset apps under cheap baseline policies.
struct Deployment {
  std::vector<apps::App> apps;
  std::vector<workload::Trace> traces;

  explicit Deployment(double duration) {
    exp::ExperimentConfig c;
    c.trace.duration = duration;
    for (const char* name : {"wl1", "wl2", "wl3", "ipa"}) {
      c.app = name;
      apps.push_back(exp::resolve_app(c));
      traces.push_back(exp::build_trace(c, apps.back()));
    }
  }

  std::vector<baselines::ColocatedApp> colocated(const baselines::ProfileStore& store) const {
    std::vector<baselines::ColocatedApp> out;
    for (std::size_t i = 0; i < apps.size(); ++i) {
      baselines::PolicySettings settings;
      settings.pool = runner().policy_pool();
      out.push_back({apps[i], &traces[i],
                     baselines::make_policy(i % 2 == 0 ? baselines::PolicyKind::Orion
                                                       : baselines::PolicyKind::GrandSlam,
                                            apps[i], store, settings)});
    }
    return out;
  }
};

baselines::ExperimentOptions sharded_options(obs::Telemetry* tel, int lanes,
                                             int lane_threads) {
  baselines::ExperimentOptions o;
  o.seed = 7;
  o.lanes = lanes;
  o.lane_threads = lane_threads;
  o.faults.init_failure_prob = 0.03;
  o.faults.straggler_prob = 0.01;
  o.telemetry = tel;
  return o;
}

/// run_sharded with a single lane must replay run_colocated byte-for-byte —
/// this is what licenses the lanes>1 dispatch inside run_colocated.
TEST(Sharding, SingleLaneReproducesMonolithicColocatedRun) {
  const auto& store = runner().profiles(2024);
  const Deployment dep(90.0);

  obs::Telemetry mono_tel;
  const auto mono =
      baselines::run_colocated(dep.colocated(store), sharded_options(&mono_tel, 1, 0));

  obs::Telemetry lane_tel;
  const auto sharded =
      baselines::run_sharded(dep.colocated(store), sharded_options(&lane_tel, 1, 0));

  ASSERT_EQ(mono.size(), sharded.size());
  for (std::size_t i = 0; i < mono.size(); ++i) {
    SCOPED_TRACE("app " + mono[i].app);
    expect_same_result(mono[i], sharded[i]);
  }
  expect_same_telemetry(mono_tel, lane_tel);
}

/// A genuinely partitioned cell (4 apps over 4 lanes) must not care how many
/// threads step the lanes.
TEST(Sharding, MultiAppShardIsInvariantInLaneThreads) {
  const auto& store = runner().profiles(2024);
  const Deployment dep(90.0);

  obs::Telemetry serial_tel;
  const auto serial =
      baselines::run_sharded(dep.colocated(store), sharded_options(&serial_tel, 4, 1));

  for (const int lane_threads : {2, 4}) {
    obs::Telemetry tel;
    const auto parallel =
        baselines::run_sharded(dep.colocated(store), sharded_options(&tel, 4, lane_threads));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("lane_threads=" + std::to_string(lane_threads) + " app " + serial[i].app);
      expect_same_result(serial[i], parallel[i]);
    }
    expect_same_telemetry(serial_tel, tel);
  }
}

/// The partition itself is a pure function: stable across calls, total over
/// lanes, identity-friendly for K=1.
TEST(Sharding, PartitionIsStableAndTotal) {
  for (std::size_t g = 0; g < 64; ++g) {
    EXPECT_EQ(serverless::ShardedPlatform::lane_for(g, 1), 0);
    for (const int k : {2, 4, 8}) {
      const int lane = serverless::ShardedPlatform::lane_for(g, k);
      EXPECT_GE(lane, 0);
      EXPECT_LT(lane, k);
      EXPECT_EQ(lane, serverless::ShardedPlatform::lane_for(g, k));
    }
  }
}

}  // namespace
