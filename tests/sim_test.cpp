#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace smiless::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SimultaneousEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(1.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine e;
  double seen = -1.0;
  e.schedule_at(5.5, [&] { seen = e.now(); });
  e.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, RunUntilLeavesFutureEventsPending) {
  Engine e;
  bool fired = false;
  e.schedule_at(5.0, [&] { fired = true; });
  e.run_until(4.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending(), 1u);
  e.run_until(6.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // second cancel is a no-op
  e.run_until(2.0);
  EXPECT_FALSE(fired);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  double seen = -1.0;
  e.schedule_at(2.0, [&] {
    e.schedule_after(3.0, [&] { seen = e.now(); });
  });
  e.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Engine, EventsCanScheduleAtCurrentTime) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] {
    ++count;
    e.schedule_at(e.now(), [&] { ++count; });
  });
  e.run_until(2.0);
  EXPECT_EQ(count, 2);
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run_until(5.0);
  EXPECT_THROW(e.schedule_at(4.0, [] {}), CheckError);
}

TEST(Engine, CascadedEventChains) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) e.schedule_after(0.5, chain);
  };
  e.schedule_at(0.0, chain);
  e.run_until(100.0);
  EXPECT_EQ(depth, 100);
}

TEST(Engine, PendingCountTracksCancellations) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

class RandomEventSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomEventSweep, EventsAlwaysFireInNonDecreasingTimeOrder) {
  // Property: whatever the scheduling pattern (including events scheduled
  // from inside events and random cancellations), observed firing times are
  // non-decreasing and every non-cancelled event fires exactly once.
  Rng rng(GetParam());
  Engine e;
  std::vector<double> fired;
  std::vector<EventId> cancellable;
  int scheduled = 0;
  std::function<void(double)> spawn = [&](double t) {
    fired.push_back(t);
    if (scheduled < 200) {
      const double next = t + rng.uniform(0.0, 3.0);
      ++scheduled;
      e.schedule_at(next, [&, next] { spawn(next); });
      if (rng.bernoulli(0.3)) {
        ++scheduled;
        cancellable.push_back(e.schedule_at(t + rng.uniform(0.0, 5.0), [&] {
          fired.push_back(e.now());
        }));
      }
      if (!cancellable.empty() && rng.bernoulli(0.4)) {
        e.cancel(cancellable.back());
        cancellable.pop_back();
      }
    }
  };
  e.schedule_at(0.0, [&] { spawn(0.0); });
  e.run_until(1e6);
  ASSERT_GT(fired.size(), 100u);
  for (std::size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEventSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace smiless::sim
