#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "sim/driver.hpp"
#include "sim/engine.hpp"

namespace smiless::sim {
namespace {

class NextTime : public ::testing::TestWithParam<Engine::QueueImpl> {};

TEST_P(NextTime, PeeksTheEarliestLiveEventWithoutPopping) {
  Engine e(GetParam());
  EXPECT_TRUE(std::isinf(e.next_time()));
  e.schedule_at(3.0, [] {});
  const EventId first = e.schedule_at(1.0, [] {});
  EXPECT_DOUBLE_EQ(e.next_time(), 1.0);
  EXPECT_DOUBLE_EQ(e.next_time(), 1.0);  // peek is repeatable
  EXPECT_EQ(e.pending(), 2u);            // nothing was popped

  // Cancelling the head reclaims the tombstone; the peek moves on.
  EXPECT_TRUE(e.cancel(first));
  EXPECT_DOUBLE_EQ(e.next_time(), 3.0);
  e.run_until(5.0);
  EXPECT_TRUE(std::isinf(e.next_time()));
}

INSTANTIATE_TEST_SUITE_P(BothQueues, NextTime,
                         ::testing::Values(Engine::QueueImpl::Calendar,
                                           Engine::QueueImpl::BinaryHeap));

TEST(DesDriver, DriveIsRunUntil) {
  // The DES driver must reproduce the pre-seam pump exactly: same firing
  // order, same final clock.
  std::vector<double> via_engine;
  std::vector<double> via_driver;
  for (int mode = 0; mode < 2; ++mode) {
    Engine e;
    auto& fired = mode == 0 ? via_engine : via_driver;
    for (double t : {2.0, 1.0, 1.0, 4.5}) e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
    if (mode == 0) {
      e.run_until(10.0);
    } else {
      DesDriver des;
      des.drive(e, nullptr, 10.0);
    }
    EXPECT_DOUBLE_EQ(e.now(), 10.0);
  }
  EXPECT_EQ(via_engine, via_driver);
}

TEST(ImmediateClock, NeverDelaysOrInterrupts) {
  ImmediateClock clock;
  clock.start(0.0);  // default start is a no-op
  EXPECT_TRUE(clock.wait_until(0.0));
  EXPECT_TRUE(clock.wait_until(1e12));
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SimultaneousEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(1.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine e;
  double seen = -1.0;
  e.schedule_at(5.5, [&] { seen = e.now(); });
  e.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, RunUntilLeavesFutureEventsPending) {
  Engine e;
  bool fired = false;
  e.schedule_at(5.0, [&] { fired = true; });
  e.run_until(4.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending(), 1u);
  e.run_until(6.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // second cancel is a no-op
  e.run_until(2.0);
  EXPECT_FALSE(fired);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  double seen = -1.0;
  e.schedule_at(2.0, [&] {
    e.schedule_after(3.0, [&] { seen = e.now(); });
  });
  e.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Engine, EventsCanScheduleAtCurrentTime) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] {
    ++count;
    e.schedule_at(e.now(), [&] { ++count; });
  });
  e.run_until(2.0);
  EXPECT_EQ(count, 2);
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run_until(5.0);
  EXPECT_THROW(e.schedule_at(4.0, [] {}), CheckError);
}

TEST(Engine, CascadedEventChains) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) e.schedule_after(0.5, chain);
  };
  e.schedule_at(0.0, chain);
  e.run_until(100.0);
  EXPECT_EQ(depth, 100);
}

TEST(Engine, PendingCountTracksCancellations) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, FifoHoldsAcrossBucketResizes) {
  // Enough events to force the calendar's bucket array through several
  // growth resizes, with two big same-timestamp cohorts interleaved at
  // schedule time: each cohort must still fire in its schedule order.
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 600; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
    e.schedule_at(2.0, [&order, i] { order.push_back(600 + i); });
  }
  e.run();
  ASSERT_EQ(order.size(), 1200u);
  for (int i = 0; i < 1200; ++i) ASSERT_EQ(order[i], i);
}

TEST(Engine, RunUntilOnEmptyQueueStillAdvancesClock) {
  Engine e;
  e.run_until(7.25);
  EXPECT_DOUBLE_EQ(e.now(), 7.25);
  e.schedule_at(8.0, [] {});
  e.run_until(20.0);  // drains early at t=8, clock must still land on end
  EXPECT_DOUBLE_EQ(e.now(), 20.0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, TombstonedEventsNeverFireNorCountAsPending) {
  Engine e;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i)
    ids.push_back(e.schedule_at(1.0, [&] { ++fired; }));
  for (int i = 0; i < 10; i += 2) EXPECT_TRUE(e.cancel(ids[static_cast<std::size_t>(i)]));
  EXPECT_EQ(e.pending(), 5u);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.stats().fired, 5u);
  EXPECT_EQ(e.stats().cancelled, 5u);
}

TEST(Engine, RejectsNegativeDelay) {
  Engine e;
  EXPECT_THROW(e.schedule_after(-0.5, [] {}), CheckError);
}

TEST(Engine, StatsCountScheduledFiredCancelled) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  e.schedule_at(3.0, [] {});
  e.cancel(a);
  e.run();
  EXPECT_EQ(e.stats().scheduled, 3u);
  EXPECT_EQ(e.stats().fired, 2u);
  EXPECT_EQ(e.stats().cancelled, 1u);
}

class RandomEventSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomEventSweep, EventsAlwaysFireInNonDecreasingTimeOrder) {
  // Property: whatever the scheduling pattern (including events scheduled
  // from inside events and random cancellations), observed firing times are
  // non-decreasing and every non-cancelled event fires exactly once.
  Rng rng(GetParam());
  Engine e;
  std::vector<double> fired;
  std::vector<EventId> cancellable;
  int scheduled = 0;
  std::function<void(double)> spawn = [&](double t) {
    fired.push_back(t);
    if (scheduled < 200) {
      const double next = t + rng.uniform(0.0, 3.0);
      ++scheduled;
      e.schedule_at(next, [&, next] { spawn(next); });
      if (rng.bernoulli(0.3)) {
        ++scheduled;
        cancellable.push_back(e.schedule_at(t + rng.uniform(0.0, 5.0), [&] {
          fired.push_back(e.now());
        }));
      }
      if (!cancellable.empty() && rng.bernoulli(0.4)) {
        e.cancel(cancellable.back());
        cancellable.pop_back();
      }
    }
  };
  e.schedule_at(0.0, [&] { spawn(0.0); });
  e.run_until(1e6);
  ASSERT_GT(fired.size(), 100u);
  for (std::size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEventSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace smiless::sim
