#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "common/rng.hpp"
#include "profiler/offline_profiler.hpp"

namespace smiless::profiler {
namespace {

TEST(FitAmdahl, RecoversNoiseFreeSurface) {
  perf::AmdahlParams truth{1.0, 0.9, 0.02, 0.01};
  std::vector<LatencySample> samples;
  for (int cores : {1, 2, 4, 8, 16})
    for (int b : {1, 2, 4, 8})
      samples.push_back({{perf::Backend::Cpu, cores, 0}, b,
                         truth.inference_time(cores, b)});
  const auto fitted = fit_amdahl(samples);
  for (int cores : {1, 3, 16})
    for (int b : {1, 5})
      EXPECT_NEAR(fitted.inference_time(cores, b), truth.inference_time(cores, b), 1e-9);
}

TEST(FitAmdahl, RequiresThreeSamples) {
  std::vector<LatencySample> two{{{perf::Backend::Cpu, 1, 0}, 1, 1.0},
                                 {{perf::Backend::Cpu, 2, 0}, 1, 0.6}};
  EXPECT_THROW(fit_amdahl(two), CheckError);
}

TEST(Profiler, SampleBudgetMatchesPaper) {
  // 5x5 = 25 CPU samples; 10x5 = 50 GPU samples (§VII-C1).
  ProfilerOptions o;
  OfflineProfiler p(o);
  Rng rng(1);
  const auto r = p.profile(apps::model_by_name("IR"), rng);
  EXPECT_EQ(r.cpu_samples.size(), 25u);
  EXPECT_EQ(r.gpu_samples.size(), 50u);
}

TEST(Profiler, FittedModelPredictsHeldOutConfigs) {
  OfflineProfiler p;
  Rng rng(2);
  const auto& truth = apps::model_by_name("TRS");
  const auto r = p.profile(truth, rng);
  // Configurations outside the sampling grid still predict well.
  for (int cores : {3, 6, 12}) {
    const perf::HwConfig c{perf::Backend::Cpu, cores, 0};
    const double t = truth.inference_time(c, 1);
    EXPECT_NEAR(r.fitted.inference_time(c, 1), t, 0.15 * t);
  }
}

TEST(Profiler, SmapeWithinPaperBounds) {
  // Fig. 11b: every function under 20% SMAPE, average under 8%.
  OfflineProfiler p;
  Rng rng(3);
  double total = 0.0;
  int n = 0;
  for (const auto& fn : apps::model_catalog()) {
    const auto r = p.profile(fn, rng);
    EXPECT_LT(r.smape_cpu, 20.0) << fn.name;
    EXPECT_LT(r.smape_gpu, 20.0) << fn.name;
    total += r.smape_cpu + r.smape_gpu;
    n += 2;
  }
  EXPECT_LT(total / n, 8.0);
}

TEST(Profiler, GpuFitTighterThanCpuOnAverage) {
  // §VII-C1 observes GPU predictions are more precise because CPU runs see
  // more interference; our noise model feeds both equally, so allow a tie
  // band but verify GPU is not systematically worse.
  OfflineProfiler p;
  Rng rng(4);
  double cpu = 0.0, gpu = 0.0;
  for (const auto& fn : apps::model_catalog()) {
    const auto r = p.profile(fn, rng);
    cpu += r.smape_cpu;
    gpu += r.smape_gpu;
  }
  EXPECT_LT(gpu, cpu * 1.5);
}

TEST(Profiler, InitStatsReflectRepeats) {
  ProfilerOptions o;
  o.init_repeats = 10;
  OfflineProfiler p(o);
  Rng rng(5);
  const auto& truth = apps::model_by_name("TG");
  const auto r = p.profile(truth, rng);
  EXPECT_NEAR(r.fitted.init_cpu.mu, truth.init_cpu.mu, 3.0 * truth.init_cpu.sigma);
  EXPECT_NEAR(r.fitted.init_gpu.mu, truth.init_gpu.mu, 3.0 * truth.init_gpu.sigma);
  EXPECT_GT(r.fitted.init_cpu.sigma, 0.0);
}

TEST(Profiler, NSigmaEstimateCoversMostInits) {
  // The mu + 3sigma estimate should upper-bound the vast majority of
  // sampled initialization times (the Fig. 11a mechanism).
  OfflineProfiler p;
  Rng rng(6);
  const auto& truth = apps::model_by_name("SR");
  const auto r = p.profile(truth, rng);
  const double bound = r.fitted.init_cpu.estimate(3.0);
  Rng fresh(7);
  int covered = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i)
    if (truth.sample_init_time({perf::Backend::Cpu, 4, 0}, fresh) <= bound) ++covered;
  EXPECT_GT(covered, trials * 95 / 100);
}

TEST(Profiler, ProfileAllCoversCatalog) {
  OfflineProfiler p;
  Rng rng(8);
  const auto all = p.profile_all(apps::model_catalog(), rng);
  EXPECT_EQ(all.size(), apps::model_catalog().size());
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i].fitted.name, apps::model_catalog()[i].name);
}

TEST(RefineAmdahl, AgreesWithLinearFitOnWellConditionedGrid) {
  // The weighted linear fit is already the exact minimiser of the relative
  // residuals' linearisation; LM should stay within noise of it.
  OfflineProfiler p;
  Rng rng(9);
  const auto r = p.profile(apps::model_by_name("DB"), rng);
  const auto refined = refine_amdahl(r.cpu_samples, r.fitted.cpu);
  for (int cores : {1, 4, 16}) {
    const double a = r.fitted.cpu.inference_time(cores, 1);
    const double b = refined.inference_time(cores, 1);
    EXPECT_NEAR(a, b, 0.1 * a) << cores;
  }
}

TEST(RefineAmdahl, RecoversFromPoorInitialGuess) {
  // Noise-free samples + a deliberately bad starting point: LM must land on
  // the true surface.
  perf::AmdahlParams truth{1.0, 0.8, 0.03, 0.012};
  std::vector<LatencySample> samples;
  for (int cores : {1, 2, 4, 8, 16})
    for (int b : {1, 2, 4, 8})
      samples.push_back({{perf::Backend::Cpu, cores, 0}, b, truth.inference_time(cores, b)});
  perf::AmdahlParams bad{1.0, 0.1, 0.2, 0.1};
  const auto refined = refine_amdahl(samples, bad);
  for (int cores : {1, 3, 16})
    EXPECT_NEAR(refined.inference_time(cores, 1), truth.inference_time(cores, 1),
                0.02 * truth.inference_time(cores, 1));
}

TEST(Profiler, NonlinearRefineOptionKeepsSmapeBounds) {
  ProfilerOptions o;
  o.nonlinear_refine = true;
  OfflineProfiler p(o);
  Rng rng(10);
  const auto r = p.profile(apps::model_by_name("TRS"), rng);
  EXPECT_LT(r.smape_cpu, 20.0);
  EXPECT_LT(r.smape_gpu, 20.0);
}

}  // namespace
}  // namespace smiless::profiler
