#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/slab.hpp"

namespace smiless::common {
namespace {

struct Payload {
  std::uint64_t a = 0;
  double b = 0.0;
  explicit Payload(std::uint64_t v = 0) : a(v), b(static_cast<double>(v)) {}
};

struct alignas(64) Overaligned {
  char data[24] = {};
};

// Counts constructions/destructions so we can prove the slab runs both.
struct Counted {
  // detlint:allow(global-state) the counter under test: asserts construction/destruction balance
  static int alive;
  Counted() { ++alive; }
  ~Counted() { --alive; }
};
int Counted::alive = 0;

TEST(Slab, EverySlotMeetsTheTypesAlignment) {
  Slab<Payload> slab(4);
  for (int i = 0; i < 100; ++i) {
    Payload* p = slab.create(static_cast<std::uint64_t>(i));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(Payload), 0u);
    EXPECT_EQ(p->a, static_cast<std::uint64_t>(i));
  }
}

TEST(Slab, OveralignedTypesStayOveraligned) {
  Slab<Overaligned> slab(2);
  std::vector<Overaligned*> ptrs;
  for (int i = 0; i < 50; ++i) ptrs.push_back(slab.create());
  for (Overaligned* p : ptrs)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  for (Overaligned* p : ptrs) slab.destroy(p);
  // Reused slots keep the alignment too.
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(slab.create()) % 64, 0u);
}

TEST(Slab, FreelistReuseIsLifoAndDeterministic) {
  Slab<Payload> slab;
  Payload* a = slab.create(1u);
  Payload* b = slab.create(2u);
  Payload* c = slab.create(3u);
  slab.destroy(a);
  slab.destroy(b);
  slab.destroy(c);
  // LIFO: the most recently destroyed slot comes back first.
  EXPECT_EQ(slab.create(4u), c);
  EXPECT_EQ(slab.create(5u), b);
  EXPECT_EQ(slab.create(6u), a);
  EXPECT_EQ(slab.stats().reused, 3u);
}

TEST(Slab, GrowsGeometricallyUnderExhaustion) {
  Slab<Payload> slab(2);  // blocks of 2, 4, 8, ...
  std::vector<Payload*> ptrs;
  for (int i = 0; i < 10; ++i) ptrs.push_back(slab.create());
  EXPECT_EQ(slab.stats().blocks, 3u);  // 2 + 4 + 8 covers 10 slots
  for (int i = 0; i < 20; ++i) ptrs.push_back(slab.create());
  EXPECT_EQ(slab.stats().blocks, 4u);  // + 16: 2+4+8+16 = 30 slots exactly
  EXPECT_EQ(slab.stats().live, 30u);
  for (Payload* p : ptrs) slab.destroy(p);
  EXPECT_EQ(slab.stats().live, 0u);
  EXPECT_EQ(slab.stats().peak_live, 30u);
  // Exhausted-and-freed slots all come back before any new block is carved.
  for (int i = 0; i < 30; ++i) slab.create();
  EXPECT_EQ(slab.stats().blocks, 4u);
}

TEST(Slab, RunsConstructorsAndDestructors) {
  Slab<Counted> slab;
  Counted* x = slab.create();
  Counted* y = slab.create();
  EXPECT_EQ(Counted::alive, 2);
  slab.destroy(x);
  EXPECT_EQ(Counted::alive, 1);
  slab.destroy(y);
  EXPECT_EQ(Counted::alive, 0);
}

#if !SMILESS_SLAB_ASAN
TEST(Slab, PoisonModeFillsFreedSlots) {
  // Outside ASan the poison is a recognizable byte pattern; inspecting the
  // freed slot through the slab's own storage shows it. (Under ASan the
  // same read would — correctly — abort; see PoisonedSlotTripsAsan.)
  Slab<Payload> slab(4, /*poison=*/true);
  Payload* p = slab.create(0xABCDu);
  auto* raw = reinterpret_cast<const unsigned char*>(p);
  slab.destroy(p);
  for (std::size_t i = 0; i < sizeof(Payload); ++i)
    ASSERT_EQ(raw[i], Slab<Payload>::kPoisonByte) << "byte " << i;
}

TEST(Slab, PoisonOffLeavesSlotReusableWithoutPattern) {
  Slab<Payload> slab(4, /*poison=*/false);
  Payload* p = slab.create(7u);
  slab.destroy(p);
  Payload* q = slab.create(9u);
  EXPECT_EQ(p, q);  // LIFO reuse
  EXPECT_EQ(q->a, 9u);
}
#endif

#if SMILESS_SLAB_ASAN
TEST(SlabDeathTest, PoisonedSlotTripsAsan) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Slab<Payload> slab(4, /*poison=*/true);
        Payload* p = slab.create(1u);
        slab.destroy(p);
        volatile std::uint64_t v = p->a;  // use-after-free: must fault here
        (void)v;
      },
      "use-after-poison|AddressSanitizer");
}
#endif

TEST(Recycler, AcquireReturnsMostRecentlyReleased) {
  Recycler<std::vector<int>> rec;
  std::vector<int> a = rec.acquire();
  std::vector<int> b = rec.acquire();
  a.assign(100, 1);
  b.assign(50, 2);
  const std::size_t cap_a = a.capacity();
  rec.release(std::move(a));
  rec.release(std::move(b));
  EXPECT_EQ(rec.pooled(), 2u);
  std::vector<int> c = rec.acquire();  // LIFO: b's storage
  EXPECT_TRUE(c.empty());             // cleared on release
  EXPECT_GE(c.capacity(), 50u);       // capacity preserved
  std::vector<int> d = rec.acquire();
  EXPECT_GE(d.capacity(), cap_a);
  EXPECT_EQ(rec.stats().reused, 2u);
}

TEST(Recycler, CapBoundsThePool) {
  Recycler<std::string> rec(/*max_pooled=*/2);
  rec.release(std::string(64, 'x'));
  rec.release(std::string(64, 'y'));
  rec.release(std::string(64, 'z'));  // over the cap: dropped, not pooled
  EXPECT_EQ(rec.pooled(), 2u);
}

TEST(Recycler, StatsTrackLifetimes) {
  Recycler<std::vector<int>> rec;
  auto a = rec.acquire();
  auto b = rec.acquire();
  EXPECT_EQ(rec.stats().live, 2u);
  EXPECT_EQ(rec.stats().peak_live, 2u);
  rec.release(std::move(a));
  rec.release(std::move(b));
  EXPECT_EQ(rec.stats().live, 0u);
  EXPECT_EQ(rec.stats().created, 2u);
  EXPECT_EQ(rec.stats().destroyed, 2u);
}

}  // namespace
}  // namespace smiless::common
