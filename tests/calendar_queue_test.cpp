#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

// Differential fuzz harness for the calendar event queue: the same seeded
// episode of schedule / cancel / run_until operations is replayed against
// Engine(QueueImpl::Calendar) and Engine(QueueImpl::BinaryHeap) — the
// pre-calendar heap+map pair kept as the executable specification — and the
// two trajectories must match exactly: firing order, observed clocks,
// cancel results, pending() probes, and EngineStats. Episodes deliberately
// hit the nasty corners: same-timestamp bursts, cancel-after-fire,
// cancel-twice, schedule-during-fire, cancel-during-fire, zero-length
// run_until steps, and far-future outliers that skew the bucket width.

namespace smiless::sim {
namespace {

struct Trace {
  std::vector<double> fire_times;
  std::vector<EventId> fire_ids;
  std::vector<double> clock_probes;
  std::vector<bool> cancel_results;
  std::vector<std::size_t> pending_probes;
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::size_t final_pending = 0;
  double final_now = 0.0;

  bool operator==(const Trace&) const = default;
};

// Mostly-quantized offsets so exact timestamp collisions are common (both
// within one run_until window and across bucket boundaries); occasionally a
// continuous or far-future draw to exercise width re-tuning.
double next_offset(Rng& rng) {
  const int kind = rng.uniform_int(0, 9);
  if (kind < 6) return 0.25 * rng.uniform_int(0, 12);  // ties, incl. offset 0
  if (kind < 9) return rng.uniform(0.0, 40.0);
  return rng.uniform(1e4, 1e7);  // far-future outlier
}

Trace run_episode(Engine::QueueImpl impl, std::uint64_t seed, int max_schedules) {
  Rng rng(seed);
  Engine e(impl);
  Trace tr;
  std::vector<EventId> ids;  // every id ever issued — fired/cancelled stay in
  int budget = max_schedules;

  std::function<void(double)> schedule_one = [&](double t) {
    auto idp = std::make_shared<EventId>(0);
    *idp = e.schedule_at(t, [&, idp] {
      tr.fire_times.push_back(e.now());
      tr.fire_ids.push_back(*idp);
      if (budget > 0 && rng.bernoulli(0.4)) {  // schedule-during-fire
        --budget;
        schedule_one(e.now() + next_offset(rng));
      }
      if (!ids.empty() && rng.bernoulli(0.3)) {  // cancel-during-fire
        const EventId victim = ids[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(ids.size()) - 1))];
        tr.cancel_results.push_back(e.cancel(victim));
      }
    });
    ids.push_back(*idp);
  };

  const int steps = max_schedules * 2;
  for (int step = 0; step < steps; ++step) {
    const int op = rng.uniform_int(0, 9);
    if (op <= 4) {
      if (budget > 0) {
        --budget;
        const double t = e.now() + next_offset(rng);
        // Same-timestamp burst: a run of events at one instant.
        const int burst = rng.bernoulli(0.25) ? rng.uniform_int(2, 6) : 1;
        for (int i = 0; i < burst && budget >= 0; ++i) schedule_one(t);
      }
    } else if (op <= 6) {
      if (!ids.empty()) {
        const EventId victim = ids[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(ids.size()) - 1))];
        tr.cancel_results.push_back(e.cancel(victim));         // may be cancel-after-fire
        if (rng.bernoulli(0.3)) tr.cancel_results.push_back(e.cancel(victim));  // cancel-twice
      }
    } else if (op == 7) {
      e.run_until(e.now() + rng.uniform(0.0, 15.0));
      tr.clock_probes.push_back(e.now());
    } else if (op == 8) {
      e.run_until(e.now());  // zero-length step: drains exactly-now events only
      tr.clock_probes.push_back(e.now());
    } else {
      tr.pending_probes.push_back(e.pending());
    }
  }
  e.run();

  tr.scheduled = e.stats().scheduled;
  tr.fired = e.stats().fired;
  tr.cancelled = e.stats().cancelled;
  tr.final_pending = e.pending();
  tr.final_now = e.now();
  return tr;
}

void expect_identical(std::uint64_t seed, int max_schedules) {
  const Trace cal = run_episode(Engine::QueueImpl::Calendar, seed, max_schedules);
  const Trace ref = run_episode(Engine::QueueImpl::BinaryHeap, seed, max_schedules);
  ASSERT_EQ(cal.fire_ids, ref.fire_ids) << "seed " << seed;
  EXPECT_EQ(cal.fire_times, ref.fire_times) << "seed " << seed;
  EXPECT_EQ(cal.clock_probes, ref.clock_probes) << "seed " << seed;
  EXPECT_EQ(cal.cancel_results, ref.cancel_results) << "seed " << seed;
  EXPECT_EQ(cal.pending_probes, ref.pending_probes) << "seed " << seed;
  EXPECT_TRUE(cal == ref) << "seed " << seed;
  // Sanity on the episode itself: non-trivial and internally consistent.
  EXPECT_EQ(cal.scheduled, cal.fired + cal.cancelled + cal.final_pending) << "seed " << seed;
  EXPECT_EQ(cal.final_pending, 0u) << "run() must drain; seed " << seed;
}

// Deep episodes: a moderate number of seeds, several hundred events each.
class DifferentialDeep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialDeep, CalendarMatchesReferenceExactly) {
  expect_identical(GetParam(), 400);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialDeep,
                         ::testing::Range<std::uint64_t>(1, 25));

// Wide sweep: thousands of short episodes, sharded so sanitizer flavors can
// run them in parallel. Together the shards cover 10k+ seeded iterations.
class DifferentialWide : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialWide, ManySeededEpisodes) {
  constexpr int kShards = 8;
  constexpr int kEpisodesPerShard = 1300;  // 8 * 1300 = 10400 iterations
  const int shard = GetParam();
  for (int i = 0; i < kEpisodesPerShard; ++i) {
    const std::uint64_t seed =
        0xC0FFEEull + static_cast<std::uint64_t>(shard) * kEpisodesPerShard + i;
    expect_identical(seed, 24);
    if (HasFatalFailure()) return;
  }
  (void)kShards;
}

INSTANTIATE_TEST_SUITE_P(Shards, DifferentialWide, ::testing::Range(0, 8));

// --- Calendar-specific structural coverage ---------------------------------

const CalendarStats& cal_stats(const Engine& e) {
  const CalendarStats* s = e.calendar_stats();
  EXPECT_NE(s, nullptr);
  return *s;
}

TEST(CalendarQueue, GrowsAndShrinksAcrossLoad) {
  Engine e;  // default = calendar
  std::vector<EventId> ids;
  for (int i = 0; i < 5000; ++i)
    ids.push_back(e.schedule_at(0.001 * i, [] {}));
  EXPECT_GT(cal_stats(e).buckets, 16u);  // grew past kMinBuckets
  EXPECT_GT(cal_stats(e).resizes, 0u);
  EXPECT_EQ(cal_stats(e).peak_live, 5000u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(cal_stats(e).buckets, 16u);  // shrank back after the drain
}

TEST(CalendarQueue, SameTimestampPileFiresInScheduleOrder) {
  // A pile of identical timestamps is the calendar's worst case (one bucket
  // takes everything); the tail-append fast path must keep it linear and
  // FIFO must survive the resizes the pile forces.
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 4000; ++i)
    e.schedule_at(7.5, [&order, i] { order.push_back(i); });
  e.run();
  ASSERT_EQ(order.size(), 4000u);
  for (int i = 0; i < 4000; ++i) ASSERT_EQ(order[i], i);
}

TEST(CalendarQueue, SparseTailUsesDirectSearch) {
  Engine e;
  std::vector<double> fired;
  e.schedule_at(0.0, [&] { fired.push_back(e.now()); });
  e.schedule_at(5.0e6, [&] { fired.push_back(e.now()); });  // years of empty buckets
  e.run();
  EXPECT_EQ(fired, (std::vector<double>{0.0, 5.0e6}));
  EXPECT_GT(cal_stats(e).direct_searches, 0u);
}

TEST(CalendarQueue, FarFutureAndInfiniteTimesAreOrderedCorrectly) {
  Engine e;
  std::vector<int> order;
  const EventId inf_ev =
      e.schedule_at(std::numeric_limits<double>::infinity(), [&] { order.push_back(9); });
  e.schedule_at(1.0e18, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(e.pending(), 2u);
  EXPECT_TRUE(e.cancel(inf_ev));
  e.run_until(1.0e19);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.pending(), 0u);
}

TEST(CalendarQueue, CancelEverythingThenReuse) {
  Engine e;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(e.schedule_at(1.0 + i, [] {}));
  for (EventId id : ids) EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.pending(), 0u);
  int fired = 0;
  e.schedule_at(500.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.stats().cancelled, 200u);
}

TEST(CalendarQueue, QueueImplIsReported) {
  Engine cal;
  Engine heap(Engine::QueueImpl::BinaryHeap);
  EXPECT_EQ(cal.queue_impl(), Engine::QueueImpl::Calendar);
  EXPECT_EQ(heap.queue_impl(), Engine::QueueImpl::BinaryHeap);
  EXPECT_NE(cal.calendar_stats(), nullptr);
  EXPECT_EQ(heap.calendar_stats(), nullptr);
}

TEST(CalendarQueue, ReferenceEngineHonorsSameContract) {
  // The reference model itself must satisfy the Engine contract the rest of
  // the suite checks on the default engine; spot-check the basics.
  Engine e(Engine::QueueImpl::BinaryHeap);
  std::vector<int> order;
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(1.0, [&] { order.push_back(2); });
  const EventId id = e.schedule_at(0.5, [&] { order.push_back(0); });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.pending(), 2u);
  e.run_until(3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

}  // namespace
}  // namespace smiless::sim
