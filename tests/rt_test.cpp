// Tests for the driver seam (sim::Clock / sim::Driver) and the live-serving
// mode behind it (src/rt, exp::serve). The load-bearing contract, from
// DESIGN.md §16: a clock only delays — it never reorders, drops or inserts
// work — so the sim trajectory of a real-time drive is identical to the
// upfront DES run of the same config. The equivalence suite here holds the
// two drivers to that: same request terminal states, same ledger totals,
// same event counts (wall-clock fields excluded — no Event carries one).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.hpp"
#include "exp/serve.hpp"
#include "obs/event_bus.hpp"
#include "obs/stream_sink.hpp"
#include "obs/telemetry.hpp"
#include "rt/driver.hpp"
#include "rt/replayer.hpp"
#include "rt/wall_clock.hpp"
#include "sim/clock.hpp"
#include "sim/driver.hpp"
#include "sim/engine.hpp"

using namespace smiless;

namespace {

// ---------------------------------------------------------------------------
// TraceReplayer
// ---------------------------------------------------------------------------

TEST(TraceReplayer, MergesStreamsInDueTimeThenRegistrationOrder) {
  const std::vector<SimTime> a = {1.0, 3.0, 5.0};
  const std::vector<SimTime> b = {2.0, 3.0};
  std::vector<std::pair<std::size_t, SimTime>> got;
  rt::TraceReplayer replayer([&](std::size_t slot, SimTime t) { got.push_back({slot, t}); });
  EXPECT_EQ(replayer.add_stream(&a), 0u);
  EXPECT_EQ(replayer.add_stream(&b), 1u);

  EXPECT_DOUBLE_EQ(replayer.next_time(), 1.0);
  replayer.inject_through(2.5);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<std::size_t, SimTime>{0, 1.0}));
  EXPECT_EQ(got[1], (std::pair<std::size_t, SimTime>{1, 2.0}));

  // Tie at 3.0: registration (app) order, mirroring the upfront loop.
  EXPECT_DOUBLE_EQ(replayer.next_time(), 3.0);
  replayer.inject_through(3.0);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[2].first, 0u);
  EXPECT_EQ(got[3].first, 1u);

  replayer.flush();
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[4], (std::pair<std::size_t, SimTime>{0, 5.0}));
  EXPECT_EQ(replayer.injected(), 5u);
  EXPECT_TRUE(std::isinf(replayer.next_time()));
}

// ---------------------------------------------------------------------------
// WallClock
// ---------------------------------------------------------------------------

TEST(WallClock, HighSpeedupWaitsReturnPromptly) {
  rt::WallClock clock(1e9);
  clock.start(0.0);
  EXPECT_TRUE(clock.wait_until(100.0));   // 100 sim-s = 100 wall-ns
  EXPECT_TRUE(clock.wait_until(3600.0));
  EXPECT_EQ(clock.waits(), 2u);
  EXPECT_GE(clock.max_lag_seconds(), 0.0);
  EXPECT_GE(clock.wall_elapsed_seconds(), 0.0);
}

TEST(WallClock, PacesAgainstTheSpeedupFactor) {
  // 1000 sim-seconds per wall-second: 20 sim-s should take >= 20 wall-ms.
  rt::WallClock clock(1000.0);
  clock.start(0.0);
  EXPECT_TRUE(clock.wait_until(20.0));
  EXPECT_GE(clock.wall_elapsed_seconds(), 0.02);
}

TEST(WallClock, RequestStopAbortsTheWait) {
  rt::WallClock clock(1.0);  // natural rate: a 1000 s wait would block forever
  clock.start(0.0);
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    clock.request_stop();
  });
  EXPECT_FALSE(clock.wait_until(1000.0));
  stopper.join();
  EXPECT_TRUE(clock.stop_requested());
}

// ---------------------------------------------------------------------------
// RealTimeDriver vs DesDriver on a bare engine
// ---------------------------------------------------------------------------

/// Schedule a deterministic self-extending workload; record the firing order.
std::vector<int> run_schedule(sim::Driver& driver, sim::WorkSource* source = nullptr) {
  sim::Engine engine;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(static_cast<double>(i), [&fired, &engine, i] {
      fired.push_back(i);
      if (i == 2)  // events spawned mid-run land in the same trajectory
        engine.schedule_after(0.5, [&fired] { fired.push_back(100); });
    });
  }
  driver.drive(engine, source, 10.0);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
  return fired;
}

TEST(Drivers, RealTimeWithImmediateClockMatchesDes) {
  sim::DesDriver des;
  sim::ImmediateClock immediate;
  rt::RealTimeDriver realtime(&immediate);
  EXPECT_EQ(run_schedule(des), run_schedule(realtime));
  EXPECT_EQ(realtime.stats().batches, 6u);  // 5 instants + the spawned one
  EXPECT_FALSE(realtime.stats().interrupted);
}

TEST(Drivers, RealTimeStreamsASourceNoEarlierThanDue) {
  sim::Engine engine;
  std::vector<SimTime> arrivals = {1.0, 2.5, 4.0};
  std::vector<SimTime> seen;  // engine.now() at each injection
  rt::TraceReplayer replayer([&](std::size_t, SimTime t) {
    // The driver must not have advanced past the arrival when it injects.
    EXPECT_LE(engine.now(), t);
    engine.schedule_at(t, [&seen, t] { seen.push_back(t); });
  });
  replayer.add_stream(&arrivals);
  sim::ImmediateClock immediate;
  rt::RealTimeDriver driver(&immediate);
  driver.drive(engine, &replayer, 10.0);
  EXPECT_EQ(seen, arrivals);
  EXPECT_EQ(replayer.injected(), 3u);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Drivers, TailFlushSchedulesPostHorizonArrivals) {
  // Arrivals past `end` must still be scheduled (never fired), matching the
  // upfront run's scheduled-event tally.
  sim::Engine engine;
  std::vector<SimTime> arrivals = {1.0, 50.0};
  int fired = 0;
  rt::TraceReplayer replayer([&](std::size_t, SimTime t) {
    engine.schedule_at(t, [&fired] { ++fired; });
  });
  replayer.add_stream(&arrivals);
  sim::ImmediateClock immediate;
  rt::RealTimeDriver driver(&immediate);
  driver.drive(engine, &replayer, 10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(replayer.injected(), 2u);
  EXPECT_EQ(engine.stats().scheduled, 2u);
}

/// Clock that interrupts after a fixed number of waits — deterministic
/// stand-in for a stop request landing mid-drive.
class CountdownClock final : public sim::Clock {
 public:
  explicit CountdownClock(int allowed) : allowed_(allowed) {}
  bool wait_until(SimTime) override { return allowed_-- > 0; }

 private:
  int allowed_;
};

TEST(Drivers, InterruptedDriveStopsWithoutFlushing) {
  sim::Engine engine;
  std::vector<SimTime> arrivals = {1.0, 2.0, 3.0, 4.0};
  int injected_fired = 0;
  rt::TraceReplayer replayer([&](std::size_t, SimTime t) {
    engine.schedule_at(t, [&injected_fired] { ++injected_fired; });
  });
  replayer.add_stream(&arrivals);
  CountdownClock clock(2);
  rt::RealTimeDriver driver(&clock);
  driver.drive(engine, &replayer, 10.0);
  EXPECT_TRUE(driver.stats().interrupted);
  EXPECT_EQ(injected_fired, 2);
  EXPECT_EQ(replayer.injected(), 2u);   // no tail flush on interrupt
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);  // stopped at the last fired instant
}

// ---------------------------------------------------------------------------
// DES vs real-time equivalence on a full cell
// ---------------------------------------------------------------------------

exp::ExperimentConfig small_cell() {
  exp::ExperimentConfig config;
  config.app = "wl1";
  config.policy = "smiless";
  config.use_lstm = false;
  config.seed = 7;
  config.trace.duration = 60.0;
  config.trace.seed = 7;
  return config;
}

/// Trajectory fingerprint: every booked aggregate plus each E2E latency, in
/// hexfloat so equality is bitwise.
std::string fingerprint(const baselines::RunResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << r.policy << '|' << r.cost << '|' << r.violation_ratio << '|' << r.submitted << '|'
     << r.completed << '|' << r.failed << '|' << r.invocations << '|' << r.initializations
     << '|' << r.init_failures << '|' << r.evictions << '|' << r.retries << '|' << r.timeouts
     << '|' << r.cpu_core_seconds << '|' << r.gpu_pct_seconds;
  for (const double e : r.e2e) os << ';' << e;
  for (const auto& w : r.windows)
    os << '#' << w.arrivals << ',' << w.instances_cpu << ',' << w.instances_gpu;
  return os.str();
}

std::map<std::string, int> event_counts(const obs::Telemetry& telemetry) {
  std::map<std::string, int> counts;
  for (const auto& e : telemetry.bus().events()) ++counts[obs::event_type_name(e.type)];
  return counts;
}

TEST(ServeEquivalence, RealTimeReplayMatchesTheDesRun) {
  auto config = small_cell();
  config.obs.audit_out = "(in-memory)";  // attach telemetry, write nothing

  exp::Runner runner({/*threads=*/1, /*policy_threads=*/2});
  const auto& store = runner.profiles(config.profile_seed);
  const exp::CellResult des = exp::Runner::run_cell(config, store, runner.policy_pool());

  std::ostringstream stream;
  exp::ServeOptions sopt;
  sopt.speedup = 1e9;  // accelerated replay: live path, negligible wall time
  sopt.stream = &stream;
  const exp::ServeReport live = exp::serve(config, store, runner.policy_pool(), sopt);

  EXPECT_FALSE(live.interrupted);
  EXPECT_GT(live.batches, 0u);
  EXPECT_EQ(live.injected, static_cast<std::uint64_t>(des.result.submitted));
  EXPECT_EQ(fingerprint(live.cell.result), fingerprint(des.result));
  ASSERT_NE(des.telemetry, nullptr);
  ASSERT_NE(live.cell.telemetry, nullptr);
  EXPECT_EQ(event_counts(*live.cell.telemetry), event_counts(*des.telemetry));
  EXPECT_EQ(live.stream_lines, live.cell.telemetry->bus().events().size());
}

TEST(ServeEquivalence, EquivalenceHoldsUnderFaults) {
  auto config = small_cell();
  config.trace.kind = "regular";
  config.trace.interval = 3.0;
  config.trace.jitter = 0.2;
  config.faults.init_failure_prob = 0.05;
  config.platform.request_timeout = 45.0;
  config.platform.max_retries = 2;

  exp::Runner runner({/*threads=*/1, /*policy_threads=*/2});
  const auto& store = runner.profiles(config.profile_seed);
  const exp::CellResult des = exp::Runner::run_cell(config, store, runner.policy_pool());

  exp::ServeOptions sopt;
  sopt.speedup = 1e9;
  const exp::ServeReport live = exp::serve(config, store, runner.policy_pool(), sopt);
  EXPECT_EQ(fingerprint(live.cell.result), fingerprint(des.result));
}

TEST(ServeEquivalence, ServeRejectsShardedConfigs) {
  auto config = small_cell();
  config.lanes = 4;
  exp::Runner runner({/*threads=*/1, /*policy_threads=*/2});
  EXPECT_THROW(
      exp::serve(config, runner.profiles(config.profile_seed), runner.policy_pool(), {}),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// NDJSON stream schema
// ---------------------------------------------------------------------------

TEST(StreamSink, RendersOnlyTheFieldsAnEventSet) {
  std::ostringstream out;
  obs::StreamSink sink(&out);
  obs::Event e;
  e.type = obs::EventType::RequestCompleted;
  e.t = 1.5;
  e.t2 = 1.0;
  e.app = 2;
  e.request = 7;
  sink.write(e);
  obs::Event minimal;  // defaults: every optional field suppressed
  minimal.type = obs::EventType::MachineUp;
  minimal.t = 3.0;
  sink.write(minimal);
  EXPECT_EQ(out.str(),
            "{\"type\":\"request_completed\",\"t\":1.5,\"t2\":1.0,\"app\":2,\"request\":7}\n"
            "{\"type\":\"machine_up\",\"t\":3.0}\n");
  EXPECT_EQ(sink.lines(), 2u);
}

TEST(StreamSink, LiveStreamMatchesTheDesEventStream) {
  // Rendering the DES run's retained bus through the sink must produce the
  // same bytes the live stream flushed event-by-event: the stream is a pure
  // function of the trajectory, not of the pacing.
  auto config = small_cell();
  config.obs.audit_out = "(in-memory)";
  exp::Runner runner({/*threads=*/1, /*policy_threads=*/2});
  const auto& store = runner.profiles(config.profile_seed);
  const exp::CellResult des = exp::Runner::run_cell(config, store, runner.policy_pool());

  std::ostringstream live_stream;
  exp::ServeOptions sopt;
  sopt.speedup = 1e9;
  sopt.stream = &live_stream;
  (void)exp::serve(config, store, runner.policy_pool(), sopt);

  std::ostringstream replay;
  obs::StreamSink sink(&replay);
  ASSERT_NE(des.telemetry, nullptr);
  for (const auto& e : des.telemetry->bus().events()) sink.write(e);
  EXPECT_EQ(live_stream.str(), replay.str());
}

TEST(StreamSink, GoldenStreamIsByteStable) {
  std::ostringstream stream;
  exp::Runner runner({/*threads=*/1, /*policy_threads=*/2});
  const auto config = small_cell();
  exp::ServeOptions sopt;
  sopt.speedup = 1e9;
  sopt.stream = &stream;
  (void)exp::serve(config, runner.profiles(config.profile_seed), runner.policy_pool(), sopt);

  const std::string golden_path = std::string(SMILESS_GOLDEN_DIR) + "/serve_stream.ndjson";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path;
  std::ostringstream golden;
  golden << in.rdbuf();
  if (stream.str() != golden.str()) {
    const std::string actual_path = "serve_stream.actual.ndjson";
    std::ofstream(actual_path) << stream.str();
    FAIL() << "NDJSON stream drifted from " << golden_path << "; actual written to ./"
           << actual_path << " — inspect the diff, and update the golden only for an"
           << " intentional schema change.";
  }
}

}  // namespace
