// Tests for tools/detlint: the determinism-purity rule catalog (DESIGN.md
// §11). Corpus files in tests/detlint_corpus/ pin exact rule ids and line
// numbers per rule (good/bad pairs plus annotation and false-positive
// cases), and DetlintTree.RepoIsClean re-lints the live tree so seeding a
// violation anywhere in src/, tools/ or bench/ fails ctest.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scanner.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<detlint::Violation> scan_corpus(const std::string& name) {
  const std::string path = std::string(DETLINT_CORPUS_DIR) + "/" + name;
  return detlint::scan_file(path, read_file(path));
}

struct Expected {
  std::string rule;
  int line;
};

void expect_findings(const std::string& name, const std::vector<Expected>& expected) {
  const std::vector<detlint::Violation> got = scan_corpus(name);
  ASSERT_EQ(got.size(), expected.size())
      << name << " findings:\n"
      << [&] {
           std::ostringstream os;
           for (const auto& v : got) os << "  " << detlint::format_violation(v) << "\n";
           return os.str();
         }();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].rule, expected[i].rule) << name << " finding " << i;
    EXPECT_EQ(got[i].line, expected[i].line) << name << " finding " << i;
  }
}

TEST(DetlintCatalog, RulesAreStable) {
  const auto& rules = detlint::rule_catalog();
  ASSERT_EQ(rules.size(), 6u);
  const std::vector<std::string> ids = {"wall-clock", "raw-rand",        "unordered-iter",
                                        "ptr-key",    "parallel-reduce", "env-read"};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(rules[i].id, ids[i]);
    EXPECT_TRUE(detlint::is_known_rule(ids[i]));
    EXPECT_FALSE(rules[i].summary.empty());
  }
  EXPECT_FALSE(detlint::is_known_rule("no-such-rule"));
  EXPECT_FALSE(detlint::is_known_rule(""));
}

TEST(DetlintCorpus, WallClock) {
  expect_findings("bad_wall_clock.cpp",
                  {{"wall-clock", 5}, {"wall-clock", 6}, {"wall-clock", 7}});
  expect_findings("good_wall_clock.cpp", {});
}

TEST(DetlintCorpus, RawRand) {
  expect_findings("bad_raw_rand.cpp", {{"raw-rand", 6},
                                       {"raw-rand", 7},
                                       {"raw-rand", 8},
                                       {"raw-rand", 9},
                                       {"raw-rand", 10}});
  expect_findings("good_raw_rand.cpp", {});
}

TEST(DetlintCorpus, UnorderedIter) {
  expect_findings("bad_unordered_iter.cpp", {{"unordered-iter", 8}, {"unordered-iter", 14}});
  expect_findings("good_unordered_iter.cpp", {});
}

TEST(DetlintCorpus, PtrKey) {
  expect_findings("bad_ptr_key.cpp", {{"ptr-key", 10}, {"ptr-key", 11}, {"ptr-key", 12}});
  expect_findings("good_ptr_key.cpp", {});
}

TEST(DetlintCorpus, ParallelReduce) {
  expect_findings("bad_parallel_reduce.cpp",
                  {{"parallel-reduce", 7}, {"parallel-reduce", 11}});
  expect_findings("good_parallel_reduce.cpp", {});
}

TEST(DetlintCorpus, EnvRead) {
  expect_findings("bad_env_read.cpp", {{"env-read", 4}, {"env-read", 7}});
  expect_findings("good_env_read.cpp", {});
}

TEST(DetlintCorpus, AllowAnnotations) { expect_findings("allow_annotations.cpp", {}); }

TEST(DetlintCorpus, BadAndStaleAllows) {
  expect_findings("bad_allow.cpp", {{"bad-allow", 4},
                                    {"env-read", 5},
                                    {"bad-allow", 6},
                                    {"env-read", 7},
                                    {"unused-allow", 8}});
}

TEST(DetlintCorpus, FalsePositives) { expect_findings("false_positives.cpp", {}); }

// The rng wrapper itself is exempt from raw-rand by path suffix: the same
// content under a different name must be flagged.
TEST(DetlintScan, PathExemption) {
  const std::string content = "#include <random>\nstd::mt19937_64 engine_;\n";
  EXPECT_TRUE(detlint::scan_file("src/common/rng.hpp", content).empty());
  const auto flagged = detlint::scan_file("src/common/other.hpp", content);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].rule, "raw-rand");
  EXPECT_EQ(flagged[0].line, 2);
}

// An allow suppresses only its own rule, not other findings on the line.
TEST(DetlintScan, AllowIsRuleScoped) {
  const std::string content =
      "#include <chrono>\n"
      "// detlint:allow(env-read) corpus: wrong rule for the site below\n"
      "auto t = std::chrono::steady_clock::now();\n";
  const auto got = detlint::scan_file("x.cpp", content);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].rule, "unused-allow");
  EXPECT_EQ(got[0].line, 2);
  EXPECT_EQ(got[1].rule, "wall-clock");
  EXPECT_EQ(got[1].line, 3);
}

// ScanOptions::report_unused_allows=false silences only unused-allow.
TEST(DetlintScan, UnusedAllowsCanBeSilenced) {
  const std::string content = "// detlint:allow(wall-clock) stale exemption\nint x = 0;\n";
  EXPECT_EQ(detlint::scan_file("x.cpp", content).size(), 1u);
  detlint::ScanOptions options;
  options.report_unused_allows = false;
  EXPECT_TRUE(detlint::scan_file("x.cpp", content, options).empty());
}

// The machine-checked determinism contract: the live tree lints clean.
// Seeding an un-annotated violation in src/, tools/ or bench/ fails here
// (and in tools/ci.sh lint, which runs the standalone binary).
TEST(DetlintTree, RepoIsClean) {
  const std::string repo = DETLINT_REPO_DIR;
  const auto violations =
      detlint::scan_paths({repo + "/src", repo + "/tools", repo + "/bench"});
  for (const auto& v : violations) ADD_FAILURE() << detlint::format_violation(v);
}

}  // namespace
