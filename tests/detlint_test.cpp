// Tests for tools/detlint: the determinism-purity rule catalog and the
// archlint layering pass (DESIGN.md §11). Corpus files in
// tests/detlint_corpus/ pin exact rule ids and line numbers per rule
// (good/bad pairs plus annotation and false-positive cases), the arch/
// subtree carries its own mini layer manifest, and DetlintTree.RepoIsClean
// re-lints the live tree against tools/detlint/layers.json so seeding a
// violation anywhere in src/, tools/, bench/ or tests/ fails ctest.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archlint.hpp"
#include "common/json.hpp"
#include "scanner.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<detlint::Violation> scan_corpus(const std::string& name) {
  const std::string path = std::string(DETLINT_CORPUS_DIR) + "/" + name;
  return detlint::scan_file(path, read_file(path));
}

struct Expected {
  std::string rule;
  int line;
};

void expect_findings(const std::string& name, const std::vector<Expected>& expected) {
  const std::vector<detlint::Violation> got = scan_corpus(name);
  ASSERT_EQ(got.size(), expected.size())
      << name << " findings:\n"
      << [&] {
           std::ostringstream os;
           for (const auto& v : got) os << "  " << detlint::format_violation(v) << "\n";
           return os.str();
         }();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].rule, expected[i].rule) << name << " finding " << i;
    EXPECT_EQ(got[i].line, expected[i].line) << name << " finding " << i;
  }
}

TEST(DetlintCatalog, RulesAreStable) {
  const auto& rules = detlint::rule_catalog();
  ASSERT_EQ(rules.size(), 11u);
  const std::vector<std::string> ids = {
      "wall-clock",      "raw-rand",        "unordered-iter", "ptr-key",
      "parallel-reduce", "env-read",        "layer-violation", "include-cycle",
      "private-include", "global-state",    "time-unit"};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(rules[i].id, ids[i]);
    EXPECT_TRUE(detlint::is_known_rule(ids[i]));
    EXPECT_FALSE(rules[i].summary.empty());
  }
  EXPECT_FALSE(detlint::is_known_rule("no-such-rule"));
  EXPECT_FALSE(detlint::is_known_rule(""));
}

TEST(DetlintCorpus, WallClock) {
  expect_findings("bad_wall_clock.cpp",
                  {{"wall-clock", 5}, {"wall-clock", 6}, {"wall-clock", 7}});
  expect_findings("good_wall_clock.cpp", {});
}

TEST(DetlintCorpus, RawRand) {
  expect_findings("bad_raw_rand.cpp", {{"raw-rand", 6},
                                       {"raw-rand", 7},
                                       {"raw-rand", 8},
                                       {"raw-rand", 9},
                                       {"raw-rand", 10}});
  expect_findings("good_raw_rand.cpp", {});
}

TEST(DetlintCorpus, UnorderedIter) {
  expect_findings("bad_unordered_iter.cpp", {{"unordered-iter", 8}, {"unordered-iter", 14}});
  expect_findings("good_unordered_iter.cpp", {});
}

TEST(DetlintCorpus, PtrKey) {
  expect_findings("bad_ptr_key.cpp", {{"ptr-key", 10}, {"ptr-key", 11}, {"ptr-key", 12}});
  expect_findings("good_ptr_key.cpp", {});
}

TEST(DetlintCorpus, ParallelReduce) {
  expect_findings("bad_parallel_reduce.cpp",
                  {{"parallel-reduce", 7}, {"parallel-reduce", 11}});
  expect_findings("good_parallel_reduce.cpp", {});
}

TEST(DetlintCorpus, EnvRead) {
  expect_findings("bad_env_read.cpp", {{"env-read", 4}, {"env-read", 7}});
  expect_findings("good_env_read.cpp", {});
}

TEST(DetlintCorpus, AllowAnnotations) { expect_findings("allow_annotations.cpp", {}); }

TEST(DetlintCorpus, BadAndStaleAllows) {
  expect_findings("bad_allow.cpp", {{"bad-allow", 4},
                                    {"env-read", 5},
                                    {"bad-allow", 6},
                                    {"env-read", 7},
                                    {"unused-allow", 8}});
}

TEST(DetlintCorpus, FalsePositives) { expect_findings("false_positives.cpp", {}); }

TEST(DetlintCorpus, GlobalState) {
  expect_findings("bad_global_state.cpp", {{"global-state", 6},
                                           {"global-state", 7},
                                           {"global-state", 8},
                                           {"global-state", 11}});
  expect_findings("good_global_state.cpp", {});
}

TEST(DetlintCorpus, TimeUnit) {
  expect_findings("bad_time_unit.cpp",
                  {{"time-unit", 5}, {"time-unit", 9}, {"time-unit", 17}, {"time-unit", 18}});
  expect_findings("good_time_unit.cpp", {});
}

// Multi-line raw strings hide violation-shaped text AND allow annotations
// (inert: no suppression, no unused-allow); an allow on the closing line of
// a block comment anchors to the code line below it; and line numbers after
// a multi-line raw string stay exact.
TEST(DetlintCorpus, ScannerEdges) { expect_findings("scanner_edges.cpp", {{"raw-rand", 18}}); }

// ---------------------------------------------------------------------------
// archlint: the include-graph layering pass over the corpus mini-tree
// ---------------------------------------------------------------------------

TEST(DetlintArch, CorpusTreeFindings) {
  const std::string arch = std::string(DETLINT_CORPUS_DIR) + "/arch";
  detlint::ScanOptions options;
  const detlint::LayerManifest manifest = detlint::load_manifest(arch + "/layers.json");
  options.manifest = &manifest;
  const auto got = detlint::scan_paths({arch}, options);
  ASSERT_EQ(got.size(), 4u) << [&] {
    std::ostringstream os;
    for (const auto& v : got) os << "  " << detlint::format_violation(v) << "\n";
    return os.str();
  }();
  // scan_paths emits files in sorted path order; base/allowed_up.hpp is
  // suppressed by its layer-violation allow and absent here.
  EXPECT_EQ(got[0].rule, "private-include");
  EXPECT_EQ(got[0].line, 4);
  EXPECT_NE(got[0].path.find("arch/app/main.hpp"), std::string::npos);
  EXPECT_NE(got[0].message.find("arch/engine/internal.hpp"), std::string::npos);
  EXPECT_EQ(got[1].rule, "layer-violation");
  EXPECT_EQ(got[1].line, 3);
  EXPECT_NE(got[1].path.find("arch/base/bad_up.hpp"), std::string::npos);
  EXPECT_EQ(got[2].rule, "include-cycle");
  EXPECT_EQ(got[2].line, 2);
  EXPECT_NE(got[2].path.find("arch/cycle/a.hpp"), std::string::npos);
  EXPECT_NE(got[2].message.find("arch/cycle/a.hpp -> arch/cycle/b.hpp -> arch/cycle/a.hpp"),
            std::string::npos);
  EXPECT_EQ(got[3].rule, "layer-violation");
  EXPECT_EQ(got[3].line, 1);
  EXPECT_NE(got[3].path.find("arch/orphan/stray.hpp"), std::string::npos);
  EXPECT_NE(got[3].message.find("not covered by any layer"), std::string::npos);
}

TEST(DetlintArch, ManifestValidation) {
  // Cyclic layer DAG.
  EXPECT_THROW(detlint::parse_manifest(R"({"layers": [
    {"name": "a", "members": ["x"], "deps": ["b"]},
    {"name": "b", "members": ["y"], "deps": ["a"]}]})"),
               std::runtime_error);
  // Unknown dependency.
  EXPECT_THROW(detlint::parse_manifest(
                   R"({"layers": [{"name": "a", "members": ["x"], "deps": ["ghost"]}]})"),
               std::runtime_error);
  // A module listed in two layers.
  EXPECT_THROW(detlint::parse_manifest(R"({"layers": [
    {"name": "a", "members": ["x"], "deps": []},
    {"name": "b", "members": ["x"], "deps": []}]})"),
               std::runtime_error);
  // A private module that is not a member of any layer.
  EXPECT_THROW(detlint::parse_manifest(R"({"layers": [
    {"name": "a", "members": ["x"], "deps": []}],
    "private": [{"module": "z", "public": ["z.hpp"]}]})"),
               std::runtime_error);
  // Self-dependency.
  EXPECT_THROW(
      detlint::parse_manifest(R"({"layers": [{"name": "a", "members": ["x"], "deps": ["a"]}]})"),
      std::runtime_error);
  // A valid manifest parses and orders layers as listed.
  const auto ok = detlint::parse_manifest(R"({"layers": [
    {"name": "a", "members": ["x"], "deps": []},
    {"name": "b", "members": ["y"], "deps": ["a"]}]})");
  EXPECT_EQ(ok.module_of("p/x/file.hpp"), "x");
  EXPECT_EQ(ok.layer_of_module("y"), 1);
  EXPECT_EQ(ok.module_of("p/xx/file.hpp"), "");
}

// ---------------------------------------------------------------------------
// --json report schema and the --baseline ratchet
// ---------------------------------------------------------------------------

// The report round-trips through the JSON model: fixed schema keys, counts
// summing to total, and one entry per violation with path/line/rule/message.
TEST(DetlintReport, JsonSchemaRoundTrip) {
  const auto violations = scan_corpus("bad_time_unit.cpp");
  ASSERT_FALSE(violations.empty());
  const std::string text = detlint::report_json(violations);
  const auto doc = smiless::json::Value::parse(text);
  EXPECT_EQ(doc.get("detlint", 0), 1);
  ASSERT_NE(doc.find("total"), nullptr);
  ASSERT_NE(doc.find("counts"), nullptr);
  ASSERT_NE(doc.find("violations"), nullptr);
  EXPECT_EQ(static_cast<std::size_t>(doc.get("total", -1)), violations.size());
  long long counted = 0;
  for (const auto& [rule, n] : doc.find("counts")->members()) {
    EXPECT_TRUE(detlint::is_known_rule(rule) || rule == "bad-allow" || rule == "unused-allow")
        << rule;
    counted += n.as_int();
  }
  EXPECT_EQ(static_cast<std::size_t>(counted), violations.size());
  const auto& list = doc.find("violations")->items();
  ASSERT_EQ(list.size(), violations.size());
  for (std::size_t i = 0; i < violations.size(); ++i) {
    EXPECT_EQ(list[i].get("path", ""), violations[i].path);
    EXPECT_EQ(list[i].get("line", -1), violations[i].line);
    EXPECT_EQ(list[i].get("rule", ""), violations[i].rule);
    EXPECT_EQ(list[i].get("message", ""), violations[i].message);
  }
}

// Yesterday's report used as today's baseline absorbs exactly the pinned
// (path, rule) budget: same findings vanish, new ones survive, and entries
// that no longer match are reported as stale so the pin can be ratcheted.
TEST(DetlintReport, BaselineRatchet) {
  const auto violations = scan_corpus("bad_time_unit.cpp");
  ASSERT_EQ(violations.size(), 4u);
  const detlint::Baseline baseline = detlint::parse_baseline(detlint::report_json(violations));
  detlint::BaselineStats stats;
  EXPECT_TRUE(detlint::apply_baseline(violations, baseline, &stats).empty());
  EXPECT_EQ(stats.suppressed, 4);
  EXPECT_EQ(stats.stale, 0);

  // A new finding in a different file survives the same baseline.
  auto grown = violations;
  grown.push_back({"other.cpp", 3, "time-unit", "raw unit-conversion literal"});
  const auto survivors = detlint::apply_baseline(grown, baseline, &stats);
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors[0].path, "other.cpp");

  // Fixing findings leaves the baseline over-budget: stale, not suppressed.
  auto shrunk = violations;
  shrunk.resize(2);
  EXPECT_TRUE(detlint::apply_baseline(shrunk, baseline, &stats).empty());
  EXPECT_EQ(stats.suppressed, 2);
  EXPECT_EQ(stats.stale, 2);

  // A report that is not a detlint report is rejected.
  EXPECT_THROW(detlint::parse_baseline("{}"), std::runtime_error);
}

// The rng wrapper itself is exempt from raw-rand by path suffix: the same
// content under a different name must be flagged.
TEST(DetlintScan, PathExemption) {
  const std::string content = "#include <random>\nstd::mt19937_64 engine_;\n";
  EXPECT_TRUE(detlint::scan_file("src/common/rng.hpp", content).empty());
  const auto flagged = detlint::scan_file("src/common/other.hpp", content);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].rule, "raw-rand");
  EXPECT_EQ(flagged[0].line, 2);
}

// An allow suppresses only its own rule, not other findings on the line.
TEST(DetlintScan, AllowIsRuleScoped) {
  const std::string content =
      "#include <chrono>\n"
      "// detlint:allow(env-read) corpus: wrong rule for the site below\n"
      "auto t = std::chrono::steady_clock::now();\n";
  const auto got = detlint::scan_file("x.cpp", content);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].rule, "unused-allow");
  EXPECT_EQ(got[0].line, 2);
  EXPECT_EQ(got[1].rule, "wall-clock");
  EXPECT_EQ(got[1].line, 3);
}

// ScanOptions::report_unused_allows=false silences only unused-allow.
TEST(DetlintScan, UnusedAllowsCanBeSilenced) {
  const std::string content = "// detlint:allow(wall-clock) stale exemption\nint x = 0;\n";
  EXPECT_EQ(detlint::scan_file("x.cpp", content).size(), 1u);
  detlint::ScanOptions options;
  options.report_unused_allows = false;
  EXPECT_TRUE(detlint::scan_file("x.cpp", content, options).empty());
}

// The machine-checked determinism + architecture contract: the live tree
// lints clean against the real layer manifest, with both passes on.
// Seeding an un-annotated violation in src/, tools/, bench/ or tests/
// fails here (and in tools/ci.sh lint, which runs the standalone binary).
TEST(DetlintTree, RepoIsClean) {
  const std::string repo = DETLINT_REPO_DIR;
  detlint::ScanOptions options;
  const detlint::LayerManifest manifest =
      detlint::load_manifest(repo + "/tools/detlint/layers.json");
  options.manifest = &manifest;
  options.exclude_substrings.push_back("detlint_corpus");
  const auto violations = detlint::scan_paths(
      {repo + "/src", repo + "/tools", repo + "/bench", repo + "/tests"}, options);
  for (const auto& v : violations) ADD_FAILURE() << detlint::format_violation(v);
}

}  // namespace
