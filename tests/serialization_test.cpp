#include <gtest/gtest.h>

#include <sstream>

#include "apps/catalog.hpp"
#include "apps/serialize.hpp"
#include "common/rng.hpp"
#include "dag/serialize.hpp"
#include "workload/trace.hpp"
#include "workload/trace_io.hpp"

namespace smiless {
namespace {

// --- DAG text format ---------------------------------------------------------

TEST(DagText, RoundTripPreservesStructure) {
  const auto original = apps::make_amber_alert().dag;
  const auto text = dag::to_text(original);
  const auto parsed = dag::from_text(text);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t n = 0; n < original.size(); ++n) {
    const auto id = static_cast<dag::NodeId>(n);
    EXPECT_EQ(parsed.name(id), original.name(id));
    EXPECT_EQ(std::vector<dag::NodeId>(parsed.successors(id).begin(),
                                       parsed.successors(id).end()),
              std::vector<dag::NodeId>(original.successors(id).begin(),
                                       original.successors(id).end()));
  }
}

TEST(DagText, ParsesCommentsAndBlankLines) {
  const auto d = dag::from_text(
      "# a tiny pipeline\n"
      "node a\n"
      "\n"
      "node b  # the second stage\n"
      "edge a b\n");
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.is_reachable(d.find("a"), d.find("b")));
}

TEST(DagText, RejectsUnknownNodeInEdge) {
  EXPECT_THROW(dag::from_text("node a\nedge a ghost\n"), CheckError);
}

TEST(DagText, RejectsUnknownDirective) {
  EXPECT_THROW(dag::from_text("vertex a\n"), CheckError);
}

TEST(DagText, RejectsCycleAtParseTime) {
  EXPECT_THROW(dag::from_text("node a\nnode b\nedge a b\nedge b a\n"), CheckError);
}

TEST(DagText, RejectsMissingEdgeOperand) {
  EXPECT_THROW(dag::from_text("node a\nedge a\n"), CheckError);
}

// --- app manifests -------------------------------------------------------------

TEST(AppManifest, ParsesCompleteManifest) {
  const auto app = apps::parse_app(
      "app my-assistant\n"
      "sla 1.5\n"
      "fn listen SR\n"
      "fn understand DB\n"
      "fn answer QA\n"
      "edge listen understand\n"
      "edge understand answer\n");
  EXPECT_EQ(app.name, "my-assistant");
  EXPECT_DOUBLE_EQ(app.sla, 1.5);
  ASSERT_EQ(app.dag.size(), 3u);
  EXPECT_EQ(app.truth[0].name, "SR");
  EXPECT_EQ(app.dag.all_paths().size(), 1u);
}

TEST(AppManifest, RoundTripsThroughToManifest) {
  const auto original = apps::make_voice_assistant(2.5);
  const auto manifest = apps::to_manifest(original);
  const auto parsed = apps::parse_app(manifest);
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_DOUBLE_EQ(parsed.sla, original.sla);
  ASSERT_EQ(parsed.dag.size(), original.dag.size());
  for (std::size_t n = 0; n < parsed.truth.size(); ++n)
    EXPECT_EQ(parsed.truth[n].name, original.truth[n].name);
}

TEST(AppManifest, RejectsUnknownModel) {
  EXPECT_THROW(apps::parse_app("app x\nfn a NOPE\n"), CheckError);
}

TEST(AppManifest, RejectsMissingAppDirective) {
  EXPECT_THROW(apps::parse_app("fn a SR\n"), CheckError);
}

TEST(AppManifest, RejectsEmptyFunctionList) {
  EXPECT_THROW(apps::parse_app("app x\nsla 2\n"), CheckError);
}

TEST(AppManifest, RejectsNonPositiveSla) {
  EXPECT_THROW(apps::parse_app("app x\nsla 0\nfn a SR\n"), CheckError);
}

// --- trace CSV -------------------------------------------------------------------

TEST(TraceCsv, RoundTripPreservesArrivals) {
  Rng rng(3);
  workload::TraceOptions o;
  o.duration = 120.0;
  const auto original = workload::generate_trace(o, rng);

  std::stringstream buffer;
  workload::save_csv(original, buffer);
  const auto loaded = workload::load_csv(buffer);
  ASSERT_EQ(loaded.arrivals.size(), original.arrivals.size());
  for (std::size_t i = 0; i < loaded.arrivals.size(); ++i)
    EXPECT_NEAR(loaded.arrivals[i], original.arrivals[i], 1e-6);
}

TEST(TraceCsv, ReconstructsWindowCounts) {
  std::stringstream buffer("arrival_s\n0.2\n0.7\n2.5\n2.9\n2.95\n");
  const auto t = workload::load_csv(buffer, 1.0);
  ASSERT_EQ(t.counts.size(), 3u);
  EXPECT_EQ(t.counts[0], 2);
  EXPECT_EQ(t.counts[1], 0);
  EXPECT_EQ(t.counts[2], 3);
}

TEST(TraceCsv, SkipsCommentsAndBlankLines) {
  std::stringstream buffer("# my trace\n\narrival_s\n1.0\n# gap\n2.0\n");
  const auto t = workload::load_csv(buffer);
  EXPECT_EQ(t.arrivals.size(), 2u);
}

TEST(TraceCsv, RejectsNonMonotonicTimestamps) {
  std::stringstream buffer("1.0\n0.5\n");
  EXPECT_THROW(workload::load_csv(buffer), CheckError);
}

TEST(TraceCsv, RejectsGarbage) {
  std::stringstream buffer("hello world\n");
  EXPECT_THROW(workload::load_csv(buffer), CheckError);
}

TEST(TraceCsv, RejectsNegativeTimestamps) {
  std::stringstream buffer("-1.0\n");
  EXPECT_THROW(workload::load_csv(buffer), CheckError);
}

TEST(TraceCsv, EmptyInputYieldsEmptyTrace) {
  std::stringstream buffer("arrival_s\n");
  const auto t = workload::load_csv(buffer);
  EXPECT_TRUE(t.arrivals.empty());
  EXPECT_TRUE(t.counts.empty());
}

TEST(TraceCsv, FileRoundTrip) {
  Rng rng(4);
  const auto original = workload::generate_regular_trace(5.0, 0.1, 60.0, rng);
  const std::string path = "/tmp/smiless_trace_test.csv";
  workload::save_csv_file(original, path);
  const auto loaded = workload::load_csv_file(path);
  EXPECT_EQ(loaded.arrivals.size(), original.arrivals.size());
}

TEST(TraceCsv, MissingFileThrows) {
  EXPECT_THROW(workload::load_csv_file("/nonexistent/trace.csv"), CheckError);
}

}  // namespace
}  // namespace smiless
