// detlint corpus: forbidden tokens inside comments, strings, raw strings and
// near-miss identifiers must not fire any rule.
// A comment may mention std::chrono::steady_clock or rand() freely.
#include <string>

const std::string kA = "std::chrono::steady_clock::now() inside a string";
const std::string kB = R"(getenv("HOME") and __DATE__ inside a raw string)";
const int kBig = 1'000'000;
int steady_clockwork = 0;
int brand(int x) { return x; }
int call_brand() { return brand(7); }
struct Strand {
  std::string strand;
  std::size_t n() const { return strand.size(); }
};
