// detlint corpus: raw randomness must be flagged.
#include <cstdlib>
#include <random>

int noisy() {
  std::srand(42);
  const int a = std::rand();
  std::random_device rd;
  std::mt19937 engine(rd());
  std::default_random_engine fallback;
  return a + static_cast<int>(engine()) + static_cast<int>(fallback());
}
