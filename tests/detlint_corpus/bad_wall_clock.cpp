// detlint corpus: wall-clock reads outside a quarantine must be flagged.
#include <chrono>

double wall_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::system_clock::now();
  const auto t2 = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(t2 - t0).count() + t1.time_since_epoch().count();
}
