// detlint corpus: pointer-keyed ordered containers must be flagged.
#include <map>
#include <queue>
#include <set>

struct Node {
  int id;
};

std::map<const Node*, int> ranks;
std::set<Node*> live;
std::priority_queue<Node*> frontier;
