#pragma once
