#pragma once
#include "cycle/a.hpp"
