#pragma once
#include "cycle/b.hpp"
