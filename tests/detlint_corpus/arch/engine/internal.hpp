#pragma once
#include "base/util.hpp"

inline int engine_internal() { return base_util(); }
