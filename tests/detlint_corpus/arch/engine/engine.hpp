#pragma once
#include "engine/internal.hpp"

inline int engine_facade() { return engine_internal(); }
