#pragma once
#include "base/util.hpp"
#include "engine/engine.hpp"
#include "engine/internal.hpp"

inline int app_main() { return base_util() + engine_facade() + engine_internal(); }
