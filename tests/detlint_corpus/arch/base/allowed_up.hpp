#pragma once
// detlint:allow(layer-violation) corpus: grandfathered upward edge
#include "app/main.hpp"
