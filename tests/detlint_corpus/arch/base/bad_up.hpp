#pragma once
// corpus: base may not reach up into app.
#include "app/main.hpp"
