// detlint corpus: a reasoned allow on the same or preceding line suppresses
// exactly its rule and counts as used.
#include <chrono>
#include <cstdlib>

double profiled() {
  // detlint:allow(wall-clock) corpus: quarantined profiling read
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

// detlint:allow(env-read) corpus: harness knob, preceding-line form
const char* knob = std::getenv("DETLINT_CORPUS_KNOB");
const char* knob2 = std::getenv("DETLINT_CORPUS_KNOB2");  // detlint:allow(env-read) corpus: same-line form
