// detlint corpus: annotated quarantine sites are clean, both the
// preceding-line and same-line annotation forms.
#include <chrono>

double quarantined_profile() {
  // detlint:allow(wall-clock) corpus quarantine site: overhead metric only
  const auto t0 = std::chrono::steady_clock::now();
  const double dt =  // detlint:allow(wall-clock) same site, closing read
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return dt;
}
