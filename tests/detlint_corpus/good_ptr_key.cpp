// detlint corpus: value-keyed ordered containers are clean, including
// pointer-valued maps and function-pointer values.
#include <map>
#include <set>
#include <string>

std::map<std::string, int> totals;
std::set<std::pair<int, int>> edges;
std::map<int, void (*)(int)> handlers;
std::map<std::string, int*> slots;
