// detlint corpus: raw unit-conversion literals next to unit-suffixed
// quantities must be flagged, with the literal on either side.

double to_millis(double total_seconds) {
  return total_seconds * 1000;
}

double to_seconds(long long elapsed_ns) {
  return elapsed_ns / 1e9;
}

struct Audit {
  double solver_seconds() const { return 0.0; }
};

double report(const Audit& audit, double window_ms) {
  const double total = 1e3 * audit.solver_seconds();
  return total + window_ms / 1000.0;
}
