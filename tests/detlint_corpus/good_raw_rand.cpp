// detlint corpus: the seeded Rng wrapper is the blessed random source; the
// engine tokens themselves live only in common/rng.hpp, which is path-exempt.
#include "common/rng.hpp"

double jitter(smiless::Rng& rng) { return rng.uniform(0.0, 1.0); }
