// detlint corpus: malformed and stale annotations are themselves violations.
#include <cstdlib>

// detlint:allow(no-such-rule) the rule id does not exist
const char* a = std::getenv("A");
// detlint:allow(env-read)
const char* b = std::getenv("B");
// detlint:allow(wall-clock) nothing on this or the next line reads a clock
const char* c = "just a string";
