// detlint corpus: scanner edge cases. Violation-shaped text inside
// multi-line raw strings is invisible to every rule, an allow spelled
// inside a raw string is inert (neither suppresses nor reports unused),
// and an allow riding a block comment's closing line still anchors to
// the code line below it.
#include <cstdlib>
#include <string>

const std::string kDoc = R"doc(
  std::rand() and std::getenv("HOME") inside a raw string are not code.
  // detlint:allow(wall-clock) inside a raw string this is inert text
)doc";

/* A block comment spanning lines: std::rand() in here is invisible.
   detlint:allow(raw-rand) corpus: rides the closing line of this comment */
int suppressed() { return std::rand(); }

int flagged() { return std::rand(); }
