// detlint corpus: keyed lookup on unordered containers is clean, and
// iterating a differently-typed container must not fire the rule.
#include <string>
#include <unordered_map>
#include <vector>

struct Cache {
  std::unordered_map<std::string, double> values;
  bool has(const std::string& key) const { return values.count(key) != 0; }
};

double sum(const std::vector<double>& samples) {
  double total = 0.0;
  for (const double v : samples) total += v;
  return total;
}
