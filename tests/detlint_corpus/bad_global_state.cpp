// detlint corpus: mutable namespace-scope, static-local and thread_local
// declarations break lane purity and must be flagged.
#include <string>
#include <vector>

static int call_count = 0;
thread_local std::string last_error;
static std::vector<int> cache{};

int bump() {
  static int hits = 0;
  return ++hits + call_count;
}
