// detlint corpus: hash-order iteration must be flagged.
#include <string>
#include <unordered_map>
#include <unordered_set>

int sum_values(const std::unordered_map<std::string, int>& scores) {
  int total = 0;
  for (const auto& [name, score] : scores) total += score;
  return total;
}

struct Index {
  std::unordered_set<int> ids;
  auto first() const { return ids.begin(); }
};
