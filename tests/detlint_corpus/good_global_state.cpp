// detlint corpus: immutable statics, type definitions and annotated
// singletons are clean. Paren-initialized statics are the documented
// blind spot (the declarator stops at '(' like a function declaration).
#include <string>

static const int kLimit = 8;
static constexpr double kScale = 1.5;

namespace corpus {
struct Table {
  int rows = 0;
};
}  // namespace corpus

// detlint:allow(global-state) corpus: interned table, built once before any lane runs
static corpus::Table g_table{};

static std::string spell(int n) { return std::to_string(n); }
