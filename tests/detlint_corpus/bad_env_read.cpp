// detlint corpus: environment reads and build-time stamps must be flagged.
#include <cstdlib>

const char* build_stamp() { return __DATE__ " " __TIME__; }

double scale() {
  const char* env = std::getenv("SMILESS_SCALE");
  return env == nullptr ? 1.0 : 2.0;
}
