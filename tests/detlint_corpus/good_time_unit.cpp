// detlint corpus: named constants, annotated conversions, and literals on
// non-unit quantities are clean.

inline constexpr double kMillisPerSecond = 1e3;

double to_millis(double total_seconds) {
  return total_seconds * kMillisPerSecond;
}

double legacy(double span_seconds) {
  // detlint:allow(time-unit) corpus: literal kept to match a published table
  return span_seconds * 3600;
}

double not_a_unit(double scale) {
  return scale * 1000;
}

double offsets(double bias_ms) {
  return bias_ms + 1000;  // additive, not a conversion
}
