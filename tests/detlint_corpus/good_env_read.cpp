// detlint corpus: configuration arrives through arguments, not the process
// environment; a comment may mention std::getenv freely.
#include <string>

double scale_from_config(double configured) { return configured; }

const std::string kDocs = "SMILESS_BENCH_DURATION is read via std::getenv elsewhere";
