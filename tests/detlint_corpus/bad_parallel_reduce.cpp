// detlint corpus: parallel/vectorized execution policies must be flagged.
#include <execution>
#include <numeric>
#include <vector>

double total(const std::vector<double>& xs) {
  return std::reduce(std::execution::par, xs.begin(), xs.end(), 0.0);
}

double total_unseq(const std::vector<double>& xs) {
  return std::reduce(std::execution::par_unseq, xs.begin(), xs.end(), 0.0);
}
