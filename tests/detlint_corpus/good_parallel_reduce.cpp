// detlint corpus: serial accumulation (fixed order) is clean.
#include <numeric>
#include <vector>

double total(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}
