#include <gtest/gtest.h>

#include <memory>

#include "apps/catalog.hpp"
#include "baselines/experiment.hpp"
#include "cluster/cluster.hpp"
#include "core/smiless_policy.hpp"
#include "sim/engine.hpp"

namespace smiless::core {
namespace {

baselines::ProfileStore& store() {
  static Rng rng(303);
  // detlint:allow(global-state) fixed-seed fixture built once; tests only read it
  static baselines::ProfileStore s{profiler::OfflineProfiler{}, rng};
  return s;
}

/// Harness owning one platform + one SMIless policy for one app.
struct Harness {
  sim::Engine engine;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed();
  Rng rng{11};
  serverless::Platform platform;
  std::shared_ptr<SmilessPolicy> policy;
  serverless::AppId id = -1;
  apps::App app;

  explicit Harness(apps::App a, SmilessOptions options = make_default_options())
      : platform(engine, cluster, perf::Pricing{}, rng), app(std::move(a)) {
    policy = std::make_shared<SmilessPolicy>("SMIless", store().for_app(app), options);
    id = platform.deploy(app, policy);
  }

  static SmilessOptions make_default_options() {
    SmilessOptions o;
    o.use_lstm = false;
    return o;
  }

  void replay(const workload::Trace& trace, double extra = 60.0) {
    for (SimTime t : trace.arrivals) platform.submit_request(id, t);
    const double end = static_cast<double>(trace.counts.size()) * trace.window + extra;
    engine.run_until(end);
    platform.finalize(end);
  }
};

TEST(SmilessPolicy, DeployInstallsPlanForEveryFunction) {
  Harness h(apps::make_voice_assistant());
  for (std::size_t n = 0; n < h.app.dag.size(); ++n) {
    const auto& plan = h.platform.plan(h.id, static_cast<dag::NodeId>(n));
    EXPECT_GE(plan.max_batch, 1);
  }
  const auto& sol = h.policy->solution();
  EXPECT_TRUE(sol.feasible);
  EXPECT_LE(sol.e2e_latency, h.app.sla);
}

TEST(SmilessPolicy, OnePolicyInstancePerApp) {
  auto policy = std::make_shared<SmilessPolicy>(
      "SMIless", store().for_app(apps::make_voice_assistant()), Harness::make_default_options());
  sim::Engine engine;
  cluster::Cluster cl = cluster::Cluster::paper_testbed();
  Rng rng(12);
  serverless::Platform platform(engine, cl, perf::Pricing{}, rng);
  platform.deploy(apps::make_voice_assistant(), policy);
  EXPECT_THROW(platform.deploy(apps::make_voice_assistant(), policy), CheckError);
  platform.finalize(0.0);
}

TEST(SmilessPolicy, SparseArrivalsFlipToPrewarmMode) {
  Harness h(apps::make_voice_assistant());
  Rng trng(13);
  const auto trace = workload::generate_regular_trace(20.0, 0.05, 300.0, trng);
  h.replay(trace);
  // With near-periodic 20 s gaps and T+I ~ 3 s, pre-warm mode should win
  // after the predictor converges.
  int prewarm = 0;
  for (const auto& d : h.policy->solution().per_node)
    if (d.mode == ColdStartMode::Prewarm) ++prewarm;
  EXPECT_GT(prewarm, 0);
  EXPECT_GT(h.policy->predicted_interarrival(), 10.0);
}

TEST(SmilessPolicy, TightArrivalsStayKeepAlive) {
  Harness h(apps::make_voice_assistant());
  Rng trng(14);
  const auto trace = workload::generate_regular_trace(1.0, 0.05, 120.0, trng);
  h.replay(trace);
  for (const auto& d : h.policy->solution().per_node)
    EXPECT_EQ(d.mode, ColdStartMode::KeepAlive);
}

TEST(SmilessPolicy, BurstRaisesInstanceFloorsAndCooldownRestores) {
  Harness h(apps::make_voice_assistant());
  Rng trng(15);
  const auto trace = workload::generate_burst_window(0.5, 12.0, trng);
  for (SimTime t : trace.arrivals) h.platform.submit_request(h.id, t);

  // Mid-burst (t = 35 s): floors should be up.
  h.engine.run_until(35.0);
  int peak_floor = 0;
  for (std::size_t n = 0; n < h.app.dag.size(); ++n)
    peak_floor = std::max(peak_floor,
                          h.platform.plan(h.id, static_cast<dag::NodeId>(n)).min_instances);
  EXPECT_GT(peak_floor, 1);

  // Long after the burst: base plans restored (floor back to zero).
  h.engine.run_until(200.0);
  for (std::size_t n = 0; n < h.app.dag.size(); ++n)
    EXPECT_EQ(h.platform.plan(h.id, static_cast<dag::NodeId>(n)).min_instances, 0);
  h.platform.finalize(200.0);
}

TEST(SmilessPolicy, AutoscalerDisabledKeepsFloorsAtZero) {
  auto options = Harness::make_default_options();
  options.enable_autoscaler = false;
  Harness h(apps::make_voice_assistant(), options);
  Rng trng(16);
  const auto trace = workload::generate_burst_window(0.5, 12.0, trng);
  for (SimTime t : trace.arrivals) h.platform.submit_request(h.id, t);
  h.engine.run_until(35.0);
  for (std::size_t n = 0; n < h.app.dag.size(); ++n) {
    EXPECT_EQ(h.platform.plan(h.id, static_cast<dag::NodeId>(n)).min_instances, 0);
    EXPECT_EQ(h.platform.plan(h.id, static_cast<dag::NodeId>(n)).max_batch, 1);
  }
  h.platform.finalize(35.0);
}

TEST(SmilessPolicy, OracleServesFirstRequestWarm) {
  const auto app = apps::make_voice_assistant();
  Rng trng(17);
  const auto trace = workload::generate_regular_trace(15.0, 0.02, 120.0, trng);

  auto options = Harness::make_default_options();
  options.exhaustive = true;
  auto policy = std::make_shared<SmilessPolicy>("OPT", app.truth, options);
  policy->set_oracle_arrivals(trace.arrivals);

  sim::Engine engine;
  cluster::Cluster cl = cluster::Cluster::paper_testbed();
  Rng rng(18);
  serverless::PlatformOptions popt;
  popt.inference_noise = 0.0;
  serverless::Platform platform(engine, cl, perf::Pricing{}, rng, popt);
  const auto id = platform.deploy(app, policy);
  for (SimTime t : trace.arrivals) platform.submit_request(id, t);
  engine.run_until(180.0);
  platform.finalize(180.0);

  const auto& m = platform.metrics(id);
  ASSERT_FALSE(m.completed.empty());
  // With oracle arrivals even the *first* request finds warm instances.
  EXPECT_LE(m.completed.front().e2e(), app.sla);
  EXPECT_LT(m.sla_violation_ratio(app.sla), 0.10);
}

TEST(SmilessPolicy, HomoOptionNeverTouchesGpu) {
  auto options = Harness::make_default_options();
  options.optimizer.config_space = perf::cpu_only_config_space();
  Harness h(apps::make_image_query(), options);
  Rng trng(19);
  auto to = workload::preset_for_workload(h.app.name, 240.0);
  h.replay(workload::generate_trace(to, trng));
  EXPECT_EQ(h.platform.metrics(h.id).total_gpu_seconds(), 0.0);
}

TEST(SmilessPolicy, ReoptimizationRespectsDwell) {
  auto options = Harness::make_default_options();
  options.reopt_dwell = 1000000;  // effectively never re-optimize
  Harness h(apps::make_voice_assistant(), options);
  const double it_before = h.policy->predicted_interarrival();
  Rng trng(20);
  h.replay(workload::generate_regular_trace(10.0, 0.05, 120.0, trng));
  // Predictions move but the deployed solution still reflects the original
  // inter-arrival assumption (mode decisions unchanged from deploy time).
  EXPECT_NE(h.policy->predicted_interarrival(), it_before);
  for (const auto& d : h.policy->solution().per_node)
    EXPECT_EQ(d.mode, ColdStartMode::KeepAlive);  // the IT=2 s default's verdict
}

TEST(SmilessPolicy, SlaMarginTightensPlanning) {
  auto tight = Harness::make_default_options();
  tight.sla_margin = 0.5;
  auto loose = Harness::make_default_options();
  loose.sla_margin = 1.0;
  Harness ht(apps::make_voice_assistant(), tight);
  Harness hl(apps::make_voice_assistant(), loose);
  EXPECT_LE(ht.policy->solution().e2e_latency, 0.5 * ht.app.sla);
  EXPECT_LE(hl.policy->solution().e2e_latency, hl.app.sla);
  // Tighter planning can only cost more.
  EXPECT_GE(ht.policy->solution().cost_per_invocation,
            hl.policy->solution().cost_per_invocation - 1e-12);
}

TEST(SmilessPolicy, FastPathScalesWithinWindow) {
  Harness h(apps::make_voice_assistant());
  // Six requests land within 0.3 s, far faster than any window tick.
  for (int i = 0; i < 6; ++i) h.platform.submit_request(h.id, 1.0 + 0.05 * i);
  h.engine.run_until(1.5);  // before the t=2.0 window tick
  int floor = 0;
  for (std::size_t n = 0; n < h.app.dag.size(); ++n)
    floor = std::max(floor, h.platform.plan(h.id, static_cast<dag::NodeId>(n)).min_instances);
  EXPECT_GT(floor, 1);  // scaled out without waiting for the window boundary
  h.engine.run_until(120.0);
  h.platform.finalize(120.0);
  EXPECT_EQ(h.platform.in_flight(h.id), 0);
}

TEST(SmilessPolicy, LstmPredictorsTrainAndServe) {
  // Exercise the full Online Predictor path: small train_after so the
  // classifier and the dual-input LSTM actually train inside the run.
  auto options = Harness::make_default_options();
  options.use_lstm = true;
  options.train_after = 60;
  options.count_lstm.epochs = 3;
  options.count_lstm.hidden = 8;
  options.count_lstm.seq_len = 8;
  options.it_lstm = options.count_lstm;
  Harness h(apps::make_voice_assistant(), options);
  Rng trng(21);
  workload::TraceOptions o;
  o.duration = 180.0;
  o.mean_rate = 0.8;
  const auto trace = workload::generate_trace(o, trng);
  h.replay(trace);
  EXPECT_EQ(h.platform.in_flight(h.id), 0);
  EXPECT_GT(h.policy->predicted_interarrival(), 0.0);
  EXPECT_LT(h.platform.metrics(h.id).sla_violation_ratio(h.app.sla), 0.25);
}

TEST(SmilessPolicy, SingleInputItPredictorVariant) {
  // SMIless-S: the single-LSTM inter-arrival configuration of §VII-C2.
  auto options = Harness::make_default_options();
  options.use_lstm = true;
  options.dual_input_it = false;
  options.train_after = 60;
  options.count_lstm.epochs = 2;
  options.count_lstm.hidden = 8;
  options.count_lstm.seq_len = 8;
  options.it_lstm = options.count_lstm;
  Harness h(apps::make_voice_assistant(), options);
  Rng trng(22);
  workload::TraceOptions o;
  o.duration = 150.0;
  o.mean_rate = 0.8;
  h.replay(workload::generate_trace(o, trng));
  EXPECT_EQ(h.platform.in_flight(h.id), 0);
}

TEST(SmilessPolicy, PeriodicRetrainingRefreshesPredictors) {
  auto options = Harness::make_default_options();
  options.use_lstm = true;
  options.train_after = 50;
  options.retrain_every = 50;  // refit twice within the run
  options.count_lstm.epochs = 2;
  options.count_lstm.hidden = 6;
  options.count_lstm.seq_len = 6;
  options.it_lstm = options.count_lstm;
  Harness h(apps::make_voice_assistant(), options);
  Rng trng(23);
  workload::TraceOptions o;
  o.duration = 170.0;
  o.mean_rate = 0.8;
  h.replay(workload::generate_trace(o, trng));
  EXPECT_EQ(h.platform.in_flight(h.id), 0);
}

TEST(SmilessPolicy, SurvivesHeavyLatencyJitter) {
  // Failure injection: 25% multiplicative latency noise (interference,
  // throttling). SMIless must keep serving; violations rise but the run
  // stays live and every request completes.
  sim::Engine engine;
  cluster::Cluster cl = cluster::Cluster::paper_testbed();
  Rng rng(24);
  serverless::PlatformOptions popt;
  popt.inference_noise = 0.25;
  serverless::Platform platform(engine, cl, perf::Pricing{}, rng, popt);
  const auto app = apps::make_voice_assistant();
  auto policy = std::make_shared<SmilessPolicy>("SMIless", store().for_app(app),
                                                Harness::make_default_options());
  const auto id = platform.deploy(app, policy);
  Rng trng(25);
  workload::TraceOptions o;
  o.duration = 200.0;
  const auto trace = workload::generate_trace(o, trng);
  for (SimTime t : trace.arrivals) platform.submit_request(id, t);
  engine.run_until(280.0);
  platform.finalize(280.0);
  EXPECT_EQ(platform.in_flight(id), 0);
  EXPECT_LT(platform.metrics(id).sla_violation_ratio(app.sla), 0.5);
}

TEST(SmilessPolicy, SurvivesCapacityStarvedCluster) {
  // Failure injection: a cluster a fraction of the paper's size. Scale-out
  // allocations fail, the retry path engages, and every request still
  // completes eventually.
  sim::Engine engine;
  cluster::Cluster cl(1, {12, 100});
  Rng rng(26);
  serverless::Platform platform(engine, cl, perf::Pricing{}, rng);
  const auto app = apps::make_voice_assistant();
  auto policy = std::make_shared<SmilessPolicy>("SMIless", store().for_app(app),
                                                Harness::make_default_options());
  const auto id = platform.deploy(app, policy);
  Rng trng(27);
  const auto trace = workload::generate_burst_window(0.5, 8.0, trng);
  for (SimTime t : trace.arrivals) platform.submit_request(id, t);
  engine.run_until(300.0);
  platform.finalize(300.0);
  EXPECT_EQ(platform.in_flight(id), 0);
}

}  // namespace
}  // namespace smiless::core
