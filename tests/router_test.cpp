// Unit tests for the Router seam (serverless/router.hpp): the read-only
// CandidateView, the historical warm-first dispatch order, and the
// power-of-two-choices router used inside sharded lanes.
#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "serverless/router.hpp"

using namespace smiless;
using namespace smiless::serverless;

namespace {

Instance make_instance(InstanceState st, perf::HwConfig config, bool served = false) {
  Instance inst;
  inst.st = st;
  inst.config = config;
  inst.served = served;
  return inst;
}

constexpr perf::HwConfig kCpu1{perf::Backend::Cpu, 1, 0};
constexpr perf::HwConfig kCpu4{perf::Backend::Cpu, 4, 0};

RoutingContext context_for(const FunctionPlan& plan, int lane = 0) {
  RoutingContext ctx;
  ctx.plan = &plan;
  ctx.lane = lane;
  return ctx;
}

TEST(CandidateView, IsReadOnlyAndIndexable) {
  // The seam's whole point: routers can look but not touch.
  static_assert(std::is_same_v<decltype(std::declval<const CandidateView&>()[0]),
                               const Instance&>);
  static_assert(std::is_same_v<decltype(std::declval<const CandidateView&>().begin()),
                               const Instance*>);

  std::vector<Instance> pool = {make_instance(InstanceState::Busy, kCpu1),
                                make_instance(InstanceState::Idle, kCpu4)};
  const CandidateView view(pool.data(), pool.size());
  EXPECT_EQ(view.size(), 2u);
  EXPECT_FALSE(view.empty());
  EXPECT_EQ(view[1].st, InstanceState::Idle);
  EXPECT_EQ(view.end() - view.begin(), 2);

  const CandidateView none(nullptr, 0);
  EXPECT_TRUE(none.empty());
}

TEST(WarmFirstRouter, PrefersConfigMatchOverEarlierIdle) {
  FunctionPlan plan;
  plan.config = kCpu4;
  std::vector<Instance> pool = {make_instance(InstanceState::Busy, kCpu4),
                                make_instance(InstanceState::Idle, kCpu1),
                                make_instance(InstanceState::Idle, kCpu4)};
  WarmFirstRouter router;
  const auto pick = router.select(CandidateView(pool.data(), pool.size()), context_for(plan));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);  // the matching instance, not the first idle one
}

TEST(WarmFirstRouter, FallsBackToFirstIdleMismatch) {
  FunctionPlan plan;
  plan.config = kCpu4;
  std::vector<Instance> pool = {make_instance(InstanceState::Init, kCpu4),
                                make_instance(InstanceState::Idle, kCpu1),
                                make_instance(InstanceState::Idle, kCpu1)};
  WarmFirstRouter router;
  const auto pick = router.select(CandidateView(pool.data(), pool.size()), context_for(plan));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);  // warm is warm — use the earliest idle instance
}

TEST(WarmFirstRouter, NoIdleMeansNoPick) {
  FunctionPlan plan;
  std::vector<Instance> pool = {make_instance(InstanceState::Busy, kCpu1),
                                make_instance(InstanceState::Init, kCpu1)};
  WarmFirstRouter router;
  EXPECT_FALSE(router.select(CandidateView(pool.data(), pool.size()), context_for(plan))
                   .has_value());
  EXPECT_FALSE(router.select(CandidateView(nullptr, 0), context_for(plan)).has_value());
}

TEST(ShardedRouter, AlwaysPicksIdleAndReplaysDeterministically) {
  FunctionPlan plan;
  plan.config = kCpu4;
  std::vector<Instance> pool;
  for (int i = 0; i < 6; ++i)
    pool.push_back(make_instance(i % 2 == 0 ? InstanceState::Idle : InstanceState::Busy,
                                 i < 3 ? kCpu1 : kCpu4, i % 3 == 0));

  ShardedRouter a(7), b(7);
  std::vector<std::size_t> picks_a, picks_b;
  for (int round = 0; round < 64; ++round) {
    const auto pa = a.select(CandidateView(pool.data(), pool.size()), context_for(plan, 3));
    const auto pb = b.select(CandidateView(pool.data(), pool.size()), context_for(plan, 3));
    ASSERT_TRUE(pa.has_value());
    ASSERT_TRUE(pb.has_value());
    EXPECT_EQ(pool[*pa].st, InstanceState::Idle);
    picks_a.push_back(*pa);
    picks_b.push_back(*pb);
  }
  // Same salt, same lane, same call sequence => identical draw streams.
  EXPECT_EQ(picks_a, picks_b);
  EXPECT_EQ(a.draws(), b.draws());
  EXPECT_EQ(a.draws(), 64u);
}

TEST(ShardedRouter, SingleIdleShortCircuitsWithoutADraw) {
  FunctionPlan plan;
  std::vector<Instance> pool = {make_instance(InstanceState::Busy, kCpu1),
                                make_instance(InstanceState::Idle, kCpu1)};
  ShardedRouter router;
  const auto pick = router.select(CandidateView(pool.data(), pool.size()), context_for(plan));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
  EXPECT_EQ(router.draws(), 0u);  // the counter only advances on real choices

  std::vector<Instance> busy = {make_instance(InstanceState::Busy, kCpu1)};
  EXPECT_FALSE(router.select(CandidateView(busy.data(), busy.size()), context_for(plan))
                   .has_value());
  EXPECT_EQ(router.draws(), 0u);
}

TEST(ShardedRouter, PrefersPlanMatchThenUnservedThenLowIndex) {
  FunctionPlan plan;
  plan.config = kCpu4;
  ShardedRouter router(123);

  // Two idle candidates: p2c always considers both, so the preference
  // ladder is directly observable.
  std::vector<Instance> match_wins = {make_instance(InstanceState::Idle, kCpu1),
                                      make_instance(InstanceState::Idle, kCpu4)};
  auto pick =
      router.select(CandidateView(match_wins.data(), match_wins.size()), context_for(plan));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);

  std::vector<Instance> unserved_wins = {
      make_instance(InstanceState::Idle, kCpu4, /*served=*/true),
      make_instance(InstanceState::Idle, kCpu4, /*served=*/false)};
  pick = router.select(CandidateView(unserved_wins.data(), unserved_wins.size()),
                       context_for(plan));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);

  std::vector<Instance> tie = {make_instance(InstanceState::Idle, kCpu4),
                               make_instance(InstanceState::Idle, kCpu4)};
  pick = router.select(CandidateView(tie.data(), tie.size()), context_for(plan));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0u);  // full tie -> the lower index
}

TEST(ShardedRouter, LaneDecorrelatesTheDrawStream) {
  FunctionPlan plan;
  plan.config = kCpu4;
  // Four identical idle candidates: the pick is a pure function of the hash
  // stream, so two lanes with the same salt should disagree somewhere.
  std::vector<Instance> pool(4, make_instance(InstanceState::Idle, kCpu4));
  ShardedRouter lane0(42), lane1(42);
  bool diverged = false;
  for (int round = 0; round < 256 && !diverged; ++round) {
    const auto p0 = lane0.select(CandidateView(pool.data(), pool.size()), context_for(plan, 0));
    const auto p1 = lane1.select(CandidateView(pool.data(), pool.size()), context_for(plan, 1));
    diverged = *p0 != *p1;
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
