#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "concurrency/thread_pool.hpp"

namespace smiless {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i)
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, CoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(500, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 500);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 8,
                            [](std::size_t i) {
                              if (i == 3) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(ParallelMap, PreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map(pool, 64, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

}  // namespace
}  // namespace smiless
