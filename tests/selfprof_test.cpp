// Runtime self-profiler suite (DESIGN.md §15).
//
// Contracts under test:
//  - exclusive accounting: with a root scope bracketing the run, the
//    exclusive times of all sites sum *exactly* to the root's inclusive
//    time (the bench's ">= 90% coverage" invariant, by construction);
//  - merge() is order-invariant and grouping-invariant, and keeps a
//    per-lane breakdown;
//  - a null profiler pointer is a true no-op (the zero-overhead-when-off
//    story);
//  - attaching a profiler to a real cell never moves the trajectory: the
//    results and every comparable artifact stay byte-identical.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "exp/config.hpp"
#include "exp/runner.hpp"
#include "obs/telemetry.hpp"
#include "prof/profiler.hpp"

using namespace smiless;

namespace {

std::uint64_t exclusive_sum(const prof::Profiler& p) {
  std::uint64_t sum = 0;
  for (const prof::SiteAgg& a : p.sites()) sum += a.exclusive_ns;
  return sum;
}

/// Busy-wait a little so scopes accumulate nonzero wall time. Wall-clock by
/// design: this file tests the quarantined profiler itself.
void burn() {
  const std::uint64_t t0 = prof::now_ns();
  while (prof::now_ns() - t0 < 50'000) {
  }
}

TEST(SelfProfiler, ExclusiveTimesSumExactlyToRootInclusive) {
  prof::Profiler p;
  p.enter(prof::Site::CellRun);
  burn();
  for (int i = 0; i < 3; ++i) {
    p.enter(prof::Site::EngineRun);
    burn();
    p.enter(prof::Site::Dispatch);
    burn();
    p.leave();
    p.enter(prof::Site::GatewayWindow);
    p.enter(prof::Site::PolicyWindow);
    burn();
    p.leave();
    p.leave();
    p.leave();
  }
  p.leave();

  ASSERT_GT(p.root_ns(), 0u);
  // The telescoping child_ns bookkeeping makes this equality exact, not
  // approximate: every nanosecond inside the root is charged to exactly one
  // site's exclusive bucket.
  EXPECT_EQ(exclusive_sum(p), p.root_ns());
  EXPECT_EQ(p.sites()[static_cast<std::size_t>(prof::Site::EngineRun)].count, 3u);
  EXPECT_EQ(p.sites()[static_cast<std::size_t>(prof::Site::Dispatch)].count, 3u);
}

TEST(SelfProfiler, NullProfilerScopeTimerIsANoop) {
  // Must not crash nor allocate; the whole off-path is one branch.
  for (int i = 0; i < 1000; ++i) {
    prof::ScopeTimer a(nullptr, prof::Site::EngineRun);
    prof::ScopeTimer b(nullptr, prof::Site::Dispatch);
  }
  SUCCEED();
}

prof::Profiler make_donor(int lane, int scopes) {
  prof::Profiler p(lane);
  for (int i = 0; i < scopes; ++i) {
    p.enter(prof::Site::LaneStep);
    p.enter(prof::Site::EngineRun);
    burn();
    p.leave();
    p.leave();
    p.sample(static_cast<double>(i), prof::Counter::EngineFired, static_cast<double>(i));
  }
  return p;
}

void expect_same_totals(const prof::Profiler& a, const prof::Profiler& b) {
  for (std::size_t i = 0; i < prof::kSiteCount; ++i) {
    EXPECT_EQ(a.sites()[i].count, b.sites()[i].count);
    EXPECT_EQ(a.sites()[i].inclusive_ns, b.sites()[i].inclusive_ns);
    EXPECT_EQ(a.sites()[i].exclusive_ns, b.sites()[i].exclusive_ns);
  }
  ASSERT_EQ(a.lanes().size(), b.lanes().size());
  for (std::size_t l = 0; l < a.lanes().size(); ++l) {
    EXPECT_EQ(a.lanes()[l].lane, b.lanes()[l].lane);
    for (std::size_t i = 0; i < prof::kSiteCount; ++i) {
      EXPECT_EQ(a.lanes()[l].sites[i].inclusive_ns, b.lanes()[l].sites[i].inclusive_ns);
      EXPECT_EQ(a.lanes()[l].sites[i].exclusive_ns, b.lanes()[l].sites[i].exclusive_ns);
    }
  }
  EXPECT_EQ(a.samples().size(), b.samples().size());
}

TEST(SelfProfiler, MergeIsOrderInvariantAndKeepsLaneBreakdown) {
  const prof::Profiler a = make_donor(0, 2);
  const prof::Profiler b = make_donor(1, 3);
  const prof::Profiler c = make_donor(2, 1);

  prof::Profiler forward;
  forward.merge(a);
  forward.merge(b);
  forward.merge(c);

  prof::Profiler backward;
  backward.merge(c);
  backward.merge(b);
  backward.merge(a);

  expect_same_totals(forward, backward);
  ASSERT_EQ(forward.lanes().size(), 3u);
  EXPECT_EQ(forward.lanes()[0].lane, 0);
  EXPECT_EQ(forward.lanes()[1].lane, 1);
  EXPECT_EQ(forward.lanes()[2].lane, 2);
  EXPECT_EQ(forward.lanes()[1].sites[static_cast<std::size_t>(prof::Site::LaneStep)].count,
            3u);
}

TEST(SelfProfiler, MergeIsGroupingInvariant) {
  const prof::Profiler a = make_donor(0, 2);
  const prof::Profiler b = make_donor(1, 2);
  const prof::Profiler c = make_donor(2, 2);

  // (a + b) + c
  prof::Profiler left;
  left.merge(a);
  left.merge(b);
  left.merge(c);

  // a + (b + c): the intermediate has its own lane breakdown already, which
  // merge must adopt without double-counting.
  prof::Profiler mid;
  mid.merge(b);
  mid.merge(c);
  prof::Profiler right;
  right.merge(a);
  right.merge(mid);

  expect_same_totals(left, right);
}

TEST(SelfProfiler, SnapshotCarriesTotalsThroughRawBytes) {
  prof::Profiler p;
  p.enter(prof::Site::CellRun);
  burn();
  p.leave();
  const prof::Snapshot s = p.snapshot();
  EXPECT_EQ(s.root_ns, p.root_ns());

  // The bench ships snapshots through a fork pipe as raw bytes.
  char buf[sizeof(prof::Snapshot)];
  std::memcpy(buf, &s, sizeof(s));
  prof::Snapshot back{};
  std::memcpy(&back, buf, sizeof(back));
  EXPECT_EQ(back.root_ns, s.root_ns);
  EXPECT_EQ(back.sites[static_cast<std::size_t>(prof::Site::CellRun)].inclusive_ns,
            s.sites[static_cast<std::size_t>(prof::Site::CellRun)].inclusive_ns);

  const json::Value v = prof::snapshot_to_json(s);
  EXPECT_EQ(v.get("coverage", 0.0), 1.0);
  EXPECT_GT(v.get("total_ms", 0.0), 0.0);
}

exp::ExperimentConfig small_cell() {
  exp::ExperimentConfig c;
  c.app = "wl1";
  c.policy = "orion";
  c.trace.duration = 60.0;
  c.obs.metrics_out = "unused.json";  // collect on, nothing written
  return c;
}

exp::Runner& runner() {
  static exp::Runner r(exp::RunnerOptions{});
  return r;
}

/// Attaching the profiler (RunnerOptions-forced, the sweep path) must be
/// unobservable in the trajectory and in every comparable artifact.
TEST(SelfProfiler, ProfilingNeverMovesTheTrajectory) {
  const auto& store = runner().profiles(2024);
  const exp::CellResult off = exp::Runner::run_cell(small_cell(), store,
                                                    runner().policy_pool(), 0,
                                                    /*force_profile=*/false);
  const exp::CellResult on = exp::Runner::run_cell(small_cell(), store,
                                                   runner().policy_pool(), 0,
                                                   /*force_profile=*/true);
  EXPECT_EQ(off.profile, nullptr);
  ASSERT_NE(on.profile, nullptr);

  EXPECT_EQ(off.result.cost, on.result.cost);
  EXPECT_EQ(off.result.e2e, on.result.e2e);
  EXPECT_EQ(off.result.completed, on.result.completed);
  EXPECT_EQ(off.result.invocations, on.result.invocations);
  ASSERT_NE(off.telemetry, nullptr);
  ASSERT_NE(on.telemetry, nullptr);
  EXPECT_EQ(off.telemetry->metrics_json().dump(), on.telemetry->metrics_json().dump());

  // The attached profiler saw the run end-to-end: rooted, fully covered,
  // with the instrumented subsystems populated.
  EXPECT_GT(on.profile->root_ns(), 0u);
  EXPECT_EQ(exclusive_sum(*on.profile), on.profile->root_ns());
  EXPECT_GT(on.profile->sites()[static_cast<std::size_t>(prof::Site::EngineRun)].count, 0u);
  EXPECT_GT(on.profile->sites()[static_cast<std::size_t>(prof::Site::Dispatch)].count, 0u);
  EXPECT_FALSE(on.profile->samples().empty());

  const json::Value j = on.profile->to_json();
  EXPECT_GE(j.get("coverage", 0.0), 0.9);
  const json::Value events = on.profile->perfetto_events(0);
  EXPECT_GT(events.items().size(), 0u);
}

}  // namespace
