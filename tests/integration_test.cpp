#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "baselines/experiment.hpp"
#include "core/smiless_policy.hpp"
#include "math/stats.hpp"

namespace smiless {
namespace {

using baselines::ExperimentOptions;
using baselines::make_policy;
using baselines::PolicyKind;
using baselines::PolicySettings;
using baselines::ProfileStore;
using baselines::run_experiment;

ProfileStore& store() {
  static Rng rng(202);
  // detlint:allow(global-state) fixed-seed fixture built once; tests only read it
  static ProfileStore s{profiler::OfflineProfiler{}, rng};
  return s;
}

workload::Trace trace_for(const apps::App& app, std::uint64_t seed, double duration) {
  Rng rng(seed);
  auto o = workload::preset_for_workload(app.name, duration);
  return workload::generate_trace(o, rng);
}

ExperimentOptions fast_options() {
  ExperimentOptions o;
  o.drain_slack = 60.0;
  return o;
}

PolicySettings no_lstm() {
  PolicySettings s;
  s.use_lstm = false;  // keep the integration suite fast
  return s;
}

TEST(Integration, SmilessServesAllWorkloadsWithinSla) {
  for (const auto& app : apps::make_all_workloads(2.0)) {
    const auto trace = trace_for(app, 31, 240.0);
    const auto r = run_experiment(app, trace,
                                  make_policy(PolicyKind::Smiless, app, store(), no_lstm()),
                                  fast_options());
    EXPECT_EQ(r.completed, r.submitted) << app.name;
    // The paper reports zero violations on Azure traces whose bursts its
    // LSTM anticipates. Our synthetic bursts start at Poisson-random times
    // — unpredictable one window ahead by construction — so reactive
    // scale-out pays one cold-start window per burst. The tail this leaves
    // stays far below the 40%+ of the cold-start-oblivious baselines.
    EXPECT_LT(r.violation_ratio, 0.16) << app.name;
    EXPECT_GT(r.cost, 0.0) << app.name;
  }
}

TEST(Integration, SmilessBeatsIceBreakerOnCost) {
  // Fig. 8a's headline: SMIless is multiples cheaper than IceBreaker.
  const auto app = apps::make_voice_assistant();
  const auto trace = trace_for(app, 32, 300.0);
  const auto sm = run_experiment(app, trace,
                                 make_policy(PolicyKind::Smiless, app, store(), no_lstm()),
                                 fast_options());
  const auto ib = run_experiment(app, trace,
                                 make_policy(PolicyKind::IceBreaker, app, store(), no_lstm()),
                                 fast_options());
  EXPECT_LT(sm.cost, ib.cost);
}

TEST(Integration, SmilessCheaperThanGrandSlam) {
  const auto app = apps::make_image_query();
  const auto trace = trace_for(app, 33, 300.0);
  const auto sm = run_experiment(app, trace,
                                 make_policy(PolicyKind::Smiless, app, store(), no_lstm()),
                                 fast_options());
  const auto gs = run_experiment(app, trace,
                                 make_policy(PolicyKind::GrandSlam, app, store(), no_lstm()),
                                 fast_options());
  EXPECT_LT(sm.cost, gs.cost);
}

TEST(Integration, OptNoMoreExpensiveThanSmiless) {
  const auto app = apps::make_voice_assistant();
  const auto trace = trace_for(app, 34, 240.0);
  auto s = no_lstm();
  s.oracle_trace = &trace;
  const auto sm = run_experiment(app, trace,
                                 make_policy(PolicyKind::Smiless, app, store(), s),
                                 fast_options());
  const auto opt = run_experiment(app, trace, make_policy(PolicyKind::Opt, app, store(), s),
                                  fast_options());
  // Oracle knowledge plus exhaustive search should not lose; tolerate a
  // small margin for simulator noise. The oracle sees arrival times but
  // instances still initialise cold at burst onsets, so a thin violation
  // tail remains.
  EXPECT_LT(opt.cost, sm.cost * 1.15);
  EXPECT_LE(opt.violation_ratio, sm.violation_ratio + 0.05);
  EXPECT_LT(opt.violation_ratio, 0.12);
}

TEST(Integration, NoDagAblationCostsMoreWhenPrewarming) {
  // Fig. 13a: ignoring DAG offsets warms instances too early and wastes
  // billed idle time. Pre-warm mode needs sparse arrivals to engage, so the
  // ablation is measured on a ~10 s mean inter-arrival trace.
  const auto app = apps::make_amber_alert();
  Rng rng(35);
  const auto trace = workload::generate_regular_trace(10.0, 0.05, 400.0, rng);
  const auto sm = run_experiment(app, trace,
                                 make_policy(PolicyKind::Smiless, app, store(), no_lstm()),
                                 fast_options());
  const auto nd = run_experiment(app, trace,
                                 make_policy(PolicyKind::SmilessNoDag, app, store(), no_lstm()),
                                 fast_options());
  EXPECT_GT(nd.cost, sm.cost * 1.02);
}

TEST(Integration, DeterministicAcrossRuns) {
  const auto app = apps::make_voice_assistant();
  const auto trace = trace_for(app, 36, 120.0);
  const auto a = run_experiment(app, trace,
                                make_policy(PolicyKind::Smiless, app, store(), no_lstm()),
                                fast_options());
  const auto b = run_experiment(app, trace,
                                make_policy(PolicyKind::Smiless, app, store(), no_lstm()),
                                fast_options());
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_EQ(a.e2e.size(), b.e2e.size());
  for (std::size_t i = 0; i < a.e2e.size(); ++i) EXPECT_DOUBLE_EQ(a.e2e[i], b.e2e[i]);
}

TEST(Integration, BurstTraceTriggersScaleOut) {
  const auto app = apps::make_voice_assistant();
  Rng rng(37);
  const auto trace = workload::generate_burst_window(0.5, 12.0, rng);
  const auto r = run_experiment(app, trace,
                                make_policy(PolicyKind::Smiless, app, store(), no_lstm()),
                                fast_options());
  EXPECT_EQ(r.completed, r.submitted);
  // During the burst the platform must have run several instances at once.
  int max_instances = 0;
  for (const auto& w : r.windows) max_instances = std::max(max_instances, w.instances_total);
  EXPECT_GT(max_instances, static_cast<int>(app.dag.size()));
  // Batching should keep violations bounded even at 12 rps.
  EXPECT_LT(r.violation_ratio, 0.35);
}

TEST(Integration, WindowSeriesAlignsWithTrace) {
  const auto app = apps::make_voice_assistant();
  const auto trace = trace_for(app, 38, 90.0);
  const auto r = run_experiment(app, trace,
                                make_policy(PolicyKind::GrandSlam, app, store(), no_lstm()),
                                fast_options());
  ASSERT_GE(r.windows.size(), trace.counts.size());
  long total = 0;
  for (const auto& w : r.windows) total += w.arrivals;
  EXPECT_EQ(total, r.submitted);
}

TEST(Integration, CostsScaleWithTraceLength) {
  const auto app = apps::make_voice_assistant();
  const auto short_trace = trace_for(app, 39, 120.0);
  const auto long_trace = trace_for(app, 39, 360.0);
  const auto a = run_experiment(app, short_trace,
                                make_policy(PolicyKind::GrandSlam, app, store(), no_lstm()),
                                fast_options());
  const auto b = run_experiment(app, long_trace,
                                make_policy(PolicyKind::GrandSlam, app, store(), no_lstm()),
                                fast_options());
  EXPECT_GT(b.cost, a.cost * 1.5);  // GrandSLAm's cost is mostly duration-driven
}

TEST(Integration, ColocatedDeploymentSharesOneCluster) {
  // The paper's §VII-A setup: every workload on the same 8-machine cluster
  // with its own load generator.
  const auto workloads = apps::make_all_workloads(2.0);
  std::vector<workload::Trace> traces;
  for (const auto& app : workloads) traces.push_back(trace_for(app, 40, 180.0));
  std::vector<baselines::ColocatedApp> deployment;
  for (std::size_t i = 0; i < workloads.size(); ++i)
    deployment.push_back({workloads[i], &traces[i],
                          make_policy(PolicyKind::Smiless, workloads[i], store(), no_lstm())});
  const auto results = baselines::run_colocated(std::move(deployment), fast_options());
  ASSERT_EQ(results.size(), workloads.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].app, workloads[i].name);
    EXPECT_EQ(results[i].completed, results[i].submitted) << workloads[i].name;
    EXPECT_GT(results[i].cost, 0.0);
  }
}

TEST(Integration, ColocatedMatchesIsolatedWhenUncontended) {
  // With light load the shared cluster never saturates, so co-located and
  // isolated runs of the same (app, trace, policy) agree on the outcome
  // counts (costs differ only through RNG stream interleaving).
  const auto app = apps::make_voice_assistant();
  const auto trace = trace_for(app, 41, 120.0);
  const auto isolated = run_experiment(app, trace,
                                       make_policy(PolicyKind::GrandSlam, app, store(), no_lstm()),
                                       fast_options());
  std::vector<baselines::ColocatedApp> deployment;
  deployment.push_back({app, &trace,
                        make_policy(PolicyKind::GrandSlam, app, store(), no_lstm())});
  const auto co = baselines::run_colocated(std::move(deployment), fast_options());
  ASSERT_EQ(co.size(), 1u);
  EXPECT_EQ(co[0].submitted, isolated.submitted);
  EXPECT_EQ(co[0].completed, isolated.completed);
  EXPECT_EQ(co[0].initializations, isolated.initializations);
  EXPECT_NEAR(co[0].cost, isolated.cost, 0.05 * isolated.cost);
}

TEST(Integration, GoldenSeedScenarioPinned) {
  // Golden regression: the headline numbers of one pinned (seed, app,
  // policy) scenario. Any change to dispatch order, RNG consumption,
  // billing or retry timing moves these; update them only for intentional
  // semantic changes. Counts are exact; continuous metrics get a 0.5%
  // tolerance for toolchain-dependent libstdc++ distribution details.
  const auto app = apps::make_voice_assistant();
  const auto trace = trace_for(app, 42, 180.0);
  const auto r = run_experiment(app, trace,
                                make_policy(PolicyKind::Smiless, app, store(), no_lstm()),
                                fast_options());
  // Values measured at the commit introducing this test; identical to the
  // pre-fault-layer seed build, confirming the disabled fault path changes
  // nothing.
  EXPECT_EQ(r.submitted, 92);
  EXPECT_EQ(r.completed, 92);
  EXPECT_EQ(r.failed, 0);
  EXPECT_EQ(r.initializations, 45);
  EXPECT_NEAR(r.cost, 0.0439123, 0.005 * 0.0439123);
  EXPECT_NEAR(math::percentile(r.e2e, 99), 3.53968, 0.005 * 3.53968);
}

TEST(Integration, SmilessSurvivesFaultsWithHighGoodput) {
  // Acceptance scenario for the failure model: 5% init failures plus one
  // 45 s machine outage mid-run must not cost SMIless more than 1% of its
  // requests.
  const auto app = apps::make_voice_assistant();
  const auto trace = trace_for(app, 43, 240.0);
  auto options = fast_options();
  options.faults.init_failure_prob = 0.05;
  options.faults.crashes.push_back({/*machine=*/0, /*at=*/80.0, /*duration=*/45.0});
  options.platform.request_timeout = 90.0;
  const auto r = run_experiment(app, trace,
                                make_policy(PolicyKind::Smiless, app, store(), no_lstm()),
                                options);
  EXPECT_GE(r.goodput(), 0.99) << "failed=" << r.failed << " submitted=" << r.submitted;
  EXPECT_GT(r.init_failures, 0);  // the faults actually fired
}

}  // namespace
}  // namespace smiless
