#include <gtest/gtest.h>

#include <memory>

#include "apps/catalog.hpp"
#include "cluster/cluster.hpp"
#include "serverless/platform.hpp"
#include "sim/engine.hpp"

namespace smiless::serverless {
namespace {

/// Static test policy: installs a fixed plan for every function.
// Deliberately still overrides the deprecated Platform& hook: this suite is
// the coverage for the one-release migration shims (policy.hpp).
class FixedPolicy : public Policy {
 public:
  explicit FixedPolicy(FunctionPlan plan) : plan_(plan) {}
  std::string name() const override { return "fixed"; }
  void on_deploy(AppId app, const apps::App& spec, Platform& p) override {
    for (std::size_t n = 0; n < spec.dag.size(); ++n)
      p.set_plan(app, static_cast<dag::NodeId>(n), plan_);
  }

 private:
  FunctionPlan plan_;
};

struct Fixture {
  sim::Engine engine;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed();
  Rng rng{123};
  PlatformOptions options;
  std::unique_ptr<Platform> platform;

  explicit Fixture(double noise = 0.0) {
    options.inference_noise = noise;
    platform = std::make_unique<Platform>(engine, cluster, perf::Pricing{}, rng, options);
  }
};

FunctionPlan warm_plan() {
  FunctionPlan p;
  p.config = {perf::Backend::Cpu, 4, 0};
  p.keepalive = FunctionPlan::forever();
  return p;
}

TEST(Platform, SingleRequestCompletesThroughPipeline) {
  Fixture f;
  const auto id = f.platform->deploy(apps::make_voice_assistant(),
                                     std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(200.0);
  f.platform->finalize(200.0);

  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 1u);
  EXPECT_EQ(m.submitted, 1);
  // E2E includes the cold init of every stage (no pre-warming here).
  EXPECT_GT(m.completed[0].e2e(), 1.0);
}

TEST(Platform, ColdStartOnlyOnFirstOfTwoSpacedRequests) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.platform->submit_request(id, 60.0);
  f.engine.run_until(200.0);
  f.platform->finalize(200.0);

  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 2u);
  // Keep-alive forever: each function initialised exactly once.
  EXPECT_EQ(m.total_initializations(), static_cast<long>(app.dag.size()));
  // Second request is much faster (warm path).
  EXPECT_LT(m.completed[1].e2e(), m.completed[0].e2e() * 0.5);
}

TEST(Platform, DagFanOutExecutesAllFunctions) {
  Fixture f;
  const auto app = apps::make_amber_alert();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(300.0);
  f.platform->finalize(300.0);

  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 1u);
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    EXPECT_EQ(m.per_function[n].invocations, 1) << app.dag.name(static_cast<dag::NodeId>(n));
}

TEST(Platform, ParallelBranchesOverlap) {
  // AMBER's three recognisers run concurrently: E2E under a warm start is
  // close to the critical path, far below the sum of all six stages.
  Fixture f;
  const auto app = apps::make_amber_alert();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  // Warm everything with a first request, then measure the second.
  f.platform->submit_request(id, 1.0);
  f.platform->submit_request(id, 100.0);
  f.engine.run_until(300.0);
  f.platform->finalize(300.0);

  std::vector<double> w(app.dag.size());
  double sum = 0.0;
  for (std::size_t n = 0; n < app.dag.size(); ++n) {
    w[n] = app.truth[n].inference_time({perf::Backend::Cpu, 4, 0}, 1);
    sum += w[n];
  }
  const double critical = app.dag.critical_path_weight(w);
  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 2u);
  const double warm_e2e = m.completed[1].e2e();
  EXPECT_LT(warm_e2e, sum * 0.8);
  EXPECT_NEAR(warm_e2e, critical, 0.35 * critical);
}

TEST(Platform, KeepaliveZeroTerminatesAfterUse) {
  Fixture f;
  FunctionPlan plan = warm_plan();
  plan.keepalive = 0.0;
  const auto id =
      f.platform->deploy(apps::make_voice_assistant(), std::make_shared<FixedPolicy>(plan));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(100.0);

  const auto& app = f.platform->app_spec(id);
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    EXPECT_EQ(f.platform->instances_total(id, static_cast<dag::NodeId>(n)), 0);
  f.platform->finalize(100.0);
}

TEST(Platform, FiniteKeepaliveReapsAfterIdlePeriod) {
  Fixture f;
  FunctionPlan plan = warm_plan();
  plan.keepalive = 10.0;
  const auto id =
      f.platform->deploy(apps::make_voice_assistant(), std::make_shared<FixedPolicy>(plan));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(12.0);
  // Still warm shortly after completion...
  int total_at_12 = 0;
  for (std::size_t n = 0; n < 4; ++n)
    total_at_12 += f.platform->instances_total(id, static_cast<dag::NodeId>(n));
  EXPECT_GT(total_at_12, 0);
  f.engine.run_until(60.0);
  for (std::size_t n = 0; n < 4; ++n)
    EXPECT_EQ(f.platform->instances_total(id, static_cast<dag::NodeId>(n)), 0);
  f.platform->finalize(60.0);
}

TEST(Platform, PrewarmAvoidsColdStartOnCriticalPath) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  FunctionPlan plan = warm_plan();
  plan.keepalive = 0.0;
  plan.prewarm_grace = 10.0;
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(plan));

  // Pre-warm every function early enough to be ready at t=30; the grace
  // keeps the warmed (never-used) instances alive until then.
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    f.platform->prewarm_at(id, static_cast<dag::NodeId>(n), 25.0);
  f.platform->submit_request(id, 30.0);
  f.engine.run_until(100.0);
  f.platform->finalize(100.0);

  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 1u);
  // All inits overlapped the idle pre-warm period: E2E ~ sum of inference.
  std::vector<double> w(app.dag.size());
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    w[n] = app.truth[n].inference_time({perf::Backend::Cpu, 4, 0}, 1);
  EXPECT_NEAR(m.completed[0].e2e(), app.dag.critical_path_weight(w),
              0.4 * app.dag.critical_path_weight(w));
}

TEST(Platform, PrewarmSkipsWhenInstanceAlreadyWarm) {
  Fixture f;
  const auto id = f.platform->deploy(apps::make_voice_assistant(),
                                     std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(50.0);
  const auto& m0 = f.platform->metrics(id);
  const long inits_before = m0.total_initializations();
  f.platform->prewarm_at(id, 0, 55.0);
  f.engine.run_until(80.0);
  EXPECT_EQ(f.platform->metrics(id).total_initializations(), inits_before);
  f.platform->finalize(80.0);
}

TEST(Platform, BatchingGroupsQueuedInvocations) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  FunctionPlan plan = warm_plan();
  plan.max_batch = 8;
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(plan));
  // Six requests land at nearly the same instant.
  for (int i = 0; i < 6; ++i) f.platform->submit_request(id, 1.0 + 0.001 * i);
  f.engine.run_until(300.0);
  f.platform->finalize(300.0);

  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 6u);
  // Downstream stages see the batch arrive together: fewer inference calls
  // than invocations.
  const auto db = app.dag.find("DB");
  EXPECT_EQ(m.per_function[db].invocations, 6);
  EXPECT_LT(m.per_function[db].batches, 6);
}

TEST(Platform, MinInstancesFloorSpawnsImmediately) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  FunctionPlan plan = warm_plan();
  plan.min_instances = 3;
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(plan));
  f.engine.run_until(20.0);
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    EXPECT_EQ(f.platform->instances_total(id, static_cast<dag::NodeId>(n)), 3);
  f.platform->finalize(20.0);
}

TEST(Platform, BillingMatchesLifetimeTimesUnitPrice) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  FunctionPlan plan = warm_plan();
  plan.min_instances = 1;
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(plan));
  f.engine.run_until(100.0);
  f.platform->finalize(100.0);

  const perf::Pricing pricing;
  const double per_inst = 100.0 * pricing.per_second({perf::Backend::Cpu, 4, 0});
  const auto& m = f.platform->metrics(id);
  // 4 functions x 1 instance alive from t=0 to t=100.
  EXPECT_NEAR(m.total_cost(), 4.0 * per_inst, 0.05 * 4.0 * per_inst);
}

TEST(Platform, WindowSamplesRecordArrivals) {
  Fixture f;
  const auto id = f.platform->deploy(apps::make_voice_assistant(),
                                     std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 0.5);
  f.platform->submit_request(id, 0.6);
  f.platform->submit_request(id, 2.5);
  f.engine.run_until(5.0);

  const auto& counts = f.platform->arrival_counts(id);
  ASSERT_GE(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 1);
  f.platform->finalize(5.0);
}

TEST(Platform, InFlightTracksUnfinishedRequests) {
  Fixture f;
  const auto id = f.platform->deploy(apps::make_voice_assistant(),
                                     std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(1.5);  // mid-execution
  EXPECT_EQ(f.platform->in_flight(id), 1);
  f.engine.run_until(100.0);
  EXPECT_EQ(f.platform->in_flight(id), 0);
  f.platform->finalize(100.0);
}

TEST(Platform, ConfigChangeReapsStaleInstancesWhenIdle) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(50.0);

  FunctionPlan gpu_plan;
  gpu_plan.config = {perf::Backend::Gpu, 0, 20};
  gpu_plan.keepalive = FunctionPlan::forever();
  f.platform->set_plan(id, 0, gpu_plan);
  f.platform->submit_request(id, 60.0);
  f.engine.run_until(200.0);

  // Node 0's old CPU instance was replaced by a GPU one.
  EXPECT_EQ(f.platform->instances_total(id, 0), 1);
  f.platform->finalize(200.0);
  const auto& m = f.platform->metrics(id);
  EXPECT_GT(m.per_function[0].billed_gpu_seconds, 0.0);
}

TEST(Platform, PrewarmNotCancelledByDyingInstance) {
  // Regression: an instance from the previous request that will die before
  // the pre-warmed one would even be ready must NOT cancel the pre-warm.
  Fixture f;
  const auto app = apps::make_voice_assistant();
  FunctionPlan plan = warm_plan();
  plan.keepalive = 2.0;        // dies quickly
  plan.prewarm_grace = 10.0;
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(plan));

  f.platform->submit_request(id, 1.0);  // cold chain, instances die by ~t=14
  // Pre-warm scheduled while the old instances are still around but doomed.
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    f.platform->prewarm_at(id, static_cast<dag::NodeId>(n), 13.0);
  f.engine.run_until(20.0);
  // The pre-warm must have created fresh instances even though old ones
  // existed at t=13 (they were going to die before t=13+init).
  int warm = 0;
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    warm += f.platform->instances_total(id, static_cast<dag::NodeId>(n));
  EXPECT_EQ(warm, static_cast<int>(app.dag.size()));
  f.platform->finalize(20.0);
}

TEST(Platform, PrewarmSkippedWhenKeepaliveCoversIt) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(30.0);
  const long inits = f.platform->metrics(id).total_initializations();
  // Keep-alive is infinite: a pre-warm for any time is redundant.
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    f.platform->prewarm_at(id, static_cast<dag::NodeId>(n), 40.0);
  f.engine.run_until(80.0);
  EXPECT_EQ(f.platform->metrics(id).total_initializations(), inits);
  f.platform->finalize(80.0);
}

TEST(Platform, AllocationFailureRetriesWhenCapacityFrees) {
  // A 1-machine cluster with 4 cores: the first request occupies it; a
  // second app's request must wait for capacity and then complete.
  sim::Engine engine;
  cluster::Cluster tiny(1, {4, 0});
  Rng rng(77);
  PlatformOptions options;
  options.inference_noise = 0.0;
  Platform platform(engine, tiny, perf::Pricing{}, rng, options);

  FunctionPlan plan;
  plan.config = {perf::Backend::Cpu, 4, 0};
  plan.keepalive = 0.0;  // release capacity promptly
  plan.prewarm_grace = 0.0;
  apps::App single;
  single.name = "single";
  single.sla = 30.0;
  single.dag.add_node("QA");
  single.truth.push_back(apps::model_by_name("QA"));

  const auto a = platform.deploy(single, std::make_shared<FixedPolicy>(plan));
  apps::App second = single;
  second.name = "single-2";
  const auto b = platform.deploy(second, std::make_shared<FixedPolicy>(plan));

  platform.submit_request(a, 1.0);
  platform.submit_request(b, 1.1);  // cluster full at this instant
  engine.run_until(60.0);
  platform.finalize(60.0);
  EXPECT_EQ(platform.metrics(a).completed.size(), 1u);
  EXPECT_EQ(platform.metrics(b).completed.size(), 1u);
  EXPECT_GT(platform.metrics(b).completed[0].e2e(),
            platform.metrics(a).completed[0].e2e());
}

TEST(Platform, MultipleAppsKeepSeparateBooks) {
  Fixture f;
  const auto id1 = f.platform->deploy(apps::make_voice_assistant(),
                                      std::make_shared<FixedPolicy>(warm_plan()));
  const auto id2 = f.platform->deploy(apps::make_image_query(),
                                      std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id1, 1.0);
  f.platform->submit_request(id2, 1.0);
  f.platform->submit_request(id2, 2.0);
  f.engine.run_until(120.0);
  f.platform->finalize(120.0);
  EXPECT_EQ(f.platform->metrics(id1).submitted, 1);
  EXPECT_EQ(f.platform->metrics(id2).submitted, 2);
  EXPECT_EQ(f.platform->metrics(id1).completed.size(), 1u);
  EXPECT_EQ(f.platform->metrics(id2).completed.size(), 2u);
}

TEST(Platform, FinalizeIsIdempotent) {
  Fixture f;
  const auto id = f.platform->deploy(apps::make_voice_assistant(),
                                     std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(60.0);
  f.platform->finalize(60.0);
  const double cost = f.platform->metrics(id).total_cost();
  f.platform->finalize(60.0);
  EXPECT_DOUBLE_EQ(f.platform->metrics(id).total_cost(), cost);
}

TEST(Platform, ClearPrewarmsCancelsScheduledWarmups) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  FunctionPlan plan = warm_plan();
  plan.keepalive = 0.0;
  plan.prewarm_grace = 1.0;
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(plan));
  f.platform->prewarm_at(id, 0, 10.0);
  f.platform->clear_prewarms(id, 0);
  f.engine.run_until(30.0);
  EXPECT_EQ(f.platform->metrics(id).total_initializations(), 0);
  f.platform->finalize(30.0);
}

TEST(Platform, CancelPrewarmAfterFiredIsHarmless) {
  // Cancelling a pre-warm whose timer already fired must neither kill the
  // instance it created nor disturb anything else (the handle is stale).
  Fixture f;
  const auto app = apps::make_voice_assistant();
  FunctionPlan plan = warm_plan();
  plan.keepalive = 0.0;
  plan.prewarm_grace = 50.0;
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(plan));
  const sim::EventId handle = f.platform->prewarm_at(id, 0, 5.0);
  f.engine.run_until(20.0);  // fired at t=5, instance init done by now
  EXPECT_EQ(f.platform->metrics(id).per_function[0].initializations, 1);
  EXPECT_EQ(f.platform->instances_total(id, 0), 1);
  f.platform->cancel_prewarm(handle);
  f.engine.run_until(30.0);
  EXPECT_EQ(f.platform->instances_total(id, 0), 1);
  EXPECT_EQ(f.platform->metrics(id).per_function[0].initializations, 1);
  f.platform->finalize(30.0);
}

TEST(Platform, ClearPrewarmsCancelsAllPendingTimers) {
  // Several pre-warms queued on the same function: one clear_prewarms call
  // cancels every pending timer, and only that function's — a sibling
  // function's pre-warm still fires.
  Fixture f;
  const auto app = apps::make_voice_assistant();
  FunctionPlan plan = warm_plan();
  plan.keepalive = 0.0;
  plan.prewarm_grace = 1.0;
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(plan));
  f.platform->prewarm_at(id, 0, 10.0);
  f.platform->prewarm_at(id, 0, 20.0);
  f.platform->prewarm_at(id, 0, 30.0);
  f.platform->prewarm_at(id, 1, 25.0);
  f.platform->clear_prewarms(id, 0);
  f.engine.run_until(40.0);
  const auto& m = f.platform->metrics(id);
  EXPECT_EQ(m.per_function[0].initializations, 0);
  EXPECT_EQ(m.per_function[1].initializations, 1);
  f.platform->finalize(40.0);
}

TEST(Platform, PrewarmSkippedWhileInstanceStillInitializing) {
  // A pre-warm firing while a cold init is already in progress (instance in
  // the Init state, keep-alive forever) is redundant and must be skipped.
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);  // node 0 cold init starts at t=1
  f.platform->prewarm_at(id, 0, 1.5);   // fires mid-init
  f.engine.run_until(100.0);
  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 1u);
  // Only the on-demand cold start initialised node 0; the pre-warm did not.
  EXPECT_EQ(m.per_function[0].initializations, 1);
  EXPECT_EQ(f.platform->instances_total(id, 0), 1);
  f.platform->finalize(100.0);
}

}  // namespace
}  // namespace smiless::serverless
