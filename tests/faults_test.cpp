#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "apps/catalog.hpp"
#include "cluster/cluster.hpp"
#include "faults/fault_injector.hpp"
#include "serverless/platform.hpp"
#include "sim/engine.hpp"

namespace smiless::serverless {
namespace {

// Deliberately still overrides the deprecated Platform& hooks (on_deploy and
// on_instance_failed below): shim-path coverage for the one-release
// migration window (policy.hpp).
class FixedPolicy : public Policy {
 public:
  explicit FixedPolicy(FunctionPlan plan) : plan_(plan) {}
  std::string name() const override { return "fixed"; }
  void on_deploy(AppId app, const apps::App& spec, Platform& p) override {
    for (std::size_t n = 0; n < spec.dag.size(); ++n)
      p.set_plan(app, static_cast<dag::NodeId>(n), plan_);
  }

 private:
  FunctionPlan plan_;
};

/// Records every on_instance_failed notification.
class RecordingPolicy : public FixedPolicy {
 public:
  using FixedPolicy::FixedPolicy;
  void on_instance_failed(AppId, const apps::App&, Platform&, dag::NodeId node,
                          InstanceFailure kind) override {
    failures.push_back({node, kind});
  }
  std::vector<std::pair<dag::NodeId, InstanceFailure>> failures;
};

FunctionPlan warm_plan() {
  FunctionPlan p;
  p.config = {perf::Backend::Cpu, 4, 0};
  p.keepalive = FunctionPlan::forever();
  return p;
}

apps::App single_node_app(double sla = 30.0) {
  apps::App app;
  app.name = "single";
  app.sla = sla;
  app.dag.add_node("QA");
  app.truth.push_back(apps::model_by_name("QA"));
  return app;
}

struct Fixture {
  sim::Engine engine;
  cluster::Cluster cluster;
  Rng rng{123};
  std::unique_ptr<faults::FaultInjector> injector;
  std::unique_ptr<Platform> platform;

  explicit Fixture(faults::FaultSpec spec, PlatformOptions options = {},
                   cluster::Cluster cl = cluster::Cluster::paper_testbed())
      : cluster(std::move(cl)) {
    options.inference_noise = 0.0;
    injector = std::make_unique<faults::FaultInjector>(spec, rng);
    if (injector->enabled()) options.faults = injector.get();
    platform = std::make_unique<Platform>(engine, cluster, perf::Pricing{}, rng, options);
    injector->arm(engine, cluster);
  }
};

// --- FaultInjector unit behaviour -------------------------------------------

TEST(FaultInjector, DisabledSpecLeavesParentRngUntouched) {
  Rng a(99), b(99);
  faults::FaultInjector injector(faults::FaultSpec{}, a);
  EXPECT_FALSE(injector.enabled());
  // The fork would have consumed a draw; identical next values prove it
  // did not happen — the fault-free trajectory is bit-identical.
  EXPECT_EQ(a.engine()(), b.engine()());
  EXPECT_FALSE(injector.sample_init_failure());
  EXPECT_DOUBLE_EQ(injector.inflate_inference(1.25), 1.25);
}

TEST(FaultInjector, StragglerInflatesByFactor) {
  Rng rng(5);
  faults::FaultSpec spec;
  spec.straggler_prob = 1.0;
  spec.straggler_factor = 4.0;
  faults::FaultInjector injector(spec, rng);
  EXPECT_DOUBLE_EQ(injector.inflate_inference(0.5), 2.0);
  EXPECT_EQ(injector.stats().stragglers, 1);
  // Init failures stay off: that knob was not set.
  EXPECT_FALSE(injector.sample_init_failure());
}

TEST(FaultInjector, CertainInitFailure) {
  Rng rng(5);
  faults::FaultSpec spec;
  spec.init_failure_prob = 1.0;
  faults::FaultInjector injector(spec, rng);
  EXPECT_TRUE(injector.sample_init_failure());
  EXPECT_TRUE(injector.sample_init_failure());
  EXPECT_EQ(injector.stats().init_failures, 2);
}

TEST(FaultInjector, ScheduledCrashTakesMachineDownAndBack) {
  sim::Engine engine;
  cluster::Cluster cluster(2, {4, 0});
  Rng rng(7);
  faults::FaultSpec spec;
  spec.crashes.push_back({/*machine=*/0, /*at=*/5.0, /*duration=*/10.0});
  faults::FaultInjector injector(spec, rng);
  injector.arm(engine, cluster);

  engine.run_until(6.0);
  EXPECT_FALSE(cluster.machine_up(0));
  EXPECT_TRUE(cluster.machine_up(1));
  engine.run_until(20.0);
  EXPECT_TRUE(cluster.machine_up(0));
  EXPECT_EQ(injector.stats().crashes, 1);
  EXPECT_EQ(injector.stats().recoveries, 1);
}

TEST(FaultInjector, RandomCrashesRespectHorizonAndRecover) {
  sim::Engine engine;
  cluster::Cluster cluster(4, {4, 0});
  Rng rng(11);
  faults::FaultSpec spec;
  spec.crash_rate = 0.05;  // expect ~20 machine-crashes over 100 s x 4 machines
  spec.mttr = 5.0;
  spec.crash_horizon = 100.0;
  faults::FaultInjector injector(spec, rng);
  injector.arm(engine, cluster);

  engine.run_until(1000.0);  // far past the horizon: everything must be back up
  EXPECT_GT(injector.stats().crashes, 0);
  EXPECT_EQ(injector.stats().crashes, injector.stats().recoveries);
  for (int m = 0; m < 4; ++m) EXPECT_TRUE(cluster.machine_up(m));
}

// --- Platform failure semantics ---------------------------------------------

TEST(PlatformFaults, InitFailureRetriesUntilSuccess) {
  // Fail every init with p=0.5; with unbounded retries the request must
  // still complete, paying extra initializations.
  faults::FaultSpec spec;
  spec.init_failure_prob = 0.5;
  PlatformOptions options;
  options.max_retries = -1;  // unbounded
  Fixture f(spec, options);

  const auto id = f.platform->deploy(single_node_app(), std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(300.0);
  f.platform->finalize(300.0);

  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 1u);
  EXPECT_EQ(m.failed, 0);
  EXPECT_GE(m.total_init_failures(), 0);
  // Every failed attempt is billed: initializations = failures + 1 success.
  EXPECT_EQ(m.total_initializations(), m.total_init_failures() + 1);
}

TEST(PlatformFaults, RetryBudgetExhaustedFailsRequest) {
  // Certain init failure + a small retry budget: the request must reach the
  // terminal Failed state instead of retrying forever.
  faults::FaultSpec spec;
  spec.init_failure_prob = 1.0;
  PlatformOptions options;
  options.max_retries = 3;
  Fixture f(spec, options);

  const auto id = f.platform->deploy(single_node_app(), std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(300.0);
  f.platform->finalize(300.0);

  const auto& m = f.platform->metrics(id);
  EXPECT_EQ(m.completed.size(), 0u);
  EXPECT_EQ(m.failed, 1);
  EXPECT_EQ(f.platform->in_flight(id), 0);  // failed requests leave the books
  EXPECT_EQ(m.total_init_failures(), m.total_initializations());
  // Budget semantics: the initial attempt plus max_retries retries.
  EXPECT_EQ(m.total_initializations(), 1 + options.max_retries);
}

TEST(PlatformFaults, AllocationRetryBudgetExhaustedFailsRequest) {
  // A cluster too small for the plan: allocation never succeeds, the
  // bounded backoff loop runs dry and the queued request fails. This is the
  // retry_delay-semantics regression test: bounded, not one-shot.
  faults::FaultSpec spec;  // no faults needed; pure capacity starvation
  PlatformOptions options;
  options.max_retries = 4;
  Fixture f(spec, options, cluster::Cluster(1, {1, 0}));  // 1 core < 4 wanted

  const auto id = f.platform->deploy(single_node_app(), std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(120.0);
  f.platform->finalize(120.0);

  const auto& m = f.platform->metrics(id);
  EXPECT_EQ(m.completed.size(), 0u);
  EXPECT_EQ(m.failed, 1);
  EXPECT_EQ(m.total_retries(), 4);  // exactly the budget
  EXPECT_EQ(m.total_initializations(), 0);
}

TEST(PlatformFaults, RequestTimeoutFailsStuckRequest) {
  // Capacity starvation again, but with unbounded retries and a finite
  // per-invocation timeout: the timeout is what fails the request.
  faults::FaultSpec spec;
  PlatformOptions options;
  options.max_retries = -1;
  options.request_timeout = 10.0;
  Fixture f(spec, options, cluster::Cluster(1, {1, 0}));

  const auto id = f.platform->deploy(single_node_app(), std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(8.0);
  EXPECT_EQ(f.platform->in_flight(id), 1);  // still waiting
  f.engine.run_until(120.0);
  f.platform->finalize(120.0);

  const auto& m = f.platform->metrics(id);
  EXPECT_EQ(m.completed.size(), 0u);
  EXPECT_EQ(m.failed, 1);
  EXPECT_EQ(m.total_timeouts(), 1);
  EXPECT_EQ(f.platform->in_flight(id), 0);
}

TEST(PlatformFaults, TimeoutDoesNotFireOnCompletedRequests) {
  faults::FaultSpec spec;
  PlatformOptions options;
  options.request_timeout = 60.0;  // generous: never hit
  Fixture f(spec, options);

  const auto id = f.platform->deploy(apps::make_voice_assistant(),
                                     std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.platform->submit_request(id, 30.0);
  f.engine.run_until(200.0);
  f.platform->finalize(200.0);

  const auto& m = f.platform->metrics(id);
  EXPECT_EQ(m.completed.size(), 2u);
  EXPECT_EQ(m.failed, 0);
  EXPECT_EQ(m.total_timeouts(), 0);
}

TEST(PlatformFaults, MachineCrashEvictsAndRedispatches) {
  // One 2-machine cluster; the warm instance lands on machine 0 (first
  // fit). Crash it mid-inference: the in-flight invocation is re-queued,
  // served by a fresh instance on machine 1, and the request completes.
  faults::FaultSpec spec;
  PlatformOptions options;
  Fixture f(spec, options, cluster::Cluster(2, {8, 0}));

  auto policy = std::make_shared<RecordingPolicy>(warm_plan());
  const auto id = f.platform->deploy(single_node_app(), policy);
  f.platform->submit_request(id, 1.0);
  // QA's cold init takes ~1.6 s, so at t=2 the instance is mid-init on m0.
  f.engine.schedule_at(2.0, [&] { f.cluster.mark_down(0); });
  f.engine.schedule_at(60.0, [&] { f.cluster.mark_up(0); });
  f.engine.run_until(200.0);
  f.platform->finalize(200.0);

  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 1u);
  EXPECT_EQ(m.failed, 0);
  EXPECT_EQ(m.total_evictions(), 1);
  ASSERT_EQ(policy->failures.size(), 1u);
  EXPECT_EQ(policy->failures[0].second, InstanceFailure::Eviction);
  // The replacement instance went to the surviving machine.
  EXPECT_EQ(m.total_initializations(), 2);
}

TEST(PlatformFaults, EvictionMidInferenceRetriesInvocation) {
  // Force the crash squarely inside the inference: submit, wait for the
  // instance to go busy, then take the machine down. The re-dispatched
  // invocation must carry a retry count.
  faults::FaultSpec spec;
  PlatformOptions options;
  options.record_traces = true;
  Fixture f(spec, options, cluster::Cluster(2, {8, 0}));

  auto policy = std::make_shared<RecordingPolicy>(warm_plan());
  const auto id = f.platform->deploy(single_node_app(), policy);
  f.platform->submit_request(id, 1.0);

  // Poll finely (QA's busy window on 4 cores is only ~0.3 s wide); the
  // first time node 0 is busy, kill machine 0.
  for (int t = 10; t < 120; ++t) {
    f.engine.schedule_at(0.1 * t, [&] {
      if (f.cluster.machine_up(0) && f.platform->instances_busy(id, 0) > 0)
        f.cluster.mark_down(0);
    });
  }
  f.engine.run_until(200.0);
  f.platform->finalize(200.0);

  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 1u);
  EXPECT_GE(m.total_evictions(), 1);
  EXPECT_GE(m.total_retries(), 1);
  // The completing span is marked as a retry attempt.
  ASSERT_EQ(m.traces.size(), 1u);
  ASSERT_FALSE(m.traces[0].spans.empty());
  EXPECT_GE(m.traces[0].spans.back().attempt, 1);
}

TEST(PlatformFaults, InitFailureNotifiesPolicy) {
  faults::FaultSpec spec;
  spec.init_failure_prob = 1.0;
  PlatformOptions options;
  options.max_retries = 1;
  Fixture f(spec, options);

  auto policy = std::make_shared<RecordingPolicy>(warm_plan());
  const auto id = f.platform->deploy(single_node_app(), policy);
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(120.0);
  f.platform->finalize(120.0);

  ASSERT_FALSE(policy->failures.empty());
  for (const auto& [node, kind] : policy->failures) {
    EXPECT_EQ(node, 0);
    EXPECT_EQ(kind, InstanceFailure::InitFailure);
  }
}

TEST(PlatformFaults, StragglersStretchLatencyButComplete) {
  faults::FaultSpec spec;
  spec.straggler_prob = 1.0;
  spec.straggler_factor = 5.0;
  Fixture slow(spec);
  Fixture fast(faults::FaultSpec{});

  const auto app = single_node_app();
  const auto id_slow =
      slow.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  const auto id_fast =
      fast.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  // Warm up with a first request, measure the second (no init in the path).
  for (const double t : {1.0, 60.0}) {
    slow.platform->submit_request(id_slow, t);
    fast.platform->submit_request(id_fast, t);
  }
  slow.engine.run_until(200.0);
  fast.engine.run_until(200.0);
  slow.platform->finalize(200.0);
  fast.platform->finalize(200.0);

  const auto& ms = slow.platform->metrics(id_slow);
  const auto& mf = fast.platform->metrics(id_fast);
  ASSERT_EQ(ms.completed.size(), 2u);
  ASSERT_EQ(mf.completed.size(), 2u);
  // Warm-path request: inference dominates, so 5x straggler inflation must
  // show up as roughly 5x E2E.
  EXPECT_GT(ms.completed[1].e2e(), 3.0 * mf.completed[1].e2e());
}

TEST(PlatformFaults, FaultFreeSpecBehavesExactlyLikeNoInjector) {
  // Belt and braces for the acceptance criterion: a Platform given a
  // *disabled* injector produces the same books as one given none.
  auto run = [](bool with_injector) {
    sim::Engine engine;
    cluster::Cluster cluster = cluster::Cluster::paper_testbed();
    Rng rng(123);
    faults::FaultInjector injector(faults::FaultSpec{}, rng);
    PlatformOptions options;
    options.inference_noise = 0.06;
    if (with_injector) options.faults = &injector;
    Platform platform(engine, cluster, perf::Pricing{}, rng, options);
    const auto id = platform.deploy(apps::make_voice_assistant(),
                                    std::make_shared<FixedPolicy>(warm_plan()));
    for (int i = 0; i < 20; ++i) platform.submit_request(id, 1.0 + 3.7 * i);
    engine.run_until(200.0);
    platform.finalize(200.0);
    const auto& m = platform.metrics(id);
    double e2e = 0.0;
    for (const auto& r : m.completed) e2e += r.e2e();
    return std::make_tuple(m.total_cost(), m.completed.size(), e2e);
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace smiless::serverless
