#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace smiless::cluster {
namespace {

using perf::Backend;
using perf::HwConfig;

TEST(Cluster, PaperTestbedCapacity) {
  const Cluster c = Cluster::paper_testbed();
  EXPECT_EQ(c.machine_count(), 8u);
  EXPECT_EQ(c.total_cpu_cores(), 8 * 104);
  EXPECT_EQ(c.total_gpu_pct(), 8 * 100);
}

TEST(Cluster, AllocateConsumesCapacity) {
  Cluster c(1, {8, 100});
  const auto a = c.allocate({Backend::Cpu, 4, 0});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(c.free_cpu_cores(), 4);
  c.release(*a);
  EXPECT_EQ(c.free_cpu_cores(), 8);
}

TEST(Cluster, AllocationFailsWhenFull) {
  Cluster c(1, {4, 0});
  const auto a = c.allocate({Backend::Cpu, 4, 0});
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(c.allocate({Backend::Cpu, 1, 0}).has_value());
}

TEST(Cluster, GpuSlicesAreIndependentOfCpu) {
  Cluster c(1, {4, 100});
  const auto g = c.allocate({Backend::Gpu, 0, 60});
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(c.free_gpu_pct(), 40);
  EXPECT_EQ(c.free_cpu_cores(), 4);  // untouched
  EXPECT_FALSE(c.allocate({Backend::Gpu, 0, 50}).has_value());
  EXPECT_TRUE(c.allocate({Backend::Gpu, 0, 40}).has_value());
}

TEST(Cluster, FirstFitSpillsToSecondMachine) {
  Cluster c(2, {4, 0});
  const auto a = c.allocate({Backend::Cpu, 3, 0});
  const auto b = c.allocate({Backend::Cpu, 3, 0});
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->machine, 0);
  EXPECT_EQ(b->machine, 1);
}

TEST(Cluster, FragmentationCanBlockLargeRequests) {
  Cluster c(2, {4, 0});
  ASSERT_TRUE(c.allocate({Backend::Cpu, 3, 0}));
  ASSERT_TRUE(c.allocate({Backend::Cpu, 3, 0}));
  // 2 free cores total but split 1+1: a 2-core container cannot fit.
  EXPECT_EQ(c.free_cpu_cores(), 2);
  EXPECT_FALSE(c.allocate({Backend::Cpu, 2, 0}).has_value());
}

TEST(Cluster, DoubleReleaseIsDetected) {
  Cluster c(1, {4, 100});
  const auto a = c.allocate({Backend::Cpu, 4, 0});
  ASSERT_TRUE(a);
  c.release(*a);
  EXPECT_THROW(c.release(*a), CheckError);
}

TEST(Placement, BestFitPacksTightestMachine) {
  Cluster c(2, {8, 0}, Placement::BestFit);
  // Leave machine 0 with 2 free and machine 1 with 6 free.
  ASSERT_TRUE(c.allocate({Backend::Cpu, 6, 0}));  // m0: 2 free
  ASSERT_TRUE(c.allocate({Backend::Cpu, 2, 0}));  // best-fit -> m0 again (exact fit)
  // Machine 0 now full; next 2-core lands on machine 1.
  const auto a = c.allocate({Backend::Cpu, 2, 0});
  ASSERT_TRUE(a);
  EXPECT_EQ(a->machine, 1);
}

TEST(Placement, WorstFitSpreadsLoad) {
  Cluster c(2, {8, 0}, Placement::WorstFit);
  ASSERT_TRUE(c.allocate({Backend::Cpu, 2, 0}));  // m0 (tie -> first)
  const auto b = c.allocate({Backend::Cpu, 2, 0});
  ASSERT_TRUE(b);
  EXPECT_EQ(b->machine, 1);  // m1 now has more free capacity
}

TEST(Placement, WorstFitStrandsWholeGpuCapacity) {
  // Spreading MPS slices across machines (worst-fit) strands whole-GPU
  // capacity that packing policies preserve — why the platform defaults to
  // a packing placement.
  Cluster wf(2, {0, 100}, Placement::WorstFit);
  ASSERT_TRUE(wf.allocate({Backend::Gpu, 0, 30}));  // m0
  ASSERT_TRUE(wf.allocate({Backend::Gpu, 0, 40}));  // worst fit -> m1 (100 > 70)
  EXPECT_FALSE(wf.allocate({Backend::Gpu, 0, 100}).has_value());

  for (const auto packing : {Placement::FirstFit, Placement::BestFit}) {
    Cluster c(2, {0, 100}, packing);
    ASSERT_TRUE(c.allocate({Backend::Gpu, 0, 30}));
    ASSERT_TRUE(c.allocate({Backend::Gpu, 0, 40}));  // packs onto m0
    EXPECT_TRUE(c.allocate({Backend::Gpu, 0, 100}).has_value());  // m1 intact
  }
}

TEST(Placement, AllStrategiesAgreeOnTotalCapacity) {
  for (const auto placement :
       {Placement::FirstFit, Placement::BestFit, Placement::WorstFit}) {
    Cluster c(3, {4, 100}, placement);
    int grants = 0;
    while (c.allocate({Backend::Cpu, 1, 0})) ++grants;
    EXPECT_EQ(grants, 12);
  }
}

}  // namespace
}  // namespace smiless::cluster
