#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"

namespace smiless::cluster {
namespace {

using perf::Backend;
using perf::HwConfig;

TEST(Cluster, PaperTestbedCapacity) {
  const Cluster c = Cluster::paper_testbed();
  EXPECT_EQ(c.machine_count(), 8u);
  EXPECT_EQ(c.total_cpu_cores(), 8 * 104);
  EXPECT_EQ(c.total_gpu_pct(), 8 * 100);
}

TEST(Cluster, AllocateConsumesCapacity) {
  Cluster c(1, {8, 100});
  const auto a = c.allocate({Backend::Cpu, 4, 0});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(c.free_cpu_cores(), 4);
  c.release(*a);
  EXPECT_EQ(c.free_cpu_cores(), 8);
}

TEST(Cluster, AllocationFailsWhenFull) {
  Cluster c(1, {4, 0});
  const auto a = c.allocate({Backend::Cpu, 4, 0});
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(c.allocate({Backend::Cpu, 1, 0}).has_value());
}

TEST(Cluster, GpuSlicesAreIndependentOfCpu) {
  Cluster c(1, {4, 100});
  const auto g = c.allocate({Backend::Gpu, 0, 60});
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(c.free_gpu_pct(), 40);
  EXPECT_EQ(c.free_cpu_cores(), 4);  // untouched
  EXPECT_FALSE(c.allocate({Backend::Gpu, 0, 50}).has_value());
  EXPECT_TRUE(c.allocate({Backend::Gpu, 0, 40}).has_value());
}

TEST(Cluster, FirstFitSpillsToSecondMachine) {
  Cluster c(2, {4, 0});
  const auto a = c.allocate({Backend::Cpu, 3, 0});
  const auto b = c.allocate({Backend::Cpu, 3, 0});
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->machine, 0);
  EXPECT_EQ(b->machine, 1);
}

TEST(Cluster, FragmentationCanBlockLargeRequests) {
  Cluster c(2, {4, 0});
  ASSERT_TRUE(c.allocate({Backend::Cpu, 3, 0}));
  ASSERT_TRUE(c.allocate({Backend::Cpu, 3, 0}));
  // 2 free cores total but split 1+1: a 2-core container cannot fit.
  EXPECT_EQ(c.free_cpu_cores(), 2);
  EXPECT_FALSE(c.allocate({Backend::Cpu, 2, 0}).has_value());
}

TEST(Cluster, DoubleReleaseIsDetected) {
  Cluster c(1, {4, 100});
  const auto a = c.allocate({Backend::Cpu, 4, 0});
  ASSERT_TRUE(a);
  c.release(*a);
  EXPECT_THROW(c.release(*a), CheckError);
}

TEST(Placement, BestFitPacksTightestMachine) {
  Cluster c(2, {8, 0}, Placement::BestFit);
  // Leave machine 0 with 2 free and machine 1 with 6 free.
  ASSERT_TRUE(c.allocate({Backend::Cpu, 6, 0}));  // m0: 2 free
  ASSERT_TRUE(c.allocate({Backend::Cpu, 2, 0}));  // best-fit -> m0 again (exact fit)
  // Machine 0 now full; next 2-core lands on machine 1.
  const auto a = c.allocate({Backend::Cpu, 2, 0});
  ASSERT_TRUE(a);
  EXPECT_EQ(a->machine, 1);
}

TEST(Placement, WorstFitSpreadsLoad) {
  Cluster c(2, {8, 0}, Placement::WorstFit);
  ASSERT_TRUE(c.allocate({Backend::Cpu, 2, 0}));  // m0 (tie -> first)
  const auto b = c.allocate({Backend::Cpu, 2, 0});
  ASSERT_TRUE(b);
  EXPECT_EQ(b->machine, 1);  // m1 now has more free capacity
}

TEST(Placement, WorstFitStrandsWholeGpuCapacity) {
  // Spreading MPS slices across machines (worst-fit) strands whole-GPU
  // capacity that packing policies preserve — why the platform defaults to
  // a packing placement.
  Cluster wf(2, {0, 100}, Placement::WorstFit);
  ASSERT_TRUE(wf.allocate({Backend::Gpu, 0, 30}));  // m0
  ASSERT_TRUE(wf.allocate({Backend::Gpu, 0, 40}));  // worst fit -> m1 (100 > 70)
  EXPECT_FALSE(wf.allocate({Backend::Gpu, 0, 100}).has_value());

  for (const auto packing : {Placement::FirstFit, Placement::BestFit}) {
    Cluster c(2, {0, 100}, packing);
    ASSERT_TRUE(c.allocate({Backend::Gpu, 0, 30}));
    ASSERT_TRUE(c.allocate({Backend::Gpu, 0, 40}));  // packs onto m0
    EXPECT_TRUE(c.allocate({Backend::Gpu, 0, 100}).has_value());  // m1 intact
  }
}

TEST(Placement, AllStrategiesAgreeOnTotalCapacity) {
  for (const auto placement :
       {Placement::FirstFit, Placement::BestFit, Placement::WorstFit}) {
    Cluster c(3, {4, 100}, placement);
    int grants = 0;
    while (c.allocate({Backend::Cpu, 1, 0})) ++grants;
    EXPECT_EQ(grants, 12);
  }
}

TEST(ClusterDown, DownMachineAcceptsNoAllocations) {
  Cluster c(2, {4, 0});
  c.mark_down(0);
  const auto a = c.allocate({Backend::Cpu, 4, 0});
  ASSERT_TRUE(a);
  EXPECT_EQ(a->machine, 1);  // first-fit skips the down machine
  EXPECT_FALSE(c.allocate({Backend::Cpu, 1, 0}).has_value());  // m1 full, m0 down
  c.mark_up(0);
  EXPECT_TRUE(c.allocate({Backend::Cpu, 1, 0}).has_value());
}

TEST(ClusterDown, FreeCapacityExcludesDownMachines) {
  Cluster c(2, {4, 100});
  EXPECT_EQ(c.free_cpu_cores(), 8);
  c.mark_down(1);
  EXPECT_EQ(c.free_cpu_cores(), 4);
  EXPECT_EQ(c.free_gpu_pct(), 100);
  EXPECT_EQ(c.machines_down(), 1);
  c.mark_up(1);
  EXPECT_EQ(c.free_cpu_cores(), 8);
  EXPECT_EQ(c.machines_down(), 0);
}

TEST(ClusterDown, ReleaseOnDownMachineRestoresLedger) {
  Cluster c(1, {4, 0});
  const auto a = c.allocate({Backend::Cpu, 3, 0});
  ASSERT_TRUE(a);
  c.mark_down(0);
  c.release(*a);  // grant returned while the machine is down
  EXPECT_EQ(c.free_cpu_cores(), 0);  // still excluded from the up-count
  c.mark_up(0);
  EXPECT_EQ(c.free_cpu_cores(), 4);  // full capacity usable again
}

TEST(ClusterDown, ListenersFireOnTransitionsOnly) {
  Cluster c(2, {4, 0});
  std::vector<std::pair<int, bool>> events;
  const int token = c.add_listener([&](int m, bool up) { events.push_back({m, up}); });
  c.mark_down(1);
  c.mark_down(1);  // idempotent: no second event
  c.mark_up(1);
  c.mark_up(1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<int, bool>{1, false}));
  EXPECT_EQ(events[1], (std::pair<int, bool>{1, true}));
  c.remove_listener(token);
  c.mark_down(0);
  EXPECT_EQ(events.size(), 2u);  // removed listener stays silent
}

// Property test: no randomized sequence of allocate / release / mark_down /
// mark_up may drive the free ledger negative, above the machine capacity, or
// leak capacity — and a full release with all machines up restores the
// initial state exactly. Run for every placement strategy.
TEST(ClusterProperty, RandomOpsPreserveCapacityInvariants) {
  const std::vector<HwConfig> asks = {
      {Backend::Cpu, 1, 0},  {Backend::Cpu, 4, 0},  {Backend::Cpu, 13, 0},
      {Backend::Gpu, 0, 10}, {Backend::Gpu, 0, 35}, {Backend::Gpu, 0, 100},
  };
  for (const auto placement :
       {Placement::FirstFit, Placement::BestFit, Placement::WorstFit}) {
    const int machines = 4;
    const MachineSpec spec{26, 100};
    Cluster c(machines, spec, placement);
    Rng rng(0xC1A5 + static_cast<int>(placement));
    std::vector<Allocation> live;

    auto check_invariants = [&] {
      int up_cpu = 0, up_gpu = 0;
      for (int m = 0; m < machines; ++m) {
        const auto& f = c.free_of(m);
        ASSERT_GE(f.cpu_cores, 0) << "machine " << m;
        ASSERT_LE(f.cpu_cores, spec.cpu_cores) << "machine " << m;
        ASSERT_GE(f.gpu_pct, 0) << "machine " << m;
        ASSERT_LE(f.gpu_pct, spec.gpu_pct) << "machine " << m;
        if (c.machine_up(m)) {
          up_cpu += f.cpu_cores;
          up_gpu += f.gpu_pct;
        }
      }
      ASSERT_EQ(c.free_cpu_cores(), up_cpu);
      ASSERT_EQ(c.free_gpu_pct(), up_gpu);
      ASSERT_GE(c.free_cpu_cores(), 0);
      ASSERT_LE(c.free_cpu_cores(), c.total_cpu_cores());
      ASSERT_GE(c.free_gpu_pct(), 0);
      ASSERT_LE(c.free_gpu_pct(), c.total_gpu_pct());
    };

    for (int step = 0; step < 3000; ++step) {
      const int op = rng.uniform_int(0, 9);
      if (op < 5) {  // allocate
        const auto& ask = asks[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(asks.size()) - 1))];
        if (auto a = c.allocate(ask)) {
          ASSERT_TRUE(c.machine_up(a->machine));  // never lands on a down machine
          live.push_back(*a);
        }
      } else if (op < 8) {  // release a random outstanding grant
        if (!live.empty()) {
          const auto i = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(live.size()) - 1));
          c.release(live[i]);
          live[i] = live.back();
          live.pop_back();
        }
      } else if (op == 8) {
        c.mark_down(rng.uniform_int(0, machines - 1));
      } else {
        c.mark_up(rng.uniform_int(0, machines - 1));
      }
      check_invariants();
    }

    // Drain: return every grant, bring every machine up -> initial state.
    for (const auto& a : live) c.release(a);
    for (int m = 0; m < machines; ++m) c.mark_up(m);
    EXPECT_EQ(c.free_cpu_cores(), c.total_cpu_cores());
    EXPECT_EQ(c.free_gpu_pct(), c.total_gpu_pct());
    for (int m = 0; m < machines; ++m) {
      EXPECT_EQ(c.free_of(m).cpu_cores, spec.cpu_cores);
      EXPECT_EQ(c.free_of(m).gpu_pct, spec.gpu_pct);
    }
  }
}

}  // namespace
}  // namespace smiless::cluster
