#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace smiless {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(SMILESS_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    SMILESS_CHECK(false);
    FAIL() << "must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("common_test.cpp"), std::string::npos);
  }
}

TEST(Check, MessageMacroEmbedsStreamedContent) {
  try {
    SMILESS_CHECK_MSG(false, "value was " << 42);
    FAIL() << "must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(3);
  long sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.5);
  EXPECT_NEAR(static_cast<double>(sum) / n, 3.5, 0.1);
}

TEST(Rng, ZeroStddevNormalIsDeterministic) {
  Rng rng(4);
  EXPECT_DOUBLE_EQ(rng.normal(7.0, 0.0), 7.0);
}

TEST(Rng, RejectsInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(2.0, 1.0), CheckError);
  EXPECT_THROW(rng.uniform_int(5, 4), CheckError);
  EXPECT_THROW(rng.normal(0.0, -1.0), CheckError);
  EXPECT_THROW(rng.bernoulli(1.5), CheckError);
}

TEST(Units, PricingConversionConstant) {
  EXPECT_DOUBLE_EQ(kSecondsPerHour, 3600.0);
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace smiless
