// Billing-invariant tests against the Ledger's per-instance BillingRecords:
// every instance the platform ever created is billed for exactly
// [creation, termination) at its configuration's unit price (Eq. 3), no
// matter how it died — keep-alive reap, machine eviction, or finalize.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "apps/catalog.hpp"
#include "cluster/cluster.hpp"
#include "faults/fault_injector.hpp"
#include "serverless/platform.hpp"
#include "serverless/platform_view.hpp"
#include "sim/engine.hpp"

namespace smiless::serverless {
namespace {

class FixedPolicy : public Policy {
 public:
  explicit FixedPolicy(FunctionPlan plan) : plan_(plan) {}
  std::string name() const override { return "fixed"; }
  void on_deploy(AppId app, const apps::App& spec, PlatformView& p) override {
    for (std::size_t n = 0; n < spec.dag.size(); ++n)
      p.set_plan(app, static_cast<dag::NodeId>(n), plan_);
  }

 private:
  FunctionPlan plan_;
};

struct Fixture {
  sim::Engine engine;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed();
  Rng rng{123};
  PlatformOptions options;
  std::unique_ptr<Platform> platform;

  Fixture() {
    options.inference_noise = 0.0;
    platform = std::make_unique<Platform>(engine, cluster, perf::Pricing{}, rng, options);
  }
};

FunctionPlan plan_with_keepalive(double keepalive) {
  FunctionPlan p;
  p.config = {perf::Backend::Cpu, 4, 0};
  p.keepalive = keepalive;
  return p;
}

/// The invariant every BillingRecord must satisfy: a non-negative lifetime
/// billed at the config's unit price, totals reconciling with the books.
void expect_records_consistent(const Platform& platform, AppId app) {
  const auto& ledger = platform.ledger();
  const auto& pricing = ledger.pricing();
  Dollars sum = 0.0;
  for (const auto& rec : ledger.billing(app)) {
    EXPECT_GE(rec.retired, rec.created);
    EXPECT_NEAR(rec.cost, rec.seconds() * pricing.per_second(rec.config), 1e-9);
    sum += rec.cost;
  }
  EXPECT_NEAR(sum, platform.metrics(app).total_cost(), 1e-9);
}

TEST(Ledger, KeepaliveReapedInstancesAreBilledCreationToTermination) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(plan_with_keepalive(5.0)));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(200.0);  // every instance reaped well before this
  f.platform->finalize(200.0);

  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 1u);
  const auto& recs = f.platform->ledger().billing(id);
  // Every initialization retired through the keep-alive reaper: one record
  // each, and none of them stretches to the finalize horizon.
  ASSERT_EQ(static_cast<long>(recs.size()), m.total_initializations());
  for (const auto& rec : recs) {
    EXPECT_GT(rec.seconds(), 0.0);
    EXPECT_LT(rec.retired, 200.0);
  }
  expect_records_consistent(*f.platform, id);
}

TEST(Ledger, FinalizeBillsOpenInstancesToTheHorizon) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(
      app, std::make_shared<FixedPolicy>(plan_with_keepalive(FunctionPlan::forever())));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(100.0);
  f.platform->finalize(100.0);

  const auto& m = f.platform->metrics(id);
  ASSERT_EQ(m.completed.size(), 1u);
  const auto& recs = f.platform->ledger().billing(id);
  // Keep-alive forever: every instance stayed open until finalize closed it.
  ASSERT_EQ(static_cast<long>(recs.size()), m.total_initializations());
  for (const auto& rec : recs) EXPECT_DOUBLE_EQ(rec.retired, 100.0);
  expect_records_consistent(*f.platform, id);
}

TEST(Ledger, EvictedInstancesAreBilledToTheEvictionInstant) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(
      app, std::make_shared<FixedPolicy>(plan_with_keepalive(FunctionPlan::forever())));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(50.0);  // request done, instances idle-forever

  // Take down every machine hosting an instance: all instances evict at
  // t=50, and each eviction lands one record billed exactly to the instant.
  long evicted_before = 0;
  for (std::size_t machine = 0; machine < f.cluster.machine_count(); ++machine)
    f.cluster.mark_down(static_cast<int>(machine));
  const auto& m = f.platform->metrics(id);
  for (const auto& fn : m.per_function) evicted_before += fn.evictions;
  ASSERT_EQ(evicted_before, m.total_initializations());

  const auto& recs = f.platform->ledger().billing(id);
  ASSERT_EQ(static_cast<long>(recs.size()), evicted_before);
  for (const auto& rec : recs) {
    EXPECT_DOUBLE_EQ(rec.retired, 50.0);
    EXPECT_GT(rec.seconds(), 0.0);
  }
  expect_records_consistent(*f.platform, id);
  f.platform->finalize(50.0);
  // Finalize found nothing left open: no further records.
  EXPECT_EQ(recs.size(), f.platform->ledger().billing(id).size());
}

TEST(Ledger, InitFailuresBillTheFailedAttempt) {
  // A failed cold init still bills the provider time the container ran
  // (creation to the failure instant) — the record set stays reconciled.
  faults::FaultSpec spec;
  spec.init_failure_prob = 1.0;  // every init fails
  sim::Engine engine;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed();
  Rng rng{123};
  faults::FaultInjector faults(spec, rng);
  PlatformOptions options;
  options.inference_noise = 0.0;
  options.max_retries = 1;
  options.faults = &faults;
  Platform platform(engine, cluster, perf::Pricing{}, rng, options);

  const auto app = apps::make_voice_assistant();
  const auto id = platform.deploy(
      app, std::make_shared<FixedPolicy>(plan_with_keepalive(FunctionPlan::forever())));
  platform.submit_request(id, 1.0);
  engine.run_until(100.0);
  platform.finalize(100.0);

  const auto& m = platform.metrics(id);
  EXPECT_EQ(m.completed.size(), 0u);  // nothing ever initialised
  EXPECT_GT(m.total_init_failures(), 0);
  const auto& recs = platform.ledger().billing(id);
  ASSERT_EQ(static_cast<long>(recs.size()), m.total_initializations());
  for (const auto& rec : recs) {
    EXPECT_GT(rec.seconds(), 0.0);  // the init interval itself was billed
    EXPECT_LT(rec.retired, 100.0);  // retired at the failure, not finalize
  }
  expect_records_consistent(platform, id);
}

}  // namespace
}  // namespace smiless::serverless
