// Tests for the experiment subsystem (src/exp): grid expansion, config
// serialization, and — the load-bearing contract — that a parallel sweep is
// bit-identical to the serial run of the same grid, fault injection included.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "baselines/experiment.hpp"
#include "exp/aggregate.hpp"
#include "exp/config.hpp"
#include "exp/runner.hpp"
#include "math/stats.hpp"

using namespace smiless;

namespace {

/// A small but non-trivial grid: 2 policies x 2 seed replicates, faults on.
/// Short regular trace keeps each cell cheap while still exercising the
/// retry/timeout machinery.
exp::ExperimentGrid faulty_grid() {
  exp::ExperimentGrid grid;
  grid.base.app = "wl1";
  grid.base.sla = 2.0;
  grid.base.use_lstm = false;
  grid.base.trace.kind = "regular";
  grid.base.trace.interval = 4.0;
  grid.base.trace.jitter = 0.1;
  grid.base.trace.duration = 90.0;
  grid.base.faults.init_failure_prob = 0.05;
  grid.base.faults.straggler_prob = 0.02;
  grid.base.faults.straggler_factor = 3.0;
  grid.base.platform.request_timeout = 30.0;
  grid.base.platform.max_retries = 2;
  grid.policies = {"smiless", "grandslam"};
  grid.seeds = {7, 8};
  return grid;
}

}  // namespace

TEST(ExpGrid, CellCountAndExpansionOrder) {
  exp::ExperimentGrid grid;
  grid.apps = {"wl1", "wl2"};
  grid.policies = {"smiless", "orion", "grandslam"};
  grid.seeds = {1, 2};
  EXPECT_EQ(grid.cell_count(), 12u);
  const auto cells = grid.expand();
  ASSERT_EQ(cells.size(), 12u);
  // Fixed nesting order: app outermost, then policy, seed innermost.
  EXPECT_EQ(cells[0].app, "wl1");
  EXPECT_EQ(cells[0].policy, "smiless");
  EXPECT_EQ(cells[0].seed, 1u);
  EXPECT_EQ(cells[1].seed, 2u);
  EXPECT_EQ(cells[2].policy, "orion");
  EXPECT_EQ(cells[6].app, "wl2");
  // The seeds axis re-rolls the trace too, so replicates differ end-to-end.
  EXPECT_EQ(cells[0].trace.seed, 1u);
  EXPECT_EQ(cells[1].trace.seed, 2u);
  // Labels name every active non-seed axis and are shared by replicates.
  EXPECT_EQ(cells[0].label, "app=wl1/policy=smiless");
  EXPECT_EQ(cells[0].label, cells[1].label);
}

TEST(ExpGrid, ExpansionIsDeterministic) {
  const auto grid = faulty_grid();
  const auto a = grid.expand();
  const auto b = grid.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].to_json().dump(), b[i].to_json().dump());
}

TEST(ExpConfig, JsonRoundTripIsByteStable) {
  auto cells = faulty_grid().expand();
  for (const auto& c : cells) {
    const std::string once = c.to_json().dump(2);
    const auto back = exp::ExperimentConfig::from_json(json::Value::parse(once));
    EXPECT_EQ(back.to_json().dump(2), once);
  }
}

TEST(ExpConfig, InfiniteTimeoutRoundTrips) {
  exp::ExperimentConfig c;  // default request_timeout is infinite
  ASSERT_TRUE(std::isinf(c.platform.request_timeout));
  const auto back = exp::ExperimentConfig::from_json(json::Value::parse(c.to_json().dump()));
  EXPECT_TRUE(std::isinf(back.platform.request_timeout));
  EXPECT_EQ(back.to_json().dump(), c.to_json().dump());
}

TEST(ExpConfig, GroupKeyIgnoresSeedsAndLabel) {
  exp::ExperimentConfig a;
  a.label = "app=wl1";
  a.seed = 7;
  a.trace.seed = 7;
  exp::ExperimentConfig b = a;
  b.label = "";  // label and both seeds differ; identity does not
  b.seed = 8;
  b.trace.seed = 8;
  EXPECT_EQ(a.group_key(), b.group_key());
  b.sla = 4.0;
  EXPECT_NE(a.group_key(), b.group_key());
}

TEST(ExpConfig, WindowSecondsRoundTrips) {
  exp::ExperimentConfig c;
  c.platform.window_seconds = 2.5;
  const auto back = exp::ExperimentConfig::from_json(json::Value::parse(c.to_json().dump()));
  EXPECT_DOUBLE_EQ(back.platform.window_seconds, 2.5);
  EXPECT_EQ(back.to_json().dump(), c.to_json().dump());
  // The pre-rename "window" spelling is no longer accepted: an old config
  // file silently falls back to the default instead of half-applying.
  const auto legacy = exp::ExperimentConfig::from_json(
      json::Value::parse(R"({"platform": {"window": 0.5}})"));
  EXPECT_DOUBLE_EQ(legacy.platform.window_seconds,
                   serverless::PlatformOptions{}.window_seconds);
}

TEST(ExpConfig, ObservabilityRoundTripsAndStaysOutOfGroupKey) {
  exp::ExperimentConfig a;
  exp::ExperimentConfig b = a;
  b.obs.trace_out = "trace.json";
  b.obs.metrics_out = "metrics.json";
  b.obs.audit_out = "audit.json";
  b.obs.windows_out = "windows.csv";
  EXPECT_FALSE(a.obs.any());
  EXPECT_TRUE(b.obs.collect() && b.obs.any());
  const auto back = exp::ExperimentConfig::from_json(json::Value::parse(b.to_json().dump()));
  EXPECT_EQ(back.obs.trace_out, "trace.json");
  EXPECT_EQ(back.obs.windows_out, "windows.csv");
  EXPECT_EQ(back.to_json().dump(), b.to_json().dump());
  // Where artifacts go must never split aggregation groups.
  EXPECT_EQ(a.group_key(), b.group_key());
}

TEST(ExpGrid, GridFileRoundTrips) {
  const auto grid = faulty_grid();
  const std::string path = testing::TempDir() + "/exp_grid_roundtrip.json";
  grid.save(path);
  const auto back = exp::ExperimentGrid::load(path);
  EXPECT_EQ(back.to_json().dump(2), grid.to_json().dump(2));
  // The reloaded grid expands to the same cells, byte for byte.
  const auto a = grid.expand();
  const auto b = back.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].to_json().dump(), b[i].to_json().dump());
  std::remove(path.c_str());
}

TEST(ExpRunner, RunCellMatchesDirectExperiment) {
  exp::ExperimentConfig config;
  config.app = "wl1";
  config.policy = "grandslam";
  config.use_lstm = false;
  config.trace.kind = "regular";
  config.trace.interval = 5.0;
  config.trace.duration = 60.0;

  exp::Runner runner({/*threads=*/1, /*policy_threads=*/2});
  const auto& store = runner.profiles(config.profile_seed);
  const auto cell = exp::Runner::run_cell(config, store, runner.policy_pool());

  // The hand-rolled equivalent of what run_cell does.
  const apps::App app = exp::resolve_app(config);
  const workload::Trace trace = exp::build_trace(config, app);
  baselines::PolicySettings settings;
  settings.use_lstm = false;
  settings.pool = runner.policy_pool();
  settings.oracle_trace = &trace;
  const auto kind = baselines::parse_policy_kind(config.policy);
  ASSERT_TRUE(kind.has_value());
  baselines::ExperimentOptions options;
  options.seed = config.seed;
  options.drain_slack = config.drain_slack;
  options.platform = config.platform;
  options.faults = config.faults;
  const auto direct = baselines::run_experiment(
      app, trace, baselines::make_policy(*kind, app, store, settings), options);

  EXPECT_EQ(cell.result.cost, direct.cost);
  EXPECT_EQ(cell.result.submitted, direct.submitted);
  EXPECT_EQ(cell.result.completed, direct.completed);
  EXPECT_EQ(cell.result.initializations, direct.initializations);
  EXPECT_EQ(cell.result.e2e, direct.e2e);
}

TEST(ExpRunner, ParallelSweepBitIdenticalToSerial) {
  const auto grid = faulty_grid();

  exp::Runner serial({/*threads=*/1, /*policy_threads=*/2});
  exp::Runner parallel({/*threads=*/4, /*policy_threads=*/2});
  const auto serial_cells = serial.run(grid);
  const auto parallel_cells = parallel.run(grid);
  ASSERT_EQ(serial_cells.size(), grid.cell_count());
  ASSERT_EQ(parallel_cells.size(), serial_cells.size());

  // Fault knobs actually engaged: some cell saw a retry or an init failure.
  long retries = 0, init_failures = 0;
  for (const auto& cell : serial_cells) {
    retries += cell.result.retries;
    init_failures += cell.result.init_failures;
  }
  EXPECT_GT(retries + init_failures, 0) << "grid too tame to exercise fault paths";

  // The whole emitted document — aggregates and per-cell rows — is
  // bit-identical, which subsumes every per-field comparison.
  const std::string a =
      exp::summary_json(serial_cells, exp::aggregate(serial_cells)).dump(2);
  const std::string b =
      exp::summary_json(parallel_cells, exp::aggregate(parallel_cells)).dump(2);
  EXPECT_EQ(a, b);

  // Sanity on the aggregation itself: 2 policy groups x 2 seed replicates.
  const auto aggregates = exp::aggregate(serial_cells);
  ASSERT_EQ(aggregates.size(), 2u);
  for (const auto& agg : aggregates) {
    EXPECT_EQ(agg.replicates, 2);
    EXPECT_GT(agg.submitted, 0);
  }
}

TEST(ExpAggregate, MeanAndConfidenceInterval) {
  // Two replicates with known costs: mean and 1.96*s/sqrt(n) check out.
  exp::ExperimentConfig base;
  base.policy = "smiless";
  std::vector<exp::CellResult> cells(2);
  for (int i = 0; i < 2; ++i) {
    cells[i].config = base;
    cells[i].config.seed = static_cast<std::uint64_t>(i + 1);
    cells[i].config.trace.seed = cells[i].config.seed;
    cells[i].result.policy = "SMIless";
    cells[i].result.app = "wl1";
    cells[i].result.cost = i == 0 ? 1.0 : 3.0;
    cells[i].result.submitted = 10;
    cells[i].result.completed = 10;
    cells[i].result.e2e = {0.5, 1.0};
  }
  const auto aggregates = exp::aggregate(cells);
  ASSERT_EQ(aggregates.size(), 1u);
  const auto& a = aggregates[0];
  EXPECT_EQ(a.replicates, 2);
  EXPECT_DOUBLE_EQ(a.cost.mean, 2.0);
  EXPECT_DOUBLE_EQ(a.cost_total, 4.0);
  const std::vector<double> costs = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(a.cost.ci95, 1.96 * math::stddev(costs) / std::sqrt(2.0));
  EXPECT_EQ(a.submitted, 20);
  // e2e percentiles pool all four samples.
  const std::vector<double> pooled = {0.5, 1.0, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(a.e2e_p50, math::percentile(pooled, 50));
}

TEST(ExpAggregate, CsvEmitterShape) {
  exp::ExperimentConfig base;
  std::vector<exp::CellResult> cells(1);
  cells[0].config = base;
  cells[0].result.policy = "SMIless";
  cells[0].result.app = "wl1";
  cells[0].result.cost = 0.25;
  const auto aggregates = exp::aggregate(cells);
  const std::string csv = exp::summary_csv(aggregates);
  EXPECT_NE(csv.find("label,policy,app,sla"), std::string::npos);
  EXPECT_NE(csv.find("\"SMIless\""), std::string::npos);
  // Header + one row, both newline-terminated.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(ExpRunner, WallClockExcludedFromEmitters) {
  exp::ExperimentConfig base;
  std::vector<exp::CellResult> cells(1);
  cells[0].config = base;
  cells[0].result.policy = "SMIless";
  cells[0].result.app = "wl1";
  cells[0].wall_seconds = 1.25;
  auto copy = cells;
  copy[0].wall_seconds = 99.0;  // wall time must never leak into output
  const auto a = exp::summary_json(cells, exp::aggregate(cells)).dump(2);
  const auto b = exp::summary_json(copy, exp::aggregate(copy)).dump(2);
  EXPECT_EQ(a, b);
}
