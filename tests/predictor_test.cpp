#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "math/stats.hpp"
#include "predictor/classic.hpp"
#include "predictor/gbt.hpp"
#include "predictor/invocation_classifier.hpp"
#include "predictor/lstm.hpp"
#include "predictor/lstm_regressor.hpp"

namespace smiless::predictor {
namespace {

std::vector<double> sine_series(std::size_t n, double period, double offset = 2.0,
                                double amp = 1.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = offset + amp * std::sin(2.0 * std::numbers::pi * i / period);
  return out;
}

// --- LSTM layer mechanics ----------------------------------------------------

TEST(LstmLayer, ForwardShapeAndDeterminism) {
  Rng r1(1), r2(1);
  LstmLayer a(1, 8, r1), b(1, 8, r2);
  const std::vector<std::vector<double>> seq{{0.1}, {0.2}, {0.3}};
  const auto ha = a.forward(seq);
  const auto hb = b.forward(seq);
  ASSERT_EQ(ha.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(ha[i], hb[i]);
}

TEST(LstmLayer, HiddenStateBounded) {
  Rng rng(2);
  LstmLayer l(1, 16, rng);
  std::vector<std::vector<double>> seq(50, std::vector<double>{5.0});
  for (double h : l.forward(seq)) {
    EXPECT_LE(std::abs(h), 1.0);  // h = o * tanh(c), both bounded
  }
}

TEST(LstmLayer, BackwardMatchesNumericalGradient) {
  Rng rng(3);
  LstmLayer l(1, 4, rng);
  const std::vector<std::vector<double>> seq{{0.3}, {-0.2}, {0.7}};
  // Loss = sum of final hidden units; dL/dh = ones.
  const auto h0 = l.forward(seq);
  const std::vector<double> dh(4, 1.0);
  const LstmGrads g = l.backward(dh);

  // Numerical check on a few weight entries.
  const double eps = 1e-6;
  auto loss = [&]() {
    const auto h = l.forward(seq);
    double s = 0.0;
    for (double v : h) s += v;
    return s;
  };
  for (std::size_t r = 0; r < 3; ++r) {
    double& w = l.wx()(r, 0);
    const double orig = w;
    w = orig + eps;
    const double lp = loss();
    w = orig - eps;
    const double lm = loss();
    w = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), g.d_wx(r, 0), 1e-4);
  }
  for (std::size_t r = 0; r < 3; ++r) {
    double& b = l.bias()[r];
    const double orig = b;
    b = orig + eps;
    const double lp = loss();
    b = orig - eps;
    const double lm = loss();
    b = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), g.d_b[r], 1e-4);
  }
  (void)h0;
}

TEST(LstmLayer, ParameterCountConsistent) {
  Rng rng(4);
  LstmLayer l(2, 5, rng);
  EXPECT_EQ(l.parameters().size(), l.parameter_count());
  EXPECT_EQ(l.parameter_count(), 4u * 5u * (2u + 5u + 1u));
}

TEST(Adam, DescendsQuadratic) {
  // Minimise (x-3)^2 via Adam updates.
  double x = 0.0;
  std::vector<double*> params{&x};
  Adam adam(1, 0.1);
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> g{2.0 * (x - 3.0)};
    adam.step(params, g);
  }
  EXPECT_NEAR(x, 3.0, 0.05);
}

// --- regressors ---------------------------------------------------------------

TEST(LstmRegressor, LearnsPeriodicSeries) {
  const auto series = sine_series(400, 16.0);
  LstmOptions o;
  o.epochs = 10;
  LstmRegressor reg(o);
  reg.fit(series);
  // One-step predictions over a held-out continuation.
  double err = 0.0;
  int n = 0;
  for (std::size_t t = 340; t < 390; ++t) {
    const std::span<const double> hist(series.data(), t);
    err += std::abs(reg.predict_next(hist) - series[t]);
    ++n;
  }
  EXPECT_LT(err / n, 0.25);  // amplitude is 1.0 around an offset of 2
}

TEST(LstmRegressor, HandlesTooShortHistory) {
  LstmRegressor reg;
  const std::vector<double> tiny{1.0, 2.0};
  reg.fit(tiny);  // not enough to train
  EXPECT_DOUBLE_EQ(reg.predict_next(tiny), 2.0);  // falls back to persistence
  EXPECT_DOUBLE_EQ(reg.predict_next({}), 0.0);
}

TEST(LstmRegressor, AsymmetricLossSuppressesOverestimation) {
  Rng rng(9);
  std::vector<double> noisy(500);
  for (auto& v : noisy) v = std::max(0.1, rng.normal(2.0, 0.5));
  LstmOptions sym;
  sym.epochs = 6;
  LstmOptions asym = sym;
  asym.over_weight = 8.0;  // punish predictions above the truth
  LstmRegressor a(sym), b(asym);
  a.fit(noisy);
  b.fit(noisy);
  std::vector<double> truth, pa, pb;
  for (std::size_t t = 450; t < 495; ++t) {
    const std::span<const double> hist(noisy.data(), t);
    truth.push_back(noisy[t]);
    pa.push_back(a.predict_next(hist));
    pb.push_back(b.predict_next(hist));
  }
  EXPECT_LE(math::overestimation_rate(truth, pb), math::overestimation_rate(truth, pa));
}

TEST(DualLstmRegressor, AuxiliarySeriesHelpsCorrelatedTarget) {
  // Target alternates with a signal fully determined by the auxiliary
  // channel two steps earlier.
  Rng rng(10);
  std::vector<double> aux(500), target(500);
  for (std::size_t i = 0; i < aux.size(); ++i) aux[i] = (i / 8) % 2 == 0 ? 0.0 : 4.0;
  for (std::size_t i = 0; i < target.size(); ++i)
    target[i] = 1.0 + (i >= 2 ? aux[i - 2] : 0.0) + rng.normal(0.0, 0.05);

  LstmOptions o;
  o.epochs = 10;
  DualLstmRegressor dual(o);
  dual.fit(target, aux);
  double err = 0.0;
  int n = 0;
  for (std::size_t t = 450; t < 495; ++t) {
    const std::span<const double> th(target.data(), t);
    const std::span<const double> ah(aux.data(), t);
    err += std::abs(dual.predict_next(th, ah) - target[t]);
    ++n;
  }
  EXPECT_LT(err / n, 1.0);
}

TEST(DualLstmRegressor, EmptyHistoryIsSafe) {
  DualLstmRegressor dual;
  EXPECT_DOUBLE_EQ(dual.predict_next({}, {}), 0.0);
}

// --- classifier ----------------------------------------------------------------

TEST(InvocationClassifier, PredictsUpperBoundOfBucket) {
  // Alternating load 1 / 5 with period 8 — trivially learnable.
  std::vector<double> counts(400);
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] = (i / 8) % 2 == 0 ? 1.0 : 5.0;
  InvocationClassifier::Options o;
  o.bucket_size = 2;
  o.lstm.epochs = 10;
  InvocationClassifier cls(o);
  cls.fit(counts);

  int correct = 0, trials = 0;
  for (std::size_t t = 350; t < 395; ++t) {
    const std::span<const double> hist(counts.data(), t);
    const int truth_bucket = static_cast<int>(counts[t]) / o.bucket_size;
    if (cls.predict_bucket(hist) == truth_bucket) ++correct;
    ++trials;
  }
  EXPECT_GT(correct, trials * 7 / 10);
}

TEST(InvocationClassifier, UpperBoundRarelyUnderestimates) {
  Rng rng(11);
  std::vector<double> counts(500);
  for (auto& c : counts) c = std::max(0, rng.poisson(3.0));
  InvocationClassifier::Options o;
  o.bucket_size = 2;
  o.lstm.epochs = 8;
  InvocationClassifier cls(o);
  cls.fit(counts);
  std::vector<double> truth, pred;
  for (std::size_t t = 400; t < 495; ++t) {
    const std::span<const double> hist(counts.data(), t);
    truth.push_back(counts[t]);
    pred.push_back(cls.predict_next(hist));
  }
  // The bucket-upper-bound mapping keeps underestimation low (paper: ~3%).
  EXPECT_LT(math::underestimation_rate(truth, pred), 0.25);
}

TEST(InvocationClassifier, CompensationInflatesPrediction) {
  InvocationClassifier::Options o;
  o.compensation = 0.5;
  InvocationClassifier cls(o);
  const std::vector<double> flat(300, 1.0);
  cls.fit(flat);
  const double p = cls.predict_next(flat);
  // bucket 0 upper bound = 2, +50% = 3.
  EXPECT_NEAR(p, 3.0, 1e-9);
}

// --- classic baselines -----------------------------------------------------------

TEST(Arima, PredictsLinearTrend) {
  std::vector<double> xs(100);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = 2.0 * i + 5.0;
  ArimaPredictor arima(2, 1);
  arima.fit(xs);
  EXPECT_NEAR(arima.predict_next(xs), 2.0 * 100 + 5.0, 0.5);
}

TEST(Arima, ConstantSeriesFallsBackGracefully) {
  const std::vector<double> xs(50, 3.0);
  ArimaPredictor arima(3, 1);
  arima.fit(xs);  // differenced series is all-zero -> rank deficient
  EXPECT_NEAR(arima.predict_next(xs), 3.0, 1e-9);
}

TEST(Fip, TracksPeriodicSignal) {
  const auto xs = sine_series(256, 32.0);
  FipPredictor fip(4);
  fip.fit(xs);
  double err = 0.0;
  int n = 0;
  for (std::size_t t = 128; t < 250; ++t) {
    const std::span<const double> hist(xs.data(), t);
    err += std::abs(fip.predict_next(hist) - xs[t]);
    ++n;
  }
  EXPECT_LT(err / n, 0.6);
}

TEST(Gbt, LearnsLagDependence) {
  // x_t = x_{t-1} * 0.5 + 1 with jitter.
  Rng rng(12);
  std::vector<double> xs{4.0};
  for (int i = 1; i < 400; ++i)
    xs.push_back(0.5 * xs.back() + 1.0 + rng.normal(0.0, 0.02));
  GbtPredictor gbt;
  gbt.fit(xs);
  const double pred = gbt.predict_next(xs);
  const double expected = 0.5 * xs.back() + 1.0;
  EXPECT_NEAR(pred, expected, 0.25);
}

TEST(Gbt, ShortSeriesFallsBackToPersistence) {
  GbtPredictor gbt;
  const std::vector<double> xs{1.0, 2.0, 3.0};
  gbt.fit(xs);
  EXPECT_DOUBLE_EQ(gbt.predict_next(xs), 3.0);
}

TEST(Naive, ReturnsLastValue) {
  NaivePredictor p;
  const std::vector<double> xs{1.0, 9.0};
  EXPECT_DOUBLE_EQ(p.predict_next(xs), 9.0);
}

TEST(MovingAverage, AveragesHorizon) {
  MovingAveragePredictor p(4);
  const std::vector<double> xs{100.0, 2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(p.predict_next(xs), 2.0);
}

// --- parameterised sweeps ---------------------------------------------------

class LstmHiddenSweep : public ::testing::TestWithParam<int> {};

TEST_P(LstmHiddenSweep, LearnsSineAtEveryWidth) {
  const auto series = sine_series(300, 12.0);
  LstmOptions o;
  o.hidden = static_cast<std::size_t>(GetParam());
  o.seq_len = 12;
  o.epochs = 10;
  LstmRegressor reg(o);
  reg.fit(series);
  double err = 0.0;
  int n = 0;
  for (std::size_t t = 260; t < 295; ++t) {
    err += std::abs(reg.predict_next(std::span<const double>(series.data(), t)) - series[t]);
    ++n;
  }
  EXPECT_LT(err / n, 0.35) << "hidden=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Widths, LstmHiddenSweep, ::testing::Values(4, 8, 16, 24));

class GbtDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(GbtDepthSweep, DeeperTreesNeverBreakLagLearning) {
  Rng rng(31);
  std::vector<double> xs{2.0};
  for (int i = 1; i < 300; ++i) xs.push_back(0.7 * xs.back() + 0.5 + rng.normal(0.0, 0.02));
  GbtPredictor::Options o;
  o.max_depth = GetParam();
  GbtPredictor gbt(o);
  gbt.fit(xs);
  const double expected = 0.7 * xs.back() + 0.5;
  EXPECT_NEAR(gbt.predict_next(xs), expected, 0.3) << "depth=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Depths, GbtDepthSweep, ::testing::Values(1, 2, 3, 5));

class ArimaOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(ArimaOrderSweep, TrendPredictionStableAcrossOrders) {
  std::vector<double> xs(120);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = 1.5 * static_cast<double>(i) + 4.0;
  ArimaPredictor arima(GetParam(), 1);
  arima.fit(xs);
  EXPECT_NEAR(arima.predict_next(xs), 1.5 * 120 + 4.0, 1.0) << "p=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Orders, ArimaOrderSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace smiless::predictor
