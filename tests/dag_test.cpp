#include <gtest/gtest.h>

#include <algorithm>

#include "apps/catalog.hpp"
#include "dag/dag.hpp"

namespace smiless::dag {
namespace {

Dag diamond() {
  Dag d;
  const auto a = d.add_node("A");
  const auto b = d.add_node("B");
  const auto c = d.add_node("C");
  const auto e = d.add_node("D");
  d.add_edge(a, b);
  d.add_edge(a, c);
  d.add_edge(b, e);
  d.add_edge(c, e);
  return d;
}

TEST(Dag, AddNodeAssignsSequentialIds) {
  Dag d;
  EXPECT_EQ(d.add_node("x"), 0);
  EXPECT_EQ(d.add_node("y"), 1);
  EXPECT_EQ(d.size(), 2u);
}

TEST(Dag, RejectsDuplicateNames) {
  Dag d;
  d.add_node("x");
  EXPECT_THROW(d.add_node("x"), CheckError);
}

TEST(Dag, RejectsSelfLoop) {
  Dag d;
  const auto a = d.add_node("a");
  EXPECT_THROW(d.add_edge(a, a), CheckError);
}

TEST(Dag, RejectsDuplicateEdge) {
  Dag d;
  const auto a = d.add_node("a");
  const auto b = d.add_node("b");
  d.add_edge(a, b);
  EXPECT_THROW(d.add_edge(a, b), CheckError);
}

TEST(Dag, RejectsCycle) {
  Dag d;
  const auto a = d.add_node("a");
  const auto b = d.add_node("b");
  const auto c = d.add_node("c");
  d.add_edge(a, b);
  d.add_edge(b, c);
  EXPECT_THROW(d.add_edge(c, a), CheckError);
}

TEST(Dag, FindByName) {
  Dag d = diamond();
  EXPECT_EQ(d.find("C"), 2);
  EXPECT_EQ(d.find("missing"), -1);
}

TEST(Dag, SourcesAndSinks) {
  Dag d = diamond();
  EXPECT_EQ(d.sources(), std::vector<NodeId>{0});
  EXPECT_EQ(d.sinks(), std::vector<NodeId>{3});
}

TEST(Dag, TopoOrderRespectsEdges) {
  Dag d = diamond();
  const auto order = d.topo_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](NodeId n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(Dag, Reachability) {
  Dag d = diamond();
  EXPECT_TRUE(d.is_reachable(0, 3));
  EXPECT_FALSE(d.is_reachable(3, 0));
  EXPECT_FALSE(d.is_reachable(1, 2));
  EXPECT_TRUE(d.is_reachable(2, 2));
}

TEST(Dag, AllPathsOfDiamond) {
  Dag d = diamond();
  const auto paths = d.all_paths();
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 3);
  }
}

TEST(Dag, AllPathsOfChainIsSingle) {
  Dag d;
  const auto a = d.add_node("a");
  const auto b = d.add_node("b");
  d.add_edge(a, b);
  const auto paths = d.all_paths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<NodeId>{a, b}));
}

TEST(Dag, CriticalPathPicksHeavierBranch) {
  Dag d = diamond();
  // Branch through B weighs 1+5+1 = 7; through C weighs 1+2+1 = 4.
  const std::vector<double> w{1.0, 5.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(d.critical_path_weight(w), 7.0);
}

TEST(Dag, CriticalPathOfParallelSourcesIsMax) {
  Dag d;
  d.add_node("a");
  d.add_node("b");
  const std::vector<double> w{3.0, 8.0};
  EXPECT_DOUBLE_EQ(d.critical_path_weight(w), 8.0);
}

TEST(Dag, LongestPathByNodeCount) {
  Dag d;
  const auto a = d.add_node("a");
  const auto b = d.add_node("b");
  const auto c = d.add_node("c");
  const auto e = d.add_node("e");
  d.add_edge(a, b);
  d.add_edge(b, c);
  d.add_edge(a, e);  // short branch
  const auto p = d.longest_path();
  EXPECT_EQ(p, (std::vector<NodeId>{a, b, c}));
}

TEST(Dag, ForkJoinOfDiamond) {
  Dag d = diamond();
  const auto fj = d.fork_join_pairs();
  ASSERT_EQ(fj.size(), 1u);
  EXPECT_EQ(fj[0].fork, 0);
  EXPECT_EQ(fj[0].join, 3);
  ASSERT_EQ(fj[0].branches.size(), 2u);
  EXPECT_EQ(fj[0].interior_size(), 2u);
}

TEST(Dag, ForkJoinAbsentInChain) {
  Dag d;
  const auto a = d.add_node("a");
  const auto b = d.add_node("b");
  d.add_edge(a, b);
  EXPECT_TRUE(d.fork_join_pairs().empty());
}

TEST(Dag, DotExportMentionsAllNodes) {
  Dag d = diamond();
  const auto dot = d.to_dot("g");
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  EXPECT_NE(dot.find("\"A\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

// --- workload application topologies ---------------------------------------

TEST(AppDags, AmberAlertShape) {
  const auto app = apps::make_amber_alert();
  EXPECT_EQ(app.dag.size(), 6u);
  EXPECT_EQ(app.dag.sources().size(), 1u);
  EXPECT_EQ(app.dag.sinks().size(), 1u);
  // OD fans out to three recognisers.
  EXPECT_EQ(app.dag.out_degree(app.dag.find("OD")), 3u);
  EXPECT_EQ(app.dag.all_paths().size(), 3u);
  EXPECT_EQ(app.truth.size(), app.dag.size());
}

TEST(AppDags, ImageQueryShape) {
  const auto app = apps::make_image_query();
  EXPECT_EQ(app.dag.size(), 5u);
  EXPECT_EQ(app.dag.all_paths().size(), 2u);
  const auto fj = app.dag.fork_join_pairs();
  ASSERT_FALSE(fj.empty());
  EXPECT_EQ(app.dag.name(fj[0].fork), "IR");
  EXPECT_EQ(app.dag.name(fj[0].join), "QA");
}

TEST(AppDags, VoiceAssistantIsPipeline) {
  const auto app = apps::make_voice_assistant();
  EXPECT_EQ(app.dag.size(), 4u);
  EXPECT_EQ(app.dag.all_paths().size(), 1u);
  EXPECT_TRUE(app.dag.fork_join_pairs().empty());
}

TEST(AppDags, SyntheticPipelineLength) {
  const auto app = apps::make_synthetic_pipeline(12, 10.0);
  EXPECT_EQ(app.dag.size(), 12u);
  EXPECT_EQ(app.dag.longest_path().size(), 12u);
}

}  // namespace
}  // namespace smiless::dag
