#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "common/rng.hpp"
#include "perfmodel/hardware.hpp"
#include "perfmodel/latency_model.hpp"

namespace smiless::perf {
namespace {

TEST(Hardware, DefaultSpaceHasFifteenOptions) {
  const auto space = default_config_space();
  EXPECT_EQ(space.size(), 15u);  // M = 15 in the complexity analysis
  int cpu = 0, gpu = 0;
  for (const auto& c : space) (c.backend == Backend::Cpu ? cpu : gpu)++;
  EXPECT_EQ(cpu, 5);
  EXPECT_EQ(gpu, 10);
}

TEST(Hardware, CpuOnlySpaceForHomoAblation) {
  for (const auto& c : cpu_only_config_space()) EXPECT_EQ(c.backend, Backend::Cpu);
}

TEST(Hardware, PricingMatchesPaperAnchors) {
  const Pricing p;
  const HwConfig cpu16{Backend::Cpu, 16, 0};
  const HwConfig gpu10{Backend::Gpu, 0, 10};
  const HwConfig gpu100{Backend::Gpu, 0, 100};
  // 16 cores at $0.034/core-hour.
  EXPECT_NEAR(p.per_second(cpu16) * kSecondsPerHour, 16 * 0.034, 1e-9);
  // A 10% MPS slice is 10% of the $3.06/hour p3.2xlarge.
  EXPECT_NEAR(p.per_second(gpu10) * kSecondsPerHour, 0.306, 1e-9);
  EXPECT_NEAR(p.per_second(gpu100) * kSecondsPerHour, 3.06, 1e-9);
}

TEST(Hardware, ResourceAmountSelectsBackendQuantity) {
  EXPECT_DOUBLE_EQ((HwConfig{Backend::Cpu, 8, 0}).resource_amount(), 8.0);
  EXPECT_DOUBLE_EQ((HwConfig{Backend::Gpu, 0, 30}).resource_amount(), 30.0);
}

TEST(LatencyModel, MoreResourceNeverSlower) {
  const auto& fn = apps::model_by_name("IR");
  double prev = 1e9;
  for (int cores : {1, 2, 4, 8, 16}) {
    const double t = fn.inference_time({Backend::Cpu, cores, 0}, 1);
    EXPECT_LT(t, prev);
    prev = t;
  }
  prev = 1e9;
  for (int pct = 10; pct <= 100; pct += 10) {
    const double t = fn.inference_time({Backend::Gpu, 0, pct}, 1);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(LatencyModel, LatencyGrowsLinearlyInBatch) {
  const auto& fn = apps::model_by_name("TRS");
  const HwConfig c{Backend::Gpu, 0, 50};
  const double t1 = fn.inference_time(c, 1);
  const double t2 = fn.inference_time(c, 2);
  const double t4 = fn.inference_time(c, 4);
  // Eq. (2) is affine in B, so increments are constant.
  EXPECT_NEAR(t2 - t1, (t4 - t2) / 2.0, 1e-9);
  EXPECT_GT(t2, t1);
}

TEST(LatencyModel, BatchingOnGpuAmortisesBetterThanCpu) {
  // Per-item latency at batch 8 relative to batch 1 should fall more
  // steeply on the full GPU than on 1 CPU core.
  const auto& fn = apps::model_by_name("TG");
  const HwConfig cpu{Backend::Cpu, 1, 0};
  const HwConfig gpu{Backend::Gpu, 0, 100};
  const double cpu_ratio = fn.inference_time(cpu, 8) / (8 * fn.inference_time(cpu, 1));
  const double gpu_ratio = fn.inference_time(gpu, 8) / (8 * fn.inference_time(gpu, 1));
  EXPECT_LT(gpu_ratio, cpu_ratio);
}

TEST(LatencyModel, GpuInitSlowerThanCpuInit) {
  for (const auto& fn : apps::model_catalog()) {
    EXPECT_GT(fn.init_gpu.mu, fn.init_cpu.mu) << fn.name;
  }
}

TEST(LatencyModel, InitEstimateUsesNSigma) {
  const auto& fn = apps::model_by_name("QA");
  const HwConfig c{Backend::Cpu, 4, 0};
  const double t0 = fn.init_time(c, 0.0);
  const double t3 = fn.init_time(c, 3.0);
  EXPECT_NEAR(t3 - t0, 3.0 * fn.init_cpu.sigma, 1e-12);
}

TEST(LatencyModel, WarmGpuSpeedupRoughlyTenX) {
  // Fig. 2's anchor: full GPU vs 16-core CPU, warm inference.
  for (const auto& name : {"HAP", "TG", "TRS"}) {
    const auto& fn = apps::model_by_name(name);
    const double cpu16 = fn.inference_time({Backend::Cpu, 16, 0}, 1);
    const double gpu = fn.inference_time({Backend::Gpu, 0, 100}, 1);
    EXPECT_GT(cpu16 / gpu, 6.0) << name;
    EXPECT_LT(cpu16 / gpu, 16.0) << name;
  }
}

TEST(LatencyModel, ColdGpuSlowerThanColdCpu) {
  // Fig. 2's other anchor: with a cold start the GPU loses its advantage.
  const auto& fn = apps::model_by_name("TRS");
  const double cpu_cold =
      fn.init_time({Backend::Cpu, 16, 0}, 0.0) + fn.inference_time({Backend::Cpu, 16, 0}, 1);
  const double gpu_cold =
      fn.init_time({Backend::Gpu, 0, 100}, 0.0) + fn.inference_time({Backend::Gpu, 0, 100}, 1);
  EXPECT_GT(gpu_cold, cpu_cold);
}

TEST(LatencyModel, SamplesAreNoisyButUnbiasedish) {
  const auto& fn = apps::model_by_name("DB");
  const HwConfig c{Backend::Cpu, 4, 0};
  Rng rng(11);
  const double base = fn.inference_time(c, 1);
  double sum = 0.0;
  for (int i = 0; i < 500; ++i) sum += fn.sample_inference_time(c, 1, 0.05, rng);
  EXPECT_NEAR(sum / 500.0, base, 0.05 * base);
}

TEST(LatencyModel, ExecutionCostFollowsEq3) {
  const Pricing p;
  const HwConfig c{Backend::Cpu, 2, 0};
  EXPECT_NEAR(execution_cost(10.0, c, p), 10.0 * p.per_second(c), 1e-15);
}

TEST(Catalog, HasTwelveFunctions) {
  EXPECT_EQ(apps::model_catalog().size(), 12u);
}

TEST(Catalog, UnknownNameThrows) {
  EXPECT_THROW(apps::model_by_name("NOPE"), CheckError);
}

TEST(Catalog, AnchorsDeriveValidParams) {
  // Derivations are checked internally; also spot-check the reconstruction.
  const auto p = apps::cpu_params_from_anchors(1.2, 0.11);
  EXPECT_NEAR(p.inference_time(1, 1), 1.2, 1e-9);
  EXPECT_NEAR(p.inference_time(16, 1), 0.11, 1e-9);
  const auto g = apps::gpu_params_from_anchors(0.1, 0.013);
  EXPECT_NEAR(g.inference_time(10, 1), 0.1, 1e-9);
  EXPECT_NEAR(g.inference_time(100, 1), 0.013, 1e-9);
}

TEST(Catalog, InvalidAnchorsThrow) {
  EXPECT_THROW(apps::cpu_params_from_anchors(0.1, 0.2), CheckError);  // cpu1 < cpu16
  EXPECT_THROW(apps::gpu_params_from_anchors(0.1, 0.0005), CheckError);  // gamma too big
}

}  // namespace
}  // namespace smiless::perf
