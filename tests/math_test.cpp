#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "math/bisection.hpp"
#include "math/fft.hpp"
#include "math/gaussian_process.hpp"
#include "math/levenberg_marquardt.hpp"
#include "math/matrix.hpp"
#include "math/stats.hpp"

namespace smiless::math {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, EmptyInputsAreSafe) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(variance_to_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(smape({}, {}), 0.0);
}

TEST(Stats, SingleElementStddevIsZero) {
  const std::vector<double> xs{3.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, VarianceToMeanOfPoissonLikeSeries) {
  // A constant series has VMR 0; a bursty one exceeds 1.
  const std::vector<double> constant{5, 5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(variance_to_mean(constant), 0.0);
  const std::vector<double> bursty{0, 0, 0, 20, 0, 0, 0, 20};
  EXPECT_GT(variance_to_mean(bursty), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Stats, PercentileDoesNotRequireSortedInput) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Stats, SmapeOfPerfectPredictionIsZero) {
  const std::vector<double> t{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(smape(t, t), 0.0);
  EXPECT_DOUBLE_EQ(mape(t, t), 0.0);
}

TEST(Stats, SmapeIsSymmetricInError) {
  const std::vector<double> t{10.0};
  const std::vector<double> over{12.0};
  const std::vector<double> under{8.0};
  // SMAPE denominators differ (|t|+|p|), so over/under are close but the
  // under-prediction scores slightly larger.
  EXPECT_GT(smape(t, under), smape(t, over));
}

TEST(Stats, UnderOverEstimationRates) {
  const std::vector<double> t{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> p{0.5, 2.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(underestimation_rate(t, p), 0.5);
  EXPECT_DOUBLE_EQ(overestimation_rate(t, p), 0.25);
}

TEST(Matrix, MultiplyIdentity) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::identity(2);
  const Matrix p = a * i;
  EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 4.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transpose();
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, LeastSquaresRecoversExactSolution) {
  // y = 2*x0 - 3*x1 + 1
  Matrix a{{1.0, 0.0, 1.0}, {0.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {2.0, 1.0, 1.0}};
  std::vector<double> y{3.0, -2.0, 0.0, 2.0};
  const auto x = solve_least_squares(a, y);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], -3.0, 1e-9);
  EXPECT_NEAR(x[2], 1.0, 1e-9);
}

TEST(Matrix, LeastSquaresMinimisesResidualOnOverdetermined) {
  Rng rng(1);
  const std::size_t m = 60;
  Matrix a(m, 2);
  std::vector<double> y(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    a(i, 0) = x;
    a(i, 1) = 1.0;
    y[i] = 3.0 * x + 0.5 + rng.normal(0.0, 0.01);
  }
  const auto c = solve_least_squares(a, y);
  EXPECT_NEAR(c[0], 3.0, 0.01);
  EXPECT_NEAR(c[1], 0.5, 0.05);
}

TEST(Matrix, RankDeficientThrows) {
  Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW(solve_least_squares(a, y), CheckError);
}

TEST(Matrix, CholeskySolvesSpdSystem) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const Matrix l = cholesky(a);
  const auto x = cholesky_solve(l, {8.0, 7.0});
  // Verify A x = b.
  EXPECT_NEAR(4.0 * x[0] + 2.0 * x[1], 8.0, 1e-9);
  EXPECT_NEAR(2.0 * x[0] + 3.0 * x[1], 7.0, 1e-9);
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(a), CheckError);
}

TEST(Matrix, GaussianEliminationSolves) {
  Matrix a{{0.0, 2.0, 1.0}, {1.0, -2.0, -3.0}, {-1.0, 1.0, 2.0}};
  const auto x = solve_linear(a, {-8.0, 0.0, 3.0});
  EXPECT_NEAR(x[0], -4.0, 1e-9);
  EXPECT_NEAR(x[1], -5.0, 1e-9);
  EXPECT_NEAR(x[2], 2.0, 1e-9);
}

TEST(Fft, RoundTripRecoversSignal) {
  Rng rng(2);
  std::vector<std::complex<double>> data(64);
  std::vector<std::complex<double>> orig(64);
  for (auto i = 0u; i < 64; ++i) {
    data[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    orig[i] = data[i];
  }
  fft(data, false);
  fft(data, true);
  for (auto i = 0u; i < 64; ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, DetectsSingleTone) {
  const std::size_t n = 128;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i)
    xs[i] = std::cos(2.0 * std::numbers::pi * 8.0 * i / static_cast<double>(n));
  const auto spec = fft_real(xs);
  // Bin 8 dominates.
  std::size_t argmax = 1;
  for (std::size_t i = 1; i < n / 2; ++i)
    if (std::abs(spec[i]) > std::abs(spec[argmax])) argmax = i;
  EXPECT_EQ(argmax, 8u);
}

TEST(Fft, HarmonicExtrapolationContinuesPeriodicSignal) {
  const std::size_t n = 64;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i)
    xs[i] = 3.0 + std::sin(2.0 * std::numbers::pi * 4.0 * i / static_cast<double>(n));
  const auto ext = harmonic_extrapolate(xs, 2, n + 8);
  for (std::size_t i = 0; i < 8; ++i) {
    const double expected =
        3.0 + std::sin(2.0 * std::numbers::pi * 4.0 * (n + i) / static_cast<double>(n));
    EXPECT_NEAR(ext[n + i], expected, 0.05);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(12);
  EXPECT_THROW(fft(data, false), CheckError);
}

TEST(Bisection, FindsLargestTrue) {
  // pred true for <= 37
  const int b = bisect_max_true(1, 100, [](int x) { return x <= 37; });
  EXPECT_EQ(b, 37);
}

TEST(Bisection, AllTrueReturnsHi) {
  EXPECT_EQ(bisect_max_true(1, 10, [](int) { return true; }), 10);
}

TEST(Bisection, NoneTrueReturnsLoMinusOne) {
  EXPECT_EQ(bisect_max_true(1, 10, [](int) { return false; }), 0);
}

TEST(Bisection, RootOfMonotoneFunction) {
  const double r = bisect_root(0.0, 10.0, 1e-9, [](double x) { return x * x - 2.0; });
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-7);
}

TEST(LevenbergMarquardt, FitsExponentialDecay) {
  Rng rng(3);
  std::vector<double> ts, ys;
  for (int i = 0; i < 40; ++i) {
    const double t = 0.1 * i;
    ts.push_back(t);
    ys.push_back(2.5 * std::exp(-1.3 * t) + rng.normal(0.0, 0.002));
  }
  auto residuals = [&](const std::vector<double>& p) {
    std::vector<double> r(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i)
      r[i] = p[0] * std::exp(-p[1] * ts[i]) - ys[i];
    return r;
  };
  const auto res = levenberg_marquardt(residuals, {1.0, 1.0});
  EXPECT_NEAR(res.params[0], 2.5, 0.05);
  EXPECT_NEAR(res.params[1], 1.3, 0.05);
}

TEST(LevenbergMarquardt, LinearProblemConvergesFast) {
  auto residuals = [](const std::vector<double>& p) {
    return std::vector<double>{p[0] - 4.0, 2.0 * p[0] - 8.0};
  };
  const auto res = levenberg_marquardt(residuals, {0.0});
  EXPECT_NEAR(res.params[0], 4.0, 1e-6);
  EXPECT_LT(res.sse, 1e-10);
}

TEST(GaussianProcess, InterpolatesTrainingPoints) {
  GaussianProcess gp(1.0, 1.0, 1e-6);
  gp.fit({{0.0}, {1.0}, {2.0}}, {0.0, 1.0, 4.0});
  EXPECT_NEAR(gp.predict({1.0}).mean, 1.0, 0.01);
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp(0.5, 1.0, 1e-6);
  gp.fit({{0.0}, {1.0}}, {0.0, 1.0});
  const double var_near = gp.predict({0.5}).variance;
  const double var_far = gp.predict({5.0}).variance;
  EXPECT_LT(var_near, var_far);
}

TEST(GaussianProcess, ExpectedImprovementPrefersPromisingRegion) {
  // Minimisation: lower observed y near x=0.
  GaussianProcess gp(0.7, 1.0, 1e-4);
  gp.fit({{0.0}, {1.0}, {2.0}}, {0.1, 1.0, 2.0});
  const double ei_near_min = gp.expected_improvement({0.2}, 0.1);
  const double ei_near_max = gp.expected_improvement({2.0}, 0.1);
  EXPECT_GT(ei_near_min, ei_near_max);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(99), b(99);
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, ForkDecorrelates) {
  Rng a(99);
  Rng c1 = a.fork(1);
  Rng a2(99);
  Rng c2 = a2.fork(2);
  // Different salts give different streams.
  bool any_diff = false;
  for (int i = 0; i < 8; ++i)
    if (c1.uniform(0, 1) != c2.uniform(0, 1)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rng, TruncatedNormalRespectsFloor) {
  Rng a(5);
  for (int i = 0; i < 200; ++i) EXPECT_GE(a.truncated_normal(1.0, 5.0, 0.2), 0.2);
}

}  // namespace
}  // namespace smiless::math
