#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "baselines/aquatope.hpp"
#include "baselines/experiment.hpp"
#include "baselines/grandslam.hpp"
#include "baselines/icebreaker.hpp"
#include "baselines/orion.hpp"
#include "core/smiless_policy.hpp"

namespace smiless::baselines {
namespace {

ProfileStore& store() {
  static Rng rng(101);
  // detlint:allow(global-state) fixed-seed fixture built once; tests only read it
  static ProfileStore s{profiler::OfflineProfiler{}, rng};
  return s;
}

workload::Trace small_trace(std::uint64_t seed, double duration = 120.0) {
  Rng rng(seed);
  workload::TraceOptions o;
  o.duration = duration;
  o.mean_rate = 0.5;
  return workload::generate_trace(o, rng);
}

ExperimentOptions fast_options() {
  ExperimentOptions o;
  o.drain_slack = 60.0;
  return o;
}

TEST(ProfileStore, ResolvesCatalogAndSyntheticNames) {
  EXPECT_EQ(store().fitted("TRS").name, "TRS");
  EXPECT_EQ(store().fitted("TRS#5").name, "TRS");
  EXPECT_THROW(store().fitted("NOPE"), CheckError);
}

TEST(ProfileStore, ForAppAlignsWithDag) {
  const auto app = apps::make_image_query();
  const auto profs = store().for_app(app);
  ASSERT_EQ(profs.size(), app.dag.size());
  for (std::size_t n = 0; n < profs.size(); ++n)
    EXPECT_EQ(profs[n].name, app.dag.name(static_cast<dag::NodeId>(n)));
}

TEST(Orion, PlansIgnoreArrivalRate) {
  const auto app = apps::make_voice_assistant();
  // Planning happens at deploy; exercised via a run below. Here check the
  // cost-model property through the optimizer it uses.
  core::StrategyOptimizer opt;
  opt.set_cost_model(core::CostModel::AlwaysPrewarm);
  const auto s1 = opt.optimize_chain(store().for_app(app), 0.3, app.sla);
  const auto s2 = opt.optimize_chain(store().for_app(app), 30.0, app.sla);
  EXPECT_NEAR(s1.cost, s2.cost, 1e-12);
}

TEST(Orion, ServesTraceAndPrewarmsDownstream) {
  const auto app = apps::make_voice_assistant();
  const auto trace = small_trace(1);
  const auto r = run_experiment(app, trace,
                                std::make_shared<OrionPolicy>(store().for_app(app)),
                                fast_options());
  EXPECT_EQ(r.completed, r.submitted);
  EXPECT_GT(r.cost, 0.0);
  // The fixed keep-alive absorbs steady traffic: at least one init per
  // function, but far fewer than one per invocation.
  EXPECT_GE(r.initializations, static_cast<long>(app.dag.size()));
  EXPECT_LT(r.initializations, r.invocations);
}

TEST(IceBreaker, EfficiencyScorePrefersGpuSlices) {
  // With ~10x speed-up at ~9x price, small GPU slices score above CPU tiers
  // for the catalog's heavy models — the behaviour behind Fig. 9a.
  const auto& fn = apps::model_by_name("TRS");
  const perf::Pricing pricing;
  const double gpu10 =
      IceBreakerPolicy::efficiency_score(fn, {perf::Backend::Gpu, 0, 10}, pricing);
  const double cpu16 =
      IceBreakerPolicy::efficiency_score(fn, {perf::Backend::Cpu, 16, 0}, pricing);
  EXPECT_GT(gpu10, cpu16);
}

TEST(IceBreaker, KeepsFunctionsWarmUnderSteadyLoad) {
  const auto app = apps::make_voice_assistant();
  const auto trace = small_trace(2);
  const auto r = run_experiment(app, trace,
                                std::make_shared<IceBreakerPolicy>(store().for_app(app)),
                                fast_options());
  EXPECT_EQ(r.completed, r.submitted);
  // Long keep-alive: few re-inits relative to invocations.
  EXPECT_LT(r.initializations, r.invocations / 2 + 8);
  // DAG-oblivious GPU preference shows up in the billed seconds.
  EXPECT_GT(r.gpu_pct_seconds, 0.0);
}

TEST(GrandSlam, SubSlasSumWithinSlaAlongPaths) {
  const auto app = apps::make_amber_alert();
  GrandSlamPolicy policy(store().for_app(app));
  // Exercise on_deploy through a short run, then inspect the sub-SLAs.
  const auto trace = small_trace(3, 30.0);
  run_experiment(app, trace, std::make_shared<GrandSlamPolicy>(store().for_app(app)),
                 fast_options());
  GrandSlamPolicy probe(store().for_app(app));
  sim::Engine engine;
  cluster::Cluster cl = cluster::Cluster::paper_testbed();
  Rng rng(9);
  serverless::Platform platform(engine, cl, perf::Pricing{}, rng);
  platform.deploy(app, std::shared_ptr<GrandSlamPolicy>(&probe, [](GrandSlamPolicy*) {}));
  const auto& subs = probe.sub_slas();
  ASSERT_EQ(subs.size(), app.dag.size());
  for (const auto& path : app.dag.all_paths()) {
    double sum = 0.0;
    for (auto n : path) sum += subs[n];
    EXPECT_LE(sum, app.sla + 1e-9);
  }
  platform.finalize(0.0);
}

TEST(GrandSlam, NoReinitializationAfterWarmup) {
  const auto app = apps::make_voice_assistant();
  const auto trace = small_trace(4);
  const auto r = run_experiment(app, trace,
                                std::make_shared<GrandSlamPolicy>(store().for_app(app)),
                                fast_options());
  EXPECT_EQ(r.completed, r.submitted);
  // Instances live forever: exactly one init per function.
  EXPECT_EQ(r.initializations, static_cast<long>(app.dag.size()));
}

TEST(Aquatope, ShortKeepaliveCausesFrequentReinits) {
  const auto app = apps::make_voice_assistant();
  const auto trace = small_trace(5);
  const auto r = run_experiment(app, trace,
                                std::make_shared<AquatopePolicy>(store().for_app(app)),
                                fast_options());
  EXPECT_EQ(r.completed, r.submitted);
  // A 5 s keep-alive with ~2 s mean gaps still expires across every longer
  // gap: re-initialisation stays pervasive, far beyond the one init per
  // function that keep-forever policies pay (Fig. 9b's extreme).
  EXPECT_GT(r.initializations, 4 * static_cast<long>(app.dag.size()));
}

TEST(MakePolicy, BuildsEveryKind) {
  const auto app = apps::make_voice_assistant();
  const auto trace = small_trace(6, 30.0);
  PolicySettings s;
  s.use_lstm = false;
  s.oracle_trace = &trace;
  for (PolicyKind kind :
       {PolicyKind::Smiless, PolicyKind::SmilessHomo, PolicyKind::SmilessNoDag,
        PolicyKind::Opt, PolicyKind::Orion, PolicyKind::IceBreaker, PolicyKind::GrandSlam,
        PolicyKind::Aquatope}) {
    const auto policy = make_policy(kind, app, store(), s);
    ASSERT_NE(policy, nullptr) << policy_kind_name(kind);
    EXPECT_EQ(policy->name(), policy_kind_name(kind));
  }
}

TEST(MakePolicy, OptRequiresOracle) {
  const auto app = apps::make_voice_assistant();
  PolicySettings s;
  EXPECT_THROW(make_policy(PolicyKind::Opt, app, store(), s), CheckError);
}

TEST(SmilessHomo, UsesOnlyCpuConfigs) {
  const auto app = apps::make_voice_assistant();
  const auto trace = small_trace(7);
  PolicySettings s;
  s.use_lstm = false;
  const auto r = run_experiment(app, trace,
                                make_policy(PolicyKind::SmilessHomo, app, store(), s),
                                fast_options());
  EXPECT_EQ(r.gpu_pct_seconds, 0.0);
  EXPECT_GT(r.cpu_core_seconds, 0.0);
}

TEST(RunExperiment, UndeliveredRequestsCountAsViolations) {
  // An empty-capacity cluster cannot serve anything; every request must be
  // counted as violated rather than silently dropped.
  const auto app = apps::make_voice_assistant();
  sim::Engine engine;
  cluster::Cluster tiny(1, {0, 0});
  Rng rng(10);
  serverless::Platform platform(engine, tiny, perf::Pricing{}, rng);
  PolicySettings s;
  s.use_lstm = false;
  const auto id = platform.deploy(app, make_policy(PolicyKind::GrandSlam, app, store(), s));
  platform.submit_request(id, 1.0);
  engine.run_until(30.0);
  platform.finalize(30.0);
  EXPECT_EQ(platform.metrics(id).completed.size(), 0u);
  EXPECT_EQ(platform.in_flight(id), 1);
}

}  // namespace
}  // namespace smiless::baselines
