#include <gtest/gtest.h>

#include <cmath>

#include "apps/catalog.hpp"
#include "core/autoscaler.hpp"
#include "core/prewarm.hpp"
#include "core/smiless_policy.hpp"
#include "core/strategy_optimizer.hpp"
#include "core/workflow_manager.hpp"

namespace smiless::core {
namespace {

const perf::Pricing kPricing;

// --- adaptive cold-start decisions (§V-B) ------------------------------------

TEST(Prewarm, LowRateSelectsPrewarmMode) {
  const auto& fn = apps::model_by_name("QA");
  const perf::HwConfig cpu4{perf::Backend::Cpu, 4, 0};
  // T + I on cpu4 is a couple of seconds; a 60 s gap leaves room to unload.
  const auto d = evaluate_decision(fn, cpu4, 60.0, kPricing, 3.0);
  EXPECT_EQ(d.mode, ColdStartMode::Prewarm);
  EXPECT_NEAR(d.cost_per_invocation,
              (d.init_time + d.inference_time) * kPricing.per_second(cpu4), 1e-12);
}

TEST(Prewarm, HighRateSelectsKeepAlive) {
  const auto& fn = apps::model_by_name("QA");
  const perf::HwConfig cpu4{perf::Backend::Cpu, 4, 0};
  const auto d = evaluate_decision(fn, cpu4, 0.5, kPricing, 3.0);
  EXPECT_EQ(d.mode, ColdStartMode::KeepAlive);
  EXPECT_NEAR(d.cost_per_invocation, 0.5 * kPricing.per_second(cpu4), 1e-12);
}

TEST(Prewarm, AdaptiveChoiceFollowsMarginRule) {
  // Theorem 5.1 with the robustness margin: Prewarm only when T+I fits
  // comfortably inside the inter-arrival gap; the mode's cost expression
  // matches Eq. (5) either way.
  const auto& fn = apps::model_by_name("TRS");
  const double margin = 0.6;
  for (const auto& cfg : perf::default_config_space()) {
    for (double it : {0.2, 1.0, 3.0, 10.0, 60.0}) {
      const auto d = evaluate_decision(fn, cfg, it, kPricing, 3.0, margin);
      const double unit = kPricing.per_second(cfg);
      const double span = d.init_time + d.inference_time;
      if (span < margin * it) {
        EXPECT_EQ(d.mode, ColdStartMode::Prewarm);
        EXPECT_NEAR(d.cost_per_invocation, span * unit, 1e-12);
      } else {
        EXPECT_EQ(d.mode, ColdStartMode::KeepAlive);
        EXPECT_NEAR(d.cost_per_invocation, it * unit, 1e-12);
      }
    }
  }
}

TEST(Prewarm, MarginOfOneRecoversPaperRule) {
  const auto& fn = apps::model_by_name("TRS");
  for (double it : {0.5, 2.0, 8.0, 40.0}) {
    const auto d =
        evaluate_decision(fn, {perf::Backend::Cpu, 4, 0}, it, kPricing, 3.0, 1.0);
    const double unit = kPricing.per_second(perf::HwConfig{perf::Backend::Cpu, 4, 0});
    const double span = d.init_time + d.inference_time;
    EXPECT_NEAR(d.cost_per_invocation, std::min(span, it) * unit, 1e-12);
  }
}

TEST(Prewarm, GpuKeepAliveCostsMoreThanCpuAtSameGap) {
  const auto& fn = apps::model_by_name("IR");
  const auto cpu = evaluate_decision(fn, {perf::Backend::Cpu, 1, 0}, 2.0, kPricing, 3.0);
  const auto gpu = evaluate_decision(fn, {perf::Backend::Gpu, 0, 10}, 2.0, kPricing, 3.0);
  EXPECT_LT(cpu.cost_per_invocation, gpu.cost_per_invocation);
}

// --- strategy optimizer (§V-C) -----------------------------------------------

std::vector<perf::FunctionPerf> voice_chain() {
  return {apps::model_by_name("SR"), apps::model_by_name("DB"), apps::model_by_name("QA"),
          apps::model_by_name("TTS")};
}

TEST(StrategyOptimizer, LenientSlaPicksCheapestEverywhere) {
  StrategyOptimizer opt;
  const auto chain = voice_chain();
  const auto sol = opt.optimize_chain(chain, 2.0, /*sla=*/60.0);
  ASSERT_TRUE(sol.feasible);
  // Compare against the per-function minimum cost.
  for (std::size_t k = 0; k < chain.size(); ++k) {
    double cheapest = 1e18;
    for (const auto& c : perf::default_config_space())
      cheapest = std::min(cheapest,
                          evaluate_decision(chain[k], c, 2.0, kPricing, 3.0).cost_per_invocation);
    EXPECT_NEAR(sol.decisions[k].cost_per_invocation, cheapest, 1e-12);
  }
}

TEST(StrategyOptimizer, MeetsSlaWhenFeasible) {
  StrategyOptimizer opt;
  for (double sla : {0.5, 1.0, 2.0, 4.0}) {
    const auto sol = opt.optimize_chain(voice_chain(), 2.0, sla);
    if (sol.feasible) {
      EXPECT_LE(sol.latency, sla) << "sla=" << sla;
    }
  }
}

TEST(StrategyOptimizer, InfeasibleSlaReturnsFastest) {
  StrategyOptimizer opt;
  const auto sol = opt.optimize_chain(voice_chain(), 2.0, /*sla=*/0.01);
  EXPECT_FALSE(sol.feasible);
  // Fastest everywhere == full-GPU latency.
  for (const auto& d : sol.decisions) EXPECT_EQ(d.config.backend, perf::Backend::Gpu);
}

TEST(StrategyOptimizer, TighterSlaNeverCheaperExact) {
  // Exact monotonicity property, checked on the exhaustive solver (the
  // heuristic tracks it closely but is not guaranteed monotone).
  StrategyOptimizer opt;
  double prev_cost = 0.0;
  for (double sla : {6.0, 4.0, 2.0, 1.0, 0.6}) {
    const auto sol = opt.optimize_chain_exhaustive(voice_chain(), 2.0, sla);
    ASSERT_TRUE(sol.feasible) << sla;
    EXPECT_GE(sol.cost, prev_cost - 1e-12) << sla;
    prev_cost = sol.cost;
  }
}

TEST(StrategyOptimizer, MatchesExhaustiveWithinTolerance) {
  // The paper reports the path search lands within ~50% of OPT overall;
  // per-chain it is usually much closer.
  StrategyOptimizer opt;
  for (double sla : {0.8, 1.5, 3.0}) {
    for (double it : {0.5, 2.0, 20.0}) {
      const auto fast = opt.optimize_chain(voice_chain(), it, sla);
      const auto exact = opt.optimize_chain_exhaustive(voice_chain(), it, sla);
      ASSERT_EQ(fast.feasible, exact.feasible);
      if (exact.feasible) {
        EXPECT_GE(fast.cost, exact.cost - 1e-12);
        // The paper reports SMIless lands within ~50% of OPT (Fig. 8a);
        // the combined walk+marginal-cost search stays within that band.
        EXPECT_LE(fast.cost, exact.cost * 1.5 + 1e-12)
            << "sla=" << sla << " it=" << it;
      }
    }
  }
}

TEST(StrategyOptimizer, CspathAgreesWithExhaustive) {
  StrategyOptimizer opt;
  const auto exact = opt.optimize_chain_exhaustive(voice_chain(), 2.0, 1.0);
  const auto dp = opt.optimize_chain_cspath(voice_chain(), 2.0, 1.0, 0.002);
  ASSERT_TRUE(exact.feasible && dp.feasible);
  // Discretisation rounds latency up, so the DP can only be >= cost.
  EXPECT_GE(dp.cost, exact.cost - 1e-12);
  EXPECT_LE(dp.cost, exact.cost * 1.1);
}

TEST(StrategyOptimizer, ExploresFarFewerNodesThanExhaustive) {
  // Fig. 16a: 10x–100x fewer nodes; the gap widens with the chain length
  // (exhaustive is M^N).
  StrategyOptimizer opt;
  const auto fast = opt.optimize_chain(voice_chain(), 2.0, 1.0);
  const auto exact = opt.optimize_chain_exhaustive(voice_chain(), 2.0, 1.0);
  EXPECT_LT(fast.nodes_explored * 10, exact.nodes_explored);

  const auto pipeline = apps::make_synthetic_pipeline(6, 1.5);
  const auto fast6 = opt.optimize_chain(pipeline.truth, 2.0, 1.5);
  const auto exact6 = opt.optimize_chain_exhaustive(pipeline.truth, 2.0, 1.5);
  EXPECT_LT(fast6.nodes_explored * 100, exact6.nodes_explored);
}

TEST(StrategyOptimizer, TopKNeverWorseThanTop1) {
  OptimizerOptions o1;
  OptimizerOptions o4;
  o4.top_k = 4;
  StrategyOptimizer top1(o1), top4(o4);
  for (double sla : {0.8, 1.2, 2.5}) {
    const auto s1 = top1.optimize_chain(voice_chain(), 2.0, sla);
    const auto s4 = top4.optimize_chain(voice_chain(), 2.0, sla);
    ASSERT_TRUE(s1.feasible && s4.feasible);
    EXPECT_LE(s4.cost, s1.cost + 1e-12) << sla;
    EXPECT_LE(s4.latency, sla);
  }
}

TEST(StrategyOptimizer, AlwaysPrewarmCostIgnoresInterarrival) {
  OptimizerOptions o;
  StrategyOptimizer opt(o);
  opt.set_cost_model(CostModel::AlwaysPrewarm);
  const auto a = opt.optimize_chain(voice_chain(), 0.5, 2.0);
  const auto b = opt.optimize_chain(voice_chain(), 50.0, 2.0);
  EXPECT_NEAR(a.cost, b.cost, 1e-12);
}

// Property sweep: feasibility and SLA compliance across the (sla, it) grid.
class OptimizerSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(OptimizerSweep, FeasibleSolutionsRespectSlaAndBeatFastestCost) {
  const auto [sla, it] = GetParam();
  StrategyOptimizer opt;
  const auto sol = opt.optimize_chain(voice_chain(), it, sla);
  if (!sol.feasible) return;
  EXPECT_LE(sol.latency, sla);
  // Never more expensive than running everything on the fastest config.
  double fastest_cost = 0.0;
  for (const auto& fn : voice_chain()) {
    double best_latency = 1e18;
    FunctionDecision d;
    for (const auto& c : perf::default_config_space()) {
      const auto cand = evaluate_decision(fn, c, it, kPricing, 3.0);
      if (cand.inference_time < best_latency) {
        best_latency = cand.inference_time;
        d = cand;
      }
    }
    fastest_cost += d.cost_per_invocation;
  }
  EXPECT_LE(sol.cost, fastest_cost + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SlaTimesInterarrival, OptimizerSweep,
    ::testing::Combine(::testing::Values(0.3, 0.6, 1.0, 2.0, 4.0, 8.0),
                       ::testing::Values(0.2, 0.5, 2.0, 10.0, 60.0)));

TEST(StrategyOptimizer, AlwaysKeepAliveCostScalesWithInterarrival) {
  OptimizerOptions o;
  StrategyOptimizer opt(o);
  opt.set_cost_model(CostModel::AlwaysKeepAlive);
  const auto a = opt.optimize_chain(voice_chain(), 1.0, 2.0);
  const auto b = opt.optimize_chain(voice_chain(), 2.0, 2.0);
  ASSERT_TRUE(a.feasible && b.feasible);
  // Keep-alive bills IT per invocation: doubling IT doubles the cost when
  // the chosen configs coincide (they do — the ordering is unchanged).
  EXPECT_NEAR(b.cost, 2.0 * a.cost, 0.05 * b.cost);
}

// --- workflow manager (§V-C2) ---------------------------------------------------

TEST(WorkflowManager, PipelineMatchesChainOptimizer) {
  StrategyOptimizer opt;
  WorkflowManager wm{StrategyOptimizer{}};
  const auto app = apps::make_voice_assistant();
  const auto sol = wm.optimize(app.dag, app.truth, 2.0, 2.0);
  const auto chain = opt.optimize_chain(app.truth, 2.0, 2.0);
  ASSERT_TRUE(sol.feasible);
  // The workflow pipeline adds a cheapening sweep on top of the chain
  // search, so it can only match or improve the chain cost.
  EXPECT_LE(sol.cost_per_invocation, chain.cost + 1e-9);
  EXPECT_LE(sol.e2e_latency, 2.0);
}

TEST(WorkflowManager, DagSolutionMeetsSla) {
  WorkflowManager wm{StrategyOptimizer{}};
  for (const auto& app : apps::make_all_workloads(2.0)) {
    const auto sol = wm.optimize(app.dag, app.truth, 2.0, app.sla);
    ASSERT_TRUE(sol.feasible) << app.name;
    EXPECT_LE(sol.e2e_latency, app.sla) << app.name;
  }
}

TEST(WorkflowManager, StartOffsetsFollowCriticalPath) {
  WorkflowManager wm{StrategyOptimizer{}};
  const auto app = apps::make_voice_assistant();
  const auto sol = wm.optimize(app.dag, app.truth, 2.0, 2.0);
  ASSERT_EQ(sol.start_offset.size(), 4u);
  EXPECT_DOUBLE_EQ(sol.start_offset[0], 0.0);
  for (std::size_t n = 1; n < 4; ++n) {
    EXPECT_NEAR(sol.start_offset[n],
                sol.start_offset[n - 1] + sol.per_node[n - 1].inference_time, 1e-9);
  }
}

TEST(WorkflowManager, ParallelBranchesShareForkBudget) {
  WorkflowManager wm{StrategyOptimizer{}};
  const auto app = apps::make_amber_alert();
  const auto sol = wm.optimize(app.dag, app.truth, 2.0, app.sla);
  ASSERT_TRUE(sol.feasible);
  // The three recognisers start together right after OD.
  const auto od = app.dag.find("OD");
  for (const auto* name : {"IR", "FR", "HAP"}) {
    const auto n = app.dag.find(name);
    EXPECT_NEAR(sol.start_offset[n], sol.per_node[od].inference_time, 1e-9) << name;
  }
}

TEST(WorkflowManager, ParallelPoolGivesSameAnswer) {
  auto pool = std::make_shared<ThreadPool>(4);
  WorkflowManager seq{StrategyOptimizer{}};
  WorkflowManager par{StrategyOptimizer{}, pool.get()};
  const auto app = apps::make_amber_alert();
  const auto a = seq.optimize(app.dag, app.truth, 2.0, app.sla);
  const auto b = par.optimize(app.dag, app.truth, 2.0, app.sla);
  EXPECT_NEAR(a.cost_per_invocation, b.cost_per_invocation, 1e-12);
  EXPECT_NEAR(a.e2e_latency, b.e2e_latency, 1e-12);
}

TEST(WorkflowManager, SharedForkNodeTakesFastestPerPathDecision) {
  // Craft a diamond where the two branches pull the shared source toward
  // different configurations; the combiner must keep every path feasible.
  WorkflowManager wm{StrategyOptimizer{}};
  apps::App app;
  app.name = "diamond";
  const auto src = app.dag.add_node("SRC");
  app.truth.push_back(apps::model_by_name("IR"));
  const auto heavy = app.dag.add_node("HEAVY");
  app.truth.push_back(apps::model_by_name("TRS"));  // slow branch
  const auto light = app.dag.add_node("LIGHT");
  app.truth.push_back(apps::model_by_name("TM"));   // fast branch
  const auto sink = app.dag.add_node("SINK");
  app.truth.push_back(apps::model_by_name("QA"));
  app.dag.add_edge(src, heavy);
  app.dag.add_edge(src, light);
  app.dag.add_edge(heavy, sink);
  app.dag.add_edge(light, sink);

  const auto sol = wm.optimize(app.dag, app.truth, 2.0, 1.2);
  ASSERT_TRUE(sol.feasible);
  // Every source->sink path individually fits the SLA.
  for (const auto& path : app.dag.all_paths()) {
    double latency = 0.0;
    for (auto n : path) latency += sol.per_node[n].inference_time;
    EXPECT_LE(latency, 1.2);
  }
  // The combiner never leaves a shared node on a per-path config that only
  // one branch can afford: the joint E2E (critical path) respects the SLA.
  EXPECT_LE(sol.e2e_latency, 1.2);
}

TEST(WorkflowManager, InfeasibleSlaReportsFastestAssignment) {
  WorkflowManager wm{StrategyOptimizer{}};
  const auto app = apps::make_amber_alert();
  const auto sol = wm.optimize(app.dag, app.truth, 2.0, /*sla=*/0.01);
  EXPECT_FALSE(sol.feasible);
  for (const auto& d : sol.per_node) EXPECT_EQ(d.config.backend, perf::Backend::Gpu);
}

TEST(WorkflowManager, ExhaustiveNeverCostsMore) {
  WorkflowManager wm{StrategyOptimizer{}};
  for (const auto& app : apps::make_all_workloads(2.0)) {
    const auto fast = wm.optimize(app.dag, app.truth, 2.0, app.sla);
    const auto exact = wm.optimize(app.dag, app.truth, 2.0, app.sla,
                                   WorkflowManager::Search::Exhaustive);
    ASSERT_TRUE(fast.feasible && exact.feasible) << app.name;
    // The greedy cheapening sweep runs on both, so strict domination is not
    // guaranteed node-by-node; allow a small tolerance.
    EXPECT_LE(exact.cost_per_invocation, fast.cost_per_invocation * 1.05 + 1e-9) << app.name;
  }
}

class WorkflowSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(WorkflowSweep, EveryWorkloadAtEverySlaIsConsistent) {
  const auto [app_idx, sla] = GetParam();
  apps::App app;
  switch (app_idx) {
    case 0: app = apps::make_amber_alert(sla); break;
    case 1: app = apps::make_image_query(sla); break;
    case 2: app = apps::make_voice_assistant(sla); break;
    default: app = apps::make_ipa(sla); break;
  }
  WorkflowManager wm{StrategyOptimizer{}};
  const auto sol = wm.optimize(app.dag, app.truth, 2.0, sla);
  ASSERT_EQ(sol.per_node.size(), app.dag.size());
  if (sol.feasible) {
    EXPECT_LE(sol.e2e_latency, sla);
    // Cost equals the sum of the per-node decisions.
    double sum = 0.0;
    for (const auto& d : sol.per_node) sum += d.cost_per_invocation;
    EXPECT_NEAR(sol.cost_per_invocation, sum, 1e-12);
  }
  // Offsets are consistent with the DAG regardless of feasibility.
  for (std::size_t n = 0; n < app.dag.size(); ++n) {
    for (dag::NodeId p : app.dag.predecessors(static_cast<dag::NodeId>(n)))
      EXPECT_GE(sol.start_offset[n] + 1e-12,
                sol.start_offset[p] + sol.per_node[p].inference_time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AppsTimesSla, WorkflowSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0.3, 0.8, 1.5, 3.0, 8.0)));

// --- auto-scaler (§V-D) ------------------------------------------------------------

TEST(AutoScaler, SingleInvocationNeedsOneInstance) {
  AutoScaler as(perf::default_config_space(), kPricing);
  const auto d = as.solve(apps::model_by_name("QA"), 1, 0.5, 1.0);
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.instances, 1);
  EXPECT_EQ(d.batch, 1);
  EXPECT_LE(d.batch_latency, 0.5);
}

TEST(AutoScaler, BatchTimesInstancesCoversDemand) {
  AutoScaler as(perf::default_config_space(), kPricing);
  for (int g : {2, 7, 16, 40}) {
    const auto d = as.solve(apps::model_by_name("IR"), g, 0.6, 1.0);
    ASSERT_TRUE(d.feasible) << g;
    EXPECT_GE(d.batch * d.instances, g);
    EXPECT_LE(d.batch_latency, 0.6);
  }
}

TEST(AutoScaler, LargerBudgetAllowsCheaperPlan) {
  AutoScaler as(perf::default_config_space(), kPricing);
  const auto tight = as.solve(apps::model_by_name("TRS"), 20, 0.3, 1.0);
  const auto loose = as.solve(apps::model_by_name("TRS"), 20, 3.0, 1.0);
  ASSERT_TRUE(tight.feasible && loose.feasible);
  EXPECT_LE(loose.cost, tight.cost + 1e-12);
}

TEST(AutoScaler, ImpossibleBudgetFallsBackToFastest) {
  AutoScaler as(perf::default_config_space(), kPricing);
  const auto d = as.solve(apps::model_by_name("TRS"), 4, 1e-4, 1.0);
  EXPECT_FALSE(d.feasible);
  EXPECT_EQ(d.instances, 4);  // one instance per invocation
  EXPECT_EQ(d.config.backend, perf::Backend::Gpu);
}

TEST(AutoScaler, GpuWinsForLargeBatchesUnderPureEq7) {
  // GPUs process batched invocations much more efficiently (§VII-D); with
  // the paper's literal objective (no init-overhead term) the GPU takes
  // large batches.
  AutoScaler as(perf::default_config_space(), kPricing, /*init_overhead_weight=*/0.0);
  const auto d = as.solve(apps::model_by_name("IR"), 64, 0.5, 1.0);
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.config.backend, perf::Backend::Gpu);
  EXPECT_GT(d.batch, 4);
}

TEST(AutoScaler, InitAwareObjectiveShiftsScaleOutTowardCpu) {
  // Fig. 14b: the CPU:GPU ratio rises under bursts — cold GPU instances
  // arrive late and bill long inits, so init-aware scale-out favours CPUs.
  AutoScaler pure(perf::default_config_space(), kPricing, 0.0);
  AutoScaler aware(perf::default_config_space(), kPricing, 1.0);
  const auto p = pure.solve(apps::model_by_name("IR"), 64, 0.5, 1.0);
  const auto a = aware.solve(apps::model_by_name("IR"), 64, 0.5, 1.0);
  ASSERT_TRUE(p.feasible && a.feasible);
  EXPECT_EQ(a.config.backend, perf::Backend::Cpu);
  EXPECT_EQ(p.config.backend, perf::Backend::Gpu);
}

TEST(AutoScaler, SolveAllMatchesIndividualSolves) {
  AutoScaler as(perf::default_config_space(), kPricing);
  const auto app = apps::make_voice_assistant();
  std::vector<double> budgets(app.truth.size(), 0.5);
  ThreadPool pool(4);
  const auto par = as.solve_all(app.truth, budgets, 8, 1.0, &pool);
  for (std::size_t n = 0; n < app.truth.size(); ++n) {
    const auto one = as.solve(app.truth[n], 8, 0.5, 1.0);
    EXPECT_EQ(par[n].batch, one.batch);
    EXPECT_EQ(par[n].instances, one.instances);
    EXPECT_NEAR(par[n].cost, one.cost, 1e-12);
  }
}

// --- bisection-vs-scan agreement (parameterised property) -----------------------

class AutoScalerBatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(AutoScalerBatchSweep, BatchIsMaximalWithinBudget) {
  const int g = GetParam();
  AutoScaler as(perf::default_config_space(), kPricing);
  const auto& fn = apps::model_by_name("DB");
  const double budget = 0.7;
  const auto d = as.solve(fn, g, budget, 1.0);
  ASSERT_TRUE(d.feasible);
  EXPECT_LE(fn.inference_time(d.config, d.batch), budget);
  if (d.batch < g) {
    EXPECT_GT(fn.inference_time(d.config, d.batch + 1), budget);
  }
}

INSTANTIATE_TEST_SUITE_P(Demands, AutoScalerBatchSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace smiless::core
