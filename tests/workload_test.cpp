#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "math/stats.hpp"
#include "workload/arrival_cursor.hpp"
#include "workload/trace.hpp"

namespace smiless::workload {
namespace {

TEST(Trace, GeneratesRequestedWindowCount) {
  Rng rng(1);
  TraceOptions o;
  o.duration = 300.0;
  const Trace t = generate_trace(o, rng);
  EXPECT_EQ(t.counts.size(), 300u);
}

TEST(Trace, ArrivalsMatchCounts) {
  Rng rng(2);
  TraceOptions o;
  o.duration = 120.0;
  const Trace t = generate_trace(o, rng);
  std::size_t total = 0;
  for (int c : t.counts) total += static_cast<std::size_t>(c);
  EXPECT_EQ(t.arrivals.size(), total);
}

TEST(Trace, ArrivalsAreSortedAndInRange) {
  Rng rng(3);
  TraceOptions o;
  o.duration = 200.0;
  const Trace t = generate_trace(o, rng);
  EXPECT_TRUE(std::is_sorted(t.arrivals.begin(), t.arrivals.end()));
  for (double a : t.arrivals) {
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, o.duration);
  }
}

TEST(Trace, DeterministicForSameSeed) {
  TraceOptions o;
  o.duration = 100.0;
  Rng r1(7), r2(7);
  const Trace a = generate_trace(o, r1);
  const Trace b = generate_trace(o, r2);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.arrivals, b.arrivals);
}

TEST(Trace, MeanRateApproximatelyRespected) {
  Rng rng(4);
  TraceOptions o;
  o.duration = 5000.0;
  o.mean_rate = 0.5;
  o.burst_start_prob = 0.0;
  o.idle_start_prob = 0.0;
  o.diurnal_amplitude = 0.0;
  const Trace t = generate_trace(o, rng);
  const double rate = static_cast<double>(t.arrivals.size()) / o.duration;
  EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST(Trace, BurstsInflateVarianceToMeanBeyondPaperThreshold) {
  // §VII-C2: the evaluation trace has a variance-to-mean ratio > 2.
  Rng rng(5);
  TraceOptions o;
  o.duration = 4000.0;
  o.burst_start_prob = 0.01;
  o.burst_magnitude = 10.0;
  const Trace t = generate_trace(o, rng);
  EXPECT_GT(math::variance_to_mean(t.counts_as_double()), 2.0);
}

TEST(Trace, InterarrivalsArePositive) {
  Rng rng(6);
  TraceOptions o;
  o.duration = 500.0;
  const Trace t = generate_trace(o, rng);
  for (double g : t.interarrivals()) EXPECT_GE(g, 0.0);
}

TEST(Trace, IdleGapsProduceZeroWindows) {
  Rng rng(7);
  TraceOptions o;
  o.duration = 2000.0;
  o.idle_start_prob = 0.05;
  o.idle_duration = 40.0;
  const Trace t = generate_trace(o, rng);
  const auto zeros = std::count(t.counts.begin(), t.counts.end(), 0);
  EXPECT_GT(zeros, 100);
}

TEST(Trace, PresetsDifferAcrossWorkloads) {
  const auto wl1 = preset_for_workload("WL1-AMBER-Alert", 100.0);
  const auto wl3 = preset_for_workload("WL3-Voice-Assistant", 100.0);
  EXPECT_GT(wl1.burst_magnitude, wl3.burst_magnitude);
  EXPECT_LT(wl1.mean_rate, wl3.mean_rate);
}

TEST(BurstWindow, PeakExceedsQuietPhase) {
  Rng rng(8);
  const Trace t = generate_burst_window(0.5, 12.0, rng);
  ASSERT_EQ(t.counts.size(), 60u);
  double quiet = 0.0, peak = 0.0;
  for (std::size_t i = 0; i < 20; ++i) quiet += t.counts[i];
  for (std::size_t i = 20; i < 40; ++i) peak += t.counts[i];
  EXPECT_GT(peak, quiet * 3.0);
}

TEST(RegularTrace, MeanIntervalMatches) {
  Rng rng(9);
  const auto t = generate_regular_trace(5.0, 0.05, 600.0, rng);
  const auto gaps = t.interarrivals();
  ASSERT_GT(gaps.size(), 50u);
  EXPECT_NEAR(math::mean(gaps), 5.0, 0.2);
  // Low jitter: coefficient of variation well under the Poisson value of 1.
  EXPECT_LT(math::stddev(gaps) / math::mean(gaps), 0.15);
}

TEST(RegularTrace, CountsBucketArrivals) {
  Rng rng(10);
  const auto t = generate_regular_trace(3.0, 0.02, 60.0, rng);
  long total = 0;
  for (int c : t.counts) total += c;
  EXPECT_EQ(static_cast<std::size_t>(total), t.arrivals.size());
}

TEST(RegularTrace, RejectsDegenerateParameters) {
  Rng rng(11);
  EXPECT_THROW(generate_regular_trace(0.0, 0.1, 60.0, rng), CheckError);
  EXPECT_THROW(generate_regular_trace(10.0, -0.1, 60.0, rng), CheckError);
  EXPECT_THROW(generate_regular_trace(10.0, 0.1, 5.0, rng), CheckError);
}

TEST(ArrivalCursor, DrainBoundsMatchTheirInjectionModes) {
  const std::vector<SimTime> arrivals = {1.0, 2.0, 2.0, 3.0, 5.0};
  std::vector<SimTime> got;
  const auto grab = [&](SimTime t) { got.push_back(t); };

  ArrivalCursor cursor(&arrivals);
  EXPECT_DOUBLE_EQ(cursor.next_time(), 1.0);
  EXPECT_EQ(cursor.remaining(), 5u);

  // drain_before is strict (< limit): the window-barrier bound.
  EXPECT_EQ(cursor.drain_before(2.0, grab), 1u);
  EXPECT_EQ(got, (std::vector<SimTime>{1.0}));

  // drain_through is inclusive (<= t): the pacing-driver bound.
  EXPECT_EQ(cursor.drain_through(2.0, grab), 2u);
  EXPECT_EQ(got, (std::vector<SimTime>{1.0, 2.0, 2.0}));
  EXPECT_DOUBLE_EQ(cursor.next_time(), 3.0);

  // drain_all flushes the tail regardless of time.
  EXPECT_EQ(cursor.drain_all(grab), 2u);
  EXPECT_EQ(got, (std::vector<SimTime>{1.0, 2.0, 2.0, 3.0, 5.0}));
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_TRUE(std::isinf(cursor.next_time()));
  EXPECT_EQ(cursor.drain_all(grab), 0u);
}

TEST(ArrivalCursor, DefaultConstructedIsExhausted) {
  ArrivalCursor cursor;
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_EQ(cursor.remaining(), 0u);
  EXPECT_TRUE(std::isinf(cursor.next_time()));
  EXPECT_EQ(cursor.drain_before(100.0, [](SimTime) {}), 0u);
}

}  // namespace
}  // namespace smiless::workload
