// Satellite of the failure-model work: end-to-end determinism replay. Every
// policy, run twice from the same seed — with faults off and with a fixed
// fault cocktail on — must produce bit-identical metrics summaries. The
// summary string uses hexfloat so no rounding can mask a divergence.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "apps/catalog.hpp"
#include "baselines/experiment.hpp"
#include "workload/trace.hpp"

namespace smiless {
namespace {

const baselines::ProfileStore& store() {
  static Rng rng(2024);
  // detlint:allow(global-state) fixed-seed fixture built once; tests only read it
  static baselines::ProfileStore s{profiler::OfflineProfiler{}, rng};
  return s;
}

/// Every observable of a run, rendered exactly.
std::string summarize(const baselines::RunResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << r.policy << '|' << r.cost << '|' << r.violation_ratio << '|' << r.submitted << '|'
     << r.completed << '|' << r.failed << '|' << r.invocations << '|' << r.initializations
     << '|' << r.init_failures << '|' << r.evictions << '|' << r.retries << '|' << r.timeouts
     << '|' << r.cpu_core_seconds << '|' << r.gpu_pct_seconds;
  for (const double e : r.e2e) os << ';' << e;
  for (const auto& w : r.windows)
    os << '#' << w.arrivals << ',' << w.instances_cpu << ',' << w.instances_gpu;
  return os.str();
}

baselines::RunResult run_once(baselines::PolicyKind kind, const apps::App& app,
                              const workload::Trace& trace, const faults::FaultSpec& spec) {
  baselines::PolicySettings settings;
  settings.use_lstm = false;  // deterministic and fast
  settings.oracle_trace = &trace;
  baselines::ExperimentOptions options;
  options.seed = 4242;
  options.faults = spec;
  options.platform.request_timeout = 90.0;
  return baselines::run_experiment(
      app, trace, baselines::make_policy(kind, app, store(), settings), options);
}

class DeterminismReplay : public ::testing::TestWithParam<baselines::PolicyKind> {};

TEST_P(DeterminismReplay, SameSeedSameSummaryWithAndWithoutFaults) {
  const auto app = apps::make_voice_assistant();
  Rng trace_rng(7);
  const auto trace =
      workload::generate_trace(workload::preset_for_workload(app.name, 90.0), trace_rng);

  faults::FaultSpec clean;
  faults::FaultSpec faulty;
  faulty.init_failure_prob = 0.1;
  faulty.straggler_prob = 0.05;
  faulty.straggler_factor = 3.0;
  faulty.crashes.push_back({/*machine=*/0, /*at=*/30.0, /*duration=*/20.0});

  for (const faults::FaultSpec* spec : {&clean, &faulty}) {
    const auto first = summarize(run_once(GetParam(), app, trace, *spec));
    const auto second = summarize(run_once(GetParam(), app, trace, *spec));
    EXPECT_EQ(first, second) << (spec->any() ? "with faults" : "fault-free");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DeterminismReplay,
    ::testing::Values(baselines::PolicyKind::Smiless, baselines::PolicyKind::SmilessHomo,
                      baselines::PolicyKind::SmilessNoDag, baselines::PolicyKind::Opt,
                      baselines::PolicyKind::Orion, baselines::PolicyKind::IceBreaker,
                      baselines::PolicyKind::GrandSlam, baselines::PolicyKind::Aquatope),
    [](const auto& info) {
      std::string name = baselines::policy_kind_name(info.param);
      std::string out;
      for (const char c : name)
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      return out;
    });

}  // namespace
}  // namespace smiless
