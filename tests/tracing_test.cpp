#include <gtest/gtest.h>

#include <memory>

#include "apps/catalog.hpp"
#include "cluster/cluster.hpp"
#include "serverless/platform.hpp"
#include "serverless/platform_view.hpp"
#include "serverless/tracing.hpp"
#include "sim/engine.hpp"

namespace smiless::serverless {
namespace {

class FixedPolicy : public Policy {
 public:
  explicit FixedPolicy(FunctionPlan plan) : plan_(plan) {}
  std::string name() const override { return "fixed"; }
  void on_deploy(AppId app, const apps::App& spec, PlatformView& p) override {
    for (std::size_t n = 0; n < spec.dag.size(); ++n)
      p.set_plan(app, static_cast<dag::NodeId>(n), plan_);
  }

 private:
  FunctionPlan plan_;
};

struct Fixture {
  sim::Engine engine;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed();
  Rng rng{9};
  std::unique_ptr<Platform> platform;

  Fixture() {
    PlatformOptions options;
    options.inference_noise = 0.0;
    options.record_traces = true;
    platform = std::make_unique<Platform>(engine, cluster, perf::Pricing{}, rng, options);
  }
};

FunctionPlan warm_plan() {
  FunctionPlan p;
  p.config = {perf::Backend::Cpu, 4, 0};
  p.keepalive = FunctionPlan::forever();
  return p;
}

TEST(Tracing, SpansCoverEveryStage) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(60.0);
  f.platform->finalize(60.0);

  const auto& traces = f.platform->metrics(id).traces;
  ASSERT_EQ(traces.size(), 1u);
  const auto& t = traces[0];
  EXPECT_DOUBLE_EQ(t.arrival, 1.0);
  ASSERT_EQ(t.spans.size(), app.dag.size());
  // Spans are recorded in completion order, which for a pipeline is the
  // topological order.
  for (std::size_t i = 0; i < t.spans.size(); ++i)
    EXPECT_EQ(t.spans[i].node, static_cast<dag::NodeId>(i));
}

TEST(Tracing, ColdStartShowsAsWaitOnFirstStage) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(60.0);
  f.platform->finalize(60.0);

  const auto& t = f.platform->metrics(id).traces[0];
  // Every stage cold-started (no pre-warming): each span waits for its init.
  for (const auto& span : t.spans) {
    EXPECT_TRUE(span.cold);
    EXPECT_GT(span.wait(), 0.5);
  }
  EXPECT_EQ(t.cold_stages(), static_cast<int>(app.dag.size()));
}

TEST(Tracing, WarmRequestHasNoWaits) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);    // warms everything
  f.platform->submit_request(id, 100.0);  // fully warm path
  f.engine.run_until(200.0);
  f.platform->finalize(200.0);

  const auto& traces = f.platform->metrics(id).traces;
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[1].cold_stages(), 0);
  EXPECT_LT(traces[1].total_wait(), 1e-6);
  // E2E of the warm request equals the sum of its inference spans.
  double infer = 0.0;
  for (const auto& s : traces[1].spans) infer += s.inference();
  EXPECT_NEAR(traces[1].e2e(), infer, 1e-9);
}

TEST(Tracing, BatchSizeRecordedOnSpans) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  FunctionPlan plan = warm_plan();
  plan.max_batch = 4;
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(plan));
  for (int i = 0; i < 3; ++i) f.platform->submit_request(id, 1.0 + i * 1e-3);
  f.engine.run_until(120.0);
  f.platform->finalize(120.0);

  const auto& traces = f.platform->metrics(id).traces;
  ASSERT_EQ(traces.size(), 3u);
  // Downstream stages see the three requests batched together.
  bool any_batched = false;
  for (const auto& t : traces)
    for (const auto& s : t.spans)
      if (s.batch > 1) any_batched = true;
  EXPECT_TRUE(any_batched);
}

TEST(Tracing, ParallelBranchSpansOverlapInTime) {
  Fixture f;
  const auto app = apps::make_amber_alert();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.platform->submit_request(id, 100.0);  // measure the warm request
  f.engine.run_until(200.0);
  f.platform->finalize(200.0);

  const auto& t = f.platform->metrics(id).traces[1];
  // Find the IR and HAP spans; both start when OD completed.
  const NodeSpan* ir = nullptr;
  const NodeSpan* hap = nullptr;
  for (const auto& s : t.spans) {
    if (app.dag.name(s.node) == "IR") ir = &s;
    if (app.dag.name(s.node) == "HAP") hap = &s;
  }
  ASSERT_TRUE(ir != nullptr && hap != nullptr);
  EXPECT_NEAR(ir->start, hap->start, 1e-9);
  EXPECT_LT(ir->start, hap->end);  // concurrent execution
}

TEST(Tracing, DisabledByDefault) {
  sim::Engine engine;
  cluster::Cluster cl = cluster::Cluster::paper_testbed();
  Rng rng(10);
  Platform platform(engine, cl, perf::Pricing{}, rng);  // default options
  const auto id = platform.deploy(apps::make_voice_assistant(),
                                  std::make_shared<FixedPolicy>(warm_plan()));
  platform.submit_request(id, 1.0);
  engine.run_until(60.0);
  platform.finalize(60.0);
  EXPECT_EQ(platform.metrics(id).completed.size(), 1u);
  EXPECT_TRUE(platform.metrics(id).traces.empty());
}

TEST(Tracing, FormatTraceMentionsColdStages) {
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.engine.run_until(60.0);
  f.platform->finalize(60.0);

  const auto text = format_trace(f.platform->metrics(id).traces[0], app.dag);
  EXPECT_NE(text.find("SR"), std::string::npos);
  EXPECT_NE(text.find("COLD"), std::string::npos);
  EXPECT_NE(text.find("e2e="), std::string::npos);
}

TEST(Tracing, FormatTraceGoldenOutput) {
  // Pins the exact rendering — fixed three-decimal numbers, stage layout,
  // COLD markers — for one cold and one warm request of the same pipeline.
  // Deterministic: the fixture zeroes inference noise and seeds the RNG.
  Fixture f;
  const auto app = apps::make_voice_assistant();
  const auto id = f.platform->deploy(app, std::make_shared<FixedPolicy>(warm_plan()));
  f.platform->submit_request(id, 1.0);
  f.platform->submit_request(id, 100.0);
  f.engine.run_until(200.0);
  f.platform->finalize(200.0);

  const auto& traces = f.platform->metrics(id).traces;
  ASSERT_EQ(traces.size(), 2u);
  std::string text;
  for (const auto& t : traces) text += format_trace(t, app.dag);
  const std::string golden =
      "request arrival=1.000 e2e=8.171\n"
      "  SR: ready+0.000 wait=1.988 infer=0.440 batch=1 COLD\n"
      "  DB: ready+2.428 wait=1.511 infer=0.248 batch=1 COLD\n"
      "  QA: ready+4.186 wait=1.632 infer=0.276 batch=1 COLD\n"
      "  TTS: ready+6.094 wait=1.721 infer=0.356 batch=1 COLD\n"
      "request arrival=100.000 e2e=1.320\n"
      "  SR: ready+0.000 wait=0.000 infer=0.440 batch=1\n"
      "  DB: ready+0.440 wait=0.000 infer=0.248 batch=1\n"
      "  QA: ready+0.688 wait=0.000 infer=0.276 batch=1\n"
      "  TTS: ready+0.964 wait=0.000 infer=0.356 batch=1\n";
  EXPECT_EQ(text, golden);
}

}  // namespace
}  // namespace smiless::serverless
