#!/usr/bin/env bash
# Build, lint and test every supported flavor: the default build, the static
# analyzers (detlint + clang-tidy, see DESIGN.md §11) and the three
# sanitizer builds wired through -DSMILESS_SANITIZE. Any test failure, lint
# violation, golden mismatch or sanitizer report fails the script.
#
# Flavors are defined once in CMakePresets.json (ci, asan, ubsan, tsan) and
# consumed here via `cmake --preset`. Passing an explicit build-dir prefix
# falls back to hand-rolled -B configures so scratch trees keep working.
#
# Usage: tools/ci.sh [mode] [build-dir-prefix]
#   tools/ci.sh            # full pipeline into build-ci, build-ci-{asan,ubsan,tsan}
#   tools/ci.sh lint       # static analysis only: detlint + clang-tidy + compile-db audit
#   tools/ci.sh tsan       # ThreadSanitizer flavor only
#   tools/ci.sh golden     # golden bit-identity smoke against tests/golden/
#   tools/ci.sh bench      # shrunken throughput bench + artifact schema check
#   tools/ci.sh shard      # lanes=1 vs lanes=4 artifact bit-identity smoke
#   tools/ci.sh obs        # observability artifacts + HTML report + profiler smoke
#   tools/ci.sh serve      # wall-clock serve mode vs DES equivalence smoke
#   tools/ci.sh full /tmp/ci
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
# --build --preset / ctest --preset resolve CMakePresets.json from the cwd.
cd "${repo}"
mode="full"
case "${1:-}" in
  lint|tsan|golden|bench|shard|obs|serve|full) mode="$1"; shift ;;
esac
prefix="${1:-${repo}/build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

# Presets pin the binary dirs; a custom prefix opts out of them.
use_presets=0
if [ "${prefix}" = "${repo}/build-ci" ]; then
  use_presets=1
fi

# Configure one flavor into its build tree. $1 = preset name, $2 = build dir,
# rest = extra cache args for the non-preset fallback.
configure_flavor() {
  local preset="$1" dir="$2"
  shift 2
  if [ "${use_presets}" -eq 1 ]; then
    cmake --preset "${preset}" -S "${repo}"
  else
    cmake -B "${dir}" -S "${repo}" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  fi
}

run_flavor() {
  local name="$1" preset="$2" dir="$3"
  shift 3
  echo "==== [${name}] configure + build + test ===="
  configure_flavor "${preset}" "${dir}" "$@"
  if [ "${use_presets}" -eq 1 ]; then
    cmake --build --preset "${preset}" -j "${jobs}"
    ctest --preset "${preset}" -j "${jobs}"
  else
    cmake --build "${dir}" -j "${jobs}"
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
  fi
}

# Make sanitizers fail loudly instead of continuing past the first report.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1:suppressions=${repo}/tools/tsan.supp}"

# The 32-cell grid the smokes share; $1 receives the file path. The golden
# artifact tests/golden/sweep_smoke.json is pinned to exactly this grid — if
# you change it, regenerate the golden in the same commit and say why.
write_smoke_grid() {
  cat > "$1" <<'EOF'
{
  "base": {
    "sla": 2.0,
    "use_lstm": false,
    "trace": {"kind": "regular", "interval": 5.0, "jitter": 0.1, "duration": 60.0},
    "platform": {"request_timeout": 30.0, "max_retries": 2},
    "faults": {"straggler_prob": 0.02}
  },
  "axes": {
    "apps": ["wl1", "wl2"],
    "policies": ["smiless", "grandslam", "icebreaker", "orion"],
    "init_failure_probs": [0.0, 0.05],
    "seeds": [7, 8]
  }
}
EOF
}

# Compile-database audit: every translation unit under src/, tools/, bench/
# and tests/ must appear in the freshly regenerated compile_commands.json
# (the detlint corpus is lint test data, not code, and is exempt). Catches a
# source file that exists on disk but was never added to its CMakeLists.txt
# (it would silently escape clang-tidy, detlint's build coverage and the
# sanitizer flavors).
compile_db_check() {
  echo "==== [lint] compile database covers every translation unit ===="
  local db="${prefix}/compile_commands.json"
  if [ ! -f "${db}" ]; then
    echo "[lint] ERROR: ${db} missing (CMAKE_EXPORT_COMPILE_COMMANDS)"
    return 1
  fi
  local missing=0 f
  while IFS= read -r f; do
    if ! grep -qF "${f}" "${db}"; then
      echo "[lint] ERROR: ${f} not in compile_commands.json" \
           "(add it to its CMakeLists.txt and reconfigure)"
      missing=1
    fi
  done < <(find "${repo}/src" "${repo}/tools" "${repo}/bench" "${repo}/tests" \
             -name '*.cpp' -not -path '*/detlint_corpus/*' | sort)
  if [ "${missing}" -ne 0 ]; then
    return 1
  fi
  echo "[lint] compile database complete"
}

# Static analysis: detlint always (both passes — the determinism rule
# catalog and the archlint layer manifest — with zero unsuppressed
# violations allowed over src/ tools/ bench/ tests/), the compile-db audit,
# and clang-tidy over the compile database when a binary is on PATH. The
# machine-readable report lands next to the build tree as a CI artifact
# either way. Exits non-zero on any finding.
lint_step() {
  echo "==== [lint] detlint: determinism rules + layer manifest ===="
  configure_flavor ci "${prefix}"
  cmake --build "${prefix}" --target detlint -j "${jobs}"
  local report="${prefix}/detlint-report.json"
  if ! "${prefix}/tools/detlint/detlint" -q \
      --layers "${repo}/tools/detlint/layers.json" \
      --exclude detlint_corpus \
      --json "${report}" \
      "${repo}/src" "${repo}/tools" "${repo}/bench" "${repo}/tests"; then
    echo "[lint] ERROR: detlint found violations; first 20 findings:"
    "${prefix}/tools/detlint/detlint" \
        --layers "${repo}/tools/detlint/layers.json" --exclude detlint_corpus \
        "${repo}/src" "${repo}/tools" "${repo}/bench" "${repo}/tests" \
      | head -n 20 || true
    echo "[lint] full machine-readable report: ${report}"
    echo "[lint] fix the finding or add a reasoned 'detlint:allow(<rule>)' annotation"
    return 1
  fi
  echo "[lint] detlint clean (report: ${report})"

  compile_db_check

  local tidy=""
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy="${candidate}"
      break
    fi
  done
  if [ -z "${tidy}" ]; then
    echo "[lint] clang-tidy not found on PATH; skipping (detlint ran, .clang-tidy profile unchecked)"
    return 0
  fi
  echo "==== [lint] ${tidy}: .clang-tidy profile over the compile database ===="
  # Translation units only; headers ride along via HeaderFilterRegex.
  find "${repo}/src" "${repo}/tools" "${repo}/bench" -name '*.cpp' -print0 \
    | xargs -0 -n 8 -P "${jobs}" "${tidy}" -p "${prefix}" --quiet
  echo "[lint] clang-tidy clean"
}

# ThreadSanitizer flavor: the concurrency suite, the exp parallel==serial
# determinism suite, the lane-equivalence suite (lanes stepped by competing
# threads), the realtime-driver suite (wall-clock pacing + stop flag cross
# threads) and the 32-cell sweep smoke must produce zero reports.
tsan_step() {
  local dir="${prefix}-tsan"
  echo "==== [tsan] configure + build (SMILESS_SANITIZE=thread) ===="
  configure_flavor tsan "${dir}" -DSMILESS_SANITIZE=thread
  cmake --build "${dir}" --target concurrency_test exp_test sharding_test rt_test \
      smiless_cli -j "${jobs}"
  echo "==== [tsan] concurrency_test ===="
  "${dir}/tests/concurrency_test"
  echo "==== [tsan] exp_test (parallel == serial sweep) ===="
  "${dir}/tests/exp_test"
  echo "==== [tsan] sharding_test (lane-equivalence under racing lane threads) ===="
  "${dir}/tests/sharding_test"
  echo "==== [tsan] rt_test (DES vs realtime equivalence + wall-clock stop flag) ===="
  "${dir}/tests/rt_test"
  echo "==== [tsan] 32-cell sweep smoke ===="
  local tmp
  tmp="$(mktemp -d)"
  write_smoke_grid "${tmp}/grid.json"
  "${dir}/tools/smiless" --sweep "${tmp}/grid.json" --threads 4 --out "${tmp}/out.json"
  rm -rf "${tmp}"
  echo "[tsan] zero reports"
}

# Sweep smoke: a 32-cell grid must produce bit-identical aggregate JSON at
# --threads 4 and --threads 1 (the runner's determinism contract), and the
# parallel run should be faster when the machine has the cores for it.
sweep_smoke() {
  echo "==== [sweep] 32-cell grid: parallel == serial, byte for byte ===="
  local dir grid out4 out1
  dir="$(mktemp -d)"
  grid="${dir}/grid.json"
  out4="${dir}/threads4.json"
  out1="${dir}/threads1.json"
  write_smoke_grid "${grid}"
  local t0 t1 wall4 wall1
  t0=$(date +%s%N); "${prefix}/tools/smiless" --sweep "${grid}" --threads 4 --out "${out4}"
  t1=$(date +%s%N); wall4=$(( (t1 - t0) / 1000000 ))
  t0=$(date +%s%N); "${prefix}/tools/smiless" --sweep "${grid}" --threads 1 --out "${out1}"
  t1=$(date +%s%N); wall1=$(( (t1 - t0) / 1000000 ))
  cmp "${out4}" "${out1}"
  echo "[sweep] bit-identical OK (threads=4: ${wall4} ms, threads=1: ${wall1} ms)"
  # The speedup assertion only means something with real cores behind it.
  if [ "${jobs}" -ge 8 ] && [ "${wall4}" -gt 0 ]; then
    if [ $(( wall1 )) -lt $(( wall4 * 2 )) ]; then
      echo "[sweep] WARNING: expected parallel speedup on ${jobs} cores" \
           "(threads=1 ${wall1} ms vs threads=4 ${wall4} ms)"
    fi
  fi
  rm -rf "${dir}"
}

# Golden bit-identity smoke: the 32-cell sweep must reproduce the checked-in
# artifact byte for byte. This is the cross-commit determinism contract — a
# refactor that claims behavioural neutrality must leave this untouched. A
# legitimate behaviour change regenerates tests/golden/sweep_smoke.json in
# the same commit (and says why in its message).
golden_smoke() {
  echo "==== [golden] 32-cell sweep vs tests/golden/sweep_smoke.json ===="
  local golden="${repo}/tests/golden/sweep_smoke.json"
  if [ ! -f "${golden}" ]; then
    echo "[golden] ERROR: ${golden} missing"
    return 1
  fi
  local dir
  dir="$(mktemp -d)"
  write_smoke_grid "${dir}/grid.json"
  "${prefix}/tools/smiless" --sweep "${dir}/grid.json" --threads 2 --out "${dir}/out.json"
  if ! cmp "${golden}" "${dir}/out.json"; then
    echo "[golden] ERROR: sweep output diverged from the pinned artifact"
    rm -rf "${dir}"
    return 1
  fi
  rm -rf "${dir}"
  echo "[golden] bit-identical to the pinned artifact OK"
}

# Observability smoke: the same sweep with artifact collection on must (a)
# leave the aggregate JSON untouched (including with the self-profiler
# attached), (b) emit parseable artifacts — trace, metrics, audit, windows,
# time series, self-profile, HTML report — and (c) produce byte-identical
# sim-derived artifacts at --threads 4 and --threads 1. The profile and the
# report embed wall-clock data, so they are schema-validated, never cmp'd.
obs_smoke() {
  echo "==== [obs] artifact collection: valid, inert, thread-stable ===="
  local dir grid
  dir="$(mktemp -d)"
  grid="${dir}/grid.json"
  cat > "${grid}" <<'EOF'
{
  "base": {
    "sla": 2.0,
    "use_lstm": false,
    "trace": {"kind": "regular", "interval": 5.0, "jitter": 0.1, "duration": 60.0},
    "platform": {"request_timeout": 30.0, "max_retries": 2},
    "faults": {"init_failure_prob": 0.05, "straggler_prob": 0.02}
  },
  "axes": {
    "apps": ["wl1"],
    "policies": ["smiless", "grandslam"],
    "seeds": [7, 8]
  }
}
EOF
  local n
  for n in 4 1; do
    "${prefix}/tools/smiless" --sweep "${grid}" --threads "${n}" \
      --out "${dir}/out${n}.json" \
      --trace-out "${dir}/trace${n}.json" --metrics-out "${dir}/metrics${n}.json" \
      --audit-out "${dir}/audit${n}.json" --windows-out "${dir}/windows${n}.csv" \
      --series-out "${dir}/series${n}.json" --series-cadence 2 \
      --profile-out "${dir}/profile${n}.json" --report-out "${dir}/report${n}.html"
  done
  # Collection must not perturb the summary — the --report-out/--profile-out
  # runs above have the self-profiler attached, so this cmp doubles as the
  # profiling-is-inert check — and sim-derived artifacts are thread-stable.
  "${prefix}/tools/smiless" --sweep "${grid}" --threads 2 --out "${dir}/plain.json"
  cmp "${dir}/plain.json" "${dir}/out4.json"
  local f
  for f in out trace metrics audit series; do
    cmp "${dir}/${f}4.json" "${dir}/${f}1.json"
  done
  cmp "${dir}/windows4.csv" "${dir}/windows1.csv"
  # Artifacts parse and carry the pinned schema (when python3 is around).
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${dir}" <<'EOF'
import json, sys
d = sys.argv[1]
trace = json.load(open(f"{d}/trace4.json"))
assert isinstance(trace, list) and trace, "empty perfetto trace"
assert all("ph" in e for e in trace), "trace event without a phase"
metrics = json.load(open(f"{d}/metrics4.json"))
assert metrics["cells"], "no metric cells"
assert any("p99" in h for c in metrics["cells"]
           for h in c["metrics"]["histograms"].values()), "no p99 histograms"
audit = json.load(open(f"{d}/audit4.json"))
assert any(c["decisions"] for c in audit["cells"]), "no audit decisions"

# Time series: fixed-cadence columns of equal length per cell.
series = json.load(open(f"{d}/series4.json"))
assert series["cells"], "no series cells"
cols = ("t", "arrivals", "completions", "failures", "slo_attainment",
        "p99_latency", "cold_starts", "instances_init", "instances_warm",
        "instances_busy", "machines_busy", "queue_depth", "utilization",
        "cost_rate")
for c in series["cells"]:
    s = c["series"]
    assert s["cadence"] == 2.0, "cadence not honoured"
    bins = s["bins"]
    assert bins > 0, "empty series"
    for col in cols:
        assert len(s[col]) == bins, f"column {col} length != bins"
    assert s["functions"], "no per-function tracks"
    for fn in s["functions"]:
        assert len(fn["queue_depth"]) == bins, "function track length != bins"

# Self-profile: every cell rooted, exclusive coverage >= 90% of measured
# wall, counter samples present, perfetto events alongside.
prof = json.load(open(f"{d}/profile4.json"))
assert prof["cells"], "no profile cells"
for c in prof["cells"]:
    p = c["profile"]
    assert p["total_ms"] > 0, "unrooted profile"
    assert p["coverage"] >= 0.9, f"profile coverage {p['coverage']} < 0.9"
    names = {s["site"] for s in p["sites"] if s["count"] > 0}
    assert {"engine/run", "scheduler/dispatch"} <= names, \
        f"core sites missing: {names}"
    assert p["counters"], "no counter samples"
    assert c["perfetto"], "no perfetto events for the cell"

# HTML report: standalone document, data island parses back, no network.
html = open(f"{d}/report4.html", encoding="utf-8").read()
assert html.startswith("<!doctype html>"), "not an HTML document"
open_tag = '<script type="application/json" id="data">'
a = html.index(open_tag) + len(open_tag)
b = html.index("</script>", a)
payload = json.loads(html[a:b].replace("<\\/", "</"))
assert len(payload["cells"]) == len(series["cells"]), "report cell count wrong"
assert all("series" in c and "profile" in c for c in payload["cells"]), \
    "report cells missing series/profile sections"
stripped = html.replace("http://www.w3.org/2000/svg", "")
for needle in ("http://", "https://", "<link", "src="):
    assert needle not in stripped, f"report is not self-contained: {needle}"
print(f"[obs] {len(trace)} trace events, {len(metrics['cells'])} metric cells,"
      f" {len(series['cells'])} series cells, {len(prof['cells'])} profiles,"
      f" report {len(html)} bytes OK")
EOF
  fi
  echo "[obs] artifacts valid and bit-identical across thread counts OK"
  rm -rf "${dir}"
}

# Sharding smoke: a single-app cell must produce bit-identical artifacts at
# --lanes 1 and --lanes 4 (a lone populated lane inherits the whole fleet and
# the unmixed seed — DESIGN.md §14), with faults and every collector on, and
# independently of --lane-threads. This is the cross-commit K-invariance
# contract of the intra-cell sharding layer.
shard_smoke() {
  echo "==== [shard] lanes=1 vs lanes=4: artifact bit-identity ===="
  local dir
  dir="$(mktemp -d)"
  local common=(--app wl1 --policy smiless --duration 120 --seed 7 --no-lstm
                --fault-init-p 0.05 --fault-straggler-p 0.02)
  "${prefix}/tools/smiless" "${common[@]}" --lanes 1 \
      --trace-out "${dir}/trace1.json" --metrics-out "${dir}/metrics1.json" \
      --audit-out "${dir}/audit1.json" --windows-out "${dir}/windows1.csv" \
      --series-out "${dir}/series1.json" \
      > "${dir}/stdout1.txt"
  "${prefix}/tools/smiless" "${common[@]}" --lanes 4 --lane-threads 2 \
      --trace-out "${dir}/trace4.json" --metrics-out "${dir}/metrics4.json" \
      --audit-out "${dir}/audit4.json" --windows-out "${dir}/windows4.csv" \
      --series-out "${dir}/series4.json" \
      > "${dir}/stdout4.txt"
  local f
  for f in trace metrics audit series; do
    cmp "${dir}/${f}1.json" "${dir}/${f}4.json"
  done
  cmp "${dir}/windows1.csv" "${dir}/windows4.csv"
  cmp "${dir}/stdout1.txt" "${dir}/stdout4.txt"
  rm -rf "${dir}"
  echo "[shard] artifacts bit-identical across lane counts OK"
}

# Serve smoke: `smiless serve` at a high --speedup must replay the same cell
# the DES path runs — byte-identical stdout summary and metrics artifact —
# while streaming live NDJSON whose per-type line counts match the DES
# telemetry counters exactly (DESIGN.md §16). The driver seam is only a
# pacing layer; any divergence here means it re-ordered the trajectory.
serve_smoke() {
  echo "==== [serve] wall-clock serve vs DES: same trajectory, live stream ===="
  local dir
  dir="$(mktemp -d)"
  local common=(--app wl1 --policy smiless --duration 60 --seed 7 --no-lstm)
  "${prefix}/tools/smiless" "${common[@]}" \
      --metrics-out "${dir}/metrics_des.json" \
      > "${dir}/stdout_des.txt"
  "${prefix}/tools/smiless" serve "${common[@]}" --speedup 100000 \
      --stream-out "${dir}/serve.ndjson" \
      --metrics-out "${dir}/metrics_rt.json" \
      > "${dir}/stdout_rt.txt" 2> "${dir}/serve_stderr.txt"
  cmp "${dir}/stdout_des.txt" "${dir}/stdout_rt.txt"
  cmp "${dir}/metrics_des.json" "${dir}/metrics_rt.json"
  grep -q "driver=realtime" "${dir}/serve_stderr.txt"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${dir}" <<'EOF'
import json, sys
from collections import Counter
d = sys.argv[1]
streamed = Counter()
lines = 0
with open(f"{d}/serve.ndjson", encoding="utf-8") as f:
    for raw in f:
        e = json.loads(raw)
        assert "type" in e and "t" in e, f"malformed stream line: {raw!r}"
        streamed[e["type"]] += 1
        lines += 1
assert lines > 0, "empty live stream"
metrics = json.load(open(f"{d}/metrics_des.json"))
(cell,) = metrics["cells"]
recorded = {k.removeprefix("events/"): v
            for k, v in cell["metrics"]["counters"].items()
            if k.startswith("events/")}
assert dict(streamed) == recorded, \
    f"stream/telemetry mismatch: {dict(streamed)} != {recorded}"
print(f"[serve] {lines} NDJSON lines across {len(streamed)} event types"
      f" match the DES counters OK")
EOF
  fi
  rm -rf "${dir}"
  echo "[serve] realtime replay matches the DES trajectory OK"
}

# Throughput-bench smoke: a shrunken version of the large BENCH_throughput
# cell (bench/bench_throughput.cpp) must run end-to-end, keep both queue
# impls on identical trajectories (the binary exits non-zero otherwise) and
# emit an artifact with the pinned schema — same keys and types as the
# full-size BENCH_throughput.json at the repo root.
bench_smoke() {
  echo "==== [bench] shrunken throughput cell + artifact schema ===="
  local dir out
  dir="$(mktemp -d)"
  out="${dir}/BENCH_throughput.json"
  "${prefix}/bench/bench_throughput" --apps 24 --machines 12 --duration 90 \
      --events 150000 --out "${out}" --report-out "${dir}/report.html"
  python3 - "${out}" "${dir}/report.html" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))

def require(obj, key, types, path):
    assert key in obj, f"missing key {path}.{key}"
    assert isinstance(obj[key], types), \
        f"{path}.{key}: expected {types}, got {type(obj[key]).__name__}"
    return obj[key]

num = (int, float)
assert doc["bench"] == "throughput", "wrong bench tag"
cfg = require(doc, "config", dict, "$")
for k in ("apps", "machines", "nodes_per_app", "seed", "micro_events", "micro_live"):
    require(cfg, k, int, "config")
require(cfg, "trace_duration_s", num, "config")
det = require(doc, "deterministic", dict, "$")
for k in ("arrivals_total", "requests_submitted", "requests_completed",
          "events_scheduled", "events_fired", "events_cancelled"):
    require(det, k, int, "deterministic")
assert require(det, "identical_across_impls", bool, "deterministic") is True
assert det["events_fired"] + det["events_cancelled"] <= det["events_scheduled"], \
    "event accounting broken"
assert det["requests_completed"] <= det["requests_submitted"], "completion accounting broken"
for impl in ("calendar", "binary_heap"):
    sec = require(doc, impl, dict, "$")
    for k in ("wall_seconds", "events_per_sec", "peak_rss_mb"):
        require(sec, k, num, impl)
cs = require(doc["calendar"], "calendar_stats", dict, "calendar")
for k in ("resizes", "direct_searches", "buckets", "peak_live"):
    require(cs, k, int, "calendar_stats")
micro = require(doc, "micro", dict, "$")
for impl in ("calendar", "binary_heap"):
    sec = require(micro, impl, dict, "micro")
    require(sec, "events", int, f"micro.{impl}")
    for k in ("wall_seconds", "events_per_sec"):
        require(sec, k, num, f"micro.{impl}")
require(micro, "speedup", num, "micro")
sh = require(doc, "sharded", dict, "$")
require(sh, "lane_threads", int, "sharded")
require(sh, "note", str, "sharded")
require(sh, "speedup_lanes8_vs_monolithic", num, "sharded")
rows = require(sh, "lanes", list, "sharded")
assert [r["lanes"] for r in rows] == [1, 2, 4, 8], "sharded lane axis wrong"
for r in rows:
    for k in ("events_scheduled", "events_fired", "events_cancelled",
              "requests_completed"):
        require(r, k, int, "sharded.lanes[]")
    for k in ("wall_seconds", "events_per_sec", "peak_rss_mb"):
        require(r, k, num, "sharded.lanes[]")
assert rows[0]["events_fired"] == det["events_fired"], \
    "lanes=1 diverged from the monolithic trajectory"
require(doc, "e2e_speedup", num, "$")
require(doc, "peak_rss_mb", num, "$")

# Self-profiler section: the root scope brackets each measured cell, so the
# exclusive times must cover >= 90% of the measured wall time (monolithic
# cells hit exactly 1.0; sharded cells may exceed it — lane wall time on
# worker threads overlaps the coordinator's barrier wait).
pr = require(doc, "profile", dict, "$")
assert require(pr, "coverage", num, "profile") >= 0.9, \
    f"profile coverage {pr['coverage']} < 0.9"
for impl in ("calendar", "binary_heap"):
    sec = require(pr, impl, dict, "profile")
    require(sec, "total_ms", num, f"profile.{impl}")
    sites = require(sec, "sites", list, f"profile.{impl}")
    assert any(s["count"] > 0 for s in sites), f"profile.{impl}: no active sites"
    assert sec["coverage"] >= 0.9, f"profile.{impl} coverage < 0.9"
shp = require(pr, "sharded", list, "profile")
assert [r["lanes"] for r in shp] == [1, 2, 4, 8], "profile sharded axis wrong"

# The --report-out HTML: standalone, with one profile cell per measurement.
html = open(sys.argv[2], encoding="utf-8").read()
assert html.startswith("<!doctype html>"), "bench report not an HTML document"
open_tag = '<script type="application/json" id="data">'
a = html.index(open_tag) + len(open_tag)
b = html.index("</script>", a)
payload = json.loads(html[a:b].replace("<\\/", "</"))
assert len(payload["cells"]) == 2 + len(shp), "bench report cell count wrong"
assert all("profile" in c for c in payload["cells"]), "report cell lacks profile"

print(f"[bench] schema OK; micro speedup {micro['speedup']:.2f}x,"
      f" e2e {doc['e2e_speedup']:.2f}x,"
      f" {det['events_fired']} events fired,"
      f" profile coverage {pr['coverage']:.3f}")
EOF
  rm -rf "${dir}"
  echo "[bench] throughput smoke green"
}

case "${mode}" in
  lint)
    lint_step
    echo "==== lint green ===="
    exit 0
    ;;
  tsan)
    tsan_step
    echo "==== tsan green ===="
    exit 0
    ;;
  golden)
    echo "==== [golden] configure + build ===="
    configure_flavor ci "${prefix}"
    cmake --build "${prefix}" --target smiless_cli -j "${jobs}"
    golden_smoke
    echo "==== golden green ===="
    exit 0
    ;;
  bench)
    echo "==== [bench] configure + build ===="
    configure_flavor ci "${prefix}"
    cmake --build "${prefix}" --target bench_throughput -j "${jobs}"
    bench_smoke
    echo "==== bench green ===="
    exit 0
    ;;
  shard)
    echo "==== [shard] configure + build ===="
    configure_flavor ci "${prefix}"
    cmake --build "${prefix}" --target smiless_cli -j "${jobs}"
    shard_smoke
    echo "==== shard green ===="
    exit 0
    ;;
  obs)
    echo "==== [obs] configure + build ===="
    configure_flavor ci "${prefix}"
    cmake --build "${prefix}" --target smiless_cli -j "${jobs}"
    obs_smoke
    echo "==== obs green ===="
    exit 0
    ;;
  serve)
    echo "==== [serve] configure + build ===="
    configure_flavor ci "${prefix}"
    cmake --build "${prefix}" --target smiless_cli -j "${jobs}"
    serve_smoke
    # The seam must not have moved the DES path: goldens stay bit-identical.
    golden_smoke
    echo "==== serve green ===="
    exit 0
    ;;
esac

run_flavor default ci "${prefix}"
lint_step
sweep_smoke
golden_smoke
obs_smoke
shard_smoke
serve_smoke
bench_smoke
run_flavor asan asan "${prefix}-asan" -DSMILESS_SANITIZE=address
run_flavor ubsan ubsan "${prefix}-ubsan" -DSMILESS_SANITIZE=undefined
tsan_step

echo "==== all flavors green ===="
