#!/usr/bin/env bash
# Build and test every supported flavor: the default build plus the two
# sanitizer builds wired through -DSMILESS_SANITIZE (see top-level
# CMakeLists.txt). Any test failure or sanitizer report fails the script.
#
# Usage: tools/ci.sh [build-dir-prefix]
#   tools/ci.sh            # builds into build-ci, build-ci-asan, build-ci-ubsan
#   tools/ci.sh /tmp/ci    # builds into /tmp/ci, /tmp/ci-asan, /tmp/ci-ubsan
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-${repo}/build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_flavor() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [${name}] configure + build + test ===="
  cmake -B "${dir}" -S "${repo}" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

# Make sanitizers fail loudly instead of continuing past the first report.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

run_flavor default "${prefix}"
run_flavor asan "${prefix}-asan" -DSMILESS_SANITIZE=address
run_flavor ubsan "${prefix}-ubsan" -DSMILESS_SANITIZE=undefined

echo "==== all flavors green ===="
