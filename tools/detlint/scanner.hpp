#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace detlint {

struct LayerManifest;  // archlint.hpp

/// One rule of the determinism catalog (DESIGN.md §11). `id` is what an
/// inline allow annotation names (see DESIGN.md for the grammar);
/// `exempt_suffixes` lists path suffixes that are quarantined by construction
/// (e.g. the one blessed RNG wrapper) and therefore never scanned for this
/// rule.
struct RuleInfo {
  std::string id;
  std::string summary;
  std::vector<std::string> exempt_suffixes;
};

/// A single finding: `rule` is a catalog id, or one of the two meta rules
/// ("bad-allow" for a malformed/unknown annotation, "unused-allow" for an
/// annotation that suppressed nothing).
struct Violation {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

struct ScanOptions {
  /// Report allow annotations that matched no violation. Keeping this on
  /// stops stale exemptions from accumulating after the code they excused
  /// is gone.
  bool report_unused_allows = true;
  /// When set, scan_paths additionally runs the archlint pass (include
  /// layering, cycles, private headers) against this manifest.
  const LayerManifest* manifest = nullptr;
  /// Skip files whose path contains any of these substrings (e.g. the
  /// linter's own violation corpus).
  std::vector<std::string> exclude_substrings;
};

/// The full rule catalog, in stable order.
const std::vector<RuleInfo>& rule_catalog();

/// True if `id` names a catalog rule.
bool is_known_rule(const std::string& id);

/// Splits a source into a code view and a comment view of identical shape:
/// every character keeps its line/column, but the code view blanks comments
/// and string/char literals while the comment view keeps only comment text.
/// Exposed for the archlint pass (include extraction must not see
/// commented-out directives) and for scanner edge-case tests.
struct StrippedSource {
  std::string code;
  std::string comments;
};
StrippedSource strip_source(const std::string& content);

/// Scan one file's contents with the lexical rules. `path` is used for
/// reporting and for rule exemption matching only; nothing is read from
/// disk. The arch rules need the whole include graph and therefore only run
/// under scan_paths with ScanOptions::manifest set.
std::vector<Violation> scan_file(const std::string& path, const std::string& content,
                                 const ScanOptions& options = {});

/// Recursively scan every C++ source file (.cpp/.cc/.hpp/.h) under each
/// root (a root may also be a single file). Runs the lexical rules per file
/// plus, when options.manifest is set, the archlint pass over the whole
/// file set; arch findings share the per-file allow resolution. Returns
/// findings sorted by path, then line. Throws std::runtime_error on
/// unreadable paths.
std::vector<Violation> scan_paths(const std::vector<std::string>& roots,
                                  const ScanOptions& options = {});

/// "path:line: [rule] message" — one line per violation.
std::string format_violation(const Violation& v);

// ---------------------------------------------------------------------------
// Machine-readable output + baseline ratchet (report.cpp)
// ---------------------------------------------------------------------------

/// Byte-stable JSON report: {"detlint": 1, "total": N, "counts": {rule: n},
/// "violations": [{"path", "line", "rule", "message"}]}. Also the on-disk
/// baseline format — a report written today pins today's findings.
std::string report_json(const std::vector<Violation>& violations);

/// A parsed baseline: per-(path, rule) budgets of tolerated findings. Line
/// numbers are deliberately ignored so unrelated edits don't invalidate the
/// pin; growing a file's count past its budget reports the whole rule's
/// findings for that file again.
struct Baseline {
  std::map<std::pair<std::string, std::string>, int> budget;
};
struct BaselineStats {
  int suppressed = 0;  // findings absorbed by the baseline
  int stale = 0;       // baseline budget no longer matched by any finding
};

Baseline parse_baseline(const std::string& text);
Baseline load_baseline(const std::string& path);

/// Findings that exceed the baseline budgets, in the input order.
std::vector<Violation> apply_baseline(std::vector<Violation> violations, const Baseline& baseline,
                                      BaselineStats* stats = nullptr);

}  // namespace detlint
