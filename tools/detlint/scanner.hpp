#pragma once

#include <string>
#include <vector>

namespace detlint {

/// One rule of the determinism catalog (DESIGN.md §11). `id` is what an
/// inline allow annotation names (see DESIGN.md for the grammar);
/// `exempt_suffixes` lists path suffixes that are quarantined by construction
/// (e.g. the one blessed RNG wrapper) and therefore never scanned for this
/// rule.
struct RuleInfo {
  std::string id;
  std::string summary;
  std::vector<std::string> exempt_suffixes;
};

/// A single finding: `rule` is a catalog id, or one of the two meta rules
/// ("bad-allow" for a malformed/unknown annotation, "unused-allow" for an
/// annotation that suppressed nothing).
struct Violation {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

struct ScanOptions {
  /// Report allow annotations that matched no violation. Keeping this on
  /// stops stale exemptions from accumulating after the code they excused
  /// is gone.
  bool report_unused_allows = true;
};

/// The full rule catalog, in stable order.
const std::vector<RuleInfo>& rule_catalog();

/// True if `id` names a catalog rule.
bool is_known_rule(const std::string& id);

/// Scan one file's contents. `path` is used for reporting and for rule
/// exemption matching only; nothing is read from disk.
std::vector<Violation> scan_file(const std::string& path, const std::string& content,
                                 const ScanOptions& options = {});

/// Recursively scan every C++ source file (.cpp/.cc/.hpp/.h) under each
/// root (a root may also be a single file). Returns findings sorted by
/// path, then line. Throws std::runtime_error on unreadable paths.
std::vector<Violation> scan_paths(const std::vector<std::string>& roots,
                                  const ScanOptions& options = {});

/// "path:line: [rule] message" — one line per violation.
std::string format_violation(const Violation& v);

}  // namespace detlint
