#include "scanner.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "archlint.hpp"

namespace detlint {

namespace {

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& catalog() {
  static const std::vector<RuleInfo> kRules = {
      {"wall-clock",
       "wall-clock reads (std::chrono system/steady/high_resolution clocks, "
       "gettimeofday, clock_gettime, timespec_get) outside annotated quarantine sites",
       {}},
      {"raw-rand",
       "raw randomness (rand/srand, std::random_device, *rand48, or a std random "
       "engine) anywhere but the seeded wrapper in common/rng.hpp",
       {"common/rng.hpp"}},
      {"unordered-iter",
       "iteration over a std::unordered_map/unordered_set (hash order is not part "
       "of the determinism contract); keyed lookup is fine",
       {}},
      {"ptr-key",
       "ordered container keyed or prioritised by pointer value (std::map/set/"
       "multimap/multiset/priority_queue over T*): address order varies run to run",
       {}},
      {"parallel-reduce",
       "std::execution::par/par_unseq/unseq algorithm policies: reduction order "
       "(and float rounding) becomes schedule-dependent",
       {}},
      {"env-read",
       "process-environment and build-time inputs (getenv/setenv family, __DATE__, "
       "__TIME__, __TIMESTAMP__) leaking into simulation state",
       {}},
      {"layer-violation",
       "an #include crossing the layer manifest (tools/detlint/layers.json) to a "
       "layer the includer's layer does not declare as a dependency",
       {}},
      {"include-cycle",
       "a cycle in the project-relative include graph (one report per cycle, "
       "anchored at its lexicographically first file)",
       {}},
      {"private-include",
       "a module-internal header included from outside its module, bypassing the "
       "facade declared in the layer manifest",
       {}},
      {"global-state",
       "mutable namespace-scope, static-local or thread_local variable: process-"
       "wide state that silently couples otherwise-independent lanes (DESIGN.md "
       "§14); const/constexpr data stays legal",
       {}},
      {"time-unit",
       "raw unit-conversion literal (1000, 1e6, 3600, ...) multiplied into a "
       "unit-suffixed variable (*_seconds, *_ms, *_ns, *_us); use the named "
       "constants in common/units.hpp",
       {}},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Comment / string stripping
// ---------------------------------------------------------------------------

bool is_word(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

StrippedSource strip(const std::string& content) {
  StrippedSource out;
  out.code.reserve(content.size());
  out.comments.reserve(content.size());
  enum class State { Code, LineComment, BlockComment, String, Char, RawString };
  State state = State::Code;
  std::string raw_close;  // ")delim\"" for the active raw string
  std::size_t i = 0;
  const std::size_t n = content.size();
  const auto emit = [&](char code_c, char comment_c) {
    out.code.push_back(code_c);
    out.comments.push_back(comment_c);
  };
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      emit('\n', '\n');
      if (state == State::LineComment) state = State::Code;
      ++i;
      continue;
    }
    switch (state) {
      case State::Code: {
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          state = State::LineComment;
          emit(' ', ' ');
          emit(' ', ' ');
          i += 2;
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          state = State::BlockComment;
          emit(' ', ' ');
          emit(' ', ' ');
          i += 2;
        } else if (c == '"') {
          // Raw string? Look back through an optional encoding prefix for R.
          const std::size_t back = i;
          const bool raw =
              back > 0 && content[back - 1] == 'R' &&
              (back < 2 || !is_word(content[back - 2]) || content[back - 2] == 'L' ||
               content[back - 2] == 'u' || content[back - 2] == 'U' ||
               (back >= 3 && content.compare(back - 3, 2, "u8") == 0));
          if (raw) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < n && content[j] != '(' && content[j] != '\n') delim.push_back(content[j++]);
            raw_close = ")" + delim + "\"";
            state = State::RawString;
          } else {
            state = State::String;
          }
          emit(' ', ' ');
          ++i;
        } else if (c == '\'') {
          // Digit separator (1'000) is not a char literal.
          const bool separator = i > 0 && is_word(content[i - 1]) && i + 1 < n &&
                                 is_word(content[i + 1]);
          if (!separator) state = State::Char;
          emit(separator ? c : ' ', ' ');
          ++i;
        } else {
          emit(c, ' ');
          ++i;
        }
        break;
      }
      case State::LineComment:
        emit(' ', c);
        ++i;
        break;
      case State::BlockComment:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          state = State::Code;
          emit(' ', ' ');
          emit(' ', ' ');
          i += 2;
        } else {
          emit(' ', c);
          ++i;
        }
        break;
      case State::String:
        if (c == '\\' && i + 1 < n) {
          emit(' ', ' ');
          if (content[i + 1] != '\n') emit(' ', ' ');
          i += content[i + 1] == '\n' ? 1 : 2;
        } else {
          if (c == '"') state = State::Code;
          emit(' ', ' ');
          ++i;
        }
        break;
      case State::Char:
        if (c == '\\' && i + 1 < n) {
          emit(' ', ' ');
          if (content[i + 1] != '\n') emit(' ', ' ');
          i += content[i + 1] == '\n' ? 1 : 2;
        } else {
          if (c == '\'') state = State::Code;
          emit(' ', ' ');
          ++i;
        }
        break;
      case State::RawString:
        if (content.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size(); ++k)
            if (content[i + k] == '\n')
              emit('\n', '\n');
            else
              emit(' ', ' ');
          i += raw_close.size();
          state = State::Code;
        } else {
          emit(' ', ' ');
          ++i;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// ---------------------------------------------------------------------------
// Inline allow annotations (grammar in DESIGN.md §11)
// ---------------------------------------------------------------------------

struct Allow {
  int line = 0;
  std::string rule;
  std::string reason;
  bool malformed = false;
  std::string problem;
  bool used = false;
};

std::vector<Allow> collect_allows(const std::vector<std::string>& comment_lines) {
  static const std::string kMarker = "detlint:allow";
  std::vector<Allow> allows;
  for (std::size_t li = 0; li < comment_lines.size(); ++li) {
    const std::string& text = comment_lines[li];
    std::size_t pos = 0;
    while ((pos = text.find(kMarker, pos)) != std::string::npos) {
      Allow a;
      a.line = static_cast<int>(li + 1);
      std::size_t p = pos + kMarker.size();
      if (p >= text.size() || text[p] != '(') {
        a.malformed = true;
        a.problem = "expected 'detlint:allow(<rule>) <reason>'";
        allows.push_back(a);
        pos = p;
        continue;
      }
      const std::size_t close = text.find(')', p);
      if (close == std::string::npos) {
        a.malformed = true;
        a.problem = "unterminated rule list in detlint:allow(...)";
        allows.push_back(a);
        break;
      }
      a.rule = trim(text.substr(p + 1, close - p - 1));
      // Reason: the rest of the comment, up to the next annotation if any.
      std::size_t reason_end = text.find(kMarker, close);
      if (reason_end == std::string::npos) reason_end = text.size();
      a.reason = trim(text.substr(close + 1, reason_end - close - 1));
      if (a.rule.empty() || !is_known_rule(a.rule)) {
        a.malformed = true;
        a.problem = "unknown rule '" + a.rule + "'";
      } else if (a.reason.empty()) {
        a.malformed = true;
        a.problem = "missing reason after detlint:allow(" + a.rule + ")";
      }
      allows.push_back(a);
      pos = reason_end;
    }
  }
  return allows;
}

// ---------------------------------------------------------------------------
// Rule matchers
// ---------------------------------------------------------------------------

/// Parses a balanced template argument list starting at the '<' at
/// `open_pos`; returns the position one past the matching '>', or npos.
std::size_t match_angle(const std::string& text, std::size_t open_pos) {
  int depth = 0;
  for (std::size_t i = open_pos; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (i > 0 && text[i - 1] == '-') continue;  // operator->
      if (--depth == 0) return i + 1;
    } else if (c == ';' || c == '{') {
      return std::string::npos;  // not a type after all
    }
  }
  return std::string::npos;
}

/// First top-level template argument of the list opened at `open_pos`.
std::string first_template_arg(const std::string& text, std::size_t open_pos) {
  int depth = 0;
  std::string arg;
  for (std::size_t i = open_pos; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '<') {
      if (depth > 0) arg.push_back(c);
      ++depth;
    } else if (c == '>') {
      if (i > 0 && text[i - 1] == '-') {
        arg.push_back(c);
        continue;
      }
      if (--depth == 0) return arg;
      arg.push_back(c);
    } else if (c == ',' && depth == 1) {
      return arg;
    } else if (depth >= 1) {
      arg.push_back(c);
    }
  }
  return arg;
}

int line_of(const std::vector<std::size_t>& line_starts, std::size_t pos) {
  const auto it = std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<int>(it - line_starts.begin());
}

/// Names of variables declared with an unordered map/set type anywhere in
/// the file (members, locals, parameters). Alias-typed declarations are a
/// known blind spot; the corpus documents it.
std::unordered_set<std::string> unordered_decls(const std::string& code) {
  static const std::regex kDecl(R"(\bunordered_(?:multi)?(?:map|set)\s*<)");
  std::unordered_set<std::string> names;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) + it->length() - 1;
    std::size_t after = match_angle(code, open);
    if (after == std::string::npos) continue;
    while (after < code.size() &&
           (std::isspace(static_cast<unsigned char>(code[after])) || code[after] == '&' ||
            code[after] == '*'))
      ++after;
    if (code.compare(after, 2, "::") == 0) continue;  // nested-type use, not a decl
    std::string name;
    while (after < code.size() && is_word(code[after])) name.push_back(code[after++]);
    if (!name.empty() && !std::isdigit(static_cast<unsigned char>(name[0]))) names.insert(name);
  }
  return names;
}

void match_simple_rules(const std::string& path, const std::vector<std::string>& code_lines,
                        std::vector<Violation>& out) {
  struct Pattern {
    const char* rule;
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern> kPatterns = [] {
    std::vector<Pattern> p;
    p.push_back({"wall-clock",
                 std::regex(R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
                 "wall-clock source"});
    p.push_back({"wall-clock", std::regex(R"(\b(gettimeofday|clock_gettime|timespec_get)\s*\()"),
                 "wall-clock syscall"});
    p.push_back({"raw-rand", std::regex(R"(\b(srand|rand)\s*\()"), "C rand"});
    p.push_back({"raw-rand",
                 std::regex(R"(\b(random_device|[demn]rand48|lrand48|jrand48)\b)"),
                 "non-reproducible random source"});
    p.push_back(
        {"raw-rand",
         std::regex(R"(\b(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux(24|48)(_base)?|knuth_b)\b)"),
         "random engine outside common/rng.hpp"});
    p.push_back({"parallel-reduce", std::regex(R"(\bexecution\s*::\s*(par_unseq|par|unseq)\b)"),
                 "parallel/vectorized execution policy"});
    p.push_back({"env-read",
                 std::regex(R"(\b(secure_getenv|getenv|setenv|putenv|unsetenv)\s*\()"),
                 "environment access"});
    p.push_back({"env-read", std::regex(R"(__DATE__|__TIME__|__TIMESTAMP__)"),
                 "build-time stamp"});
    return p;
  }();
  for (std::size_t li = 0; li < code_lines.size(); ++li) {
    for (const auto& p : kPatterns) {
      std::smatch m;
      if (!std::regex_search(code_lines[li], m, p.re)) continue;
      Violation v;
      v.path = path;
      v.line = static_cast<int>(li + 1);
      v.rule = p.rule;
      v.message = std::string(p.what) + ": '" + trim(m.str(0)) + "'";
      out.push_back(std::move(v));
    }
  }
}

void match_unordered_iter(const std::string& path, const std::string& code,
                          const std::vector<std::string>& code_lines,
                          std::vector<Violation>& out) {
  const std::unordered_set<std::string> names = unordered_decls(code);
  if (names.empty()) return;
  static const std::regex kRangeFor(R"(\bfor\s*\([^;()]*:\s*([A-Za-z_]\w*)\s*\))");
  static const std::regex kBeginEnd(R"(\b([A-Za-z_]\w*)\s*\.\s*(c?r?begin|c?r?end)\s*\()");
  static const std::regex kFreeBegin(R"(\b(?:std\s*::\s*)?(?:begin|end)\s*\(\s*([A-Za-z_]\w*)\s*\))");
  for (std::size_t li = 0; li < code_lines.size(); ++li) {
    const std::string& line = code_lines[li];
    for (const auto* re : {&kRangeFor, &kBeginEnd, &kFreeBegin}) {
      for (auto it = std::sregex_iterator(line.begin(), line.end(), *re);
           it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (!names.count(name)) continue;
        Violation v;
        v.path = path;
        v.line = static_cast<int>(li + 1);
        v.rule = "unordered-iter";
        v.message = "iteration over unordered container '" + name + "'";
        out.push_back(std::move(v));
      }
    }
  }
}

void match_ptr_key(const std::string& path, const std::string& code,
                   const std::vector<std::size_t>& line_starts, std::vector<Violation>& out) {
  static const std::regex kOrdered(R"(\b(map|multimap|set|multiset|priority_queue)\s*<)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kOrdered);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) + it->length() - 1;
    const std::string arg = trim(first_template_arg(code, open));
    if (arg.find('*') == std::string::npos) continue;
    // A function-pointer value type has a '(' before the '*'; key rules only
    // care about object pointers.
    if (arg.find('(') != std::string::npos) continue;
    Violation v;
    v.path = path;
    v.line = line_of(line_starts, static_cast<std::size_t>(it->position()));
    v.rule = "ptr-key";
    v.message = "pointer-keyed ordered container '" + (*it)[1].str() + "<" + arg + ", ...>'";
    out.push_back(std::move(v));
  }
}

/// global-state: a `static` or `thread_local` declaration whose declarator
/// ends in `;`, `=` or `{` (a variable) and whose specifier run carries no
/// const/constexpr/constinit. Function declarations stop at '(' and are
/// skipped — which also makes paren-initialized variables
/// (`static Rng rng(7);`) a documented blind spot, like alias-typed
/// declarations are for unordered-iter.
void match_global_state(const std::string& path, const std::string& code,
                        const std::vector<std::size_t>& line_starts, std::vector<Violation>& out) {
  static const std::regex kKeyword(R"(\b(static|thread_local)\b)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kKeyword);
       it != std::sregex_iterator(); ++it) {
    const std::size_t begin = static_cast<std::size_t>(it->position()) + it->length();
    std::string decl;
    char stop = '\0';
    int angle = 0;
    for (std::size_t i = begin; i < code.size() && decl.size() < 600; ++i) {
      const char c = code[i];
      if (c == '<') {
        ++angle;
      } else if (c == '>') {
        if (angle > 0) --angle;
      } else if (angle == 0 && (c == ';' || c == '=' || c == '{' || c == '(' || c == ')' ||
                                c == ',')) {
        stop = c;
        break;
      }
      decl.push_back(c);
    }
    if (stop != ';' && stop != '=' && stop != '{') continue;  // function, param, or truncated
    static const std::regex kImmutable(R"(\b(const|constexpr|constinit)\b)");
    if (std::regex_search(decl, kImmutable)) continue;
    // Identifiers outside template arguments; the last one is the variable.
    std::string name, cur;
    int depth = 0;
    for (const char c : decl + " ") {
      if (c == '<') ++depth;
      if (c == '>' && depth > 0) --depth;
      if (depth == 0 && is_word(c)) {
        cur.push_back(c);
      } else if (!cur.empty()) {
        if (!std::isdigit(static_cast<unsigned char>(cur[0]))) name = cur;
        cur.clear();
      }
    }
    if (name.empty()) continue;
    static const std::unordered_set<std::string> kTypeDefs = {"class", "struct", "enum", "union"};
    const std::string first = trim(decl).substr(0, trim(decl).find_first_of(" \t\n"));
    if (stop == '{' && kTypeDefs.count(first)) continue;  // type definition, not a variable
    Violation v;
    v.path = path;
    v.line = line_of(line_starts, static_cast<std::size_t>(it->position()));
    v.rule = "global-state";
    v.message = "mutable " + it->str(1) + " variable '" + name + "'";
    out.push_back(std::move(v));
  }
}

/// time-unit: a raw conversion literal applied (either side) to a
/// unit-suffixed variable or accessor. The literal set covers the usual
/// second/ms/us/ns scales plus minutes/hours/days.
void match_time_unit(const std::string& path, const std::vector<std::string>& code_lines,
                     std::vector<Violation>& out) {
  static const std::string kLit =
      R"((?:(?:1000000000|1000000|1000|86400|3600|60)(?:\.0)?|1e-?0?[369]|0\.001|0\.000001))";
  static const std::string kId =
      R"([A-Za-z_][\w.:>-]*_(?:seconds|secs|millis|ms|micros|us|nanos|ns))";
  static const std::regex kAfter("\\b(" + kId + ")\\b\\s*(?:\\(\\s*\\))?\\s*\\)*\\s*[*/]\\s*(" +
                                 kLit + ")(?![\\w.])");
  // std::regex has no lookbehind; an explicit leading guard keeps the
  // literal from matching the tail of a longer number ("0.1000").
  static const std::regex kBefore("(?:^|[^\\w.])(" + kLit + ")\\s*[*/]\\s*(" + kId + ")\\b");
  for (std::size_t li = 0; li < code_lines.size(); ++li) {
    const std::string& line = code_lines[li];
    std::smatch m;
    std::string id, lit;
    if (std::regex_search(line, m, kAfter)) {
      id = m.str(1);
      lit = m.str(2);
    } else if (std::regex_search(line, m, kBefore)) {
      lit = m.str(1);
      id = m.str(2);
    } else {
      continue;
    }
    Violation v;
    v.path = path;
    v.line = static_cast<int>(li + 1);
    v.rule = "time-unit";
    v.message = "raw unit-conversion literal '" + lit + "' on '" + id +
                "'; use a named constant from common/units.hpp";
    out.push_back(std::move(v));
  }
}

bool rule_exempt(const std::string& rule, const std::string& path) {
  for (const auto& r : catalog()) {
    if (r.id != rule) continue;
    for (const auto& suffix : r.exempt_suffixes)
      if (path.size() >= suffix.size() &&
          path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0)
        return true;
  }
  return false;
}

/// The lexical rule set over one stripped file.
std::vector<Violation> lexical_raw(const std::string& path, const StrippedSource& stripped,
                                   const std::vector<std::string>& code_lines) {
  std::vector<std::size_t> line_starts;
  line_starts.push_back(0);
  for (std::size_t i = 0; i < stripped.code.size(); ++i)
    if (stripped.code[i] == '\n') line_starts.push_back(i + 1);
  std::vector<Violation> raw;
  match_simple_rules(path, code_lines, raw);
  match_unordered_iter(path, stripped.code, code_lines, raw);
  match_ptr_key(path, stripped.code, line_starts, raw);
  match_global_state(path, stripped.code, line_starts, raw);
  match_time_unit(path, code_lines, raw);
  return raw;
}

/// Allow resolution, exemption, (line, rule) dedup and meta rules, shared by
/// the lexical and arch passes.
std::vector<Violation> finalize(const std::string& path,
                                const std::vector<std::string>& comment_lines,
                                std::vector<Violation> raw, const ScanOptions& options) {
  std::vector<Allow> allows = collect_allows(comment_lines);
  // One report per (line, rule): several tokens on a line are one finding.
  std::vector<std::pair<int, std::string>> emitted;
  std::vector<Violation> out;
  for (auto& v : raw) {
    if (rule_exempt(v.rule, path)) continue;
    const std::pair<int, std::string> key{v.line, v.rule};
    if (std::find(emitted.begin(), emitted.end(), key) != emitted.end()) continue;
    emitted.push_back(key);
    bool suppressed = false;
    for (auto& a : allows) {
      if (a.malformed || a.rule != v.rule) continue;
      if (a.line == v.line || a.line == v.line - 1) {
        a.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) out.push_back(std::move(v));
  }
  for (const auto& a : allows) {
    if (a.malformed) {
      out.push_back({path, a.line, "bad-allow", a.problem});
    } else if (!a.used && options.report_unused_allows) {
      out.push_back({path, a.line, "unused-allow",
                     "detlint:allow(" + a.rule + ") suppresses nothing on this or the next line"});
    }
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() { return catalog(); }

bool is_known_rule(const std::string& id) {
  for (const auto& r : catalog())
    if (r.id == id) return true;
  return false;
}

StrippedSource strip_source(const std::string& content) { return strip(content); }

std::vector<Violation> scan_file(const std::string& path, const std::string& content,
                                 const ScanOptions& options) {
  const StrippedSource stripped = strip(content);
  const std::vector<std::string> code_lines = split_lines(stripped.code);
  const std::vector<std::string> comment_lines = split_lines(stripped.comments);
  return finalize(path, comment_lines, lexical_raw(path, stripped, code_lines), options);
}

std::vector<Violation> scan_paths(const std::vector<std::string>& roots,
                                  const ScanOptions& options) {
  namespace fs = std::filesystem;
  static const std::vector<std::string> kExtensions = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"};
  const auto is_source = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    return std::find(kExtensions.begin(), kExtensions.end(), ext) != kExtensions.end();
  };
  const auto excluded = [&](const std::string& path) {
    for (const auto& sub : options.exclude_substrings)
      if (path.find(sub) != std::string::npos) return true;
    return false;
  };
  std::vector<std::string> files;
  for (const auto& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p.generic_string());
    } else if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p))
        if (entry.is_regular_file() && is_source(entry.path()))
          files.push_back(entry.path().generic_string());
    } else {
      throw std::runtime_error("detlint: no such file or directory: " + root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  files.erase(std::remove_if(files.begin(), files.end(), excluded), files.end());

  // Read + strip everything once: the lexical rules work per file, the arch
  // pass needs the whole set to build the include graph.
  std::vector<std::string> contents(files.size());
  std::vector<StrippedSource> stripped(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::ifstream in(files[i], std::ios::binary);
    if (!in) throw std::runtime_error("detlint: cannot read " + files[i]);
    std::ostringstream ss;
    ss << in.rdbuf();
    contents[i] = ss.str();
    stripped[i] = strip(contents[i]);
  }

  std::map<std::string, std::vector<Violation>> raw_by_path;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::vector<std::string> code_lines = split_lines(stripped[i].code);
    std::vector<Violation> raw = lexical_raw(files[i], stripped[i], code_lines);
    auto& bucket = raw_by_path[files[i]];
    bucket.insert(bucket.end(), std::make_move_iterator(raw.begin()),
                  std::make_move_iterator(raw.end()));
  }
  if (options.manifest != nullptr) {
    std::vector<ArchFile> arch_files(files.size());
    for (std::size_t i = 0; i < files.size(); ++i)
      arch_files[i] = {files[i], &contents[i], &stripped[i].code};
    for (auto& v : archlint(*options.manifest, arch_files)) {
      const std::string path = v.path;
      raw_by_path[path].push_back(std::move(v));
    }
  }

  std::vector<Violation> out;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::vector<std::string> comment_lines = split_lines(stripped[i].comments);
    std::vector<Violation> vs =
        finalize(files[i], comment_lines, std::move(raw_by_path[files[i]]), options);
    out.insert(out.end(), std::make_move_iterator(vs.begin()), std::make_move_iterator(vs.end()));
  }
  return out;
}

std::string format_violation(const Violation& v) {
  std::ostringstream os;
  os << v.path << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return os.str();
}

}  // namespace detlint
