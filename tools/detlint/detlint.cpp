// detlint — determinism-purity and architecture linter for the SMIless tree.
//
// Pass 1 (archlint, enabled by --layers): parses the project-relative
// #include graph of every scanned TU, checks it against the declarative
// layer manifest in tools/detlint/layers.json, and reports layering
// violations, include cycles and private-header escapes.
//
// Pass 2 (lexical): scans C++ sources for constructs that break the
// DESIGN.md §9/§14 contracts (bit-identical sweeps at any thread or lane
// count, byte-stable artifacts): wall clocks, raw randomness, hash-order
// iteration, pointer-keyed ordering, parallel reductions, environment
// reads, mutable global state, raw time-unit conversion literals.
//
// Exemptions are inline, named and reasoned, so every escape hatch is
// reviewable in the diff that adds it. --json emits a machine-readable
// report; --baseline pins a prior report's findings so new code is held to
// zero while legacy findings are ratcheted down.
//
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "archlint.hpp"
#include "scanner.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: detlint [options] <path>...\n"
        "  Scans every .cpp/.cc/.cxx/.hpp/.h/.hh under the given paths.\n"
        "options:\n"
        "  --layers <file>      also run the archlint pass (layering, cycles,\n"
        "                       private headers) against this manifest\n"
        "  --json <file>        write a machine-readable report (reusable as a baseline)\n"
        "  --baseline <file>    suppress findings pinned in a prior --json report;\n"
        "                       only findings beyond the baseline fail the run\n"
        "  --exclude <substr>   skip files whose path contains <substr> (repeatable)\n"
        "  --list-rules         print the rule catalog and exit\n"
        "  --allow-unused       do not report allow annotations that suppress nothing\n"
        "  -q, --quiet          print only the final summary line\n"
        "  -h, --help           this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  detlint::ScanOptions options;
  detlint::LayerManifest manifest;
  std::string json_out, baseline_path, layers_path;
  bool quiet = false;
  const auto value_arg = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "detlint: " << flag << " needs an argument\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--list-rules") {
      for (const auto& r : detlint::rule_catalog()) {
        std::cout << r.id << "\n    " << r.summary << "\n";
        for (const auto& s : r.exempt_suffixes) std::cout << "    (exempt: " << s << ")\n";
      }
      std::cout << "bad-allow\n    malformed allow annotation (unknown rule or missing reason)\n"
                   "unused-allow\n    allow annotation that suppresses nothing\n";
      return 0;
    } else if (arg == "--layers") {
      layers_path = value_arg(i, arg);
    } else if (arg == "--json") {
      json_out = value_arg(i, arg);
    } else if (arg == "--baseline") {
      baseline_path = value_arg(i, arg);
    } else if (arg == "--exclude") {
      options.exclude_substrings.push_back(value_arg(i, arg));
    } else if (arg == "--allow-unused") {
      options.report_unused_allows = false;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    print_usage(std::cerr);
    return 2;
  }
  std::vector<detlint::Violation> violations;
  detlint::BaselineStats baseline_stats;
  bool baselined = false;
  try {
    if (!layers_path.empty()) {
      manifest = detlint::load_manifest(layers_path);
      options.manifest = &manifest;
    }
    violations = detlint::scan_paths(roots, options);
    if (!baseline_path.empty()) {
      violations =
          detlint::apply_baseline(std::move(violations), detlint::load_baseline(baseline_path),
                                  &baseline_stats);
      baselined = true;
    }
    if (!json_out.empty()) {
      std::ofstream out(json_out, std::ios::binary);
      if (!out) throw std::runtime_error("detlint: cannot write " + json_out);
      out << detlint::report_json(violations);
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (!quiet)
    for (const auto& v : violations) std::cout << detlint::format_violation(v) << "\n";
  if (baselined && (baseline_stats.suppressed > 0 || baseline_stats.stale > 0)) {
    std::cout << "detlint: baseline absorbed " << baseline_stats.suppressed << " finding"
              << (baseline_stats.suppressed == 1 ? "" : "s");
    if (baseline_stats.stale > 0)
      std::cout << " (" << baseline_stats.stale
                << " baseline entries no longer match — ratchet the baseline down)";
    std::cout << "\n";
  }
  if (violations.empty()) {
    std::cout << "detlint: clean\n";
    return 0;
  }
  std::cout << "detlint: " << violations.size() << " violation"
            << (violations.size() == 1 ? "" : "s") << "\n";
  return 1;
}
