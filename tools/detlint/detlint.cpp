// detlint — determinism-purity linter for the SMIless tree.
//
// Scans C++ sources for constructs that break the DESIGN.md §9 contract
// (bit-identical sweeps at any thread count, byte-stable artifacts): wall
// clocks, raw randomness, hash-order iteration, pointer-keyed ordering,
// parallel reductions, environment reads. Exemptions are inline, named and
// reasoned, so every escape hatch is reviewable in the diff that adds it.
//
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "scanner.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: detlint [options] <path>...\n"
        "  Scans every .cpp/.cc/.cxx/.hpp/.h/.hh under the given paths.\n"
        "options:\n"
        "  --list-rules         print the rule catalog and exit\n"
        "  --allow-unused       do not report allow annotations that suppress nothing\n"
        "  -q, --quiet          print only the final summary line\n"
        "  -h, --help           this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  detlint::ScanOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--list-rules") {
      for (const auto& r : detlint::rule_catalog()) {
        std::cout << r.id << "\n    " << r.summary << "\n";
        for (const auto& s : r.exempt_suffixes) std::cout << "    (exempt: " << s << ")\n";
      }
      std::cout << "bad-allow\n    malformed allow annotation (unknown rule or missing reason)\n"
                   "unused-allow\n    allow annotation that suppresses nothing\n";
      return 0;
    } else if (arg == "--allow-unused") {
      options.report_unused_allows = false;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    print_usage(std::cerr);
    return 2;
  }
  std::vector<detlint::Violation> violations;
  try {
    violations = detlint::scan_paths(roots, options);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (!quiet)
    for (const auto& v : violations) std::cout << detlint::format_violation(v) << "\n";
  if (violations.empty()) {
    std::cout << "detlint: clean\n";
    return 0;
  }
  std::cout << "detlint: " << violations.size() << " violation"
            << (violations.size() == 1 ? "" : "s") << "\n";
  return 1;
}
