#pragma once

#include <string>
#include <vector>

#include "scanner.hpp"

namespace detlint {

/// Declarative include-layering manifest (tools/detlint/layers.json,
/// DESIGN.md §11). Layers are listed lowest first; a module may include its
/// own layer and any layer named in its `deps` list ("*" = anything, for
/// the harness layer). `private_modules` lists modules whose headers are
/// internal except for an explicit facade.
struct LayerManifest {
  struct Layer {
    std::string name;
    /// Module directories, e.g. "src/serverless" or "bench". A file belongs
    /// to the module whose directory appears as a component prefix of its
    /// path (longest match wins).
    std::vector<std::string> members;
    /// Names of other layers this layer may include, or the single entry
    /// "*" to allow everything.
    std::vector<std::string> deps;
  };
  struct PrivateModule {
    std::string module;
    /// Facade headers, relative to the module directory. Everything else in
    /// the module is private to it.
    std::vector<std::string> public_headers;
    /// Modules that may include private headers anyway (white-box tests).
    std::vector<std::string> allow_from;
  };

  std::vector<Layer> layers;
  std::vector<PrivateModule> private_modules;

  /// Throws std::runtime_error on duplicate layers/members, a dep naming an
  /// unknown layer, or a cyclic layer DAG.
  void validate() const;

  /// Module directory of `path`, or "" if no member covers it.
  std::string module_of(const std::string& path) const;

  /// Layer index of a module directory, or -1.
  int layer_of_module(const std::string& module) const;
};

/// Parse a manifest from JSON text / load it from disk. Both validate() the
/// result and throw std::runtime_error with a description on any problem.
LayerManifest parse_manifest(const std::string& text);
LayerManifest load_manifest(const std::string& path);

/// One scanned translation unit / header for the arch pass. `raw` is the
/// original text (include paths are string literals, which the stripped view
/// blanks); `code` is the comment- and string-stripped view of identical
/// shape, used to reject directives that only exist inside comments or raw
/// string literals.
struct ArchFile {
  std::string path;
  const std::string* raw = nullptr;
  const std::string* code = nullptr;
};

/// The archlint pass: builds the project-relative include graph over
/// `files` (quoted includes only; an include that resolves to no scanned
/// file is external and ignored) and reports `layer-violation`,
/// `include-cycle` and `private-include` findings. Results are raw — the
/// caller merges them into the per-file allow resolution.
std::vector<Violation> archlint(const LayerManifest& manifest,
                                const std::vector<ArchFile>& files);

}  // namespace detlint
