#include "archlint.hpp"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <stdexcept>

#include "common/json.hpp"

namespace detlint {

namespace {

namespace json = smiless::json;

/// Position of `module` as a whole component run inside `path`
/// ("src/serverless" matches ".../src/serverless/x.hpp" but not
/// ".../src/serverless2/x.hpp" or ".../xsrc/serverless/x.hpp");
/// npos when absent.
std::size_t module_pos(const std::string& path, const std::string& module) {
  std::size_t p = 0;
  while ((p = path.find(module, p)) != std::string::npos) {
    const bool starts_component = p == 0 || path[p - 1] == '/';
    const std::size_t end = p + module.size();
    const bool ends_component = end < path.size() && path[end] == '/';
    if (starts_component && ends_component) return p;
    ++p;
  }
  return std::string::npos;
}

/// Path from the module component onward — the stable, repo-relative way to
/// name a file in a message regardless of how the scan was invoked.
std::string display(const std::string& path, const std::string& module) {
  const std::size_t p = module.empty() ? std::string::npos : module_pos(path, module);
  if (p == std::string::npos) {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
  }
  return path.substr(p);
}

std::vector<std::string> string_list(const json::Value& v, const char* what) {
  std::vector<std::string> out;
  if (!v.is_array()) throw std::runtime_error(std::string("layers.json: ") + what + " must be an array");
  for (const auto& item : v.items()) out.push_back(item.as_string());
  return out;
}

}  // namespace

void LayerManifest::validate() const {
  if (layers.empty()) throw std::runtime_error("layers.json: no layers defined");
  std::set<std::string> names;
  std::set<std::string> members_seen;
  for (const auto& layer : layers) {
    if (layer.name.empty()) throw std::runtime_error("layers.json: layer with empty name");
    if (!names.insert(layer.name).second)
      throw std::runtime_error("layers.json: duplicate layer '" + layer.name + "'");
    if (layer.members.empty())
      throw std::runtime_error("layers.json: layer '" + layer.name + "' has no members");
    for (const auto& m : layer.members)
      if (!members_seen.insert(m).second)
        throw std::runtime_error("layers.json: module '" + m + "' listed in two layers");
  }
  for (const auto& layer : layers) {
    for (const auto& d : layer.deps) {
      if (d == "*") continue;
      if (d == layer.name)
        throw std::runtime_error("layers.json: layer '" + layer.name + "' depends on itself");
      if (!names.count(d))
        throw std::runtime_error("layers.json: layer '" + layer.name + "' depends on unknown layer '" +
                                 d + "'");
    }
  }
  // The layer DAG must be acyclic ("*" reaches everything, so a "*" layer
  // inside a cycle would already be caught through its named dependents).
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::map<std::string, const Layer*> by_name;
  for (const auto& layer : layers) by_name[layer.name] = &layer;
  const std::function<void(const Layer&, std::vector<std::string>&)> visit =
      [&](const Layer& layer, std::vector<std::string>& chain) {
        state[layer.name] = 1;
        chain.push_back(layer.name);
        for (const auto& d : layer.deps) {
          if (d == "*") continue;
          if (state[d] == 1) {
            std::string msg = "layers.json: cyclic layer DAG: ";
            const auto it = std::find(chain.begin(), chain.end(), d);
            for (auto c = it; c != chain.end(); ++c) msg += *c + " -> ";
            throw std::runtime_error(msg + d);
          }
          if (state[d] == 0) visit(*by_name.at(d), chain);
        }
        chain.pop_back();
        state[layer.name] = 2;
      };
  std::vector<std::string> chain;
  for (const auto& layer : layers)
    if (state[layer.name] == 0) visit(layer, chain);
  for (const auto& pm : private_modules) {
    if (!members_seen.count(pm.module))
      throw std::runtime_error("layers.json: private module '" + pm.module +
                               "' is not a member of any layer");
    if (pm.public_headers.empty())
      throw std::runtime_error("layers.json: private module '" + pm.module + "' has an empty facade");
  }
}

std::string LayerManifest::module_of(const std::string& path) const {
  std::string best;
  for (const auto& layer : layers)
    for (const auto& m : layer.members)
      if (m.size() > best.size() && module_pos(path, m) != std::string::npos) best = m;
  return best;
}

int LayerManifest::layer_of_module(const std::string& module) const {
  for (std::size_t i = 0; i < layers.size(); ++i)
    for (const auto& m : layers[i].members)
      if (m == module) return static_cast<int>(i);
  return -1;
}

LayerManifest parse_manifest(const std::string& text) {
  const json::Value doc = json::Value::parse(text);
  LayerManifest out;
  const json::Value* layers = doc.find("layers");
  if (layers == nullptr) throw std::runtime_error("layers.json: missing 'layers'");
  for (const auto& l : layers->items()) {
    LayerManifest::Layer layer;
    layer.name = l.get("name", "");
    const json::Value* members = l.find("members");
    const json::Value* deps = l.find("deps");
    if (members != nullptr) layer.members = string_list(*members, "members");
    if (deps != nullptr) layer.deps = string_list(*deps, "deps");
    out.layers.push_back(std::move(layer));
  }
  if (const json::Value* priv = doc.find("private"); priv != nullptr) {
    for (const auto& p : priv->items()) {
      LayerManifest::PrivateModule pm;
      pm.module = p.get("module", "");
      if (const json::Value* pub = p.find("public"); pub != nullptr)
        pm.public_headers = string_list(*pub, "public");
      if (const json::Value* af = p.find("allow_from"); af != nullptr)
        pm.allow_from = string_list(*af, "allow_from");
      out.private_modules.push_back(std::move(pm));
    }
  }
  out.validate();
  return out;
}

LayerManifest load_manifest(const std::string& path) {
  try {
    return parse_manifest(json::load_file(path).dump());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

namespace {

struct Include {
  int from = 0;  // file index
  int to = 0;
  int line = 0;
  std::string spelling;
};

/// Quoted-include directives with line numbers. The path spelling lives in
/// a string literal, which the stripped code view blanks — so the spelling
/// comes from the raw text, while the directive prefix must also survive in
/// the code view (a `#include` inside a comment or raw string is blanked
/// there and therefore ignored).
std::vector<std::pair<int, std::string>> extract_includes(const std::string& raw,
                                                          const std::string& code) {
  static const std::regex kInclude(R"re(^(\s*#\s*include\s*)"([^"\n]+)")re");
  std::vector<std::pair<int, std::string>> out;
  int line = 1;
  std::size_t begin = 0;
  while (begin <= raw.size()) {
    std::size_t end = raw.find('\n', begin);
    if (end == std::string::npos) end = raw.size();
    const std::string text = raw.substr(begin, end - begin);
    std::smatch m;
    if (std::regex_search(text, m, kInclude) &&
        code.compare(begin, m[1].length(), raw, begin, m[1].length()) == 0)
      out.emplace_back(line, m[2].str());
    begin = end + 1;
    ++line;
  }
  return out;
}

/// Tarjan strongly-connected components over the include graph, iterating
/// nodes and edges in sorted order so cycle reports are deterministic.
struct Tarjan {
  const std::vector<std::vector<int>>& adj;
  std::vector<int> index, low, comp;
  std::vector<bool> on_stack;
  std::vector<int> stack;
  int next_index = 0, next_comp = 0;

  explicit Tarjan(const std::vector<std::vector<int>>& a)
      : adj(a), index(a.size(), -1), low(a.size(), 0), comp(a.size(), -1), on_stack(a.size(), false) {
    for (int v = 0; v < static_cast<int>(a.size()); ++v)
      if (index[v] < 0) visit(v);
  }

  void visit(int v) {
    index[v] = low[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (int w : adj[v]) {
      if (index[w] < 0) {
        visit(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      while (true) {
        const int w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        comp[w] = next_comp;
        if (w == v) break;
      }
      ++next_comp;
    }
  }
};

}  // namespace

std::vector<Violation> archlint(const LayerManifest& manifest, const std::vector<ArchFile>& files) {
  namespace fs = std::filesystem;
  std::vector<Violation> out;

  // --- index files and resolve the module of each ---------------------------
  std::map<std::string, int> by_path;
  for (std::size_t i = 0; i < files.size(); ++i)
    by_path[files[i].path] = static_cast<int>(i);
  std::vector<std::string> module(files.size());
  std::vector<int> layer(files.size(), -1);
  for (std::size_t i = 0; i < files.size(); ++i) {
    module[i] = manifest.module_of(files[i].path);
    if (module[i].empty()) {
      out.push_back({files[i].path, 1, "layer-violation",
                     "file is not covered by any layer in the manifest (add its module to layers.json)"});
    } else {
      layer[i] = manifest.layer_of_module(module[i]);
    }
  }

  // --- build the include graph ----------------------------------------------
  // Resolution mirrors the build: first relative to the including file (the
  // quoted-include lookup rule), then as a project-relative path, i.e. a
  // unique component suffix of some scanned file. Unresolved = external.
  std::vector<Include> edges;
  std::vector<std::vector<int>> adj(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const auto& [line, inc] : extract_includes(*files[i].raw, *files[i].code)) {
      int to = -1;
      const fs::path sibling =
          (fs::path(files[i].path).parent_path() / inc).lexically_normal();
      if (const auto it = by_path.find(sibling.generic_string()); it != by_path.end()) {
        to = it->second;
      } else {
        int match = -1;
        bool ambiguous = false;
        const std::string suffix = "/" + inc;
        for (std::size_t j = 0; j < files.size(); ++j) {
          const std::string& p = files[j].path;
          const bool hit = p == inc || (p.size() > suffix.size() &&
                                        p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0);
          if (!hit) continue;
          if (match >= 0) ambiguous = true;
          match = static_cast<int>(j);
        }
        if (!ambiguous) to = match;  // ambiguous spellings cannot be attributed
      }
      if (to < 0) continue;
      edges.push_back({static_cast<int>(i), to, line, inc});
      adj[i].push_back(to);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  // --- layer-violation: an edge to a layer the includer may not depend on ---
  for (const auto& e : edges) {
    if (layer[e.from] < 0 || layer[e.to] < 0) continue;  // unmapped reported above
    if (module[e.from] == module[e.to] || layer[e.from] == layer[e.to]) continue;
    const auto& from_layer = manifest.layers[static_cast<std::size_t>(layer[e.from])];
    const std::string& to_name = manifest.layers[static_cast<std::size_t>(layer[e.to])].name;
    const bool allowed =
        std::find(from_layer.deps.begin(), from_layer.deps.end(), "*") != from_layer.deps.end() ||
        std::find(from_layer.deps.begin(), from_layer.deps.end(), to_name) != from_layer.deps.end();
    if (allowed) continue;
    out.push_back({files[static_cast<std::size_t>(e.from)].path, e.line, "layer-violation",
                   "module '" + module[static_cast<std::size_t>(e.from)] + "' (layer " +
                       from_layer.name + ") may not include '" + e.spelling + "' from layer " +
                       to_name});
  }

  // --- private-include: internals of a module included past its facade ------
  for (const auto& e : edges) {
    const std::string& to_module = module[static_cast<std::size_t>(e.to)];
    if (to_module.empty() || module[static_cast<std::size_t>(e.from)] == to_module) continue;
    for (const auto& pm : manifest.private_modules) {
      if (pm.module != to_module) continue;
      if (std::find(pm.allow_from.begin(), pm.allow_from.end(),
                    module[static_cast<std::size_t>(e.from)]) != pm.allow_from.end())
        continue;
      const std::string& to_path = files[static_cast<std::size_t>(e.to)].path;
      const std::size_t p = module_pos(to_path, pm.module);
      const std::string rel =
          p == std::string::npos ? to_path : to_path.substr(p + pm.module.size() + 1);
      if (std::find(pm.public_headers.begin(), pm.public_headers.end(), rel) !=
          pm.public_headers.end())
        continue;
      out.push_back({files[static_cast<std::size_t>(e.from)].path, e.line, "private-include",
                     "'" + pm.module + "/" + rel + "' is internal to " + pm.module +
                         "; include one of its facade headers instead"});
    }
  }

  // --- include-cycle: one report per strongly-connected component -----------
  const Tarjan scc(adj);
  std::vector<std::vector<int>> comps(static_cast<std::size_t>(scc.next_comp));
  for (std::size_t i = 0; i < files.size(); ++i)
    comps[static_cast<std::size_t>(scc.comp[i])].push_back(static_cast<int>(i));
  for (auto& members : comps) {
    std::sort(members.begin(), members.end(), [&](int a, int b) {
      return files[static_cast<std::size_t>(a)].path < files[static_cast<std::size_t>(b)].path;
    });
    const bool self_loop =
        members.size() == 1 &&
        std::find(adj[static_cast<std::size_t>(members[0])].begin(),
                  adj[static_cast<std::size_t>(members[0])].end(),
                  members[0]) != adj[static_cast<std::size_t>(members[0])].end();
    if (members.size() < 2 && !self_loop) continue;
    // Walk a representative elementary cycle from the smallest path.
    const int start = members[0];
    std::vector<int> cycle{start};
    std::vector<bool> seen(files.size(), false);
    seen[static_cast<std::size_t>(start)] = true;
    const std::function<bool(int)> walk = [&](int v) {
      for (int w : adj[static_cast<std::size_t>(v)]) {
        if (scc.comp[w] != scc.comp[start]) continue;
        if (w == start) return true;
        if (seen[static_cast<std::size_t>(w)]) continue;
        seen[static_cast<std::size_t>(w)] = true;
        cycle.push_back(w);
        if (walk(w)) return true;
        cycle.pop_back();
      }
      return false;
    };
    if (!walk(start) && !self_loop) continue;
    std::string chain;
    for (const int v : cycle)
      chain += display(files[static_cast<std::size_t>(v)].path, module[static_cast<std::size_t>(v)]) +
               " -> ";
    chain += display(files[static_cast<std::size_t>(start)].path,
                     module[static_cast<std::size_t>(start)]);
    // Anchor the report at the include that leaves the smallest member.
    const int next = cycle.size() > 1 ? cycle[1] : start;
    int line = 1;
    for (const auto& e : edges)
      if (e.from == start && e.to == next) {
        line = e.line;
        break;
      }
    out.push_back({files[static_cast<std::size_t>(start)].path, line, "include-cycle",
                   "include cycle: " + chain});
  }

  return out;
}

}  // namespace detlint
