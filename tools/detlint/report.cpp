// Machine-readable detlint output and the baseline ratchet: a --json report
// doubles as the --baseline input, so pinning today's findings is just
// saving today's report. Budgets are per (path, rule) — line numbers drift
// with unrelated edits and are deliberately not part of the pin.

#include <map>

#include "common/json.hpp"
#include "scanner.hpp"

namespace detlint {

namespace json = smiless::json;

std::string report_json(const std::vector<Violation>& violations) {
  json::Value doc = json::Value::object();
  doc["detlint"] = 1;
  doc["total"] = static_cast<long long>(violations.size());
  std::map<std::string, int> counts;
  for (const auto& v : violations) ++counts[v.rule];
  json::Value counts_v = json::Value::object();
  for (const auto& [rule, n] : counts) counts_v[rule] = n;
  doc["counts"] = std::move(counts_v);
  json::Value list = json::Value::array();
  for (const auto& v : violations) {
    json::Value item = json::Value::object();
    item["path"] = v.path;
    item["line"] = v.line;
    item["rule"] = v.rule;
    item["message"] = v.message;
    list.push_back(std::move(item));
  }
  doc["violations"] = std::move(list);
  return doc.dump(2) + "\n";
}

Baseline parse_baseline(const std::string& text) {
  const json::Value doc = json::Value::parse(text);
  const json::Value* list = doc.find("violations");
  if (list == nullptr)
    throw std::runtime_error("baseline: missing 'violations' (expected a detlint --json report)");
  Baseline out;
  for (const auto& item : list->items())
    ++out.budget[{item.get("path", ""), item.get("rule", "")}];
  return out;
}

Baseline load_baseline(const std::string& path) {
  try {
    return parse_baseline(json::load_file(path).dump());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::vector<Violation> apply_baseline(std::vector<Violation> violations, const Baseline& baseline,
                                      BaselineStats* stats) {
  std::map<std::pair<std::string, std::string>, int> budget = baseline.budget;
  std::vector<Violation> out;
  int suppressed = 0;
  for (auto& v : violations) {
    const auto it = budget.find({v.path, v.rule});
    if (it != budget.end() && it->second > 0) {
      --it->second;
      ++suppressed;
    } else {
      out.push_back(std::move(v));
    }
  }
  if (stats != nullptr) {
    stats->suppressed = suppressed;
    stats->stale = 0;
    for (const auto& [key, remaining] : budget) stats->stale += remaining;
  }
  return out;
}

}  // namespace detlint
