// smiless_sim — command-line driver for the SMIless serving simulator.
//
// Every run — single cell or sweep — goes through the exp:: experiment API,
// so anything the CLI can do is reproducible from one JSON config file.
//
//   smiless_sim [serve] [options]
//     serve                 live-serving mode (DESIGN.md §16): pump the same
//                           cell against the wall clock via rt::RealTimeDriver,
//                           streaming the trace through the Gateway as each
//                           arrival's wall deadline passes. Same config, same
//                           books, same stdout summary as the DES run.
//     --speedup <x>         serve: sim-seconds per wall-second (default 1)
//     --stream-out <file>   serve: live NDJSON event stream (one flushed
//                           line per event; schema pinned by
//                           tests/golden/serve_stream.ndjson)
//     --config <file.json>  load a full ExperimentConfig; later flags override
//     --save-config <file>  write the resolved config as JSON and exit
//     --app <wl1|wl2|wl3|ipa|path.manifest>   application (default wl3)
//     --policy <name|all>   smiless, smiless-homo, smiless-no-dag, opt,
//                           orion, icebreaker, grandslam, aquatope, all
//                           (default smiless)
//     --duration <seconds>  synthetic trace length (default 600)
//     --trace <file.csv>    replay a CSV trace instead of generating one
//     --sla <seconds>       end-to-end SLA target (default 2.0)
//     --seed <n>            RNG seed for trace + simulation (default 42)
//     --lanes <k>           shard the cell into k deterministic lanes
//                           (default 1 = monolithic; see DESIGN.md §14)
//     --lane-threads <n>    threads stepping the lanes (0 = hardware,
//                           1 = serial; wall-clock only, never results)
//     --no-lstm             use lightweight statistical predictors
//     --dump-trace <file>   write the (generated) trace as CSV and exit
//     --slow <n>            print the n slowest request traces (default 0)
//
//   Sweeps (the parallel experiment runner):
//     --sweep <grid.json>   run every cell of an ExperimentGrid file
//     --threads <n>         concurrent cells (default: hardware; results are
//                           bit-identical for every value)
//     --out <file.json>     write the sweep summary JSON (default: stdout table)
//     --csv <file.csv>      also write per-aggregate CSV
//     --progress            per-cell completion lines on stderr
//
//   Observability (see DESIGN.md "Observability"; artifacts are byte-stable
//   across --threads values, and all flags work for single runs and sweeps):
//     --trace-out <file>    Perfetto/Chrome trace-event JSON (ui.perfetto.dev)
//     --metrics-out <file>  counters / gauges / latency histograms JSON
//     --audit-out <file>    policy decision audit log JSON
//     --windows-out <file>  per-window time-series CSV
//     --series-out <file>   fixed-cadence obs::TimeSeries JSON (byte-stable
//                           across --threads / --lane-threads / lane counts)
//     --series-cadence <s>  time-series bin width in sim seconds (default 1)
//     --report-out <file>   self-contained HTML serving report (charts +
//                           profiler breakdown; opens offline from file://)
//     --profile-out <file>  runtime self-profiler JSON (wall-clock scope
//                           breakdown + sampled internal counters)
//     --internal-stats      mirror calendar-queue internals into metrics-out
//                           (path-revealing: monolithic vs sharded differ)
//
//   Fault injection (all off by default; see DESIGN.md "Failure model"):
//     --fault-init-p <p>        container init failure probability
//     --fault-straggler-p <p>   straggler probability per inference
//     --fault-straggler-x <f>   straggler latency multiplier (default 4)
//     --fault-crash M@T:D       crash machine M at time T for D seconds
//                               (repeatable)
//     --fault-crash-rate <r>    random crashes per machine per second
//     --fault-mttr <s>          mean time to repair for random crashes
//     --timeout <s>             per-invocation timeout (default: none)
//     --max-retries <n>         retry budget before a request fails
//
// Examples:
//   smiless_sim --app wl1 --policy all --duration 900
//   smiless_sim --config run.json
//   smiless_sim --sweep grid.json --threads 8 --out results.json
//   smiless_sim --policy all --fault-init-p 0.05 --fault-crash 2@120:60
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "apps/catalog.hpp"
#include "baselines/experiment.hpp"
#include "common/table.hpp"
#include "exp/aggregate.hpp"
#include "exp/artifacts.hpp"
#include "exp/config.hpp"
#include "exp/runner.hpp"
#include "exp/serve.hpp"
#include "math/stats.hpp"
#include "serverless/tracing.hpp"
#include "workload/trace_io.hpp"

using namespace smiless;

namespace {

struct CliOptions {
  exp::ExperimentConfig config;  ///< the single-run cell being assembled
  std::string policy = "smiless";  ///< name or "all"
  std::string dump_trace;
  std::string save_config;
  std::string sweep_file;
  std::string out_file;
  std::string csv_file;
  exp::RunnerOptions runner;
  int slow = 0;
  bool serve = false;         ///< `smiless_sim serve ...` subcommand
  double speedup = 1.0;       ///< serve: sim-seconds per wall-second
  std::string stream_out;     ///< serve: live NDJSON event stream path
};

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: " << argv0
            << " [serve] [--config run.json] [--save-config file] [--app wl1|wl2|wl3|ipa|file.manifest]\n"
               "       serve mode only: [--speedup X] [--stream-out file.ndjson]\n"
               "       [--policy NAME|all] [--duration S] [--trace file.csv] [--sla S]\n"
               "       [--seed N] [--lanes K] [--lane-threads N] [--no-lstm]\n"
               "       [--dump-trace file.csv] [--slow N]\n"
               "       [--sweep grid.json] [--threads N] [--out file.json] [--csv file.csv]\n"
               "       [--progress]\n"
               "       [--trace-out file.json] [--metrics-out file.json]\n"
               "       [--audit-out file.json] [--windows-out file.csv]\n"
               "       [--series-out file.json] [--series-cadence S]\n"
               "       [--report-out file.html] [--profile-out file.json]\n"
               "       [--internal-stats]\n"
               "       [--fault-init-p P] [--fault-straggler-p P] [--fault-straggler-x F]\n"
               "       [--fault-crash M@T:D]... [--fault-crash-rate R] [--fault-mttr S]\n"
               "       [--timeout S] [--max-retries N]\n";
  std::exit(error.empty() ? 0 : 2);
}

/// Parse a "--fault-crash M@T:D" operand (duration optional, default 60 s).
faults::ScheduledCrash parse_crash(const char* argv0, const std::string& s) {
  faults::ScheduledCrash c;
  c.duration = 60.0;
  const auto at = s.find('@');
  if (at == std::string::npos) usage(argv0, "--fault-crash wants M@T[:D], got " + s);
  c.machine = std::atoi(s.substr(0, at).c_str());
  const auto colon = s.find(':', at);
  c.at = std::atof(s.substr(at + 1, colon - at - 1).c_str());
  if (colon != std::string::npos) c.duration = std::atof(s.substr(colon + 1).c_str());
  return c;
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  // --config seeds the cell; every later flag overrides one field of it.
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--config")) {
      const char* path = need_value(i);
      try {
        o.config = exp::ExperimentConfig::from_json(json::load_file(path));
      } catch (const std::exception& e) {
        usage(argv[0], e.what());
      }
      o.policy = o.config.policy;
    }
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (i == 1 && !std::strcmp(arg, "serve")) o.serve = true;
    else if (!std::strcmp(arg, "--config")) { ++i; }  // handled above
    else if (!std::strcmp(arg, "--save-config")) o.save_config = need_value(i);
    else if (!std::strcmp(arg, "--app")) o.config.app = need_value(i);
    else if (!std::strcmp(arg, "--policy")) o.policy = need_value(i);
    else if (!std::strcmp(arg, "--trace")) {
      o.config.trace.kind = "csv";
      o.config.trace.file = need_value(i);
    }
    else if (!std::strcmp(arg, "--dump-trace")) o.dump_trace = need_value(i);
    else if (!std::strcmp(arg, "--duration"))
      o.config.trace.duration = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--sla")) o.config.sla = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--seed")) {
      o.config.seed = std::strtoull(need_value(i), nullptr, 10);
      o.config.trace.seed = o.config.seed;
    }
    else if (!std::strcmp(arg, "--lanes")) {
      o.config.lanes = std::atoi(need_value(i));
      if (o.config.lanes < 1) usage(argv[0], "--lanes must be >= 1");
    }
    else if (!std::strcmp(arg, "--lane-threads")) {
      o.runner.lane_threads = std::atoi(need_value(i));
      if (o.runner.lane_threads < 0) usage(argv[0], "--lane-threads must be >= 0");
    }
    else if (!std::strcmp(arg, "--no-lstm")) o.config.use_lstm = false;
    else if (!std::strcmp(arg, "--speedup")) {
      o.speedup = std::atof(need_value(i));
      if (o.speedup <= 0.0) usage(argv[0], "--speedup must be positive");
    }
    else if (!std::strcmp(arg, "--stream-out")) o.stream_out = need_value(i);
    else if (!std::strcmp(arg, "--slow")) o.slow = std::atoi(need_value(i));
    else if (!std::strcmp(arg, "--sweep")) o.sweep_file = need_value(i);
    else if (!std::strcmp(arg, "--threads")) {
      const long v = std::atol(need_value(i));
      if (v < 1) usage(argv[0], "--threads must be >= 1");
      o.runner.threads = static_cast<std::size_t>(v);
    }
    else if (!std::strcmp(arg, "--out")) o.out_file = need_value(i);
    else if (!std::strcmp(arg, "--csv")) o.csv_file = need_value(i);
    else if (!std::strcmp(arg, "--progress")) o.runner.progress = true;
    else if (!std::strcmp(arg, "--trace-out")) o.config.obs.trace_out = need_value(i);
    else if (!std::strcmp(arg, "--metrics-out")) o.config.obs.metrics_out = need_value(i);
    else if (!std::strcmp(arg, "--audit-out")) o.config.obs.audit_out = need_value(i);
    else if (!std::strcmp(arg, "--windows-out")) o.config.obs.windows_out = need_value(i);
    else if (!std::strcmp(arg, "--series-out")) o.config.obs.series_out = need_value(i);
    else if (!std::strcmp(arg, "--series-cadence")) {
      o.config.obs.series_cadence = std::atof(need_value(i));
      if (o.config.obs.series_cadence <= 0.0)
        usage(argv[0], "--series-cadence must be positive");
    }
    else if (!std::strcmp(arg, "--report-out")) o.config.obs.report_out = need_value(i);
    else if (!std::strcmp(arg, "--profile-out")) o.config.obs.profile_out = need_value(i);
    else if (!std::strcmp(arg, "--internal-stats")) o.config.obs.internal_stats = true;
    else if (!std::strcmp(arg, "--fault-init-p"))
      o.config.faults.init_failure_prob = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--fault-straggler-p"))
      o.config.faults.straggler_prob = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--fault-straggler-x"))
      o.config.faults.straggler_factor = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--fault-crash"))
      o.config.faults.crashes.push_back(parse_crash(argv[0], need_value(i)));
    else if (!std::strcmp(arg, "--fault-crash-rate"))
      o.config.faults.crash_rate = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--fault-mttr"))
      o.config.faults.mttr = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--timeout"))
      o.config.platform.request_timeout = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--max-retries"))
      o.config.platform.max_retries = std::atoi(need_value(i));
    else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) usage(argv[0]);
    else usage(argv[0], std::string("unknown option ") + arg);
  }
  if (o.config.trace.duration <= 0.0) usage(argv[0], "--duration must be positive");
  if (o.config.sla <= 0.0) usage(argv[0], "--sla must be positive");
  if (o.config.platform.request_timeout <= 0.0) usage(argv[0], "--timeout must be positive");
  if (!o.serve && (o.speedup != 1.0 || !o.stream_out.empty()))
    usage(argv[0], "--speedup/--stream-out only apply to the serve subcommand");
  o.config.policy = o.policy == "all" ? "smiless" : o.policy;
  return o;
}

std::vector<std::string> resolve_policies(const char* argv0, const std::string& name) {
  if (name == "all")
    return {"smiless", "grandslam", "icebreaker", "orion", "aquatope", "opt"};
  if (!baselines::parse_policy_kind(name)) {
    std::cerr << "error: unknown policy '" << name << "'\n";
    std::exit(2);
  }
  (void)argv0;
  return {name};
}

/// The single-run stdout preamble, shared by the DES path and `serve` so
/// the CI serve smoke can diff the two stdouts byte-for-byte.
void print_run_header(const apps::App& app, const workload::Trace& trace) {
  std::cout << "app: " << app.name << " (" << app.dag.size() << " functions, SLA " << app.sla
            << " s), trace: " << trace.total_invocations() << " requests over "
            << trace.counts.size() << " s\n\n";
}

/// The single-run summary table, shared by the DES path and `serve`.
void print_summary_table(const std::vector<exp::CellResult>& cells, bool with_faults) {
  std::vector<std::string> headers = {"policy",     "cost ($)",  "p50 E2E (s)",
                                      "p99 E2E (s)", "violations", "inits",
                                      "cpu core-s", "gpu pct-s"};
  if (with_faults) {
    headers.insert(headers.end(), {"goodput", "failed", "retries", "evictions", "timeouts"});
  }
  TextTable table(headers);
  for (const auto& cell : cells) {
    const auto& r = cell.result;
    std::vector<std::string> row = {
        r.policy, TextTable::num(r.cost, 4),
        TextTable::num(math::tail_latency(r.e2e, 50), 2),
        TextTable::num(math::tail_latency(r.e2e, 99), 2),
        TextTable::num(100 * r.violation_ratio, 1) + "%", std::to_string(r.initializations),
        TextTable::num(r.cpu_core_seconds, 0), TextTable::num(r.gpu_pct_seconds, 0)};
    if (with_faults) {
      row.insert(row.end(),
                 {TextTable::num(100 * r.goodput(), 1) + "%", std::to_string(r.failed),
                  std::to_string(r.retries), std::to_string(r.evictions),
                  std::to_string(r.timeouts)});
    }
    table.add_row(row);
  }
  table.print();
}

/// `smiless_sim serve`: one cell, live. Stdout is byte-identical to the DES
/// single-run of the same config (the smoke test diffs them); everything
/// wall-derived goes to stderr.
int run_serve(const CliOptions& cli) {
  if (cli.policy == "all") {
    std::cerr << "error: serve drives one policy at a time (got --policy all)\n";
    return 2;
  }
  if (!baselines::parse_policy_kind(cli.policy)) {
    std::cerr << "error: unknown policy '" << cli.policy << "'\n";
    return 2;
  }
  exp::ExperimentConfig cfg = cli.config;
  cfg.policy = cli.policy;

  const apps::App app = exp::resolve_app(cfg);
  const workload::Trace trace = exp::build_trace(cfg, app);
  print_run_header(app, trace);

  std::ofstream stream_file;
  exp::ServeOptions sopt;
  sopt.speedup = cli.speedup;
  if (!cli.stream_out.empty()) {
    stream_file.open(cli.stream_out);
    if (!stream_file) {
      std::cerr << "error: cannot open --stream-out " << cli.stream_out << "\n";
      return 2;
    }
    sopt.stream = &stream_file;
  }

  exp::Runner runner(cli.runner);
  exp::ServeReport report;
  try {
    report = exp::serve(cfg, runner.profiles(cfg.profile_seed), runner.policy_pool(), sopt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (cfg.obs.any()) exp::write_artifacts({report.cell}, cfg.obs);
  print_summary_table({report.cell}, cfg.faults.any());

  std::cerr << "[serve] driver=realtime speedup=" << TextTable::num(report.speedup, 0)
            << " wall=" << TextTable::num(report.wall_seconds, 2)
            << " s max_lag=" << TextTable::num(report.max_lag_seconds, 3)
            << " s batches=" << report.batches << " arrivals=" << report.injected;
  if (!cli.stream_out.empty())
    std::cerr << " stream_lines=" << report.stream_lines << " -> " << cli.stream_out;
  std::cerr << "\n";
  return 0;
}

int run_sweep(const CliOptions& cli) {
  exp::ExperimentGrid grid;
  try {
    grid = exp::ExperimentGrid::load(cli.sweep_file);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  // CLI observability flags overlay the grid's base config field-by-field,
  // so a grid file can name defaults and the command line can add to them.
  if (!cli.config.obs.trace_out.empty()) grid.base.obs.trace_out = cli.config.obs.trace_out;
  if (!cli.config.obs.metrics_out.empty())
    grid.base.obs.metrics_out = cli.config.obs.metrics_out;
  if (!cli.config.obs.audit_out.empty()) grid.base.obs.audit_out = cli.config.obs.audit_out;
  if (!cli.config.obs.windows_out.empty())
    grid.base.obs.windows_out = cli.config.obs.windows_out;
  if (!cli.config.obs.series_out.empty()) grid.base.obs.series_out = cli.config.obs.series_out;
  if (!cli.config.obs.report_out.empty()) grid.base.obs.report_out = cli.config.obs.report_out;
  if (!cli.config.obs.profile_out.empty())
    grid.base.obs.profile_out = cli.config.obs.profile_out;
  if (cli.config.obs.series_cadence != 1.0)
    grid.base.obs.series_cadence = cli.config.obs.series_cadence;
  if (cli.config.obs.internal_stats) grid.base.obs.internal_stats = true;
  const auto cells_cfg = grid.expand();
  std::cerr << "[exp] sweep " << cli.sweep_file << ": " << cells_cfg.size() << " cells, "
            << (cli.runner.threads == 0 ? std::string("hw") : std::to_string(cli.runner.threads))
            << " threads\n";
  exp::Runner runner(cli.runner);
  // detlint:allow(wall-clock) sweep wall time is reported to stderr, not serialized
  const auto t0 = std::chrono::steady_clock::now();
  const auto cells = runner.run(cells_cfg);
  const double wall =  // detlint:allow(wall-clock) same quarantine: stderr report only
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::cerr << "[exp] sweep finished in " << TextTable::num(wall, 2) << " s\n";

  if (grid.base.obs.any()) {
    exp::write_artifacts(cells, grid.base.obs);
    if (!grid.base.obs.trace_out.empty())
      std::cerr << "[obs] wrote " << grid.base.obs.trace_out << "\n";
    if (!grid.base.obs.metrics_out.empty())
      std::cerr << "[obs] wrote " << grid.base.obs.metrics_out << "\n";
    if (!grid.base.obs.audit_out.empty())
      std::cerr << "[obs] wrote " << grid.base.obs.audit_out << "\n";
    if (!grid.base.obs.windows_out.empty())
      std::cerr << "[obs] wrote " << grid.base.obs.windows_out << "\n";
    if (!grid.base.obs.series_out.empty())
      std::cerr << "[obs] wrote " << grid.base.obs.series_out << "\n";
    if (!grid.base.obs.report_out.empty())
      std::cerr << "[obs] wrote " << grid.base.obs.report_out << "\n";
    if (!grid.base.obs.profile_out.empty())
      std::cerr << "[obs] wrote " << grid.base.obs.profile_out << "\n";
  }

  const auto aggregates = exp::aggregate(cells);
  if (!cli.out_file.empty()) {
    json::save_file(exp::summary_json(cells, aggregates), cli.out_file);
    std::cerr << "[exp] wrote " << cli.out_file << "\n";
  }
  if (!cli.csv_file.empty()) {
    std::ofstream os(cli.csv_file);
    os << exp::summary_csv(aggregates);
    std::cerr << "[exp] wrote " << cli.csv_file << "\n";
  }
  if (cli.out_file.empty()) {
    TextTable table({"label", "policy", "app", "sla", "runs", "cost ($)", "+-95%",
                     "violations", "p99 E2E (s)", "goodput"});
    for (const auto& a : aggregates)
      table.add_row({a.label, a.policy, a.app, TextTable::num(a.sla, 2),
                     std::to_string(a.replicates), TextTable::num(a.cost.mean, 4),
                     TextTable::num(a.cost.ci95, 4),
                     TextTable::num(100 * a.violation_ratio.mean, 1) + "%",
                     TextTable::num(a.e2e_p99, 2),
                     TextTable::num(100 * a.goodput.mean, 1) + "%"});
    table.print();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli = parse_cli(argc, argv);

  if (!cli.save_config.empty()) {
    json::save_file(cli.config.to_json(), cli.save_config);
    std::cout << "Wrote config to " << cli.save_config << "\n";
    return 0;
  }
  if (!cli.sweep_file.empty()) return run_sweep(cli);
  if (cli.serve) return run_serve(cli);

  const apps::App app = exp::resolve_app(cli.config);
  const workload::Trace trace = exp::build_trace(cli.config, app);
  if (!cli.dump_trace.empty()) {
    workload::save_csv_file(trace, cli.dump_trace);
    std::cout << "Wrote " << trace.total_invocations() << " arrivals to " << cli.dump_trace
              << "\n";
    return 0;
  }

  print_run_header(app, trace);

  // One cell per requested policy; the runner executes them concurrently.
  std::vector<exp::ExperimentConfig> cells_cfg;
  for (const auto& policy : resolve_policies(argv[0], cli.policy)) {
    auto cfg = cli.config;
    cfg.policy = policy;
    cells_cfg.push_back(std::move(cfg));
  }
  exp::Runner runner(cli.runner);
  const auto cells = runner.run(cells_cfg);
  if (cli.config.obs.any()) exp::write_artifacts(cells, cli.config.obs);
  print_summary_table(cells, cli.config.faults.any());

  if (cli.slow > 0) {
    // Re-run the first policy with tracing to show the slowest requests.
    auto traced = cells_cfg.front();
    traced.platform.record_traces = true;
    sim::Engine engine;
    cluster::Cluster cluster = cluster::Cluster::paper_testbed();
    Rng rng(traced.seed);
    serverless::PlatformOptions popt = traced.platform;
    serverless::Platform platform(engine, cluster, perf::Pricing{}, rng, popt);
    baselines::PolicySettings settings;
    settings.use_lstm = traced.use_lstm;
    settings.pool = runner.policy_pool();
    settings.oracle_trace = &trace;
    const auto kind = *baselines::parse_policy_kind(traced.policy);
    const auto id = platform.deploy(
        app, baselines::make_policy(kind, app, runner.profiles(traced.profile_seed), settings));
    for (SimTime t : trace.arrivals) platform.submit_request(id, t);
    const double end = static_cast<double>(trace.counts.size()) + 120.0;
    engine.run_until(end);
    platform.finalize(end);
    auto traces = platform.metrics(id).traces;
    std::sort(traces.begin(), traces.end(),
              [](const auto& a, const auto& b) { return a.e2e() > b.e2e(); });
    std::cout << "\n=== " << cli.slow << " slowest requests ===\n";
    for (int i = 0; i < cli.slow && i < static_cast<int>(traces.size()); ++i)
      std::cout << serverless::format_trace(traces[i], app.dag);
  }
  return 0;
}
