// smiless_sim — command-line driver for the SMIless serving simulator.
//
//   smiless_sim [options]
//     --app <wl1|wl2|wl3|ipa|path.manifest>   application (default wl3)
//     --policy <name|all>   smiless, smiless-homo, smiless-no-dag, opt,
//                           orion, icebreaker, grandslam, aquatope, all
//                           (default smiless)
//     --duration <seconds>  synthetic trace length (default 600)
//     --trace <file.csv>    replay a CSV trace instead of generating one
//     --sla <seconds>       end-to-end SLA target (default 2.0)
//     --seed <n>            RNG seed for trace + simulation (default 42)
//     --no-lstm             use lightweight statistical predictors
//     --dump-trace <file>   write the (generated) trace as CSV and exit
//     --slow <n>            print the n slowest request traces (default 0)
//
//   Fault injection (all off by default; see DESIGN.md "Failure model"):
//     --fault-init-p <p>        container init failure probability
//     --fault-straggler-p <p>   straggler probability per inference
//     --fault-straggler-x <f>   straggler latency multiplier (default 4)
//     --fault-crash M@T:D       crash machine M at time T for D seconds
//                               (repeatable)
//     --fault-crash-rate <r>    random crashes per machine per second
//     --fault-mttr <s>          mean time to repair for random crashes
//     --timeout <s>             per-invocation timeout (default: none)
//     --max-retries <n>         retry budget before a request fails
//
// Examples:
//   smiless_sim --app wl1 --policy all --duration 900
//   smiless_sim --app my_app.manifest --trace prod.csv --policy smiless
//   smiless_sim --policy all --fault-init-p 0.05 --fault-crash 2@120:60
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "faults/fault_injector.hpp"

#include "apps/catalog.hpp"
#include "apps/serialize.hpp"
#include "baselines/experiment.hpp"
#include "common/table.hpp"
#include "core/smiless_policy.hpp"
#include "math/stats.hpp"
#include "serverless/tracing.hpp"
#include "workload/trace_io.hpp"

using namespace smiless;

namespace {

struct CliOptions {
  std::string app = "wl3";
  std::string policy = "smiless";
  std::string trace_file;
  std::string dump_trace;
  double duration = 600.0;
  double sla = 2.0;
  std::uint64_t seed = 42;
  bool use_lstm = true;
  int slow = 0;
  faults::FaultSpec faults;
  double timeout = std::numeric_limits<double>::infinity();
  int max_retries = 12;
};

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: " << argv0
            << " [--app wl1|wl2|wl3|ipa|file.manifest] [--policy NAME|all]\n"
               "       [--duration S] [--trace file.csv] [--sla S] [--seed N]\n"
               "       [--no-lstm] [--dump-trace file.csv] [--slow N]\n"
               "       [--fault-init-p P] [--fault-straggler-p P] [--fault-straggler-x F]\n"
               "       [--fault-crash M@T:D]... [--fault-crash-rate R] [--fault-mttr S]\n"
               "       [--timeout S] [--max-retries N]\n";
  std::exit(error.empty() ? 0 : 2);
}

/// Parse a "--fault-crash M@T:D" operand (duration optional, default 60 s).
faults::ScheduledCrash parse_crash(const char* argv0, const std::string& s) {
  faults::ScheduledCrash c;
  c.duration = 60.0;
  const auto at = s.find('@');
  if (at == std::string::npos) usage(argv0, "--fault-crash wants M@T[:D], got " + s);
  c.machine = std::atoi(s.substr(0, at).c_str());
  const auto colon = s.find(':', at);
  c.at = std::atof(s.substr(at + 1, colon - at - 1).c_str());
  if (colon != std::string::npos) c.duration = std::atof(s.substr(colon + 1).c_str());
  return c;
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--app")) o.app = need_value(i);
    else if (!std::strcmp(arg, "--policy")) o.policy = need_value(i);
    else if (!std::strcmp(arg, "--trace")) o.trace_file = need_value(i);
    else if (!std::strcmp(arg, "--dump-trace")) o.dump_trace = need_value(i);
    else if (!std::strcmp(arg, "--duration")) o.duration = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--sla")) o.sla = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--seed")) o.seed = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(arg, "--no-lstm")) o.use_lstm = false;
    else if (!std::strcmp(arg, "--slow")) o.slow = std::atoi(need_value(i));
    else if (!std::strcmp(arg, "--fault-init-p"))
      o.faults.init_failure_prob = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--fault-straggler-p"))
      o.faults.straggler_prob = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--fault-straggler-x"))
      o.faults.straggler_factor = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--fault-crash"))
      o.faults.crashes.push_back(parse_crash(argv[0], need_value(i)));
    else if (!std::strcmp(arg, "--fault-crash-rate"))
      o.faults.crash_rate = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--fault-mttr")) o.faults.mttr = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--timeout")) o.timeout = std::atof(need_value(i));
    else if (!std::strcmp(arg, "--max-retries")) o.max_retries = std::atoi(need_value(i));
    else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) usage(argv[0]);
    else usage(argv[0], std::string("unknown option ") + arg);
  }
  if (o.duration <= 0.0) usage(argv[0], "--duration must be positive");
  if (o.sla <= 0.0) usage(argv[0], "--sla must be positive");
  if (o.timeout <= 0.0) usage(argv[0], "--timeout must be positive");
  return o;
}

apps::App resolve_app(const CliOptions& o) {
  if (o.app == "wl1") return apps::make_amber_alert(o.sla);
  if (o.app == "wl2") return apps::make_image_query(o.sla);
  if (o.app == "wl3") return apps::make_voice_assistant(o.sla);
  if (o.app == "ipa") return apps::make_ipa(o.sla);
  std::ifstream is(o.app);
  if (!is.good()) {
    std::cerr << "error: unknown app '" << o.app << "' (not a preset or readable file)\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  apps::App app = apps::parse_app(buf.str());
  app.sla = o.sla;
  return app;
}

std::vector<baselines::PolicyKind> resolve_policies(const std::string& name) {
  using K = baselines::PolicyKind;
  if (name == "all")
    return {K::Smiless, K::GrandSlam, K::IceBreaker, K::Orion, K::Aquatope, K::Opt};
  if (name == "smiless") return {K::Smiless};
  if (name == "smiless-homo") return {K::SmilessHomo};
  if (name == "smiless-no-dag") return {K::SmilessNoDag};
  if (name == "opt") return {K::Opt};
  if (name == "orion") return {K::Orion};
  if (name == "icebreaker") return {K::IceBreaker};
  if (name == "grandslam") return {K::GrandSlam};
  if (name == "aquatope") return {K::Aquatope};
  std::cerr << "error: unknown policy '" << name << "'\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_cli(argc, argv);
  const apps::App app = resolve_app(cli);

  workload::Trace trace;
  if (!cli.trace_file.empty()) {
    trace = workload::load_csv_file(cli.trace_file);
  } else {
    Rng rng(cli.seed);
    auto trace_options = workload::preset_for_workload(app.name, cli.duration);
    trace = workload::generate_trace(trace_options, rng);
  }
  if (!cli.dump_trace.empty()) {
    workload::save_csv_file(trace, cli.dump_trace);
    std::cout << "Wrote " << trace.total_invocations() << " arrivals to " << cli.dump_trace
              << "\n";
    return 0;
  }

  std::cout << "app: " << app.name << " (" << app.dag.size() << " functions, SLA " << app.sla
            << " s), trace: " << trace.total_invocations() << " requests over "
            << trace.counts.size() << " s\n\n";

  Rng profile_rng(cli.seed + 1);
  baselines::ProfileStore store{profiler::OfflineProfiler{}, profile_rng};
  baselines::PolicySettings settings;
  settings.use_lstm = cli.use_lstm;
  settings.oracle_trace = &trace;
  baselines::ExperimentOptions run_options;
  run_options.seed = cli.seed;
  run_options.platform.record_traces = cli.slow > 0;
  run_options.platform.request_timeout = cli.timeout;
  run_options.platform.max_retries = cli.max_retries;
  run_options.faults = cli.faults;
  const bool with_faults = cli.faults.any();

  std::vector<std::string> headers = {"policy",     "cost ($)",  "p50 E2E (s)",
                                      "p99 E2E (s)", "violations", "inits",
                                      "cpu core-s", "gpu pct-s"};
  if (with_faults) {
    headers.insert(headers.end(), {"goodput", "failed", "retries", "evictions", "timeouts"});
  }
  TextTable table(headers);
  for (const auto kind : resolve_policies(cli.policy)) {
    const auto r = baselines::run_experiment(
        app, trace, baselines::make_policy(kind, app, store, settings), run_options);
    std::vector<std::string> row = {
        r.policy, TextTable::num(r.cost, 4),
        TextTable::num(r.e2e.empty() ? 0.0 : math::percentile(r.e2e, 50), 2),
        TextTable::num(r.e2e.empty() ? 0.0 : math::percentile(r.e2e, 99), 2),
        TextTable::num(100 * r.violation_ratio, 1) + "%", std::to_string(r.initializations),
        TextTable::num(r.cpu_core_seconds, 0), TextTable::num(r.gpu_pct_seconds, 0)};
    if (with_faults) {
      row.insert(row.end(),
                 {TextTable::num(100 * r.goodput(), 1) + "%", std::to_string(r.failed),
                  std::to_string(r.retries), std::to_string(r.evictions),
                  std::to_string(r.timeouts)});
    }
    table.add_row(row);
  }
  table.print();

  if (cli.slow > 0) {
    // Re-run the first policy with tracing to show the slowest requests.
    sim::Engine engine;
    cluster::Cluster cluster = cluster::Cluster::paper_testbed();
    Rng rng(cli.seed);
    serverless::PlatformOptions popt;
    popt.record_traces = true;
    serverless::Platform platform(engine, cluster, perf::Pricing{}, rng, popt);
    const auto id = platform.deploy(
        app, baselines::make_policy(resolve_policies(cli.policy)[0], app, store, settings));
    for (SimTime t : trace.arrivals) platform.submit_request(id, t);
    const double end = static_cast<double>(trace.counts.size()) + 120.0;
    engine.run_until(end);
    platform.finalize(end);
    auto traces = platform.metrics(id).traces;
    std::sort(traces.begin(), traces.end(),
              [](const auto& a, const auto& b) { return a.e2e() > b.e2e(); });
    std::cout << "\n=== " << cli.slow << " slowest requests ===\n";
    for (int i = 0; i < cli.slow && i < static_cast<int>(traces.size()); ++i)
      std::cout << serverless::format_trace(traces[i], app.dag);
  }
  return 0;
}
