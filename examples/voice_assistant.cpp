// Voice Assistant (WL3) head-to-head: serve the same trace under SMIless and
// the four baselines and compare cost, latency and cold-start behaviour —
// a miniature of the paper's Fig. 8/9 on one workload.
#include <iostream>

#include "apps/catalog.hpp"
#include "baselines/experiment.hpp"
#include "common/table.hpp"
#include "math/stats.hpp"

using namespace smiless;

int main() {
  const apps::App app = apps::make_voice_assistant(/*sla=*/2.0);
  Rng rng(21);
  auto trace_options = workload::preset_for_workload(app.name, 420.0);
  const workload::Trace trace = workload::generate_trace(trace_options, rng);
  std::cout << "Serving " << trace.total_invocations() << " requests over "
            << trace.counts.size() << " s\n\n";

  Rng profile_rng(22);
  baselines::ProfileStore store{profiler::OfflineProfiler{}, profile_rng};
  baselines::PolicySettings settings;
  settings.use_lstm = true;
  settings.oracle_trace = &trace;
  baselines::ExperimentOptions run_options;

  TextTable t({"Policy", "cost ($)", "p50 E2E (s)", "p99 E2E (s)", "violations", "inits"});
  for (const auto kind :
       {baselines::PolicyKind::Smiless, baselines::PolicyKind::GrandSlam,
        baselines::PolicyKind::IceBreaker, baselines::PolicyKind::Orion,
        baselines::PolicyKind::Aquatope, baselines::PolicyKind::Opt}) {
    const auto r = baselines::run_experiment(
        app, trace, baselines::make_policy(kind, app, store, settings), run_options);
    t.add_row({r.policy, TextTable::num(r.cost, 4), TextTable::num(math::percentile(r.e2e, 50), 2),
               TextTable::num(math::percentile(r.e2e, 99), 2),
               TextTable::num(100 * r.violation_ratio, 1) + "%",
               std::to_string(r.initializations)});
  }
  t.print();
  return 0;
}
