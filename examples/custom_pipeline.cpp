// Bring-your-own application: define a custom DAG with your own measured
// latency anchors (no catalog entries), profile it, and let SMIless plan and
// serve it. This is the path a downstream user takes for a new workload.
#include <iostream>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "baselines/experiment.hpp"
#include "common/table.hpp"
#include "core/smiless_policy.hpp"
#include "core/workflow_manager.hpp"

using namespace smiless;

namespace {

/// Describe a function by four measured anchors: batch-1 latency on 1 and
/// 16 CPU cores, and on a 10% and 100% GPU slice, plus mean init times.
perf::FunctionPerf make_function(const std::string& name, double cpu1, double cpu16,
                                 double gpu10, double gpu100, double init_cpu,
                                 double init_gpu) {
  perf::FunctionPerf f;
  f.name = name;
  f.cpu = apps::cpu_params_from_anchors(cpu1, cpu16);
  f.gpu = apps::gpu_params_from_anchors(gpu10, gpu100);
  f.init_cpu = {init_cpu, 0.08 * init_cpu};
  f.init_gpu = {init_gpu, 0.10 * init_gpu};
  return f;
}

}  // namespace

int main() {
  // A document-processing pipeline: OCR fans into layout analysis and
  // entity extraction, both feeding a summariser.
  apps::App app;
  app.name = "doc-pipeline";
  app.sla = 2.0;

  const auto ocr = app.dag.add_node("OCR");
  app.truth.push_back(make_function("OCR", 0.80, 0.075, 0.070, 0.010, 1.2, 4.5));
  const auto layout = app.dag.add_node("Layout");
  app.truth.push_back(make_function("Layout", 0.50, 0.048, 0.045, 0.007, 1.0, 4.0));
  const auto entities = app.dag.add_node("Entities");
  app.truth.push_back(make_function("Entities", 0.65, 0.060, 0.055, 0.008, 1.1, 4.2));
  const auto summary = app.dag.add_node("Summarise");
  app.truth.push_back(make_function("Summarise", 1.60, 0.150, 0.135, 0.017, 1.8, 6.0));
  app.dag.add_edge(ocr, layout);
  app.dag.add_edge(ocr, entities);
  app.dag.add_edge(layout, summary);
  app.dag.add_edge(entities, summary);

  std::cout << app.dag.to_dot("doc_pipeline") << "\n";

  // Plan with the ground truth directly (or run the OfflineProfiler first,
  // as quickstart.cpp does).
  core::WorkflowManager manager{core::StrategyOptimizer{}};
  const auto plan = manager.optimize(app.dag, app.truth, /*interarrival=*/3.0, app.sla);
  TextTable t({"Function", "config", "mode", "I (s)", "cost/invocation ($1e-4)"});
  for (std::size_t n = 0; n < plan.per_node.size(); ++n) {
    const auto& d = plan.per_node[n];
    t.add_row({app.dag.name(static_cast<dag::NodeId>(n)), d.config.to_string(),
               d.mode == core::ColdStartMode::Prewarm ? "prewarm" : "keep-alive",
               TextTable::num(d.inference_time, 3),
               TextTable::num(d.cost_per_invocation * 1e4, 3)});
  }
  t.print();
  std::cout << "Planned E2E " << TextTable::num(plan.e2e_latency, 3) << " s (SLA " << app.sla
            << " s), feasible: " << (plan.feasible ? "yes" : "no") << "\n\n";

  // And serve a short trace end-to-end.
  Rng rng(3);
  workload::TraceOptions trace_options;
  trace_options.duration = 400.0;
  trace_options.mean_rate = 0.33;
  const auto trace = workload::generate_trace(trace_options, rng);

  sim::Engine engine;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed();
  serverless::Platform platform(engine, cluster, perf::Pricing{}, rng);
  core::SmilessOptions options;
  options.use_lstm = false;
  auto policy = std::make_shared<core::SmilessPolicy>("SMIless", app.truth, options);
  const auto id = platform.deploy(app, policy);
  for (SimTime at : trace.arrivals) platform.submit_request(id, at);
  engine.run_until(460.0);
  platform.finalize(460.0);

  const auto& m = platform.metrics(id);
  std::cout << "Served " << m.completed.size() << " requests, cost $"
            << TextTable::num(m.total_cost(), 5) << ", violations "
            << TextTable::num(100 * m.sla_violation_ratio(app.sla), 1) << "%\n";
  return 0;
}
