// Burst scaling demo: watch SMIless' Auto-scaler react to a 24x load spike —
// adaptive batching (Eq. 7/8), instance-fleet sizing, and the fall-back to
// base plans once the burst passes (the live view behind Fig. 14).
#include <iostream>

#include "apps/catalog.hpp"
#include "baselines/experiment.hpp"
#include "common/table.hpp"
#include "core/autoscaler.hpp"

using namespace smiless;

int main() {
  const apps::App app = apps::make_image_query(/*sla=*/2.0);
  Rng rng(5);
  const workload::Trace trace = workload::generate_burst_window(0.5, 12.0, rng);

  Rng profile_rng(6);
  baselines::ProfileStore store{profiler::OfflineProfiler{}, profile_rng};

  // First, the Auto-scaler's raw answers: how batch size and fleet size move
  // with the predicted invocation count for one function.
  const auto& ir = store.fitted("IR");
  core::AutoScaler scaler(perf::default_config_space(), perf::Pricing{});
  std::cout << "=== Auto-scaler answers for IR (latency budget 0.4 s) ===\n";
  TextTable plans({"predicted G", "config", "batch B", "instances", "batch latency (s)"});
  for (int g : {1, 4, 12, 32, 96}) {
    const auto d = scaler.solve(ir, g, 0.4, 1.0);
    plans.add_row({std::to_string(g), d.config.to_string(), std::to_string(d.batch),
                   std::to_string(d.instances), TextTable::num(d.batch_latency, 3)});
  }
  plans.print();

  // Then the live platform view through the burst.
  baselines::PolicySettings settings;
  settings.use_lstm = false;
  baselines::ExperimentOptions run_options;
  const auto r = baselines::run_experiment(
      app, trace, baselines::make_policy(baselines::PolicyKind::Smiless, app, store, settings),
      run_options);

  std::cout << "\n=== Pods vs invocations through the burst ===\n";
  TextTable live({"t (s)", "invocations", "pods", "CPU", "GPU"});
  for (const auto& w : r.windows) {
    if (w.window_start >= 60.0) break;
    live.add_row({TextTable::num(w.window_start, 0), std::to_string(w.arrivals),
                  std::to_string(w.instances_total), std::to_string(w.instances_cpu),
                  std::to_string(w.instances_gpu)});
  }
  live.print();
  std::cout << "\nServed " << r.submitted << " requests at $" << TextTable::num(r.cost, 4)
            << " with " << TextTable::num(100 * r.violation_ratio, 1) << "% violations.\n";
  return 0;
}
