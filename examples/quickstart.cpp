// Quickstart: profile the model catalog, deploy the Voice Assistant
// pipeline under SMIless, replay a 5-minute Azure-like trace, and print the
// books. This is the smallest end-to-end use of the public API:
//
//   catalog -> OfflineProfiler -> SmilessPolicy -> Platform -> metrics
#include <iostream>

#include "apps/catalog.hpp"
#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "core/smiless_policy.hpp"
#include "math/stats.hpp"
#include "profiler/offline_profiler.hpp"
#include "serverless/platform.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

using namespace smiless;

int main() {
  // 1. The application: SR -> DB -> QA -> TTS with a 2 s end-to-end SLA.
  const apps::App app = apps::make_voice_assistant(/*sla=*/2.0);
  std::cout << "Deploying " << app.name << " (" << app.dag.size() << " functions)\n"
            << app.dag.to_dot() << '\n';

  // 2. Offline profiling: fit Eq. (1)/(2) latency models and mu+n*sigma
  //    init estimates for every function the app uses.
  Rng rng(7);
  profiler::OfflineProfiler profiler;
  std::vector<perf::FunctionPerf> fitted;
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    fitted.push_back(profiler.profile(app.perf_of(static_cast<dag::NodeId>(n)), rng).fitted);

  // 3. The serving substrate: the paper's 8-machine cluster inside a
  //    discrete-event engine.
  sim::Engine engine;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed();
  serverless::Platform platform(engine, cluster, perf::Pricing{}, rng);

  // 4. SMIless.
  core::SmilessOptions options;  // defaults: adaptive pre-warming, LSTM predictors
  auto policy = std::make_shared<core::SmilessPolicy>("SMIless", fitted, options);
  const serverless::AppId id = platform.deploy(app, policy);

  // 5. Replay a 5-minute trace of user requests.
  auto trace_options = workload::preset_for_workload(app.name, 300.0);
  const workload::Trace trace = workload::generate_trace(trace_options, rng);
  for (SimTime t : trace.arrivals) platform.submit_request(id, t);
  engine.run_until(360.0);
  platform.finalize(360.0);

  // 6. The books.
  const auto& m = platform.metrics(id);
  std::vector<double> e2e;
  for (const auto& r : m.completed) e2e.push_back(r.e2e());
  TextTable summary({"metric", "value"});
  summary.add_row({"requests served", std::to_string(m.completed.size())});
  summary.add_row({"total cost ($)", TextTable::num(m.total_cost(), 5)});
  summary.add_row({"median E2E (s)", TextTable::num(math::percentile(e2e, 50), 3)});
  summary.add_row({"p99 E2E (s)", TextTable::num(math::percentile(e2e, 99), 3)});
  summary.add_row({"SLA violations", TextTable::num(100 * m.sla_violation_ratio(app.sla), 1) + "%"});
  summary.add_row({"container inits", std::to_string(m.total_initializations())});
  summary.print();
  return 0;
}
