// Request-trace inspector: run the Image-Query workflow with per-request
// tracing enabled (the Prometheus-event equivalent of §IV-A) and print the
// spans of the slowest requests — which stage waited, whether the wait was a
// cold start, and how batching grouped invocations. This is the debugging
// view an operator uses to see *why* a request violated its SLA.
#include <algorithm>
#include <iostream>

#include "apps/catalog.hpp"
#include "baselines/experiment.hpp"
#include "common/table.hpp"
#include "core/smiless_policy.hpp"
#include "serverless/tracing.hpp"

using namespace smiless;

int main() {
  const apps::App app = apps::make_image_query(/*sla=*/2.0);
  Rng rng(41);
  auto trace_options = workload::preset_for_workload(app.name, 300.0);
  const workload::Trace trace = workload::generate_trace(trace_options, rng);

  Rng profile_rng(42);
  baselines::ProfileStore store{profiler::OfflineProfiler{}, profile_rng};

  sim::Engine engine;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed();
  Rng platform_rng(43);
  serverless::PlatformOptions options;
  options.record_traces = true;
  serverless::Platform platform(engine, cluster, perf::Pricing{}, platform_rng, options);

  core::SmilessOptions policy_options;
  policy_options.use_lstm = false;
  auto policy =
      std::make_shared<core::SmilessPolicy>("SMIless", store.for_app(app), policy_options);
  const auto id = platform.deploy(app, policy);
  for (SimTime t : trace.arrivals) platform.submit_request(id, t);
  engine.run_until(360.0);
  platform.finalize(360.0);

  auto traces = platform.metrics(id).traces;
  std::cout << "Recorded " << traces.size() << " request traces.\n";

  std::sort(traces.begin(), traces.end(), [](const auto& a, const auto& b) {
    return a.e2e() > b.e2e();
  });
  std::cout << "\n=== Three slowest requests ===\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(3, traces.size()); ++i)
    std::cout << serverless::format_trace(traces[i], app.dag);

  // Aggregate wait/cold statistics per stage.
  std::cout << "=== Per-stage cold/wait summary ===\n";
  TextTable table({"Stage", "executions", "cold", "mean wait (ms)", "max wait (ms)"});
  for (std::size_t n = 0; n < app.dag.size(); ++n) {
    long execs = 0, cold = 0;
    double wait_sum = 0.0, wait_max = 0.0;
    for (const auto& t : traces) {
      for (const auto& s : t.spans) {
        if (s.node != static_cast<dag::NodeId>(n)) continue;
        ++execs;
        if (s.cold) ++cold;
        wait_sum += s.wait();
        wait_max = std::max(wait_max, s.wait());
      }
    }
    table.add_row({app.dag.name(static_cast<dag::NodeId>(n)), std::to_string(execs),
                   std::to_string(cold), TextTable::num(1000 * wait_sum / std::max<long>(execs, 1), 1),
                   TextTable::num(1000 * wait_max, 1)});
  }
  table.print();
  return 0;
}
