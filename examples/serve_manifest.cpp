// Serve an application described by a text manifest against a CSV trace —
// the "developer submits an application" flow of §III, end to end:
//
//   serve_manifest [manifest-file] [trace.csv]
//
// Without arguments it writes a sample manifest and trace to /tmp and serves
// those, so it is runnable out of the box.
#include <fstream>
#include <iostream>
#include <sstream>

#include "apps/serialize.hpp"
#include "baselines/experiment.hpp"
#include "common/table.hpp"
#include "core/smiless_policy.hpp"
#include "math/stats.hpp"
#include "workload/trace_io.hpp"

using namespace smiless;

namespace {

constexpr const char* kSampleManifest =
    "# conversational assistant: speech -> understanding -> answer -> speech\n"
    "app sample-assistant\n"
    "sla 2.0\n"
    "fn listen SR\n"
    "fn understand DB\n"
    "fn answer QA\n"
    "fn speak TTS\n"
    "edge listen understand\n"
    "edge understand answer\n"
    "edge answer speak\n";

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  SMILESS_CHECK_MSG(is.good(), "cannot open " << path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path, trace_path;
  if (argc >= 3) {
    manifest_path = argv[1];
    trace_path = argv[2];
  } else {
    // Self-contained demo: materialise a sample manifest and trace.
    manifest_path = "/tmp/smiless_sample_app.txt";
    trace_path = "/tmp/smiless_sample_trace.csv";
    std::ofstream(manifest_path) << kSampleManifest;
    Rng rng(55);
    auto options = workload::preset_for_workload("WL3", 300.0);
    workload::save_csv_file(workload::generate_trace(options, rng), trace_path);
    std::cout << "No arguments given — using a generated sample:\n  manifest: "
              << manifest_path << "\n  trace:    " << trace_path << "\n\n";
  }

  const apps::App app = apps::parse_app(read_file(manifest_path));
  const workload::Trace trace = workload::load_csv_file(trace_path);
  std::cout << "Serving '" << app.name << "' (" << app.dag.size() << " functions, SLA "
            << app.sla << " s) against " << trace.total_invocations() << " requests\n"
            << app.dag.to_dot(app.name) << '\n';

  // Profile the functions the manifest references, then serve under SMIless.
  Rng rng(56);
  profiler::OfflineProfiler profiler;
  std::vector<perf::FunctionPerf> fitted;
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    fitted.push_back(profiler.profile(app.perf_of(static_cast<dag::NodeId>(n)), rng).fitted);

  baselines::ExperimentOptions run_options;
  core::SmilessOptions policy_options;
  auto policy = std::make_shared<core::SmilessPolicy>("SMIless", fitted, policy_options);
  const auto result = baselines::run_experiment(app, trace, policy, run_options);

  TextTable summary({"metric", "value"});
  summary.add_row({"requests", std::to_string(result.submitted)});
  summary.add_row({"completed", std::to_string(result.completed)});
  summary.add_row({"total cost ($)", TextTable::num(result.cost, 5)});
  summary.add_row({"median E2E (s)", TextTable::num(math::percentile(result.e2e, 50), 3)});
  summary.add_row({"p99 E2E (s)", TextTable::num(math::percentile(result.e2e, 99), 3)});
  summary.add_row({"SLA violations", TextTable::num(100 * result.violation_ratio, 1) + "%"});
  summary.add_row({"container inits", std::to_string(result.initializations)});
  summary.print();
  return 0;
}
