// AMBER Alert (WL1): the branchiest of the paper's workloads — OD fans out
// to three recognisers that rejoin at NER before translation. This example
// shows the Workflow Manager's DAG handling: decomposition into simple
// paths, fork/join detection, and the per-function decisions (hardware +
// cold-start mode + pre-warm offsets) SMIless derives for it.
#include <iostream>

#include "apps/catalog.hpp"
#include "baselines/experiment.hpp"
#include "common/table.hpp"
#include "core/workflow_manager.hpp"

using namespace smiless;

int main() {
  const apps::App app = apps::make_amber_alert(/*sla=*/2.0);
  std::cout << app.dag.to_dot("amber_alert") << '\n';

  std::cout << "Decomposed simple paths (the units the Strategy Optimizer solves):\n";
  for (const auto& path : app.dag.all_paths()) {
    std::cout << "  ";
    for (std::size_t i = 0; i < path.size(); ++i)
      std::cout << (i ? " -> " : "") << app.dag.name(path[i]);
    std::cout << '\n';
  }
  for (const auto& fj : app.dag.fork_join_pairs())
    std::cout << "Fork/join: " << app.dag.name(fj.fork) << " .. " << app.dag.name(fj.join)
              << " with " << fj.branches.size() << " branches\n";

  // Profile, then co-optimize for a few inter-arrival regimes.
  Rng rng(11);
  baselines::ProfileStore store{profiler::OfflineProfiler{}, rng};
  const auto fitted = store.for_app(app);
  core::WorkflowManager manager{core::StrategyOptimizer{}};

  for (double it : {0.5, 2.0, 30.0}) {
    const auto solution = manager.optimize(app.dag, fitted, it, app.sla);
    std::cout << "\n=== inter-arrival " << it << " s: planned E2E "
              << TextTable::num(solution.e2e_latency, 3) << " s, cost/invocation $"
              << TextTable::num(solution.cost_per_invocation * 1e4, 3) << "e-4 ===\n";
    TextTable t({"Function", "config", "mode", "I_k (s)", "T_k (s)", "start offset D_k (s)"});
    for (std::size_t n = 0; n < solution.per_node.size(); ++n) {
      const auto& d = solution.per_node[n];
      t.add_row({app.dag.name(static_cast<dag::NodeId>(n)), d.config.to_string(),
                 d.mode == core::ColdStartMode::Prewarm ? "prewarm" : "keep-alive",
                 TextTable::num(d.inference_time, 3), TextTable::num(d.init_time, 3),
                 TextTable::num(solution.start_offset[n], 3)});
    }
    t.print();
  }
  std::cout << "\nNote how sparse arrivals (30 s) flip functions into pre-warm mode, while\n"
               "tight arrivals keep them alive, and how the three recognisers share one\n"
               "start offset (they run in parallel after OD).\n";
  return 0;
}
