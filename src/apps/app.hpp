#pragma once

#include <string>
#include <vector>

#include "dag/dag.hpp"
#include "perfmodel/latency_model.hpp"

namespace smiless::apps {

/// A deployable ML serving application: a DAG of inference functions plus
/// the ground-truth performance surface of each function (indexed by the
/// DAG node id) and its SLA target for end-to-end latency.
struct App {
  std::string name;
  dag::Dag dag;
  std::vector<perf::FunctionPerf> truth;
  double sla = 2.0;  ///< seconds (§VII-A default)

  const perf::FunctionPerf& perf_of(dag::NodeId n) const {
    SMILESS_CHECK(n >= 0 && static_cast<std::size_t>(n) < truth.size());
    return truth[n];
  }
};

}  // namespace smiless::apps
