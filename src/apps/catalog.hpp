#pragma once

#include <string>
#include <vector>

#include "apps/app.hpp"
#include "perfmodel/latency_model.hpp"

namespace smiless::apps {

/// Ground-truth performance profiles for the twelve inference functions of
/// Table I. The surfaces follow the paper's own Amdahl-law parameterisation
/// (Eq. 1/2) and are calibrated to the paper's anchors: roughly 10x warm
/// speedup on a full GPU vs a 16-core CPU, GPU initialization several times
/// the CPU's (Fig. 2), and sub-second warm inference so that 4–6 stage DAGs
/// can meet a 2 s SLA on upgraded hardware.
///
/// Short names: IR, FR, HAP, DB, NER, TM, TRS, TG, SR, TTS, OD, QA.
const std::vector<perf::FunctionPerf>& model_catalog();

/// Catalog entry by short name; throws CheckError if unknown.
const perf::FunctionPerf& model_by_name(const std::string& name);

/// Derive Eq. (1) parameters from two anchor latencies (batch 1):
/// latency on 1 core and on 16 cores, with fixed gamma/lambda. Checks that
/// the derived alpha/beta are positive.
perf::AmdahlParams cpu_params_from_anchors(double cpu1_latency, double cpu16_latency,
                                           double gamma = 0.010, double lambda = 1.05);

/// Derive Eq. (2) parameters from latencies at 10% and 100% GPU.
perf::AmdahlParams gpu_params_from_anchors(double gpu10_latency, double gpu100_latency,
                                           double gamma = 0.002, double lambda = 1.0);

/// WL1 "AMBER Alert": OD -> {IR, FR, HAP} -> NER -> TRS (parallel branches).
App make_amber_alert(double sla = 2.0);

/// WL2 "Image-Query": IR -> {DB, TM} -> QA -> TG.
App make_image_query(double sla = 2.0);

/// WL3 "Voice Assistant": SR -> DB -> QA -> TTS (pipeline, Fig. 1).
App make_voice_assistant(double sla = 2.0);

/// The intelligent-personal-assistant pipeline of Fig. 1 (answers questions
/// about images): {DB, IR} in parallel -> QA -> TTS.
App make_ipa(double sla = 2.0);

/// All three evaluation workloads in the paper's order.
std::vector<App> make_all_workloads(double sla = 2.0);

/// A synthetic pure pipeline of `n` stages cycling through the catalog —
/// used by the Fig. 16 overhead benchmark (longest path length sweep).
App make_synthetic_pipeline(std::size_t n, double sla);

/// A synthetic fork/join ladder: `depth` fork/join stages, each fanning out
/// to `width` parallel functions. Stresses the Workflow Manager's path
/// decomposition (paths grow as width^depth).
App make_synthetic_fanout(std::size_t width, std::size_t depth, double sla);

}  // namespace smiless::apps
