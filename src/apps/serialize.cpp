#include "apps/serialize.hpp"

#include <sstream>

#include "apps/catalog.hpp"
#include "common/check.hpp"

namespace smiless::apps {

App parse_app(const std::string& manifest) {
  App app;
  std::istringstream is(manifest);
  std::string line;
  int line_no = 0;
  bool saw_app = false;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;

    if (directive == "app") {
      SMILESS_CHECK_MSG(static_cast<bool>(ls >> app.name),
                        "line " << line_no << ": app needs a name");
      saw_app = true;
    } else if (directive == "sla") {
      SMILESS_CHECK_MSG(static_cast<bool>(ls >> app.sla) && app.sla > 0.0,
                        "line " << line_no << ": sla needs a positive number");
    } else if (directive == "fn") {
      std::string node, model;
      SMILESS_CHECK_MSG(static_cast<bool>(ls >> node >> model),
                        "line " << line_no << ": fn needs <node> <model>");
      app.dag.add_node(node);
      app.truth.push_back(model_by_name(model));  // throws on unknown model
    } else if (directive == "edge") {
      std::string from, to;
      SMILESS_CHECK_MSG(static_cast<bool>(ls >> from >> to),
                        "line " << line_no << ": edge needs two node names");
      const dag::NodeId u = app.dag.find(from);
      const dag::NodeId v = app.dag.find(to);
      SMILESS_CHECK_MSG(u >= 0, "line " << line_no << ": unknown node " << from);
      SMILESS_CHECK_MSG(v >= 0, "line " << line_no << ": unknown node " << to);
      app.dag.add_edge(u, v);
    } else {
      SMILESS_CHECK_MSG(false, "line " << line_no << ": unknown directive " << directive);
    }
  }
  SMILESS_CHECK_MSG(saw_app, "manifest missing the 'app <name>' directive");
  SMILESS_CHECK_MSG(app.dag.size() > 0, "manifest declares no functions");
  return app;
}

std::string to_manifest(const App& app) {
  std::ostringstream os;
  os << "app " << app.name << "\n";
  os << "sla " << app.sla << "\n";
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    os << "fn " << app.dag.name(static_cast<dag::NodeId>(n)) << " " << app.truth[n].name
       << "\n";
  for (std::size_t u = 0; u < app.dag.size(); ++u)
    for (dag::NodeId v : app.dag.successors(static_cast<dag::NodeId>(u)))
      os << "edge " << app.dag.name(static_cast<dag::NodeId>(u)) << " " << app.dag.name(v)
         << "\n";
  return os.str();
}

}  // namespace smiless::apps
