#pragma once

#include <string>

#include "apps/app.hpp"

namespace smiless::apps {

/// Application manifest format — what a developer submits to the platform
/// (the deployment-YAML equivalent of §III's submission flow). One
/// directive per line, '#' comments:
///
///   app  <name>
///   sla  <seconds>
///   fn   <node-name> <catalog-model>     # e.g.  fn speech SR
///   edge <from-node> <to-node>
///
/// Functions resolve against the Table-I model catalog.
App parse_app(const std::string& manifest);

/// Render an app whose functions are catalog models back to the manifest
/// format (functions are matched to the catalog by their profile name).
std::string to_manifest(const App& app);

}  // namespace smiless::apps
