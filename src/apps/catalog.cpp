#include "apps/catalog.hpp"

#include "common/check.hpp"

namespace smiless::apps {

perf::AmdahlParams cpu_params_from_anchors(double cpu1_latency, double cpu16_latency,
                                           double gamma, double lambda) {
  SMILESS_CHECK(cpu1_latency > cpu16_latency && cpu16_latency > gamma);
  // cpu1  = lambda*(alpha + beta) + gamma
  // cpu16 = lambda*(alpha/16 + beta) + gamma
  const double alpha = (cpu1_latency - cpu16_latency) / (lambda * (1.0 - 1.0 / 16.0));
  const double beta = (cpu1_latency - gamma) / lambda - alpha;
  SMILESS_CHECK_MSG(alpha > 0.0 && beta > 0.0, "CPU anchors produce invalid Amdahl params");
  return {lambda, alpha, beta, gamma};
}

perf::AmdahlParams gpu_params_from_anchors(double gpu10_latency, double gpu100_latency,
                                           double gamma, double lambda) {
  SMILESS_CHECK(gpu10_latency > gpu100_latency && gpu100_latency > gamma);
  // gpu10  = lambda*(alpha/10  + beta) + gamma
  // gpu100 = lambda*(alpha/100 + beta) + gamma
  const double alpha = (gpu10_latency - gpu100_latency) / (lambda * (0.1 - 0.01));
  const double beta = (gpu100_latency - gamma) / lambda - alpha / 100.0;
  SMILESS_CHECK_MSG(alpha > 0.0 && beta > 0.0, "GPU anchors produce invalid Amdahl params");
  return {lambda, alpha, beta, gamma};
}

namespace {

perf::FunctionPerf make_fn(const std::string& name, double cpu1, double cpu16, double gpu10,
                           double gpu100, double init_cpu_mu, double init_gpu_mu) {
  perf::FunctionPerf f;
  f.name = name;
  f.cpu = cpu_params_from_anchors(cpu1, cpu16);
  f.gpu = gpu_params_from_anchors(gpu10, gpu100);
  f.init_cpu = {init_cpu_mu, 0.08 * init_cpu_mu};
  f.init_gpu = {init_gpu_mu, 0.10 * init_gpu_mu};
  return f;
}

std::vector<perf::FunctionPerf> build_catalog() {
  // Anchors (seconds, batch 1):      cpu1   cpu16  gpu10  gpu100 initC initG
  return {
      make_fn("IR",  /*ResNet50   */ 1.20, 0.110, 0.100, 0.0130, 1.8, 6.0),
      make_fn("FR",  /*FaceNet    */ 1.00, 0.095, 0.090, 0.0120, 1.6, 5.5),
      make_fn("HAP", /*pose       */ 1.40, 0.130, 0.120, 0.0150, 1.8, 6.2),
      make_fn("DB",  /*DistilBERT */ 0.90, 0.085, 0.080, 0.0110, 1.5, 5.0),
      make_fn("NER", /*Flair      */ 1.10, 0.100, 0.095, 0.0125, 1.7, 5.6),
      make_fn("TM",  /*TweetEval  */ 0.80, 0.075, 0.070, 0.0100, 1.4, 4.8),
      make_fn("TRS", /*T5         */ 2.40, 0.220, 0.200, 0.0230, 2.5, 8.0),
      make_fn("TG",  /*GPT-2      */ 2.00, 0.190, 0.170, 0.0200, 2.2, 7.5),
      make_fn("SR",  /*Wav2Vec    */ 1.60, 0.150, 0.135, 0.0165, 2.0, 6.5),
      make_fn("TTS", /*FastSpeech */ 1.30, 0.120, 0.110, 0.0140, 1.9, 6.0),
      make_fn("OD",  /*YOLOv5     */ 1.50, 0.140, 0.125, 0.0155, 1.9, 6.3),
      make_fn("QA",  /*RoBERTa    */ 1.00, 0.095, 0.085, 0.0115, 1.6, 5.2),
  };
}

}  // namespace

const std::vector<perf::FunctionPerf>& model_catalog() {
  static const std::vector<perf::FunctionPerf> catalog = build_catalog();
  return catalog;
}

const perf::FunctionPerf& model_by_name(const std::string& name) {
  for (const auto& f : model_catalog())
    if (f.name == name) return f;
  SMILESS_CHECK_MSG(false, "unknown model: " << name);
  // unreachable; silences the compiler
  return model_catalog().front();
}

namespace {

/// Add the named catalog function as a DAG node and record its profile.
dag::NodeId add_fn(App& app, const std::string& name) {
  const dag::NodeId id = app.dag.add_node(name);
  app.truth.push_back(model_by_name(name));
  return id;
}

}  // namespace

App make_amber_alert(double sla) {
  App app;
  app.name = "WL1-AMBER-Alert";
  app.sla = sla;
  const auto od = add_fn(app, "OD");
  const auto ir = add_fn(app, "IR");
  const auto fr = add_fn(app, "FR");
  const auto hap = add_fn(app, "HAP");
  const auto ner = add_fn(app, "NER");
  const auto trs = add_fn(app, "TRS");
  app.dag.add_edge(od, ir);
  app.dag.add_edge(od, fr);
  app.dag.add_edge(od, hap);
  app.dag.add_edge(ir, ner);
  app.dag.add_edge(fr, ner);
  app.dag.add_edge(hap, ner);
  app.dag.add_edge(ner, trs);
  return app;
}

App make_image_query(double sla) {
  App app;
  app.name = "WL2-Image-Query";
  app.sla = sla;
  const auto ir = add_fn(app, "IR");
  const auto db = add_fn(app, "DB");
  const auto tm = add_fn(app, "TM");
  const auto qa = add_fn(app, "QA");
  const auto tg = add_fn(app, "TG");
  app.dag.add_edge(ir, db);
  app.dag.add_edge(ir, tm);
  app.dag.add_edge(db, qa);
  app.dag.add_edge(tm, qa);
  app.dag.add_edge(qa, tg);
  return app;
}

App make_voice_assistant(double sla) {
  App app;
  app.name = "WL3-Voice-Assistant";
  app.sla = sla;
  const auto sr = add_fn(app, "SR");
  const auto db = add_fn(app, "DB");
  const auto qa = add_fn(app, "QA");
  const auto tts = add_fn(app, "TTS");
  app.dag.add_edge(sr, db);
  app.dag.add_edge(db, qa);
  app.dag.add_edge(qa, tts);
  return app;
}

App make_ipa(double sla) {
  App app;
  app.name = "IPA";
  app.sla = sla;
  const auto db = add_fn(app, "DB");
  const auto ir = add_fn(app, "IR");
  const auto qa = add_fn(app, "QA");
  const auto tts = add_fn(app, "TTS");
  app.dag.add_edge(db, qa);
  app.dag.add_edge(ir, qa);
  app.dag.add_edge(qa, tts);
  return app;
}

std::vector<App> make_all_workloads(double sla) {
  return {make_amber_alert(sla), make_image_query(sla), make_voice_assistant(sla)};
}

App make_synthetic_pipeline(std::size_t n, double sla) {
  SMILESS_CHECK(n >= 1);
  App app;
  app.name = "synthetic-pipeline-" + std::to_string(n);
  app.sla = sla;
  const auto& catalog = model_catalog();
  dag::NodeId prev = -1;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& fn = catalog[i % catalog.size()];
    const dag::NodeId id = app.dag.add_node(fn.name + "#" + std::to_string(i));
    app.truth.push_back(fn);
    if (prev >= 0) app.dag.add_edge(prev, id);
    prev = id;
  }
  return app;
}

App make_synthetic_fanout(std::size_t width, std::size_t depth, double sla) {
  SMILESS_CHECK(width >= 1 && depth >= 1);
  App app;
  app.name = "synthetic-fanout-" + std::to_string(width) + "x" + std::to_string(depth);
  app.sla = sla;
  const auto& catalog = model_catalog();
  std::size_t counter = 0;
  auto fresh = [&](const char* tag) {
    const auto& fn = catalog[counter % catalog.size()];
    const dag::NodeId id = app.dag.add_node(fn.name + "#" + tag + std::to_string(counter));
    app.truth.push_back(fn);
    ++counter;
    return id;
  };

  dag::NodeId join = fresh("s");
  for (std::size_t d = 0; d < depth; ++d) {
    const dag::NodeId fork = join;
    std::vector<dag::NodeId> branches;
    for (std::size_t w = 0; w < width; ++w) {
      const dag::NodeId b = fresh("b");
      app.dag.add_edge(fork, b);
      branches.push_back(b);
    }
    join = fresh("j");
    for (dag::NodeId b : branches) app.dag.add_edge(b, join);
  }
  return app;
}

}  // namespace smiless::apps
