#pragma once

#include "serverless/platform.hpp"

namespace smiless::serverless {

/// Capability-scoped facade over one Platform, handed to Policy callbacks in
/// place of the full `Platform&`. It exposes exactly the surface a policy
/// legitimately needs — the plan / prewarm / scale control operations and
/// per-app introspection — and withholds the run-lifecycle operations
/// (deploy, submit_request, finalize) and the raw Ledger. Inside a sharded
/// cell every lane's platform hands out its own view, so a policy can never
/// observe or mutate cross-lane state (DESIGN.md §14).
///
/// Views are value types over a borrowed Platform: trivially copyable, one
/// pointer wide, constructed fresh at each callback site.
class PlatformView {
 public:
  explicit PlatformView(Platform& platform) : platform_(&platform) {}

  // --- control surface ------------------------------------------------------

  /// Replace the plan of one function. Config changes apply to future
  /// instances; existing mismatched instances are reaped when next idle.
  void set_plan(AppId app, dag::NodeId node, FunctionPlan plan) {
    platform_->set_plan(app, node, plan);
  }
  const FunctionPlan& plan(AppId app, dag::NodeId node) const {
    return platform_->plan(app, node);
  }

  /// Schedule a pre-warm: at `init_start`, create a fresh instance (cold
  /// init begins then) unless the function already has a non-busy instance.
  sim::EventId prewarm_at(AppId app, dag::NodeId node, SimTime init_start) {
    return platform_->prewarm_at(app, node, init_start);
  }
  void cancel_prewarm(sim::EventId id) { platform_->cancel_prewarm(id); }
  void clear_prewarms(AppId app, dag::NodeId node) { platform_->clear_prewarms(app, node); }

  /// Force-create one instance now (cold). Returns false if the cluster had
  /// no capacity.
  bool spawn_instance(AppId app, dag::NodeId node) {
    return platform_->spawn_instance(app, node);
  }

  // --- introspection --------------------------------------------------------

  SimTime now() const { return platform_->now(); }
  /// Lane id of the hosting platform (0 unless sharded).
  int lane() const { return platform_->lane(); }
  const apps::App& app_spec(AppId app) const { return platform_->app_spec(app); }
  int instances_total(AppId app, dag::NodeId node) const {
    return platform_->instances_total(app, node);
  }
  int instances_idle(AppId app, dag::NodeId node) const {
    return platform_->instances_idle(app, node);
  }
  int instances_initializing(AppId app, dag::NodeId node) const {
    return platform_->instances_initializing(app, node);
  }
  int instances_busy(AppId app, dag::NodeId node) const {
    return platform_->instances_busy(app, node);
  }
  std::size_t queue_length(AppId app, dag::NodeId node) const {
    return platform_->queue_length(app, node);
  }
  const AppMetrics& metrics(AppId app) const { return platform_->metrics(app); }
  long in_flight(AppId app) const { return platform_->in_flight(app); }
  const std::vector<int>& arrival_counts(AppId app) const {
    return platform_->arrival_counts(app);
  }

 private:
  friend class Policy;  // the deprecated-shim defaults unwrap the view

  /// @deprecated Escape hatch for the one-release Platform& shims in
  /// Policy; goes away with them.
  Platform& unscoped() const { return *platform_; }

  Platform* platform_;
};

}  // namespace smiless::serverless
