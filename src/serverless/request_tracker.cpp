#include "serverless/request_tracker.hpp"

#include <cmath>
#include <iterator>

#include "common/check.hpp"
#include "obs/event_bus.hpp"
#include "serverless/app_table.hpp"
#include "serverless/function_scheduler.hpp"
#include "serverless/ledger.hpp"
#include "serverless/platform.hpp"

namespace smiless::serverless {

using obs::EventType;

RequestTracker::RequestTracker(sim::Engine& engine, const PlatformOptions& options,
                               const AppTable& table, Ledger& ledger)
    : engine_(engine), options_(options), table_(table), ledger_(ledger) {}

void RequestTracker::add_app() { requests_.emplace_back(); }

std::vector<RequestTracker::RequestState>& RequestTracker::app_requests(AppId app) {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < requests_.size());
  return requests_[app];
}

RequestTracker::RequestState& RequestTracker::req(AppId app, RequestId request) {
  auto& rs = app_requests(app);
  SMILESS_CHECK(request >= 0 && static_cast<std::size_t>(request) < rs.size());
  return rs[request];
}

RequestId RequestTracker::admit(AppId app) {
  const auto& spec = table_.spec(app);
  RequestState r;
  r.arrival = engine_.now();
  r.pending_preds.resize(spec.dag.size());
  if (options_.record_traces) r.ready_at.assign(spec.dag.size(), 0.0);
  for (std::size_t n = 0; n < spec.dag.size(); ++n)
    r.pending_preds[n] = static_cast<int>(spec.dag.in_degree(static_cast<dag::NodeId>(n)));
  r.sinks_remaining = static_cast<int>(spec.dag.sinks().size());
  auto& rs = app_requests(app);
  rs.push_back(std::move(r));
  const auto ridx = static_cast<RequestId>(rs.size() - 1);
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::RequestSubmitted,
                           .t = engine_.now(),
                           .app = app,
                           .request = ridx});

  for (dag::NodeId src : spec.dag.sources()) on_node_ready(app, src, ridx);
  return ridx;
}

void RequestTracker::on_node_ready(AppId app, dag::NodeId node, RequestId request) {
  if (options_.record_traces) req(app, request).ready_at[node] = engine_.now();
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::InvocationReady,
                           .t = engine_.now(),
                           .app = app,
                           .node = node,
                           .request = request});
  arm_timeout(app, node, request);
  scheduler_->enqueue(app, node, request);
}

void RequestTracker::arm_timeout(AppId app, dag::NodeId node, RequestId request) {
  if (!std::isfinite(options_.request_timeout)) return;
  auto& r = req(app, request);
  if (r.timeout_ev.empty()) r.timeout_ev.assign(table_.spec(app).dag.size(), 0);
  if (r.timeout_ev[node] != 0) return;  // deadline set at first readiness
  r.timeout_ev[node] =
      engine_.schedule_after(options_.request_timeout, [this, app, node, request] {
        if (halted_) return;
        auto& rr = req(app, request);
        rr.timeout_ev[node] = 0;
        if (rr.done || rr.failed) return;
        ++ledger_.fn(app, node).timeouts;
        if (options_.bus != nullptr)
          options_.bus->publish({.type = EventType::TimeoutFired,
                                 .t = engine_.now(),
                                 .app = app,
                                 .node = node,
                                 .request = request});
        fail_request(app, request);
      });
}

void RequestTracker::fail_request(AppId app, RequestId request) {
  auto& r = req(app, request);
  if (r.done || r.failed) return;
  r.failed = true;
  ++ledger_.books(app).failed;
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::RequestFailed,
                           .t = engine_.now(),
                           .t2 = r.arrival,
                           .app = app,
                           .request = request});
  for (auto& ev : r.timeout_ev) {
    if (ev != 0) {
      engine_.cancel(ev);
      ev = 0;
    }
  }
  // Strip every queued (not yet executing) invocation of this request; a
  // batch already in flight finishes and is ignored by complete_node.
  scheduler_->strip_request(app, request);
}

bool RequestTracker::in_terminal_state(AppId app, RequestId request) const {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < requests_.size());
  const auto& rs = requests_[app];
  SMILESS_CHECK(request >= 0 && static_cast<std::size_t>(request) < rs.size());
  return rs[request].done || rs[request].failed;
}

int RequestTracker::bump_retry(AppId app, RequestId request) {
  return ++req(app, request).retries;
}

void RequestTracker::record_span(AppId app, dag::NodeId node, RequestId request,
                                 SimTime exec_start, int batch_size) {
  auto& r = req(app, request);
  NodeSpan span;
  span.node = node;
  span.ready = r.ready_at[node];
  span.start = exec_start;
  span.end = engine_.now();
  span.batch = batch_size;
  span.cold = span.wait() > 1e-6;
  span.attempt = r.retries;
  r.spans.push_back(span);
}

void RequestTracker::complete_node(AppId app, dag::NodeId node, RequestId request) {
  auto& r = req(app, request);
  if (r.failed) return;  // late completion of a batch holding a failed request
  SMILESS_CHECK(!r.done);
  if (!r.timeout_ev.empty() && r.timeout_ev[node] != 0) {
    engine_.cancel(r.timeout_ev[node]);
    r.timeout_ev[node] = 0;
  }

  const auto& spec = table_.spec(app);
  for (dag::NodeId s : spec.dag.successors(node)) {
    if (--r.pending_preds[s] == 0) on_node_ready(app, s, request);
  }
  if (spec.dag.out_degree(node) == 0) {
    if (--r.sinks_remaining == 0) {
      r.done = true;
      ledger_.books(app).completed.push_back({r.arrival, engine_.now()});
      if (options_.bus != nullptr)
        options_.bus->publish({.type = EventType::RequestCompleted,
                               .t = engine_.now(),
                               .t2 = r.arrival,
                               .app = app,
                               .request = request});
      if (options_.record_traces)
        ledger_.books(app).traces.push_back({r.arrival, engine_.now(), std::move(r.spans)});
    }
  }
}

void RequestTracker::finalize() {
  halted_ = true;
  // Outstanding per-invocation timeout timers die with the run.
  for (auto& rs : requests_)
    for (auto& r : rs)
      for (auto& ev : r.timeout_ev)
        if (ev != 0) {
          engine_.cancel(ev);
          ev = 0;
        }
}

}  // namespace smiless::serverless
