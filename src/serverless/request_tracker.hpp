#pragma once

#include <deque>
#include <vector>

#include "common/units.hpp"
#include "dag/dag.hpp"
#include "serverless/tracing.hpp"
#include "serverless/types.hpp"
#include "sim/engine.hpp"

namespace smiless::serverless {

class AppTable;
class FunctionScheduler;
class Ledger;
struct PlatformOptions;

/// RequestTracker — the per-request DAG lifecycle. Single responsibility:
/// track each request's progress through its DAG (pending-predecessor
/// counts, the ready set, sink completion), drive the terminal transitions
/// (Completed into the Ledger's books, Failed with queue stripping), arm and
/// service per-invocation timeouts, and record NodeSpan traces. Publishes
/// obs: RequestSubmitted, InvocationReady, TimeoutFired, RequestFailed,
/// RequestCompleted.
class RequestTracker {
 public:
  RequestTracker(sim::Engine& engine, const PlatformOptions& options, const AppTable& table,
                 Ledger& ledger);

  void wire(FunctionScheduler* scheduler) { scheduler_ = scheduler; }

  void add_app();

  /// Admit one request at the current sim time: build its DAG progress
  /// state, publish RequestSubmitted, and enqueue the DAG's source nodes.
  RequestId admit(AppId app);

  /// A node's invocation became ready (all predecessors done): record
  /// readiness, arm the timeout, and hand it to the scheduler's queue.
  void on_node_ready(AppId app, dag::NodeId node, RequestId request);

  /// A node finished for `request`: cancel its timeout, decrement successor
  /// predecessor counts (enqueueing newly ready nodes), and close the
  /// request when its last sink completes.
  void complete_node(AppId app, dag::NodeId node, RequestId request);

  /// Terminal Failed transition: strip the request from every queue, cancel
  /// its timers, count it. Callers attribute the cause in the per-function
  /// metrics before calling.
  void fail_request(AppId app, RequestId request);

  /// True when the request already reached Completed or Failed.
  bool in_terminal_state(AppId app, RequestId request) const;

  /// Count one re-dispatch of the request (eviction path); returns the new
  /// per-request retry total.
  int bump_retry(AppId app, RequestId request);

  /// Record one executed NodeSpan for `request` at `node` (tracing mode).
  void record_span(AppId app, dag::NodeId node, RequestId request, SimTime exec_start,
                   int batch_size);

  /// Cancel all outstanding timeout timers and stop (finalize). Idempotent.
  void finalize();

 private:
  struct RequestState {
    SimTime arrival = 0.0;
    std::vector<int> pending_preds;  // per node
    std::vector<SimTime> ready_at;   // when each node's invocation became ready
    std::vector<NodeSpan> spans;     // recorded when tracing is enabled
    std::vector<sim::EventId> timeout_ev;  // per node; non-empty iff timeout armed
    int sinks_remaining = 0;
    int retries = 0;  // times any invocation of this request was re-dispatched
    bool done = false;
    bool failed = false;  // terminal Failed state (timeout / retries exhausted)
  };

  void arm_timeout(AppId app, dag::NodeId node, RequestId request);
  RequestState& req(AppId app, RequestId request);
  std::vector<RequestState>& app_requests(AppId app);

  sim::Engine& engine_;
  const PlatformOptions& options_;
  const AppTable& table_;
  Ledger& ledger_;
  FunctionScheduler* scheduler_ = nullptr;
  std::deque<std::vector<RequestState>> requests_;  // by AppId
  bool halted_ = false;
};

}  // namespace smiless::serverless
