#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/slab.hpp"
#include "dag/dag.hpp"
#include "serverless/plan.hpp"
#include "serverless/router.hpp"
#include "serverless/types.hpp"

namespace smiless::sim {
class Engine;
}  // namespace smiless::sim

namespace smiless::serverless {

class AppTable;
class InstancePool;
class Ledger;
struct PlatformOptions;
class RequestTracker;

/// FunctionScheduler — per-function queues, batching and dispatch. Single
/// responsibility: hold each function's FunctionPlan and its FIFO of ready
/// invocations, and drain that FIFO onto instances: the Router picks the
/// serving instance, the scheduler forms a batch of up to plan.max_batch
/// invocations, samples the inference latency, and schedules the batch
/// completion. When the queue is non-empty and no instance exists it defers
/// to the InstancePool's cold-start path. Publishes obs: BatchStart,
/// BatchEnd, InvocationDone.
class FunctionScheduler {
 public:
  FunctionScheduler(sim::Engine& engine, Rng& rng, const PlatformOptions& options,
                    const AppTable& table, Ledger& ledger,
                    std::unique_ptr<Router> router = nullptr);

  void wire(RequestTracker* tracker, InstancePool* pool);

  void add_app(std::size_t nodes);

  /// Replace one function's plan (validation and instance reconciliation
  /// stay with the facade / InstancePool).
  void set_plan(AppId app, dag::NodeId node, FunctionPlan plan);
  const FunctionPlan& plan(AppId app, dag::NodeId node) const;

  /// Queue a ready invocation and try to dispatch.
  void enqueue(AppId app, dag::NodeId node, RequestId request);

  /// Drain the queue onto idle instances; if work remains and the function
  /// has no instance at all, ask the pool to cold-start one.
  void dispatch(AppId app, dag::NodeId node);

  /// Re-queue an evicted in-flight invocation at the head of the queue.
  void push_front(AppId app, dag::NodeId node, RequestId request);

  /// Fail every request queued at `node` (retry budget exhausted).
  void fail_queued(AppId app, dag::NodeId node);

  /// Remove every queued invocation of `request` across all of the app's
  /// functions (terminal Failed transition).
  void strip_request(AppId app, RequestId request);

  bool queue_empty(AppId app, dag::NodeId node) const;
  std::size_t queue_length(AppId app, dag::NodeId node) const;

  const Router& router() const { return *router_; }

  /// Return a batch slice's storage to the recycler once the InstancePool
  /// has finished completing it. Steady-state dispatch then performs zero
  /// heap traffic for batch formation.
  void recycle_slice(std::vector<RequestId> slice) { slices_.release(std::move(slice)); }

  const common::SlabStats& slice_stats() const { return slices_.stats(); }

  /// Stop dispatching (finalize). Idempotent.
  void halt() { halted_ = true; }

  /// Self-profiler cadence (in dispatch calls) for sampling the batch-slice
  /// recycler occupancy. Power of two; sample points depend only on the
  /// trajectory.
  static constexpr std::uint64_t kSliceSampleInterval = 1ull << 10;

 private:
  struct FnQueue {
    FunctionPlan plan;
    std::deque<RequestId> queue;  // ready invocations, by request index
  };

  FnQueue& fn(AppId app, dag::NodeId node);
  const FnQueue& fn(AppId app, dag::NodeId node) const;

  sim::Engine& engine_;
  Rng& rng_;
  const PlatformOptions& options_;
  const AppTable& table_;
  Ledger& ledger_;
  RequestTracker* tracker_ = nullptr;
  InstancePool* pool_ = nullptr;
  std::unique_ptr<Router> router_;
  std::deque<std::vector<FnQueue>> apps_;  // by AppId, then NodeId
  common::Recycler<std::vector<RequestId>> slices_;  // batch-slice storage
  std::uint64_t dispatch_calls_ = 0;  // profiler sampling cadence only
  bool halted_ = false;
};

}  // namespace smiless::serverless
