#include "serverless/tracing.hpp"

#include <iomanip>
#include <sstream>

namespace smiless::serverless {

std::string format_trace(const RequestTrace& trace, const dag::Dag& dag) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "request arrival=" << trace.arrival << " e2e=" << trace.e2e() << "\n";
  for (const auto& s : trace.spans) {
    os << "  " << dag.name(s.node) << ": ready+" << (s.ready - trace.arrival) << " wait="
       << s.wait() << " infer=" << s.inference() << " batch=" << s.batch
       << (s.cold ? " COLD" : "");
    if (s.attempt > 0) os << " RETRY#" << s.attempt;
    os << "\n";
  }
  return os.str();
}

}  // namespace smiless::serverless
