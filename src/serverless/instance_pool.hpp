#pragma once

#include <deque>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "dag/dag.hpp"
#include "perfmodel/hardware.hpp"
#include "serverless/instance.hpp"
#include "serverless/plan.hpp"
#include "serverless/types.hpp"
#include "sim/engine.hpp"

namespace smiless::serverless {

class AppTable;
class FunctionScheduler;
class Ledger;
class Platform;
struct PlatformOptions;
class RequestTracker;

/// InstancePool — the container lifecycle manager. Single responsibility:
/// own every function's instances and drive their Init -> Idle -> Busy ->
/// terminated transitions: cold starts (on-demand, floor raises, pre-warm
/// timers with liveness-aware dedup), keep-alive/grace reaping, config-drift
/// reaping, machine-down eviction with in-flight re-dispatch, and the
/// bounded-exponential-backoff cold-start retry ladder. Publishes obs:
/// InstanceCreated, InstanceReady, InstanceInitFailed, InstanceTerminated,
/// InstanceEvicted, PrewarmFired, PrewarmSkipped, RetryScheduled.
class InstancePool {
 public:
  /// Instance counts of one app at a window boundary (Gateway census).
  struct Census {
    int total = 0;
    int cpu = 0;
    int gpu = 0;
  };

  InstancePool(sim::Engine& engine, cluster::Cluster& cluster, Rng& rng,
               const PlatformOptions& options, const AppTable& table, Ledger& ledger);

  void wire(Platform* platform, FunctionScheduler* scheduler, RequestTracker* tracker);

  void add_app(std::size_t nodes);

  /// The live instance list the Router selects from.
  std::vector<Instance>& instances(AppId app, dag::NodeId node);

  /// Claim an idle instance for a batch: cancel its reap timer and flip it
  /// Busy (the scheduler forms the batch).
  void claim(Instance& inst);

  /// Force-create one instance now (cold). Returns nullptr if the cluster
  /// had no capacity.
  Instance* create_instance(AppId app, dag::NodeId node, const perf::HwConfig& config);

  /// The scheduler's cold-start path: when the function has no instance at
  /// all, create one — a failed allocation enters the bounded retry ladder;
  /// when the budget is exhausted, everything queued at the node fails.
  void ensure_capacity(AppId app, dag::NodeId node);

  /// Batch completion: flip the instance back to Idle, complete each
  /// request's node, then run the idle transition (re-dispatch, reap).
  void on_batch_done(AppId app, dag::NodeId node, InstanceId instance_id,
                     std::vector<RequestId> requests);

  /// Reconcile instances with a new plan: reap stale-config idle instances
  /// above the floor, then raise the instance count to the new floor.
  void apply_plan(AppId app, dag::NodeId node, const FunctionPlan& plan);

  /// Schedule a pre-warm: at `init_start`, create a fresh instance (cold
  /// init begins then) unless an existing instance is expected to still be
  /// warm when the pre-warmed one would become ready.
  sim::EventId prewarm_at(AppId app, dag::NodeId node, SimTime init_start);
  void cancel_prewarm(sim::EventId id);
  void clear_prewarms(AppId app, dag::NodeId node);

  /// Force-create one instance under the function's current plan.
  bool spawn(AppId app, dag::NodeId node);

  /// Evict all instances hosted on a machine that went down.
  void on_machine_down(int machine);

  /// Bill and release every instance at `end`, cancel pre-warm timers, stop.
  void finalize(SimTime end);

  int count_total(AppId app, dag::NodeId node) const;
  int count_state(AppId app, dag::NodeId node, InstanceState st) const;
  Census census(AppId app) const;

 private:
  struct FnPool {
    std::vector<Instance> instances;
    std::vector<sim::EventId> prewarms;
    InstanceId next_instance_id = 0;
    bool retry_scheduled = false;
    int retry_attempts = 0;  // consecutive failed cold starts (alloc or init)
  };

  FnPool& fn(AppId app, dag::NodeId node);
  const FnPool& fn(AppId app, dag::NodeId node) const;

  void on_init_done(AppId app, dag::NodeId node, InstanceId instance_id);
  void on_init_failed(AppId app, dag::NodeId node, InstanceId instance_id);
  void on_instance_idle(AppId app, dag::NodeId node, InstanceId instance_id);
  void terminate_instance(AppId app, dag::NodeId node, InstanceId instance_id);
  /// Bill an instance up to now and return its grant to the cluster.
  void retire_accounting(AppId app, dag::NodeId node, const Instance& inst);
  /// Backoff delay for the attempt-th consecutive failed cold start.
  double backoff_delay(int attempt) const;

  sim::Engine& engine_;
  cluster::Cluster& cluster_;
  Rng& rng_;
  const PlatformOptions& options_;
  const AppTable& table_;
  Ledger& ledger_;
  Platform* platform_ = nullptr;
  FunctionScheduler* scheduler_ = nullptr;
  RequestTracker* tracker_ = nullptr;
  std::deque<std::vector<FnPool>> apps_;  // by AppId, then NodeId
  bool halted_ = false;
};

}  // namespace smiless::serverless
