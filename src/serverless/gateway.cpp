#include "serverless/gateway.hpp"

#include "common/check.hpp"
#include "prof/profiler.hpp"
#include "serverless/app_table.hpp"
#include "serverless/instance_pool.hpp"
#include "serverless/ledger.hpp"
#include "serverless/platform_view.hpp"
#include "serverless/request_tracker.hpp"
#include "sim/engine.hpp"

namespace smiless::serverless {

Gateway::Gateway(sim::Engine& engine, const PlatformOptions& options, const AppTable& table,
                 Ledger& ledger)
    : engine_(engine), options_(options), table_(table), ledger_(ledger) {}

void Gateway::wire(Platform* platform, RequestTracker* tracker, InstancePool* pool) {
  platform_ = platform;
  tracker_ = tracker;
  pool_ = pool;
}

Gateway::AppWindows& Gateway::windows(AppId app) {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < apps_.size());
  return apps_[app];
}

const Gateway::AppWindows& Gateway::windows(AppId app) const {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < apps_.size());
  return apps_[app];
}

void Gateway::add_app() {
  apps_.emplace_back();
  apps_.back().next_end = engine_.now() + options_.window_seconds;
}

void Gateway::start(AppId app) {
  engine_.schedule_at(windows(app).next_end, [this, app] { window_tick(app); });
}

void Gateway::window_tick(AppId app) {
  if (halted_) return;  // engine may still drain ticks after finalize()
  prof::ScopeTimer scope(options_.prof, prof::Site::GatewayWindow);
  auto& w = windows(app);
  WindowStats stats;
  stats.window_end = w.next_end;
  stats.window_start = w.next_end - options_.window_seconds;
  stats.arrivals = w.current_arrivals;
  w.counts.push_back(w.current_arrivals);

  WindowSample sample;
  sample.window_start = stats.window_start;
  sample.arrivals = w.current_arrivals;
  const auto census = pool_->census(app);
  sample.instances_total = census.total;
  sample.instances_cpu = census.cpu;
  sample.instances_gpu = census.gpu;
  ledger_.books(app).windows.push_back(sample);

  w.current_arrivals = 0;
  w.next_end += options_.window_seconds;
  PlatformView view(*platform_);
  {
    prof::ScopeTimer solver(options_.prof, prof::Site::PolicyWindow);
    table_.policy(app).on_window(app, table_.spec(app), view, stats);
  }
  engine_.schedule_at(w.next_end, [this, app] { window_tick(app); });
}

void Gateway::submit(AppId app, SimTime arrival) {
  SMILESS_CHECK(arrival >= engine_.now());
  engine_.schedule_at(arrival, [this, app] {
    ++ledger_.books(app).submitted;
    ++windows(app).current_arrivals;
    PlatformView view(*platform_);
    table_.policy(app).on_arrival(app, table_.spec(app), view, engine_.now());
    tracker_->admit(app);
  });
}

const std::vector<int>& Gateway::arrival_counts(AppId app) const {
  return windows(app).counts;
}

}  // namespace smiless::serverless
