#pragma once

#include <string>

#include "apps/app.hpp"
#include "common/units.hpp"
#include "serverless/types.hpp"

namespace smiless::serverless {

class Platform;

/// Arrival statistics for the window that just closed, delivered by the
/// Gateway to the policy each second (§IV-B: "a specified time window,
/// which is set to one second").
struct WindowStats {
  SimTime window_start = 0.0;
  SimTime window_end = 0.0;
  int arrivals = 0;  ///< requests for this app inside the window
};

/// A scheduling policy: the pluggable brain controlling hardware
/// configuration, cold-start management and scaling for every function of
/// an application. SMIless, the four baselines, OPT and the ablations all
/// implement this interface.
class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Called once when the application is deployed. Must install an initial
  /// FunctionPlan for every DAG node.
  virtual void on_deploy(AppId app, const apps::App& spec, Platform& platform) = 0;

  /// Called at each 1 s window boundary with the closed window's stats.
  virtual void on_window(AppId app, const apps::App& spec, Platform& platform,
                         const WindowStats& stats) {
    (void)app;
    (void)spec;
    (void)platform;
    (void)stats;
  }

  /// Called when a request arrives at the Gateway, before it is routed.
  virtual void on_arrival(AppId app, const apps::App& spec, Platform& platform, SimTime now) {
    (void)app;
    (void)spec;
    (void)platform;
    (void)now;
  }

  /// Called after an instance of `node` died involuntarily — a failed cold
  /// init or a machine-down eviction. The platform has already released the
  /// instance and re-queued any in-flight invocations; policies may react
  /// (re-prewarm, restore a scale-out floor). Default: do nothing and let
  /// the platform's cold-start retry path handle queued work.
  virtual void on_instance_failed(AppId app, const apps::App& spec, Platform& platform,
                                  dag::NodeId node, InstanceFailure kind) {
    (void)app;
    (void)spec;
    (void)platform;
    (void)node;
    (void)kind;
  }
};

}  // namespace smiless::serverless
