#pragma once

#include <string>

#include "apps/app.hpp"
#include "common/units.hpp"
#include "serverless/types.hpp"

namespace smiless::obs {
class AuditLog;
}  // namespace smiless::obs

namespace smiless::serverless {

class Platform;
class PlatformView;

/// Arrival statistics for the window that just closed, delivered by the
/// Gateway to the policy each second (§IV-B: "a specified time window,
/// which is set to one second").
struct WindowStats {
  SimTime window_start = 0.0;
  SimTime window_end = 0.0;
  int arrivals = 0;  ///< requests for this app inside the window
};

/// A scheduling policy: the pluggable brain controlling hardware
/// configuration, cold-start management and scaling for every function of
/// an application. SMIless, the four baselines, OPT and the ablations all
/// implement this interface.
///
/// Policies receive a capability-scoped PlatformView — the deploy / prewarm
/// / scale control surface plus per-app introspection — never the full
/// Platform. A policy therefore cannot submit requests, finalize the run or
/// reach another lane's state, which is what makes policies safe to run
/// inside sharded cells (DESIGN.md §14).
///
/// MIGRATION (deprecated, one release): the pre-sharding `Platform&`
/// overloads below are kept as thin shims. A policy that still overrides
/// them keeps working — the PlatformView defaults forward — but new code
/// must override the PlatformView hooks; the shims disappear next release.
class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Called once when the application is deployed. Must install an initial
  /// FunctionPlan for every DAG node.
  virtual void on_deploy(AppId app, const apps::App& spec, PlatformView& platform);

  /// Called at each 1 s window boundary with the closed window's stats.
  virtual void on_window(AppId app, const apps::App& spec, PlatformView& platform,
                         const WindowStats& stats);

  /// Called when a request arrives at the Gateway, before it is routed.
  virtual void on_arrival(AppId app, const apps::App& spec, PlatformView& platform,
                          SimTime now);

  /// Called after an instance of `node` died involuntarily — a failed cold
  /// init or a machine-down eviction. The platform has already released the
  /// instance and re-queued any in-flight invocations; policies may react
  /// (re-prewarm, restore a scale-out floor). Default: do nothing and let
  /// the platform's cold-start retry path handle queued work.
  virtual void on_instance_failed(AppId app, const apps::App& spec, PlatformView& platform,
                                  dag::NodeId node, InstanceFailure kind);

  /// Rebind the policy's decision audit log (no-op for policies that do not
  /// audit). ShardedPlatform uses this to point each app's policy at its
  /// lane's log so lanes never share a mutable sink.
  virtual void set_audit_log(obs::AuditLog* audit) { (void)audit; }

  // --- deprecated Platform& shims (removed next release) --------------------

  /// @deprecated Override the PlatformView overload instead. The default
  /// aborts loudly: a policy overriding *neither* on_deploy overload is a
  /// bug, and this turns it into a deploy-time failure instead of a
  /// silently plan-less app.
  virtual void on_deploy(AppId app, const apps::App& spec, Platform& platform);

  /// @deprecated Override the PlatformView overload instead.
  virtual void on_window(AppId app, const apps::App& spec, Platform& platform,
                         const WindowStats& stats) {
    (void)app;
    (void)spec;
    (void)platform;
    (void)stats;
  }

  /// @deprecated Override the PlatformView overload instead.
  virtual void on_arrival(AppId app, const apps::App& spec, Platform& platform, SimTime now) {
    (void)app;
    (void)spec;
    (void)platform;
    (void)now;
  }

  /// @deprecated Override the PlatformView overload instead.
  virtual void on_instance_failed(AppId app, const apps::App& spec, Platform& platform,
                                  dag::NodeId node, InstanceFailure kind) {
    (void)app;
    (void)spec;
    (void)platform;
    (void)node;
    (void)kind;
  }
};

}  // namespace smiless::serverless
