#pragma once

#include "common/json.hpp"
#include "serverless/platform.hpp"

namespace smiless::serverless {

/// Serialize every scalar knob of PlatformOptions (the `faults` pointer is
/// runtime wiring, not configuration — the fault *spec* serializes through
/// faults::to_json and is attached by the experiment layer). Keys are
/// emitted in declaration order so the output is byte-stable.
json::Value to_json(const PlatformOptions& o);

/// Inverse of to_json. Missing keys keep their defaults, so configs written
/// by older builds keep loading.
PlatformOptions platform_options_from_json(const json::Value& v);

}  // namespace smiless::serverless
