#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "apps/app.hpp"
#include "common/check.hpp"
#include "serverless/policy.hpp"
#include "serverless/types.hpp"

namespace smiless::serverless {

/// AppTable — the deployment registry shared by every subsystem. Single
/// responsibility: own each deployed application's immutable spec and its
/// policy, keyed by AppId in deployment order. All mutable serving state
/// lives in the subsystem that owns the concern (Gateway windows,
/// RequestTracker requests, FunctionScheduler queues, InstancePool
/// instances, Ledger books).
class AppTable {
 public:
  AppId add(apps::App spec, std::shared_ptr<Policy> policy) {
    SMILESS_CHECK(policy != nullptr);
    auto e = std::make_unique<Entry>();
    e->spec = std::move(spec);
    e->policy = std::move(policy);
    entries_.push_back(std::move(e));
    return static_cast<AppId>(entries_.size() - 1);
  }

  std::size_t size() const { return entries_.size(); }

  const apps::App& spec(AppId app) const { return entry(app).spec; }
  Policy& policy(AppId app) const { return *entry(app).policy; }

  /// Number of DAG nodes (= functions) of one app.
  std::size_t nodes(AppId app) const { return entry(app).spec.dag.size(); }

 private:
  struct Entry {
    apps::App spec;
    std::shared_ptr<Policy> policy;
  };

  const Entry& entry(AppId app) const {
    SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < entries_.size());
    return *entries_[app];
  }

  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace smiless::serverless
