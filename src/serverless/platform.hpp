#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "perfmodel/hardware.hpp"
#include "serverless/app_table.hpp"
#include "serverless/function_scheduler.hpp"
#include "serverless/gateway.hpp"
#include "serverless/instance_pool.hpp"
#include "serverless/ledger.hpp"
#include "serverless/metrics.hpp"
#include "serverless/plan.hpp"
#include "serverless/policy.hpp"
#include "serverless/request_tracker.hpp"
#include "serverless/types.hpp"
#include "sim/engine.hpp"

namespace smiless::faults {
class FaultInjector;
}  // namespace smiless::faults

namespace smiless::obs {
class EventBus;
}  // namespace smiless::obs

namespace smiless::prof {
class Profiler;
}  // namespace smiless::prof

namespace smiless::serverless {

/// Platform tuning knobs.
struct PlatformOptions {
  double window_seconds = 1.0;  ///< Gateway counting window (s), §IV-B
  double inference_noise = 0.06; ///< multiplicative jitter on sampled latencies

  /// Cold-start retry with exponential backoff. When a function has queued
  /// work but cannot obtain a working instance (the allocation failed, or
  /// the container's init failed under fault injection), the platform
  /// retries after `retry_delay * retry_backoff^(attempt-1)` seconds,
  /// capped at `retry_max_delay`. The attempt counter is per function and
  /// resets on the first successful init. After `max_retries` consecutive
  /// failed attempts every request queued at the function transitions to
  /// the terminal Failed state (counted in AppMetrics::failed); a negative
  /// `max_retries` retries forever (the pre-fault one-shot semantics, just
  /// with backoff instead of a fixed delay).
  double retry_delay = 0.1;     ///< initial backoff delay (s)
  double retry_backoff = 2.0;   ///< multiplier per consecutive failed attempt
  double retry_max_delay = 5.0; ///< backoff ceiling (s)
  int max_retries = 12;         ///< consecutive failures before Failed; < 0 = unbounded

  /// Per-invocation timeout, measured from the moment the invocation
  /// became ready (all predecessors done). When it expires before the
  /// node completed, the whole request transitions to Failed (counted in
  /// FunctionMetrics::timeouts at the stuck node). Infinity disables it.
  double request_timeout = std::numeric_limits<double>::infinity();

  bool record_traces = false;   ///< keep per-request NodeSpan traces (§IV-A events)

  /// Lane id of the hosting platform inside a sharded cell (0 for the
  /// ordinary unsharded platform). Surfaced to routers via RoutingContext
  /// and to policies via PlatformView::lane(). Set programmatically by
  /// ShardedPlatform — deliberately not serialized.
  int lane = 0;

  /// Optional fault source (non-owning; must outlive the platform). When
  /// null or disabled the platform behaves exactly like the fault-free
  /// simulator. See faults::FaultSpec.
  faults::FaultInjector* faults = nullptr;

  /// Optional observability sink (non-owning; must outlive the platform).
  /// When null the platform publishes nothing and pays one pointer test per
  /// lifecycle site — the simulated trajectory is identical either way.
  obs::EventBus* bus = nullptr;

  /// Optional runtime self-profiler (non-owning; must outlive the platform;
  /// not serialized). Same zero-overhead contract as `bus`: null costs one
  /// pointer test per instrumented site and the trajectory never moves
  /// either way — the profiler only reads the wall clock, it never writes
  /// into golden-compared artifacts. Inside a sharded cell this points at
  /// the *lane's* private profiler (a Profiler is not thread-safe).
  prof::Profiler* prof = nullptr;
};

/// The serverless serving platform (OpenFaaS substitute) running inside the
/// discrete-event engine. Platform is a thin facade over five narrowly
/// scoped subsystems (see DESIGN.md §12 for the architecture map):
///
///  - Gateway          — arrival intake and the per-app window ticker
///  - RequestTracker   — per-request DAG progress and terminal transitions
///  - FunctionScheduler — per-function queues, batching and dispatch
///                        (instance selection behind the Router seam)
///  - InstancePool     — container lifecycle: cold starts, keep-alive
///                        reaping, pre-warm timers, eviction, retry ladder
///  - Ledger           — billing (Eq. 3), metrics books, window samples
///
/// The facade owns them all, wires their call cycle, validates inputs, and
/// preserves the original public control surface so policies and drivers are
/// untouched by the decomposition.
///
/// Execution semantics:
///  - A request triggers its DAG's source functions; a function becomes
///    ready once all its predecessors completed (§II-A).
///  - A ready invocation queues at its function. An Idle instance picks up
///    up to `max_batch` queued invocations per inference call. If the
///    function has no instance at all, a cold start is triggered on demand.
///  - Instances transition Init -> Idle -> Busy -> Idle ... -> terminated.
///    The keep-alive reaper and pre-warm timers implement the cold-start
///    policies of §V-B.
///  - Billing accrues per instance from creation to termination at the
///    configuration's unit price (Eq. 3).
///
/// Failure semantics (all off by default; see PlatformOptions and
/// faults::FaultSpec):
///  - A failed container init bills the attempt, releases the grant and
///    re-enters the cold-start path under the bounded backoff retry.
///  - When a machine goes down every instance on it is evicted: billed to
///    the eviction instant, released, and its in-flight invocations are
///    re-queued at the head of their function queue (one retry each).
///  - A request whose invocation times out, or whose function exhausted
///    the retry budget, reaches the terminal Failed state: it is removed
///    from every queue and never completes.
///  - Policies observe involuntary instance deaths via
///    Policy::on_instance_failed and may re-provision.
class Platform {
 public:
  Platform(sim::Engine& engine, cluster::Cluster& cluster, perf::Pricing pricing, Rng& rng,
           PlatformOptions options = {});
  ~Platform();

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  /// Deploy an application under a policy; fires Policy::on_deploy and
  /// starts the window ticker.
  AppId deploy(apps::App app, std::shared_ptr<Policy> policy);

  /// Schedule a user request for `app` at absolute time `arrival`.
  void submit_request(AppId app, SimTime arrival);

  /// Stop billing and close all instances at time `end` (call after the
  /// engine has drained). Idempotent.
  void finalize(SimTime end);

  // --- control surface used by policies -----------------------------------

  /// Replace the plan of one function. Config changes apply to future
  /// instances; existing mismatched instances are reaped when next idle.
  void set_plan(AppId app, dag::NodeId node, FunctionPlan plan);
  const FunctionPlan& plan(AppId app, dag::NodeId node) const;

  /// Schedule a pre-warm: at `init_start`, create a fresh instance (cold
  /// init begins then) unless the function already has a non-busy instance.
  /// Returns a handle usable with cancel_prewarm.
  sim::EventId prewarm_at(AppId app, dag::NodeId node, SimTime init_start);
  void cancel_prewarm(sim::EventId id);
  /// Cancel all pending pre-warms of a function.
  void clear_prewarms(AppId app, dag::NodeId node);

  /// Force-create one instance now (cold). Returns false if the cluster had
  /// no capacity.
  bool spawn_instance(AppId app, dag::NodeId node);

  // --- introspection -------------------------------------------------------

  SimTime now() const;
  /// Lane id inside a sharded cell (PlatformOptions::lane; 0 unsharded).
  int lane() const { return options_.lane; }
  const apps::App& app_spec(AppId app) const;
  int instances_total(AppId app, dag::NodeId node) const;
  int instances_idle(AppId app, dag::NodeId node) const;
  int instances_initializing(AppId app, dag::NodeId node) const;
  int instances_busy(AppId app, dag::NodeId node) const;
  std::size_t queue_length(AppId app, dag::NodeId node) const;

  const AppMetrics& metrics(AppId app) const;
  /// Requests still pending (submitted - completed - failed).
  long in_flight(AppId app) const;

  /// Per-window arrival counts observed by the Gateway so far (the series
  /// the Online Predictor trains on).
  const std::vector<int>& arrival_counts(AppId app) const;

  /// The platform's books: per-instance BillingRecords and metrics.
  const Ledger& ledger() const { return ledger_; }

 private:
  sim::Engine& engine_;
  cluster::Cluster& cluster_;
  Rng& rng_;
  PlatformOptions options_;
  AppTable table_;
  Ledger ledger_;
  Gateway gateway_;
  RequestTracker tracker_;
  FunctionScheduler scheduler_;
  InstancePool pool_;
  bool finalized_ = false;
  int cluster_listener_ = 0;  ///< token of the machine-down listener
};

}  // namespace smiless::serverless
