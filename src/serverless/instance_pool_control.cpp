#include "serverless/instance_pool.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/event_bus.hpp"
#include "serverless/app_table.hpp"
#include "serverless/function_scheduler.hpp"
#include "serverless/ledger.hpp"
#include "serverless/platform_view.hpp"
#include "serverless/request_tracker.hpp"

// The InstancePool's externally driven control paths: plan reconciliation,
// pre-warm timers, machine-down eviction and finalize. The per-instance
// lifecycle transitions live in instance_pool.cpp.

namespace smiless::serverless {

using obs::EventType;

void InstancePool::on_machine_down(int machine) {
  if (halted_) return;
  for (std::size_t ai = 0; ai < apps_.size(); ++ai) {
    const AppId app = static_cast<AppId>(ai);
    auto& fns = apps_[ai];
    for (std::size_t n = 0; n < fns.size(); ++n) {
      const auto node = static_cast<dag::NodeId>(n);
      auto& f = fns[n];
      auto& fm = ledger_.fn(app, node);
      bool evicted = false;
      for (std::size_t i = 0; i < f.instances.size();) {
        Instance& inst = f.instances[i];
        if (inst.alloc.machine != machine) {
          ++i;
          continue;
        }
        evicted = true;
        if (inst.kill_timer != 0) engine_.cancel(inst.kill_timer);
        if (inst.pending != 0) engine_.cancel(inst.pending);
        ++fm.evictions;
        if (options_.bus != nullptr)
          options_.bus->publish({.type = EventType::InstanceEvicted,
                                 .t = engine_.now(),
                                 .t2 = inst.created,
                                 .app = app,
                                 .node = node,
                                 .instance = inst.id,
                                 .machine = machine});
        // Re-dispatch in-flight work at the head of the queue, preserving
        // the original order; each re-dispatch spends one retry.
        for (auto rit = inst.inflight.rbegin(); rit != inst.inflight.rend(); ++rit) {
          if (tracker_->in_terminal_state(app, *rit)) continue;
          const int retries = tracker_->bump_retry(app, *rit);
          ++fm.retries;
          if (options_.max_retries >= 0 && retries > options_.max_retries) {
            tracker_->fail_request(app, *rit);
            continue;
          }
          scheduler_->push_front(app, node, *rit);
        }
        retire_accounting(app, node, inst);
        f.instances.erase(f.instances.begin() + static_cast<long>(i));
      }
      if (evicted) {
        PlatformView view(*platform_);
        table_.policy(app).on_instance_failed(app, table_.spec(app), view, node,
                                              InstanceFailure::Eviction);
        scheduler_->dispatch(app, node);
      }
    }
  }
}

void InstancePool::apply_plan(AppId app, dag::NodeId node, const FunctionPlan& plan) {
  auto& f = fn(app, node);
  // Reap idle instances whose configuration no longer matches (above the
  // floor); busy ones are reaped when they next go idle.
  std::vector<InstanceId> stale;
  for (const auto& inst : f.instances)
    if (inst.st == InstanceState::Idle && !(inst.config == plan.config))
      stale.push_back(inst.id);
  for (InstanceId id : stale) {
    if (static_cast<int>(f.instances.size()) <= plan.min_instances) break;
    terminate_instance(app, node, id);
  }
  // Raise to the floor immediately (burst scale-out, §V-D).
  int total = static_cast<int>(f.instances.size());
  while (total < plan.min_instances) {
    if (create_instance(app, node, plan.config) == nullptr) break;
    ++total;
  }
}

sim::EventId InstancePool::prewarm_at(AppId app, dag::NodeId node, SimTime init_start) {
  auto& f = fn(app, node);
  const SimTime at = std::max(init_start, engine_.now());
  const sim::EventId id = engine_.schedule_at(at, [this, app, node] {
    auto& fs = fn(app, node);
    const FunctionPlan& plan = scheduler_->plan(app, node);
    // Skip only if an existing instance is expected to still be warm when
    // the pre-warmed one would become ready — otherwise a short-lived
    // instance from the previous request would silently cancel the
    // pre-warm and then die before the arrival it was meant to serve.
    const double mu_init = table_.spec(app).perf_of(node).init_time(plan.config, 0.0);
    const SimTime need = engine_.now() + mu_init + 0.5;
    for (const auto& inst : fs.instances) {
      SimTime covers;
      switch (inst.st) {
        case InstanceState::Init:
          covers = inst.ready_at + plan.keepalive;
          break;
        case InstanceState::Idle:
          covers = inst.kill_at;
          break;
        case InstanceState::Busy:
        default:
          covers = engine_.now() + plan.keepalive;
          break;
      }
      if (covers > need) {
        if (options_.bus != nullptr)
          options_.bus->publish({.type = EventType::PrewarmSkipped,
                                 .t = engine_.now(),
                                 .app = app,
                                 .node = node});
        return;
      }
    }
    if (options_.bus != nullptr)
      options_.bus->publish({.type = EventType::PrewarmFired,
                             .t = engine_.now(),
                             .app = app,
                             .node = node});
    create_instance(app, node, plan.config);
  });
  f.prewarms.push_back(id);
  // Bound growth of the handle list.
  if (f.prewarms.size() > 64)
    f.prewarms.erase(f.prewarms.begin(), f.prewarms.begin() + 32);
  return id;
}

void InstancePool::cancel_prewarm(sim::EventId id) { engine_.cancel(id); }

void InstancePool::clear_prewarms(AppId app, dag::NodeId node) {
  auto& f = fn(app, node);
  for (sim::EventId ev : f.prewarms) engine_.cancel(ev);
  f.prewarms.clear();
}

bool InstancePool::spawn(AppId app, dag::NodeId node) {
  return create_instance(app, node, scheduler_->plan(app, node).config) != nullptr;
}

void InstancePool::finalize(SimTime end) {
  halted_ = true;
  for (std::size_t ai = 0; ai < apps_.size(); ++ai) {
    const AppId app = static_cast<AppId>(ai);
    auto& fns = apps_[ai];
    for (std::size_t n = 0; n < fns.size(); ++n) {
      const auto node = static_cast<dag::NodeId>(n);
      auto& f = fns[n];
      for (auto& inst : f.instances) {
        if (inst.kill_timer != 0) engine_.cancel(inst.kill_timer);
        if (inst.pending != 0) engine_.cancel(inst.pending);
        if (options_.bus != nullptr)
          options_.bus->publish({.type = EventType::InstanceTerminated,
                                 .t = end,
                                 .t2 = inst.created,
                                 .app = app,
                                 .node = node,
                                 .instance = inst.id,
                                 .machine = inst.alloc.machine});
        ledger_.bill_instance(app, node, inst, end);
        cluster_.release(inst.alloc);
      }
      f.instances.clear();
      for (sim::EventId ev : f.prewarms) engine_.cancel(ev);
      f.prewarms.clear();
    }
  }
}

}  // namespace smiless::serverless
