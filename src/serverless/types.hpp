#pragma once

namespace smiless::serverless {

/// Shared identifier vocabulary of the serverless layer. Hoisted out of
/// policy.hpp so the Policy interface, the Platform facade and the five
/// subsystems (Gateway, RequestTracker, FunctionScheduler, InstancePool,
/// Ledger) can name the same ids without a Policy<->Platform header tangle.

/// Index into the platform's application table, in deployment order.
using AppId = int;

/// Per-app request index, in submission order.
using RequestId = int;

/// Per-function container instance id, assigned monotonically per function.
using InstanceId = int;

/// Why a container instance disappeared without the policy asking for it.
enum class InstanceFailure {
  InitFailure,  ///< cold init failed (fault injection)
  Eviction,     ///< the machine hosting it went down
};

/// Container lifecycle state: Init -> Idle <-> Busy -> terminated.
enum class InstanceState { Init, Idle, Busy };

}  // namespace smiless::serverless
