#include "serverless/sharding.hpp"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "concurrency/thread_pool.hpp"
#include "obs/merge.hpp"
#include "obs/telemetry.hpp"
#include "prof/profiler.hpp"
#include "sim/lane_engine.hpp"
#include "workload/arrival_cursor.hpp"

namespace smiless::serverless {

/// One lane's private world. Member order is construction order and mirrors
/// the monolithic run: Engine, Cluster, Rng, FaultInjector (which forks its
/// child stream off the lane Rng iff any fault knob is set), then Platform —
/// so a lone populated lane consumes its RNG exactly like the unsharded run.
struct ShardedPlatform::Lane {
  int id;
  sim::LaneEngine engine;
  cluster::Cluster cluster;
  int machine_base;
  Rng rng;
  faults::FaultInjector injector;
  std::unique_ptr<obs::Telemetry> telemetry;
  std::unique_ptr<prof::Profiler> prof;  ///< private: profilers are not thread-safe
  std::unique_ptr<Platform> platform;
  std::vector<int> app_map;                  ///< lane-local app id -> global
  std::vector<AppId> ids;                    ///< lane-local deploy handles
  std::vector<std::vector<SimTime>> arrivals;  ///< per lane-local app, sorted
  std::vector<workload::ArrivalCursor> cursors;  ///< streaming position per app

  Lane(int lane_id, std::size_t machines, cluster::MachineSpec spec, int base,
       std::uint64_t seed, faults::FaultSpec fspec)
      : id(lane_id),
        engine(lane_id),
        cluster(machines, spec),
        machine_base(base),
        rng(seed),
        injector(std::move(fspec), rng) {}
};

ShardedPlatform::ShardedPlatform(ShardOptions options) : options_(std::move(options)) {
  SMILESS_CHECK(options_.lanes >= 1);
  SMILESS_CHECK(options_.lane_threads >= 0);
  SMILESS_CHECK(options_.machines >= 1);
}

ShardedPlatform::~ShardedPlatform() = default;

int ShardedPlatform::add_app(apps::App app, std::shared_ptr<Policy> policy,
                             std::vector<SimTime> arrivals) {
  SMILESS_CHECK_MSG(!ran_, "add_app after run()");
  SMILESS_CHECK(policy != nullptr);
  SMILESS_CHECK(std::is_sorted(arrivals.begin(), arrivals.end()));
  pending_.push_back({std::move(app), std::move(policy), std::move(arrivals)});
  return static_cast<int>(pending_.size()) - 1;
}

int ShardedPlatform::lane_for(std::size_t global_index, int lanes) {
  SMILESS_CHECK(lanes >= 1);
  // splitmix64 finalizer: platform-stable, uniform even for tiny indices.
  std::uint64_t z = static_cast<std::uint64_t>(global_index) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<int>(z % static_cast<std::uint64_t>(lanes));
}

void ShardedPlatform::build_lanes() {
  SMILESS_CHECK_MSG(!pending_.empty(), "sharded cell with no apps");
  refs_.resize(pending_.size());

  // Stable partition; only populated lanes get a world, in lane-id order.
  std::vector<std::vector<std::size_t>> members(static_cast<std::size_t>(options_.lanes));
  for (std::size_t g = 0; g < pending_.size(); ++g)
    members[static_cast<std::size_t>(lane_for(g, options_.lanes))].push_back(g);
  std::vector<int> populated;
  for (int l = 0; l < options_.lanes; ++l)
    if (!members[static_cast<std::size_t>(l)].empty()) populated.push_back(l);
  SMILESS_CHECK_MSG(populated.size() <= options_.machines,
                    "more populated lanes (" << populated.size() << ") than machines ("
                                             << options_.machines << ")");

  const std::size_t base_machines = options_.machines / populated.size();
  const std::size_t extra = options_.machines % populated.size();
  int machine_base = 0;
  lanes_.reserve(populated.size());
  for (std::size_t p = 0; p < populated.size(); ++p) {
    const int lane_id = populated[p];
    const auto& mine = members[static_cast<std::size_t>(lane_id)];
    const std::size_t n = base_machines + (p < extra ? 1 : 0);

    // Lane seed: decorrelate lanes by their first member's global index.
    // Mixing with index 0 is the identity, so a lone populated lane (every
    // single-app cell, and every K=1 run) replays the monolithic stream.
    const std::uint64_t lane_seed =
        options_.seed ^
        (static_cast<std::uint64_t>(mine.front()) * 0x9E3779B97F4A7C15ull);

    faults::FaultSpec fspec = options_.faults;
    fspec.crashes.clear();
    for (const auto& c : options_.faults.crashes)
      if (c.machine >= machine_base && c.machine < machine_base + static_cast<int>(n)) {
        faults::ScheduledCrash local = c;
        local.machine -= machine_base;
        fspec.crashes.push_back(local);
      }

    auto lane = std::make_unique<Lane>(lane_id, n, options_.machine_spec, machine_base,
                                       lane_seed, std::move(fspec));
    if (options_.telemetry != nullptr) lane->telemetry = std::make_unique<obs::Telemetry>();
    if (options_.prof != nullptr) {
      lane->prof = std::make_unique<prof::Profiler>(lane_id);
      lane->engine.engine().set_profiler(lane->prof.get());
    }
    PlatformOptions popt = options_.platform;
    popt.lane = lane_id;
    popt.faults = lane->injector.enabled() ? &lane->injector : nullptr;
    popt.bus = lane->telemetry != nullptr ? &lane->telemetry->bus() : nullptr;
    popt.prof = lane->prof.get();
    lane->platform = std::make_unique<Platform>(lane->engine.engine(), lane->cluster,
                                                options_.pricing, lane->rng, popt);
    lane->injector.set_bus(popt.bus);
    lane->injector.arm(lane->engine.engine(), lane->cluster);

    for (std::size_t g : mine) refs_[g].lane_index = static_cast<int>(p);
    machine_base += static_cast<int>(n);
    lanes_.push_back(std::move(lane));
  }

  // Deploy in global order so a lane's deploy sequence is the subsequence
  // the monolithic run would have produced.
  for (std::size_t g = 0; g < pending_.size(); ++g) {
    PendingApp& pa = pending_[g];
    Lane& lane = *lanes_[static_cast<std::size_t>(refs_[g].lane_index)];
    if (options_.telemetry != nullptr) {
      std::vector<std::string> node_names;
      node_names.reserve(pa.app.dag.size());
      for (std::size_t nd = 0; nd < pa.app.dag.size(); ++nd)
        node_names.push_back(pa.app.dag.name(static_cast<dag::NodeId>(nd)));
      lane.telemetry->register_app(static_cast<int>(lane.app_map.size()), pa.app.name,
                                   node_names, pa.app.sla);
      options_.telemetry->register_app(static_cast<int>(g), pa.app.name,
                                       std::move(node_names), pa.app.sla);
    }
    // Decision records go to the lane's private audit log (merged after the
    // run); a caller-attached log would be written from several lane threads.
    pa.policy->set_audit_log(lane.telemetry != nullptr ? &lane.telemetry->audit() : nullptr);
    const AppId id = lane.platform->deploy(std::move(pa.app), std::move(pa.policy));
    refs_[g].local = id;
    lane.ids.push_back(id);
    lane.app_map.push_back(static_cast<int>(g));
    lane.arrivals.push_back(std::move(pa.arrivals));
  }

  // Cursors are built only after every arrival vector is in place: they
  // point at the inner vectors, which move while the outer one grows.
  for (auto& lane : lanes_)
    for (const auto& arr : lane->arrivals) lane->cursors.emplace_back(&arr);
}

void ShardedPlatform::inject_arrivals(Lane& lane, double limit, bool flush_all) {
  // Window-barrier streaming via the shared ArrivalCursor: strictly-before
  // the barrier each step, everything on the final flush (so the scheduled-
  // event tally matches the monolithic upfront run).
  for (std::size_t a = 0; a < lane.cursors.size(); ++a) {
    const auto submit = [&](SimTime t) { lane.platform->submit_request(lane.ids[a], t); };
    if (flush_all) {
      lane.cursors[a].drain_all(submit);
    } else {
      lane.cursors[a].drain_before(limit, submit);
    }
  }
}

void ShardedPlatform::run(SimTime end) {
  SMILESS_CHECK_MSG(!ran_, "ShardedPlatform::run is one-shot");
  ran_ = true;
  SMILESS_CHECK(end > 0.0);
  const double w = options_.platform.window_seconds;
  SMILESS_CHECK(w > 0.0);
  build_lanes();

  // Lanes get a private pool: they must never share the policies' solver
  // pool (a policy blocking on its own pool's futures from a lane thread
  // would deadlock the barrier). A pool with one effective worker (e.g.
  // lane_threads=0 on a single-core host) is pure dispatch overhead, so
  // those cases take the serial path — the results are identical either
  // way, per the lane_threads invariance contract.
  std::unique_ptr<ThreadPool> pool;
  if (options_.lane_threads != 1 && lanes_.size() > 1) {
    const std::size_t want =
        options_.lane_threads == 0
            ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
            : static_cast<std::size_t>(options_.lane_threads);
    const std::size_t workers = std::min(want, lanes_.size());
    if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  }

  double t = 0.0;
  while (t < end) {
    const double step_end = std::min(end, t + w);
    // The final step flushes every remaining arrival (even past `end`) so
    // the scheduled-event tally matches the monolithic run, which schedules
    // the whole trace upfront.
    const bool flush = step_end >= end;
    auto step = [&](std::size_t li) {
      Lane& lane = *lanes_[li];
      // Per-lane wall time, recorded into the lane's private profiler on
      // whichever pool thread runs the step.
      prof::ScopeTimer lane_scope(lane.prof.get(), prof::Site::LaneStep);
      inject_arrivals(lane, step_end, flush);
      lane.engine.step_to(step_end);
    };
    // The coordinator charges the whole window — i.e. the wait for the
    // slowest lane — to the barrier site; a lane's own barrier wait is the
    // difference between this and its lane_step time.
    prof::ScopeTimer barrier(options_.prof, prof::Site::ShardBarrier);
    if (pool != nullptr) {
      parallel_for(*pool, lanes_.size(), step);
    } else {
      for (std::size_t li = 0; li < lanes_.size(); ++li) step(li);
    }
    t = step_end;
  }

  {
    prof::ScopeTimer fin_scope(options_.prof, prof::Site::Finalize);
    for (auto& lane : lanes_) lane->platform->finalize(end);

    if (options_.telemetry != nullptr) {
      std::vector<obs::LaneTelemetry> streams;
      streams.reserve(lanes_.size());
      for (const auto& lane : lanes_)
        streams.push_back({lane->telemetry.get(), &lane->app_map, lane->machine_base});
      obs::merge_lanes(streams, *options_.telemetry);
    }
  }

  if (options_.prof != nullptr)
    for (const auto& lane : lanes_)
      if (lane->prof != nullptr) options_.prof->merge(*lane->prof);
}

int ShardedPlatform::lane_of(int app) const {
  SMILESS_CHECK_MSG(ran_, "lane_of before run()");
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < refs_.size());
  return lanes_[static_cast<std::size_t>(refs_[static_cast<std::size_t>(app)].lane_index)]->id;
}

const AppMetrics& ShardedPlatform::metrics(int app) const {
  SMILESS_CHECK_MSG(ran_, "metrics before run()");
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < refs_.size());
  const AppRef& r = refs_[static_cast<std::size_t>(app)];
  return lanes_[static_cast<std::size_t>(r.lane_index)]->platform->metrics(r.local);
}

sim::EngineStats ShardedPlatform::engine_stats() const {
  sim::EngineStats sum;
  for (const auto& lane : lanes_) {
    const sim::EngineStats& s = lane->engine.stats();
    sum.scheduled += s.scheduled;
    sum.fired += s.fired;
    sum.cancelled += s.cancelled;
  }
  return sum;
}

sim::CalendarStats ShardedPlatform::calendar_stats() const {
  sim::CalendarStats sum;
  for (const auto& lane : lanes_) {
    const sim::CalendarStats* s = lane->engine.engine().calendar_stats();
    if (s == nullptr) continue;
    sum.resizes += s->resizes;
    sum.direct_searches += s->direct_searches;
    sum.buckets += s->buckets;
    sum.peak_live += s->peak_live;
  }
  return sum;
}

faults::FaultStats ShardedPlatform::fault_stats() const {
  faults::FaultStats sum;
  for (const auto& lane : lanes_) {
    const faults::FaultStats& s = lane->injector.stats();
    sum.init_failures += s.init_failures;
    sum.stragglers += s.stragglers;
    sum.crashes += s.crashes;
    sum.recoveries += s.recoveries;
  }
  return sum;
}

int ShardedPlatform::populated_lanes() const { return static_cast<int>(lanes_.size()); }

}  // namespace smiless::serverless
