#include "serverless/instance_pool.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "faults/fault_injector.hpp"
#include "obs/event_bus.hpp"
#include "prof/profiler.hpp"
#include "serverless/app_table.hpp"
#include "serverless/function_scheduler.hpp"
#include "serverless/ledger.hpp"
#include "serverless/platform_view.hpp"
#include "serverless/request_tracker.hpp"

namespace smiless::serverless {

using obs::EventType;

InstancePool::InstancePool(sim::Engine& engine, cluster::Cluster& cluster, Rng& rng,
                           const PlatformOptions& options, const AppTable& table,
                           Ledger& ledger)
    : engine_(engine),
      cluster_(cluster),
      rng_(rng),
      options_(options),
      table_(table),
      ledger_(ledger) {}

void InstancePool::wire(Platform* platform, FunctionScheduler* scheduler,
                        RequestTracker* tracker) {
  platform_ = platform;
  scheduler_ = scheduler;
  tracker_ = tracker;
}

void InstancePool::add_app(std::size_t nodes) {
  apps_.emplace_back();
  apps_.back().resize(nodes);
}

InstancePool::FnPool& InstancePool::fn(AppId app, dag::NodeId node) {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < apps_.size());
  auto& fns = apps_[app];
  SMILESS_CHECK(node >= 0 && static_cast<std::size_t>(node) < fns.size());
  return fns[node];
}

const InstancePool::FnPool& InstancePool::fn(AppId app, dag::NodeId node) const {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < apps_.size());
  const auto& fns = apps_[app];
  SMILESS_CHECK(node >= 0 && static_cast<std::size_t>(node) < fns.size());
  return fns[node];
}

std::vector<Instance>& InstancePool::instances(AppId app, dag::NodeId node) {
  return fn(app, node).instances;
}

void InstancePool::claim(Instance& inst) {
  if (inst.kill_timer != 0) {
    engine_.cancel(inst.kill_timer);
    inst.kill_timer = 0;
  }
  inst.kill_at = std::numeric_limits<SimTime>::infinity();
  inst.st = InstanceState::Busy;
  inst.served = true;
}

double InstancePool::backoff_delay(int attempt) const {
  double d = options_.retry_delay;
  for (int i = 1; i < attempt && d < options_.retry_max_delay; ++i) d *= options_.retry_backoff;
  return std::min(d, options_.retry_max_delay);
}

void InstancePool::ensure_capacity(AppId app, dag::NodeId node) {
  auto& f = fn(app, node);
  if (!f.instances.empty()) return;
  if (create_instance(app, node, scheduler_->plan(app, node).config) != nullptr) return;
  if (f.retry_scheduled) return;
  if (options_.max_retries >= 0 && f.retry_attempts >= options_.max_retries) {
    f.retry_attempts = 0;
    scheduler_->fail_queued(app, node);
    return;
  }
  ++f.retry_attempts;
  ++ledger_.fn(app, node).retries;
  f.retry_scheduled = true;
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::RetryScheduled,
                           .t = engine_.now(),
                           .app = app,
                           .node = node,
                           .value = backoff_delay(f.retry_attempts),
                           .count = f.retry_attempts});
  engine_.schedule_after(backoff_delay(f.retry_attempts), [this, app, node] {
    fn(app, node).retry_scheduled = false;
    scheduler_->dispatch(app, node);
  });
}

Instance* InstancePool::create_instance(AppId app, dag::NodeId node,
                                        const perf::HwConfig& config) {
  prof::ScopeTimer scope(options_.prof, prof::Site::PoolCreate);
  auto& f = fn(app, node);
  auto alloc = cluster_.allocate(config);
  if (!alloc) return nullptr;

  Instance inst;
  inst.id = f.next_instance_id++;
  inst.config = config;
  inst.alloc = *alloc;
  inst.st = InstanceState::Init;
  inst.created = engine_.now();
  f.instances.push_back(inst);
  ++ledger_.fn(app, node).initializations;

  const double init = table_.spec(app).perf_of(node).sample_init_time(config, rng_);
  f.instances.back().ready_at = engine_.now() + init;
  const InstanceId inst_id = inst.id;
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::InstanceCreated,
                           .t = engine_.now(),
                           .app = app,
                           .node = node,
                           .instance = inst_id,
                           .machine = inst.alloc.machine,
                           .value = init});
  const bool init_fails =
      options_.faults != nullptr && options_.faults->sample_init_failure();
  f.instances.back().pending =
      engine_.schedule_after(init, [this, app, node, inst_id, init_fails] {
        if (init_fails)
          on_init_failed(app, node, inst_id);
        else
          on_init_done(app, node, inst_id);
      });
  return &f.instances.back();
}

void InstancePool::on_init_done(AppId app, dag::NodeId node, InstanceId instance_id) {
  auto& f = fn(app, node);
  auto it = std::find_if(f.instances.begin(), f.instances.end(),
                         [&](const Instance& i) { return i.id == instance_id; });
  if (it == f.instances.end()) return;  // terminated during init (finalize)
  it->pending = 0;
  it->st = InstanceState::Idle;
  f.retry_attempts = 0;  // a live instance ends the cold-start failure streak
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::InstanceReady,
                           .t = engine_.now(),
                           .t2 = it->created,
                           .app = app,
                           .node = node,
                           .instance = instance_id,
                           .machine = it->alloc.machine});
  on_instance_idle(app, node, instance_id);
}

void InstancePool::on_init_failed(AppId app, dag::NodeId node, InstanceId instance_id) {
  auto& f = fn(app, node);
  auto it = std::find_if(f.instances.begin(), f.instances.end(),
                         [&](const Instance& i) { return i.id == instance_id; });
  if (it == f.instances.end()) return;  // evicted or finalized meanwhile
  it->pending = 0;
  ++ledger_.fn(app, node).init_failures;
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::InstanceInitFailed,
                           .t = engine_.now(),
                           .t2 = it->created,
                           .app = app,
                           .node = node,
                           .instance = instance_id,
                           .machine = it->alloc.machine});
  // The failed attempt is billed (the provider ran the container) and its
  // grant released.
  retire_accounting(app, node, *it);
  f.instances.erase(it);
  ++f.retry_attempts;
  PlatformView view(*platform_);
  table_.policy(app).on_instance_failed(app, table_.spec(app), view, node,
                                        InstanceFailure::InitFailure);
  if (scheduler_->queue_empty(app, node)) return;
  // The counter includes the just-failed attempt, so `>` grants the same
  // budget as the allocation path: the initial attempt plus max_retries
  // retries before giving up.
  if (options_.max_retries >= 0 && f.retry_attempts > options_.max_retries) {
    f.retry_attempts = 0;
    scheduler_->fail_queued(app, node);
    return;
  }
  ++ledger_.fn(app, node).retries;
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::RetryScheduled,
                           .t = engine_.now(),
                           .app = app,
                           .node = node,
                           .count = f.retry_attempts});
  scheduler_->dispatch(app, node);
}

void InstancePool::on_batch_done(AppId app, dag::NodeId node, InstanceId instance_id,
                                 std::vector<RequestId> requests) {
  prof::ScopeTimer scope(options_.prof, prof::Site::PoolBatchDone);
  auto& f = fn(app, node);
  auto it = std::find_if(f.instances.begin(), f.instances.end(),
                         [&](const Instance& i) { return i.id == instance_id; });
  SMILESS_CHECK_MSG(it != f.instances.end(), "busy instance vanished");
  it->pending = 0;
  it->inflight.clear();
  it->st = InstanceState::Idle;

  for (RequestId r : requests) tracker_->complete_node(app, node, r);
  // Hand the slice's storage back before dispatching follow-on work, so the
  // dispatch inside on_instance_idle can reuse it for the next batch.
  scheduler_->recycle_slice(std::move(requests));
  on_instance_idle(app, node, instance_id);
}

void InstancePool::on_instance_idle(AppId app, dag::NodeId node, InstanceId instance_id) {
  // Serve any queued work first; the instance may go Busy again.
  scheduler_->dispatch(app, node);

  auto& f = fn(app, node);
  auto it = std::find_if(f.instances.begin(), f.instances.end(),
                         [&](const Instance& i) { return i.id == instance_id; });
  if (it == f.instances.end() || it->st != InstanceState::Idle) return;

  const FunctionPlan& plan = scheduler_->plan(app, node);

  // Config drift: reap stale-config instances as soon as they are idle,
  // unless they are needed to hold the min_instances floor.
  const int total = static_cast<int>(f.instances.size());
  const bool above_floor = total > plan.min_instances;
  if (!(it->config == plan.config) && above_floor) {
    terminate_instance(app, node, instance_id);
    return;
  }

  // A never-used pre-warmed instance gets the grace window instead of the
  // plain keep-alive: it exists precisely to absorb the next invocation.
  const double effective_keepalive =
      it->served ? plan.keepalive : std::max(plan.keepalive, plan.prewarm_grace);
  if (effective_keepalive <= 0.0 && above_floor) {
    terminate_instance(app, node, instance_id);
    return;
  }
  if (std::isfinite(effective_keepalive) && it->kill_timer == 0) {
    it->kill_at = engine_.now() + effective_keepalive;
    it->kill_timer = engine_.schedule_after(effective_keepalive, [this, app, node, instance_id] {
      auto& fs = fn(app, node);
      auto inst = std::find_if(fs.instances.begin(), fs.instances.end(),
                               [&](const Instance& i) { return i.id == instance_id; });
      if (inst == fs.instances.end() || inst->st != InstanceState::Idle) return;
      inst->kill_timer = 0;
      if (static_cast<int>(fs.instances.size()) > scheduler_->plan(app, node).min_instances)
        terminate_instance(app, node, instance_id);
    });
  }
}

void InstancePool::retire_accounting(AppId app, dag::NodeId node, const Instance& inst) {
  ledger_.bill_instance(app, node, inst, engine_.now());
  cluster_.release(inst.alloc);
}

void InstancePool::terminate_instance(AppId app, dag::NodeId node, InstanceId instance_id) {
  auto& f = fn(app, node);
  auto it = std::find_if(f.instances.begin(), f.instances.end(),
                         [&](const Instance& i) { return i.id == instance_id; });
  SMILESS_CHECK(it != f.instances.end());
  SMILESS_CHECK_MSG(it->st != InstanceState::Busy, "cannot terminate a busy instance");

  if (it->kill_timer != 0) engine_.cancel(it->kill_timer);
  if (it->pending != 0) engine_.cancel(it->pending);
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::InstanceTerminated,
                           .t = engine_.now(),
                           .t2 = it->created,
                           .app = app,
                           .node = node,
                           .instance = instance_id,
                           .machine = it->alloc.machine});
  retire_accounting(app, node, *it);
  f.instances.erase(it);
}


int InstancePool::count_total(AppId app, dag::NodeId node) const {
  return static_cast<int>(fn(app, node).instances.size());
}

int InstancePool::count_state(AppId app, dag::NodeId node, InstanceState st) const {
  int n = 0;
  for (const auto& i : fn(app, node).instances)
    if (i.st == st) ++n;
  return n;
}

InstancePool::Census InstancePool::census(AppId app) const {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < apps_.size());
  Census c;
  for (const auto& f : apps_[app]) {
    for (const auto& inst : f.instances) {
      ++c.total;
      if (inst.config.backend == perf::Backend::Cpu)
        ++c.cpu;
      else
        ++c.gpu;
    }
  }
  return c;
}

}  // namespace smiless::serverless
