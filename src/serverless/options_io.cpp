#include "serverless/options_io.hpp"

namespace smiless::serverless {

json::Value to_json(const PlatformOptions& o) {
  json::Value v = json::Value::object();
  v["window_seconds"] = o.window_seconds;
  v["inference_noise"] = o.inference_noise;
  v["retry_delay"] = o.retry_delay;
  v["retry_backoff"] = o.retry_backoff;
  v["retry_max_delay"] = o.retry_max_delay;
  v["max_retries"] = o.max_retries;
  v["request_timeout"] = o.request_timeout;
  v["record_traces"] = o.record_traces;
  return v;
}

PlatformOptions platform_options_from_json(const json::Value& v) {
  PlatformOptions o;
  o.window_seconds = v.get("window_seconds", o.window_seconds);
  o.inference_noise = v.get("inference_noise", o.inference_noise);
  o.retry_delay = v.get("retry_delay", o.retry_delay);
  o.retry_backoff = v.get("retry_backoff", o.retry_backoff);
  o.retry_max_delay = v.get("retry_max_delay", o.retry_max_delay);
  o.max_retries = v.get("max_retries", o.max_retries);
  o.request_timeout = v.get("request_timeout", o.request_timeout);
  o.record_traces = v.get("record_traces", o.record_traces);
  return o;
}

}  // namespace smiless::serverless
