#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "dag/dag.hpp"

namespace smiless::serverless {

/// One function execution within a request, as the event tracker records it
/// (the Prometheus-equivalent of §IV-A): when the invocation became ready
/// (all predecessors done), when inference actually started, and when it
/// finished. `start - ready` is the cold/queue wait that pre-warming is
/// supposed to eliminate.
struct NodeSpan {
  dag::NodeId node = -1;
  SimTime ready = 0.0;
  SimTime start = 0.0;
  SimTime end = 0.0;
  int batch = 0;       ///< batch size of the inference call that served it
  bool cold = false;   ///< true when the wait exceeded the scheduling epsilon
  int attempt = 0;     ///< re-dispatch count of the request when this span ran
                       ///< (> 0 after an eviction or backoff retry)

  double wait() const { return start - ready; }
  double inference() const { return end - start; }
};

/// The full execution trace of one request.
struct RequestTrace {
  SimTime arrival = 0.0;
  SimTime completion = 0.0;
  std::vector<NodeSpan> spans;  ///< in completion order

  double e2e() const { return completion - arrival; }
  /// Total cold/queue wait along the request's critical path is bounded by
  /// the sum of waits; this helper reports that sum.
  double total_wait() const {
    double s = 0.0;
    for (const auto& span : spans) s += span.wait();
    return s;
  }
  /// Number of stages that experienced a cold/queue wait.
  int cold_stages() const {
    int n = 0;
    for (const auto& span : spans)
      if (span.cold) ++n;
    return n;
  }
};

/// Human-readable rendering of a trace (one line per span).
std::string format_trace(const RequestTrace& trace, const dag::Dag& dag);

}  // namespace smiless::serverless
