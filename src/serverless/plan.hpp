#pragma once

#include <limits>

#include "perfmodel/hardware.hpp"

namespace smiless::serverless {

/// Per-function execution plan — the unit of control a scheduling policy
/// exerts over the platform. Combines the hardware configuration (star_k in
/// the paper) with the cold-start management knobs (triangle_k).
struct FunctionPlan {
  perf::HwConfig config{perf::Backend::Cpu, 1, 0};

  /// Seconds an instance may sit idle before the ContainerManager reaps it.
  /// 0 terminates immediately after the queue drains (pre-warming mode,
  /// Case I of §V-B); infinity keeps the instance alive (Case II).
  double keepalive = std::numeric_limits<double>::infinity();

  /// Maximum invocations the instance Agent batches per inference call
  /// (adaptive batching, §V-B2).
  int max_batch = 1;

  /// Instance floor maintained by the Auto-scaler during bursts: the
  /// platform will not reap idle instances below this count, and raises the
  /// count immediately when the floor increases.
  int min_instances = 0;

  /// Grace period for a pre-warmed instance that has not served a request
  /// yet. With keepalive == 0 a freshly-initialised instance would otherwise
  /// terminate before the invocation it was warmed for arrives; the grace
  /// absorbs pre-warm timing jitter.
  double prewarm_grace = 2.0;

  static double forever() { return std::numeric_limits<double>::infinity(); }
};

}  // namespace smiless::serverless
