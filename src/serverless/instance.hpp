#pragma once

#include <limits>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "perfmodel/hardware.hpp"
#include "serverless/types.hpp"
#include "sim/engine.hpp"

namespace smiless::serverless {

/// One container instance of a function: the unit the InstancePool manages,
/// the Router selects among, and the Ledger bills from `created` to its
/// termination instant.
struct Instance {
  InstanceId id = -1;
  perf::HwConfig config;
  cluster::Allocation alloc;
  InstanceState st = InstanceState::Init;
  SimTime created = 0.0;
  SimTime ready_at = 0.0;  ///< when the cold init completes
  SimTime kill_at = std::numeric_limits<SimTime>::infinity();  ///< armed reap time
  bool served = false;          ///< has executed at least one batch
  sim::EventId kill_timer = 0;  ///< pending keep-alive reap, 0 if none
  sim::EventId pending = 0;     ///< in-flight init or batch-completion event
  std::vector<RequestId> inflight;  ///< requests executing in the current batch
};

}  // namespace smiless::serverless
