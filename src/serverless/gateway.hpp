#pragma once

#include <deque>
#include <vector>

#include "common/units.hpp"
#include "serverless/types.hpp"

namespace smiless::sim {
class Engine;
}  // namespace smiless::sim

namespace smiless::serverless {

class AppTable;
class InstancePool;
class Ledger;
class Platform;
class RequestTracker;
struct PlatformOptions;

/// Gateway — arrival intake and the per-app window ticker. Single
/// responsibility: accept request submissions, count arrivals per counting
/// window (§IV-B: "a specified time window, which is set to one second"),
/// snapshot a WindowSample into the Ledger at each boundary, and deliver
/// WindowStats to the policy. Publishes obs: RequestSubmitted is published
/// downstream by the RequestTracker it admits into; the Gateway itself
/// publishes nothing.
class Gateway {
 public:
  Gateway(sim::Engine& engine, const PlatformOptions& options, const AppTable& table,
          Ledger& ledger);

  /// Late binding of the collaborators (the facade wires the cycle).
  void wire(Platform* platform, RequestTracker* tracker, InstancePool* pool);

  /// Open the books for a newly deployed app: the first window starts now.
  void add_app();
  /// Schedule the first window tick (called after Policy::on_deploy so the
  /// deploy-time plan installation precedes any window event).
  void start(AppId app);

  /// Schedule a user request for `app` at absolute time `arrival`.
  void submit(AppId app, SimTime arrival);

  /// Stop ticking (finalize). Idempotent.
  void halt() { halted_ = true; }

  /// Per-window arrival counts observed so far (the series the Online
  /// Predictor trains on).
  const std::vector<int>& arrival_counts(AppId app) const;

 private:
  struct AppWindows {
    std::vector<int> counts;  ///< finished windows
    int current_arrivals = 0;
    SimTime next_end = 0.0;
  };

  void window_tick(AppId app);
  AppWindows& windows(AppId app);
  const AppWindows& windows(AppId app) const;

  sim::Engine& engine_;
  const PlatformOptions& options_;
  const AppTable& table_;
  Ledger& ledger_;
  Platform* platform_ = nullptr;
  RequestTracker* tracker_ = nullptr;
  InstancePool* pool_ = nullptr;
  std::deque<AppWindows> apps_;  // by AppId; deque: stable arrival_counts refs
  bool halted_ = false;
};

}  // namespace smiless::serverless
