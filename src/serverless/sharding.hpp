#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "cluster/cluster.hpp"
#include "faults/fault_injector.hpp"
#include "perfmodel/hardware.hpp"
#include "serverless/platform.hpp"
#include "sim/engine.hpp"

namespace smiless::obs {
class Telemetry;
}  // namespace smiless::obs

namespace smiless::serverless {

/// Knobs for one sharded cell (DESIGN.md §14).
struct ShardOptions {
  /// Number of lanes apps are hash-partitioned into. 1 degenerates to a
  /// single lane holding every app over the whole cluster.
  int lanes = 1;

  /// Threads stepping lanes between window barriers. 1 steps lanes serially
  /// on the calling thread; 0 picks hardware concurrency (capped at the
  /// populated lane count). The choice affects wall-clock only — every
  /// artifact is byte-identical at any thread count. Lanes never run on a
  /// policy solver pool (a policy blocking on its own pool would deadlock).
  int lane_threads = 0;

  std::uint64_t seed = 42;

  /// Fleet divided among the *populated* lanes (contiguous slices, remainder
  /// machines to the earliest lanes). A single populated lane gets the whole
  /// fleet, which is what makes single-app cells invariant in `lanes`.
  std::size_t machines = 8;
  cluster::MachineSpec machine_spec;
  perf::Pricing pricing;

  /// Per-lane platform knobs; `window_seconds` doubles as the barrier
  /// period. `lane` and the fault/bus pointers are overwritten per lane.
  PlatformOptions platform;

  /// Cell-wide fault model. Scheduled crashes are filtered to each lane's
  /// machine slice (ids remapped to lane-local); rate-based knobs apply to
  /// every lane, drawn from its private RNG stream.
  faults::FaultSpec faults;

  /// Merged observability output (non-owning, may be null). Each lane
  /// records into a private Telemetry; at the end of run() the lane streams
  /// are merged in deterministic (t, lane, order) order into this bundle
  /// with app/machine ids translated back to the cell's global spaces.
  obs::Telemetry* telemetry = nullptr;

  /// Merged self-profiler output (non-owning, may be null). Profilers are
  /// not thread-safe, so each lane times itself into a private Profiler
  /// (lane step, engine, platform subsystems) while the coordinator charges
  /// barrier waits here; lane profilers are merged into this one — keeping
  /// a per-lane breakdown — after the run. Wall-clock only; the trajectory
  /// and every golden-compared artifact are identical with or without it.
  prof::Profiler* prof = nullptr;
};

/// A single cell's simulation sharded into deterministic parallel lanes.
///
/// Apps are partitioned by a stable hash of their deploy index; each lane
/// owns a full private world — engine, cluster slice, RNG, fault injector,
/// platform, telemetry — and lanes advance in lockstep between
/// `window_seconds` barriers. Because lanes share no mutable state and every
/// merge is ordered by (time, lane id, per-lane order), the output is
/// bit-identical at any `lane_threads`, and a cell whose apps land in one
/// lane reproduces the monolithic run exactly: the lone lane inherits the
/// whole cluster, the unmixed seed (the lane seed of app index 0 IS the cell
/// seed) and the full fault spec.
///
/// Arrivals are injected one window ahead of the barrier instead of being
/// scheduled upfront, bounding live events in each lane's queue to roughly a
/// window's worth — this is also the platform's throughput path (see
/// BENCH_throughput.json).
///
/// Usage: add_app() every app, then run() exactly once, then read the books.
class ShardedPlatform {
 public:
  explicit ShardedPlatform(ShardOptions options);
  ~ShardedPlatform();

  ShardedPlatform(const ShardedPlatform&) = delete;
  ShardedPlatform& operator=(const ShardedPlatform&) = delete;

  /// Register an app with its policy and full arrival sequence (sorted,
  /// absolute sim times). Returns the app's global id. Call before run().
  int add_app(apps::App app, std::shared_ptr<Policy> policy, std::vector<SimTime> arrivals);

  /// Build the lanes, serve until `end` in window-barrier lockstep, finalize
  /// every lane and merge telemetry. Call exactly once.
  void run(SimTime end);

  /// The stable partition function: lane of the app with deploy index
  /// `global_index` under a `lanes`-way split.
  static int lane_for(std::size_t global_index, int lanes);

  int lane_of(int app) const;

  // --- the merged books (valid after run()) --------------------------------

  const AppMetrics& metrics(int app) const;
  /// Engine counters summed over lanes.
  sim::EngineStats engine_stats() const;
  /// Injector counters summed over lanes.
  faults::FaultStats fault_stats() const;
  /// Calendar-queue internals summed over lanes (resizes and direct
  /// searches add; buckets and peak_live are summed footprints). Internal
  /// diagnostics only: the values differ between the monolithic
  /// (upfront-scheduling) and sharded (streaming-injection) paths even
  /// when the trajectories are identical, so they stay out of comparable
  /// artifacts unless explicitly requested (ObservabilityOptions::
  /// internal_stats).
  sim::CalendarStats calendar_stats() const;

  int populated_lanes() const;
  const ShardOptions& options() const { return options_; }

 private:
  struct Lane;
  struct PendingApp {
    apps::App app;
    std::shared_ptr<Policy> policy;
    std::vector<SimTime> arrivals;
  };
  struct AppRef {
    int lane_index = -1;  ///< index into lanes_ (populated lanes only)
    AppId local = 0;      ///< the app's id inside its lane's platform
  };

  void build_lanes();
  void inject_arrivals(Lane& lane, double limit, bool flush_all);

  ShardOptions options_;
  std::vector<PendingApp> pending_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<AppRef> refs_;
  bool ran_ = false;
};

}  // namespace smiless::serverless
