#include "serverless/platform.hpp"

#include <utility>

#include "common/check.hpp"
#include "obs/event_bus.hpp"
#include "serverless/platform_view.hpp"

namespace smiless::serverless {

using obs::EventType;

Platform::Platform(sim::Engine& engine, cluster::Cluster& cluster, perf::Pricing pricing,
                   Rng& rng, PlatformOptions options)
    : engine_(engine),
      cluster_(cluster),
      rng_(rng),
      options_(options),
      ledger_(pricing),
      gateway_(engine_, options_, table_, ledger_),
      tracker_(engine_, options_, table_, ledger_),
      scheduler_(engine_, rng_, options_, table_, ledger_),
      pool_(engine_, cluster_, rng_, options_, table_, ledger_) {
  SMILESS_CHECK(options_.window_seconds > 0.0);
  SMILESS_CHECK(options_.retry_delay > 0.0);
  SMILESS_CHECK(options_.retry_backoff >= 1.0);
  SMILESS_CHECK(options_.retry_max_delay >= options_.retry_delay);
  SMILESS_CHECK(options_.request_timeout > 0.0);
  gateway_.wire(this, &tracker_, &pool_);
  tracker_.wire(&scheduler_);
  scheduler_.wire(&tracker_, &pool_);
  pool_.wire(this, &scheduler_, &tracker_);
  cluster_listener_ = cluster_.add_listener([this](int machine, bool up) {
    if (options_.bus != nullptr)
      options_.bus->publish({.type = up ? EventType::MachineUp : EventType::MachineDown,
                             .t = engine_.now(),
                             .machine = machine});
    if (!up) pool_.on_machine_down(machine);
  });
}

Platform::~Platform() { cluster_.remove_listener(cluster_listener_); }

AppId Platform::deploy(apps::App app, std::shared_ptr<Policy> policy) {
  SMILESS_CHECK(policy != nullptr);
  SMILESS_CHECK(app.dag.size() == app.truth.size());
  const AppId id = table_.add(std::move(app), std::move(policy));
  const std::size_t nodes = table_.nodes(id);
  ledger_.add_app(nodes);
  gateway_.add_app();
  tracker_.add_app();
  scheduler_.add_app(nodes);
  pool_.add_app(nodes);

  PlatformView view(*this);
  table_.policy(id).on_deploy(id, table_.spec(id), view);
  gateway_.start(id);  // after on_deploy: deploy-time plans precede any tick
  return id;
}

void Platform::submit_request(AppId app, SimTime arrival) { gateway_.submit(app, arrival); }

void Platform::finalize(SimTime end) {
  if (finalized_) return;
  finalized_ = true;
  gateway_.halt();
  scheduler_.halt();
  pool_.finalize(end);
  tracker_.finalize();
}

// --- control surface --------------------------------------------------------

void Platform::set_plan(AppId app, dag::NodeId node, FunctionPlan plan) {
  SMILESS_CHECK(plan.max_batch >= 1);
  SMILESS_CHECK(plan.min_instances >= 0);
  scheduler_.set_plan(app, node, plan);
  pool_.apply_plan(app, node, plan);
  scheduler_.dispatch(app, node);
}

const FunctionPlan& Platform::plan(AppId app, dag::NodeId node) const {
  return scheduler_.plan(app, node);
}

sim::EventId Platform::prewarm_at(AppId app, dag::NodeId node, SimTime init_start) {
  return pool_.prewarm_at(app, node, init_start);
}

void Platform::cancel_prewarm(sim::EventId id) { pool_.cancel_prewarm(id); }

void Platform::clear_prewarms(AppId app, dag::NodeId node) { pool_.clear_prewarms(app, node); }

bool Platform::spawn_instance(AppId app, dag::NodeId node) { return pool_.spawn(app, node); }

// --- introspection -----------------------------------------------------------

SimTime Platform::now() const { return engine_.now(); }

const apps::App& Platform::app_spec(AppId app) const { return table_.spec(app); }

int Platform::instances_total(AppId app, dag::NodeId node) const {
  return pool_.count_total(app, node);
}

int Platform::instances_idle(AppId app, dag::NodeId node) const {
  return pool_.count_state(app, node, InstanceState::Idle);
}

int Platform::instances_initializing(AppId app, dag::NodeId node) const {
  return pool_.count_state(app, node, InstanceState::Init);
}

int Platform::instances_busy(AppId app, dag::NodeId node) const {
  return pool_.count_state(app, node, InstanceState::Busy);
}

std::size_t Platform::queue_length(AppId app, dag::NodeId node) const {
  return scheduler_.queue_length(app, node);
}

const AppMetrics& Platform::metrics(AppId app) const { return ledger_.metrics(app); }

long Platform::in_flight(AppId app) const { return ledger_.in_flight(app); }

const std::vector<int>& Platform::arrival_counts(AppId app) const {
  return gateway_.arrival_counts(app);
}

}  // namespace smiless::serverless
