#include "serverless/platform.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "faults/fault_injector.hpp"
#include "obs/event_bus.hpp"

namespace smiless::serverless {

namespace {
enum class InstState { Init, Idle, Busy };
using obs::EventType;
}  // namespace

struct Platform::Instance {
  int id = -1;
  perf::HwConfig config;
  cluster::Allocation alloc;
  InstState st = InstState::Init;
  SimTime created = 0.0;
  SimTime ready_at = 0.0;       // when the cold init completes
  SimTime kill_at = std::numeric_limits<SimTime>::infinity();  // armed reap time
  bool served = false;          // has executed at least one batch
  sim::EventId kill_timer = 0;  // pending keep-alive reap, 0 if none
  sim::EventId pending = 0;     // in-flight init or batch-completion event
  std::vector<int> inflight;    // requests executing in the current batch
};

struct Platform::FnState {
  FunctionPlan plan;
  std::vector<Instance> instances;
  std::deque<int> queue;  // ready invocations, by request index
  std::vector<sim::EventId> prewarms;
  int next_instance_id = 0;
  bool retry_scheduled = false;
  int retry_attempts = 0;  // consecutive failed cold starts (alloc or init)
};

struct Platform::RequestState {
  SimTime arrival = 0.0;
  std::vector<int> pending_preds;  // per node
  std::vector<SimTime> ready_at;   // when each node's invocation became ready
  std::vector<NodeSpan> spans;     // recorded when tracing is enabled
  std::vector<sim::EventId> timeout_ev;  // per node; non-empty iff timeout armed
  int sinks_remaining = 0;
  int retries = 0;  // times any invocation of this request was re-dispatched
  bool done = false;
  bool failed = false;  // terminal Failed state (timeout / retries exhausted)
};

struct Platform::AppState {
  apps::App spec;
  std::shared_ptr<Policy> policy;
  std::vector<FnState> fns;
  std::vector<RequestState> requests;
  AppMetrics metrics;
  std::vector<int> window_counts;  // finished windows
  int current_window_arrivals = 0;
  SimTime next_window_end = 0.0;
};

Platform::Platform(sim::Engine& engine, cluster::Cluster& cluster, perf::Pricing pricing,
                   Rng& rng, PlatformOptions options)
    : engine_(engine), cluster_(cluster), pricing_(pricing), rng_(rng), options_(options) {
  SMILESS_CHECK(options_.window_seconds > 0.0);
  SMILESS_CHECK(options_.retry_delay > 0.0);
  SMILESS_CHECK(options_.retry_backoff >= 1.0);
  SMILESS_CHECK(options_.retry_max_delay >= options_.retry_delay);
  SMILESS_CHECK(options_.request_timeout > 0.0);
  cluster_listener_ = cluster_.add_listener([this](int machine, bool up) {
    if (options_.bus != nullptr)
      options_.bus->publish({.type = up ? EventType::MachineUp : EventType::MachineDown,
                             .t = engine_.now(),
                             .machine = machine});
    if (!up) on_machine_down(machine);
  });
}

Platform::~Platform() { cluster_.remove_listener(cluster_listener_); }

Platform::AppState& Platform::state(AppId app) {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < apps_.size());
  return *apps_[app];
}

const Platform::AppState& Platform::state(AppId app) const {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < apps_.size());
  return *apps_[app];
}

Platform::FnState& Platform::fn_state(AppId app, dag::NodeId node) {
  auto& a = state(app);
  SMILESS_CHECK(node >= 0 && static_cast<std::size_t>(node) < a.fns.size());
  return a.fns[node];
}

AppId Platform::deploy(apps::App app, std::shared_ptr<Policy> policy) {
  SMILESS_CHECK(policy != nullptr);
  SMILESS_CHECK(app.dag.size() == app.truth.size());
  auto st = std::make_unique<AppState>();
  st->spec = std::move(app);
  st->policy = std::move(policy);
  st->fns.resize(st->spec.dag.size());
  st->metrics.per_function.resize(st->spec.dag.size());
  st->next_window_end = engine_.now() + options_.window_seconds;
  apps_.push_back(std::move(st));
  const AppId id = static_cast<AppId>(apps_.size() - 1);

  auto& a = state(id);
  a.policy->on_deploy(id, a.spec, *this);
  engine_.schedule_at(a.next_window_end, [this, id] { window_tick(id); });
  return id;
}

void Platform::window_tick(AppId app) {
  if (finalized_) return;  // engine may still drain ticks after finalize()
  auto& a = state(app);
  WindowStats stats;
  stats.window_end = a.next_window_end;
  stats.window_start = a.next_window_end - options_.window_seconds;
  stats.arrivals = a.current_window_arrivals;
  a.window_counts.push_back(a.current_window_arrivals);

  WindowSample sample;
  sample.window_start = stats.window_start;
  sample.arrivals = a.current_window_arrivals;
  for (const auto& fn : a.fns) {
    for (const auto& inst : fn.instances) {
      ++sample.instances_total;
      if (inst.config.backend == perf::Backend::Cpu)
        ++sample.instances_cpu;
      else
        ++sample.instances_gpu;
    }
  }
  a.metrics.windows.push_back(sample);

  a.current_window_arrivals = 0;
  a.next_window_end += options_.window_seconds;
  a.policy->on_window(app, a.spec, *this, stats);
  engine_.schedule_at(a.next_window_end, [this, app] { window_tick(app); });
}

void Platform::submit_request(AppId app, SimTime arrival) {
  SMILESS_CHECK(arrival >= engine_.now());
  engine_.schedule_at(arrival, [this, app] {
    auto& a = state(app);
    ++a.metrics.submitted;
    ++a.current_window_arrivals;
    a.policy->on_arrival(app, a.spec, *this, engine_.now());

    RequestState req;
    req.arrival = engine_.now();
    req.pending_preds.resize(a.spec.dag.size());
    if (options_.record_traces) req.ready_at.assign(a.spec.dag.size(), 0.0);
    for (std::size_t n = 0; n < a.spec.dag.size(); ++n)
      req.pending_preds[n] = static_cast<int>(a.spec.dag.in_degree(static_cast<dag::NodeId>(n)));
    req.sinks_remaining = static_cast<int>(a.spec.dag.sinks().size());
    a.requests.push_back(std::move(req));
    const int ridx = static_cast<int>(a.requests.size() - 1);
    if (options_.bus != nullptr)
      options_.bus->publish({.type = EventType::RequestSubmitted,
                             .t = engine_.now(),
                             .app = app,
                             .request = ridx});

    for (dag::NodeId src : a.spec.dag.sources()) enqueue_invocation(app, src, ridx);
  });
}

void Platform::enqueue_invocation(AppId app, dag::NodeId node, int request) {
  auto& a = state(app);
  auto& f = fn_state(app, node);
  if (options_.record_traces) a.requests[request].ready_at[node] = engine_.now();
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::InvocationReady,
                           .t = engine_.now(),
                           .app = app,
                           .node = node,
                           .request = request});
  arm_timeout(app, node, request);
  f.queue.push_back(request);
  dispatch(app, node);
}

void Platform::arm_timeout(AppId app, dag::NodeId node, int request) {
  if (!std::isfinite(options_.request_timeout)) return;
  auto& a = state(app);
  auto& req = a.requests[request];
  if (req.timeout_ev.empty()) req.timeout_ev.assign(a.spec.dag.size(), 0);
  if (req.timeout_ev[node] != 0) return;  // deadline set at first readiness
  req.timeout_ev[node] =
      engine_.schedule_after(options_.request_timeout, [this, app, node, request] {
        if (finalized_) return;
        auto& st = state(app);
        auto& r = st.requests[request];
        r.timeout_ev[node] = 0;
        if (r.done || r.failed) return;
        ++st.metrics.per_function[node].timeouts;
        if (options_.bus != nullptr)
          options_.bus->publish({.type = EventType::TimeoutFired,
                                 .t = engine_.now(),
                                 .app = app,
                                 .node = node,
                                 .request = request});
        fail_request(app, request);
      });
}

void Platform::fail_request(AppId app, int request) {
  auto& a = state(app);
  auto& req = a.requests[request];
  if (req.done || req.failed) return;
  req.failed = true;
  ++a.metrics.failed;
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::RequestFailed,
                           .t = engine_.now(),
                           .t2 = req.arrival,
                           .app = app,
                           .request = request});
  for (auto& ev : req.timeout_ev) {
    if (ev != 0) {
      engine_.cancel(ev);
      ev = 0;
    }
  }
  // Strip every queued (not yet executing) invocation of this request; a
  // batch already in flight finishes and is ignored by complete_node.
  for (auto& f : a.fns) {
    for (auto it = f.queue.begin(); it != f.queue.end();)
      it = (*it == request) ? f.queue.erase(it) : std::next(it);
  }
}

void Platform::fail_queued(AppId app, dag::NodeId node) {
  auto& f = fn_state(app, node);
  while (!f.queue.empty()) {
    const int r = f.queue.front();
    fail_request(app, r);
    if (!f.queue.empty() && f.queue.front() == r) f.queue.pop_front();  // defensive
  }
}

double Platform::backoff_delay(int attempt) const {
  double d = options_.retry_delay;
  for (int i = 1; i < attempt && d < options_.retry_max_delay; ++i) d *= options_.retry_backoff;
  return std::min(d, options_.retry_max_delay);
}

void Platform::dispatch(AppId app, dag::NodeId node) {
  if (finalized_) return;
  auto& a = state(app);
  auto& f = fn_state(app, node);

  while (!f.queue.empty()) {
    // Prefer an idle instance whose config matches the current plan; fall
    // back to any warm idle instance (it is warm — use it).
    Instance* chosen = nullptr;
    for (auto& inst : f.instances) {
      if (inst.st != InstState::Idle) continue;
      if (inst.config == f.plan.config) {
        chosen = &inst;
        break;
      }
      if (chosen == nullptr) chosen = &inst;
    }
    if (chosen == nullptr) break;

    // Claim the instance and form a batch.
    if (chosen->kill_timer != 0) {
      engine_.cancel(chosen->kill_timer);
      chosen->kill_timer = 0;
    }
    chosen->kill_at = std::numeric_limits<SimTime>::infinity();
    chosen->st = InstState::Busy;
    chosen->served = true;
    const int batch_n =
        std::min<int>(std::max(1, f.plan.max_batch), static_cast<int>(f.queue.size()));
    std::vector<int> batch;
    batch.reserve(batch_n);
    for (int i = 0; i < batch_n; ++i) {
      batch.push_back(f.queue.front());
      f.queue.pop_front();
    }

    auto& fm = a.metrics.per_function[node];
    fm.invocations += batch_n;
    fm.batches += 1;

    double latency = a.spec.perf_of(node).sample_inference_time(
        chosen->config, batch_n, options_.inference_noise, rng_);
    if (options_.faults != nullptr) latency = options_.faults->inflate_inference(latency);
    const int inst_id = chosen->id;
    const SimTime exec_start = engine_.now();
    if (options_.bus != nullptr)
      options_.bus->publish({.type = EventType::BatchStart,
                             .t = exec_start,
                             .app = app,
                             .node = node,
                             .request = batch.front(),
                             .instance = inst_id,
                             .machine = chosen->alloc.machine,
                             .count = batch_n});
    chosen->inflight = batch;
    chosen->pending = engine_.schedule_after(
        latency, [this, app, node, inst_id, exec_start, batch = std::move(batch)]() mutable {
          if (options_.record_traces) {
            auto& st = state(app);
            for (int r : batch) {
              NodeSpan span;
              span.node = node;
              span.ready = st.requests[r].ready_at[node];
              span.start = exec_start;
              span.end = engine_.now();
              span.batch = static_cast<int>(batch.size());
              span.cold = span.wait() > 1e-6;
              span.attempt = st.requests[r].retries;
              st.requests[r].spans.push_back(span);
            }
          }
          if (options_.bus != nullptr) {
            options_.bus->publish({.type = EventType::BatchEnd,
                                   .t = engine_.now(),
                                   .t2 = exec_start,
                                   .app = app,
                                   .node = node,
                                   .request = batch.front(),
                                   .instance = inst_id,
                                   .count = static_cast<int>(batch.size())});
            for (int r : batch)
              options_.bus->publish({.type = EventType::InvocationDone,
                                     .t = engine_.now(),
                                     .t2 = exec_start,
                                     .app = app,
                                     .node = node,
                                     .request = r,
                                     .instance = inst_id,
                                     .count = static_cast<int>(batch.size())});
          }
          on_batch_done(app, node, inst_id, std::move(batch));
        });
  }

  if (f.queue.empty()) return;

  // Queue still non-empty: cold-start on demand iff the function has no
  // instance at all (scale-out beyond that is the policy's decision). A
  // failed allocation enters the bounded exponential-backoff retry loop;
  // when the budget is exhausted, everything queued here fails.
  if (f.instances.empty()) {
    if (create_instance(app, node, f.plan.config) != nullptr) return;
    if (f.retry_scheduled) return;
    if (options_.max_retries >= 0 && f.retry_attempts >= options_.max_retries) {
      f.retry_attempts = 0;
      fail_queued(app, node);
      return;
    }
    ++f.retry_attempts;
    ++a.metrics.per_function[node].retries;
    f.retry_scheduled = true;
    if (options_.bus != nullptr)
      options_.bus->publish({.type = EventType::RetryScheduled,
                             .t = engine_.now(),
                             .app = app,
                             .node = node,
                             .value = backoff_delay(f.retry_attempts),
                             .count = f.retry_attempts});
    engine_.schedule_after(backoff_delay(f.retry_attempts), [this, app, node] {
      fn_state(app, node).retry_scheduled = false;
      dispatch(app, node);
    });
  }
}

Platform::Instance* Platform::create_instance(AppId app, dag::NodeId node,
                                              const perf::HwConfig& config) {
  auto& a = state(app);
  auto& f = fn_state(app, node);
  auto alloc = cluster_.allocate(config);
  if (!alloc) return nullptr;

  Instance inst;
  inst.id = f.next_instance_id++;
  inst.config = config;
  inst.alloc = *alloc;
  inst.st = InstState::Init;
  inst.created = engine_.now();
  f.instances.push_back(inst);
  ++a.metrics.per_function[node].initializations;

  const double init = a.spec.perf_of(node).sample_init_time(config, rng_);
  f.instances.back().ready_at = engine_.now() + init;
  const int inst_id = inst.id;
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::InstanceCreated,
                           .t = engine_.now(),
                           .app = app,
                           .node = node,
                           .instance = inst_id,
                           .machine = inst.alloc.machine,
                           .value = init});
  const bool init_fails =
      options_.faults != nullptr && options_.faults->sample_init_failure();
  f.instances.back().pending =
      engine_.schedule_after(init, [this, app, node, inst_id, init_fails] {
        if (init_fails)
          on_init_failed(app, node, inst_id);
        else
          on_init_done(app, node, inst_id);
      });
  return &f.instances.back();
}

void Platform::on_init_done(AppId app, dag::NodeId node, int instance_id) {
  auto& f = fn_state(app, node);
  auto it = std::find_if(f.instances.begin(), f.instances.end(),
                         [&](const Instance& i) { return i.id == instance_id; });
  if (it == f.instances.end()) return;  // terminated during init (finalize)
  it->pending = 0;
  it->st = InstState::Idle;
  f.retry_attempts = 0;  // a live instance ends the cold-start failure streak
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::InstanceReady,
                           .t = engine_.now(),
                           .t2 = it->created,
                           .app = app,
                           .node = node,
                           .instance = instance_id,
                           .machine = it->alloc.machine});
  on_instance_idle(app, node, instance_id);
}

void Platform::on_init_failed(AppId app, dag::NodeId node, int instance_id) {
  auto& a = state(app);
  auto& f = fn_state(app, node);
  auto it = std::find_if(f.instances.begin(), f.instances.end(),
                         [&](const Instance& i) { return i.id == instance_id; });
  if (it == f.instances.end()) return;  // evicted or finalized meanwhile
  it->pending = 0;
  ++a.metrics.per_function[node].init_failures;
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::InstanceInitFailed,
                           .t = engine_.now(),
                           .t2 = it->created,
                           .app = app,
                           .node = node,
                           .instance = instance_id,
                           .machine = it->alloc.machine});
  // The failed attempt is billed (the provider ran the container) and its
  // grant released.
  retire_accounting(a, node, *it);
  f.instances.erase(it);
  ++f.retry_attempts;
  a.policy->on_instance_failed(app, a.spec, *this, node, InstanceFailure::InitFailure);
  if (f.queue.empty()) return;
  // The counter includes the just-failed attempt, so `>` grants the same
  // budget as the allocation path: the initial attempt plus max_retries
  // retries before giving up.
  if (options_.max_retries >= 0 && f.retry_attempts > options_.max_retries) {
    f.retry_attempts = 0;
    fail_queued(app, node);
    return;
  }
  ++a.metrics.per_function[node].retries;
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::RetryScheduled,
                           .t = engine_.now(),
                           .app = app,
                           .node = node,
                           .count = f.retry_attempts});
  dispatch(app, node);
}

void Platform::on_batch_done(AppId app, dag::NodeId node, int instance_id,
                             std::vector<int> requests) {
  auto& f = fn_state(app, node);
  auto it = std::find_if(f.instances.begin(), f.instances.end(),
                         [&](const Instance& i) { return i.id == instance_id; });
  SMILESS_CHECK_MSG(it != f.instances.end(), "busy instance vanished");
  it->pending = 0;
  it->inflight.clear();
  it->st = InstState::Idle;

  for (int r : requests) complete_node(app, node, r);
  on_instance_idle(app, node, instance_id);
}

void Platform::on_instance_idle(AppId app, dag::NodeId node, int instance_id) {
  // Serve any queued work first; the instance may go Busy again.
  dispatch(app, node);

  auto& f = fn_state(app, node);
  auto it = std::find_if(f.instances.begin(), f.instances.end(),
                         [&](const Instance& i) { return i.id == instance_id; });
  if (it == f.instances.end() || it->st != InstState::Idle) return;

  // Config drift: reap stale-config instances as soon as they are idle,
  // unless they are needed to hold the min_instances floor.
  const int total = static_cast<int>(f.instances.size());
  const bool above_floor = total > f.plan.min_instances;
  if (!(it->config == f.plan.config) && above_floor) {
    terminate_instance(app, node, instance_id);
    return;
  }

  // A never-used pre-warmed instance gets the grace window instead of the
  // plain keep-alive: it exists precisely to absorb the next invocation.
  const double effective_keepalive =
      it->served ? f.plan.keepalive : std::max(f.plan.keepalive, f.plan.prewarm_grace);
  if (effective_keepalive <= 0.0 && above_floor) {
    terminate_instance(app, node, instance_id);
    return;
  }
  if (std::isfinite(effective_keepalive) && it->kill_timer == 0) {
    it->kill_at = engine_.now() + effective_keepalive;
    it->kill_timer = engine_.schedule_after(effective_keepalive, [this, app, node, instance_id] {
      auto& fs = fn_state(app, node);
      auto inst = std::find_if(fs.instances.begin(), fs.instances.end(),
                               [&](const Instance& i) { return i.id == instance_id; });
      if (inst == fs.instances.end() || inst->st != InstState::Idle) return;
      inst->kill_timer = 0;
      if (static_cast<int>(fs.instances.size()) > fs.plan.min_instances)
        terminate_instance(app, node, instance_id);
    });
  }
}

void Platform::retire_accounting(AppState& a, dag::NodeId node, const Instance& inst) {
  const double billed = std::max(0.0, engine_.now() - inst.created);
  auto& fm = a.metrics.per_function[node];
  fm.billed_seconds += billed;
  if (inst.config.backend == perf::Backend::Cpu)
    fm.billed_cpu_seconds += billed * inst.config.cpu_cores;
  else
    fm.billed_gpu_seconds += billed * inst.config.gpu_pct;
  fm.cost += billed * pricing_.per_second(inst.config);
  cluster_.release(inst.alloc);
}

void Platform::terminate_instance(AppId app, dag::NodeId node, int instance_id) {
  auto& a = state(app);
  auto& f = fn_state(app, node);
  auto it = std::find_if(f.instances.begin(), f.instances.end(),
                         [&](const Instance& i) { return i.id == instance_id; });
  SMILESS_CHECK(it != f.instances.end());
  SMILESS_CHECK_MSG(it->st != InstState::Busy, "cannot terminate a busy instance");

  if (it->kill_timer != 0) engine_.cancel(it->kill_timer);
  if (it->pending != 0) engine_.cancel(it->pending);
  if (options_.bus != nullptr)
    options_.bus->publish({.type = EventType::InstanceTerminated,
                           .t = engine_.now(),
                           .t2 = it->created,
                           .app = app,
                           .node = node,
                           .instance = instance_id,
                           .machine = it->alloc.machine});
  retire_accounting(a, node, *it);
  f.instances.erase(it);
}

void Platform::on_machine_down(int machine) {
  if (finalized_) return;
  for (std::size_t ai = 0; ai < apps_.size(); ++ai) {
    const AppId app = static_cast<AppId>(ai);
    auto& a = *apps_[ai];
    for (std::size_t n = 0; n < a.fns.size(); ++n) {
      const auto node = static_cast<dag::NodeId>(n);
      auto& f = a.fns[n];
      auto& fm = a.metrics.per_function[n];
      bool evicted = false;
      for (std::size_t i = 0; i < f.instances.size();) {
        Instance& inst = f.instances[i];
        if (inst.alloc.machine != machine) {
          ++i;
          continue;
        }
        evicted = true;
        if (inst.kill_timer != 0) engine_.cancel(inst.kill_timer);
        if (inst.pending != 0) engine_.cancel(inst.pending);
        ++fm.evictions;
        if (options_.bus != nullptr)
          options_.bus->publish({.type = EventType::InstanceEvicted,
                                 .t = engine_.now(),
                                 .t2 = inst.created,
                                 .app = app,
                                 .node = node,
                                 .instance = inst.id,
                                 .machine = machine});
        // Re-dispatch in-flight work at the head of the queue, preserving
        // the original order; each re-dispatch spends one retry.
        for (auto rit = inst.inflight.rbegin(); rit != inst.inflight.rend(); ++rit) {
          auto& req = a.requests[*rit];
          if (req.done || req.failed) continue;
          ++req.retries;
          ++fm.retries;
          if (options_.max_retries >= 0 && req.retries > options_.max_retries) {
            fail_request(app, *rit);
            continue;
          }
          f.queue.push_front(*rit);
        }
        retire_accounting(a, node, inst);
        f.instances.erase(f.instances.begin() + static_cast<long>(i));
      }
      if (evicted) {
        a.policy->on_instance_failed(app, a.spec, *this, node, InstanceFailure::Eviction);
        dispatch(app, node);
      }
    }
  }
}

void Platform::complete_node(AppId app, dag::NodeId node, int request) {
  auto& a = state(app);
  auto& req = a.requests[request];
  if (req.failed) return;  // late completion of a batch holding a failed request
  SMILESS_CHECK(!req.done);
  if (!req.timeout_ev.empty() && req.timeout_ev[node] != 0) {
    engine_.cancel(req.timeout_ev[node]);
    req.timeout_ev[node] = 0;
  }

  for (dag::NodeId s : a.spec.dag.successors(node)) {
    if (--req.pending_preds[s] == 0) enqueue_invocation(app, s, request);
  }
  if (a.spec.dag.out_degree(node) == 0) {
    if (--req.sinks_remaining == 0) {
      req.done = true;
      a.metrics.completed.push_back({req.arrival, engine_.now()});
      if (options_.bus != nullptr)
        options_.bus->publish({.type = EventType::RequestCompleted,
                               .t = engine_.now(),
                               .t2 = req.arrival,
                               .app = app,
                               .request = request});
      if (options_.record_traces)
        a.metrics.traces.push_back({req.arrival, engine_.now(), std::move(req.spans)});
    }
  }
}

void Platform::finalize(SimTime end) {
  if (finalized_) return;
  finalized_ = true;
  for (std::size_t ai = 0; ai < apps_.size(); ++ai) {
    auto& a = *apps_[ai];
    for (std::size_t n = 0; n < a.fns.size(); ++n) {
      auto& f = a.fns[n];
      auto& fm = a.metrics.per_function[n];
      for (auto& inst : f.instances) {
        if (inst.kill_timer != 0) engine_.cancel(inst.kill_timer);
        if (inst.pending != 0) engine_.cancel(inst.pending);
        if (options_.bus != nullptr)
          options_.bus->publish({.type = EventType::InstanceTerminated,
                                 .t = end,
                                 .t2 = inst.created,
                                 .app = static_cast<AppId>(ai),
                                 .node = static_cast<dag::NodeId>(n),
                                 .instance = inst.id,
                                 .machine = inst.alloc.machine});
        const double billed = std::max(0.0, end - inst.created);
        fm.billed_seconds += billed;
        if (inst.config.backend == perf::Backend::Cpu)
          fm.billed_cpu_seconds += billed * inst.config.cpu_cores;
        else
          fm.billed_gpu_seconds += billed * inst.config.gpu_pct;
        fm.cost += billed * pricing_.per_second(inst.config);
        cluster_.release(inst.alloc);
      }
      f.instances.clear();
      for (sim::EventId ev : f.prewarms) engine_.cancel(ev);
      f.prewarms.clear();
    }
    // Outstanding per-invocation timeout timers die with the run.
    for (auto& req : a.requests)
      for (auto& ev : req.timeout_ev)
        if (ev != 0) {
          engine_.cancel(ev);
          ev = 0;
        }
  }
}

// --- control surface --------------------------------------------------------

void Platform::set_plan(AppId app, dag::NodeId node, FunctionPlan plan) {
  SMILESS_CHECK(plan.max_batch >= 1);
  SMILESS_CHECK(plan.min_instances >= 0);
  auto& f = fn_state(app, node);
  f.plan = plan;
  // Reap idle instances whose configuration no longer matches (above the
  // floor); busy ones are reaped when they next go idle.
  std::vector<int> stale;
  for (const auto& inst : f.instances)
    if (inst.st == InstState::Idle && !(inst.config == plan.config)) stale.push_back(inst.id);
  for (int id : stale) {
    if (static_cast<int>(f.instances.size()) <= plan.min_instances) break;
    terminate_instance(app, node, id);
  }
  // Raise to the floor immediately (burst scale-out, §V-D).
  int total = static_cast<int>(f.instances.size());
  while (total < plan.min_instances) {
    if (create_instance(app, node, plan.config) == nullptr) break;
    ++total;
  }
  dispatch(app, node);
}

const FunctionPlan& Platform::plan(AppId app, dag::NodeId node) const {
  const auto& a = state(app);
  SMILESS_CHECK(node >= 0 && static_cast<std::size_t>(node) < a.fns.size());
  return a.fns[node].plan;
}

sim::EventId Platform::prewarm_at(AppId app, dag::NodeId node, SimTime init_start) {
  auto& f = fn_state(app, node);
  const SimTime at = std::max(init_start, engine_.now());
  const sim::EventId id = engine_.schedule_at(at, [this, app, node] {
    auto& a = state(app);
    auto& fs = fn_state(app, node);
    // Skip only if an existing instance is expected to still be warm when
    // the pre-warmed one would become ready — otherwise a short-lived
    // instance from the previous request would silently cancel the
    // pre-warm and then die before the arrival it was meant to serve.
    const double mu_init = a.spec.perf_of(node).init_time(fs.plan.config, 0.0);
    const SimTime need = engine_.now() + mu_init + 0.5;
    for (const auto& inst : fs.instances) {
      SimTime covers;
      switch (inst.st) {
        case InstState::Init:
          covers = inst.ready_at + fs.plan.keepalive;
          break;
        case InstState::Idle:
          covers = inst.kill_at;
          break;
        case InstState::Busy:
        default:
          covers = engine_.now() + fs.plan.keepalive;
          break;
      }
      if (covers > need) {
        if (options_.bus != nullptr)
          options_.bus->publish({.type = EventType::PrewarmSkipped,
                                 .t = engine_.now(),
                                 .app = app,
                                 .node = node});
        return;
      }
    }
    if (options_.bus != nullptr)
      options_.bus->publish({.type = EventType::PrewarmFired,
                             .t = engine_.now(),
                             .app = app,
                             .node = node});
    create_instance(app, node, fs.plan.config);
  });
  f.prewarms.push_back(id);
  // Bound growth of the handle list.
  if (f.prewarms.size() > 64)
    f.prewarms.erase(f.prewarms.begin(), f.prewarms.begin() + 32);
  return id;
}

void Platform::cancel_prewarm(sim::EventId id) { engine_.cancel(id); }

void Platform::clear_prewarms(AppId app, dag::NodeId node) {
  auto& f = fn_state(app, node);
  for (sim::EventId ev : f.prewarms) engine_.cancel(ev);
  f.prewarms.clear();
}

bool Platform::spawn_instance(AppId app, dag::NodeId node) {
  auto& f = fn_state(app, node);
  return create_instance(app, node, f.plan.config) != nullptr;
}

// --- introspection -----------------------------------------------------------

SimTime Platform::now() const { return engine_.now(); }

const apps::App& Platform::app_spec(AppId app) const { return state(app).spec; }

int Platform::instances_total(AppId app, dag::NodeId node) const {
  const auto& a = state(app);
  return static_cast<int>(a.fns[node].instances.size());
}

int Platform::instances_idle(AppId app, dag::NodeId node) const {
  const auto& a = state(app);
  int n = 0;
  for (const auto& i : a.fns[node].instances)
    if (i.st == InstState::Idle) ++n;
  return n;
}

int Platform::instances_initializing(AppId app, dag::NodeId node) const {
  const auto& a = state(app);
  int n = 0;
  for (const auto& i : a.fns[node].instances)
    if (i.st == InstState::Init) ++n;
  return n;
}

int Platform::instances_busy(AppId app, dag::NodeId node) const {
  const auto& a = state(app);
  int n = 0;
  for (const auto& i : a.fns[node].instances)
    if (i.st == InstState::Busy) ++n;
  return n;
}

std::size_t Platform::queue_length(AppId app, dag::NodeId node) const {
  return state(app).fns[node].queue.size();
}

const AppMetrics& Platform::metrics(AppId app) const { return state(app).metrics; }

long Platform::in_flight(AppId app) const {
  const auto& a = state(app);
  return a.metrics.submitted - static_cast<long>(a.metrics.completed.size()) -
         a.metrics.failed;
}

const std::vector<int>& Platform::arrival_counts(AppId app) const {
  return state(app).window_counts;
}

}  // namespace smiless::serverless
