#pragma once

#include <vector>

#include "common/units.hpp"
#include "serverless/tracing.hpp"

namespace smiless::serverless {

/// Per-function accounting.
struct FunctionMetrics {
  long invocations = 0;     ///< function executions (batch items)
  long batches = 0;         ///< inference calls (>= invocations / max_batch)
  long initializations = 0; ///< container (re)inits — Fig. 9b numerator
  long init_failures = 0;   ///< container inits that failed (fault injection)
  long evictions = 0;       ///< instances killed by a machine going down
  long retries = 0;         ///< re-dispatches: backoff retries + evicted invocations
  long timeouts = 0;        ///< invocations that hit the per-invocation timeout
  double billed_seconds = 0.0;
  double billed_cpu_seconds = 0.0;   ///< core-seconds billed on CPU configs
  double billed_gpu_seconds = 0.0;   ///< GPU-percent-seconds billed
  Dollars cost = 0.0;
};

/// One completed end-to-end request.
struct RequestRecord {
  SimTime arrival = 0.0;
  SimTime completion = 0.0;
  double e2e() const { return completion - arrival; }
};

/// Periodic sample of platform state (1 s windows) — feeds Fig. 14.
struct WindowSample {
  SimTime window_start = 0.0;
  int arrivals = 0;
  int instances_total = 0;
  int instances_cpu = 0;
  int instances_gpu = 0;
};

/// Everything an experiment measures about one application.
struct AppMetrics {
  std::vector<RequestRecord> completed;
  /// Per-request execution traces; populated only when
  /// PlatformOptions::record_traces is set.
  std::vector<RequestTrace> traces;
  long submitted = 0;
  /// Requests that reached the terminal Failed state (timeout or retry
  /// budget exhausted). completed.size() + failed <= submitted.
  long failed = 0;
  std::vector<FunctionMetrics> per_function;  // by DAG node id
  std::vector<WindowSample> windows;

  Dollars total_cost() const {
    Dollars c = 0.0;
    for (const auto& f : per_function) c += f.cost;
    return c;
  }
  long total_initializations() const {
    long n = 0;
    for (const auto& f : per_function) n += f.initializations;
    return n;
  }
  long total_invocations() const {
    long n = 0;
    for (const auto& f : per_function) n += f.invocations;
    return n;
  }
  double total_cpu_seconds() const {
    double s = 0.0;
    for (const auto& f : per_function) s += f.billed_cpu_seconds;
    return s;
  }
  double total_gpu_seconds() const {
    double s = 0.0;
    for (const auto& f : per_function) s += f.billed_gpu_seconds;
    return s;
  }
  long total_init_failures() const {
    long n = 0;
    for (const auto& f : per_function) n += f.init_failures;
    return n;
  }
  long total_evictions() const {
    long n = 0;
    for (const auto& f : per_function) n += f.evictions;
    return n;
  }
  long total_retries() const {
    long n = 0;
    for (const auto& f : per_function) n += f.retries;
    return n;
  }
  long total_timeouts() const {
    long n = 0;
    for (const auto& f : per_function) n += f.timeouts;
    return n;
  }
  /// Fraction of submitted requests that completed (1.0 when nothing was
  /// submitted) — the goodput the fault benches report.
  double goodput() const {
    if (submitted == 0) return 1.0;
    return static_cast<double>(completed.size()) / static_cast<double>(submitted);
  }
  /// Fraction of completed requests whose E2E latency exceeded `sla`.
  double sla_violation_ratio(double sla) const {
    if (completed.empty()) return 0.0;
    long v = 0;
    for (const auto& r : completed)
      if (r.e2e() > sla) ++v;
    return static_cast<double>(v) / static_cast<double>(completed.size());
  }
};

}  // namespace smiless::serverless
