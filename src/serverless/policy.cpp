#include "serverless/policy.hpp"

#include "common/check.hpp"
#include "serverless/platform_view.hpp"

namespace smiless::serverless {

// The PlatformView hooks are the primary interface; their defaults forward
// to the deprecated Platform& shims so un-migrated policies keep working for
// one release. Migrated policies override the view hooks directly and the
// shims below are never reached.

void Policy::on_deploy(AppId app, const apps::App& spec, PlatformView& platform) {
  on_deploy(app, spec, platform.unscoped());
}

void Policy::on_window(AppId app, const apps::App& spec, PlatformView& platform,
                       const WindowStats& stats) {
  on_window(app, spec, platform.unscoped(), stats);
}

void Policy::on_arrival(AppId app, const apps::App& spec, PlatformView& platform,
                        SimTime now) {
  on_arrival(app, spec, platform.unscoped(), now);
}

void Policy::on_instance_failed(AppId app, const apps::App& spec, PlatformView& platform,
                                dag::NodeId node, InstanceFailure kind) {
  on_instance_failed(app, spec, platform.unscoped(), node, kind);
}

void Policy::on_deploy(AppId app, const apps::App& spec, Platform& platform) {
  (void)app;
  (void)spec;
  (void)platform;
  SMILESS_CHECK_MSG(false, "policy '" << name()
                                      << "' overrides neither on_deploy overload; every "
                                         "policy must install initial FunctionPlans");
}

}  // namespace smiless::serverless
