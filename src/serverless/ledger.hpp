#pragma once

#include <deque>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dag/dag.hpp"
#include "perfmodel/hardware.hpp"
#include "serverless/instance.hpp"
#include "serverless/metrics.hpp"
#include "serverless/types.hpp"

namespace smiless::serverless {

/// Ledger — the platform's books. Single responsibility: accounting. It owns
/// the per-app AppMetrics/FunctionMetrics aggregates, the per-window samples,
/// and per-instance billing (Eq. 3: lifetime x the configuration's unit
/// price). Producers mutate counters through books()/fn(); nothing in here
/// schedules events, draws randomness or feeds a decision back into the
/// simulation.
class Ledger {
 public:
  /// One billed instance lifetime: the interval [created, retired) at the
  /// config's unit price. Every instance retirement — keep-alive reap,
  /// config-drift reap, init failure, eviction, finalize — lands exactly one
  /// record here, which is what makes the billing invariant assertable.
  struct BillingRecord {
    dag::NodeId node = -1;
    InstanceId instance = -1;
    perf::HwConfig config;
    SimTime created = 0.0;
    SimTime retired = 0.0;
    Dollars cost = 0.0;

    double seconds() const { return retired - created; }
  };

  explicit Ledger(perf::Pricing pricing) : pricing_(pricing) {}

  void add_app(std::size_t nodes) {
    metrics_.emplace_back();
    metrics_.back().per_function.resize(nodes);
    records_.emplace_back();
  }

  /// Mutable books for producers (counter increments, completion records,
  /// traces, window samples).
  AppMetrics& books(AppId app) {
    SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < metrics_.size());
    return metrics_[app];
  }

  FunctionMetrics& fn(AppId app, dag::NodeId node) {
    auto& m = books(app);
    SMILESS_CHECK(node >= 0 && static_cast<std::size_t>(node) < m.per_function.size());
    return m.per_function[node];
  }

  const AppMetrics& metrics(AppId app) const {
    SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < metrics_.size());
    return metrics_[app];
  }

  /// Bill one instance up to `end` (Eq. 3) and append its BillingRecord.
  /// Pure accounting: releasing the cluster grant stays with the caller.
  void bill_instance(AppId app, dag::NodeId node, const Instance& inst, SimTime end) {
    const double billed = end - inst.created > 0.0 ? end - inst.created : 0.0;
    auto& fm = fn(app, node);
    fm.billed_seconds += billed;
    if (inst.config.backend == perf::Backend::Cpu)
      fm.billed_cpu_seconds += billed * inst.config.cpu_cores;
    else
      fm.billed_gpu_seconds += billed * inst.config.gpu_pct;
    const Dollars cost = billed * pricing_.per_second(inst.config);
    fm.cost += cost;
    records_[app].push_back(
        {node, inst.id, inst.config, inst.created, inst.created + billed, cost});
  }

  /// Every billed instance interval of one app, in retirement order.
  const std::vector<BillingRecord>& billing(AppId app) const {
    SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < records_.size());
    return records_[app];
  }

  /// Requests still pending (submitted - completed - failed).
  long in_flight(AppId app) const {
    const auto& m = metrics(app);
    return m.submitted - static_cast<long>(m.completed.size()) - m.failed;
  }

  const perf::Pricing& pricing() const { return pricing_; }

 private:
  perf::Pricing pricing_;
  // deques: references handed out stay valid as later apps deploy.
  std::deque<AppMetrics> metrics_;                   // by AppId
  std::deque<std::vector<BillingRecord>> records_;   // by AppId
};

}  // namespace smiless::serverless
