#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "serverless/instance.hpp"
#include "serverless/plan.hpp"

namespace smiless::serverless {

/// Read-only, index-addressable view over a function's instances — the only
/// thing a Router is allowed to see of the pool. Routers pick by index; the
/// FunctionScheduler maps the index back to the mutable instance and performs
/// the claim itself, so no router can corrupt pool invariants (the old seam
/// handed out `std::vector<Instance>&`).
class CandidateView {
 public:
  CandidateView(const Instance* data, std::size_t size) : data_(data), size_(size) {}

  const Instance& operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const Instance* begin() const { return data_; }
  const Instance* end() const { return data_ + size_; }

 private:
  const Instance* data_;
  std::size_t size_;
};

/// Everything a routing decision may condition on beyond the candidates
/// themselves. Plain data, assembled fresh by the scheduler per decision.
struct RoutingContext {
  SimTime now = 0.0;            ///< simulation clock at the decision
  std::size_t queue_depth = 0;  ///< invocations waiting at the function
  int lane = 0;                 ///< hosting platform's lane id (0 unsharded)
  const FunctionPlan* plan = nullptr;  ///< the function's current plan (never null)
};

/// Router — the dispatch-order/placement seam of the FunctionScheduler.
/// Single responsibility: given a read-only view of a function's instances
/// and the routing context, choose the index of the idle instance that
/// serves the next batch (or nullopt, which sends the scheduler down the
/// cold-start path). Routers may keep internal state (e.g. a deterministic
/// draw counter) but must be a pure function of their own state and the
/// arguments — never of wall clock, addresses or global RNGs — so whole
/// experiments stay replayable.
class Router {
 public:
  virtual ~Router() = default;

  virtual std::string name() const = 0;

  /// Pick the candidate index that serves the next batch of the queue, or
  /// std::nullopt when no instance can take work right now. The returned
  /// index must refer to an Idle candidate (checked by the scheduler).
  virtual std::optional<std::size_t> select(const CandidateView& candidates,
                                            const RoutingContext& ctx) = 0;
};

/// The default dispatch order: prefer an idle instance whose config matches
/// the current plan; fall back to any warm idle instance (it is warm — use
/// it). This is the platform's historical behaviour, byte-for-byte.
class WarmFirstRouter final : public Router {
 public:
  std::string name() const override { return "warm-first"; }

  std::optional<std::size_t> select(const CandidateView& candidates,
                                    const RoutingContext& ctx) override {
    std::optional<std::size_t> fallback;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Instance& inst = candidates[i];
      if (inst.st != InstanceState::Idle) continue;
      if (inst.config == ctx.plan->config) return i;
      if (!fallback) fallback = i;
    }
    return fallback;
  }
};

/// Power-of-two-choices router for sharded lanes: draw two idle candidates
/// from a deterministic counter-keyed hash stream (seeded by the lane id, so
/// sibling lanes don't correlate), prefer the one matching the plan's
/// config, then the one that has served fewer batches, then the lower index.
/// Same call sequence => same picks at any thread count: the only state is
/// the per-router draw counter.
class ShardedRouter final : public Router {
 public:
  explicit ShardedRouter(std::uint64_t salt = 0) : salt_(salt) {}

  std::string name() const override { return "sharded-p2c"; }

  std::optional<std::size_t> select(const CandidateView& candidates,
                                    const RoutingContext& ctx) override {
    idle_.clear();
    for (std::size_t i = 0; i < candidates.size(); ++i)
      if (candidates[i].st == InstanceState::Idle) idle_.push_back(i);
    if (idle_.empty()) return std::nullopt;
    if (idle_.size() == 1) return idle_.front();

    const std::uint64_t h = mix(salt_ ^ (static_cast<std::uint64_t>(ctx.lane) << 32) ^ draws_++);
    std::size_t a = idle_[h % idle_.size()];
    std::size_t b = idle_[(h >> 32) % idle_.size()];
    if (a == b) b = idle_[(h % idle_.size() + 1) % idle_.size()];
    if (a > b) std::swap(a, b);  // stable low-index tie-break below

    const bool a_match = candidates[a].config == ctx.plan->config;
    const bool b_match = candidates[b].config == ctx.plan->config;
    if (a_match != b_match) return a_match ? a : b;
    if (candidates[a].served != candidates[b].served)
      return candidates[a].served < candidates[b].served ? a : b;
    return a;
  }

  std::uint64_t draws() const { return draws_; }

 private:
  /// splitmix64 finalizer: full-avalanche, constant-time, no global state.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::uint64_t salt_;
  std::uint64_t draws_ = 0;
  std::vector<std::size_t> idle_;  ///< scratch, reused across calls
};

}  // namespace smiless::serverless
