#pragma once

#include <string>
#include <vector>

#include "serverless/instance.hpp"
#include "serverless/plan.hpp"

namespace smiless::serverless {

/// Router — the dispatch-order/placement seam of the FunctionScheduler.
/// Single responsibility: given a function's instances and its current plan,
/// choose the idle instance that serves the next batch (or none, which sends
/// the scheduler down the cold-start path). Future policies (locality-aware,
/// load-spreading, config-strict) swap this without touching the scheduler.
class Router {
 public:
  virtual ~Router() = default;

  virtual std::string name() const = 0;

  /// Pick the instance that serves the next batch of the queue, or nullptr
  /// when no instance can take work right now.
  virtual Instance* select(std::vector<Instance>& instances,
                           const FunctionPlan& plan) const = 0;
};

/// The default dispatch order: prefer an idle instance whose config matches
/// the current plan; fall back to any warm idle instance (it is warm — use
/// it). This is the platform's historical behaviour, byte-for-byte.
class WarmFirstRouter final : public Router {
 public:
  std::string name() const override { return "warm-first"; }

  Instance* select(std::vector<Instance>& instances,
                   const FunctionPlan& plan) const override {
    Instance* chosen = nullptr;
    for (auto& inst : instances) {
      if (inst.st != InstanceState::Idle) continue;
      if (inst.config == plan.config) return &inst;
      if (chosen == nullptr) chosen = &inst;
    }
    return chosen;
  }
};

}  // namespace smiless::serverless
