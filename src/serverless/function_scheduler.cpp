#include "serverless/function_scheduler.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/check.hpp"
#include "faults/fault_injector.hpp"
#include "obs/event_bus.hpp"
#include "prof/profiler.hpp"
#include "serverless/app_table.hpp"
#include "serverless/instance_pool.hpp"
#include "serverless/ledger.hpp"
#include "serverless/platform.hpp"
#include "serverless/request_tracker.hpp"
#include "sim/engine.hpp"

namespace smiless::serverless {

using obs::EventType;

FunctionScheduler::FunctionScheduler(sim::Engine& engine, Rng& rng,
                                     const PlatformOptions& options, const AppTable& table,
                                     Ledger& ledger, std::unique_ptr<Router> router)
    : engine_(engine),
      rng_(rng),
      options_(options),
      table_(table),
      ledger_(ledger),
      router_(router != nullptr ? std::move(router) : std::make_unique<WarmFirstRouter>()) {}

void FunctionScheduler::wire(RequestTracker* tracker, InstancePool* pool) {
  tracker_ = tracker;
  pool_ = pool;
}

void FunctionScheduler::add_app(std::size_t nodes) {
  apps_.emplace_back();
  apps_.back().resize(nodes);
}

FunctionScheduler::FnQueue& FunctionScheduler::fn(AppId app, dag::NodeId node) {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < apps_.size());
  auto& fns = apps_[app];
  SMILESS_CHECK(node >= 0 && static_cast<std::size_t>(node) < fns.size());
  return fns[node];
}

const FunctionScheduler::FnQueue& FunctionScheduler::fn(AppId app, dag::NodeId node) const {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < apps_.size());
  const auto& fns = apps_[app];
  SMILESS_CHECK(node >= 0 && static_cast<std::size_t>(node) < fns.size());
  return fns[node];
}

void FunctionScheduler::set_plan(AppId app, dag::NodeId node, FunctionPlan plan) {
  fn(app, node).plan = plan;
}

const FunctionPlan& FunctionScheduler::plan(AppId app, dag::NodeId node) const {
  return fn(app, node).plan;
}

void FunctionScheduler::enqueue(AppId app, dag::NodeId node, RequestId request) {
  fn(app, node).queue.push_back(request);
  dispatch(app, node);
}

void FunctionScheduler::push_front(AppId app, dag::NodeId node, RequestId request) {
  fn(app, node).queue.push_front(request);
}

void FunctionScheduler::dispatch(AppId app, dag::NodeId node) {
  if (halted_) return;
  prof::ScopeTimer scope(options_.prof, prof::Site::Dispatch);
  if (prof::Profiler* p = options_.prof;
      p != nullptr && (dispatch_calls_++ & (kSliceSampleInterval - 1)) == 0) {
    const common::SlabStats ss = slice_stats();
    p->sample(engine_.now(), prof::Counter::SliceLive, static_cast<double>(ss.live));
    p->sample(engine_.now(), prof::Counter::SliceBlocks, static_cast<double>(ss.blocks));
  }
  auto& f = fn(app, node);

  while (!f.queue.empty()) {
    std::vector<Instance>& instances = pool_->instances(app, node);
    const CandidateView candidates(instances.data(), instances.size());
    const RoutingContext ctx{.now = engine_.now(),
                             .queue_depth = f.queue.size(),
                             .lane = options_.lane,
                             .plan = &f.plan};
    const std::optional<std::size_t> pick = router_->select(candidates, ctx);
    if (!pick) break;
    SMILESS_CHECK(*pick < instances.size());
    Instance* chosen = &instances[*pick];
    SMILESS_CHECK(chosen->st == InstanceState::Idle);

    // Claim the instance and form a batch.
    pool_->claim(*chosen);
    const int batch_n =
        std::min<int>(std::max(1, f.plan.max_batch), static_cast<int>(f.queue.size()));
    std::vector<RequestId> batch = slices_.acquire();
    batch.reserve(batch_n);
    for (int i = 0; i < batch_n; ++i) {
      batch.push_back(f.queue.front());
      f.queue.pop_front();
    }

    auto& fm = ledger_.fn(app, node);
    fm.invocations += batch_n;
    fm.batches += 1;

    double latency = table_.spec(app).perf_of(node).sample_inference_time(
        chosen->config, batch_n, options_.inference_noise, rng_);
    if (options_.faults != nullptr) latency = options_.faults->inflate_inference(latency);
    const InstanceId inst_id = chosen->id;
    const SimTime exec_start = engine_.now();
    if (options_.bus != nullptr)
      options_.bus->publish({.type = EventType::BatchStart,
                             .t = exec_start,
                             .app = app,
                             .node = node,
                             .request = batch.front(),
                             .instance = inst_id,
                             .machine = chosen->alloc.machine,
                             .count = batch_n});
    chosen->inflight.assign(batch.begin(), batch.end());  // reuses its capacity
    chosen->pending = engine_.schedule_after(
        latency, [this, app, node, inst_id, exec_start, batch = std::move(batch)]() mutable {
          if (options_.record_traces) {
            for (RequestId r : batch)
              tracker_->record_span(app, node, r, exec_start, static_cast<int>(batch.size()));
          }
          if (options_.bus != nullptr) {
            options_.bus->publish({.type = EventType::BatchEnd,
                                   .t = engine_.now(),
                                   .t2 = exec_start,
                                   .app = app,
                                   .node = node,
                                   .request = batch.front(),
                                   .instance = inst_id,
                                   .count = static_cast<int>(batch.size())});
            for (RequestId r : batch)
              options_.bus->publish({.type = EventType::InvocationDone,
                                     .t = engine_.now(),
                                     .t2 = exec_start,
                                     .app = app,
                                     .node = node,
                                     .request = r,
                                     .instance = inst_id,
                                     .count = static_cast<int>(batch.size())});
          }
          pool_->on_batch_done(app, node, inst_id, std::move(batch));
        });
  }

  if (f.queue.empty()) return;

  // Queue still non-empty: cold-start on demand iff the function has no
  // instance at all (scale-out beyond that is the policy's decision); the
  // pool owns the bounded-backoff retry ladder behind it.
  pool_->ensure_capacity(app, node);
}

void FunctionScheduler::fail_queued(AppId app, dag::NodeId node) {
  auto& f = fn(app, node);
  while (!f.queue.empty()) {
    const RequestId r = f.queue.front();
    tracker_->fail_request(app, r);
    if (!f.queue.empty() && f.queue.front() == r) f.queue.pop_front();  // defensive
  }
}

void FunctionScheduler::strip_request(AppId app, RequestId request) {
  SMILESS_CHECK(app >= 0 && static_cast<std::size_t>(app) < apps_.size());
  for (auto& f : apps_[app]) {
    for (auto it = f.queue.begin(); it != f.queue.end();)
      it = (*it == request) ? f.queue.erase(it) : std::next(it);
  }
}

bool FunctionScheduler::queue_empty(AppId app, dag::NodeId node) const {
  return fn(app, node).queue.empty();
}

std::size_t FunctionScheduler::queue_length(AppId app, dag::NodeId node) const {
  return fn(app, node).queue.size();
}

}  // namespace smiless::serverless
