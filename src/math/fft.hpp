#pragma once

#include <complex>
#include <span>
#include <vector>

namespace smiless::math {

/// In-place iterative radix-2 Cooley–Tukey FFT. `data.size()` must be a
/// power of two. `inverse` applies the conjugate transform and 1/N scaling.
void fft(std::vector<std::complex<double>>& data, bool inverse);

/// Forward FFT of a real series, zero-padded to the next power of two.
std::vector<std::complex<double>> fft_real(std::span<const double> xs);

/// Reconstruct / extrapolate a real series from its `top_k` largest-magnitude
/// harmonics (plus DC). Returns `out_len` samples starting at t=0 of the
/// periodic extension — the mechanism behind IceBreaker's FIP predictor.
std::vector<double> harmonic_extrapolate(std::span<const double> xs, std::size_t top_k,
                                         std::size_t out_len);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

}  // namespace smiless::math
