#include "math/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace smiless::math {

std::size_t next_pow2(std::size_t n) {
  SMILESS_CHECK(n >= 1);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  SMILESS_CHECK_MSG((n & (n - 1)) == 0 && n > 0, "FFT size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const auto u = data[i + k];
        const auto v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<std::complex<double>> fft_real(std::span<const double> xs) {
  SMILESS_CHECK(!xs.empty());
  const std::size_t n = next_pow2(xs.size());
  std::vector<std::complex<double>> data(n, {0.0, 0.0});
  for (std::size_t i = 0; i < xs.size(); ++i) data[i] = {xs[i], 0.0};
  fft(data, /*inverse=*/false);
  return data;
}

std::vector<double> harmonic_extrapolate(std::span<const double> xs, std::size_t top_k,
                                         std::size_t out_len) {
  SMILESS_CHECK(xs.size() >= 2);
  auto spectrum = fft_real(xs);
  const std::size_t n = spectrum.size();

  // Rank non-DC bins of the first half by magnitude (the second half mirrors).
  std::vector<std::size_t> bins;
  bins.reserve(n / 2);
  for (std::size_t i = 1; i < n / 2; ++i) bins.push_back(i);
  std::sort(bins.begin(), bins.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(spectrum[a]) > std::abs(spectrum[b]);
  });
  if (bins.size() > top_k) bins.resize(top_k);

  std::vector<double> out(out_len, 0.0);
  const double dc = spectrum[0].real() / static_cast<double>(n);
  for (std::size_t t = 0; t < out_len; ++t) out[t] = dc;
  for (std::size_t bin : bins) {
    const double amp = 2.0 * std::abs(spectrum[bin]) / static_cast<double>(n);
    const double phase = std::arg(spectrum[bin]);
    for (std::size_t t = 0; t < out_len; ++t) {
      const double ang =
          2.0 * std::numbers::pi * static_cast<double>(bin) * static_cast<double>(t) /
              static_cast<double>(n) +
          phase;
      out[t] += amp * std::cos(ang);
    }
  }
  return out;
}

}  // namespace smiless::math
