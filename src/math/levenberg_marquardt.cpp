#include "math/levenberg_marquardt.hpp"

#include <cmath>

#include "common/check.hpp"
#include "math/matrix.hpp"

namespace smiless::math {

namespace {

double sse_of(const std::vector<double>& r) {
  double s = 0.0;
  for (double x : r) s += x * x;
  return s;
}

Matrix numeric_jacobian(
    const std::function<std::vector<double>(const std::vector<double>&)>& residuals,
    const std::vector<double>& p, const std::vector<double>& r0) {
  const std::size_t n = p.size();
  const std::size_t m = r0.size();
  Matrix j(m, n);
  for (std::size_t c = 0; c < n; ++c) {
    const double h = std::max(1e-7, std::abs(p[c]) * 1e-7);
    auto pp = p;
    pp[c] += h;
    const auto r1 = residuals(pp);
    SMILESS_CHECK(r1.size() == m);
    for (std::size_t i = 0; i < m; ++i) j(i, c) = (r1[i] - r0[i]) / h;
  }
  return j;
}

}  // namespace

LmResult levenberg_marquardt(
    const std::function<std::vector<double>(const std::vector<double>&)>& residuals,
    std::vector<double> initial, const LmOptions& opts) {
  SMILESS_CHECK(!initial.empty());
  LmResult out;
  out.params = std::move(initial);

  auto r = residuals(out.params);
  SMILESS_CHECK(r.size() >= out.params.size());
  out.sse = sse_of(r);
  double damping = opts.initial_damping;

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    out.iterations = iter + 1;
    const Matrix j = numeric_jacobian(residuals, out.params, r);
    const Matrix jt = j.transpose();
    const Matrix jtj = jt * j;

    // g = J^T r
    std::vector<double> g = matvec(jt, r);

    // Try the damped step; grow damping until the step improves the SSE.
    bool stepped = false;
    for (int attempt = 0; attempt < 24; ++attempt) {
      Matrix a = jtj;
      for (std::size_t i = 0; i < a.rows(); ++i) a(i, i) += damping * (1.0 + jtj(i, i));
      std::vector<double> delta;
      bool solved = true;
      try {
        delta = solve_linear(a, g);
      } catch (const CheckError&) {
        solved = false;
      }
      if (solved) {
        auto cand = out.params;
        for (std::size_t i = 0; i < cand.size(); ++i) cand[i] -= delta[i];
        const auto rc = residuals(cand);
        const double sc = sse_of(rc);
        if (std::isfinite(sc) && sc < out.sse) {
          const double improvement = out.sse - sc;
          out.params = std::move(cand);
          r = rc;
          out.sse = sc;
          damping = std::max(damping * 0.3, 1e-12);
          stepped = true;
          if (improvement < opts.tolerance) {
            out.converged = true;
            return out;
          }
          break;
        }
      }
      damping *= 4.0;
      if (damping > 1e12) break;
    }
    if (!stepped) {
      out.converged = true;  // no further descent possible
      return out;
    }
  }
  return out;
}

}  // namespace smiless::math
