#pragma once

#include <functional>
#include <vector>

namespace smiless::math {

/// Options for the Levenberg–Marquardt nonlinear least-squares solver.
struct LmOptions {
  int max_iterations = 200;
  double initial_damping = 1e-3;
  double tolerance = 1e-10;  ///< stop when the SSE improvement falls below this
};

struct LmResult {
  std::vector<double> params;
  double sse = 0.0;  ///< final sum of squared residuals
  int iterations = 0;
  bool converged = false;
};

/// Minimise sum_i residual_i(params)^2. `residuals(params)` returns one
/// residual per observation; the Jacobian is approximated by forward
/// differences. Used when fitting the Amdahl latency surfaces where the
/// (lambda, alpha, beta, gamma) parameterisation is kept nonlinear.
LmResult levenberg_marquardt(
    const std::function<std::vector<double>(const std::vector<double>&)>& residuals,
    std::vector<double> initial, const LmOptions& opts = {});

}  // namespace smiless::math
