#pragma once

#include <functional>

namespace smiless::math {

/// Largest integer b in [lo, hi] with pred(b) true, assuming pred is
/// monotone (true..true false..false). Returns lo-1 if pred(lo) is false.
/// This is the solver the Auto-scaler uses for the batch size in Eq. (7)/(8).
int bisect_max_true(int lo, int hi, const std::function<bool(int)>& pred);

/// Root of a continuous monotone function f on [lo, hi] (f(lo), f(hi) must
/// bracket zero) to within tol.
double bisect_root(double lo, double hi, double tol, const std::function<double(double)>& f);

}  // namespace smiless::math
