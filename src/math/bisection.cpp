#include "math/bisection.hpp"

#include <cmath>

#include "common/check.hpp"

namespace smiless::math {

int bisect_max_true(int lo, int hi, const std::function<bool(int)>& pred) {
  SMILESS_CHECK(lo <= hi);
  if (!pred(lo)) return lo - 1;
  if (pred(hi)) return hi;
  // Invariant: pred(lo) true, pred(hi) false.
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    if (pred(mid))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

double bisect_root(double lo, double hi, double tol, const std::function<double(double)>& f) {
  SMILESS_CHECK(lo < hi && tol > 0.0);
  double flo = f(lo);
  double fhi = f(hi);
  SMILESS_CHECK_MSG(flo * fhi <= 0.0, "bisect_root: interval does not bracket a root");
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (flo * fm <= 0.0) {
      hi = mid;
      fhi = fm;
    } else {
      lo = mid;
      flo = fm;
    }
  }
  (void)fhi;
  return 0.5 * (lo + hi);
}

}  // namespace smiless::math
