#include "math/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace smiless::math {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double variance_to_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  const double var = ss / static_cast<double>(xs.size());
  return var / m;
}

double percentile(std::span<const double> xs, double p) {
  SMILESS_CHECK(!xs.empty());
  SMILESS_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  if (s.size() == 1) return s[0];
  const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

double tail_latency(std::span<const double> xs, double p) {
  return xs.empty() ? 0.0 : percentile(xs, p);
}

std::size_t nearest_rank(std::size_t n, double p) {
  SMILESS_CHECK(n > 0);
  SMILESS_CHECK(p >= 0.0 && p <= 100.0);
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  return std::min(std::max<std::size_t>(rank, 1), n);
}

double quantile_nearest_rank(std::span<const double> xs, double p) {
  SMILESS_CHECK(!xs.empty());
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  return s[nearest_rank(s.size(), p) - 1];
}

double smape(std::span<const double> truth, std::span<const double> pred) {
  SMILESS_CHECK(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double denom = std::abs(truth[i]) + std::abs(pred[i]);
    if (denom > 0.0) acc += 2.0 * std::abs(pred[i] - truth[i]) / denom;
  }
  return 100.0 * acc / static_cast<double>(truth.size());
}

double mape(std::span<const double> truth, std::span<const double> pred) {
  SMILESS_CHECK(truth.size() == pred.size());
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] != 0.0) {
      acc += std::abs(pred[i] - truth[i]) / std::abs(truth[i]);
      ++n;
    }
  }
  return n == 0 ? 0.0 : 100.0 * acc / static_cast<double>(n);
}

double underestimation_rate(std::span<const double> truth, std::span<const double> pred) {
  SMILESS_CHECK(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    if (pred[i] < truth[i]) ++n;
  return static_cast<double>(n) / static_cast<double>(truth.size());
}

double overestimation_rate(std::span<const double> truth, std::span<const double> pred) {
  SMILESS_CHECK(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    if (pred[i] > truth[i]) ++n;
  return static_cast<double>(n) / static_cast<double>(truth.size());
}

std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  return s;
}

}  // namespace smiless::math
