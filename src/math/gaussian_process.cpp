#include "math/gaussian_process.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace smiless::math {

namespace {

double std_normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double std_normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

double GaussianProcess::kernel(const std::vector<double>& a, const std::vector<double>& b) const {
  SMILESS_CHECK(a.size() == b.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return signal_var_ * std::exp(-0.5 * d2 / (length_scale_ * length_scale_));
}

void GaussianProcess::fit(std::vector<std::vector<double>> xs, std::vector<double> ys) {
  SMILESS_CHECK(xs.size() == ys.size());
  SMILESS_CHECK(!xs.empty());
  xs_ = std::move(xs);
  ys_ = std::move(ys);
  const std::size_t n = xs_.size();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel(xs_[i], xs_[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += noise_var_;
  }
  chol_ = cholesky(k);
  alpha_ = cholesky_solve(chol_, ys_);
}

GaussianProcess::Posterior GaussianProcess::predict(const std::vector<double>& x) const {
  SMILESS_CHECK_MSG(!xs_.empty(), "predict() before fit()");
  const std::size_t n = xs_.size();
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(x, xs_[i]);

  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += kstar[i] * alpha_[i];

  // variance = k(x,x) - k*^T (K + nI)^{-1} k*  via the Cholesky factor.
  const std::vector<double> v = cholesky_solve(chol_, kstar);
  double quad = 0.0;
  for (std::size_t i = 0; i < n; ++i) quad += kstar[i] * v[i];
  double var = kernel(x, x) - quad;
  if (var < 1e-12) var = 1e-12;
  return {mean, var};
}

double GaussianProcess::expected_improvement(const std::vector<double>& x, double best_y) const {
  const auto post = predict(x);
  const double sigma = std::sqrt(post.variance);
  const double z = (best_y - post.mean) / sigma;
  return (best_y - post.mean) * std_normal_cdf(z) + sigma * std_normal_pdf(z);
}

}  // namespace smiless::math
