#pragma once

#include <span>
#include <vector>

namespace smiless::math {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 when fewer than 2 points.
double stddev(std::span<const double> xs);

/// Population variance-to-mean ratio (index of dispersion); 0 if mean == 0.
/// The paper characterises its test trace as having VMR > 2.
double variance_to_mean(std::span<const double> xs);

/// p-th percentile (p in [0,100]) with linear interpolation; requires a
/// non-empty span. Does not assume the input is sorted.
double percentile(std::span<const double> xs, double p);

/// Empty-safe tail latency: percentile(xs, p), or 0 when xs is empty. The
/// one spelling of "p99 of a possibly-empty latency vector" shared by the
/// CLI, the sweep emitters and the bench tables.
double tail_latency(std::span<const double> xs, double p);

/// Nearest-rank quantile definition (the one the observability histograms
/// use): the 1-based rank ceil(p/100 * n), clamped to [1, n]. Unlike the
/// interpolating percentile above, the result is always an observed sample
/// (or, for a histogram, a bucket bound), so merging partial histograms and
/// re-querying is exactly associative.
std::size_t nearest_rank(std::size_t n, double p);

/// Nearest-rank quantile of raw samples; requires a non-empty span.
double quantile_nearest_rank(std::span<const double> xs, double p);

/// Symmetric mean absolute percentage error, in percent (Fig. 11b metric).
/// Pairs where |truth|+|pred| == 0 contribute zero error.
double smape(std::span<const double> truth, std::span<const double> pred);

/// Mean absolute percentage error, in percent (Fig. 12b metric). Pairs with
/// truth == 0 are skipped.
double mape(std::span<const double> truth, std::span<const double> pred);

/// Fraction of predictions strictly below truth (Fig. 12a metric).
double underestimation_rate(std::span<const double> truth, std::span<const double> pred);

/// Fraction of predictions strictly above truth.
double overestimation_rate(std::span<const double> truth, std::span<const double> pred);

/// Cumulative distribution sample: sorted copy of xs, for latency CDF plots.
std::vector<double> sorted_copy(std::span<const double> xs);

}  // namespace smiless::math
