#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.hpp"

namespace smiless::math {

/// Dense row-major matrix of doubles. Small and simple by design — the
/// numerics in this project (curve fitting, GP regression, LSTM layers)
/// operate on matrices of at most a few hundred rows.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer lists: Matrix m{{1,2},{3,4}};
  Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      SMILESS_CHECK(row.size() == cols_);
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    SMILESS_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    SMILESS_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;

  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Matrix-vector product (y = A x).
std::vector<double> matvec(const Matrix& a, const std::vector<double>& x);

/// Solve the linear least-squares problem min ||A x - b||_2 via Householder
/// QR with column pivoting disabled (the design matrices here are small and
/// well-conditioned by construction). Requires rows >= cols and full rank.
std::vector<double> solve_least_squares(const Matrix& a, const std::vector<double>& b);

/// Cholesky factorisation of a symmetric positive-definite matrix; returns
/// lower-triangular L with A = L L^T. Throws CheckError if not SPD.
Matrix cholesky(const Matrix& a);

/// Solve A x = b given the Cholesky factor L of A (forward + back
/// substitution).
std::vector<double> cholesky_solve(const Matrix& l, const std::vector<double>& b);

/// Solve the square linear system A x = b via Gaussian elimination with
/// partial pivoting. Used by Levenberg–Marquardt steps.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

}  // namespace smiless::math
