#pragma once

#include <vector>

#include "math/matrix.hpp"

namespace smiless::math {

/// Gaussian-process regression with an RBF kernel over fixed-length feature
/// vectors. This is the uncertainty-aware surrogate behind the Aquatope
/// baseline's Bayesian-optimisation scheduler.
class GaussianProcess {
 public:
  /// `length_scale` controls kernel width; `signal_var` the prior variance;
  /// `noise_var` the observation noise added to the diagonal.
  GaussianProcess(double length_scale, double signal_var, double noise_var)
      : length_scale_(length_scale), signal_var_(signal_var), noise_var_(noise_var) {}

  /// Fit to observations (xs[i] -> ys[i]). All xs must share a dimension.
  void fit(std::vector<std::vector<double>> xs, std::vector<double> ys);

  /// Posterior mean and variance at x. Requires fit() with >= 1 point.
  struct Posterior {
    double mean;
    double variance;
  };
  Posterior predict(const std::vector<double>& x) const;

  /// Expected improvement of minimising the objective below `best_y` at x.
  double expected_improvement(const std::vector<double>& x, double best_y) const;

  std::size_t size() const { return xs_.size(); }

 private:
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  double length_scale_;
  double signal_var_;
  double noise_var_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
  Matrix chol_;                  // Cholesky factor of K + noise I
  std::vector<double> alpha_;    // (K + noise I)^{-1} y
};

}  // namespace smiless::math
