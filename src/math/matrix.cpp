#include "math/matrix.hpp"

#include <cmath>

namespace smiless::math {

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  SMILESS_CHECK(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  SMILESS_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  SMILESS_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - rhs.data_[i];
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

std::vector<double> matvec(const Matrix& a, const std::vector<double>& x) {
  SMILESS_CHECK(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) y[r] += a(r, c) * x[c];
  return y;
}

std::vector<double> solve_least_squares(const Matrix& a, const std::vector<double>& b) {
  SMILESS_CHECK(a.rows() == b.size());
  SMILESS_CHECK(a.rows() >= a.cols());
  const std::size_t m = a.rows(), n = a.cols();
  Matrix r = a;                 // becomes R in place
  std::vector<double> qtb = b;  // becomes Q^T b in place

  // Householder QR: annihilate below-diagonal entries column by column,
  // applying the same reflections to the right-hand side.
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    SMILESS_CHECK_MSG(norm > 1e-14, "rank-deficient design matrix in least squares");
    if (r(k, k) > 0) norm = -norm;

    std::vector<double> v(m - k);
    v[0] = r(k, k) - norm;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv < 1e-30) continue;

    for (std::size_t c = k; c < n; ++c) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r(i, c);
      const double scale = 2.0 * dot / vtv;
      for (std::size_t i = k; i < m; ++i) r(i, c) -= scale * v[i - k];
    }
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * qtb[i];
    const double scale = 2.0 * dot / vtv;
    for (std::size_t i = k; i < m; ++i) qtb[i] -= scale * v[i - k];
  }

  // Back substitution on the triangular system R x = Q^T b.
  std::vector<double> x(n, 0.0);
  for (std::size_t kk = n; kk-- > 0;) {
    double s = qtb[kk];
    for (std::size_t c = kk + 1; c < n; ++c) s -= r(kk, c) * x[c];
    SMILESS_CHECK(std::abs(r(kk, kk)) > 1e-14);
    x[kk] = s / r(kk, kk);
  }
  return x;
}

Matrix cholesky(const Matrix& a) {
  SMILESS_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        SMILESS_CHECK_MSG(s > 0.0, "matrix not positive definite");
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const Matrix& l, const std::vector<double>& b) {
  SMILESS_CHECK(l.rows() == l.cols() && l.rows() == b.size());
  const std::size_t n = b.size();
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  SMILESS_CHECK(a.rows() == a.cols() && a.rows() == b.size());
  const std::size_t n = b.size();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::abs(a(i, k)) > std::abs(a(piv, k))) piv = i;
    SMILESS_CHECK_MSG(std::abs(a(piv, k)) > 1e-14, "singular matrix");
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(piv, c));
      std::swap(b[k], b[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a(i, k) / a(k, k);
      if (f == 0.0) continue;
      for (std::size_t c = k; c < n; ++c) a(i, c) -= f * a(k, c);
      b[i] -= f * b[k];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t kk = n; kk-- > 0;) {
    double s = b[kk];
    for (std::size_t c = kk + 1; c < n; ++c) s -= a(kk, c) * x[c];
    x[kk] = s / a(kk, kk);
  }
  return x;
}

}  // namespace smiless::math
