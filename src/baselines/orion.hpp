#pragma once

#include <string>
#include <vector>

#include "core/workflow_manager.hpp"
#include "serverless/platform_view.hpp"

namespace smiless::baselines {

/// Orion (OSDI'22) as characterised in §II-C2: sizes the DAG under the
/// "right pre-warming" assumption — every function's initialization is
/// presumed to overlap perfectly with its predecessor's execution — so the
/// planner prices each invocation at (T+I)*U regardless of the arrival
/// rate. At runtime it pre-warms per request and reacts to queue build-up
/// by launching extra instances, which is exactly what hurts it when
/// invocations arrive close together (Fig. 3a).
class OrionPolicy : public serverless::Policy {
 public:
  struct Options {
    Options() { optimizer.config_space = perf::coarse_config_space(); }
    core::OptimizerOptions optimizer;  ///< defaults to the no-MPS space
    /// Short fixed keep-alive: Orion terminates instances once it believes
    /// the next invocation's pre-warming is covered by its right-pre-warming
    /// assumption, so only back-to-back requests reuse an instance.
    double keepalive = 4.0;
  };

  OrionPolicy(std::vector<perf::FunctionPerf> profiles_by_node, Options options);
  explicit OrionPolicy(std::vector<perf::FunctionPerf> profiles_by_node)
      : OrionPolicy(std::move(profiles_by_node), Options{}) {}

  std::string name() const override { return "Orion"; }
  void on_deploy(serverless::AppId app, const apps::App& spec,
                 serverless::PlatformView& platform) override;
  void on_arrival(serverless::AppId app, const apps::App& spec,
                  serverless::PlatformView& platform, SimTime now) override;
  void on_window(serverless::AppId app, const apps::App& spec,
                 serverless::PlatformView& platform, const serverless::WindowStats& stats) override;

  const core::AppSolution& solution() const { return solution_; }

 private:
  std::vector<perf::FunctionPerf> profiles_;
  Options options_;
  core::AppSolution solution_;
};

}  // namespace smiless::baselines
