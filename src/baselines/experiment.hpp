#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "concurrency/thread_pool.hpp"
#include "faults/fault_injector.hpp"
#include "profiler/offline_profiler.hpp"
#include "serverless/metrics.hpp"
#include "serverless/platform.hpp"
#include "workload/trace.hpp"

namespace smiless::obs {
class AuditLog;
class Telemetry;
}  // namespace smiless::obs

namespace smiless::sim {
class Driver;
}  // namespace smiless::sim

namespace smiless::baselines {

/// Fitted performance models shared by every policy of one experiment —
/// the output of the Offline Profiler, looked up by function name.
class ProfileStore {
 public:
  /// Profile the whole Table-I catalog once with the given profiler.
  ProfileStore(const profiler::OfflineProfiler& profiler, Rng& rng);

  const perf::FunctionPerf& fitted(const std::string& name) const;

  /// Fitted profiles for an app, indexed by DAG node id. Synthetic node
  /// names ("TRS#3") resolve by their catalog prefix.
  std::vector<perf::FunctionPerf> for_app(const apps::App& app) const;

  const std::vector<profiler::ProfileResult>& results() const { return results_; }

 private:
  std::vector<profiler::ProfileResult> results_;
};

/// Per-run knobs.
struct ExperimentOptions {
  std::uint64_t seed = 42;
  double drain_slack = 120.0;  ///< extra sim time to drain in-flight requests

  /// Intra-cell sharding (DESIGN.md §14). 1 runs the classic monolithic
  /// simulation; > 1 hash-partitions the apps into that many deterministic
  /// lanes (run_colocated then delegates to run_sharded). Output is
  /// bit-identical at any lane_threads; a single-app deployment is
  /// invariant in lanes.
  int lanes = 1;
  /// Threads stepping the lanes between window barriers (0 = hardware
  /// concurrency, 1 = serial). Wall-clock only — never changes results.
  int lane_threads = 0;

  serverless::PlatformOptions platform;
  /// Fault injection for the run; the default (all zero) is fault-free and
  /// reproduces the exact fault-less trajectory for a given seed.
  faults::FaultSpec faults;

  /// Optional observability bundle (non-owning; must outlive the run). When
  /// set, the platform and fault injector publish to its event bus, apps are
  /// registered for track naming and the run's books are mirrored into its
  /// metric registry after finalize. Null keeps the run observation-free;
  /// the simulated trajectory is identical either way.
  obs::Telemetry* telemetry = nullptr;

  /// Optional runtime self-profiler (non-owning; must outlive the run).
  /// When set, the engine and the platform subsystems record wall-clock
  /// scope timings and sampled internal counters into it (per lane under
  /// sharding, merged back with a per-lane breakdown). Wall-clock only:
  /// the trajectory and every golden-compared artifact are identical with
  /// or without it. See src/prof/profiler.hpp.
  prof::Profiler* profiler = nullptr;

  /// Fixed cadence (sim seconds) of the obs::TimeSeries recorded by
  /// `telemetry`; 0 disables the series. Deterministic sim-time data —
  /// byte-stable at any threads/lane_threads/lanes setting.
  double series_cadence = 0.0;

  /// Optional driver seam (non-owning; must outlive the run; DESIGN.md
  /// §16). Null pumps the classic way: every arrival scheduled upfront,
  /// engine free-run to the horizon — byte-identical to the pre-seam path.
  /// Non-null hands the pump to the driver and feeds arrivals through a
  /// streaming WorkSource (rt::TraceReplayer over the same traces), so a
  /// pacing driver sees each arrival no earlier than its due time — the
  /// live-serving mode. Requires lanes == 1 (pacing a window-barrier
  /// sharded world is a different problem).
  sim::Driver* driver = nullptr;

  /// Export internal queue diagnostics (CalendarStats, engine counters
  /// already mirrored) into the telemetry metric registry. Off by default
  /// because calendar internals legitimately differ between the monolithic
  /// (upfront-scheduling) and sharded (streaming-injection) paths even when
  /// trajectories are bit-identical — opting in makes --metrics-out
  /// path-revealing.
  bool internal_stats = false;
};

/// Outcome of serving one trace with one policy.
struct RunResult {
  std::string policy;
  std::string app;
  Dollars cost = 0.0;
  double violation_ratio = 0.0;  ///< undelivered requests count as violations
  std::vector<double> e2e;       ///< per completed request
  long submitted = 0;
  long completed = 0;
  long failed = 0;  ///< terminal Failed requests (timeout / retries exhausted)
  long invocations = 0;
  long initializations = 0;
  long init_failures = 0;
  long evictions = 0;
  long retries = 0;
  long timeouts = 0;
  double cpu_core_seconds = 0.0;
  double gpu_pct_seconds = 0.0;
  std::vector<serverless::WindowSample> windows;

  /// Fraction of submitted requests that completed.
  double goodput() const {
    return submitted == 0 ? 1.0 : static_cast<double>(completed) / static_cast<double>(submitted);
  }
};

/// Serve `trace` against `app` under `policy` on the paper's 8-machine
/// testbed and collect the books.
RunResult run_experiment(const apps::App& app, const workload::Trace& trace,
                         std::shared_ptr<serverless::Policy> policy,
                         const ExperimentOptions& options);

/// One application of a co-located deployment.
struct ColocatedApp {
  apps::App app;
  const workload::Trace* trace = nullptr;
  std::shared_ptr<serverless::Policy> policy;
};

/// The paper's actual setup (§VII-A): every application runs on the *same*
/// 8-machine cluster with its own load generator, all simultaneously, so
/// the policies contend for CPU cores and GPU slices. Returns one
/// RunResult per application, in input order.
std::vector<RunResult> run_colocated(std::vector<ColocatedApp> apps,
                                     const ExperimentOptions& options);

/// The sharded flavor of run_colocated: apps are hash-partitioned into
/// `options.lanes` deterministic lanes, each a full private world over a
/// slice of the 8-machine testbed, advanced in window-barrier lockstep (see
/// serverless::ShardedPlatform). With `options.lanes == 1` — or any cell
/// whose apps land in a single lane — this reproduces run_colocated's
/// trajectory exactly. run_colocated calls this itself when lanes > 1;
/// calling it directly is for tests and the throughput bench.
std::vector<RunResult> run_sharded(std::vector<ColocatedApp> apps,
                                   const ExperimentOptions& options);

/// The policy zoo of the evaluation section.
enum class PolicyKind {
  Smiless,
  SmilessHomo,   ///< CPU-only ablation (Fig. 13)
  SmilessNoDag,  ///< simultaneous warming ablation (Fig. 13)
  Opt,           ///< exhaustive search + oracle arrivals + true profiles
  Orion,
  IceBreaker,
  GrandSlam,
  Aquatope,
};

std::string policy_kind_name(PolicyKind kind);

/// Inverse of policy_kind_name, also accepting the CLI/config spellings
/// ("smiless", "smiless-homo", "grandslam", ...). Returns nullopt for an
/// unknown name.
std::optional<PolicyKind> parse_policy_kind(const std::string& name);

/// Every kind, in evaluation-section order (SMIless first, OPT last).
const std::vector<PolicyKind>& all_policy_kinds();

struct PolicySettings {
  bool use_lstm = true;
  std::shared_ptr<ThreadPool> pool;
  /// Required for PolicyKind::Opt: the exact arrival process.
  const workload::Trace* oracle_trace = nullptr;
  /// Optional decision audit log attached to SMIless-family policies.
  obs::AuditLog* audit = nullptr;
};

/// Build a policy for one application. SMIless variants receive the fitted
/// profiles; OPT receives ground truth and the oracle trace.
std::shared_ptr<serverless::Policy> make_policy(PolicyKind kind, const apps::App& app,
                                                const ProfileStore& store,
                                                const PolicySettings& settings);

}  // namespace smiless::baselines
