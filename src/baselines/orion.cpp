#include "baselines/orion.hpp"

#include <algorithm>

namespace smiless::baselines {

OrionPolicy::OrionPolicy(std::vector<perf::FunctionPerf> profiles_by_node, Options options)
    : profiles_(std::move(profiles_by_node)), options_(std::move(options)) {}

void OrionPolicy::on_deploy(serverless::AppId app, const apps::App& spec,
                            serverless::PlatformView& platform) {
  SMILESS_CHECK(profiles_.size() == spec.dag.size());
  core::StrategyOptimizer opt(options_.optimizer);
  opt.set_cost_model(core::CostModel::AlwaysPrewarm);
  core::WorkflowManager workflow(std::move(opt));
  // Orion plans once at deploy time; IT does not enter its cost model, so
  // any positive value works (the AlwaysPrewarm model ignores it).
  solution_ = workflow.optimize(spec.dag, profiles_, /*interarrival=*/1.0, spec.sla);

  for (std::size_t n = 0; n < solution_.per_node.size(); ++n) {
    serverless::FunctionPlan plan;
    plan.config = solution_.per_node[n].config;
    plan.keepalive = options_.keepalive;
    plan.max_batch = 1;
    platform.set_plan(app, static_cast<dag::NodeId>(n), plan);
  }
}

void OrionPolicy::on_arrival(serverless::AppId app, const apps::App&,
                             serverless::PlatformView& platform, SimTime now) {
  // Per-request pre-warming under the "right pre-warming" assumption: each
  // downstream function's init is started at request arrival so it overlaps
  // upstream execution. When a function has no idle instance at that moment
  // Orion launches an additional one immediately (the Fig. 3a behaviour:
  // extra instances protect the SLA when invocations arrive close
  // together); inits that do not fit the upstream window land partially on
  // the critical path anyway.
  for (std::size_t n = 0; n < solution_.per_node.size(); ++n) {
    const auto node = static_cast<dag::NodeId>(n);
    const double lead = std::max(0.0, solution_.start_offset[n] - solution_.per_node[n].init_time);
    if (platform.instances_idle(app, node) == 0)
      platform.spawn_instance(app, node);
    else
      platform.prewarm_at(app, node, now + lead);
  }
}

void OrionPolicy::on_window(serverless::AppId app, const apps::App& spec,
                            serverless::PlatformView& platform, const serverless::WindowStats&) {
  // Reactive scale-out: when a queue built up beyond what warming instances
  // will absorb, launch additional instances to protect the SLA.
  for (std::size_t n = 0; n < spec.dag.size(); ++n) {
    const auto node = static_cast<dag::NodeId>(n);
    const auto backlog = static_cast<int>(platform.queue_length(app, node));
    const int incoming = platform.instances_initializing(app, node);
    for (int i = 0; i < backlog - incoming; ++i) {
      if (!platform.spawn_instance(app, node)) break;
    }
  }
}

}  // namespace smiless::baselines
