#pragma once

#include <string>
#include <vector>

#include "core/workflow_manager.hpp"
#include "predictor/classic.hpp"
#include "serverless/platform_view.hpp"

namespace smiless::baselines {

/// IceBreaker (ASPLOS'22) as characterised in §II-C2: manages each function
/// in isolation — no DAG awareness. It picks per-function hardware by the
/// efficiency-to-cost ratio (speed-up per price), predicts arrivals with a
/// Fourier-based FIP model, and keeps functions warm across predicted-busy
/// horizons. The result the paper observes: most functions parked warm on
/// GPU slices (Fig. 9a) and a total cost up to 5.73x SMIless.
class IceBreakerPolicy : public serverless::Policy {
 public:
  struct Options {
    Options() { optimizer.config_space = perf::coarse_config_space(); }
    core::OptimizerOptions optimizer;  ///< defaults to the no-MPS space
    std::size_t fip_top_k = 6;
    double warm_threshold = 0.3;  ///< predicted count above which we stay warm
    double horizon = 30.0;        ///< keep-alive horizon while predicted busy (s)
  };

  IceBreakerPolicy(std::vector<perf::FunctionPerf> profiles_by_node, Options options);
  explicit IceBreakerPolicy(std::vector<perf::FunctionPerf> profiles_by_node)
      : IceBreakerPolicy(std::move(profiles_by_node), Options{}) {}

  std::string name() const override { return "IceBreaker"; }
  void on_deploy(serverless::AppId app, const apps::App& spec,
                 serverless::PlatformView& platform) override;
  void on_window(serverless::AppId app, const apps::App& spec,
                 serverless::PlatformView& platform, const serverless::WindowStats& stats) override;

  /// The efficiency-to-cost score IceBreaker ranks configurations by:
  /// (speed-up over the 1-core CPU) / (price ratio over the 1-core CPU).
  static double efficiency_score(const perf::FunctionPerf& fn, const perf::HwConfig& config,
                                 const perf::Pricing& pricing);

 private:
  std::vector<perf::FunctionPerf> profiles_;
  Options options_;
  std::vector<perf::HwConfig> chosen_;
  std::vector<double> count_history_;
  predictor::FipPredictor fip_;
};

}  // namespace smiless::baselines
