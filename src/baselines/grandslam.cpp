#include "baselines/grandslam.hpp"

#include <limits>

namespace smiless::baselines {

GrandSlamPolicy::GrandSlamPolicy(std::vector<perf::FunctionPerf> profiles_by_node,
                                 Options options)
    : profiles_(std::move(profiles_by_node)), options_(std::move(options)) {}

void GrandSlamPolicy::on_deploy(serverless::AppId app, const apps::App& spec,
                                serverless::PlatformView& platform) {
  SMILESS_CHECK(profiles_.size() == spec.dag.size());

  // Per-stage slack: SLA * (stage's reference latency / reference critical
  // path). Any source-to-sink path then sums to at most the SLA.
  std::vector<double> ref(spec.dag.size());
  for (std::size_t n = 0; n < spec.dag.size(); ++n)
    ref[n] = profiles_[n].inference_time(options_.reference, 1);
  const double cp_ref = spec.dag.critical_path_weight(ref);
  SMILESS_CHECK(cp_ref > 0.0);

  sub_slas_.resize(spec.dag.size());
  for (std::size_t n = 0; n < spec.dag.size(); ++n) {
    sub_slas_[n] = spec.sla * ref[n] / cp_ref;

    // GrandSLAm provisions for throughput: the cheapest configuration whose
    // maximum sub-SLA-compliant batch sustains the provisioned peak rate.
    // The fleet is sized once for the peak and kept warm forever — no
    // cold-start management — which is what makes the paper measure it at
    // ~2.46x SMIless' cost while its latency stays low.
    perf::HwConfig best{};
    int batch = 1;
    bool found = false;
    double best_price = std::numeric_limits<double>::infinity();
    for (const auto& c : options_.optimizer.config_space) {
      if (profiles_[n].inference_time(c, 1) > sub_slas_[n]) continue;
      int b = 1;
      while (b < options_.max_batch &&
             profiles_[n].inference_time(c, b * 2) <= sub_slas_[n])
        b *= 2;
      const double throughput = b / profiles_[n].inference_time(c, b);
      if (throughput < options_.provisioned_rps) continue;
      const double price = options_.optimizer.pricing.per_second(c);
      if (price < best_price) {
        best_price = price;
        best = c;
        batch = b;
        found = true;
      }
    }
    if (!found) {
      // No configuration fits the sub-SLA: take the fastest.
      double fastest = std::numeric_limits<double>::infinity();
      for (const auto& c : options_.optimizer.config_space) {
        const double t = profiles_[n].inference_time(c, 1);
        if (t < fastest) {
          fastest = t;
          best = c;
        }
      }
      batch = 1;
    }

    serverless::FunctionPlan plan;
    plan.config = best;
    plan.max_batch = batch;
    plan.keepalive = serverless::FunctionPlan::forever();
    plan.min_instances = 1;  // started once, never reaped — no cold-start mgmt
    platform.set_plan(app, static_cast<dag::NodeId>(n), plan);
  }
}

void GrandSlamPolicy::on_instance_failed(serverless::AppId app, const apps::App& spec,
                                         serverless::PlatformView& platform, dag::NodeId node,
                                         serverless::InstanceFailure kind) {
  (void)spec;
  (void)kind;
  const auto& plan = platform.plan(app, node);
  while (platform.instances_total(app, node) < plan.min_instances)
    if (!platform.spawn_instance(app, node)) break;  // cluster full; retry path takes over
}

}  // namespace smiless::baselines
