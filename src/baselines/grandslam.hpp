#pragma once

#include <string>
#include <vector>

#include "core/workflow_manager.hpp"
#include "serverless/platform_view.hpp"

namespace smiless::baselines {

/// GrandSLAm (EuroSys'19) as characterised in §VII-A/§VII-B: a multi-stage
/// runtime that splits the end-to-end SLA into per-stage sub-SLAs
/// (proportional to each stage's share of the critical path), sizes each
/// stage to fit its sub-SLA, and batches aggressively for throughput. It
/// performs no cold-start management: instances are started once and kept
/// alive for the experiment, which yields low latency but ~2.46x SMIless'
/// cost, and its lack of scale-out hurts under bursts (Fig. 15).
class GrandSlamPolicy : public serverless::Policy {
 public:
  struct Options {
    Options() { optimizer.config_space = perf::coarse_config_space(); }
    core::OptimizerOptions optimizer;  ///< defaults to the no-MPS space
    int max_batch = 32;
    double provisioned_rps = 6.0;  ///< peak request rate the fleet is sized for
    perf::HwConfig reference{perf::Backend::Cpu, 4, 0};  ///< slack-weighting config
  };

  GrandSlamPolicy(std::vector<perf::FunctionPerf> profiles_by_node, Options options);
  explicit GrandSlamPolicy(std::vector<perf::FunctionPerf> profiles_by_node)
      : GrandSlamPolicy(std::move(profiles_by_node), Options{}) {}

  std::string name() const override { return "GrandSLAm"; }
  void on_deploy(serverless::AppId app, const apps::App& spec,
                 serverless::PlatformView& platform) override;
  /// The fleet is provisioned once and kept warm forever, so any
  /// involuntary death is immediately replaced up to the floor.
  void on_instance_failed(serverless::AppId app, const apps::App& spec,
                          serverless::PlatformView& platform, dag::NodeId node,
                          serverless::InstanceFailure kind) override;

  const std::vector<double>& sub_slas() const { return sub_slas_; }

 private:
  std::vector<perf::FunctionPerf> profiles_;
  Options options_;
  std::vector<double> sub_slas_;
};

}  // namespace smiless::baselines
