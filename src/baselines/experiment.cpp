#include "baselines/experiment.hpp"

#include <algorithm>
#include <cctype>

#include "apps/catalog.hpp"
#include "baselines/aquatope.hpp"
#include "baselines/grandslam.hpp"
#include "baselines/icebreaker.hpp"
#include "baselines/orion.hpp"
#include "cluster/cluster.hpp"
#include "core/smiless_policy.hpp"
#include "obs/telemetry.hpp"
#include "rt/replayer.hpp"
#include "serverless/sharding.hpp"
#include "sim/driver.hpp"
#include "sim/engine.hpp"
#include "workload/arrival_cursor.hpp"

namespace smiless::baselines {

ProfileStore::ProfileStore(const profiler::OfflineProfiler& profiler, Rng& rng) {
  results_ = profiler.profile_all(apps::model_catalog(), rng);
}

const perf::FunctionPerf& ProfileStore::fitted(const std::string& name) const {
  // Synthetic pipelines suffix node names with "#i"; resolve the prefix.
  const std::string base = name.substr(0, name.find('#'));
  for (const auto& r : results_)
    if (r.fitted.name == base) return r.fitted;
  SMILESS_CHECK_MSG(false, "no profile for function " << name);
  return results_.front().fitted;  // unreachable
}

std::vector<perf::FunctionPerf> ProfileStore::for_app(const apps::App& app) const {
  std::vector<perf::FunctionPerf> out;
  out.reserve(app.dag.size());
  for (std::size_t n = 0; n < app.dag.size(); ++n)
    out.push_back(fitted(app.dag.name(static_cast<dag::NodeId>(n))));
  return out;
}

namespace {

/// Copy one app's books into a RunResult and derive the violation ratio.
void fill_result(RunResult& r, const serverless::AppMetrics& m, double sla) {
  r.cost = m.total_cost();
  r.submitted = m.submitted;
  r.completed = static_cast<long>(m.completed.size());
  r.failed = m.failed;
  r.invocations = m.total_invocations();
  r.initializations = m.total_initializations();
  r.init_failures = m.total_init_failures();
  r.evictions = m.total_evictions();
  r.retries = m.total_retries();
  r.timeouts = m.total_timeouts();
  r.cpu_core_seconds = m.total_cpu_seconds();
  r.gpu_pct_seconds = m.total_gpu_seconds();
  r.windows = m.windows;
  r.e2e.reserve(m.completed.size());
  for (const auto& rec : m.completed) r.e2e.push_back(rec.e2e());
  long violations = 0;
  for (const auto& rec : m.completed)
    if (rec.e2e() > sla) ++violations;
  violations += std::max<long>(0, r.submitted - r.completed);  // undelivered or failed
  r.violation_ratio = r.submitted == 0 ? 0.0
                                       : static_cast<double>(violations) /
                                             static_cast<double>(r.submitted);
}

/// Opt-in (ExperimentOptions::internal_stats) mirror of the calendar
/// queue's internals. These are *not* path-neutral: the monolithic run
/// schedules the whole trace upfront while the sharded run streams
/// arrivals per window, so resizes/buckets/peak_live legitimately differ
/// between bit-identical trajectories — which is exactly why they are off
/// by default and excluded from the path-agnostic mirror below.
void mirror_internal(obs::Telemetry& tel, const sim::CalendarStats* cs) {
  if (cs == nullptr) return;  // BinaryHeap reference queue has no calendar
  auto& reg = tel.registry();
  reg.count("engine/calendar/resizes", cs->resizes);
  reg.count("engine/calendar/direct_searches", cs->direct_searches);
  reg.gauge("engine/calendar/buckets", static_cast<double>(cs->buckets));
  reg.gauge("engine/calendar/peak_live", static_cast<double>(cs->peak_live));
}

/// Mirror the run's global books into the telemetry registry — identical
/// keys for the monolithic and sharded paths, so artifacts don't reveal
/// which one produced them.
void mirror_registry(obs::Telemetry& tel, const sim::EngineStats& es,
                     const faults::FaultStats& fs, const std::vector<RunResult>& results) {
  auto& reg = tel.registry();
  reg.count("engine/events_scheduled", es.scheduled);
  reg.count("engine/events_fired", es.fired);
  reg.count("engine/events_cancelled", es.cancelled);
  reg.count("faults/init_failures", static_cast<std::uint64_t>(fs.init_failures));
  reg.count("faults/stragglers", static_cast<std::uint64_t>(fs.stragglers));
  reg.count("faults/crashes", static_cast<std::uint64_t>(fs.crashes));
  reg.count("faults/recoveries", static_cast<std::uint64_t>(fs.recoveries));
  for (const RunResult& r : results) {
    const std::string p = "app/" + r.app + "/";
    reg.count(p + "submitted", static_cast<std::uint64_t>(r.submitted));
    reg.count(p + "completed", static_cast<std::uint64_t>(r.completed));
    reg.count(p + "failed", static_cast<std::uint64_t>(r.failed));
    reg.count(p + "invocations", static_cast<std::uint64_t>(r.invocations));
    reg.count(p + "initializations", static_cast<std::uint64_t>(r.initializations));
    reg.count(p + "evictions", static_cast<std::uint64_t>(r.evictions));
    reg.count(p + "retries", static_cast<std::uint64_t>(r.retries));
    reg.count(p + "timeouts", static_cast<std::uint64_t>(r.timeouts));
    reg.gauge(p + "cost", r.cost);
    reg.gauge(p + "cpu_core_seconds", r.cpu_core_seconds);
    reg.gauge(p + "gpu_pct_seconds", r.gpu_pct_seconds);
  }
}

}  // namespace

RunResult run_experiment(const apps::App& app, const workload::Trace& trace,
                         std::shared_ptr<serverless::Policy> policy,
                         const ExperimentOptions& options) {
  // A single-app run is the one-element co-located deployment: same engine,
  // RNG and injector construction order, so the trajectories are identical.
  std::vector<ColocatedApp> deployment;
  deployment.push_back({app, &trace, std::move(policy)});
  return run_colocated(std::move(deployment), options).front();
}

std::vector<RunResult> run_colocated(std::vector<ColocatedApp> apps,
                                     const ExperimentOptions& options) {
  SMILESS_CHECK(!apps.empty());
  if (options.lanes > 1) {
    SMILESS_CHECK_MSG(options.driver == nullptr,
                      "driver seam requires lanes == 1 (got " << options.lanes << ")");
    return run_sharded(std::move(apps), options);
  }
  obs::Telemetry* tel = options.telemetry;
  if (tel != nullptr && options.series_cadence > 0.0)
    tel->enable_series(options.series_cadence);
  sim::Engine engine;
  engine.set_profiler(options.profiler);
  cluster::Cluster cluster = cluster::Cluster::paper_testbed();
  Rng rng(options.seed);
  faults::FaultInjector injector(options.faults, rng);
  serverless::PlatformOptions popt = options.platform;
  if (injector.enabled()) popt.faults = &injector;
  if (tel != nullptr) popt.bus = &tel->bus();
  popt.prof = options.profiler;
  serverless::Platform platform(engine, cluster, perf::Pricing{}, rng, popt);
  injector.set_bus(tel != nullptr ? &tel->bus() : nullptr);
  injector.arm(engine, cluster);

  std::vector<RunResult> out(apps.size());
  std::vector<serverless::AppId> ids(apps.size());
  double horizon = 0.0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    auto& ca = apps[i];
    SMILESS_CHECK(ca.trace != nullptr && ca.policy != nullptr);
    out[i].policy = ca.policy->name();
    out[i].app = ca.app.name;
    if (tel != nullptr) {
      std::vector<std::string> node_names;
      node_names.reserve(ca.app.dag.size());
      for (std::size_t n = 0; n < ca.app.dag.size(); ++n)
        node_names.push_back(ca.app.dag.name(static_cast<dag::NodeId>(n)));
      tel->register_app(static_cast<int>(i), ca.app.name, std::move(node_names),
                        ca.app.sla);
    }
    ids[i] = platform.deploy(ca.app, ca.policy);
    if (options.driver == nullptr) {
      // Classic upfront scheduling, per-app interleaved with deploy — the
      // order every golden was pinned under. drain_all preserves it.
      workload::ArrivalCursor(&ca.trace->arrivals)
          .drain_all([&](SimTime t) { platform.submit_request(ids[i], t); });
    }
    horizon = std::max(horizon,
                       static_cast<double>(ca.trace->counts.size()) * ca.trace->window);
  }
  const double end = horizon + options.drain_slack;
  if (options.driver == nullptr) {
    // Arrivals are already in the queue; the DES driver with a null source
    // is exactly the pre-seam engine.run_until(end).
    sim::DesDriver des;
    des.drive(engine, nullptr, end);
  } else {
    // Live-serving mode: the replayer streams each app's trace through the
    // same Gateway intake, no earlier than each arrival's due time; the
    // driver paces the pump (DESIGN.md §16).
    rt::TraceReplayer replayer(
        [&](std::size_t slot, SimTime t) { platform.submit_request(ids[slot], t); });
    for (const auto& ca : apps) replayer.add_stream(&ca.trace->arrivals);
    options.driver->drive(engine, &replayer, end);
  }
  platform.finalize(end);
  if (tel != nullptr) tel->finalize_series(end);

  for (std::size_t i = 0; i < apps.size(); ++i)
    fill_result(out[i], platform.metrics(ids[i]), apps[i].app.sla);

  if (tel != nullptr) {
    mirror_registry(*tel, engine.stats(), injector.stats(), out);
    if (options.internal_stats) mirror_internal(*tel, engine.calendar_stats());
  }
  return out;
}

std::vector<RunResult> run_sharded(std::vector<ColocatedApp> apps,
                                   const ExperimentOptions& options) {
  SMILESS_CHECK(!apps.empty());
  serverless::ShardOptions sopt;
  sopt.lanes = std::max(1, options.lanes);
  sopt.lane_threads = options.lane_threads;
  sopt.seed = options.seed;
  sopt.machines = 8;  // the paper's testbed, as in run_colocated
  sopt.platform = options.platform;
  sopt.faults = options.faults;
  sopt.telemetry = options.telemetry;
  sopt.prof = options.profiler;
  if (options.telemetry != nullptr && options.series_cadence > 0.0)
    options.telemetry->enable_series(options.series_cadence);
  serverless::ShardedPlatform sharded(sopt);

  std::vector<RunResult> out(apps.size());
  std::vector<double> slas(apps.size());
  double horizon = 0.0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    auto& ca = apps[i];
    SMILESS_CHECK(ca.trace != nullptr && ca.policy != nullptr);
    out[i].policy = ca.policy->name();
    out[i].app = ca.app.name;
    slas[i] = ca.app.sla;
    horizon = std::max(horizon,
                       static_cast<double>(ca.trace->counts.size()) * ca.trace->window);
    sharded.add_app(std::move(ca.app), std::move(ca.policy), ca.trace->arrivals);
  }
  const double end = horizon + options.drain_slack;
  sharded.run(end);
  if (options.telemetry != nullptr) options.telemetry->finalize_series(end);

  for (std::size_t i = 0; i < apps.size(); ++i)
    fill_result(out[i], sharded.metrics(static_cast<int>(i)), slas[i]);

  if (options.telemetry != nullptr) {
    mirror_registry(*options.telemetry, sharded.engine_stats(), sharded.fault_stats(), out);
    if (options.internal_stats) {
      const sim::CalendarStats cs = sharded.calendar_stats();
      mirror_internal(*options.telemetry, &cs);
    }
  }
  return out;
}

std::string policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Smiless: return "SMIless";
    case PolicyKind::SmilessHomo: return "SMIless-Homo";
    case PolicyKind::SmilessNoDag: return "SMIless-No-DAG";
    case PolicyKind::Opt: return "OPT";
    case PolicyKind::Orion: return "Orion";
    case PolicyKind::IceBreaker: return "IceBreaker";
    case PolicyKind::GrandSlam: return "GrandSLAm";
    case PolicyKind::Aquatope: return "Aquatope";
  }
  return "?";
}

std::optional<PolicyKind> parse_policy_kind(const std::string& name) {
  std::string lower;
  for (const char c : name)
    if (c != '-' && c != '_') lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "smiless") return PolicyKind::Smiless;
  if (lower == "smilesshomo") return PolicyKind::SmilessHomo;
  if (lower == "smilessnodag") return PolicyKind::SmilessNoDag;
  if (lower == "opt") return PolicyKind::Opt;
  if (lower == "orion") return PolicyKind::Orion;
  if (lower == "icebreaker") return PolicyKind::IceBreaker;
  if (lower == "grandslam") return PolicyKind::GrandSlam;
  if (lower == "aquatope") return PolicyKind::Aquatope;
  return std::nullopt;
}

const std::vector<PolicyKind>& all_policy_kinds() {
  static const std::vector<PolicyKind> kinds = {
      PolicyKind::Smiless, PolicyKind::SmilessHomo, PolicyKind::SmilessNoDag,
      PolicyKind::GrandSlam, PolicyKind::IceBreaker, PolicyKind::Orion,
      PolicyKind::Aquatope, PolicyKind::Opt,
  };
  return kinds;
}

std::shared_ptr<serverless::Policy> make_policy(PolicyKind kind, const apps::App& app,
                                                const ProfileStore& store,
                                                const PolicySettings& settings) {
  auto fitted = store.for_app(app);
  switch (kind) {
    case PolicyKind::Smiless: {
      core::SmilessOptions o;
      o.use_lstm = settings.use_lstm;
      auto policy = std::make_shared<core::SmilessPolicy>("SMIless", std::move(fitted), o,
                                                          settings.pool);
      policy->set_audit_log(settings.audit);
      return policy;
    }
    case PolicyKind::SmilessHomo: {
      core::SmilessOptions o;
      o.use_lstm = settings.use_lstm;
      o.optimizer.config_space = perf::cpu_only_config_space();
      auto policy = std::make_shared<core::SmilessPolicy>("SMIless-Homo", std::move(fitted), o,
                                                          settings.pool);
      policy->set_audit_log(settings.audit);
      return policy;
    }
    case PolicyKind::SmilessNoDag: {
      core::SmilessOptions o;
      o.use_lstm = settings.use_lstm;
      o.use_dag_offsets = false;
      auto policy = std::make_shared<core::SmilessPolicy>("SMIless-No-DAG", std::move(fitted),
                                                          o, settings.pool);
      policy->set_audit_log(settings.audit);
      return policy;
    }
    case PolicyKind::Opt: {
      SMILESS_CHECK_MSG(settings.oracle_trace != nullptr, "OPT needs an oracle trace");
      core::SmilessOptions o;
      o.use_lstm = false;  // oracle replaces prediction
      o.exhaustive = true;
      auto policy = std::make_shared<core::SmilessPolicy>("OPT", app.truth, o, settings.pool);
      policy->set_oracle_arrivals(settings.oracle_trace->arrivals);
      policy->set_audit_log(settings.audit);
      return policy;
    }
    case PolicyKind::Orion:
      return std::make_shared<OrionPolicy>(std::move(fitted));
    case PolicyKind::IceBreaker:
      return std::make_shared<IceBreakerPolicy>(std::move(fitted));
    case PolicyKind::GrandSlam:
      return std::make_shared<GrandSlamPolicy>(std::move(fitted));
    case PolicyKind::Aquatope:
      return std::make_shared<AquatopePolicy>(std::move(fitted));
  }
  SMILESS_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

}  // namespace smiless::baselines
