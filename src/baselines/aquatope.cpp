#include "baselines/aquatope.hpp"

#include <algorithm>
#include <limits>

namespace smiless::baselines {

AquatopePolicy::AquatopePolicy(std::vector<perf::FunctionPerf> profiles_by_node, Options options)
    : profiles_(std::move(profiles_by_node)),
      options_(std::move(options)),
      rng_(options_.seed) {}

std::vector<double> AquatopePolicy::normalize(const std::vector<int>& cfg_idx) const {
  std::vector<double> x(cfg_idx.size());
  const double denom = static_cast<double>(options_.optimizer.config_space.size() - 1);
  for (std::size_t i = 0; i < cfg_idx.size(); ++i) x[i] = cfg_idx[i] / denom;
  return x;
}

void AquatopePolicy::apply(serverless::AppId app, serverless::PlatformView& platform) {
  for (std::size_t n = 0; n < current_.size(); ++n) {
    serverless::FunctionPlan plan;
    plan.config = options_.optimizer.config_space[current_[n]];
    plan.keepalive = options_.keepalive;  // short: frequent re-inits, no pre-warming
    plan.max_batch = 1;
    platform.set_plan(app, static_cast<dag::NodeId>(n), plan);
  }
}

void AquatopePolicy::on_deploy(serverless::AppId app, const apps::App& spec,
                               serverless::PlatformView& platform) {
  SMILESS_CHECK(profiles_.size() == spec.dag.size());
  sla_ = spec.sla;
  // Start from a mid-range configuration for every function.
  current_.assign(spec.dag.size(),
                  static_cast<int>(options_.optimizer.config_space.size() / 2));
  apply(app, platform);
}

void AquatopePolicy::on_window(serverless::AppId app, const apps::App& spec,
                               serverless::PlatformView& platform,
                               const serverless::WindowStats&) {
  // Baseline reactive scaling (a Kubernetes HPA stand-in): spawn extra
  // instances when a backlog outgrows what is already warming up. Aquatope
  // tunes configurations, not instance counts, so this is deliberately
  // coarse.
  for (std::size_t n = 0; n < spec.dag.size(); ++n) {
    const auto node = static_cast<dag::NodeId>(n);
    const auto backlog = static_cast<long>(platform.queue_length(app, node));
    const long serving = platform.instances_busy(app, node) +
                         platform.instances_initializing(app, node);
    const long excess = std::min<long>(backlog - 2 * serving, 8);
    for (long i = 0; i < excess; ++i)
      if (!platform.spawn_instance(app, node)) break;
  }

  if (++window_count_ % options_.eval_windows != 0) return;

  // Evaluate the period that just ended.
  const auto& m = platform.metrics(app);
  const double cost_now = m.total_cost();
  const std::size_t done_now = m.completed.size();
  const double d_cost = cost_now - cost_snapshot_;
  const std::size_t period_start = completed_snapshot_;
  const std::size_t d_done = done_now - period_start;
  cost_snapshot_ = cost_now;
  completed_snapshot_ = done_now;
  if (d_done == 0) return;  // idle period: nothing learned

  std::size_t violations = 0;
  for (std::size_t i = period_start; i < done_now; ++i)
    if (m.completed[i].e2e() > sla_) ++violations;
  const double violation_ratio = static_cast<double>(violations) / static_cast<double>(d_done);
  const double cost_per_req = d_cost / static_cast<double>(d_done);
  const double objective = cost_per_req * (1.0 + options_.violation_penalty * violation_ratio);

  observed_x_.push_back(normalize(current_));
  observed_y_.push_back(objective);

  const int space = static_cast<int>(options_.optimizer.config_space.size());
  if (static_cast<int>(observed_y_.size()) < options_.explore_rounds) {
    // Exploration: perturb the current configuration locally. (A uniform
    // random jump can land on a fleet that collapses under load for a whole
    // evaluation period, which a production scheduler would never risk.)
    for (auto& c : current_) c = std::clamp(c + rng_.uniform_int(-2, 2), 0, space - 1);
  } else {
    // Exploitation: GP surrogate + expected improvement over random
    // candidates (the uncertainty-aware part).
    math::GaussianProcess gp(/*length_scale=*/0.4, /*signal_var=*/1.0,
                             /*noise_var=*/1e-3);
    // Normalise objectives to zero mean / unit scale for GP stability.
    double mu = 0.0;
    for (double y : observed_y_) mu += y;
    mu /= static_cast<double>(observed_y_.size());
    double scale = 1e-12;
    for (double y : observed_y_) scale = std::max(scale, std::abs(y - mu));
    std::vector<double> ys;
    ys.reserve(observed_y_.size());
    for (double y : observed_y_) ys.push_back((y - mu) / scale);
    gp.fit(observed_x_, ys);

    const double best_y =
        (*std::min_element(observed_y_.begin(), observed_y_.end()) - mu) / scale;
    std::vector<int> best_cand = current_;
    double best_ei = -1.0;
    for (int c = 0; c < options_.ei_candidates; ++c) {
      std::vector<int> cand(current_.size());
      for (auto& v : cand) v = rng_.uniform_int(0, space - 1);
      const double ei = gp.expected_improvement(normalize(cand), best_y);
      if (ei > best_ei) {
        best_ei = ei;
        best_cand = cand;
      }
    }
    current_ = best_cand;
  }
  apply(app, platform);
}

}  // namespace smiless::baselines
