#include "baselines/icebreaker.hpp"

#include <algorithm>
#include <cmath>

namespace smiless::baselines {

IceBreakerPolicy::IceBreakerPolicy(std::vector<perf::FunctionPerf> profiles_by_node,
                                   Options options)
    : profiles_(std::move(profiles_by_node)),
      options_(std::move(options)),
      fip_(options_.fip_top_k) {}

double IceBreakerPolicy::efficiency_score(const perf::FunctionPerf& fn,
                                          const perf::HwConfig& config,
                                          const perf::Pricing& pricing) {
  const perf::HwConfig base{perf::Backend::Cpu, 1, 0};
  const double speedup = fn.inference_time(base, 1) / fn.inference_time(config, 1);
  const double price_ratio = pricing.per_second(config) / pricing.per_second(base);
  // Sub-linear price exponent: IceBreaker's ranking is speed-up-led (its
  // whole premise is that faster hardware warms functions better), which is
  // what parks most functions on the GPU in the paper's Fig. 9a.
  return speedup / std::pow(price_ratio, 0.8);
}

void IceBreakerPolicy::on_deploy(serverless::AppId app, const apps::App& spec,
                                 serverless::PlatformView& platform) {
  SMILESS_CHECK(profiles_.size() == spec.dag.size());
  chosen_.resize(spec.dag.size());
  for (std::size_t n = 0; n < spec.dag.size(); ++n) {
    double best = -1.0;
    for (const auto& c : options_.optimizer.config_space) {
      const double s = efficiency_score(profiles_[n], c, options_.optimizer.pricing);
      if (s > best) {
        best = s;
        chosen_[n] = c;
      }
    }
    serverless::FunctionPlan plan;
    plan.config = chosen_[n];
    plan.keepalive = options_.horizon;
    plan.min_instances = 1;  // start warm; the predictor decides when to idle down
    platform.set_plan(app, static_cast<dag::NodeId>(n), plan);
  }
}

void IceBreakerPolicy::on_window(serverless::AppId app, const apps::App& spec,
                                 serverless::PlatformView& platform,
                                 const serverless::WindowStats& stats) {
  count_history_.push_back(static_cast<double>(stats.arrivals));
  const double predicted = fip_.predict_next(count_history_);

  const bool warm = predicted >= options_.warm_threshold || stats.arrivals > 0;
  for (std::size_t n = 0; n < spec.dag.size(); ++n) {
    serverless::FunctionPlan plan = platform.plan(app, static_cast<dag::NodeId>(n));
    if (warm) {
      plan.keepalive = options_.horizon;
      plan.min_instances = std::max(1, static_cast<int>(predicted *
                                          profiles_[n].inference_time(chosen_[n], 1)));
    } else {
      // Predicted idle: let the instances drain away; they will be
      // re-warmed (all simultaneously — no DAG offsets) when FIP predicts
      // traffic again.
      plan.keepalive = 0.0;
      plan.min_instances = 0;
    }
    platform.set_plan(app, static_cast<dag::NodeId>(n), plan);
  }
}

}  // namespace smiless::baselines
