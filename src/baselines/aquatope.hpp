#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/workflow_manager.hpp"
#include "math/gaussian_process.hpp"
#include "serverless/platform_view.hpp"

namespace smiless::baselines {

/// Aquatope (ASPLOS'23) as characterised in §VII-A/§VII-B: an
/// uncertainty-aware QoS scheduler that tunes the per-function resource
/// configuration of a workflow with Bayesian optimisation (GP surrogate +
/// expected improvement), observing cost and SLA compliance online. It does
/// not manage cold starts — containers are terminated eagerly after use —
/// so it reaches low cost at the price of frequent re-initialisations and a
/// high violation ratio (Fig. 8/9b).
class AquatopePolicy : public serverless::Policy {
 public:
  struct Options {
    Options() { optimizer.config_space = perf::coarse_config_space(); }
    core::OptimizerOptions optimizer;  ///< defaults to the no-MPS space
    int eval_windows = 30;         ///< windows per BO evaluation period
    int explore_rounds = 5;        ///< random exploration before the GP kicks in
    int ei_candidates = 128;       ///< random candidates scored by EI per round
    double violation_penalty = 1.0;  ///< objective = cost/req * (1 + penalty*violation)
    double keepalive = 3.0;          ///< short FaaS-style keep-alive (still cold-start heavy)
    std::uint64_t seed = 17;
  };

  AquatopePolicy(std::vector<perf::FunctionPerf> profiles_by_node, Options options);
  explicit AquatopePolicy(std::vector<perf::FunctionPerf> profiles_by_node)
      : AquatopePolicy(std::move(profiles_by_node), Options{}) {}

  std::string name() const override { return "Aquatope"; }
  void on_deploy(serverless::AppId app, const apps::App& spec,
                 serverless::PlatformView& platform) override;
  void on_window(serverless::AppId app, const apps::App& spec,
                 serverless::PlatformView& platform, const serverless::WindowStats& stats) override;

 private:
  std::vector<double> normalize(const std::vector<int>& cfg_idx) const;
  void apply(serverless::AppId app, serverless::PlatformView& platform);

  std::vector<perf::FunctionPerf> profiles_;
  Options options_;
  Rng rng_;

  std::vector<int> current_;  ///< per-node index into the config space
  int window_count_ = 0;
  // Period-start snapshots for the incremental objective.
  double cost_snapshot_ = 0.0;
  std::size_t completed_snapshot_ = 0;
  double sla_ = 2.0;

  std::vector<std::vector<double>> observed_x_;
  std::vector<double> observed_y_;
};

}  // namespace smiless::baselines
