#pragma once

#include "common/units.hpp"
#include "perfmodel/latency_model.hpp"

namespace smiless::core {

/// Cold-start management modes of §V-B. Prewarm (Case I, T+I < IT):
/// terminate after each invocation and re-initialize just in time so the
/// init overlaps upstream inference. KeepAlive (Case II, T+I >= IT): keep
/// the instance alive between invocations.
enum class ColdStartMode { Prewarm, KeepAlive };

/// The joint (hardware configuration, cold-start policy) decision for one
/// function, with the derived quantities the optimizer reasons about.
struct FunctionDecision {
  perf::HwConfig config;
  ColdStartMode mode = ColdStartMode::KeepAlive;
  double inference_time = 0.0;       ///< I_k at batch 1 under `config`
  double init_time = 0.0;            ///< T_k = mu + n*sigma under `config`
  Dollars cost_per_invocation = 0.0; ///< Eq. (5): min(T+I, IT) * U
};

/// Evaluate the adaptive cold-start decision for one function under one
/// configuration and an expected inter-arrival time. The adaptive policy
/// picks the cheaper of the two modes, which by Theorem 5.1 is cost-optimal
/// when the SLA is met:
///   Prewarm cost   = (T_k + I_k) * U   (instance exists T+I seconds/invocation)
///   KeepAlive cost = IT * U            (instance exists the whole interval)
///
/// `prewarm_margin` guards the boundary: Prewarm is selected only when
/// T+I < margin * IT. The paper's rule (margin = 1) is exact for a
/// deterministic inter-arrival time; under stochastic gaps a borderline
/// Prewarm choice saves almost nothing (the two costs are equal at the
/// boundary) while every shorter-than-predicted gap puts a cold start on
/// the critical path, so production deployments want margin < 1.
FunctionDecision evaluate_decision(const perf::FunctionPerf& profile,
                                   const perf::HwConfig& config, double interarrival,
                                   const perf::Pricing& pricing, double n_sigma,
                                   double prewarm_margin = 0.6);

}  // namespace smiless::core
