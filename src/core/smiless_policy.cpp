#include "core/smiless_policy.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <span>

#include "math/stats.hpp"
#include "obs/audit.hpp"

#include "common/check.hpp"

namespace smiless::core {

namespace {
constexpr double kMinInterarrival = 0.05;  ///< guard against degenerate predictions
}

SmilessPolicy::SmilessPolicy(std::string name, std::vector<perf::FunctionPerf> profiles_by_node,
                             SmilessOptions options, std::shared_ptr<ThreadPool> pool)
    : name_(std::move(name)),
      profiles_(std::move(profiles_by_node)),
      options_(std::move(options)),
      pool_(std::move(pool)),
      workflow_(StrategyOptimizer(options_.optimizer), pool_.get()),
      autoscaler_(options_.optimizer.config_space, options_.optimizer.pricing,
                  options_.autoscaler_init_weight) {
  it_used_ = options_.default_interarrival;
  it_predicted_ = options_.default_interarrival;
}

SmilessPolicy::~SmilessPolicy() = default;

void SmilessPolicy::set_oracle_arrivals(std::vector<SimTime> arrivals) {
  oracle_ = std::move(arrivals);
  SMILESS_CHECK(std::is_sorted(oracle_.begin(), oracle_.end()));
}

void SmilessPolicy::on_deploy(serverless::AppId app, const apps::App& spec,
                              serverless::PlatformView& platform) {
  SMILESS_CHECK_MSG(app_id_ < 0, "one SmilessPolicy instance serves one application");
  app_id_ = app;
  SMILESS_CHECK(profiles_.size() == spec.dag.size());
  reoptimize(spec, platform, it_used_);

  // With oracle knowledge, pre-warm everything for the very first request.
  if (!oracle_.empty()) {
    const SimTime first = oracle_.front();
    for (std::size_t n = 0; n < spec.dag.size(); ++n) {
      const auto& d = solution_.per_node[n];
      const double offset = options_.use_dag_offsets ? solution_.start_offset[n] : 0.0;
      const SimTime start = first + offset - d.init_time - options_.prewarm_safety;
      platform.prewarm_at(app, static_cast<dag::NodeId>(n),
                          std::max(start, platform.now()));
    }
  }
}

void SmilessPolicy::reoptimize(const apps::App& spec, serverless::PlatformView& platform,
                               double interarrival) {
  it_used_ = std::max(interarrival, kMinInterarrival);
  windows_since_reopt_ = 0;
  // Variability-aware mode boundary: a high-variance arrival process makes
  // just-in-time pre-warming a gamble, so the margin shrinks with the
  // observed coefficient of variation of the gaps.
  update_gap_discount();
  workflow_.optimizer().set_prewarm_margin(
      std::max(0.1, options_.optimizer.prewarm_margin * (1.0 - gap_discount_)));
  // detlint:allow(wall-clock) solver self-profiling for bench_fig16; never feeds sim state
  const auto solve_begin = std::chrono::steady_clock::now();
  solution_ = workflow_.optimize(
      spec.dag, profiles_, it_used_, options_.sla_margin * spec.sla,
      options_.exhaustive ? WorkflowManager::Search::Exhaustive
                          : WorkflowManager::Search::PathSearch);
  const double solver_seconds =  // detlint:allow(wall-clock) same quarantine: overhead metric only
      std::chrono::duration<double>(std::chrono::steady_clock::now() - solve_begin).count();
  apply_plans(platform);

  if (audit_ != nullptr) {
    obs::DecisionRecord rec;
    rec.t = platform.now();
    rec.policy = name_;
    rec.kind = "reoptimize";
    rec.app = app_id_;
    rec.interarrival = it_used_;
    rec.sla = options_.sla_margin * spec.sla;
    for (std::size_t n = 0; n < solution_.per_node.size(); ++n) {
      const auto& d = solution_.per_node[n];
      if (!rec.chosen.empty()) rec.chosen += ' ';
      rec.chosen += spec.dag.name(static_cast<dag::NodeId>(n)) + "=" + d.config.to_string() +
                    (d.mode == ColdStartMode::Prewarm ? "/prewarm" : "/keepalive");
      if (d.mode == ColdStartMode::Prewarm) {
        // The usable pre-warm window of Eq. (4): the gap minus init and
        // inference time. The tightest one bounds how early inits must fire.
        const double slack = it_used_ - d.init_time - d.inference_time;
        if (slack > 0.0 && (rec.prewarm_window == 0.0 || slack < rec.prewarm_window))
          rec.prewarm_window = slack;
      }
    }
    rec.est_cost = solution_.cost_per_invocation;
    rec.feasible = solution_.feasible;
    rec.nodes_explored = static_cast<std::uint64_t>(solution_.nodes_explored);
    rec.solver_seconds = solver_seconds;
    audit_->record(std::move(rec));
  }
}

void SmilessPolicy::apply_plans(serverless::PlatformView& platform) {
  for (std::size_t n = 0; n < solution_.per_node.size(); ++n) {
    const auto& d = solution_.per_node[n];
    serverless::FunctionPlan plan;
    plan.config = d.config;
    plan.max_batch = 1;
    plan.min_instances = 0;
    if (d.mode == ColdStartMode::KeepAlive) {
      // Case II: keep the instance alive between invocations. The slack
      // bounds waste when the arrival process slows before the next
      // re-optimisation notices.
      plan.keepalive =
          std::max(options_.keepalive_slack * it_used_, options_.keepalive_floor);
    } else {
      // Case I: unload after a short hold and pre-warm just in time for
      // the next predicted arrival. The hold spends part of the pre-warm
      // window (IT - T - I) to absorb gap-prediction error; since it stays
      // below that window, the per-invocation cost remains under the
      // keep-alive alternative (Theorem 5.1 still picks the cheaper mode).
      const double slack = std::max(0.0, it_used_ - d.init_time - d.inference_time);
      plan.keepalive = options_.prewarm_hold * slack;
      plan.prewarm_grace = std::max(2.0, 0.5 * it_used_);
    }
    platform.set_plan(app_id_, static_cast<dag::NodeId>(n), plan);
  }
  scaled_out_ = false;
}

void SmilessPolicy::on_arrival(serverless::AppId app, const apps::App& spec,
                               serverless::PlatformView& platform, SimTime now) {
  SMILESS_CHECK(app == app_id_);
  if (last_arrival_ >= 0.0) {
    const double gap = now - last_arrival_;
    if (gap > 1e-9) {
      ia_history_.push_back(gap);
      ia_aux_history_.push_back(count_history_.empty() ? 0.0 : count_history_.back());
    }
  }
  last_arrival_ = now;

  // Advance the oracle cursor past this arrival.
  while (oracle_pos_ < oracle_.size() && oracle_[oracle_pos_] <= now + 1e-9) ++oracle_pos_;

  // Expected gap to the next request: oracle if available, predictor else.
  // Predicted gaps are discounted by the observed gap variability so that
  // early arrivals still find their instance warm (a late pre-warm puts the
  // residual init on the critical path; an early one only bills idle time
  // covered by the grace window).
  double next_gap = it_predicted_;
  if (!oracle_.empty()) {
    next_gap = oracle_pos_ < oracle_.size() ? oracle_[oracle_pos_] - now
                                            : std::numeric_limits<double>::infinity();
  } else {
    update_gap_discount();
    next_gap *= 1.0 - gap_discount_;
  }
  next_gap = std::max(next_gap, kMinInterarrival);

  // Schedule just-in-time pre-warms (§V-B1). A function whose init fits
  // inside its upstream critical path (D_k >= T_k) is warmed for *this*
  // request; otherwise its init must start before the next arrival, so it
  // is scheduled against the predicted gap.
  for (std::size_t n = 0; n < solution_.per_node.size(); ++n) {
    const auto& d = solution_.per_node[n];
    const auto node = static_cast<dag::NodeId>(n);
    const double offset = options_.use_dag_offsets ? solution_.start_offset[n] : 0.0;
    const double lead = offset - d.init_time - options_.prewarm_safety;
    if (d.mode == ColdStartMode::Prewarm) {
      if (lead >= 0.0) {
        platform.prewarm_at(app, node, now + lead);
      } else if (std::isfinite(next_gap)) {
        platform.prewarm_at(app, node, now + std::max(next_gap + lead, 0.0));
      }
    } else {
      if (platform.instances_total(app, node) == 0) {
        // Keep-alive function caught cold (the keep-alive expired during a
        // longer-than-predicted gap): warm the whole chain concurrently so
        // the request pays max(T_k) once instead of a serial init cascade.
        platform.prewarm_at(app, node, now + std::max(lead, 0.0));
      }
      // If the gap to the next request outlives the keep-alive, the
      // instance will be reaped in between — schedule a just-in-time
      // re-warm for that arrival (exact under the oracle, predictive
      // otherwise).
      const double keepalive = platform.plan(app, node).keepalive;
      if (std::isfinite(next_gap) && next_gap > keepalive)
        platform.prewarm_at(app, node, now + std::max(next_gap + lead, keepalive));
    }
  }

  // Fast-path burst reaction: when arrivals inside the current window
  // already exceed what the plans were sized for, scale out immediately
  // instead of waiting for the window boundary (§V-D "operates
  // dynamically"). Window ticks still own the steady-state decisions.
  ++arrivals_this_window_;
  if (options_.enable_autoscaler && arrivals_this_window_ >= 4 &&
      arrivals_this_window_ > burst_level_) {
    autoscale(spec, platform, (3 * arrivals_this_window_) / 2, 1.0);
  }
}

void SmilessPolicy::on_instance_failed(serverless::AppId app, const apps::App& spec,
                                       serverless::PlatformView& platform, dag::NodeId node,
                                       serverless::InstanceFailure kind) {
  (void)spec;
  (void)kind;
  SMILESS_CHECK(app == app_id_);
  // Re-provision up to the plan's floor. An always-warm function (Case-II
  // KeepAlive with infinite keep-alive) restores its single warm instance
  // too; everything else relies on the platform's cold-start retry path,
  // which re-creates an instance as soon as queued work needs one.
  const auto& plan = platform.plan(app, node);
  int want = plan.min_instances;
  if (plan.keepalive == serverless::FunctionPlan::forever()) want = std::max(want, 1);
  while (platform.instances_total(app, node) < want)
    if (!platform.spawn_instance(app, node)) break;  // no capacity; retry path takes over
}

void SmilessPolicy::update_gap_discount() {
  if (!options_.variability_aware) {
    gap_discount_ = 0.0;
    return;
  }
  const std::size_t tail = std::min<std::size_t>(ia_history_.size(), 32);
  if (tail < 8) return;
  const std::span<const double> recent(ia_history_.data() + ia_history_.size() - tail, tail);
  const double mu = math::mean(recent);
  const double cv = mu > 1e-9 ? math::stddev(recent) / mu : 0.0;
  gap_discount_ = std::min(0.5, 2.0 * cv);
}

void SmilessPolicy::maybe_train() {
  if (!options_.use_lstm) return;
  const bool first = !trained_ && count_history_.size() >= options_.train_after;
  const bool refresh = trained_ && options_.retrain_every > 0 &&
                       count_history_.size() >= last_train_size_ + options_.retrain_every;
  if (!first && !refresh) return;

  auto cls_opts = predictor::InvocationClassifier::Options{};
  cls_opts.lstm = options_.count_lstm;
  cls_opts.bucket_size = options_.bucket_size;
  count_predictor_ = std::make_unique<predictor::InvocationClassifier>(cls_opts);
  count_predictor_->fit(count_history_);

  if (ia_history_.size() > options_.it_lstm.seq_len + 8) {
    if (options_.dual_input_it) {
      it_predictor_ = std::make_unique<predictor::DualLstmRegressor>(options_.it_lstm);
      it_predictor_->fit(ia_history_, ia_aux_history_);
    } else {
      it_predictor_single_ = std::make_unique<predictor::LstmRegressor>(options_.it_lstm);
      it_predictor_single_->fit(ia_history_);
    }
  }
  trained_ = true;
  last_train_size_ = count_history_.size();
}

void SmilessPolicy::predict(const apps::App&) {
  if (trained_ && it_predictor_ != nullptr) {
    it_predicted_ = it_predictor_->predict_next(ia_history_, ia_aux_history_);
  } else if (trained_ && it_predictor_single_ != nullptr) {
    it_predicted_ = it_predictor_single_->predict_next(ia_history_);
  } else if (ia_history_.size() >= 3) {
    // Windowed mean of recent gaps: adapts within a few arrivals, unlike a
    // slow EMA whose convergence transient would cold-start a whole phase.
    const std::size_t tail = std::min<std::size_t>(ia_history_.size(), 32);
    it_predicted_ = math::mean(
        std::span<const double>(ia_history_.data() + ia_history_.size() - tail, tail));
  } else {
    it_predicted_ = options_.default_interarrival;
  }
  it_predicted_ = std::max(it_predicted_, kMinInterarrival);
}

void SmilessPolicy::autoscale(const apps::App& spec, serverless::PlatformView& platform,
                              int predicted_count, double window) {
  if (!options_.enable_autoscaler) return;

  // Burst test (§V-D): invocations inside the window arrive roughly
  // window / G apart; a function whose planned inference time exceeds that
  // gap accumulates backlog (Fig. 5c).
  const double gap =
      predicted_count > 0 ? window / predicted_count : std::numeric_limits<double>::infinity();
  bool burst = predicted_count >= 2;
  if (burst) {
    burst = false;
    for (const auto& d : solution_.per_node)
      if (d.inference_time > gap) burst = true;
  }

  if (!burst) {
    // Fall back to the base plans only after a few calm windows — flapping
    // between scaled and base plans would reap warm instances mid-burst.
    if (scaled_out_ && ++calm_windows_ >= options_.burst_cooldown) {
      apply_plans(platform);
      burst_level_ = 0;
      if (audit_ != nullptr) {
        obs::DecisionRecord rec;
        rec.t = platform.now();
        rec.policy = name_;
        rec.kind = "scale-in";
        rec.app = app_id_;
        rec.interarrival = it_used_;
        rec.est_cost = solution_.cost_per_invocation;
        rec.feasible = solution_.feasible;
        audit_->record(std::move(rec));
      }
    }
    return;
  }
  calm_windows_ = 0;

  // Configuration and batch size are solved once per burst episode and then
  // pinned: re-solving every window flips the cost-optimal backend back and
  // forth as the prediction moves, and every flip reaps warm capacity in
  // the middle of the burst. Only the instance floor tracks demand.
  if (!scaled_out_) {
    std::vector<double> budgets(solution_.per_node.size());
    for (std::size_t n = 0; n < budgets.size(); ++n)
      budgets[n] = solution_.per_node[n].inference_time;
    // detlint:allow(wall-clock) solver self-profiling for bench_fig16; never feeds sim state
    const auto solve_begin = std::chrono::steady_clock::now();
    burst_decisions_ =
        autoscaler_.solve_all(profiles_, budgets, predicted_count, window, pool_.get());
    const double solver_seconds =  // detlint:allow(wall-clock) same quarantine: overhead metric only
        std::chrono::duration<double>(std::chrono::steady_clock::now() - solve_begin).count();
    if (audit_ != nullptr) {
      obs::DecisionRecord rec;
      rec.t = platform.now();
      rec.policy = name_;
      rec.kind = "autoscale";
      rec.app = app_id_;
      rec.interarrival = window;
      rec.predicted_count = static_cast<double>(predicted_count);
      rec.sla = options_.sla_margin * spec.sla;
      bool all_feasible = true;
      for (std::size_t n = 0; n < burst_decisions_.size(); ++n) {
        const auto& sd = burst_decisions_[n];
        if (!rec.chosen.empty()) rec.chosen += ' ';
        rec.chosen += spec.dag.name(static_cast<dag::NodeId>(n)) + "=" + sd.config.to_string() +
                      "*b" + std::to_string(sd.batch);
        rec.est_cost += sd.cost;
        all_feasible = all_feasible && sd.feasible;
      }
      rec.feasible = all_feasible;
      rec.solver_seconds = solver_seconds;
      audit_->record(std::move(rec));
    }
  }

  for (std::size_t n = 0; n < burst_decisions_.size(); ++n) {
    const auto& sd = burst_decisions_[n];
    // Demand includes the already-queued backlog so the fleet drains it
    // instead of merely keeping pace with new arrivals.
    const long backlog =
        static_cast<long>(platform.queue_length(app_id_, static_cast<dag::NodeId>(n)));
    // New arrivals plus half the backlog: drain queued work over ~2 windows
    // instead of paying for a fleet that clears it instantly.
    const long demand = predicted_count + (backlog + 1) / 2;
    serverless::FunctionPlan plan = platform.plan(app_id_, static_cast<dag::NodeId>(n));
    plan.config = sd.config;
    plan.max_batch = sd.batch;
    plan.min_instances =
        static_cast<int>((demand + sd.batch - 1) / std::max(1, sd.batch));
    // During a burst every function effectively stays live.
    plan.keepalive = std::max(plan.keepalive, 4.0 * window);
    platform.set_plan(app_id_, static_cast<dag::NodeId>(n), plan);
  }
  scaled_out_ = true;
  burst_level_ = predicted_count;
}

void SmilessPolicy::on_window(serverless::AppId app, const apps::App& spec,
                              serverless::PlatformView& platform,
                              const serverless::WindowStats& stats) {
  SMILESS_CHECK(app == app_id_);
  const double window = stats.window_end - stats.window_start;
  arrivals_this_window_ = 0;
  count_history_.push_back(static_cast<double>(stats.arrivals));
  maybe_train();
  predict(spec);

  // Re-plan when the predicted arrival process drifted from the one the
  // current strategy assumed — with a dwell so transient jitter does not
  // churn the plans (every config change reaps warm instances).
  ++windows_since_reopt_;
  if (!scaled_out_ && windows_since_reopt_ >= options_.reopt_dwell &&
      std::abs(it_predicted_ - it_used_) / it_used_ > options_.reopt_threshold)
    reoptimize(spec, platform, it_predicted_);

  // Predicted invocations for the next window.
  int predicted_count;
  if (!oracle_.empty()) {
    // Count oracle arrivals inside the next window.
    predicted_count = 0;
    std::size_t i = oracle_pos_;
    while (i < oracle_.size() && oracle_[i] < stats.window_end + window) {
      if (oracle_[i] >= stats.window_end) ++predicted_count;
      ++i;
    }
  } else if (trained_ && count_predictor_ != nullptr) {
    predicted_count = static_cast<int>(std::ceil(count_predictor_->predict_next(count_history_)));
  } else {
    predicted_count = stats.arrivals;  // persistence until the LSTM trains
  }
  autoscale(spec, platform, std::max(predicted_count, 0), window);
}

}  // namespace smiless::core
