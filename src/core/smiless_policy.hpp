#pragma once

#include <memory>
#include <string>
#include <vector>

#include "concurrency/thread_pool.hpp"
#include "core/autoscaler.hpp"
#include "core/workflow_manager.hpp"
#include "predictor/invocation_classifier.hpp"
#include "predictor/lstm_regressor.hpp"
#include "serverless/platform_view.hpp"

namespace smiless::obs {
class AuditLog;
}  // namespace smiless::obs

namespace smiless::core {

/// All the knobs of the SMIless runtime policy. The ablations and OPT are
/// expressed as option combinations:
///  - SMIless-Homo: cpu-only `optimizer.config_space`
///  - SMIless-No-DAG: `use_dag_offsets = false`
///  - OPT: `exhaustive = true` + oracle arrivals + ground-truth profiles
struct SmilessOptions {
  OptimizerOptions optimizer;

  bool use_dag_offsets = true;   ///< false => warm all functions at arrival time
  bool exhaustive = false;       ///< exhaustive chain search instead of path search
  bool enable_autoscaler = true; ///< adaptive batching + scale-out (§V-D)

  /// Online predictors. With `use_lstm` false the policy falls back to
  /// exponential-moving-average estimates (useful for fast tests).
  bool use_lstm = true;
  bool dual_input_it = true;     ///< false => single-LSTM inter-arrival (SMIless-S)
  predictor::LstmOptions count_lstm{};
  predictor::LstmOptions it_lstm{};
  int bucket_size = 2;
  std::size_t train_after = 240;  ///< windows of history before LSTM training
  std::size_t retrain_every = 0;  ///< re-fit the predictors every N windows (0 = once)

  double default_interarrival = 2.0;  ///< prior before any arrivals observed
  double reopt_threshold = 0.25;      ///< relative IT change triggering re-optimisation
  int reopt_dwell = 10;               ///< min windows between re-optimisations
  double keepalive_slack = 5.0;       ///< keep-alive = slack * IT for Case-II functions
  double keepalive_floor = 12.0;      ///< minimum keep-alive (s) in KeepAlive mode
  double prewarm_hold = 0.5;          ///< Case-I hold as a fraction of the pre-warm window
  double prewarm_safety = 0.05;       ///< start inits this much early (s)

  /// Plan against sla * sla_margin so the 6%-jitter tail of sampled
  /// latencies still lands inside the SLA (the paper's zero-violation
  /// figures imply similar headroom via the mu+3sigma init estimates).
  double sla_margin = 0.78;

  /// Burst-scaling hysteresis: re-solve the autoscaler only when the
  /// predicted count moves by this relative amount, and fall back to the
  /// base plans only after `burst_cooldown` consecutive calm windows.
  double burst_resolve_threshold = 0.3;
  int burst_cooldown = 3;

  /// Fold instance initialization time into the Auto-scaler's Eq. (7)
  /// objective (DESIGN.md §6); 0 recovers the paper's literal formula.
  double autoscaler_init_weight = 1.0;

  /// Scale the pre-warm margin and pre-warm schedule by the observed gap
  /// variability (DESIGN.md §6); false recovers the paper's deterministic
  /// treatment of IT.
  bool variability_aware = true;
};

/// SMIless (§III–§V): co-optimizes heterogeneous configuration and
/// cold-start management with adaptive pre-warming, re-planning as the
/// Online Predictor's view of the arrival process changes, and scaling
/// out with adaptive batching under bursts.
class SmilessPolicy : public serverless::Policy {
 public:
  /// `profiles_by_node` are the (typically profiler-fitted) performance
  /// models indexed by the app's DAG node ids. One policy instance serves
  /// one application.
  SmilessPolicy(std::string name, std::vector<perf::FunctionPerf> profiles_by_node,
                SmilessOptions options, std::shared_ptr<ThreadPool> pool = nullptr);
  ~SmilessPolicy() override;

  /// Give the policy perfect knowledge of the arrival process (OPT).
  void set_oracle_arrivals(std::vector<SimTime> arrivals);

  /// Attach a decision audit log (non-owning, may be null). Every
  /// StrategyOptimizer / Autoscaler solve and scale-in is recorded with its
  /// inputs, and the solver wall time accumulates for overhead reporting.
  void set_audit_log(obs::AuditLog* log) override { audit_ = log; }

  std::string name() const override { return name_; }
  void on_deploy(serverless::AppId app, const apps::App& spec,
                 serverless::PlatformView& platform) override;
  void on_window(serverless::AppId app, const apps::App& spec,
                 serverless::PlatformView& platform, const serverless::WindowStats& stats) override;
  void on_arrival(serverless::AppId app, const apps::App& spec,
                  serverless::PlatformView& platform, SimTime now) override;
  /// Restore the scale-out floor (and the warm pool of always-warm
  /// functions) after a failed init or a machine-down eviction.
  void on_instance_failed(serverless::AppId app, const apps::App& spec,
                          serverless::PlatformView& platform, dag::NodeId node,
                          serverless::InstanceFailure kind) override;

  /// The currently deployed solution (for tests and benches).
  const AppSolution& solution() const { return solution_; }
  double predicted_interarrival() const { return it_predicted_; }

 private:
  void reoptimize(const apps::App& spec, serverless::PlatformView& platform, double interarrival);
  void apply_plans(serverless::PlatformView& platform);
  void maybe_train();
  void predict(const apps::App& spec);
  void update_gap_discount();
  void autoscale(const apps::App& spec, serverless::PlatformView& platform, int predicted_count,
                 double window);

  std::string name_;
  std::vector<perf::FunctionPerf> profiles_;
  obs::AuditLog* audit_ = nullptr;
  SmilessOptions options_;
  std::shared_ptr<ThreadPool> pool_;
  WorkflowManager workflow_;
  AutoScaler autoscaler_;

  serverless::AppId app_id_ = -1;
  AppSolution solution_;
  double it_used_ = 0.0;       ///< IT the current solution was computed with
  double it_predicted_ = 0.0;  ///< latest predictor output
  bool scaled_out_ = false;    ///< burst plans currently installed
  int burst_level_ = 0;        ///< predicted count the current scale plan assumed
  std::vector<ScaleDecision> burst_decisions_;  ///< pinned per-episode configs
  int calm_windows_ = 0;       ///< consecutive windows below the burst test
  int windows_since_reopt_ = 0;
  int arrivals_this_window_ = 0;  ///< intra-window arrival count (fast path)

  // Online state.
  double gap_discount_ = 0.0;  ///< min(0.5, 2*cv) of recent gaps
  std::vector<double> count_history_;
  std::vector<double> ia_history_;      ///< observed inter-arrival gaps
  std::vector<double> ia_aux_history_;  ///< aligned invocation-count inputs
  SimTime last_arrival_ = -1.0;

  // Predictors.
  std::unique_ptr<predictor::InvocationClassifier> count_predictor_;
  std::unique_ptr<predictor::DualLstmRegressor> it_predictor_;
  std::unique_ptr<predictor::LstmRegressor> it_predictor_single_;
  bool trained_ = false;
  std::size_t last_train_size_ = 0;  ///< history length at the last (re)training

  // Oracle (OPT).
  std::vector<SimTime> oracle_;
  std::size_t oracle_pos_ = 0;
};

}  // namespace smiless::core
