#include "core/strategy_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.hpp"

namespace smiless::core {

OptimizerOptions::OptimizerOptions()
    : config_space(perf::default_config_space()), pricing() {}

StrategyOptimizer::StrategyOptimizer(OptimizerOptions options) : options_(std::move(options)) {
  SMILESS_CHECK(!options_.config_space.empty());
  SMILESS_CHECK(options_.top_k >= 1);
}

FunctionDecision StrategyOptimizer::evaluate(const perf::FunctionPerf& fn,
                                             const perf::HwConfig& config,
                                             double interarrival) const {
  FunctionDecision d = evaluate_decision(fn, config, interarrival, options_.pricing,
                                         options_.n_sigma, options_.prewarm_margin);
  const double unit = options_.pricing.per_second(config);
  switch (cost_model_) {
    case CostModel::Adaptive:
      break;
    case CostModel::AlwaysPrewarm:
      d.mode = ColdStartMode::Prewarm;
      d.cost_per_invocation = (d.init_time + d.inference_time) * unit;
      break;
    case CostModel::AlwaysKeepAlive:
      d.mode = ColdStartMode::KeepAlive;
      d.cost_per_invocation = interarrival * unit;
      break;
  }
  return d;
}

std::vector<FunctionDecision> StrategyOptimizer::ranked_decisions(const perf::FunctionPerf& fn,
                                                                  double interarrival) const {
  std::vector<FunctionDecision> all;
  all.reserve(options_.config_space.size());
  for (const auto& c : options_.config_space) all.push_back(evaluate(fn, c, interarrival));
  // O(M log M) cost ordering (§V-C3); ties by faster inference.
  std::sort(all.begin(), all.end(), [](const FunctionDecision& a, const FunctionDecision& b) {
    if (a.cost_per_invocation != b.cost_per_invocation)
      return a.cost_per_invocation < b.cost_per_invocation;
    return a.inference_time < b.inference_time;
  });
  return all;
}

namespace {

double total_latency(const std::vector<FunctionDecision>& ds) {
  double s = 0.0;
  for (const auto& d : ds) s += d.inference_time;
  return s;
}

Dollars total_cost(const std::vector<FunctionDecision>& ds) {
  Dollars s = 0.0;
  for (const auto& d : ds) s += d.cost_per_invocation;
  return s;
}

/// Start from the all-cheapest assignment and repeatedly apply the single
/// configuration upgrade with the lowest marginal cost per second of latency
/// saved, until the SLA holds. Requires the all-fastest assignment to be
/// feasible (checked by the caller).
std::vector<FunctionDecision> marginal_cost_candidate(
    const std::vector<std::vector<FunctionDecision>>& ranked, double sla,
    long& nodes_explored) {
  const std::size_t n = ranked.size();
  std::vector<FunctionDecision> greedy(n);
  for (std::size_t k = 0; k < n; ++k) greedy[k] = ranked[k][0];
  double latency = total_latency(greedy);
  while (latency > sla) {
    double best_ratio = std::numeric_limits<double>::infinity();
    std::size_t best_k = 0;
    const FunctionDecision* best_d = nullptr;
    for (std::size_t k = 0; k < n; ++k) {
      for (const auto& cand : ranked[k]) {
        ++nodes_explored;
        const double dt = greedy[k].inference_time - cand.inference_time;
        if (dt <= 1e-12) continue;
        const double dc = cand.cost_per_invocation - greedy[k].cost_per_invocation;
        if (dc / dt < best_ratio) {
          best_ratio = dc / dt;
          best_k = k;
          best_d = &cand;
        }
      }
    }
    SMILESS_CHECK_MSG(best_d != nullptr, "no upgrade available despite feasible bound");
    latency += best_d->inference_time - greedy[best_k].inference_time;
    greedy[best_k] = *best_d;
  }
  return greedy;
}

}  // namespace

ChainSolution StrategyOptimizer::optimize_chain(std::span<const perf::FunctionPerf> chain,
                                                double interarrival, double sla) const {
  SMILESS_CHECK(!chain.empty());
  SMILESS_CHECK(sla > 0.0);
  const std::size_t n = chain.size();

  std::vector<std::vector<FunctionDecision>> ranked(n);
  std::vector<std::size_t> fastest(n);  // rank index of the min-latency option
  for (std::size_t k = 0; k < n; ++k) {
    ranked[k] = ranked_decisions(chain[k], interarrival);
    std::size_t best = 0;
    for (std::size_t j = 1; j < ranked[k].size(); ++j)
      if (ranked[k][j].inference_time < ranked[k][best].inference_time) best = j;
    fastest[k] = best;
  }

  ChainSolution out;
  out.decisions.resize(n);

  // Root node T^0: every function on its cheapest option (Eq. 6).
  for (std::size_t k = 0; k < n; ++k) out.decisions[k] = ranked[k][0];
  out.nodes_explored = 1;
  out.latency = total_latency(out.decisions);
  if (out.latency <= sla) {
    out.cost = total_cost(out.decisions);
    out.feasible = true;
    return out;
  }

  // Feasibility bound: the all-fastest assignment.
  std::vector<FunctionDecision> current(n);
  for (std::size_t k = 0; k < n; ++k) current[k] = ranked[k][fastest[k]];
  double latency = total_latency(current);
  if (latency > sla) {
    out.decisions = std::move(current);
    out.latency = latency;
    out.cost = total_cost(out.decisions);
    out.feasible = false;
    return out;
  }

  if (options_.top_k == 1) {
    // §V-C1 walk: layer by layer, downgrade each function to the cheapest
    // rank that keeps the SLA while later layers stay on their fastest
    // option. The O(1) incremental latency update makes each SLA check
    // constant-time.
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t j = 0; j < ranked[k].size(); ++j) {
        const double cand_latency =
            latency - current[k].inference_time + ranked[k][j].inference_time;
        ++out.nodes_explored;
        if (cand_latency <= sla) {
          current[k] = ranked[k][j];
          latency = cand_latency;
          break;
        }
      }
    }

    // Second candidate at the same O(N*M) budget: start from the cheapest
    // assignment and repeatedly apply the upgrade with the best
    // cost-per-latency-saved ratio until the SLA holds. The layered walk
    // can strand early layers on slow hardware when the SLA is loose; this
    // marginal-cost path avoids that, and we keep whichever is cheaper.
    const auto greedy = marginal_cost_candidate(ranked, sla, out.nodes_explored);
    if (total_cost(greedy) < total_cost(current)) current = greedy;

    out.latency = total_latency(current);
    out.decisions = std::move(current);
    out.cost = total_cost(out.decisions);
    out.feasible = true;
    return out;
  }

  // Top-K beam: keep the K cheapest feasible partial assignments per layer
  // (functions <= layer decided, the rest on their fastest option).
  struct Partial {
    std::vector<std::size_t> rank;  // decided ranks for layers [0, depth)
    double latency;                 // full latency with the tail on fastest
    Dollars cost;                   // cost of decided prefix
  };
  double tail_fast_latency = 0.0;
  for (std::size_t k = 0; k < n; ++k)
    tail_fast_latency += ranked[k][fastest[k]].inference_time;

  std::vector<Partial> beam{{{}, tail_fast_latency, 0.0}};
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<Partial> next;
    for (const auto& p : beam) {
      for (std::size_t j = 0; j < ranked[k].size(); ++j) {
        ++out.nodes_explored;
        const double cand = p.latency - ranked[k][fastest[k]].inference_time +
                            ranked[k][j].inference_time;
        if (cand > sla) continue;
        Partial q = p;
        q.rank.push_back(j);
        q.latency = cand;
        q.cost = p.cost + ranked[k][j].cost_per_invocation;
        next.push_back(std::move(q));
      }
    }
    std::sort(next.begin(), next.end(),
              [](const Partial& a, const Partial& b) { return a.cost < b.cost; });
    if (next.size() > static_cast<std::size_t>(options_.top_k))
      next.resize(static_cast<std::size_t>(options_.top_k));
    SMILESS_CHECK_MSG(!next.empty(), "beam emptied despite feasible all-fastest bound");
    beam = std::move(next);
  }
  const Partial& best = beam.front();
  for (std::size_t k = 0; k < n; ++k) out.decisions[k] = ranked[k][best.rank[k]];
  // The beam and the marginal-cost path explore different corners; keep the
  // cheaper (so top-K is never worse than top-1, which also runs both).
  const auto greedy = marginal_cost_candidate(ranked, sla, out.nodes_explored);
  if (total_cost(greedy) < total_cost(out.decisions)) out.decisions = greedy;
  out.latency = total_latency(out.decisions);
  out.cost = total_cost(out.decisions);
  out.feasible = true;
  return out;
}

ChainSolution StrategyOptimizer::optimize_chain_exhaustive(
    std::span<const perf::FunctionPerf> chain, double interarrival, double sla) const {
  SMILESS_CHECK(!chain.empty());
  const std::size_t n = chain.size();
  std::vector<std::vector<FunctionDecision>> all(n);
  for (std::size_t k = 0; k < n; ++k) {
    for (const auto& c : options_.config_space)
      all[k].push_back(evaluate(chain[k], c, interarrival));
  }

  ChainSolution out;
  out.decisions.resize(n);
  std::vector<std::size_t> idx(n, 0);
  std::vector<FunctionDecision> best;
  Dollars best_cost = std::numeric_limits<double>::infinity();
  double best_latency = 0.0;

  // Also track the fastest assignment as the infeasible fallback.
  std::vector<FunctionDecision> fastest(n);
  for (std::size_t k = 0; k < n; ++k) {
    fastest[k] = all[k][0];
    for (const auto& d : all[k])
      if (d.inference_time < fastest[k].inference_time) fastest[k] = d;
  }

  bool carrying = false;
  while (!carrying) {
    ++out.nodes_explored;
    double latency = 0.0;
    Dollars cost = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      latency += all[k][idx[k]].inference_time;
      cost += all[k][idx[k]].cost_per_invocation;
    }
    if (latency <= sla && cost < best_cost) {
      best_cost = cost;
      best_latency = latency;
      best.resize(n);
      for (std::size_t k = 0; k < n; ++k) best[k] = all[k][idx[k]];
    }
    // Odometer increment.
    std::size_t k = 0;
    for (;; ++k) {
      if (k == n) {
        carrying = true;
        break;
      }
      if (++idx[k] < all[k].size()) break;
      idx[k] = 0;
    }
  }

  if (best.empty()) {
    out.decisions = std::move(fastest);
    out.latency = total_latency(out.decisions);
    out.cost = total_cost(out.decisions);
    out.feasible = false;
  } else {
    out.decisions = std::move(best);
    out.latency = best_latency;
    out.cost = best_cost;
    out.feasible = true;
  }
  return out;
}

ChainSolution StrategyOptimizer::optimize_chain_cspath(std::span<const perf::FunctionPerf> chain,
                                                       double interarrival, double sla,
                                                       double latency_step) const {
  SMILESS_CHECK(!chain.empty() && latency_step > 0.0);
  const std::size_t n = chain.size();
  std::vector<std::vector<FunctionDecision>> all(n);
  for (std::size_t k = 0; k < n; ++k)
    for (const auto& c : options_.config_space)
      all[k].push_back(evaluate(chain[k], c, interarrival));

  // Dynamic program over (layer, discretised latency budget) -> min cost.
  const auto buckets = static_cast<std::size_t>(sla / latency_step) + 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(buckets, kInf);
  std::vector<std::vector<std::pair<int, std::size_t>>> back(
      n, std::vector<std::pair<int, std::size_t>>(buckets, {-1, 0}));
  cost[0] = 0.0;

  ChainSolution out;
  out.decisions.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<double> next(buckets, kInf);
    for (std::size_t b = 0; b < buckets; ++b) {
      if (cost[b] == kInf) continue;
      for (std::size_t j = 0; j < all[k].size(); ++j) {
        ++out.nodes_explored;
        const auto add = static_cast<std::size_t>(
            std::ceil(all[k][j].inference_time / latency_step));
        const std::size_t nb = b + add;
        if (nb >= buckets) continue;
        const double c = cost[b] + all[k][j].cost_per_invocation;
        if (c < next[nb]) {
          next[nb] = c;
          back[k][nb] = {static_cast<int>(j), b};
        }
      }
    }
    cost = std::move(next);
  }

  std::size_t best_b = buckets;
  double best_cost = kInf;
  for (std::size_t b = 0; b < buckets; ++b) {
    if (cost[b] < best_cost) {
      best_cost = cost[b];
      best_b = b;
    }
  }
  if (best_b == buckets) {
    // Infeasible even under discretisation: fall back to fastest.
    for (std::size_t k = 0; k < n; ++k) {
      out.decisions[k] = all[k][0];
      for (const auto& d : all[k])
        if (d.inference_time < out.decisions[k].inference_time) out.decisions[k] = d;
    }
    out.latency = total_latency(out.decisions);
    out.cost = total_cost(out.decisions);
    out.feasible = false;
    return out;
  }

  std::size_t b = best_b;
  for (std::size_t k = n; k-- > 0;) {
    const auto [j, pb] = back[k][b];
    SMILESS_CHECK(j >= 0);
    out.decisions[k] = all[k][static_cast<std::size_t>(j)];
    b = pb;
  }
  out.latency = total_latency(out.decisions);
  out.cost = total_cost(out.decisions);
  out.feasible = out.latency <= sla;
  return out;
}

}  // namespace smiless::core
