#include "core/workflow_manager.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace smiless::core {

std::vector<double> start_offsets(const dag::Dag& dag,
                                  const std::vector<FunctionDecision>& per_node) {
  SMILESS_CHECK(per_node.size() == dag.size());
  std::vector<double> offset(dag.size(), 0.0);
  for (dag::NodeId n : dag.topo_order()) {
    double start = 0.0;
    for (dag::NodeId p : dag.predecessors(n))
      start = std::max(start, offset[p] + per_node[p].inference_time);
    offset[n] = start;
  }
  return offset;
}

AppSolution WorkflowManager::optimize(const dag::Dag& dag,
                                      std::span<const perf::FunctionPerf> profiles,
                                      double interarrival, double sla, Search search) const {
  SMILESS_CHECK(profiles.size() == dag.size());
  const auto paths = dag.all_paths();
  SMILESS_CHECK(!paths.empty());

  // 1. Optimize every decomposed chain (in parallel when a pool exists).
  auto solve_path = [&](std::size_t i) {
    const auto& path = paths[i];
    std::vector<perf::FunctionPerf> chain;
    chain.reserve(path.size());
    for (dag::NodeId n : path) chain.push_back(profiles[n]);
    return search == Search::Exhaustive
               ? optimizer_.optimize_chain_exhaustive(chain, interarrival, sla)
               : optimizer_.optimize_chain(chain, interarrival, sla);
  };
  std::vector<ChainSolution> solved;
  if (pool_ != nullptr && paths.size() > 1) {
    solved = parallel_map(*pool_, paths.size(), solve_path);
  } else {
    solved.reserve(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) solved.push_back(solve_path(i));
  }

  AppSolution out;
  out.per_node.resize(dag.size());
  std::vector<bool> assigned(dag.size(), false);
  for (const auto& s : solved) out.nodes_explored += s.nodes_explored;

  // 2. Combine: a node shared by several paths takes the decision with the
  // shortest inference time among its per-path solutions (§V-C2).
  for (std::size_t p = 0; p < paths.size(); ++p) {
    for (std::size_t i = 0; i < paths[p].size(); ++i) {
      const dag::NodeId n = paths[p][i];
      const FunctionDecision& d = solved[p].decisions[i];
      if (!assigned[n] || d.inference_time < out.per_node[n].inference_time) {
        out.per_node[n] = d;
        assigned[n] = true;
      }
    }
  }

  auto critical_path = [&](const std::vector<FunctionDecision>& per_node) {
    std::vector<double> w(dag.size());
    for (std::size_t i = 0; i < dag.size(); ++i) w[i] = per_node[i].inference_time;
    return dag.critical_path_weight(w);
  };

  // 3. Cheapening sweep: revisit nodes from most to least expensive and take
  // the cheapest configuration that keeps the critical path within the SLA.
  double e2e = critical_path(out.per_node);
  if (e2e <= sla) {
    std::vector<dag::NodeId> order(dag.size());
    for (std::size_t i = 0; i < dag.size(); ++i) order[i] = static_cast<dag::NodeId>(i);
    std::sort(order.begin(), order.end(), [&](dag::NodeId a, dag::NodeId b) {
      return out.per_node[a].cost_per_invocation > out.per_node[b].cost_per_invocation;
    });
    for (dag::NodeId n : order) {
      FunctionDecision best = out.per_node[n];
      for (const auto& cfg : optimizer_.options().config_space) {
        FunctionDecision cand = evaluate_decision(profiles[n], cfg, interarrival,
                                                  optimizer_.options().pricing,
                                                  optimizer_.options().n_sigma,
                                                  optimizer_.options().prewarm_margin);
        if (cand.cost_per_invocation >= best.cost_per_invocation) continue;
        FunctionDecision saved = out.per_node[n];
        out.per_node[n] = cand;
        if (critical_path(out.per_node) <= sla)
          best = cand;
        out.per_node[n] = saved;
      }
      out.per_node[n] = best;
    }
    e2e = critical_path(out.per_node);
  }

  out.e2e_latency = e2e;
  out.feasible = e2e <= sla;
  for (const auto& d : out.per_node) out.cost_per_invocation += d.cost_per_invocation;
  out.start_offset = start_offsets(dag, out.per_node);
  return out;
}

}  // namespace smiless::core
