#pragma once

#include <span>
#include <vector>

#include "core/prewarm.hpp"
#include "perfmodel/latency_model.hpp"

namespace smiless::core {

/// How the optimizer prices a (function, config) choice.
enum class CostModel {
  /// SMIless: adaptive cold-start, min(T+I, IT) * U (Eq. 5 / Theorem 5.1).
  Adaptive,
  /// Orion's assumption: "right pre-warming" always possible, so every
  /// invocation pays (T+I) * U regardless of the arrival rate.
  AlwaysPrewarm,
  /// Always keep alive: every invocation pays IT * U.
  AlwaysKeepAlive,
};

/// Solution for one sequential chain of functions.
struct ChainSolution {
  std::vector<FunctionDecision> decisions;  ///< one per chain position
  double latency = 0.0;                     ///< sum of inference times
  Dollars cost = 0.0;                       ///< sum of per-invocation costs
  bool feasible = false;                    ///< latency <= SLA achievable
  long nodes_explored = 0;                  ///< search effort (Fig. 16a)
};

struct OptimizerOptions {
  std::vector<perf::HwConfig> config_space;
  perf::Pricing pricing;
  double n_sigma = 3.0;
  double prewarm_margin = 0.6;  ///< see evaluate_decision()
  int top_k = 1;  ///< beam width of the top-K path search (§V-C1; paper uses 1)

  OptimizerOptions();
};

/// The Strategy Optimizer (§V-C): top-K path search over the multi-way tree
/// whose layers are the functions of a chain and whose branches are the
/// configurations ordered by adaptive cost. Worst case O(N * M) SLA checks
/// after an O(N * M log M) ordering step.
class StrategyOptimizer {
 public:
  explicit StrategyOptimizer(OptimizerOptions options = {});

  /// Optimize one sequential chain: pick a configuration (and implied
  /// cold-start mode) per function minimising total cost subject to
  /// sum of inference times <= sla. If even the fastest configuration
  /// everywhere misses the SLA, returns that assignment with
  /// feasible == false.
  ChainSolution optimize_chain(std::span<const perf::FunctionPerf> chain, double interarrival,
                               double sla) const;

  /// Exhaustive joint search over the chain (M^N nodes) — the reference the
  /// path search is compared against (OPT, Fig. 16a).
  ChainSolution optimize_chain_exhaustive(std::span<const perf::FunctionPerf> chain,
                                          double interarrival, double sla) const;

  /// Exact constrained-shortest-path solve via Dijkstra on the layered
  /// product graph with latency discretisation — another Fig. 16a
  /// comparator.
  ChainSolution optimize_chain_cspath(std::span<const perf::FunctionPerf> chain,
                                      double interarrival, double sla,
                                      double latency_step = 0.005) const;

  const OptimizerOptions& options() const { return options_; }
  /// Tighten/relax the pre-warm margin at runtime (the policy scales it by
  /// the observed gap variability: noisy arrival processes should not
  /// gamble on just-in-time warm-ups).
  void set_prewarm_margin(double margin) {
    SMILESS_CHECK(margin > 0.0 && margin <= 1.0);
    options_.prewarm_margin = margin;
  }
  void set_cost_model(CostModel m) { cost_model_ = m; }
  CostModel cost_model() const { return cost_model_; }

 private:
  FunctionDecision evaluate(const perf::FunctionPerf& fn, const perf::HwConfig& config,
                            double interarrival) const;
  /// All decisions for one function, sorted by ascending cost.
  std::vector<FunctionDecision> ranked_decisions(const perf::FunctionPerf& fn,
                                                 double interarrival) const;

  OptimizerOptions options_;
  CostModel cost_model_ = CostModel::Adaptive;
};

}  // namespace smiless::core
