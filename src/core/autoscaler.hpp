#pragma once

#include <span>
#include <vector>

#include "concurrency/thread_pool.hpp"
#include "core/prewarm.hpp"
#include "perfmodel/latency_model.hpp"

namespace smiless::core {

/// The Auto-scaler's answer for one function during a burst (§V-D):
/// batch B invocations per inference call on `config`, running `instances`
/// instances, so that the batched inference stays within the latency budget
/// I_s from the Strategy Optimizer.
struct ScaleDecision {
  perf::HwConfig config;
  int batch = 1;
  int instances = 1;
  double batch_latency = 0.0;  ///< inference time of one full batch
  Dollars cost = 0.0;          ///< objective of Eq. (7): ceil(G/B) * IT * U
  bool feasible = false;       ///< some configuration met the budget
};

/// Solves the per-function optimization of Eq. (7)/(8): over all hardware
/// configurations and batch sizes, minimise (G/B) * IT * U(config) subject
/// to the batched inference time staying within I_s. The batch size for
/// each configuration is found by bisection (the latency model is monotone
/// in B).
class AutoScaler {
 public:
  /// `init_overhead_weight` folds each scaled-out instance's initialization
  /// time into the Eq. (7) objective (cost = instances * (IT + w*T_init) *
  /// U): burst instances are created cold, so hardware with long inits both
  /// bills longer and arrives too late. With the weight on, CPU fleets win
  /// burst scale-outs while GPUs keep the big batches — the Fig. 14b
  /// behaviour.
  AutoScaler(std::vector<perf::HwConfig> config_space, perf::Pricing pricing,
             double init_overhead_weight = 1.0);

  /// `invocations` = predicted count G for the next interval; `budget` = I_s
  /// (the per-function latency the E2E plan assumed); `interval` = IT, the
  /// billing horizon of the decision. If no configuration meets the budget
  /// even at B = 1, returns the fastest configuration with one instance per
  /// invocation and feasible == false.
  ScaleDecision solve(const perf::FunctionPerf& profile, int invocations, double budget,
                      double interval) const;

  /// Solve for every function of an application in parallel (the paper's
  /// Auto-scaler uses multiple threads; pass null to run sequentially).
  std::vector<ScaleDecision> solve_all(std::span<const perf::FunctionPerf> profiles,
                                       std::span<const double> budgets, int invocations,
                                       double interval, ThreadPool* pool = nullptr) const;

 private:
  std::vector<perf::HwConfig> config_space_;
  perf::Pricing pricing_;
  double init_overhead_weight_;
};

}  // namespace smiless::core
