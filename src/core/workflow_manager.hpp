#pragma once

#include <span>
#include <vector>

#include "concurrency/thread_pool.hpp"
#include "core/strategy_optimizer.hpp"
#include "dag/dag.hpp"

namespace smiless::core {

/// Joint solution for a whole application DAG.
struct AppSolution {
  std::vector<FunctionDecision> per_node;  ///< indexed by DAG node id
  std::vector<double> start_offset;        ///< D_k: earliest start of node k
                                           ///< relative to request arrival
  double e2e_latency = 0.0;                ///< critical-path inference time
  Dollars cost_per_invocation = 0.0;
  bool feasible = false;
  long nodes_explored = 0;
};

/// The Workflow Manager (§V-C2): decomposes a DAG into its simple
/// source-to-sink paths, optimizes each sequential chain in parallel with
/// the Strategy Optimizer, then recombines:
///  - functions shared by several paths (fork/join members included) take
///    the configuration with the shortest inference time among their
///    per-path solutions, which can only shrink every path's latency;
///  - a final cheapening sweep re-downgrades functions wherever the freed
///    slack allows, keeping the end-to-end latency within the SLA.
class WorkflowManager {
 public:
  enum class Search {
    PathSearch,   ///< SMIless' top-K path search per chain
    Exhaustive,   ///< exhaustive per chain (OPT)
  };

  /// `pool` may be null (sequential per-path optimisation).
  explicit WorkflowManager(StrategyOptimizer optimizer, ThreadPool* pool = nullptr)
      : optimizer_(std::move(optimizer)), pool_(pool) {}

  AppSolution optimize(const dag::Dag& dag, std::span<const perf::FunctionPerf> profiles,
                       double interarrival, double sla,
                       Search search = Search::PathSearch) const;

  const StrategyOptimizer& optimizer() const { return optimizer_; }
  StrategyOptimizer& optimizer() { return optimizer_; }

 private:
  StrategyOptimizer optimizer_;
  ThreadPool* pool_;
};

/// Earliest-start offsets D_k (critical path over predecessors' inference
/// times) for a decided assignment — the quantity pre-warm timers are
/// derived from: F_k's init should complete at arrival + D_k.
std::vector<double> start_offsets(const dag::Dag& dag,
                                  const std::vector<FunctionDecision>& per_node);

}  // namespace smiless::core
