#include "core/autoscaler.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "math/bisection.hpp"

namespace smiless::core {

AutoScaler::AutoScaler(std::vector<perf::HwConfig> config_space, perf::Pricing pricing,
                       double init_overhead_weight)
    : config_space_(std::move(config_space)),
      pricing_(pricing),
      init_overhead_weight_(init_overhead_weight) {
  SMILESS_CHECK(!config_space_.empty());
  SMILESS_CHECK(init_overhead_weight_ >= 0.0);
}

ScaleDecision AutoScaler::solve(const perf::FunctionPerf& profile, int invocations,
                                double budget, double interval) const {
  SMILESS_CHECK(invocations >= 1 && budget > 0.0 && interval > 0.0);

  ScaleDecision best;
  best.cost = std::numeric_limits<double>::infinity();
  ScaleDecision fastest;
  double fastest_latency = std::numeric_limits<double>::infinity();

  for (const auto& config : config_space_) {
    const double single = profile.inference_time(config, 1);
    const double billed_span =
        interval + init_overhead_weight_ * profile.init_time(config, 0.0);
    if (single < fastest_latency) {
      fastest_latency = single;
      fastest.config = config;
      fastest.batch = 1;
      fastest.instances = invocations;
      fastest.batch_latency = single;
      fastest.cost = invocations * billed_span * pricing_.per_second(config);
      fastest.feasible = false;
    }
    if (single > budget) continue;  // constraint fails even unbatched

    // Largest batch within the budget — bisection per §V-D.
    const int b = math::bisect_max_true(1, invocations, [&](int batch) {
      return profile.inference_time(config, batch) <= budget;
    });
    SMILESS_CHECK(b >= 1);
    const int instances = (invocations + b - 1) / b;
    const Dollars cost = instances * billed_span * pricing_.per_second(config);
    if (cost < best.cost ||
        (cost == best.cost && profile.inference_time(config, b) < best.batch_latency)) {
      best.config = config;
      best.batch = b;
      best.instances = instances;
      best.batch_latency = profile.inference_time(config, b);
      best.cost = cost;
      best.feasible = true;
    }
  }
  return best.feasible ? best : fastest;
}

std::vector<ScaleDecision> AutoScaler::solve_all(std::span<const perf::FunctionPerf> profiles,
                                                 std::span<const double> budgets,
                                                 int invocations, double interval,
                                                 ThreadPool* pool) const {
  SMILESS_CHECK(profiles.size() == budgets.size());
  std::vector<ScaleDecision> out(profiles.size());
  auto one = [&](std::size_t i) {
    out[i] = solve(profiles[i], invocations, budgets[i], interval);
  };
  if (pool != nullptr && profiles.size() > 1) {
    parallel_for(*pool, profiles.size(), one);
  } else {
    for (std::size_t i = 0; i < profiles.size(); ++i) one(i);
  }
  return out;
}

}  // namespace smiless::core
