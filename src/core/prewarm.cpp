#include "core/prewarm.hpp"

#include "common/check.hpp"

namespace smiless::core {

FunctionDecision evaluate_decision(const perf::FunctionPerf& profile,
                                   const perf::HwConfig& config, double interarrival,
                                   const perf::Pricing& pricing, double n_sigma,
                                   double prewarm_margin) {
  SMILESS_CHECK(interarrival > 0.0);
  SMILESS_CHECK(prewarm_margin > 0.0 && prewarm_margin <= 1.0);
  FunctionDecision d;
  d.config = config;
  d.inference_time = profile.inference_time(config, /*batch=*/1);
  d.init_time = profile.init_time(config, n_sigma);

  const double unit = pricing.per_second(config);
  const double prewarm_span = d.init_time + d.inference_time;
  if (prewarm_span < prewarm_margin * interarrival) {
    d.mode = ColdStartMode::Prewarm;
    d.cost_per_invocation = prewarm_span * unit;
  } else {
    d.mode = ColdStartMode::KeepAlive;
    d.cost_per_invocation = interarrival * unit;
  }
  return d;
}

}  // namespace smiless::core
