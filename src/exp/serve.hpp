#pragma once

#include <cstdint>
#include <memory>
#include <ostream>

#include "concurrency/thread_pool.hpp"
#include "exp/runner.hpp"

namespace smiless::exp {

/// Knobs of one live-serving run (`smiless serve`). These are *driver-side*
/// settings only — everything that defines the experiment itself (app,
/// policy, trace, faults, seeds) stays in the unchanged ExperimentConfig,
/// so any existing config file serves as-is.
struct ServeOptions {
  /// Sim-seconds per wall-second. 1 replays the trace at its natural rate;
  /// the CI smoke uses 1e5 to compress minutes into milliseconds while
  /// exercising exactly the live code path.
  double speedup = 1.0;

  /// Live NDJSON event stream (obs::StreamSink; one flushed line per
  /// event). Null disables streaming. Non-null forces telemetry on even
  /// when config.obs collects nothing — the stream needs the event bus.
  std::ostream* stream = nullptr;
};

/// What one serve run produced: the same CellResult a DES run of the same
/// config yields (same books, same artifacts inputs) plus wall-side
/// diagnostics. Everything wall-derived here is display-only and never
/// enters golden-compared output.
struct ServeReport {
  CellResult cell;
  double speedup = 1.0;
  double wall_seconds = 0.0;     ///< wall time spent driving
  double max_lag_seconds = 0.0;  ///< worst deadline lateness observed
  std::uint64_t batches = 0;     ///< distinct sim instants pumped
  std::uint64_t injected = 0;    ///< arrivals streamed through the Gateway
  std::uint64_t stream_lines = 0;  ///< NDJSON lines written (0 if no stream)
  bool interrupted = false;      ///< clock stopped the drive early
};

/// Run one cell in live-serving mode (DESIGN.md §16): the same experiment
/// materialization as Runner::run_cell — same app/trace/policy/telemetry
/// construction for the same config — but the pump is an rt::RealTimeDriver
/// pacing the engine against the wall clock while an rt::TraceReplayer
/// streams the trace through the Gateway intake. By the Clock contract the
/// books in `cell.result` match the DES run of the same config (the CI
/// serve smoke diffs the two summary tables).
///
/// Throws std::runtime_error for configs serve cannot drive (lanes != 1) or
/// that run_cell would reject (unknown app/policy).
ServeReport serve(const ExperimentConfig& config, const baselines::ProfileStore& store,
                  std::shared_ptr<ThreadPool> policy_pool, const ServeOptions& options);

}  // namespace smiless::exp
