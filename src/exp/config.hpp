#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "baselines/experiment.hpp"
#include "common/json.hpp"
#include "concurrency/thread_pool.hpp"
#include "faults/fault_injector.hpp"
#include "serverless/platform.hpp"
#include "workload/trace.hpp"

namespace smiless::obs {
class Telemetry;
}  // namespace smiless::obs

namespace smiless::exp {

/// How a cell obtains its arrival process. Everything a generated trace
/// depends on lives here; the actual RNG stream is forked per cell from
/// `seed` mixed with the application name (as the benches always did), so a
/// cell's trace never depends on which thread — or which sibling cell —
/// ran first.
struct TraceSpec {
  /// "preset"  — the Azure-like per-workload preset (§VII-A);
  /// "regular" — near-periodic arrivals every `interval` seconds;
  /// "burst"   — the violent Fig. 14/15 burst window;
  /// "csv"     — replay `file`.
  std::string kind = "preset";
  double duration = 600.0;  ///< generated-trace length (s)
  std::uint64_t seed = 42;  ///< trace RNG seed (mixed with the app name)
  double interval = 10.0;   ///< "regular": mean gap (s)
  double jitter = 0.05;     ///< "regular": relative jitter
  double quiet_rate = 0.5;  ///< "burst": baseline rps
  double peak_rate = 12.0;  ///< "burst": peak rps
  std::string file;         ///< "csv": path to replay

  json::Value to_json() const;
  static TraceSpec from_json(const json::Value& v);
};

struct CellContext;

/// Where a run's observability artifacts go. Empty paths disable the
/// corresponding collector entirely — with every path empty no telemetry is
/// attached and the run is byte-identical to a build without this subsystem.
/// In a sweep the paths name combined files: every cell contributes, in
/// deterministic cell order, regardless of how many threads executed it.
struct ObservabilityOptions {
  std::string trace_out;    ///< Perfetto/Chrome trace-event JSON
  std::string metrics_out;  ///< counters/gauges/histograms JSON
  std::string audit_out;    ///< policy decision audit JSON
  std::string windows_out;  ///< per-window time series CSV
  std::string series_out;   ///< fixed-cadence obs::TimeSeries JSON
  std::string report_out;   ///< self-contained HTML serving report
  std::string profile_out;  ///< runtime self-profiler breakdown JSON

  /// Cadence (sim seconds) of the obs::TimeSeries collected when
  /// series_out or report_out is set. Serialized with the config so a
  /// report is reproducible from it; excluded (with the whole obs block)
  /// from group_key, so sweeping it never splits aggregation groups.
  double series_cadence = 1.0;

  /// Mirror internal queue diagnostics (CalendarStats) into metrics_out.
  /// Off by default: those counters legitimately differ between the
  /// monolithic and sharded execution paths even when the trajectories are
  /// bit-identical, so turning this on makes metrics path-revealing.
  bool internal_stats = false;

  /// True when any collector needs a Telemetry attached to the run.
  bool collect() const {
    return !trace_out.empty() || !metrics_out.empty() || !audit_out.empty() ||
           !series_out.empty() || !report_out.empty();
  }
  /// True when the runtime self-profiler should be attached to the run
  /// (wall-clock scope timers + sampled counters; trajectory-neutral).
  bool profile() const { return !profile_out.empty() || !report_out.empty(); }
  /// True when any artifact at all will be written.
  bool any() const { return collect() || !windows_out.empty() || !profile_out.empty(); }

  json::Value to_json() const;
  static ObservabilityOptions from_json(const json::Value& v);
};

/// One fully-specified experiment cell: everything `run_experiment` needs,
/// as data. The whole struct (minus the programmatic override below)
/// round-trips through JSON, so any run is reproducible from one config
/// file: `smiless --config run.json` / `smiless --save-config run.json`.
struct ExperimentConfig {
  std::string label;             ///< grid cell name; cosmetic, set by expand()
  std::string app = "wl3";       ///< preset (wl1|wl2|wl3|ipa) or manifest path
  std::string policy = "smiless";  ///< baselines::parse_policy_kind spelling
  double sla = 2.0;              ///< end-to-end target (s)
  bool use_lstm = true;          ///< LSTM predictors vs statistical fallbacks
  std::uint64_t seed = 42;       ///< run RNG (platform noise, faults fork off it)
  std::uint64_t profile_seed = 2024;  ///< offline-profiler sampling RNG
  double drain_slack = 120.0;    ///< extra sim time to drain in-flight requests
  /// Intra-cell sharding degree (DESIGN.md §14): 1 = classic monolithic
  /// simulation, > 1 = that many deterministic lanes. Part of the cell's
  /// identity (serialized, swept); the lane *thread* count is a runner
  /// option because it never changes results.
  int lanes = 1;
  TraceSpec trace;
  serverless::PlatformOptions platform;
  faults::FaultSpec faults;
  ObservabilityOptions obs;

  /// Escape hatch for ablation studies that need hand-built policy options:
  /// when set, the runner calls this instead of baselines::make_policy.
  /// Deliberately NOT serialized — a config file always names a zoo policy.
  std::function<std::shared_ptr<serverless::Policy>(const CellContext&)> policy_override;

  /// Display name: the label when set, else "policy/app".
  std::string display_name() const;

  json::Value to_json() const;
  static ExperimentConfig from_json(const json::Value& v);

  /// Serialized identity of the cell *excluding* the run/trace seeds and
  /// the label: cells that differ only by seed share a group key and
  /// aggregate into one row (mean/CI across seed replicates).
  std::string group_key() const;
};

/// Everything a policy_override (or emitter) may want to look at when the
/// runner materializes a cell.
struct CellContext {
  const ExperimentConfig& config;
  const apps::App& app;
  const workload::Trace& trace;
  const baselines::ProfileStore& profiles;
  std::shared_ptr<ThreadPool> pool;  ///< inner pool for policy solvers (may be null)
  /// The cell's observability bundle; null when config.obs collects nothing.
  /// Overrides building a SMIless-family policy should attach its audit().
  obs::Telemetry* telemetry = nullptr;
};

/// A declarative sweep: a base config plus value lists for any subset of
/// axes. `expand()` yields the cross product in a fixed nesting order
/// (app, policy, sla, duration, init_failure_prob, straggler_prob,
/// crash_rate, use_lstm, seed, lanes — outermost to innermost), so cell
/// order, and therefore every ordered reduction downstream, is
/// deterministic.
struct ExperimentGrid {
  ExperimentConfig base;
  std::vector<std::string> apps;
  std::vector<std::string> policies;
  std::vector<double> slas;
  std::vector<double> durations;
  std::vector<double> init_failure_probs;
  std::vector<double> straggler_probs;
  std::vector<double> crash_rates;
  std::vector<bool> use_lstms;
  std::vector<std::uint64_t> seeds;
  std::vector<int> lanes;

  std::size_t cell_count() const;
  std::vector<ExperimentConfig> expand() const;

  json::Value to_json() const;
  static ExperimentGrid from_json(const json::Value& v);
  static ExperimentGrid load(const std::string& path);
  void save(const std::string& path) const;
};

/// Resolve the config's app string: a preset name or an app-manifest file.
/// Throws std::runtime_error for an unknown app.
apps::App resolve_app(const ExperimentConfig& config);

/// Materialize the cell's arrival process per its TraceSpec (deterministic
/// in the spec and the app name). Throws for an unknown kind / missing file.
workload::Trace build_trace(const ExperimentConfig& config, const apps::App& app);

}  // namespace smiless::exp
