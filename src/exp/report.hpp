#pragma once

/// Self-contained HTML serving report (`--report-out`). One file, no network
/// fetches: the page inlines its CSS, its chart-rendering JS and the data
/// payload (a JSON blob in a <script type="application/json"> island), so it
/// opens from file:// on an air-gapped box. The payload carries, per cell,
/// the run summary, the fixed-cadence obs::TimeSeries (SLO attainment, p99,
/// cold starts, instance states, queue depth, utilization, cost rate) and
/// the runtime self-profiler breakdown; the JS renders SVG line charts and
/// wall-time tables from it client-side.
///
/// Everything except the profiler section is a pure function of the cell
/// list — byte-stable across thread counts. The profiler section is
/// wall-clock data by definition and is why a report is never a golden.

#include <string>
#include <vector>

#include "common/json.hpp"
#include "exp/runner.hpp"

namespace smiless::exp {

/// The data island for a set of executed cells: {"title", "cells": [{cell
/// header, "summary", optional "series", optional "profile"}]} in cell
/// order. Exposed separately so tests can validate structure without
/// parsing HTML.
json::Value report_payload(const std::vector<CellResult>& cells, const std::string& title);

/// Render any report payload (shape above) into a complete standalone HTML
/// document. Generic over the payload so bench_throughput can emit a
/// profile-only report through the same template.
std::string render_report(const json::Value& payload);

/// report_payload + render_report + write to `path`. Throws on I/O failure.
void write_report(const std::vector<CellResult>& cells, const std::string& path);

}  // namespace smiless::exp
