#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "exp/runner.hpp"

namespace smiless::exp {

/// Mean with a 95% confidence half-width (normal approximation,
/// 1.96 * s / sqrt(n); 0 when fewer than two replicates).
struct Stat {
  double mean = 0.0;
  double ci95 = 0.0;
};

/// One group of cells (identical configs up to seed), reduced. Sums are
/// over replicates in cell order; percentiles pool every completed
/// request's E2E latency across the group's replicates.
struct Aggregate {
  std::string label;   ///< shared grid label ("" for a single ungridded cell)
  std::string policy;  ///< resolved display name from the run
  std::string app;     ///< resolved application name
  double sla = 0.0;
  int replicates = 0;

  Stat cost;
  Stat violation_ratio;
  Stat goodput;
  double e2e_p50 = 0.0;
  double e2e_p99 = 0.0;

  long submitted = 0;
  long completed = 0;
  long failed = 0;
  long initializations = 0;
  long retries = 0;
  long evictions = 0;
  long timeouts = 0;

  /// Total cost across replicates (sum, not mean) — what the Fig. 8/10
  /// tables report.
  double cost_total = 0.0;
};

/// Reduce cells into aggregates, grouped by ExperimentConfig::group_key in
/// first-seen cell order. Deterministic: every sum/percentile is computed
/// in cell-index order.
std::vector<Aggregate> aggregate(const std::vector<CellResult>& cells);

/// Options for the JSON emitter.
struct EmitOptions {
  bool include_cells = true;  ///< per-cell rows next to the aggregates
  int indent = 2;
};

/// Render a sweep's outcome as a JSON document. Byte-stable: two runs of
/// the same grid — at any thread count — dump identical bytes.
json::Value summary_json(const std::vector<CellResult>& cells,
                         const std::vector<Aggregate>& aggregates,
                         const EmitOptions& options = {});

/// One CSV row per aggregate (header included).
std::string summary_csv(const std::vector<Aggregate>& aggregates);

/// Find the aggregate for a (policy, app) pair; nullptr when absent.
/// Helper for bench tables that print a fixed policy x app matrix.
const Aggregate* find_aggregate(const std::vector<Aggregate>& aggregates,
                                const std::string& policy, const std::string& app);

}  // namespace smiless::exp
