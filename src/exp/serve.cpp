#include "exp/serve.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/stream_sink.hpp"
#include "obs/telemetry.hpp"
#include "rt/driver.hpp"
#include "rt/wall_clock.hpp"

namespace smiless::exp {

ServeReport serve(const ExperimentConfig& config, const baselines::ProfileStore& store,
                  std::shared_ptr<ThreadPool> policy_pool, const ServeOptions& options) {
  if (config.lanes != 1)
    throw std::runtime_error("serve drives the monolithic engine; set lanes = 1");

  // Materialize the cell exactly as Runner::run_cell does — same
  // construction order, so the trajectory only depends on the config.
  const apps::App app = resolve_app(config);
  const workload::Trace trace = build_trace(config, app);
  std::shared_ptr<obs::Telemetry> telemetry;
  if (config.obs.collect() || options.stream != nullptr)
    telemetry = std::make_shared<obs::Telemetry>();
  std::shared_ptr<prof::Profiler> profile;
  if (config.obs.profile()) profile = std::make_shared<prof::Profiler>();

  std::optional<obs::StreamSink> sink;
  if (options.stream != nullptr) sink.emplace(options.stream).attach(telemetry->bus());

  std::shared_ptr<serverless::Policy> policy;
  if (config.policy_override) {
    const CellContext ctx{config, app, trace, store, policy_pool, telemetry.get()};
    policy = config.policy_override(ctx);
  } else {
    const auto kind = baselines::parse_policy_kind(config.policy);
    if (!kind) throw std::runtime_error("unknown policy '" + config.policy + "'");
    baselines::PolicySettings settings;
    settings.use_lstm = config.use_lstm;
    settings.pool = std::move(policy_pool);
    settings.oracle_trace = &trace;  // only OPT reads it
    settings.audit = telemetry != nullptr ? &telemetry->audit() : nullptr;
    policy = baselines::make_policy(*kind, app, store, settings);
  }

  rt::WallClock clock(options.speedup);
  rt::RealTimeDriver driver(&clock);

  baselines::ExperimentOptions eopt;
  eopt.seed = config.seed;
  eopt.drain_slack = config.drain_slack;
  eopt.lanes = 1;
  eopt.platform = config.platform;
  eopt.faults = config.faults;
  eopt.telemetry = telemetry.get();
  eopt.profiler = profile.get();
  eopt.internal_stats = config.obs.internal_stats;
  if (!config.obs.series_out.empty() || !config.obs.report_out.empty())
    eopt.series_cadence = config.obs.series_cadence;
  eopt.driver = &driver;

  ServeReport report;
  report.cell.config = config;
  report.cell.telemetry = telemetry;
  report.cell.profile = profile;
  {
    prof::ScopeTimer cell_scope(profile.get(), prof::Site::CellRun);
    report.cell.result = baselines::run_experiment(app, trace, std::move(policy), eopt);
  }
  report.speedup = options.speedup;
  report.wall_seconds = clock.wall_elapsed_seconds();
  report.cell.wall_seconds = report.wall_seconds;
  report.max_lag_seconds = clock.max_lag_seconds();
  report.batches = driver.stats().batches;
  report.injected = driver.stats().injections;
  report.stream_lines = sink.has_value() ? sink->lines() : 0;
  report.interrupted = driver.stats().interrupted;
  return report;
}

}  // namespace smiless::exp
