#include "exp/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "apps/catalog.hpp"
#include "apps/serialize.hpp"
#include "common/table.hpp"
#include "faults/fault_io.hpp"
#include "serverless/options_io.hpp"
#include "workload/trace_io.hpp"

namespace smiless::exp {

json::Value TraceSpec::to_json() const {
  json::Value v = json::Value::object();
  v["kind"] = kind;
  v["duration"] = duration;
  v["seed"] = static_cast<long long>(seed);
  v["interval"] = interval;
  v["jitter"] = jitter;
  v["quiet_rate"] = quiet_rate;
  v["peak_rate"] = peak_rate;
  v["file"] = file;
  return v;
}

TraceSpec TraceSpec::from_json(const json::Value& v) {
  TraceSpec t;
  t.kind = v.get("kind", t.kind);
  t.duration = v.get("duration", t.duration);
  t.seed = static_cast<std::uint64_t>(v.get("seed", static_cast<long long>(t.seed)));
  t.interval = v.get("interval", t.interval);
  t.jitter = v.get("jitter", t.jitter);
  t.quiet_rate = v.get("quiet_rate", t.quiet_rate);
  t.peak_rate = v.get("peak_rate", t.peak_rate);
  t.file = v.get("file", t.file);
  return t;
}

json::Value ObservabilityOptions::to_json() const {
  json::Value v = json::Value::object();
  v["trace_out"] = trace_out;
  v["metrics_out"] = metrics_out;
  v["audit_out"] = audit_out;
  v["windows_out"] = windows_out;
  v["series_out"] = series_out;
  v["report_out"] = report_out;
  v["profile_out"] = profile_out;
  v["series_cadence"] = series_cadence;
  v["internal_stats"] = internal_stats;
  return v;
}

ObservabilityOptions ObservabilityOptions::from_json(const json::Value& v) {
  ObservabilityOptions o;
  o.trace_out = v.get("trace_out", o.trace_out);
  o.metrics_out = v.get("metrics_out", o.metrics_out);
  o.audit_out = v.get("audit_out", o.audit_out);
  o.windows_out = v.get("windows_out", o.windows_out);
  o.series_out = v.get("series_out", o.series_out);
  o.report_out = v.get("report_out", o.report_out);
  o.profile_out = v.get("profile_out", o.profile_out);
  o.series_cadence = v.get("series_cadence", o.series_cadence);
  o.internal_stats = v.get("internal_stats", o.internal_stats);
  return o;
}

std::string ExperimentConfig::display_name() const {
  if (!label.empty()) return label;
  return policy + "/" + app;
}

json::Value ExperimentConfig::to_json() const {
  json::Value v = json::Value::object();
  v["label"] = label;
  v["app"] = app;
  v["policy"] = policy;
  v["sla"] = sla;
  v["use_lstm"] = use_lstm;
  v["seed"] = static_cast<long long>(seed);
  v["profile_seed"] = static_cast<long long>(profile_seed);
  v["drain_slack"] = drain_slack;
  v["lanes"] = static_cast<long long>(lanes);
  v["trace"] = trace.to_json();
  v["platform"] = serverless::to_json(platform);
  v["faults"] = faults::to_json(faults);
  v["observability"] = obs.to_json();
  return v;
}

ExperimentConfig ExperimentConfig::from_json(const json::Value& v) {
  ExperimentConfig c;
  c.label = v.get("label", c.label);
  c.app = v.get("app", c.app);
  c.policy = v.get("policy", c.policy);
  c.sla = v.get("sla", c.sla);
  c.use_lstm = v.get("use_lstm", c.use_lstm);
  c.seed = static_cast<std::uint64_t>(v.get("seed", static_cast<long long>(c.seed)));
  c.profile_seed =
      static_cast<std::uint64_t>(v.get("profile_seed", static_cast<long long>(c.profile_seed)));
  c.drain_slack = v.get("drain_slack", c.drain_slack);
  c.lanes = static_cast<int>(v.get("lanes", static_cast<long long>(c.lanes)));
  if (const json::Value* t = v.find("trace")) c.trace = TraceSpec::from_json(*t);
  if (const json::Value* p = v.find("platform"))
    c.platform = serverless::platform_options_from_json(*p);
  if (const json::Value* f = v.find("faults")) c.faults = faults::fault_spec_from_json(*f);
  if (const json::Value* o = v.find("observability"))
    c.obs = ObservabilityOptions::from_json(*o);
  return c;
}

std::string ExperimentConfig::group_key() const {
  ExperimentConfig copy = *this;
  copy.seed = 0;
  copy.trace.seed = 0;
  copy.label.clear();
  copy.obs = {};  // artifact destinations never change what a cell computes
  return copy.to_json().dump();
}

std::size_t ExperimentGrid::cell_count() const {
  const auto n = [](std::size_t axis) { return axis == 0 ? std::size_t{1} : axis; };
  return n(apps.size()) * n(policies.size()) * n(slas.size()) * n(durations.size()) *
         n(init_failure_probs.size()) * n(straggler_probs.size()) * n(crash_rates.size()) *
         n(use_lstms.size()) * n(seeds.size()) * n(lanes.size());
}

namespace {

/// Append "name=value" to a grid-cell label when the axis is active.
void tag(std::string& label, bool active, const std::string& part) {
  if (!active) return;
  if (!label.empty()) label += '/';
  label += part;
}

}  // namespace

std::vector<ExperimentConfig> ExperimentGrid::expand() const {
  // Each axis falls back to a one-element list holding the base value so a
  // single nested loop covers every combination.
  const auto apps_ = apps.empty() ? std::vector<std::string>{base.app} : apps;
  const auto policies_ = policies.empty() ? std::vector<std::string>{base.policy} : policies;
  const auto slas_ = slas.empty() ? std::vector<double>{base.sla} : slas;
  const auto durations_ =
      durations.empty() ? std::vector<double>{base.trace.duration} : durations;
  const auto init_ps_ = init_failure_probs.empty()
                            ? std::vector<double>{base.faults.init_failure_prob}
                            : init_failure_probs;
  const auto straggler_ps_ = straggler_probs.empty()
                                 ? std::vector<double>{base.faults.straggler_prob}
                                 : straggler_probs;
  const auto crash_rates_ =
      crash_rates.empty() ? std::vector<double>{base.faults.crash_rate} : crash_rates;
  const auto lstms_ = use_lstms.empty() ? std::vector<bool>{base.use_lstm} : use_lstms;
  const auto seeds_ = seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;
  const auto lanes_ = lanes.empty() ? std::vector<int>{base.lanes} : lanes;

  std::vector<ExperimentConfig> out;
  out.reserve(cell_count());
  for (const auto& app : apps_)
    for (const auto& policy : policies_)
      for (const double sla : slas_)
        for (const double duration : durations_)
          for (const double init_p : init_ps_)
            for (const double straggler_p : straggler_ps_)
              for (const double crash_rate : crash_rates_)
                for (const bool lstm : lstms_)
                  for (const std::uint64_t seed : seeds_)
                    for (const int lane_count : lanes_) {
                      ExperimentConfig c = base;
                      c.app = app;
                      c.policy = policy;
                      c.sla = sla;
                      c.trace.duration = duration;
                      c.faults.init_failure_prob = init_p;
                      c.faults.straggler_prob = straggler_p;
                      c.faults.crash_rate = crash_rate;
                      c.use_lstm = lstm;
                      // A seed replicate re-rolls the whole stochastic world:
                      // the arrival process and the platform/fault streams.
                      c.seed = seed;
                      if (!seeds.empty()) c.trace.seed = seed;
                      c.lanes = lane_count;
                      // The label names every active non-seed axis; seed
                      // replicates of one group share it (see group_key).
                      std::string label;
                      tag(label, !apps.empty(), "app=" + app);
                      tag(label, !policies.empty(), "policy=" + policy);
                      tag(label, !slas.empty(), "sla=" + TextTable::num(sla, 2));
                      tag(label, !durations.empty(),
                          "duration=" + TextTable::num(duration, 0));
                      tag(label, !init_failure_probs.empty(),
                          "init_p=" + TextTable::num(init_p, 3));
                      tag(label, !straggler_probs.empty(),
                          "straggler_p=" + TextTable::num(straggler_p, 3));
                      tag(label, !crash_rates.empty(),
                          "crash_rate=" + TextTable::num(crash_rate, 4));
                      tag(label, !use_lstms.empty(),
                          std::string("lstm=") + (lstm ? "on" : "off"));
                      tag(label, !lanes.empty(), "lanes=" + std::to_string(lane_count));
                      c.label = label;
                      out.push_back(std::move(c));
                    }
  return out;
}

json::Value ExperimentGrid::to_json() const {
  json::Value v = json::Value::object();
  v["base"] = base.to_json();
  json::Value axes = json::Value::object();
  const auto strings = [](const std::vector<std::string>& xs) {
    json::Value a = json::Value::array();
    for (const auto& x : xs) a.push_back(x);
    return a;
  };
  const auto doubles = [](const std::vector<double>& xs) {
    json::Value a = json::Value::array();
    for (const double x : xs) a.push_back(x);
    return a;
  };
  if (!apps.empty()) axes["apps"] = strings(apps);
  if (!policies.empty()) axes["policies"] = strings(policies);
  if (!slas.empty()) axes["slas"] = doubles(slas);
  if (!durations.empty()) axes["durations"] = doubles(durations);
  if (!init_failure_probs.empty()) axes["init_failure_probs"] = doubles(init_failure_probs);
  if (!straggler_probs.empty()) axes["straggler_probs"] = doubles(straggler_probs);
  if (!crash_rates.empty()) axes["crash_rates"] = doubles(crash_rates);
  if (!use_lstms.empty()) {
    json::Value a = json::Value::array();
    for (const bool x : use_lstms) a.push_back(x);
    axes["use_lstms"] = std::move(a);
  }
  if (!seeds.empty()) {
    json::Value a = json::Value::array();
    for (const std::uint64_t x : seeds) a.push_back(static_cast<long long>(x));
    axes["seeds"] = std::move(a);
  }
  if (!lanes.empty()) {
    json::Value a = json::Value::array();
    for (const int x : lanes) a.push_back(static_cast<long long>(x));
    axes["lanes"] = std::move(a);
  }
  v["axes"] = std::move(axes);
  return v;
}

ExperimentGrid ExperimentGrid::from_json(const json::Value& v) {
  ExperimentGrid g;
  if (const json::Value* b = v.find("base")) g.base = ExperimentConfig::from_json(*b);
  const json::Value* axes = v.find("axes");
  if (axes == nullptr) return g;
  const auto strings = [&](const char* key, std::vector<std::string>& out) {
    if (const json::Value* a = axes->find(key))
      for (const auto& x : a->items()) out.push_back(x.as_string());
  };
  const auto doubles = [&](const char* key, std::vector<double>& out) {
    if (const json::Value* a = axes->find(key))
      for (const auto& x : a->items()) out.push_back(x.as_double());
  };
  strings("apps", g.apps);
  strings("policies", g.policies);
  doubles("slas", g.slas);
  doubles("durations", g.durations);
  doubles("init_failure_probs", g.init_failure_probs);
  doubles("straggler_probs", g.straggler_probs);
  doubles("crash_rates", g.crash_rates);
  if (const json::Value* a = axes->find("use_lstms"))
    for (const auto& x : a->items()) g.use_lstms.push_back(x.as_bool());
  if (const json::Value* a = axes->find("seeds"))
    for (const auto& x : a->items())
      g.seeds.push_back(static_cast<std::uint64_t>(x.as_int()));
  if (const json::Value* a = axes->find("lanes"))
    for (const auto& x : a->items()) g.lanes.push_back(static_cast<int>(x.as_int()));
  return g;
}

ExperimentGrid ExperimentGrid::load(const std::string& path) {
  return from_json(json::load_file(path));
}

void ExperimentGrid::save(const std::string& path) const { json::save_file(to_json(), path); }

apps::App resolve_app(const ExperimentConfig& config) {
  if (config.app == "wl1") return apps::make_amber_alert(config.sla);
  if (config.app == "wl2") return apps::make_image_query(config.sla);
  if (config.app == "wl3") return apps::make_voice_assistant(config.sla);
  if (config.app == "ipa") return apps::make_ipa(config.sla);
  std::ifstream is(config.app);
  if (!is.good())
    throw std::runtime_error("unknown app '" + config.app +
                             "' (not a preset or readable manifest)");
  std::ostringstream buf;
  buf << is.rdbuf();
  apps::App app = apps::parse_app(buf.str());
  app.sla = config.sla;
  return app;
}

workload::Trace build_trace(const ExperimentConfig& config, const apps::App& app) {
  const TraceSpec& spec = config.trace;
  Rng rng(spec.seed ^ std::hash<std::string>{}(app.name));
  if (spec.kind == "preset") {
    const auto options = workload::preset_for_workload(app.name, spec.duration);
    return workload::generate_trace(options, rng);
  }
  if (spec.kind == "regular")
    return workload::generate_regular_trace(spec.interval, spec.jitter, spec.duration, rng);
  if (spec.kind == "burst")
    return workload::generate_burst_window(spec.quiet_rate, spec.peak_rate, rng,
                                           spec.duration);
  if (spec.kind == "csv") {
    if (spec.file.empty()) throw std::runtime_error("trace kind 'csv' needs trace.file");
    return workload::load_csv_file(spec.file);
  }
  throw std::runtime_error("unknown trace kind '" + spec.kind + "'");
}

}  // namespace smiless::exp
