#include "exp/artifacts.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/report.hpp"

namespace smiless::exp {

namespace {

/// Per-cell process-id range in the combined trace. 64 leaves room for the
/// cluster process plus 63 apps per cell, far beyond any deployment here.
constexpr int kPidsPerCell = 64;

std::string cell_label(const CellResult& cell) {
  return cell.config.display_name() + " seed=" + std::to_string(cell.config.seed);
}

json::Value cell_header(const CellResult& cell) {
  json::Value v = json::Value::object();
  v["label"] = cell.config.display_name();
  v["policy"] = cell.config.policy;
  v["app"] = cell.config.app;
  v["seed"] = static_cast<long long>(cell.config.seed);
  return v;
}

}  // namespace

json::Value combined_trace(const std::vector<CellResult>& cells) {
  json::Value out = json::Value::array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].telemetry == nullptr) continue;
    json::Value part = cells[i].telemetry->perfetto_json(static_cast<int>(i) * kPidsPerCell,
                                                         cell_label(cells[i]));
    for (auto& e : part.items()) out.push_back(std::move(e));
  }
  return out;
}

json::Value combined_metrics(const std::vector<CellResult>& cells) {
  json::Value v = json::Value::object();
  json::Value rows = json::Value::array();
  for (const auto& cell : cells) {
    if (cell.telemetry == nullptr) continue;
    json::Value row = cell_header(cell);
    row["metrics"] = cell.telemetry->metrics_json();
    rows.push_back(std::move(row));
  }
  v["cells"] = std::move(rows);
  return v;
}

json::Value combined_audit(const std::vector<CellResult>& cells) {
  json::Value v = json::Value::object();
  json::Value rows = json::Value::array();
  for (const auto& cell : cells) {
    if (cell.telemetry == nullptr) continue;
    json::Value row = cell_header(cell);
    row["decisions"] = cell.telemetry->audit_json()["decisions"];
    rows.push_back(std::move(row));
  }
  v["cells"] = std::move(rows);
  return v;
}

std::string windows_csv(const std::vector<CellResult>& cells) {
  std::ostringstream os;
  os << "cell,label,policy,app,seed,window_start,arrivals,instances_total,"
        "instances_cpu,instances_gpu\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    for (const auto& w : cell.result.windows) {
      os << i << ',' << cell.config.display_name() << ',' << cell.config.policy << ','
         << cell.config.app << ',' << cell.config.seed << ','
         << json::Value::format_double(w.window_start) << ',' << w.arrivals << ','
         << w.instances_total << ',' << w.instances_cpu << ',' << w.instances_gpu << '\n';
    }
  }
  return os.str();
}

json::Value combined_series(const std::vector<CellResult>& cells) {
  json::Value v = json::Value::object();
  json::Value rows = json::Value::array();
  for (const auto& cell : cells) {
    if (cell.telemetry == nullptr || !cell.telemetry->series_enabled()) continue;
    json::Value row = cell_header(cell);
    row["series"] = cell.telemetry->series_json();
    rows.push_back(std::move(row));
  }
  v["cells"] = std::move(rows);
  return v;
}

json::Value combined_profile(const std::vector<CellResult>& cells) {
  json::Value v = json::Value::object();
  json::Value rows = json::Value::array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].profile == nullptr) continue;
    json::Value row = cell_header(cells[i]);
    row["profile"] = cells[i].profile->to_json();
    row["perfetto"] = cells[i].profile->perfetto_events(static_cast<int>(i) * kPidsPerCell);
    rows.push_back(std::move(row));
  }
  v["cells"] = std::move(rows);
  return v;
}

void write_artifacts(const std::vector<CellResult>& cells, const ObservabilityOptions& obs) {
  if (!obs.trace_out.empty()) json::save_file(combined_trace(cells), obs.trace_out);
  if (!obs.metrics_out.empty()) json::save_file(combined_metrics(cells), obs.metrics_out);
  if (!obs.audit_out.empty()) json::save_file(combined_audit(cells), obs.audit_out);
  if (!obs.windows_out.empty()) {
    std::ofstream os(obs.windows_out);
    if (!os.good())
      throw std::runtime_error("cannot write windows CSV to " + obs.windows_out);
    os << windows_csv(cells);
  }
  if (!obs.series_out.empty()) json::save_file(combined_series(cells), obs.series_out);
  if (!obs.profile_out.empty()) json::save_file(combined_profile(cells), obs.profile_out);
  if (!obs.report_out.empty()) write_report(cells, obs.report_out);
}

}  // namespace smiless::exp
