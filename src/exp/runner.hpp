#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "baselines/experiment.hpp"
#include "exp/config.hpp"
#include "obs/telemetry.hpp"
#include "prof/profiler.hpp"

namespace smiless::exp {

/// One executed cell: its config, the simulator's books, and how long the
/// cell took on the wall. `wall_seconds` is diagnostic only — no emitter
/// includes it in comparable output, so a sweep's JSON/CSV is a pure
/// function of the grid regardless of thread count or machine load.
struct CellResult {
  ExperimentConfig config;
  baselines::RunResult result;
  double wall_seconds = 0.0;
  /// Engaged iff config.obs asked for collection; holds the cell's event
  /// stream, metric registry and audit log for the artifact writers.
  std::shared_ptr<obs::Telemetry> telemetry;
  /// Engaged iff profiling was requested (config.obs.profile() or
  /// RunnerOptions::profiler); the cell's wall-clock breakdown + sampled
  /// counters. Diagnostic only — never feeds comparable artifacts.
  std::shared_ptr<prof::Profiler> profile;
};

struct RunnerOptions {
  /// Sweep-level parallelism: how many cells run concurrently. 0 means
  /// hardware_concurrency. Results are bit-identical for every value.
  std::size_t threads = 0;

  /// Worker count of the *inner* pool handed to every policy for its
  /// solver fan-out (Strategy Optimizer / Auto-scaler). This pool is
  /// distinct from the sweep pool — a cell blocking on policy futures can
  /// never starve another cell's sub-tasks, so no nesting deadlock exists.
  /// 0 means hardware_concurrency.
  std::size_t policy_threads = 0;

  /// Threads stepping a sharded cell's lanes between window barriers
  /// (serverless::ShardOptions::lane_threads): 0 = hardware concurrency,
  /// 1 = serial. A runner option, not a config field, because it affects
  /// wall-clock only — results are bit-identical for every value.
  int lane_threads = 0;

  /// Print one line per finished cell to stderr.
  bool progress = false;

  /// Optional sweep-wide self-profiler sink (non-owning; must outlive the
  /// run). Non-null forces profiling on for every cell even when its
  /// config.obs doesn't request it; cell profiles are merged into it in
  /// cell order after the sweep. Zero overhead when null and no cell opts
  /// in. Wall-clock data only — the trajectory never moves.
  prof::Profiler* profiler = nullptr;
};

/// Executes a list of experiment cells, concurrently, with a determinism
/// contract: the returned vector (and everything derived from it by ordered
/// reduction) is bit-identical for any `threads` value. Each cell is a pure
/// function of its ExperimentConfig — it builds its own app, trace, engine
/// and RNG (forked from the cell's own seeds), and shares only immutable
/// state (the profile store) and the inner thread pool (whose parallel_map
/// collects in index order) with its siblings.
class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  /// Run every cell; results arrive in input order.
  std::vector<CellResult> run(const std::vector<ExperimentConfig>& cells);

  /// Convenience: expand + run.
  std::vector<CellResult> run(const ExperimentGrid& grid) { return run(grid.expand()); }

  /// Fitted profiles for one profiler seed (built lazily, cached, shared by
  /// every cell; safe to call before run() to front-load the work).
  const baselines::ProfileStore& profiles(std::uint64_t profile_seed);

  /// The inner pool given to every policy; callers running cells outside
  /// the sweep (e.g. a co-located deployment) may share it.
  std::shared_ptr<ThreadPool> policy_pool() const { return policy_pool_; }

  /// Execute a single cell against a given profile store. Exposed so tests
  /// and the CLI single-run path go through exactly the sweep code path.
  /// `force_profile` attaches a self-profiler even when config.obs doesn't
  /// ask for one (the sweep sets it when RunnerOptions::profiler is set).
  static CellResult run_cell(const ExperimentConfig& config,
                             const baselines::ProfileStore& store,
                             std::shared_ptr<ThreadPool> policy_pool,
                             int lane_threads = 0, bool force_profile = false);

 private:
  RunnerOptions options_;
  std::shared_ptr<ThreadPool> policy_pool_;
  std::map<std::uint64_t, std::unique_ptr<baselines::ProfileStore>> stores_;
};

}  // namespace smiless::exp
