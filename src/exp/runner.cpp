#include "exp/runner.hpp"

#include <chrono>
#include <iostream>
#include <mutex>
#include <set>

#include "common/table.hpp"
#include "profiler/offline_profiler.hpp"

namespace smiless::exp {

Runner::Runner(RunnerOptions options) : options_(options) {
  policy_pool_ = std::make_shared<ThreadPool>(options_.policy_threads);
}

const baselines::ProfileStore& Runner::profiles(std::uint64_t profile_seed) {
  auto it = stores_.find(profile_seed);
  if (it == stores_.end()) {
    Rng rng(profile_seed);
    it = stores_
             .emplace(profile_seed, std::make_unique<baselines::ProfileStore>(
                                        profiler::OfflineProfiler{}, rng))
             .first;
  }
  return *it->second;
}

CellResult Runner::run_cell(const ExperimentConfig& config,
                            const baselines::ProfileStore& store,
                            std::shared_ptr<ThreadPool> policy_pool, int lane_threads,
                            bool force_profile) {
  // detlint:allow(wall-clock) cell wall-time goes to progress stderr only, never into artifacts
  const auto t0 = std::chrono::steady_clock::now();

  const apps::App app = resolve_app(config);
  const workload::Trace trace = build_trace(config, app);
  std::shared_ptr<obs::Telemetry> telemetry;
  if (config.obs.collect()) telemetry = std::make_shared<obs::Telemetry>();
  std::shared_ptr<prof::Profiler> profile;
  if (force_profile || config.obs.profile()) profile = std::make_shared<prof::Profiler>();

  std::shared_ptr<serverless::Policy> policy;
  if (config.policy_override) {
    const CellContext ctx{config, app, trace, store, policy_pool, telemetry.get()};
    policy = config.policy_override(ctx);
  } else {
    const auto kind = baselines::parse_policy_kind(config.policy);
    if (!kind) throw std::runtime_error("unknown policy '" + config.policy + "'");
    baselines::PolicySettings settings;
    settings.use_lstm = config.use_lstm;
    settings.pool = policy_pool;
    settings.oracle_trace = &trace;  // only OPT reads it
    settings.audit = telemetry != nullptr ? &telemetry->audit() : nullptr;
    policy = baselines::make_policy(*kind, app, store, settings);
  }

  baselines::ExperimentOptions options;
  options.seed = config.seed;
  options.drain_slack = config.drain_slack;
  options.lanes = config.lanes;
  options.lane_threads = lane_threads;
  options.platform = config.platform;
  options.faults = config.faults;
  options.telemetry = telemetry.get();
  options.profiler = profile.get();
  options.internal_stats = config.obs.internal_stats;
  if (!config.obs.series_out.empty() || !config.obs.report_out.empty())
    options.series_cadence = config.obs.series_cadence;

  CellResult out;
  out.config = config;
  out.telemetry = telemetry;
  out.profile = profile;
  {
    // Root scope: brackets the whole cell so site exclusive times sum to it.
    prof::ScopeTimer cell_scope(profile.get(), prof::Site::CellRun);
    out.result = baselines::run_experiment(app, trace, std::move(policy), options);
  }
  out.wall_seconds =  // detlint:allow(wall-clock) same quarantine: progress display only
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

std::vector<CellResult> Runner::run(const std::vector<ExperimentConfig>& cells) {
  // Front-load every distinct profile store serially: cells then only read
  // immutable fitted models, whatever order they execute in.
  std::set<std::uint64_t> profile_seeds;
  for (const auto& c : cells) profile_seeds.insert(c.profile_seed);
  for (const std::uint64_t s : profile_seeds) profiles(s);

  std::vector<CellResult> out(cells.size());
  std::mutex progress_mu;
  std::size_t done = 0;
  const auto one = [&](std::size_t i) {
    out[i] = run_cell(cells[i], profiles(cells[i].profile_seed), policy_pool_,
                      options_.lane_threads, options_.profiler != nullptr);
    if (options_.progress) {
      std::lock_guard lock(progress_mu);
      ++done;
      std::cerr << "[exp] " << done << "/" << cells.size() << " "
                << cells[i].display_name() << " seed=" << cells[i].seed << " ("
                << TextTable::num(out[i].wall_seconds, 2) << " s)\n";
    }
  };

  if (options_.threads == 1 || cells.size() <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) one(i);
  } else {
    ThreadPool sweep_pool(options_.threads);
    parallel_for(sweep_pool, cells.size(), one);
  }
  if (options_.profiler != nullptr) {
    // Merge in input order — the aggregate breakdown is then independent of
    // which thread finished which cell first.
    for (const auto& cell : out)
      if (cell.profile != nullptr) options_.profiler->merge(*cell.profile);
  }
  return out;
}

}  // namespace smiless::exp
