#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "exp/runner.hpp"

namespace smiless::exp {

/// Combined Perfetto trace for a set of executed cells: each cell's events
/// render into their own pid range (pid_base = cell index * 64) labelled
/// "display_name seed=N", concatenated in cell order into one trace-event
/// array. Cells without telemetry contribute nothing.
json::Value combined_trace(const std::vector<CellResult>& cells);

/// {"cells": [{"label", "policy", "app", "seed", "metrics": {...}}, ...]}
/// in cell order.
json::Value combined_metrics(const std::vector<CellResult>& cells);

/// {"cells": [{"label", "policy", "app", "seed", "decisions": [...]}, ...]}
/// in cell order.
json::Value combined_audit(const std::vector<CellResult>& cells);

/// Per-window time series of every cell as CSV (header:
/// cell,label,policy,app,seed,window_start,arrivals,instances_total,
/// instances_cpu,instances_gpu). Built from RunResult::windows, so it needs
/// no telemetry attached.
std::string windows_csv(const std::vector<CellResult>& cells);

/// {"cells": [{"label", ..., "series": {...obs::TimeSeries...}}, ...]} in
/// cell order. Cells without an enabled series contribute nothing.
/// Byte-stable across thread/lane-thread counts (DESIGN.md §15).
json::Value combined_series(const std::vector<CellResult>& cells);

/// {"cells": [{"label", ..., "profile": {...prof::Profiler...}},
///  "perfetto": [...counter/slice events...]}, ...]} in cell order.
/// Wall-clock data — written only when --profile-out asks for it, never
/// compared against goldens.
json::Value combined_profile(const std::vector<CellResult>& cells);

/// Write whichever artifacts `obs` names to disk. All outputs except the
/// profile (wall-clock by definition) are pure functions of the cell list,
/// which the runner returns in input order — byte-stable across thread
/// counts.
void write_artifacts(const std::vector<CellResult>& cells, const ObservabilityOptions& obs);

}  // namespace smiless::exp
