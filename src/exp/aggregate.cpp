#include "exp/aggregate.hpp"

#include <cmath>
#include <map>
#include <sstream>

#include "math/stats.hpp"

namespace smiless::exp {

namespace {

Stat stat_of(const std::vector<double>& xs) {
  Stat s;
  s.mean = math::mean(xs);
  if (xs.size() >= 2)
    s.ci95 = 1.96 * math::stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
  return s;
}

}  // namespace

std::vector<Aggregate> aggregate(const std::vector<CellResult>& cells) {
  struct Group {
    Aggregate agg;
    std::vector<double> costs, violations, goodputs, e2e;
  };
  std::vector<Group> groups;
  // Output order is first-appearance order (groups vector); the index only
  // does keyed lookup, but std::map keeps even accidental iteration
  // deterministic — this feeds the serialized aggregate JSON/CSV directly.
  std::map<std::string, std::size_t> index;

  for (const auto& cell : cells) {
    const std::string key = cell.config.group_key();
    auto [it, inserted] = index.emplace(key, groups.size());
    if (inserted) {
      groups.emplace_back();
      Aggregate& a = groups.back().agg;
      a.label = cell.config.label;
      a.policy = cell.result.policy;
      a.app = cell.result.app;
      a.sla = cell.config.sla;
    }
    Group& g = groups[it->second];
    const baselines::RunResult& r = cell.result;
    ++g.agg.replicates;
    g.agg.submitted += r.submitted;
    g.agg.completed += r.completed;
    g.agg.failed += r.failed;
    g.agg.initializations += r.initializations;
    g.agg.retries += r.retries;
    g.agg.evictions += r.evictions;
    g.agg.timeouts += r.timeouts;
    g.agg.cost_total += r.cost;
    g.costs.push_back(r.cost);
    g.violations.push_back(r.violation_ratio);
    g.goodputs.push_back(r.goodput());
    g.e2e.insert(g.e2e.end(), r.e2e.begin(), r.e2e.end());
  }

  std::vector<Aggregate> out;
  out.reserve(groups.size());
  for (auto& g : groups) {
    g.agg.cost = stat_of(g.costs);
    g.agg.violation_ratio = stat_of(g.violations);
    g.agg.goodput = stat_of(g.goodputs);
    if (!g.e2e.empty()) {
      g.agg.e2e_p50 = math::percentile(g.e2e, 50);
      g.agg.e2e_p99 = math::percentile(g.e2e, 99);
    }
    out.push_back(std::move(g.agg));
  }
  return out;
}

json::Value summary_json(const std::vector<CellResult>& cells,
                         const std::vector<Aggregate>& aggregates,
                         const EmitOptions& options) {
  json::Value doc = json::Value::object();
  doc["cells"] = static_cast<long long>(cells.size());
  doc["groups"] = static_cast<long long>(aggregates.size());

  json::Value aggs = json::Value::array();
  for (const auto& a : aggregates) {
    json::Value v = json::Value::object();
    v["label"] = a.label;
    v["policy"] = a.policy;
    v["app"] = a.app;
    v["sla"] = a.sla;
    v["replicates"] = a.replicates;
    json::Value cost = json::Value::object();
    cost["mean"] = a.cost.mean;
    cost["ci95"] = a.cost.ci95;
    cost["total"] = a.cost_total;
    v["cost"] = std::move(cost);
    json::Value viol = json::Value::object();
    viol["mean"] = a.violation_ratio.mean;
    viol["ci95"] = a.violation_ratio.ci95;
    v["violation_ratio"] = std::move(viol);
    json::Value good = json::Value::object();
    good["mean"] = a.goodput.mean;
    good["ci95"] = a.goodput.ci95;
    v["goodput"] = std::move(good);
    json::Value e2e = json::Value::object();
    e2e["p50"] = a.e2e_p50;
    e2e["p99"] = a.e2e_p99;
    v["e2e"] = std::move(e2e);
    json::Value counts = json::Value::object();
    counts["submitted"] = a.submitted;
    counts["completed"] = a.completed;
    counts["failed"] = a.failed;
    counts["initializations"] = a.initializations;
    counts["retries"] = a.retries;
    counts["evictions"] = a.evictions;
    counts["timeouts"] = a.timeouts;
    v["counts"] = std::move(counts);
    aggs.push_back(std::move(v));
  }
  doc["aggregates"] = std::move(aggs);

  if (options.include_cells) {
    json::Value rows = json::Value::array();
    for (const auto& cell : cells) {
      const baselines::RunResult& r = cell.result;
      json::Value v = json::Value::object();
      v["label"] = cell.config.label;
      v["policy"] = r.policy;
      v["app"] = r.app;
      v["sla"] = cell.config.sla;
      v["seed"] = static_cast<long long>(cell.config.seed);
      v["cost"] = r.cost;
      v["violation_ratio"] = r.violation_ratio;
      v["goodput"] = r.goodput();
      v["e2e_p50"] = math::tail_latency(r.e2e, 50);
      v["e2e_p99"] = math::tail_latency(r.e2e, 99);
      v["submitted"] = r.submitted;
      v["completed"] = r.completed;
      v["failed"] = r.failed;
      v["initializations"] = r.initializations;
      v["retries"] = r.retries;
      v["evictions"] = r.evictions;
      v["timeouts"] = r.timeouts;
      rows.push_back(std::move(v));
    }
    doc["cell_results"] = std::move(rows);
  }
  return doc;
}

std::string summary_csv(const std::vector<Aggregate>& aggregates) {
  std::ostringstream os;
  os << "label,policy,app,sla,replicates,cost_mean,cost_ci95,cost_total,"
        "violation_mean,violation_ci95,goodput_mean,e2e_p50,e2e_p99,"
        "submitted,completed,failed,initializations,retries,evictions,timeouts\n";
  const auto num = [](double v) {
    std::string s = json::Value::format_double(v);
    return s;
  };
  for (const auto& a : aggregates) {
    os << '"' << a.label << "\"," << '"' << a.policy << "\"," << '"' << a.app << "\","
       << num(a.sla) << ',' << a.replicates << ',' << num(a.cost.mean) << ','
       << num(a.cost.ci95) << ',' << num(a.cost_total) << ','
       << num(a.violation_ratio.mean) << ',' << num(a.violation_ratio.ci95) << ','
       << num(a.goodput.mean) << ',' << num(a.e2e_p50) << ',' << num(a.e2e_p99) << ','
       << a.submitted << ',' << a.completed << ',' << a.failed << ',' << a.initializations
       << ',' << a.retries << ',' << a.evictions << ',' << a.timeouts << '\n';
  }
  return os.str();
}

const Aggregate* find_aggregate(const std::vector<Aggregate>& aggregates,
                                const std::string& policy, const std::string& app) {
  for (const auto& a : aggregates)
    if (a.policy == policy && a.app == app) return &a;
  return nullptr;
}

}  // namespace smiless::exp
