#pragma once

/// Runtime self-profiler: where does *wall* time go when a cell runs?
///
/// The simulator's determinism contract bans wall-clock reads everywhere near
/// the trajectory, so this subsystem is the one sanctioned quarantine zone:
/// a single clock read lives in prof::now_ns() (profiler.cpp, detlint-allowed
/// with a reason) and everything else works on the opaque tick counts it
/// returns. Profiler output is wall-clock data by definition and therefore
/// NEVER flows into golden-compared artifacts — it is written only to the
/// explicitly requested `--profile-out` / `--report-out` destinations and the
/// `profile` section of BENCH_throughput.json.
///
/// Model: an RAII ScopeTimer pushes a frame per instrumented site
/// (sim::Engine::run_until, calendar ops, Gateway window ticks, dispatch,
/// pool lifecycle, the policy solver, sharded lane steps and the lane
/// barrier). Frames nest; on pop the child's wall time is charged to the
/// parent's "children" bucket, so for every site we report
///   inclusive_ns  - total wall time with the site anywhere on the stack,
///   exclusive_ns  - inclusive minus instrumented children,
/// and the exclusive times of all sites sum *exactly* to the root's
/// inclusive time whenever a root scope (Site::CellRun) brackets the run —
/// that is the ">= 90% of measured wall time" bench invariant, by
/// construction rather than by luck.
///
/// A Profiler is deliberately NOT thread-safe: each sharded lane owns a
/// private Profiler and the coordinator merges them after the barrier
/// (merge() keeps a per-lane breakdown). Everything is zero-overhead when
/// the `prof::Profiler*` hanging off PlatformOptions / RunnerOptions is
/// null: ScopeTimer degenerates to a single pointer test.
///
/// The profiler also surfaces the simulator's dark internal stats
/// (CalendarStats, Slab/Recycler occupancy, EngineStats) as *sampled
/// counters*: deterministic (sim_time, value) pairs recorded every 2^14
/// fired events, exported as Perfetto "C" counter tracks that line up with
/// the sim-time trace.

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"

namespace smiless::prof {

/// The one quarantined wall-clock read (monotonic, ns). Defined in
/// profiler.cpp next to its lint suppression and the reason for it.
std::uint64_t now_ns();

/// Instrumented scope catalog. Adding a site = one enum entry + one name.
enum class Site : int {
  CellRun = 0,     ///< root: deploy -> run -> finalize -> registry mirror
  EngineRun,       ///< sim::Engine::run_until dispatch loop
  EngineSchedule,  ///< calendar-queue insert (Engine::schedule_at)
  EngineCancel,    ///< calendar-queue cancel (Engine::cancel)
  GatewayWindow,   ///< Gateway::window_tick bookkeeping (minus the solver)
  PolicyWindow,    ///< Policy::on_window solver call inside the tick
  Dispatch,        ///< FunctionScheduler::dispatch (queues -> batches)
  PoolCreate,      ///< InstancePool::create_instance (cold-start issue)
  PoolBatchDone,   ///< InstancePool::on_batch_done (completion bookkeeping)
  LaneStep,        ///< ShardedPlatform: one lane's window step
  ShardBarrier,    ///< ShardedPlatform: coordinator barrier (slowest lane)
  Finalize,        ///< Platform/ShardedPlatform finalize + telemetry merge
  kCount
};

inline constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::kCount);

const char* site_name(Site s);

/// Sampled internal counters (deterministic sim-time series).
enum class Counter : int {
  EngineLive = 0,          ///< events pending in the queue
  EngineScheduled,         ///< EngineStats::scheduled (monotone)
  EngineFired,             ///< EngineStats::fired (monotone)
  EngineCancelled,         ///< EngineStats::cancelled (monotone)
  CalendarBuckets,         ///< CalendarStats::buckets (current year size)
  CalendarResizes,         ///< CalendarStats::resizes (monotone)
  CalendarDirectSearches,  ///< CalendarStats::direct_searches (monotone)
  SliceLive,               ///< batch-slice Recycler live objects
  SliceBlocks,             ///< batch-slice Recycler allocated blocks
  kCount
};

inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);

const char* counter_name(Counter c);

/// Per-site aggregate. POD so Snapshot stays trivially copyable (the bench
/// ships snapshots through a fork pipe).
struct SiteAgg {
  std::uint64_t count = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;
};

/// One sampled counter observation. `sim_t` is simulation seconds; `lane`
/// is the owning lane (-1 = monolithic / coordinator).
struct CounterSample {
  double sim_t = 0.0;
  std::int32_t counter = 0;
  std::int32_t lane = -1;
  double value = 0.0;
};

/// Trivially-copyable totals for cross-process transport (bench_throughput
/// measures in forked children and pipes results back as raw bytes).
struct Snapshot {
  std::array<SiteAgg, kSiteCount> sites{};
  /// Root wall time (Site::CellRun inclusive). 0 when no root scope ran.
  std::uint64_t root_ns = 0;
};
static_assert(std::is_trivially_copyable_v<Snapshot>);

/// {"sites", "total_ms", "coverage"} for a transported Snapshot — the
/// subset of Profiler::to_json() that survives the fork pipe.
json::Value snapshot_to_json(const Snapshot& s);

class Profiler {
 public:
  /// `lane` tags this profiler's counter samples and its slot in a merged
  /// per-lane breakdown; -1 means "monolithic / coordinator".
  explicit Profiler(int lane = -1) : lane_(lane) {}

  int lane() const { return lane_; }

  /// Scope stack (driven by ScopeTimer; callable directly for irregular
  /// scopes). Max nesting depth is fixed: the instrumented call graph is
  /// ~6 deep, 64 leaves room for future sites.
  void enter(Site s) {
    SMILESS_CHECK_MSG(depth_ < kMaxDepth, "profiler scope stack overflow");
    frames_[depth_++] = Frame{s, now_ns(), 0};
  }

  void leave() {
    SMILESS_CHECK_MSG(depth_ > 0, "profiler leave without enter");
    const Frame f = frames_[--depth_];
    const std::uint64_t t1 = now_ns();
    const std::uint64_t dt = t1 >= f.t0 ? t1 - f.t0 : 0;
    SiteAgg& a = sites_[static_cast<std::size_t>(f.site)];
    ++a.count;
    a.inclusive_ns += dt;
    a.exclusive_ns += dt >= f.child_ns ? dt - f.child_ns : 0;
    if (depth_ > 0) frames_[depth_ - 1].child_ns += dt;
  }

  /// Record one deterministic (sim_t, value) counter observation.
  void sample(double sim_t, Counter c, double value) {
    samples_.push_back(CounterSample{sim_t, static_cast<std::int32_t>(c), lane_, value});
  }

  /// Fold another (idle) profiler into this one: site totals add, counter
  /// samples concatenate, and `other`'s totals are also filed under its
  /// lane id so a merged cell keeps a per-lane breakdown. Associative.
  void merge(const Profiler& other);

  const std::array<SiteAgg, kSiteCount>& sites() const { return sites_; }
  const std::vector<CounterSample>& samples() const { return samples_; }

  /// Per-lane breakdown accumulated by merge(), ordered by lane id.
  struct LaneAgg {
    int lane = -1;
    std::array<SiteAgg, kSiteCount> sites{};
  };
  const std::vector<LaneAgg>& lanes() const { return lanes_; }

  /// Root wall time: Site::CellRun inclusive ns (0 if no root scope ran).
  std::uint64_t root_ns() const {
    return sites_[static_cast<std::size_t>(Site::CellRun)].inclusive_ns;
  }

  Snapshot snapshot() const;

  /// {"sites": [...], "lanes": [...], "counters": [...], "total_ms",
  ///  "coverage"} — see DESIGN.md §15 for the schema. Wall-clock data:
  /// written only to explicitly requested destinations.
  json::Value to_json() const;

  /// Chrome/Perfetto trace events: one "C" counter track per (counter,
  /// lane) on sim-time microseconds, plus per-site summary "X" slices on a
  /// dedicated wall-profile pid. Meant to be loaded alongside (or appended
  /// to) the sim-time trace from --trace-out.
  json::Value perfetto_events(int pid) const;

 private:
  struct Frame {
    Site site = Site::CellRun;
    std::uint64_t t0 = 0;
    std::uint64_t child_ns = 0;
  };
  static constexpr std::size_t kMaxDepth = 64;

  int lane_ = -1;
  std::array<Frame, kMaxDepth> frames_{};
  std::size_t depth_ = 0;
  std::array<SiteAgg, kSiteCount> sites_{};
  std::vector<LaneAgg> lanes_;
  std::vector<CounterSample> samples_;
};

/// RAII scope timer. A null profiler makes both ends a single branch —
/// that is the whole zero-overhead-when-off story.
class ScopeTimer {
 public:
  ScopeTimer(Profiler* p, Site s) : p_(p) {
    if (p_ != nullptr) p_->enter(s);
  }
  ~ScopeTimer() {
    if (p_ != nullptr) p_->leave();
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  Profiler* p_;
};

}  // namespace smiless::prof
