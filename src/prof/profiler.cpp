#include "prof/profiler.hpp"

#include "common/units.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <utility>

namespace smiless::prof {

std::uint64_t now_ns() {
  // Self-profiler quarantine: the one sanctioned monotonic read. Its output
  // goes only to --profile-out / --report-out / bench JSON, never into any
  // golden-compared artifact.
  const auto now =  // detlint:allow(wall-clock) quarantined self-profiler clock read
      std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

const char* site_name(Site s) {
  switch (s) {
    case Site::CellRun: return "cell/run";
    case Site::EngineRun: return "engine/run";
    case Site::EngineSchedule: return "engine/schedule";
    case Site::EngineCancel: return "engine/cancel";
    case Site::GatewayWindow: return "gateway/window_tick";
    case Site::PolicyWindow: return "policy/on_window";
    case Site::Dispatch: return "scheduler/dispatch";
    case Site::PoolCreate: return "pool/create_instance";
    case Site::PoolBatchDone: return "pool/on_batch_done";
    case Site::LaneStep: return "shard/lane_step";
    case Site::ShardBarrier: return "shard/barrier";
    case Site::Finalize: return "cell/finalize";
    case Site::kCount: break;
  }
  return "?";
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::EngineLive: return "engine/live";
    case Counter::EngineScheduled: return "engine/scheduled";
    case Counter::EngineFired: return "engine/fired";
    case Counter::EngineCancelled: return "engine/cancelled";
    case Counter::CalendarBuckets: return "calendar/buckets";
    case Counter::CalendarResizes: return "calendar/resizes";
    case Counter::CalendarDirectSearches: return "calendar/direct_searches";
    case Counter::SliceLive: return "slices/live";
    case Counter::SliceBlocks: return "slices/blocks";
    case Counter::kCount: break;
  }
  return "?";
}

namespace {

void add_sites(std::array<SiteAgg, kSiteCount>& dst,
               const std::array<SiteAgg, kSiteCount>& src) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    dst[i].count += src[i].count;
    dst[i].inclusive_ns += src[i].inclusive_ns;
    dst[i].exclusive_ns += src[i].exclusive_ns;
  }
}

bool all_zero(const std::array<SiteAgg, kSiteCount>& sites) {
  for (const SiteAgg& a : sites)
    if (a.count != 0) return false;
  return true;
}

json::Value sites_json(const std::array<SiteAgg, kSiteCount>& sites) {
  json::Value arr = json::Value::array();
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const SiteAgg& a = sites[i];
    if (a.count == 0) continue;
    json::Value v = json::Value::object();
    v["site"] = std::string(site_name(static_cast<Site>(i)));
    v["count"] = static_cast<long long>(a.count);
    v["inclusive_ms"] = static_cast<double>(a.inclusive_ns) / kNanosPerMilli;
    v["exclusive_ms"] = static_cast<double>(a.exclusive_ns) / kNanosPerMilli;
    arr.push_back(std::move(v));
  }
  return arr;
}

}  // namespace

void Profiler::merge(const Profiler& other) {
  // The *donor* must be idle (its open frames would be lost); the
  // destination may legitimately have its root scope open — lanes merge
  // into the cell profiler while Site::CellRun is still on its stack.
  SMILESS_CHECK_MSG(other.depth_ == 0, "merge from a profiler with open scopes");
  add_sites(sites_, other.sites_);
  // File the donor's own totals under its lane id, then adopt any per-lane
  // breakdown it already accumulated — merge(merge(a,b),c) == merge over
  // any grouping.
  auto lane_slot = [this](int lane) -> LaneAgg& {
    auto it = std::find_if(lanes_.begin(), lanes_.end(),
                           [lane](const LaneAgg& la) { return la.lane == lane; });
    if (it != lanes_.end()) return *it;
    lanes_.push_back(LaneAgg{lane, {}});
    std::sort(lanes_.begin(), lanes_.end(),
              [](const LaneAgg& a, const LaneAgg& b) { return a.lane < b.lane; });
    return *std::find_if(lanes_.begin(), lanes_.end(),
                         [lane](const LaneAgg& la) { return la.lane == lane; });
  };
  if (!all_zero(other.sites_)) {
    // Subtract the donor's already-filed lane breakdown from its own slot so
    // nothing double-counts: its top-level sites_ includes merged children.
    std::array<SiteAgg, kSiteCount> own = other.sites_;
    for (const LaneAgg& la : other.lanes_) {
      for (std::size_t i = 0; i < kSiteCount; ++i) {
        own[i].count -= la.sites[i].count;
        own[i].inclusive_ns -= la.sites[i].inclusive_ns;
        own[i].exclusive_ns -= la.sites[i].exclusive_ns;
      }
    }
    if (!all_zero(own)) add_sites(lane_slot(other.lane_).sites, own);
  }
  for (const LaneAgg& la : other.lanes_) add_sites(lane_slot(la.lane).sites, la.sites);
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

Snapshot Profiler::snapshot() const {
  Snapshot s;
  s.sites = sites_;
  s.root_ns = root_ns();
  return s;
}

json::Value snapshot_to_json(const Snapshot& s) {
  json::Value doc = json::Value::object();
  doc["sites"] = sites_json(s.sites);
  std::uint64_t exclusive_sum = 0;
  for (const SiteAgg& a : s.sites) exclusive_sum += a.exclusive_ns;
  doc["total_ms"] = static_cast<double>(s.root_ns) / kNanosPerMilli;
  if (s.root_ns > 0)
    doc["coverage"] = static_cast<double>(exclusive_sum) / static_cast<double>(s.root_ns);
  return doc;
}

json::Value Profiler::to_json() const {
  json::Value doc = json::Value::object();
  doc["sites"] = sites_json(sites_);

  std::uint64_t exclusive_sum = 0;
  for (const SiteAgg& a : sites_) exclusive_sum += a.exclusive_ns;
  doc["total_ms"] = static_cast<double>(root_ns()) / kNanosPerMilli;
  if (root_ns() > 0)
    doc["coverage"] = static_cast<double>(exclusive_sum) / static_cast<double>(root_ns());

  json::Value lanes = json::Value::array();
  for (const LaneAgg& la : lanes_) {
    json::Value v = json::Value::object();
    v["lane"] = static_cast<long long>(la.lane);
    v["sites"] = sites_json(la.sites);
    lanes.push_back(std::move(v));
  }
  doc["lanes"] = std::move(lanes);

  // Counter samples grouped by (counter, lane) in catalog/lane order. The
  // (sim_t, value) pairs themselves are deterministic; only their presence
  // depends on profiling being enabled.
  json::Value counters = json::Value::array();
  std::map<std::pair<int, int>, std::vector<const CounterSample*>> grouped;
  for (const CounterSample& cs : samples_)
    grouped[{cs.counter, cs.lane}].push_back(&cs);
  for (const auto& [key, rows] : grouped) {
    json::Value v = json::Value::object();
    v["name"] = std::string(counter_name(static_cast<Counter>(key.first)));
    v["lane"] = static_cast<long long>(key.second);
    json::Value pts = json::Value::array();
    for (const CounterSample* cs : rows) {
      json::Value pt = json::Value::array();
      pt.push_back(json::Value(cs->sim_t));
      pt.push_back(json::Value(cs->value));
      pts.push_back(std::move(pt));
    }
    v["samples"] = std::move(pts);
    counters.push_back(std::move(v));
  }
  doc["counters"] = std::move(counters);
  return doc;
}

json::Value Profiler::perfetto_events(int pid) const {
  json::Value events = json::Value::array();

  json::Value meta = json::Value::object();
  meta["ph"] = std::string("M");
  meta["pid"] = static_cast<long long>(pid);
  meta["name"] = std::string("process_name");
  json::Value margs = json::Value::object();
  margs["name"] = std::string("self-profiler");
  meta["args"] = std::move(margs);
  events.push_back(std::move(meta));

  // Counter tracks on the sim-time axis (seconds -> trace microseconds),
  // one named track per (counter, lane).
  std::map<std::pair<int, int>, std::vector<const CounterSample*>> grouped;
  for (const CounterSample& cs : samples_)
    grouped[{cs.counter, cs.lane}].push_back(&cs);
  for (const auto& [key, rows] : grouped) {
    std::string name = counter_name(static_cast<Counter>(key.first));
    if (key.second >= 0) name += "/lane" + std::to_string(key.second);
    for (const CounterSample* cs : rows) {
      json::Value ev = json::Value::object();
      ev["ph"] = std::string("C");
      ev["pid"] = static_cast<long long>(pid);
      ev["name"] = name;
      ev["ts"] = cs->sim_t * kMicrosPerSecond;
      json::Value args = json::Value::object();
      args["value"] = cs->value;
      ev["args"] = std::move(args);
      events.push_back(std::move(ev));
    }
  }

  // Per-site wall-time summary slices: one thread row per site, a single
  // complete event whose duration is the site's inclusive wall time. These
  // are *summaries* (wall time projected from t=0), not a timeline.
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const SiteAgg& a = sites_[i];
    if (a.count == 0) continue;
    const long long tid = static_cast<long long>(i) + 1;
    json::Value tn = json::Value::object();
    tn["ph"] = std::string("M");
    tn["pid"] = static_cast<long long>(pid);
    tn["tid"] = tid;
    tn["name"] = std::string("thread_name");
    json::Value targs = json::Value::object();
    targs["name"] = std::string("wall: ") + site_name(static_cast<Site>(i));
    tn["args"] = std::move(targs);
    events.push_back(std::move(tn));

    json::Value ev = json::Value::object();
    ev["ph"] = std::string("X");
    ev["pid"] = static_cast<long long>(pid);
    ev["tid"] = tid;
    ev["name"] = std::string(site_name(static_cast<Site>(i)));
    ev["ts"] = 0.0;
    ev["dur"] = static_cast<double>(a.inclusive_ns) / kNanosPerMicro;
    json::Value args = json::Value::object();
    args["count"] = static_cast<long long>(a.count);
    args["exclusive_ms"] = static_cast<double>(a.exclusive_ns) / kNanosPerMilli;
    ev["args"] = std::move(args);
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace smiless::prof
