#pragma once

#include <optional>
#include <vector>

#include "common/check.hpp"
#include "perfmodel/hardware.hpp"

namespace smiless::cluster {

/// Capacity of one physical machine. Mirrors the paper's testbed: two
/// 52-core Xeons (104 cores) and one GPU (100 MPS percent units).
struct MachineSpec {
  int cpu_cores = 104;
  int gpu_pct = 100;
};

/// Resource grant for one container instance.
struct Allocation {
  int machine = -1;
  perf::HwConfig config;
};

/// How allocations pick a machine. First-fit is the default (and what the
/// experiments use); best-fit packs tightly (less stranded capacity for big
/// GPU asks); worst-fit spreads load (less interference in a real cluster).
enum class Placement { FirstFit, BestFit, WorstFit };

/// A fixed fleet of machines with pluggable placement of container resource
/// grants. Tracks free capacity; billing is handled by the serverless layer
/// (capacity and money are orthogonal concerns).
class Cluster {
 public:
  Cluster(std::size_t machines, MachineSpec spec, Placement placement = Placement::FirstFit);

  /// Default fleet from the paper: 8 machines.
  static Cluster paper_testbed() { return Cluster(8, MachineSpec{}); }

  /// Try to place a container of the given configuration; std::nullopt when
  /// no machine has room.
  std::optional<Allocation> allocate(const perf::HwConfig& config);

  /// Return a previous grant.
  void release(const Allocation& a);

  std::size_t machine_count() const { return free_.size(); }
  int free_cpu_cores() const;
  int free_gpu_pct() const;
  int total_cpu_cores() const { return total_cpu_; }
  int total_gpu_pct() const { return total_gpu_; }

 private:
  std::vector<MachineSpec> free_;
  MachineSpec spec_;
  Placement placement_;
  int total_cpu_ = 0;
  int total_gpu_ = 0;
};

}  // namespace smiless::cluster
