#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "perfmodel/hardware.hpp"

namespace smiless::cluster {

/// Capacity of one physical machine. Mirrors the paper's testbed: two
/// 52-core Xeons (104 cores) and one GPU (100 MPS percent units).
struct MachineSpec {
  int cpu_cores = 104;
  int gpu_pct = 100;
};

/// Resource grant for one container instance.
struct Allocation {
  int machine = -1;
  perf::HwConfig config;
};

/// How allocations pick a machine. First-fit is the default (and what the
/// experiments use); best-fit packs tightly (less stranded capacity for big
/// GPU asks); worst-fit spreads load (less interference in a real cluster).
enum class Placement { FirstFit, BestFit, WorstFit };

/// A fixed fleet of machines with pluggable placement of container resource
/// grants. Tracks free capacity; billing is handled by the serverless layer
/// (capacity and money are orthogonal concerns).
///
/// Machines can be taken down (crash injection, maintenance) with
/// mark_down(): a down machine accepts no new allocations and its free
/// capacity is excluded from free_cpu_cores()/free_gpu_pct(). Existing
/// grants on it stay on the books until their owner release()s them —
/// registered machine listeners (the serverless layer) are expected to
/// evict and release on the down transition.
class Cluster {
 public:
  /// Observer of machine up/down transitions; `up` is the new state.
  using MachineListener = std::function<void(int machine, bool up)>;

  Cluster(std::size_t machines, MachineSpec spec, Placement placement = Placement::FirstFit);

  /// Default fleet from the paper: 8 machines.
  static Cluster paper_testbed() { return Cluster(8, MachineSpec{}); }

  /// Try to place a container of the given configuration; std::nullopt when
  /// no machine has room.
  std::optional<Allocation> allocate(const perf::HwConfig& config);

  /// Return a previous grant. Valid for down machines too: the capacity
  /// re-joins the machine's ledger and becomes usable again on mark_up.
  void release(const Allocation& a);

  /// Take a machine out of service / bring it back. Idempotent; listeners
  /// are notified only on actual transitions.
  void mark_down(int machine);
  void mark_up(int machine);
  bool machine_up(int machine) const;
  int machines_down() const;

  /// Register an up/down observer; returns a token for remove_listener.
  int add_listener(MachineListener fn);
  void remove_listener(int token);

  std::size_t machine_count() const { return free_.size(); }
  /// Free capacity on *up* machines only (what allocate() can still grant).
  int free_cpu_cores() const;
  int free_gpu_pct() const;
  int total_cpu_cores() const { return total_cpu_; }
  int total_gpu_pct() const { return total_gpu_; }
  /// Per-machine free ledger (up or down) — for tests and introspection.
  const MachineSpec& free_of(int machine) const;

 private:
  std::vector<MachineSpec> free_;
  std::vector<char> down_;
  MachineSpec spec_;
  Placement placement_;
  int total_cpu_ = 0;
  int total_gpu_ = 0;
  std::vector<std::pair<int, MachineListener>> listeners_;
  int next_listener_token_ = 1;
};

}  // namespace smiless::cluster
