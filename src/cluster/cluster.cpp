#include "cluster/cluster.hpp"

namespace smiless::cluster {

Cluster::Cluster(std::size_t machines, MachineSpec spec, Placement placement)
    : spec_(spec), placement_(placement) {
  SMILESS_CHECK(machines >= 1);
  SMILESS_CHECK(spec.cpu_cores >= 0 && spec.gpu_pct >= 0);
  free_.assign(machines, spec);
  down_.assign(machines, 0);
  total_cpu_ = spec.cpu_cores * static_cast<int>(machines);
  total_gpu_ = spec.gpu_pct * static_cast<int>(machines);
}

std::optional<Allocation> Cluster::allocate(const perf::HwConfig& config) {
  const bool cpu = config.backend == perf::Backend::Cpu;
  const int need = cpu ? config.cpu_cores : config.gpu_pct;

  int chosen = -1;
  int chosen_free = 0;
  for (std::size_t m = 0; m < free_.size(); ++m) {
    if (down_[m]) continue;
    const int avail = cpu ? free_[m].cpu_cores : free_[m].gpu_pct;
    if (avail < need) continue;
    switch (placement_) {
      case Placement::FirstFit:
        chosen = static_cast<int>(m);
        break;
      case Placement::BestFit:
        if (chosen < 0 || avail < chosen_free) {
          chosen = static_cast<int>(m);
          chosen_free = avail;
        }
        break;
      case Placement::WorstFit:
        if (chosen < 0 || avail > chosen_free) {
          chosen = static_cast<int>(m);
          chosen_free = avail;
        }
        break;
    }
    if (placement_ == Placement::FirstFit && chosen >= 0) break;
  }
  if (chosen < 0) return std::nullopt;
  if (cpu)
    free_[chosen].cpu_cores -= need;
  else
    free_[chosen].gpu_pct -= need;
  return Allocation{chosen, config};
}

void Cluster::release(const Allocation& a) {
  SMILESS_CHECK(a.machine >= 0 && static_cast<std::size_t>(a.machine) < free_.size());
  auto& m = free_[a.machine];
  if (a.config.backend == perf::Backend::Cpu) {
    m.cpu_cores += a.config.cpu_cores;
    SMILESS_CHECK_MSG(m.cpu_cores <= spec_.cpu_cores, "double release of CPU cores");
  } else {
    m.gpu_pct += a.config.gpu_pct;
    SMILESS_CHECK_MSG(m.gpu_pct <= spec_.gpu_pct, "double release of GPU slice");
  }
}

void Cluster::mark_down(int machine) {
  SMILESS_CHECK(machine >= 0 && static_cast<std::size_t>(machine) < free_.size());
  if (down_[machine]) return;
  down_[machine] = 1;
  // Copy: a listener may add/remove listeners while being notified.
  const auto listeners = listeners_;
  for (const auto& [token, fn] : listeners) fn(machine, false);
}

void Cluster::mark_up(int machine) {
  SMILESS_CHECK(machine >= 0 && static_cast<std::size_t>(machine) < free_.size());
  if (!down_[machine]) return;
  down_[machine] = 0;
  const auto listeners = listeners_;
  for (const auto& [token, fn] : listeners) fn(machine, true);
}

bool Cluster::machine_up(int machine) const {
  SMILESS_CHECK(machine >= 0 && static_cast<std::size_t>(machine) < free_.size());
  return !down_[machine];
}

int Cluster::machines_down() const {
  int n = 0;
  for (char d : down_) n += d ? 1 : 0;
  return n;
}

int Cluster::add_listener(MachineListener fn) {
  SMILESS_CHECK(fn != nullptr);
  const int token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(fn));
  return token;
}

void Cluster::remove_listener(int token) {
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    if (listeners_[i].first == token) {
      listeners_.erase(listeners_.begin() + static_cast<long>(i));
      return;
    }
  }
}

int Cluster::free_cpu_cores() const {
  int n = 0;
  for (std::size_t m = 0; m < free_.size(); ++m)
    if (!down_[m]) n += free_[m].cpu_cores;
  return n;
}

int Cluster::free_gpu_pct() const {
  int n = 0;
  for (std::size_t m = 0; m < free_.size(); ++m)
    if (!down_[m]) n += free_[m].gpu_pct;
  return n;
}

const MachineSpec& Cluster::free_of(int machine) const {
  SMILESS_CHECK(machine >= 0 && static_cast<std::size_t>(machine) < free_.size());
  return free_[machine];
}

}  // namespace smiless::cluster
