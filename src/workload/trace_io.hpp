#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.hpp"

namespace smiless::workload {

/// Write a trace as CSV: a header line, then one arrival timestamp per line.
/// The format round-trips through load_csv and is easy to produce from real
/// invocation logs (e.g. a rescaled Azure Functions trace).
void save_csv(const Trace& trace, std::ostream& os);

/// Parse the save_csv format (header optional; blank lines and '#' comments
/// skipped). `window` buckets the arrivals into per-window counts. Throws
/// CheckError on non-numeric or non-monotonic timestamps.
Trace load_csv(std::istream& is, double window = 1.0);

/// Convenience file wrappers.
void save_csv_file(const Trace& trace, const std::string& path);
Trace load_csv_file(const std::string& path, double window = 1.0);

}  // namespace smiless::workload
