#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace smiless::workload {

std::vector<double> Trace::interarrivals() const {
  std::vector<double> out;
  if (arrivals.size() < 2) return out;
  out.reserve(arrivals.size() - 1);
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    out.push_back(arrivals[i] - arrivals[i - 1]);
  return out;
}

std::vector<double> Trace::counts_as_double() const {
  return {counts.begin(), counts.end()};
}

Trace generate_trace(const TraceOptions& o, Rng& rng) {
  SMILESS_CHECK(o.duration > 0.0 && o.window > 0.0 && o.mean_rate >= 0.0);
  Trace trace;
  trace.window = o.window;
  const auto n_windows = static_cast<std::size_t>(o.duration / o.window);
  trace.counts.reserve(n_windows);

  double burst_until = -1.0;
  double idle_until = -1.0;
  for (std::size_t w = 0; w < n_windows; ++w) {
    const double t = static_cast<double>(w) * o.window;

    if (t > burst_until && rng.uniform(0.0, 1.0) < o.burst_start_prob)
      burst_until = t + o.burst_duration;
    if (t > idle_until && t > burst_until && rng.uniform(0.0, 1.0) < o.idle_start_prob)
      idle_until = t + o.idle_duration;

    double rate = o.mean_rate *
                  (1.0 + o.diurnal_amplitude *
                             std::sin(2.0 * std::numbers::pi * t / o.diurnal_period));
    if (t <= burst_until) rate *= o.burst_magnitude;
    if (t <= idle_until) rate = 0.0;
    if (rate < 0.0) rate = 0.0;

    const int count = rng.poisson(rate * o.window);
    trace.counts.push_back(count);
    for (int i = 0; i < count; ++i)
      trace.arrivals.push_back(t + rng.uniform(0.0, o.window));
  }
  std::sort(trace.arrivals.begin(), trace.arrivals.end());
  return trace;
}

TraceOptions preset_for_workload(const std::string& workload_name, double duration) {
  TraceOptions o;
  o.duration = duration;
  // All three applications see Azure-like load: active phases around a 2 s
  // mean inter-arrival separated by pronounced quiet periods (the quiet
  // fraction is what separates cold-start-aware policies from keep-forever
  // ones).
  if (workload_name.find("WL1") != std::string::npos) {
    // AMBER alerts: rare baseline with sharp event-driven bursts and long
    // quiet stretches.
    o.mean_rate = 0.4;
    o.burst_start_prob = 0.006;
    o.burst_magnitude = 10.0;
    o.idle_start_prob = 0.010;
    o.idle_duration = 60.0;
  } else if (workload_name.find("WL2") != std::string::npos) {
    // Image query: moderate diurnal traffic with occasional bursts.
    o.mean_rate = 0.5;
    o.burst_start_prob = 0.004;
    o.burst_magnitude = 6.0;
    o.idle_start_prob = 0.008;
    o.idle_duration = 45.0;
  } else {
    // Voice assistant: steadier interactive traffic, deeper diurnal lows.
    o.mean_rate = 0.6;
    o.diurnal_amplitude = 0.6;
    o.burst_start_prob = 0.003;
    o.burst_magnitude = 4.0;
    o.idle_start_prob = 0.006;
    o.idle_duration = 40.0;
  }
  return o;
}

Trace generate_burst_window(double quiet_rate, double peak_rate, Rng& rng, double duration) {
  SMILESS_CHECK(duration > 0.0 && quiet_rate >= 0.0 && peak_rate >= quiet_rate);
  Trace trace;
  trace.window = 1.0;
  const auto n = static_cast<std::size_t>(duration);
  for (std::size_t w = 0; w < n; ++w) {
    const double t = static_cast<double>(w);
    double rate = quiet_rate;
    // Ramp 1/3 in, peak for a third, decay.
    const double burst_start = duration / 3.0;
    const double burst_end = 2.0 * duration / 3.0;
    if (t >= burst_start && t < burst_end) {
      rate = peak_rate;
    } else if (t >= burst_end) {
      const double frac = (t - burst_end) / (duration - burst_end);
      rate = peak_rate + (quiet_rate - peak_rate) * frac;
    }
    const int count = rng.poisson(rate);
    trace.counts.push_back(count);
    for (int i = 0; i < count; ++i) trace.arrivals.push_back(t + rng.uniform(0.0, 1.0));
  }
  std::sort(trace.arrivals.begin(), trace.arrivals.end());
  return trace;
}

Trace generate_regular_trace(double interval, double jitter_frac, double duration, Rng& rng) {
  SMILESS_CHECK(interval > 0.0 && jitter_frac >= 0.0 && duration > interval);
  Trace trace;
  trace.window = 1.0;
  double t = interval * rng.uniform(0.5, 1.0);
  while (t < duration) {
    trace.arrivals.push_back(t);
    t += rng.truncated_normal(interval, jitter_frac * interval, 0.2 * interval);
  }
  const auto n = static_cast<std::size_t>(duration);
  trace.counts.assign(n, 0);
  for (double a : trace.arrivals) {
    const auto w = static_cast<std::size_t>(a);
    if (w < n) ++trace.counts[w];
  }
  return trace;
}

}  // namespace smiless::workload
