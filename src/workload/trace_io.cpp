#include "workload/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace smiless::workload {

void save_csv(const Trace& trace, std::ostream& os) {
  os << "arrival_s\n";
  os.precision(9);
  for (double a : trace.arrivals) os << a << "\n";
}

Trace load_csv(std::istream& is, double window) {
  SMILESS_CHECK(window > 0.0);
  Trace trace;
  trace.window = window;
  std::string line;
  int line_no = 0;
  double prev = -1.0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim whitespace.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    if (line == "arrival_s") continue;  // header

    std::istringstream ls(line);
    double t = 0.0;
    SMILESS_CHECK_MSG(static_cast<bool>(ls >> t),
                      "line " << line_no << ": expected a timestamp, got '" << line << "'");
    std::string rest;
    SMILESS_CHECK_MSG(!(ls >> rest), "line " << line_no << ": trailing content '" << rest << "'");
    SMILESS_CHECK_MSG(t >= 0.0, "line " << line_no << ": negative timestamp");
    SMILESS_CHECK_MSG(t >= prev, "line " << line_no << ": timestamps must be non-decreasing");
    prev = t;
    trace.arrivals.push_back(t);
  }

  const double duration = trace.arrivals.empty() ? 0.0 : trace.arrivals.back();
  const auto n = static_cast<std::size_t>(std::floor(duration / window)) + 1;
  trace.counts.assign(trace.arrivals.empty() ? 0 : n, 0);
  for (double a : trace.arrivals) {
    const auto w = static_cast<std::size_t>(a / window);
    if (w < trace.counts.size()) ++trace.counts[w];
  }
  return trace;
}

void save_csv_file(const Trace& trace, const std::string& path) {
  std::ofstream os(path);
  SMILESS_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  save_csv(trace, os);
}

Trace load_csv_file(const std::string& path, double window) {
  std::ifstream is(path);
  SMILESS_CHECK_MSG(is.good(), "cannot open " << path);
  return load_csv(is, window);
}

}  // namespace smiless::workload
