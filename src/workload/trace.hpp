#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace smiless::workload {

/// Knobs of the Azure-Functions-like synthetic trace generator. The paper
/// drives each application with invocation traces from the Azure Function
/// Dataset, scaled from 1-minute to 2-second mean intervals; this generator
/// reproduces the statistical properties that matter to the predictors and
/// the cold-start logic: a diurnal baseline, Poisson jitter, occasional
/// bursts (variance-to-mean ratio > 2) and idle stretches.
struct TraceOptions {
  double duration = 1200.0;       ///< trace length in seconds
  double window = 1.0;            ///< counting window (s)
  double mean_rate = 0.5;         ///< mean invocations per window (0.5 == 2 s IT)
  double diurnal_amplitude = 0.5; ///< relative amplitude of the slow sinusoid
  double diurnal_period = 600.0;  ///< seconds per "day" after scale-down
  double burst_start_prob = 0.004; ///< per-window probability a burst begins
  double burst_magnitude = 8.0;   ///< rate multiplier inside a burst
  double burst_duration = 12.0;   ///< seconds
  double idle_start_prob = 0.003; ///< per-window probability an idle gap begins
  double idle_duration = 30.0;    ///< seconds
};

/// A generated trace: per-window invocation counts plus the exact arrival
/// timestamps (counts spread uniformly inside each window).
struct Trace {
  double window = 1.0;
  std::vector<int> counts;
  std::vector<SimTime> arrivals;

  std::size_t total_invocations() const { return arrivals.size(); }
  /// Inter-arrival gaps between consecutive arrivals.
  std::vector<double> interarrivals() const;
  /// Per-window counts as doubles (predictor input).
  std::vector<double> counts_as_double() const;
};

/// Generate a trace; deterministic for a given rng state.
Trace generate_trace(const TraceOptions& options, Rng& rng);

/// Per-workload presets used by the evaluation: the three applications see
/// differently-shaped load (WL1 burstier, WL2 moderate, WL3 steady-ish),
/// all with ~2 s mean inter-arrival per §VII-A.
TraceOptions preset_for_workload(const std::string& workload_name, double duration);

/// A deliberately violent 60-second burst window (Fig. 14/15): quiet, then a
/// sharp multi-x spike, then decay.
Trace generate_burst_window(double quiet_rate, double peak_rate, Rng& rng,
                            double duration = 60.0);

/// A near-periodic trace: one arrival every `interval` seconds with small
/// relative jitter. This is the regime where just-in-time pre-warming pays
/// off — the paper's inter-arrival predictor reports 2.45% MAPE, i.e. its
/// production gaps are this regular.
Trace generate_regular_trace(double interval, double jitter_frac, double duration, Rng& rng);

}  // namespace smiless::workload
