#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace smiless::workload {

/// Cursor over one app's sorted arrival timestamps — the single arrival-
/// iteration helper shared by every injection path (DESIGN.md §16):
///
///  - the classic monolithic run drains the whole trace upfront
///    (`drain_all`) before the DES pump starts;
///  - the sharded platform streams one window at a time (`drain_before`
///    each barrier, `drain_all` at the final flush);
///  - the real-time replayer feeds arrivals in as the wall clock reaches
///    them (`next_time` to learn the next due instant, `drain_through` to
///    inject it).
///
/// The cursor never owns the arrival vector (traces are shared, immutable
/// run inputs) and only ever moves forward, so however a driver slices the
/// timeline the injected sequence is the same.
class ArrivalCursor {
 public:
  ArrivalCursor() = default;

  /// `arrivals` must be sorted ascending and outlive the cursor.
  explicit ArrivalCursor(const std::vector<SimTime>* arrivals) : arrivals_(arrivals) {
    SMILESS_CHECK(arrivals_ != nullptr);
  }

  bool exhausted() const { return arrivals_ == nullptr || cur_ >= arrivals_->size(); }
  std::size_t position() const { return cur_; }
  std::size_t remaining() const {
    return arrivals_ == nullptr ? 0 : arrivals_->size() - cur_;
  }

  /// Next un-injected arrival time; +infinity when exhausted.
  SimTime next_time() const {
    return exhausted() ? std::numeric_limits<double>::infinity() : (*arrivals_)[cur_];
  }

  /// Feed every arrival strictly before `limit` to `fn`, in order. Returns
  /// the number fed. (The window-barrier streaming bound: an arrival at
  /// exactly the barrier belongs to the next window.)
  template <typename Fn>
  std::size_t drain_before(SimTime limit, Fn&& fn) {
    std::size_t n = 0;
    while (!exhausted() && (*arrivals_)[cur_] < limit) {
      fn((*arrivals_)[cur_]);
      ++cur_;
      ++n;
    }
    return n;
  }

  /// Feed every arrival at or before `t` to `fn`, in order. Returns the
  /// number fed. (The pacing-driver bound: when the clock has reached `t`,
  /// an arrival due exactly then is due now.)
  template <typename Fn>
  std::size_t drain_through(SimTime t, Fn&& fn) {
    std::size_t n = 0;
    while (!exhausted() && (*arrivals_)[cur_] <= t) {
      fn((*arrivals_)[cur_]);
      ++cur_;
      ++n;
    }
    return n;
  }

  /// Feed everything left to `fn`, regardless of time. Returns the number
  /// fed. (Upfront scheduling, and the end-of-run tail flush that keeps
  /// scheduled-event tallies identical between injection modes.)
  template <typename Fn>
  std::size_t drain_all(Fn&& fn) {
    std::size_t n = 0;
    while (!exhausted()) {
      fn((*arrivals_)[cur_]);
      ++cur_;
      ++n;
    }
    return n;
  }

 private:
  const std::vector<SimTime>* arrivals_ = nullptr;  ///< not owned, sorted
  std::size_t cur_ = 0;                             ///< next un-injected index
};

}  // namespace smiless::workload
