#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/units.hpp"
#include "sim/clock.hpp"

namespace smiless::rt {

/// The live-serving clock (DESIGN.md §16): maps simulated seconds onto wall
/// seconds through a speedup factor and sleeps until each instant's wall
/// deadline. `speedup == 1` replays a trace at its natural rate; large
/// speedups (the CI smoke uses 1e5) compress an hour-long trace into
/// fractions of a second while exercising exactly the live code path.
///
/// Determinism boundary: everything this class reads from the wall clock
/// stays on this side of the seam. wait_until() only *delays* — the sim
/// trajectory it paces is identical to the DES one by the Clock contract —
/// and the wall-derived diagnostics (max_lag_seconds, wall_elapsed_seconds)
/// flow to stderr/serve reports only, never into golden-compared artifacts.
/// Every steady-clock read sits behind a reasoned per-line lint allowance.
class WallClock final : public sim::Clock {
 public:
  explicit WallClock(double speedup);

  /// Anchors the wall epoch: sim time `sim_now` corresponds to "now" on the
  /// wall, and every later instant t maps to epoch + (t - sim_now)/speedup.
  void start(SimTime sim_now) override;

  /// Sleeps until `t`'s wall deadline (in short slices so stop requests are
  /// honored promptly). Returns false iff request_stop() was called; late
  /// wake-ups (deadline already passed) return true immediately and are
  /// tallied as lag.
  bool wait_until(SimTime t) override;

  /// Ask the clock to abandon pacing; the current/next wait_until returns
  /// false and the driver stops. Safe to call from another thread or a
  /// signal-adjacent context.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  double speedup() const { return speedup_; }

  /// Largest observed lateness (wall seconds past a deadline when its
  /// wait_until ran), and wall seconds since start(). Diagnostics only.
  double max_lag_seconds() const { return max_lag_seconds_; }
  double wall_elapsed_seconds() const;
  std::uint64_t waits() const { return waits_; }

 private:
  using WallDuration = std::chrono::duration<double>;  ///< wall seconds

  const double speedup_;
  SimTime sim_epoch_ = 0.0;
  std::chrono::steady_clock::time_point wall_epoch_;  // detlint:allow(wall-clock) pacing anchor; quarantined per class doc
  bool started_ = false;
  std::atomic<bool> stop_{false};
  double max_lag_seconds_ = 0.0;
  std::uint64_t waits_ = 0;
};

}  // namespace smiless::rt
