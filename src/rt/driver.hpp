#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/driver.hpp"

namespace smiless::rt {

/// Tallies from one RealTimeDriver::drive, for serve reports and tests.
struct DriveStats {
  std::uint64_t batches = 0;     ///< event batches pumped (distinct instants)
  std::uint64_t injections = 0;  ///< inject_through calls that were due
  bool interrupted = false;      ///< clock stopped the drive before `end`
};

/// The live-serving driver (DESIGN.md §16): pumps the *same* engine event
/// queue as DesDriver, one sim instant at a time, pacing each instant
/// against a Clock and streaming WorkSource injections in no later than
/// their due times. With sim::ImmediateClock this is an alternate DES pump;
/// with rt::WallClock it is a serving loop.
///
/// Per the Clock contract (the clock only delays, never reorders), the sim
/// trajectory produced here matches the upfront DesDriver run: same request
/// terminal states, same ledger totals, same event counts. The equivalence
/// suite in tests/rt_test.cpp holds the two drivers to that.
class RealTimeDriver final : public sim::Driver {
 public:
  /// `clock` must outlive the driver. Not owned.
  explicit RealTimeDriver(sim::Clock* clock);

  const char* name() const override { return "realtime"; }

  /// Pump `engine` to `end`. Each iteration picks the earlier of the
  /// engine's next event and the source's next injection, waits for the
  /// clock to reach that instant, injects anything due, and fires the
  /// batch. If the clock interrupts, returns early with the engine clock
  /// wherever it got to (stats().interrupted is set); otherwise finishes
  /// with a tail flush so the trajectory matches the upfront run even if
  /// the source still holds post-horizon arrivals.
  void drive(sim::Engine& engine, sim::WorkSource* source, SimTime end) override;

  const DriveStats& stats() const { return stats_; }

 private:
  sim::Clock* clock_;  ///< not owned
  DriveStats stats_;
};

}  // namespace smiless::rt
