#include "rt/replayer.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.hpp"

namespace smiless::rt {

TraceReplayer::TraceReplayer(Submit submit) : submit_(std::move(submit)) {
  SMILESS_CHECK(submit_ != nullptr);
}

std::size_t TraceReplayer::add_stream(const std::vector<SimTime>* arrivals) {
  streams_.emplace_back(arrivals);
  return streams_.size() - 1;
}

SimTime TraceReplayer::next_time() const {
  SimTime earliest = std::numeric_limits<double>::infinity();
  for (const auto& s : streams_) earliest = std::min(earliest, s.next_time());
  return earliest;
}

void TraceReplayer::inject_through(SimTime t) {
  // Streams drain in registration (app) order: at equal due times this
  // reproduces the app-major submission order of the upfront path, so
  // tie-breaking by EventId agrees between the two injection modes.
  for (std::size_t slot = 0; slot < streams_.size(); ++slot)
    injected_ += streams_[slot].drain_through(
        t, [&](SimTime arrival) { submit_(slot, arrival); });
}

void TraceReplayer::flush() {
  for (std::size_t slot = 0; slot < streams_.size(); ++slot)
    injected_ += streams_[slot].drain_all([&](SimTime arrival) { submit_(slot, arrival); });
}

}  // namespace smiless::rt
