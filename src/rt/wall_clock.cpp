#include "rt/wall_clock.hpp"

#include <algorithm>
#include <thread>

#include "common/check.hpp"

namespace smiless::rt {
namespace {

/// Longest single sleep slice. Waits are chopped into slices this size so a
/// request_stop() is honored within one slice even when the next deadline
/// is far away (e.g. a sparse trace replayed at speedup 1).
constexpr std::chrono::milliseconds kMaxSleepSlice{50};

}  // namespace

WallClock::WallClock(double speedup) : speedup_(speedup) {
  SMILESS_CHECK_MSG(speedup_ > 0.0, "speedup must be positive: " << speedup_);
}

void WallClock::start(SimTime sim_now) {
  sim_epoch_ = sim_now;
  wall_epoch_ = std::chrono::steady_clock::now();  // detlint:allow(wall-clock) pacing anchor; quarantined per class doc
  started_ = true;
  max_lag_seconds_ = 0.0;
  waits_ = 0;
}

bool WallClock::wait_until(SimTime t) {
  SMILESS_CHECK_MSG(started_, "WallClock::wait_until before start()");
  ++waits_;
  const auto deadline =
      wall_epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(  // detlint:allow(wall-clock) deadline in the pacing quarantine
          WallDuration((t - sim_epoch_) / speedup_));
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) return false;
    const auto now = std::chrono::steady_clock::now();  // detlint:allow(wall-clock) pacing read; quarantined per class doc
    if (now >= deadline) {
      max_lag_seconds_ = std::max(max_lag_seconds_, WallDuration(now - deadline).count());
      return true;
    }
    const auto remaining = deadline - now;
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(remaining, kMaxSleepSlice));  // detlint:allow(wall-clock) duration type only, no clock read
  }
}

double WallClock::wall_elapsed_seconds() const {
  if (!started_) return 0.0;
  const auto now = std::chrono::steady_clock::now();  // detlint:allow(wall-clock) diagnostic read; stderr/report only
  return WallDuration(now - wall_epoch_).count();
}

}  // namespace smiless::rt
