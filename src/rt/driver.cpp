#include "rt/driver.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "sim/engine.hpp"

namespace smiless::rt {

RealTimeDriver::RealTimeDriver(sim::Clock* clock) : clock_(clock) {
  SMILESS_CHECK(clock_ != nullptr);
}

void RealTimeDriver::drive(sim::Engine& engine, sim::WorkSource* source, SimTime end) {
  SMILESS_CHECK(end >= engine.now());
  stats_ = DriveStats{};
  clock_->start(engine.now());
  for (;;) {
    const SimTime t_queue = engine.next_time();
    const SimTime t_source =
        source != nullptr ? source->next_time() : std::numeric_limits<double>::infinity();
    const SimTime t_next = std::min(t_queue, t_source);
    if (!(t_next <= end)) break;  // drained within horizon (or both +inf)
    if (!clock_->wait_until(t_next)) {
      stats_.interrupted = true;
      return;  // abandon mid-drive: engine stays at its last fired instant
    }
    if (source != nullptr && t_source <= t_next) {
      source->inject_through(t_next);
      ++stats_.injections;
    }
    // Fire everything at exactly t_next (injections above may have added
    // to the batch); later events wait for their own clock deadline.
    engine.run_until(t_next);
    ++stats_.batches;
  }
  // Tail: flush post-horizon source work and advance the clock to `end`, so
  // scheduled-event tallies and engine.now() match the upfront DES run.
  if (source != nullptr) source->flush();
  engine.run_until(end);
}

}  // namespace smiless::rt
