#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hpp"
#include "sim/driver.hpp"
#include "workload/arrival_cursor.hpp"

namespace smiless::rt {

/// Wall-clock trace replayer (DESIGN.md §16): the WorkSource that feeds
/// recorded arrival traces into a live drive. Each app contributes one
/// ArrivalCursor over its (sorted) arrival vector; the replayer merges the
/// streams and hands each due arrival to a submit callback — in practice a
/// bound Platform::submit_request, which lands in the Gateway intake
/// exactly as the upfront scheduling path does.
///
/// The submit callback keeps this class free of any serverless dependency,
/// which is what lets the rt layer sit below serverless in the archlint
/// manifest: the replayer knows apps only as opaque slot indices.
class TraceReplayer final : public sim::WorkSource {
 public:
  /// submit(slot, arrival): inject one arrival for the app in `slot`.
  using Submit = std::function<void(std::size_t, SimTime)>;

  explicit TraceReplayer(Submit submit);

  /// Register one app's arrival stream; returns its slot index. `arrivals`
  /// must be sorted ascending and outlive the replayer. Streams are drained
  /// in registration order at equal due times, mirroring the app order of
  /// the upfront scheduling loop.
  std::size_t add_stream(const std::vector<SimTime>* arrivals);

  SimTime next_time() const override;
  void inject_through(SimTime t) override;
  void flush() override;

  /// Total arrivals handed to the submit callback so far.
  std::uint64_t injected() const { return injected_; }

 private:
  Submit submit_;
  std::vector<workload::ArrivalCursor> streams_;
  std::uint64_t injected_ = 0;
};

}  // namespace smiless::rt
