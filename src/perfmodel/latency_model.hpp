#pragma once

#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "perfmodel/hardware.hpp"

namespace smiless::perf {

/// Parameters of the paper's Amdahl-law latency model (Eq. 1 for CPU,
/// Eq. 2 for GPU):
///   inference = lambda * B * (alpha / resource + beta) + gamma
/// where resource is #cores (CPU) or %GPU, B the batch size, gamma the
/// network transmission time.
struct AmdahlParams {
  double lambda = 1.0;
  double alpha = 0.0;  ///< computational volume
  double beta = 0.0;   ///< serial overhead per item
  double gamma = 0.0;  ///< network transmission time

  double inference_time(double resource, int batch) const {
    return lambda * batch * (alpha / resource + beta) + gamma;
  }
};

/// Initialization-time statistics for one backend of one function. The
/// profiler estimates mu + n*sigma as its robust measurement (§IV-A1).
struct InitStats {
  double mu = 0.0;
  double sigma = 0.0;

  double estimate(double n_sigma) const { return mu + n_sigma * sigma; }
};

/// Complete performance profile of one inference function (either ground
/// truth in apps/, or the fitted version produced by the Offline Profiler).
struct FunctionPerf {
  std::string name;
  AmdahlParams cpu;
  AmdahlParams gpu;
  InitStats init_cpu;
  InitStats init_gpu;

  /// Deterministic (noise-free) inference latency under `config` / `batch`.
  double inference_time(const HwConfig& config, int batch) const {
    const auto& p = config.backend == Backend::Cpu ? cpu : gpu;
    return p.inference_time(config.resource_amount(), batch);
  }

  /// Robust initialization-time estimate under `config` using mu + n*sigma.
  double init_time(const HwConfig& config, double n_sigma) const {
    const auto& s = config.backend == Backend::Cpu ? init_cpu : init_gpu;
    return s.estimate(n_sigma);
  }

  /// Noisy sample of an actual execution (what the cluster "observes"):
  /// multiplicative lognormal-ish jitter around the Amdahl surface, clipped
  /// at a small positive floor.
  double sample_inference_time(const HwConfig& config, int batch, double noise_frac,
                               Rng& rng) const {
    const double base = inference_time(config, batch);
    return rng.truncated_normal(base, noise_frac * base, 0.2 * base);
  }

  /// Noisy sample of an initialization (normal around mu with stddev sigma).
  double sample_init_time(const HwConfig& config, Rng& rng) const {
    const auto& s = config.backend == Backend::Cpu ? init_cpu : init_gpu;
    return rng.truncated_normal(s.mu, s.sigma, 0.25 * s.mu);
  }
};

/// Per-invocation execution cost of a function, Eq. (3):
/// C_k = E_k(config, policy) * U(config), where E_k is the billed instance
/// time attributable to one invocation.
inline Dollars execution_cost(double billed_seconds, const HwConfig& config,
                              const Pricing& pricing) {
  return billed_seconds * pricing.per_second(config);
}

}  // namespace smiless::perf
