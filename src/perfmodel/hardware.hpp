#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace smiless::perf {

enum class Backend { Cpu, Gpu };

/// One heterogeneous hardware configuration for a container instance.
/// CPU containers come in 1/2/4/8/16 cores (AWS c6g tiers); GPU containers
/// are MPS slices in 10% units of one device (§VII-A system settings).
struct HwConfig {
  Backend backend = Backend::Cpu;
  int cpu_cores = 1;  ///< valid when backend == Cpu
  int gpu_pct = 0;    ///< 10..100 in steps of 10 when backend == Gpu

  bool operator==(const HwConfig&) const = default;

  /// Amount of the resource the latency model divides by: cores or % GPU.
  double resource_amount() const {
    return backend == Backend::Cpu ? static_cast<double>(cpu_cores)
                                   : static_cast<double>(gpu_pct);
  }

  std::string to_string() const;
};

/// Pricing anchored to the paper's setup: c6g at $0.034 per core-hour,
/// p3.2xlarge at $3.06/hour so a 10% MPS slice costs $0.306/hour.
struct Pricing {
  Dollars cpu_per_core_hour = 0.034;
  Dollars gpu_per_10pct_hour = 0.306;

  /// Unit cost U(*) in dollars per second of instance lifetime.
  Dollars per_second(const HwConfig& c) const {
    if (c.backend == Backend::Cpu)
      return cpu_per_core_hour * c.cpu_cores / kSecondsPerHour;
    return gpu_per_10pct_hour * (c.gpu_pct / 10.0) / kSecondsPerHour;
  }
};

/// The full configuration space C: five CPU tiers then ten GPU slices
/// (15 options, M = 15 in the complexity analysis).
std::vector<HwConfig> default_config_space();

/// CPU-only subset, for the SMIless-Homo ablation.
std::vector<HwConfig> cpu_only_config_space();

/// CPU tiers plus one *full* GPU: the space available to systems without
/// GPU multiplexing. MPS slicing (the 10% units) is part of SMIless'
/// implementation (§VI); the baselines it is compared against allocate
/// whole devices.
std::vector<HwConfig> coarse_config_space();

}  // namespace smiless::perf
