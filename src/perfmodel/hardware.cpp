#include "perfmodel/hardware.hpp"

#include <sstream>

namespace smiless::perf {

std::string HwConfig::to_string() const {
  std::ostringstream os;
  if (backend == Backend::Cpu)
    os << "cpu" << cpu_cores;
  else
    os << "gpu" << gpu_pct << "%";
  return os.str();
}

std::vector<HwConfig> default_config_space() {
  std::vector<HwConfig> out;
  for (int cores : {1, 2, 4, 8, 16}) out.push_back({Backend::Cpu, cores, 0});
  for (int pct = 10; pct <= 100; pct += 10) out.push_back({Backend::Gpu, 0, pct});
  return out;
}

std::vector<HwConfig> coarse_config_space() {
  std::vector<HwConfig> out;
  for (int cores : {1, 2, 4, 8, 16}) out.push_back({Backend::Cpu, cores, 0});
  out.push_back({Backend::Gpu, 0, 100});
  return out;
}

std::vector<HwConfig> cpu_only_config_space() {
  std::vector<HwConfig> out;
  for (int cores : {1, 2, 4, 8, 16}) out.push_back({Backend::Cpu, cores, 0});
  return out;
}

}  // namespace smiless::perf
