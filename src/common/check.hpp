#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace smiless {

/// Error thrown by SMILESS_CHECK / SMILESS_CHECK_MSG on contract violation.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace smiless

/// Precondition / invariant check. Always enabled (the simulator is only as
/// trustworthy as its invariants); throws CheckError so tests can assert on
/// violations instead of aborting the process.
#define SMILESS_CHECK(expr)                                                  \
  do {                                                                       \
    if (!(expr)) ::smiless::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SMILESS_CHECK_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream os_;                                                \
      os_ << msg;                                                            \
      ::smiless::detail::check_failed(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                        \
  } while (0)
