#pragma once

#include <cmath>
#include <cstdint>
#include <random>

#include "common/check.hpp"

namespace smiless {

/// Deterministic random source used everywhere in the simulator.
///
/// Wraps a mersenne-twister seeded explicitly; every component that needs
/// randomness takes an Rng& (or forks a child with fork()) so that whole
/// experiments replay bit-identically from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive an independent child stream; `salt` decorrelates siblings.
  Rng fork(std::uint64_t salt) {
    return Rng(engine_() ^ (salt * 0x9E3779B97F4A7C15ull));
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    SMILESS_CHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    SMILESS_CHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Normal with the given mean/stddev.
  double normal(double mean, double stddev) {
    SMILESS_CHECK(stddev >= 0.0);
    if (stddev == 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Normal truncated below at `lo` (resampled); used for noisy latencies
  /// that must stay positive.
  double truncated_normal(double mean, double stddev, double lo) {
    double v = normal(mean, stddev);
    int guard = 0;
    while (v < lo && guard++ < 64) v = normal(mean, stddev);
    return v < lo ? lo : v;
  }

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate) {
    SMILESS_CHECK(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Poisson count with the given mean.
  int poisson(double mean) {
    SMILESS_CHECK(mean >= 0.0);
    if (mean == 0.0) return 0;
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Bernoulli trial.
  bool bernoulli(double p) {
    SMILESS_CHECK(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace smiless
