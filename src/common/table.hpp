#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace smiless {

/// Minimal fixed-width text table used by the bench harnesses to print the
/// rows/series each paper figure reports.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) {
    SMILESS_CHECK(row.size() == header_.size());
    rows_.push_back(std::move(row));
  }

  /// Format a double with fixed precision — the common cell type.
  static std::string num(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size(); ++c)
        if (r[c].size() > width[c]) width[c] = r[c].size();

    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
      os << '\n';
    };
    line(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c)
      rule += std::string(width[c], '-') + "  ";
    os << rule << '\n';
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smiless
