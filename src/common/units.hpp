#pragma once

namespace smiless {

/// Simulated time, in seconds since experiment start. A plain double keeps
/// arithmetic with latencies/intervals trivial; all public APIs document
/// which quantities are SimTime (absolute) vs durations (relative seconds).
using SimTime = double;

/// Monetary cost in US dollars.
using Dollars = double;

/// Seconds-per-hour conversion used by the pricing model.
inline constexpr double kSecondsPerHour = 3600.0;

/// Unit-conversion factors for telemetry and reports. Raw literals like
/// `1e6` at a call site trip the detlint time-unit rule; these names keep
/// the direction of the conversion visible.
inline constexpr double kMillisPerSecond = 1e3;
inline constexpr double kMicrosPerSecond = 1e6;
inline constexpr double kNanosPerMicro = 1e3;
inline constexpr double kNanosPerMilli = 1e6;
inline constexpr double kNanosPerSecond = 1e9;

}  // namespace smiless
