#pragma once

namespace smiless {

/// Simulated time, in seconds since experiment start. A plain double keeps
/// arithmetic with latencies/intervals trivial; all public APIs document
/// which quantities are SimTime (absolute) vs durations (relative seconds).
using SimTime = double;

/// Monetary cost in US dollars.
using Dollars = double;

/// Seconds-per-hour conversion used by the pricing model.
inline constexpr double kSecondsPerHour = 3600.0;

}  // namespace smiless
