#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace smiless::json {

/// Minimal JSON document model used by the experiment-config layer. Objects
/// preserve insertion order so that dumping a parsed document (or a config
/// built in a fixed code path) is byte-stable — the sweep runner's
/// "parallel == serial" contract compares emitted JSON for exact equality.
///
/// Non-finite numbers (which JSON cannot represent) dump as the strings
/// "inf" / "-inf" / "nan"; the typed getters below convert them back, so an
/// infinite timeout round-trips through a config file.
class Value {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;

  Value() : kind_(Kind::Null) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(int v) : kind_(Kind::Int), int_(v) {}
  Value(long v) : kind_(Kind::Int), int_(v) {}
  Value(long long v) : kind_(Kind::Int), int_(v) {}
  Value(unsigned long long v) : kind_(Kind::Int), int_(static_cast<long long>(v)) {}
  Value(unsigned long v) : kind_(Kind::Int), int_(static_cast<long long>(v)) {}
  Value(double v) : kind_(Kind::Double), double_(v) {}
  Value(const char* s) : kind_(Kind::String), string_(s) {}
  Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::Object;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }

  // --- object interface ----------------------------------------------------

  /// Insert-or-find a member; turns a Null value into an Object.
  Value& operator[](const std::string& key) {
    if (kind_ == Kind::Null) kind_ = Kind::Object;
    require(Kind::Object, "operator[] on non-object");
    for (auto& m : object_)
      if (m.first == key) return m.second;
    object_.emplace_back(key, Value{});
    return object_.back().second;
  }

  const Value* find(const std::string& key) const {
    if (kind_ != Kind::Object) return nullptr;
    for (const auto& m : object_)
      if (m.first == key) return &m.second;
    return nullptr;
  }

  const Object& members() const {
    require(Kind::Object, "members() on non-object");
    return object_;
  }

  // --- array interface -----------------------------------------------------

  void push_back(Value v) {
    if (kind_ == Kind::Null) kind_ = Kind::Array;
    require(Kind::Array, "push_back on non-array");
    array_.push_back(std::move(v));
  }

  const Array& items() const {
    require(Kind::Array, "items() on non-array");
    return array_;
  }

  // --- typed getters (with the "inf"/"nan" string convention) --------------

  bool as_bool() const {
    if (kind_ == Kind::Bool) return bool_;
    if (kind_ == Kind::Int) return int_ != 0;
    throw std::runtime_error("json: expected bool");
  }

  long long as_int() const {
    if (kind_ == Kind::Int) return int_;
    if (kind_ == Kind::Double) return static_cast<long long>(double_);
    throw std::runtime_error("json: expected integer");
  }

  double as_double() const {
    if (kind_ == Kind::Double) return double_;
    if (kind_ == Kind::Int) return static_cast<double>(int_);
    if (kind_ == Kind::String) {
      if (string_ == "inf") return std::numeric_limits<double>::infinity();
      if (string_ == "-inf") return -std::numeric_limits<double>::infinity();
      if (string_ == "nan") return std::numeric_limits<double>::quiet_NaN();
    }
    throw std::runtime_error("json: expected number");
  }

  const std::string& as_string() const {
    if (kind_ != Kind::String) throw std::runtime_error("json: expected string");
    return string_;
  }

  /// Getters for optional object members: the default wins when the key is
  /// absent, so old config files keep loading as the schema grows.
  double get(const std::string& key, double def) const {
    const Value* v = find(key);
    return v == nullptr ? def : v->as_double();
  }
  long long get(const std::string& key, long long def) const {
    const Value* v = find(key);
    return v == nullptr ? def : v->as_int();
  }
  int get(const std::string& key, int def) const {
    return static_cast<int>(get(key, static_cast<long long>(def)));
  }
  bool get(const std::string& key, bool def) const {
    const Value* v = find(key);
    return v == nullptr ? def : v->as_bool();
  }
  std::string get(const std::string& key, const std::string& def) const {
    const Value* v = find(key);
    return v == nullptr ? def : v->as_string();
  }
  std::string get(const std::string& key, const char* def) const {
    return get(key, std::string(def));
  }

  // --- serialization -------------------------------------------------------

  /// Render the document. `indent > 0` pretty-prints; the output for a given
  /// document is byte-stable (object order preserved, shortest round-trip
  /// number formatting).
  std::string dump(int indent = 0) const {
    std::string out;
    write(out, indent, 0);
    return out;
  }

  static Value parse(const std::string& text) {
    Parser p{text, 0};
    Value v = p.parse_value();
    p.skip_ws();
    if (p.pos != text.size()) p.fail("trailing characters");
    return v;
  }

  /// Shortest decimal string that round-trips the double exactly.
  static std::string format_double(double v) {
    if (std::isnan(v)) return "\"nan\"";
    if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
    char buf[40];
    // Integral doubles print as "N.0" — friendlier in config files than the
    // "1.2e+02" a shortest-digits search would pick for 120.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%.1f", v);
      return buf;
    }
    for (int prec = 1; prec <= 17; ++prec) {
      std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
      if (std::strtod(buf, nullptr) == v) break;
    }
    std::string s(buf);
    // Ensure the token reads back as a double-typed value.
    if (s.find_first_of(".eE") == std::string::npos &&
        s.find_first_of("n") == std::string::npos)
      s += ".0";
    return s;
  }

 private:
  void require(Kind k, const char* what) const {
    if (kind_ != k) throw std::runtime_error(std::string("json: ") + what);
  }

  static void write_string(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  void write(std::string& out, int indent, int depth) const {
    const auto newline = [&](int d) {
      if (indent <= 0) return;
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (kind_) {
      case Kind::Null: out += "null"; break;
      case Kind::Bool: out += bool_ ? "true" : "false"; break;
      case Kind::Int: out += std::to_string(int_); break;
      case Kind::Double: out += format_double(double_); break;
      case Kind::String: write_string(out, string_); break;
      case Kind::Array: {
        if (array_.empty()) {
          out += "[]";
          break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
          if (i > 0) out += ',';
          newline(depth + 1);
          array_[i].write(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        if (object_.empty()) {
          out += "{}";
          break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
          if (i > 0) out += ',';
          newline(depth + 1);
          write_string(out, object_[i].first);
          out += indent > 0 ? ": " : ":";
          object_[i].second.write(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
      }
    }
  }

  struct Parser {
    const std::string& text;
    std::size_t pos;

    [[noreturn]] void fail(const std::string& what) const {
      throw std::runtime_error("json parse error at offset " + std::to_string(pos) + ": " +
                               what);
    }

    void skip_ws() {
      while (pos < text.size() &&
             std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
    }

    char peek() {
      skip_ws();
      if (pos >= text.size()) fail("unexpected end of input");
      return text[pos];
    }

    void expect(char c) {
      if (peek() != c) fail(std::string("expected '") + c + "'");
      ++pos;
    }

    bool consume(const char* lit) {
      const std::size_t n = std::strlen(lit);
      if (text.compare(pos, n, lit) != 0) return false;
      pos += n;
      return true;
    }

    Value parse_value() {
      switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': return Value(parse_string());
        case 't':
          if (consume("true")) return Value(true);
          fail("bad literal");
        case 'f':
          if (consume("false")) return Value(false);
          fail("bad literal");
        case 'n':
          if (consume("null")) return Value();
          fail("bad literal");
        default: return parse_number();
      }
    }

    Value parse_object() {
      expect('{');
      Value out = Value::object();
      if (peek() == '}') {
        ++pos;
        return out;
      }
      while (true) {
        if (peek() != '"') fail("expected member name");
        std::string key = parse_string();
        expect(':');
        out[key] = parse_value();
        const char c = peek();
        ++pos;
        if (c == '}') return out;
        if (c != ',') fail("expected ',' or '}'");
      }
    }

    Value parse_array() {
      expect('[');
      Value out = Value::array();
      if (peek() == ']') {
        ++pos;
        return out;
      }
      while (true) {
        out.push_back(parse_value());
        const char c = peek();
        ++pos;
        if (c == ']') return out;
        if (c != ',') fail("expected ',' or ']'");
      }
    }

    std::string parse_string() {
      expect('"');
      std::string out;
      while (pos < text.size()) {
        const char c = text[pos++];
        if (c == '"') return out;
        if (c != '\\') {
          out += c;
          continue;
        }
        if (pos >= text.size()) fail("bad escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) fail("bad \\u escape");
            const unsigned code =
                static_cast<unsigned>(std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16));
            pos += 4;
            // ASCII-only escapes are what we emit; pass others through UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      }
      fail("unterminated string");
    }

    Value parse_number() {
      const std::size_t start = pos;
      bool is_double = false;
      if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
      while (pos < text.size()) {
        const char c = text[pos];
        if (std::isdigit(static_cast<unsigned char>(c))) {
          ++pos;
        } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
          is_double = true;
          ++pos;
        } else {
          break;
        }
      }
      if (pos == start) fail("expected value");
      const std::string tok = text.substr(start, pos - start);
      if (is_double) return Value(std::strtod(tok.c_str(), nullptr));
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') fail("bad number");
      return Value(v);
    }
  };

  Kind kind_;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Read a whole file into a parsed document; throws std::runtime_error with
/// the path on failure.
inline Value load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) throw std::runtime_error("json: cannot read " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return Value::parse(buf.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

/// Write `v.dump(indent)` plus a trailing newline to `path`.
inline void save_file(const Value& v, const std::string& path, int indent = 2) {
  std::ofstream os(path);
  if (!os.good()) throw std::runtime_error("json: cannot write " + path);
  os << v.dump(indent) << "\n";
}

}  // namespace smiless::json
