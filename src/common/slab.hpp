#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

#include "common/check.hpp"

// ASan integration for the slab poison mode: freed slots are marked
// unaddressable so any use-after-free trips a report at the faulting load,
// not at some later corruption. Compiles to nothing outside ASan builds.
#if defined(__SANITIZE_ADDRESS__)
#define SMILESS_SLAB_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SMILESS_SLAB_ASAN 1
#endif
#endif
#ifndef SMILESS_SLAB_ASAN
#define SMILESS_SLAB_ASAN 0
#endif
#if SMILESS_SLAB_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace smiless::common {

/// Lifetime counters of one slab (or recycler). Pure allocation-domain
/// tallies; nothing here feeds back into simulated behaviour.
struct SlabStats {
  std::uint64_t created = 0;   ///< total create()/acquire() calls
  std::uint64_t destroyed = 0; ///< total destroy()/release() calls
  std::uint64_t reused = 0;    ///< creates served from the freelist
  std::uint64_t blocks = 0;    ///< slab blocks carved from the system heap
  std::size_t live = 0;        ///< currently outstanding objects
  std::size_t peak_live = 0;   ///< high-water mark of `live`
};

/// Fixed-size-slot slab allocator: one size class per instantiation, one
/// LIFO freelist, geometrically growing blocks. This is the allocator for
/// the simulator's short-lived hot objects (queued events, batch slices):
/// create/destroy are a freelist push/pop in the steady state, objects of a
/// class pack contiguously (cache locality the general-purpose heap cannot
/// promise), and nothing is ever returned to the system until the slab
/// dies, so the allocation pattern cannot perturb its neighbours.
///
/// Determinism contract: the freelist is strictly LIFO, so for a given
/// sequence of create/destroy calls the slot addresses handed out are a
/// pure function of that sequence. No behaviour may depend on the numeric
/// pointer values regardless (detlint ptr-key rule); the LIFO guarantee
/// exists so allocation itself can never introduce run-to-run variance.
///
/// Debug poison mode (on by default under ASan and in !NDEBUG builds):
/// destroy() fills the slot with kPoisonByte and, under ASan, marks it
/// unaddressable until reuse — a use-after-free faults at the offending
/// access instead of corrupting a recycled object.
///
/// Owner responsibilities: destroy() every live object before the slab is
/// destructed (the slab only reclaims raw memory, it runs no destructors),
/// and never destroy() a pointer the slab did not create.
template <class T>
class Slab {
 public:
  static constexpr unsigned char kPoisonByte = 0xDD;

#if SMILESS_SLAB_ASAN
  static constexpr bool kPoisonDefault = true;
#elif defined(NDEBUG)
  static constexpr bool kPoisonDefault = false;
#else
  static constexpr bool kPoisonDefault = true;
#endif

  explicit Slab(std::size_t first_block_slots = 64, bool poison = kPoisonDefault)
      : next_block_slots_(first_block_slots), poison_(poison) {
    SMILESS_CHECK(first_block_slots > 0);
  }

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  ~Slab() {
    for (Block& b : blocks_) {
#if SMILESS_SLAB_ASAN
      __asan_unpoison_memory_region(b.mem, b.slots * kSlotSize);
#endif
      ::operator delete[](b.mem, std::align_val_t{alignof(T)});
    }
  }

  /// Allocate + construct. Reuses the most recently destroyed slot first
  /// (LIFO), else carves the next slot of the current block, else grows.
  template <class... Args>
  T* create(Args&&... args) {
    void* slot;
    if (!freelist_.empty()) {
      slot = freelist_.back();
      freelist_.pop_back();
#if SMILESS_SLAB_ASAN
      __asan_unpoison_memory_region(slot, kSlotSize);
#endif
      ++stats_.reused;
    } else {
      slot = carve();
    }
    T* obj = ::new (slot) T(std::forward<Args>(args)...);
    ++stats_.created;
    ++stats_.live;
    if (stats_.live > stats_.peak_live) stats_.peak_live = stats_.live;
    return obj;
  }

  /// Destruct + return the slot to the freelist (poisoning it first when
  /// the debug mode is on).
  void destroy(T* obj) {
    SMILESS_CHECK(obj != nullptr);
    obj->~T();
    void* slot = static_cast<void*>(obj);
    if (poison_) {
      std::memset(slot, kPoisonByte, kSlotSize);
#if SMILESS_SLAB_ASAN
      __asan_poison_memory_region(slot, kSlotSize);
#endif
    }
    freelist_.push_back(slot);
    ++stats_.destroyed;
    --stats_.live;
  }

  bool poison() const { return poison_; }
  const SlabStats& stats() const { return stats_; }

 private:
  // A slot must hold a T; rounding the slot to the alignment keeps every
  // slot in a block equally aligned.
  static constexpr std::size_t kSlotSize =
      (sizeof(T) + alignof(T) - 1) / alignof(T) * alignof(T);

  struct Block {
    std::byte* mem = nullptr;
    std::size_t slots = 0;
    std::size_t used = 0;  ///< slots carved so far
  };

  void* carve() {
    if (blocks_.empty() || blocks_.back().used == blocks_.back().slots) {
      Block b;
      b.slots = next_block_slots_;
      b.mem = static_cast<std::byte*>(
          ::operator new[](b.slots * kSlotSize, std::align_val_t{alignof(T)}));
      blocks_.push_back(b);
      ++stats_.blocks;
      // Geometric growth, capped so a huge queue does not over-reserve.
      if (next_block_slots_ < kMaxBlockSlots) next_block_slots_ *= 2;
    }
    Block& b = blocks_.back();
    return b.mem + (b.used++) * kSlotSize;
  }

  static constexpr std::size_t kMaxBlockSlots = 1 << 16;

  std::vector<Block> blocks_;
  std::vector<void*> freelist_;  // LIFO: deterministic reuse order
  std::size_t next_block_slots_;
  bool poison_;
  SlabStats stats_;
};

/// Capacity-preserving recycler for container-valued hot objects (batch
/// slices, in-flight invocation lists): release() clears the container but
/// keeps its heap capacity, acquire() hands the most recently released one
/// back (LIFO, deterministic). In the steady state a serving loop that
/// forms one batch vector per dispatch performs zero heap traffic.
template <class T>
class Recycler {
 public:
  /// `max_pooled` bounds how many idle containers are retained; beyond the
  /// cap, release() lets the container free its memory normally.
  explicit Recycler(std::size_t max_pooled = 1024) : max_pooled_(max_pooled) {}

  T acquire() {
    ++stats_.created;
    ++stats_.live;
    if (stats_.live > stats_.peak_live) stats_.peak_live = stats_.live;
    if (pool_.empty()) return T{};
    T out = std::move(pool_.back());
    pool_.pop_back();
    ++stats_.reused;
    return out;
  }

  void release(T obj) {
    ++stats_.destroyed;
    --stats_.live;
    if (pool_.size() >= max_pooled_) return;
    obj.clear();
    pool_.push_back(std::move(obj));
  }

  std::size_t pooled() const { return pool_.size(); }
  const SlabStats& stats() const { return stats_; }

 private:
  std::vector<T> pool_;
  std::size_t max_pooled_;
  SlabStats stats_;
};

}  // namespace smiless::common
