#pragma once

#include <vector>

#include "common/rng.hpp"
#include "perfmodel/latency_model.hpp"

namespace smiless::profiler {

/// One observed execution sample (what Prometheus would have recorded).
struct LatencySample {
  perf::HwConfig config;
  int batch = 1;
  double latency = 0.0;
};

/// Knobs of the Offline Profiler (§IV-A). Defaults mirror the paper:
/// 10 initialization repeats; 25 CPU samples (batch 2^1..2^5 x cores
/// 2^0..2^4) and 50 GPU samples (10 slices x 5 batch sizes); mu + 3 sigma
/// as the robust initialization estimate.
struct ProfilerOptions {
  int init_repeats = 10;
  double n_sigma = 3.0;
  std::vector<int> batch_sizes = {2, 4, 8, 16, 32};
  std::vector<int> cpu_cores = {1, 2, 4, 8, 16};
  std::vector<int> gpu_pcts = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  double measurement_noise = 0.06;  ///< relative jitter of observed latencies

  /// Refine the linear least-squares fit with Levenberg–Marquardt on the
  /// relative residuals of the full nonlinear (lambda, alpha, beta, gamma)
  /// surface. Rarely moves the answer (the reparameterisation is exact) but
  /// guards against ill-conditioned sample grids.
  bool nonlinear_refine = false;
};

/// Result of profiling one function: the fitted performance model (what the
/// Strategy Optimizer consumes) plus fit-quality metrics.
struct ProfileResult {
  perf::FunctionPerf fitted;
  double smape_cpu = 0.0;  ///< validation SMAPE (%) on fresh CPU samples
  double smape_gpu = 0.0;
  std::vector<LatencySample> cpu_samples;
  std::vector<LatencySample> gpu_samples;
};

/// Fit Eq. (1)/(2) parameters from samples by linear least squares on the
/// reparameterisation latency = a*(B/resource) + b*B + c with a = lambda *
/// alpha, b = lambda*beta, c = gamma (only the products are identifiable
/// from latency observations, so lambda is normalised to 1).
perf::AmdahlParams fit_amdahl(const std::vector<LatencySample>& samples);

/// Levenberg–Marquardt refinement of an existing fit, minimising relative
/// residuals of Eq. (1)/(2) directly in (alpha, beta, gamma) (lambda stays
/// normalised to 1; it is not identifiable from latency observations).
perf::AmdahlParams refine_amdahl(const std::vector<LatencySample>& samples,
                                 const perf::AmdahlParams& initial);

/// The Offline Profiler: runs synthetic executions of a ground-truth
/// function profile, collects timing events, estimates init times as
/// mu + n*sigma, and curve-fits the inference-time models.
class OfflineProfiler {
 public:
  explicit OfflineProfiler(ProfilerOptions options = {}) : options_(options) {}

  ProfileResult profile(const perf::FunctionPerf& truth, Rng& rng) const;

  /// Profile a whole catalog (parallelisable by the caller).
  std::vector<ProfileResult> profile_all(const std::vector<perf::FunctionPerf>& truths,
                                         Rng& rng) const;

  const ProfilerOptions& options() const { return options_; }

 private:
  ProfilerOptions options_;
};

}  // namespace smiless::profiler
