#include "profiler/offline_profiler.hpp"

#include <algorithm>
#include <cmath>

#include "math/levenberg_marquardt.hpp"
#include "math/matrix.hpp"
#include "math/stats.hpp"

namespace smiless::profiler {

perf::AmdahlParams fit_amdahl(const std::vector<LatencySample>& samples) {
  SMILESS_CHECK_MSG(samples.size() >= 3, "need at least 3 samples to fit 3 parameters");
  math::Matrix design(samples.size(), 3);
  std::vector<double> y(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double b = samples[i].batch;
    const double res = samples[i].config.resource_amount();
    // Measurement noise is multiplicative, so weight each equation by
    // 1/latency: otherwise the large-batch samples drown out gamma and the
    // fit extrapolates poorly to batch-1 latencies.
    const double w = 1.0 / std::max(samples[i].latency, 1e-9);
    design(i, 0) = w * b / res;
    design(i, 1) = w * b;
    design(i, 2) = w;
    y[i] = w * samples[i].latency;
  }
  const auto coef = math::solve_least_squares(design, y);
  perf::AmdahlParams p;
  p.lambda = 1.0;
  p.alpha = coef[0];
  p.beta = coef[1];
  p.gamma = coef[2];
  return p;
}

perf::AmdahlParams refine_amdahl(const std::vector<LatencySample>& samples,
                                 const perf::AmdahlParams& initial) {
  auto residuals = [&samples](const std::vector<double>& p) {
    std::vector<double> r(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const double pred =
          samples[i].batch * (p[0] / samples[i].config.resource_amount() + p[1]) + p[2];
      r[i] = (pred - samples[i].latency) / std::max(samples[i].latency, 1e-9);
    }
    return r;
  };
  const auto result = math::levenberg_marquardt(
      residuals, {initial.alpha, initial.beta, initial.gamma});
  perf::AmdahlParams out;
  out.lambda = 1.0;
  out.alpha = result.params[0];
  out.beta = result.params[1];
  out.gamma = result.params[2];
  return out;
}

namespace {

perf::InitStats measure_init(const perf::FunctionPerf& truth, const perf::HwConfig& config,
                             int repeats, Rng& rng) {
  std::vector<double> obs;
  obs.reserve(repeats);
  for (int i = 0; i < repeats; ++i) obs.push_back(truth.sample_init_time(config, rng));
  return {math::mean(obs), math::stddev(obs)};
}

double validation_smape(const perf::FunctionPerf& truth, const perf::AmdahlParams& fitted,
                        const std::vector<LatencySample>& grid, double noise, Rng& rng) {
  std::vector<double> observed, predicted;
  observed.reserve(grid.size());
  predicted.reserve(grid.size());
  for (const auto& s : grid) {
    observed.push_back(truth.sample_inference_time(s.config, s.batch, noise, rng));
    predicted.push_back(fitted.inference_time(s.config.resource_amount(), s.batch));
  }
  return math::smape(observed, predicted);
}

}  // namespace

ProfileResult OfflineProfiler::profile(const perf::FunctionPerf& truth, Rng& rng) const {
  ProfileResult out;
  out.fitted.name = truth.name;

  // Inference-time sampling: 5x5 grid on the CPU backend, 10x|B| on GPU.
  for (int cores : options_.cpu_cores) {
    for (int b : options_.batch_sizes) {
      perf::HwConfig c{perf::Backend::Cpu, cores, 0};
      out.cpu_samples.push_back(
          {c, b, truth.sample_inference_time(c, b, options_.measurement_noise, rng)});
    }
  }
  for (int pct : options_.gpu_pcts) {
    for (int b : options_.batch_sizes) {
      perf::HwConfig c{perf::Backend::Gpu, 0, pct};
      out.gpu_samples.push_back(
          {c, b, truth.sample_inference_time(c, b, options_.measurement_noise, rng)});
    }
  }
  out.fitted.cpu = fit_amdahl(out.cpu_samples);
  out.fitted.gpu = fit_amdahl(out.gpu_samples);
  if (options_.nonlinear_refine) {
    out.fitted.cpu = refine_amdahl(out.cpu_samples, out.fitted.cpu);
    out.fitted.gpu = refine_amdahl(out.gpu_samples, out.fitted.gpu);
  }

  // Initialization: repeat the cold start `init_repeats` times per backend
  // and keep (mu, sigma); consumers apply mu + n*sigma (§IV-A1).
  out.fitted.init_cpu =
      measure_init(truth, {perf::Backend::Cpu, 4, 0}, options_.init_repeats, rng);
  out.fitted.init_gpu =
      measure_init(truth, {perf::Backend::Gpu, 0, 50}, options_.init_repeats, rng);

  // Validate on a fresh noisy grid (Fig. 11b methodology).
  out.smape_cpu = validation_smape(truth, out.fitted.cpu, out.cpu_samples,
                                   options_.measurement_noise, rng);
  out.smape_gpu = validation_smape(truth, out.fitted.gpu, out.gpu_samples,
                                   options_.measurement_noise, rng);
  return out;
}

std::vector<ProfileResult> OfflineProfiler::profile_all(
    const std::vector<perf::FunctionPerf>& truths, Rng& rng) const {
  std::vector<ProfileResult> out;
  out.reserve(truths.size());
  for (const auto& t : truths) out.push_back(profile(t, rng));
  return out;
}

}  // namespace smiless::profiler
