#pragma once

#include "common/json.hpp"
#include "faults/fault_injector.hpp"

namespace smiless::faults {

/// Serialize a FaultSpec. A default spec (all knobs off) serializes to an
/// object whose round-trip reproduces `FaultSpec{}` exactly, preserving the
/// "defaults replay the fault-free trajectory" contract.
json::Value to_json(const FaultSpec& spec);

/// Inverse of to_json; missing keys keep their defaults.
FaultSpec fault_spec_from_json(const json::Value& v);

}  // namespace smiless::faults
