#include "faults/fault_injector.hpp"

#include <cmath>

#include "obs/event_bus.hpp"

namespace smiless::faults {

FaultInjector::FaultInjector(FaultSpec spec, Rng& parent) : spec_(std::move(spec)) {
  SMILESS_CHECK(spec_.init_failure_prob >= 0.0 && spec_.init_failure_prob <= 1.0);
  SMILESS_CHECK(spec_.straggler_prob >= 0.0 && spec_.straggler_prob <= 1.0);
  SMILESS_CHECK(spec_.straggler_factor >= 1.0);
  SMILESS_CHECK(spec_.crash_rate >= 0.0);
  SMILESS_CHECK(spec_.mttr > 0.0);
  if (spec_.any()) rng_.emplace(parent.fork(spec_.salt));
}

bool FaultInjector::sample_init_failure() {
  if (spec_.init_failure_prob <= 0.0) return false;
  if (!rng_->bernoulli(spec_.init_failure_prob)) return false;
  ++stats_.init_failures;
  return true;
}

double FaultInjector::inflate_inference(double latency) {
  if (spec_.straggler_prob <= 0.0) return latency;
  if (!rng_->bernoulli(spec_.straggler_prob)) return latency;
  ++stats_.stragglers;
  if (bus_ != nullptr && engine_ != nullptr)
    bus_->publish({.type = obs::EventType::StragglerInjected,
                   .t = engine_->now(),
                   .value = spec_.straggler_factor});
  return latency * spec_.straggler_factor;
}

void FaultInjector::arm(sim::Engine& engine, cluster::Cluster& cluster) {
  engine_ = &engine;
  for (const auto& c : spec_.crashes) {
    SMILESS_CHECK(c.machine >= 0 && static_cast<std::size_t>(c.machine) < cluster.machine_count());
    SMILESS_CHECK(c.duration > 0.0);
    engine.schedule_at(std::max(c.at, engine.now()),
                       [this, &engine, &cluster, m = c.machine, d = c.duration] {
                         crash_machine(engine, cluster, m, d);
                       });
  }
  if (spec_.crash_rate > 0.0) {
    for (std::size_t m = 0; m < cluster.machine_count(); ++m)
      schedule_next_random_crash(engine, cluster, static_cast<int>(m));
  }
}

void FaultInjector::crash_machine(sim::Engine& engine, cluster::Cluster& cluster, int machine,
                                  double duration) {
  if (!cluster.machine_up(machine)) return;  // overlapping outage: already down
  ++stats_.crashes;
  cluster.mark_down(machine);
  if (!std::isfinite(duration)) return;
  engine.schedule_after(duration, [this, &cluster, machine] {
    if (cluster.machine_up(machine)) return;
    ++stats_.recoveries;
    cluster.mark_up(machine);
  });
}

void FaultInjector::schedule_next_random_crash(sim::Engine& engine, cluster::Cluster& cluster,
                                               int machine) {
  const double wait = rng_->exponential(spec_.crash_rate);
  const double at = engine.now() + wait;
  if (spec_.crash_horizon > 0.0 && at > spec_.crash_horizon) return;
  engine.schedule_after(wait, [this, &engine, &cluster, machine] {
    const double repair = rng_->exponential(1.0 / spec_.mttr);
    crash_machine(engine, cluster, machine, repair);
    // Next crash of this machine is drawn from its recovery point.
    engine.schedule_after(repair, [this, &engine, &cluster, machine] {
      schedule_next_random_crash(engine, cluster, machine);
    });
  });
}

}  // namespace smiless::faults
