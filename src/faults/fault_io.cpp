#include "faults/fault_io.hpp"

namespace smiless::faults {

json::Value to_json(const FaultSpec& spec) {
  json::Value v = json::Value::object();
  v["init_failure_prob"] = spec.init_failure_prob;
  v["straggler_prob"] = spec.straggler_prob;
  v["straggler_factor"] = spec.straggler_factor;
  v["crash_rate"] = spec.crash_rate;
  v["mttr"] = spec.mttr;
  v["crash_horizon"] = spec.crash_horizon;
  json::Value crashes = json::Value::array();
  for (const auto& c : spec.crashes) {
    json::Value e = json::Value::object();
    e["machine"] = c.machine;
    e["at"] = c.at;
    e["duration"] = c.duration;
    crashes.push_back(std::move(e));
  }
  v["crashes"] = std::move(crashes);
  v["salt"] = static_cast<long long>(spec.salt);
  return v;
}

FaultSpec fault_spec_from_json(const json::Value& v) {
  FaultSpec spec;
  spec.init_failure_prob = v.get("init_failure_prob", spec.init_failure_prob);
  spec.straggler_prob = v.get("straggler_prob", spec.straggler_prob);
  spec.straggler_factor = v.get("straggler_factor", spec.straggler_factor);
  spec.crash_rate = v.get("crash_rate", spec.crash_rate);
  spec.mttr = v.get("mttr", spec.mttr);
  spec.crash_horizon = v.get("crash_horizon", spec.crash_horizon);
  if (const json::Value* crashes = v.find("crashes")) {
    for (const auto& e : crashes->items()) {
      ScheduledCrash c;
      c.machine = e.get("machine", c.machine);
      c.at = e.get("at", c.at);
      c.duration = e.get("duration", c.duration);
      spec.crashes.push_back(c);
    }
  }
  spec.salt = static_cast<std::uint64_t>(v.get("salt", static_cast<long long>(spec.salt)));
  return spec;
}

}  // namespace smiless::faults
