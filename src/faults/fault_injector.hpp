#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"

namespace smiless::obs {
class EventBus;
}  // namespace smiless::obs

namespace smiless::faults {

/// One deterministic machine outage: `machine` goes down at sim time `at`
/// and recovers `duration` seconds later (infinity = never recovers).
struct ScheduledCrash {
  int machine = 0;
  double at = 0.0;
  double duration = 30.0;
};

/// Knob set for the failure model. Everything defaults to *off*, so a
/// default-constructed spec reproduces the fault-free simulator exactly
/// (no RNG draws, no scheduled events, no behavioural change).
struct FaultSpec {
  /// Probability that a container initialization fails at the end of its
  /// init period (the container is billed for the attempt and torn down).
  double init_failure_prob = 0.0;

  /// Probability that one inference call is a straggler, and the latency
  /// inflation applied when it is.
  double straggler_prob = 0.0;
  double straggler_factor = 4.0;

  /// Random whole-machine crashes: per-machine crash rate (crashes per
  /// sim-second while up) and mean time to repair (exponential). With
  /// `crash_horizon` > 0 no random crash is scheduled past that time, so
  /// drain periods stay failure-free.
  double crash_rate = 0.0;
  double mttr = 30.0;
  double crash_horizon = 0.0;

  /// Deterministic outages, applied in addition to random crashes.
  std::vector<ScheduledCrash> crashes;

  /// Decorrelates the fault stream from its parent Rng.
  std::uint64_t salt = 0xFA017;

  /// True when any fault path can trigger.
  bool any() const {
    return init_failure_prob > 0.0 || straggler_prob > 0.0 || crash_rate > 0.0 ||
           !crashes.empty();
  }
};

/// Counters of what the injector actually did (distinct from the platform's
/// view of the consequences — see FunctionMetrics).
struct FaultStats {
  long init_failures = 0;  ///< init attempts the injector failed
  long stragglers = 0;     ///< inference calls inflated
  long crashes = 0;        ///< machine-down transitions
  long recoveries = 0;     ///< machine-up transitions
};

/// Deterministic fault source for the whole simulation. All randomness is
/// drawn from a child stream forked off the shared experiment Rng, so a run
/// with faults enabled is exactly as replayable as one without; with every
/// knob at its default the injector consumes no randomness at all and the
/// parent stream is left untouched.
class FaultInjector {
 public:
  /// Forks a child stream from `parent` iff `spec.any()`.
  FaultInjector(FaultSpec spec, Rng& parent);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  bool enabled() const { return spec_.any(); }
  const FaultSpec& spec() const { return spec_; }

  /// Should this container initialization fail? Draws only when the
  /// probability is non-zero.
  bool sample_init_failure();

  /// Apply straggler inflation to a sampled inference latency.
  double inflate_inference(double latency);

  /// Schedule the machine crash/recovery process on the engine. A no-op
  /// when no crash knob is set. Call once, before the simulation runs.
  void arm(sim::Engine& engine, cluster::Cluster& cluster);

  /// Attach an observability sink (non-owning, may be null). Injected
  /// stragglers are published to it; machine transitions are published by
  /// the platform's cluster listener. Call before arm().
  void set_bus(obs::EventBus* bus) { bus_ = bus; }

  const FaultStats& stats() const { return stats_; }

 private:
  void crash_machine(sim::Engine& engine, cluster::Cluster& cluster, int machine,
                     double duration);
  void schedule_next_random_crash(sim::Engine& engine, cluster::Cluster& cluster, int machine);

  FaultSpec spec_;
  std::optional<Rng> rng_;  ///< engaged iff spec_.any()
  FaultStats stats_;
  obs::EventBus* bus_ = nullptr;
  const sim::Engine* engine_ = nullptr;  ///< set by arm(), for event timestamps
};

}  // namespace smiless::faults
