#include "predictor/lstm.hpp"

#include <cmath>

namespace smiless::predictor {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

LstmLayer::LstmLayer(std::size_t input_dim, std::size_t hidden_dim, Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_(4 * hidden_dim, input_dim),
      wh_(4 * hidden_dim, hidden_dim),
      b_(4 * hidden_dim, 0.0) {
  SMILESS_CHECK(input_dim >= 1 && hidden_dim >= 1);
  // Xavier-ish init; forget-gate bias starts positive so early training
  // retains state.
  const double sx = 1.0 / std::sqrt(static_cast<double>(input_dim));
  const double sh = 1.0 / std::sqrt(static_cast<double>(hidden_dim));
  for (std::size_t r = 0; r < 4 * hidden_dim; ++r) {
    for (std::size_t c = 0; c < input_dim; ++c) wx_(r, c) = rng.uniform(-sx, sx);
    for (std::size_t c = 0; c < hidden_dim; ++c) wh_(r, c) = rng.uniform(-sh, sh);
  }
  for (std::size_t h = hidden_dim; h < 2 * hidden_dim; ++h) b_[h] = 1.0;
}

std::vector<double> LstmLayer::forward(const std::vector<std::vector<double>>& sequence) {
  SMILESS_CHECK(!sequence.empty());
  const std::size_t h_dim = hidden_dim_;
  cache_.clear();
  cache_.reserve(sequence.size());
  h0_.assign(h_dim, 0.0);
  c0_.assign(h_dim, 0.0);

  std::vector<double> h = h0_, c = c0_;
  for (const auto& x : sequence) {
    SMILESS_CHECK(x.size() == input_dim_);
    StepCache sc;
    sc.x = x;

    std::vector<double> z(4 * h_dim, 0.0);
    for (std::size_t r = 0; r < 4 * h_dim; ++r) {
      double acc = b_[r];
      for (std::size_t cidx = 0; cidx < input_dim_; ++cidx) acc += wx_(r, cidx) * x[cidx];
      for (std::size_t cidx = 0; cidx < h_dim; ++cidx) acc += wh_(r, cidx) * h[cidx];
      z[r] = acc;
    }
    sc.i.resize(h_dim);
    sc.f.resize(h_dim);
    sc.g.resize(h_dim);
    sc.o.resize(h_dim);
    sc.c.resize(h_dim);
    sc.h.resize(h_dim);
    sc.tanh_c.resize(h_dim);
    for (std::size_t j = 0; j < h_dim; ++j) {
      sc.i[j] = sigmoid(z[j]);
      sc.f[j] = sigmoid(z[h_dim + j]);
      sc.g[j] = std::tanh(z[2 * h_dim + j]);
      sc.o[j] = sigmoid(z[3 * h_dim + j]);
      sc.c[j] = sc.f[j] * c[j] + sc.i[j] * sc.g[j];
      sc.tanh_c[j] = std::tanh(sc.c[j]);
      sc.h[j] = sc.o[j] * sc.tanh_c[j];
    }
    h = sc.h;
    c = sc.c;
    cache_.push_back(std::move(sc));
  }
  return h;
}

LstmGrads LstmLayer::backward(const std::vector<double>& d_h_final) const {
  SMILESS_CHECK_MSG(!cache_.empty(), "backward() before forward()");
  SMILESS_CHECK(d_h_final.size() == hidden_dim_);
  const std::size_t h_dim = hidden_dim_;

  LstmGrads g;
  g.d_wx = math::Matrix(4 * h_dim, input_dim_);
  g.d_wh = math::Matrix(4 * h_dim, h_dim);
  g.d_b.assign(4 * h_dim, 0.0);

  std::vector<double> dh = d_h_final;
  std::vector<double> dc(h_dim, 0.0);

  for (std::size_t t = cache_.size(); t-- > 0;) {
    const StepCache& sc = cache_[t];
    const std::vector<double>& h_prev = t == 0 ? h0_ : cache_[t - 1].h;
    const std::vector<double>& c_prev = t == 0 ? c0_ : cache_[t - 1].c;

    std::vector<double> dz(4 * h_dim, 0.0);
    std::vector<double> dc_prev(h_dim, 0.0);
    for (std::size_t j = 0; j < h_dim; ++j) {
      const double d_o = dh[j] * sc.tanh_c[j];
      const double dc_total = dc[j] + dh[j] * sc.o[j] * (1.0 - sc.tanh_c[j] * sc.tanh_c[j]);
      const double d_i = dc_total * sc.g[j];
      const double d_f = dc_total * c_prev[j];
      const double d_g = dc_total * sc.i[j];
      dz[j] = d_i * sc.i[j] * (1.0 - sc.i[j]);
      dz[h_dim + j] = d_f * sc.f[j] * (1.0 - sc.f[j]);
      dz[2 * h_dim + j] = d_g * (1.0 - sc.g[j] * sc.g[j]);
      dz[3 * h_dim + j] = d_o * sc.o[j] * (1.0 - sc.o[j]);
      dc_prev[j] = dc_total * sc.f[j];
    }

    for (std::size_t r = 0; r < 4 * h_dim; ++r) {
      if (dz[r] == 0.0) continue;
      for (std::size_t cidx = 0; cidx < input_dim_; ++cidx)
        g.d_wx(r, cidx) += dz[r] * sc.x[cidx];
      for (std::size_t cidx = 0; cidx < h_dim; ++cidx)
        g.d_wh(r, cidx) += dz[r] * h_prev[cidx];
      g.d_b[r] += dz[r];
    }

    std::vector<double> dh_prev(h_dim, 0.0);
    for (std::size_t r = 0; r < 4 * h_dim; ++r) {
      if (dz[r] == 0.0) continue;
      for (std::size_t cidx = 0; cidx < h_dim; ++cidx) dh_prev[cidx] += wh_(r, cidx) * dz[r];
    }
    dh = std::move(dh_prev);
    dc = std::move(dc_prev);
  }
  return g;
}

std::vector<double*> LstmLayer::parameters() {
  std::vector<double*> out;
  out.reserve(parameter_count());
  for (std::size_t r = 0; r < 4 * hidden_dim_; ++r)
    for (std::size_t c = 0; c < input_dim_; ++c) out.push_back(&wx_(r, c));
  for (std::size_t r = 0; r < 4 * hidden_dim_; ++r)
    for (std::size_t c = 0; c < hidden_dim_; ++c) out.push_back(&wh_(r, c));
  for (auto& v : b_) out.push_back(&v);
  return out;
}

void LstmLayer::accumulate(std::vector<double>& flat, const LstmGrads& grads) {
  for (std::size_t r = 0; r < grads.d_wx.rows(); ++r)
    for (std::size_t c = 0; c < grads.d_wx.cols(); ++c) flat.push_back(grads.d_wx(r, c));
  for (std::size_t r = 0; r < grads.d_wh.rows(); ++r)
    for (std::size_t c = 0; c < grads.d_wh.cols(); ++c) flat.push_back(grads.d_wh(r, c));
  for (double v : grads.d_b) flat.push_back(v);
}

std::size_t LstmLayer::parameter_count() const {
  return 4 * hidden_dim_ * (input_dim_ + hidden_dim_ + 1);
}

Adam::Adam(std::size_t n, double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), m_(n, 0.0), v_(n, 0.0) {}

void Adam::step(std::vector<double*>& params, const std::vector<double>& grads) {
  SMILESS_CHECK(params.size() == grads.size() && params.size() == m_.size());
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    *params[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

}  // namespace smiless::predictor
