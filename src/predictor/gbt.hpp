#pragma once

#include <memory>
#include <vector>

#include "predictor/series_predictor.hpp"

namespace smiless::predictor {

/// Gradient-boosted regression trees over lag features — the XGBoost
/// stand-in of Fig. 12. Squared-error boosting with depth-limited exact
/// greedy splits.
class GbtPredictor : public SeriesPredictor {
 public:
  struct Options {
    int num_trees = 60;
    int max_depth = 3;
    double learning_rate = 0.15;
    int num_lags = 12;       ///< feature vector = the last num_lags values
    int min_leaf_size = 4;
  };

  explicit GbtPredictor(Options options);
  GbtPredictor() : GbtPredictor(Options{}) {}
  ~GbtPredictor() override;

  std::string name() const override { return "XGBoost"; }
  void fit(std::span<const double> series) override;
  double predict_next(std::span<const double> recent) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace smiless::predictor
