#include "predictor/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace smiless::predictor {

namespace {

struct TreeNode {
  int feature = -1;          ///< -1 marks a leaf
  double threshold = 0.0;
  double value = 0.0;        ///< leaf prediction
  int left = -1, right = -1; ///< child indices
};

struct Tree {
  std::vector<TreeNode> nodes;

  double predict(const std::vector<double>& x) const {
    int n = 0;
    while (nodes[n].feature >= 0)
      n = x[nodes[n].feature] <= nodes[n].threshold ? nodes[n].left : nodes[n].right;
    return nodes[n].value;
  }
};

double mean_of(const std::vector<double>& y, const std::vector<int>& idx) {
  double s = 0.0;
  for (int i : idx) s += y[i];
  return idx.empty() ? 0.0 : s / static_cast<double>(idx.size());
}

/// Build one regression tree on (xs, residuals) restricted to `idx`.
int build_node(Tree& tree, const std::vector<std::vector<double>>& xs,
               const std::vector<double>& y, std::vector<int> idx, int depth, int max_depth,
               int min_leaf) {
  const int node_id = static_cast<int>(tree.nodes.size());
  tree.nodes.push_back({});
  tree.nodes[node_id].value = mean_of(y, idx);
  if (depth >= max_depth || static_cast<int>(idx.size()) < 2 * min_leaf) return node_id;

  const std::size_t n_features = xs[0].size();
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  double total_sum = 0.0;
  for (int i : idx) total_sum += y[i];
  const double total_n = static_cast<double>(idx.size());
  const double parent_score = total_sum * total_sum / total_n;

  for (std::size_t f = 0; f < n_features; ++f) {
    std::sort(idx.begin(), idx.end(),
              [&](int a, int b) { return xs[a][f] < xs[b][f]; });
    double left_sum = 0.0;
    for (std::size_t k = 0; k + 1 < idx.size(); ++k) {
      left_sum += y[idx[k]];
      const auto left_n = static_cast<double>(k + 1);
      const double right_sum = total_sum - left_sum;
      const double right_n = total_n - left_n;
      if (left_n < min_leaf || right_n < min_leaf) continue;
      if (xs[idx[k]][f] == xs[idx[k + 1]][f]) continue;  // no valid threshold
      const double gain =
          left_sum * left_sum / left_n + right_sum * right_sum / right_n - parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (xs[idx[k]][f] + xs[idx[k + 1]][f]);
      }
    }
  }
  if (best_feature < 0) return node_id;

  std::vector<int> left_idx, right_idx;
  for (int i : idx) {
    if (xs[i][best_feature] <= best_threshold)
      left_idx.push_back(i);
    else
      right_idx.push_back(i);
  }
  tree.nodes[node_id].feature = best_feature;
  tree.nodes[node_id].threshold = best_threshold;
  const int l = build_node(tree, xs, y, std::move(left_idx), depth + 1, max_depth, min_leaf);
  const int r = build_node(tree, xs, y, std::move(right_idx), depth + 1, max_depth, min_leaf);
  tree.nodes[node_id].left = l;
  tree.nodes[node_id].right = r;
  return node_id;
}

}  // namespace

struct GbtPredictor::Impl {
  Options opts;
  double base = 0.0;
  std::vector<Tree> trees;
  bool trained = false;

  std::vector<double> features(std::span<const double> s, std::size_t t) const {
    // x = (s[t-1], ..., s[t-num_lags]); left-pad with the first value.
    std::vector<double> x(opts.num_lags);
    for (int lag = 1; lag <= opts.num_lags; ++lag) {
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(t) - lag;
      x[lag - 1] = idx >= 0 ? s[static_cast<std::size_t>(idx)] : s.front();
    }
    return x;
  }

  double predict_features(const std::vector<double>& x) const {
    double y = base;
    for (const auto& t : trees) y += opts.learning_rate * t.predict(x);
    return y;
  }
};

GbtPredictor::GbtPredictor(Options options) : impl_(std::make_unique<Impl>()) {
  SMILESS_CHECK(options.num_trees >= 1 && options.max_depth >= 1 && options.num_lags >= 1);
  impl_->opts = options;
}

GbtPredictor::~GbtPredictor() = default;

void GbtPredictor::fit(std::span<const double> series) {
  auto& im = *impl_;
  im.trees.clear();
  im.trained = false;
  const auto lags = static_cast<std::size_t>(im.opts.num_lags);
  if (series.size() < lags + 4) return;

  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (std::size_t t = lags; t < series.size(); ++t) {
    xs.push_back(im.features(series, t));
    ys.push_back(series[t]);
  }

  double s = 0.0;
  for (double v : ys) s += v;
  im.base = s / static_cast<double>(ys.size());

  std::vector<double> residual(ys.size());
  std::vector<double> pred(ys.size(), im.base);
  std::vector<int> all_idx(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) all_idx[i] = static_cast<int>(i);

  for (int round = 0; round < im.opts.num_trees; ++round) {
    for (std::size_t i = 0; i < ys.size(); ++i) residual[i] = ys[i] - pred[i];
    Tree tree;
    build_node(tree, xs, residual, all_idx, 0, im.opts.max_depth, im.opts.min_leaf_size);
    for (std::size_t i = 0; i < ys.size(); ++i)
      pred[i] += im.opts.learning_rate * tree.predict(xs[i]);
    im.trees.push_back(std::move(tree));
  }
  im.trained = true;
}

double GbtPredictor::predict_next(std::span<const double> recent) const {
  if (recent.empty()) return 0.0;
  if (!impl_->trained) return recent.back();
  const auto x = impl_->features(recent, recent.size());
  return std::max(0.0, impl_->predict_features(x));
}

}  // namespace smiless::predictor
