#pragma once

#include <span>
#include <string>

namespace smiless::predictor {

/// Common interface of the one-step-ahead time-series predictors compared in
/// Fig. 12: SMIless' LSTM, plus ARIMA, FIP (Fourier) and gradient-boosted
/// trees (the XGBoost stand-in).
class SeriesPredictor {
 public:
  virtual ~SeriesPredictor() = default;

  virtual std::string name() const = 0;

  /// Train on a historical series (per-window counts or inter-arrivals).
  virtual void fit(std::span<const double> series) = 0;

  /// Predict the next value given the most recent history (the tail of the
  /// live series; implementations use as much of it as they need).
  virtual double predict_next(std::span<const double> recent) const = 0;
};

}  // namespace smiless::predictor
