#include "predictor/lstm_regressor.hpp"

#include <algorithm>
#include <cmath>

#include "math/stats.hpp"

namespace smiless::predictor {

namespace {

struct Norm {
  double mean = 0.0;
  double std = 1.0;
  void fit(std::span<const double> xs) {
    mean = math::mean(xs);
    std = math::stddev(xs);
    if (std < 1e-9) std = 1.0;
  }
  double fwd(double x) const { return (x - mean) / std; }
  double inv(double z) const { return z * std + mean; }
};

/// Build (window, next-value) training pairs from a series.
void make_pairs(std::span<const double> s, std::size_t len,
                std::vector<std::size_t>& starts) {
  starts.clear();
  if (s.size() <= len) return;
  for (std::size_t t = len; t < s.size(); ++t) starts.push_back(t - len);
}

std::vector<std::vector<double>> window_of(std::span<const double> s, std::size_t start,
                                           std::size_t len, const Norm& norm) {
  std::vector<std::vector<double>> seq(len);
  for (std::size_t i = 0; i < len; ++i) seq[i] = {norm.fwd(s[start + i])};
  return seq;
}

}  // namespace

// ---------------------------------------------------------------------------
// Single-input regressor
// ---------------------------------------------------------------------------

struct LstmRegressor::Impl {
  LstmOptions opts;
  Rng rng;
  LstmLayer lstm;
  std::vector<double> head_w;
  double head_b = 0.0;
  Norm norm;
  bool trained = false;

  explicit Impl(const LstmOptions& o)
      : opts(o), rng(o.seed), lstm(1, o.hidden, rng), head_w(o.hidden, 0.0) {
    for (auto& w : head_w) w = rng.uniform(-0.3, 0.3);
  }

  double forward_window(std::span<const double> s, std::size_t start) {
    const auto h = lstm.forward(window_of(s, start, opts.seq_len, norm));
    double y = head_b;
    for (std::size_t j = 0; j < head_w.size(); ++j) y += head_w[j] * h[j];
    return y;
  }

  void train(std::span<const double> series) {
    norm.fit(series);
    std::vector<std::size_t> starts;
    make_pairs(series, opts.seq_len, starts);
    if (starts.empty()) {
      trained = false;
      return;
    }

    auto params = lstm.parameters();
    for (auto& w : head_w) params.push_back(&w);
    params.push_back(&head_b);
    Adam adam(params.size(), opts.learning_rate);

    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
      std::shuffle(starts.begin(), starts.end(), rng.engine());
      for (std::size_t start : starts) {
        const auto seq = window_of(series, start, opts.seq_len, norm);
        const auto h = lstm.forward(seq);
        double y = head_b;
        for (std::size_t j = 0; j < head_w.size(); ++j) y += head_w[j] * h[j];
        const double target = norm.fwd(series[start + opts.seq_len]);
        const double err = y - target;
        const double w = err > 0.0 ? opts.over_weight : opts.under_weight;
        const double dy = 2.0 * w * err;

        std::vector<double> dh(opts.hidden);
        for (std::size_t j = 0; j < opts.hidden; ++j) dh[j] = dy * head_w[j];
        const LstmGrads grads = lstm.backward(dh);

        std::vector<double> flat;
        flat.reserve(params.size());
        LstmLayer::accumulate(flat, grads);
        for (std::size_t j = 0; j < opts.hidden; ++j) flat.push_back(dy * h[j]);
        flat.push_back(dy);
        adam.step(params, flat);
      }
    }
    trained = true;
  }
};

LstmRegressor::LstmRegressor(LstmOptions options) : impl_(std::make_unique<Impl>(options)) {}
LstmRegressor::~LstmRegressor() = default;

void LstmRegressor::fit(std::span<const double> series) { impl_->train(series); }

double LstmRegressor::predict_next(std::span<const double> recent) const {
  if (!impl_->trained || recent.empty()) return recent.empty() ? 0.0 : recent.back();
  const std::size_t len = impl_->opts.seq_len;
  // Pad on the left with the first value when history is short.
  std::vector<double> tail(len);
  for (std::size_t i = 0; i < len; ++i) {
    const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(recent.size()) -
                               static_cast<std::ptrdiff_t>(len) + static_cast<std::ptrdiff_t>(i);
    tail[i] = idx >= 0 ? recent[static_cast<std::size_t>(idx)] : recent.front();
  }
  const double z = impl_->forward_window(tail, 0);
  return std::max(0.0, impl_->norm.inv(z));
}

// ---------------------------------------------------------------------------
// Dual-input regressor
// ---------------------------------------------------------------------------

struct DualLstmRegressor::Impl {
  LstmOptions opts;
  Rng rng;
  LstmLayer lstm_a;  // primary (inter-arrival) branch
  LstmLayer lstm_b;  // auxiliary (invocation count) branch
  std::vector<double> head_w;  // over tanh(concat(h_a, h_b))
  double head_b = 0.0;
  Norm norm_a, norm_b;
  bool trained = false;

  explicit Impl(const LstmOptions& o)
      : opts(o),
        rng(o.seed),
        lstm_a(1, o.hidden, rng),
        lstm_b(1, o.hidden, rng),
        head_w(2 * o.hidden, 0.0) {
    for (auto& w : head_w) w = rng.uniform(-0.3, 0.3);
  }

  double forward(const std::vector<std::vector<double>>& sa,
                 const std::vector<std::vector<double>>& sb, std::vector<double>* merged_out) {
    const auto ha = lstm_a.forward(sa);
    const auto hb = lstm_b.forward(sb);
    std::vector<double> merged(2 * opts.hidden);
    for (std::size_t j = 0; j < opts.hidden; ++j) {
      merged[j] = std::tanh(ha[j]);
      merged[opts.hidden + j] = std::tanh(hb[j]);
    }
    double y = head_b;
    for (std::size_t j = 0; j < merged.size(); ++j) y += head_w[j] * merged[j];
    if (merged_out) *merged_out = std::move(merged);
    return y;
  }

  void train(std::span<const double> a, std::span<const double> b) {
    SMILESS_CHECK(a.size() == b.size());
    norm_a.fit(a);
    norm_b.fit(b);
    std::vector<std::size_t> starts;
    make_pairs(a, opts.seq_len, starts);
    if (starts.empty()) {
      trained = false;
      return;
    }

    auto params = lstm_a.parameters();
    for (double* p : lstm_b.parameters()) params.push_back(p);
    for (auto& w : head_w) params.push_back(&w);
    params.push_back(&head_b);
    Adam adam(params.size(), opts.learning_rate);

    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
      std::shuffle(starts.begin(), starts.end(), rng.engine());
      for (std::size_t start : starts) {
        const auto sa = window_of(a, start, opts.seq_len, norm_a);
        const auto sb = window_of(b, start, opts.seq_len, norm_b);
        std::vector<double> merged;
        const double y = forward(sa, sb, &merged);
        const double target = norm_a.fwd(a[start + opts.seq_len]);
        const double err = y - target;
        const double w = err > 0.0 ? opts.over_weight : opts.under_weight;
        const double dy = 2.0 * w * err;

        // Back through the head and tanh merge into each branch.
        std::vector<double> dha(opts.hidden), dhb(opts.hidden);
        for (std::size_t j = 0; j < opts.hidden; ++j) {
          dha[j] = dy * head_w[j] * (1.0 - merged[j] * merged[j]);
          dhb[j] = dy * head_w[opts.hidden + j] *
                   (1.0 - merged[opts.hidden + j] * merged[opts.hidden + j]);
        }
        const LstmGrads ga = lstm_a.backward(dha);
        const LstmGrads gb = lstm_b.backward(dhb);

        std::vector<double> flat;
        flat.reserve(params.size());
        LstmLayer::accumulate(flat, ga);
        LstmLayer::accumulate(flat, gb);
        for (std::size_t j = 0; j < merged.size(); ++j) flat.push_back(dy * merged[j]);
        flat.push_back(dy);
        adam.step(params, flat);
      }
    }
    trained = true;
  }
};

DualLstmRegressor::DualLstmRegressor(LstmOptions options)
    : impl_(std::make_unique<Impl>(options)) {}
DualLstmRegressor::~DualLstmRegressor() = default;

void DualLstmRegressor::fit(std::span<const double> primary, std::span<const double> auxiliary) {
  impl_->train(primary, auxiliary);
}

double DualLstmRegressor::predict_next(std::span<const double> recent_primary,
                                       std::span<const double> recent_auxiliary) const {
  if (!impl_->trained || recent_primary.empty())
    return recent_primary.empty() ? 0.0 : recent_primary.back();
  const std::size_t len = impl_->opts.seq_len;
  auto tail_of = [len](std::span<const double> s) {
    std::vector<double> tail(len);
    for (std::size_t i = 0; i < len; ++i) {
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(s.size()) -
                                 static_cast<std::ptrdiff_t>(len) +
                                 static_cast<std::ptrdiff_t>(i);
      tail[i] = idx >= 0 ? s[static_cast<std::size_t>(idx)] : s.front();
    }
    return tail;
  };
  const auto ta = tail_of(recent_primary);
  const auto tb = tail_of(recent_auxiliary.empty() ? recent_primary : recent_auxiliary);

  std::vector<std::vector<double>> sa(len), sb(len);
  for (std::size_t i = 0; i < len; ++i) {
    sa[i] = {impl_->norm_a.fwd(ta[i])};
    sb[i] = {impl_->norm_b.fwd(tb[i])};
  }
  const double z = const_cast<Impl&>(*impl_).forward(sa, sb, nullptr);
  return std::max(0.0, impl_->norm_a.inv(z));
}

}  // namespace smiless::predictor
