#pragma once

#include <vector>

#include "common/rng.hpp"
#include "math/matrix.hpp"

namespace smiless::predictor {

/// Gradients of one LstmLayer (same shapes as the parameters).
struct LstmGrads {
  math::Matrix d_wx, d_wh;
  std::vector<double> d_b;
};

/// A single LSTM layer implemented from scratch: forward over a sequence,
/// full backpropagation-through-time, parameters updated externally (Adam).
/// Gate layout in the stacked weight matrices: rows [0,H) input gate,
/// [H,2H) forget, [2H,3H) cell candidate, [3H,4H) output.
class LstmLayer {
 public:
  LstmLayer(std::size_t input_dim, std::size_t hidden_dim, Rng& rng);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

  /// Run the layer over a sequence (each element an input vector of
  /// input_dim). Returns the final hidden state; caches activations for
  /// backward().
  std::vector<double> forward(const std::vector<std::vector<double>>& sequence);

  /// BPTT given the loss gradient w.r.t. the final hidden state. Returns
  /// parameter gradients; must follow a forward() on the same sequence.
  LstmGrads backward(const std::vector<double>& d_h_final) const;

  /// Flattened parameter access for the optimizer: (wx, wh, b) in order.
  std::vector<double*> parameters();
  static void accumulate(std::vector<double>& flat, const LstmGrads& grads);
  std::size_t parameter_count() const;

  math::Matrix& wx() { return wx_; }
  math::Matrix& wh() { return wh_; }
  std::vector<double>& bias() { return b_; }

 private:
  std::size_t input_dim_;
  std::size_t hidden_dim_;
  math::Matrix wx_;  // 4H x D
  math::Matrix wh_;  // 4H x H
  std::vector<double> b_;

  // Forward cache.
  struct StepCache {
    std::vector<double> x, i, f, g, o, c, h, tanh_c;
  };
  std::vector<StepCache> cache_;
  std::vector<double> h0_, c0_;
};

/// Adam optimizer over a flat parameter vector.
class Adam {
 public:
  Adam(std::size_t n, double lr = 1e-2, double beta1 = 0.9, double beta2 = 0.999,
       double eps = 1e-8);

  /// Apply one update: params[i] -= step computed from grads[i].
  void step(std::vector<double*>& params, const std::vector<double>& grads);

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<double> m_, v_;
};

}  // namespace smiless::predictor
