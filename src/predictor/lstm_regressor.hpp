#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "predictor/lstm.hpp"
#include "predictor/series_predictor.hpp"

namespace smiless::predictor {

/// Training hyperparameters shared by the LSTM predictors. The paper uses
/// 30 hidden units (invocation count) and 128 (inter-arrival); defaults here
/// are scaled down so training completes in seconds on CPU while preserving
/// the architecture.
struct LstmOptions {
  std::size_t hidden = 16;
  std::size_t seq_len = 16;
  int epochs = 8;
  double learning_rate = 5e-3;
  /// Asymmetric loss weights (error = pred - truth). Overestimating
  /// inter-arrival times causes late pre-warms and SLA violations, so
  /// over_weight > under_weight for that predictor.
  double over_weight = 1.0;
  double under_weight = 1.0;
  std::uint64_t seed = 7;
};

/// Single-input LSTM regressor (the "SMIless-S" configuration of §VII-C2
/// when used for inter-arrival times).
class LstmRegressor : public SeriesPredictor {
 public:
  explicit LstmRegressor(LstmOptions options = {});
  ~LstmRegressor() override;

  std::string name() const override { return "LSTM"; }
  void fit(std::span<const double> series) override;
  double predict_next(std::span<const double> recent) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Dual-input LSTM regressor: one LSTM module consumes the inter-arrival
/// series, a second consumes the aligned invocation-count series; their
/// final hidden states are merged, passed through an activation and a
/// linear layer (§IV-B2). This is SMIless' Inter-arrival Time Predictor.
class DualLstmRegressor {
 public:
  explicit DualLstmRegressor(LstmOptions options = {});
  ~DualLstmRegressor();

  /// `primary` is the prediction target series (inter-arrival times);
  /// `auxiliary` must be aligned index-for-index (invocation counts in the
  /// windows preceding each gap).
  void fit(std::span<const double> primary, std::span<const double> auxiliary);
  double predict_next(std::span<const double> recent_primary,
                      std::span<const double> recent_auxiliary) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace smiless::predictor
