#pragma once

#include <memory>
#include <span>

#include "predictor/lstm_regressor.hpp"

namespace smiless::predictor {

/// SMIless' Invocation Predictor (§IV-B1): an LSTM classifier over buckets
/// of the invocation count. Predicting the *upper bound* of the chosen
/// bucket (plus a small compensation margin) biases against underestimation,
/// which is what causes SLA violations.
class InvocationClassifier {
 public:
  struct Options {
    LstmOptions lstm;       ///< backbone hyperparameters
    int bucket_size = 2;    ///< == minimum batch size of the app's functions
    int max_buckets = 16;   ///< counts above bucket_size*max_buckets clip
    double compensation = 0.03;  ///< §VII-C2: +3% added to the prediction
  };

  InvocationClassifier() : InvocationClassifier(Options{}) {}
  explicit InvocationClassifier(Options options);
  ~InvocationClassifier();

  /// Train on a per-window invocation-count series.
  void fit(std::span<const double> counts);

  /// Predicted upper bound for the next window's invocation count.
  double predict_next(std::span<const double> recent) const;

  /// Raw class (bucket index) prediction, before the upper-bound mapping.
  int predict_bucket(std::span<const double> recent) const;

  const Options& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace smiless::predictor
