#pragma once

#include <vector>

#include "predictor/series_predictor.hpp"

namespace smiless::predictor {

/// ARIMA(p, d, 0): difference the series d times, fit an AR(p) model by
/// ordinary least squares, forecast one step, then integrate back. The
/// widely-adopted time-series baseline of Fig. 12.
class ArimaPredictor : public SeriesPredictor {
 public:
  explicit ArimaPredictor(int p = 4, int d = 1);

  std::string name() const override { return "ARIMA"; }
  void fit(std::span<const double> series) override;
  double predict_next(std::span<const double> recent) const override;

 private:
  int p_;
  int d_;
  std::vector<double> coef_;  // AR coefficients (+ intercept at the back)
  double drift_ = 0.0;        // fallback slope when the AR fit is degenerate
  bool trained_ = false;
};

/// FIP: the Fourier-transform-based predictor used by IceBreaker. Keeps the
/// top-k harmonics of the training window and extrapolates the periodic
/// reconstruction one step ahead.
class FipPredictor : public SeriesPredictor {
 public:
  explicit FipPredictor(std::size_t top_k = 6, std::size_t fit_window = 256);

  std::string name() const override { return "FIP"; }
  void fit(std::span<const double> series) override;
  double predict_next(std::span<const double> recent) const override;

 private:
  std::size_t top_k_;
  std::size_t fit_window_;
};

/// Last-observation predictor; the trivial floor every learned model must
/// beat.
class NaivePredictor : public SeriesPredictor {
 public:
  std::string name() const override { return "Naive"; }
  void fit(std::span<const double>) override {}
  double predict_next(std::span<const double> recent) const override {
    return recent.empty() ? 0.0 : recent.back();
  }
};

/// Trailing-mean predictor over a fixed horizon.
class MovingAveragePredictor : public SeriesPredictor {
 public:
  explicit MovingAveragePredictor(std::size_t horizon = 16) : horizon_(horizon) {}
  std::string name() const override { return "MovingAvg"; }
  void fit(std::span<const double>) override {}
  double predict_next(std::span<const double> recent) const override;

 private:
  std::size_t horizon_;
};

}  // namespace smiless::predictor
