#include "predictor/invocation_classifier.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "math/stats.hpp"
#include "predictor/lstm.hpp"

namespace smiless::predictor {

struct InvocationClassifier::Impl {
  Options opts;
  Rng rng;
  LstmLayer lstm;
  math::Matrix head_w;  // K x H
  std::vector<double> head_b;
  int classes = 2;
  double norm_mean = 0.0, norm_std = 1.0;
  bool trained = false;

  explicit Impl(const Options& o)
      : opts(o),
        rng(o.lstm.seed),
        lstm(1, o.lstm.hidden, rng),
        head_w(o.max_buckets, o.lstm.hidden),
        head_b(o.max_buckets, 0.0) {
    SMILESS_CHECK(o.bucket_size >= 1 && o.max_buckets >= 2);
    for (std::size_t r = 0; r < head_w.rows(); ++r)
      for (std::size_t c = 0; c < head_w.cols(); ++c) head_w(r, c) = rng.uniform(-0.3, 0.3);
  }

  int bucket_of(double count) const {
    const int b = static_cast<int>(count) / opts.bucket_size;
    return std::min(b, classes - 1);
  }

  std::vector<std::vector<double>> window(std::span<const double> s, std::size_t start) const {
    std::vector<std::vector<double>> seq(opts.lstm.seq_len);
    for (std::size_t i = 0; i < opts.lstm.seq_len; ++i)
      seq[i] = {(s[start + i] - norm_mean) / norm_std};
    return seq;
  }

  std::vector<double> logits(const std::vector<double>& h) const {
    std::vector<double> z(classes, 0.0);
    for (int k = 0; k < classes; ++k) {
      double acc = head_b[k];
      for (std::size_t j = 0; j < h.size(); ++j) acc += head_w(k, j) * h[j];
      z[k] = acc;
    }
    return z;
  }

  static std::vector<double> softmax(std::vector<double> z) {
    const double m = *std::max_element(z.begin(), z.end());
    double sum = 0.0;
    for (auto& v : z) {
      v = std::exp(v - m);
      sum += v;
    }
    for (auto& v : z) v /= sum;
    return z;
  }

  void train(std::span<const double> counts) {
    if (counts.size() <= opts.lstm.seq_len + 1) {
      trained = false;
      return;
    }
    norm_mean = math::mean(counts);
    norm_std = std::max(1e-9, math::stddev(counts));

    // Class count: enough buckets to cover the observed maximum.
    double max_c = 0.0;
    for (double c : counts) max_c = std::max(max_c, c);
    classes = std::clamp(static_cast<int>(max_c) / opts.bucket_size + 1, 2, opts.max_buckets);

    std::vector<std::size_t> starts;
    for (std::size_t t = opts.lstm.seq_len; t < counts.size(); ++t)
      starts.push_back(t - opts.lstm.seq_len);

    auto params = lstm.parameters();
    for (int k = 0; k < classes; ++k)
      for (std::size_t j = 0; j < head_w.cols(); ++j) params.push_back(&head_w(k, j));
    for (int k = 0; k < classes; ++k) params.push_back(&head_b[k]);
    Adam adam(params.size(), opts.lstm.learning_rate);

    for (int epoch = 0; epoch < opts.lstm.epochs; ++epoch) {
      std::shuffle(starts.begin(), starts.end(), rng.engine());
      for (std::size_t start : starts) {
        const auto h = lstm.forward(window(counts, start));
        const auto p = softmax(logits(h));
        const int target = bucket_of(counts[start + opts.lstm.seq_len]);

        // Cross-entropy gradient dz_k = p_k - [k == target].
        std::vector<double> dz(classes);
        for (int k = 0; k < classes; ++k) dz[k] = p[k] - (k == target ? 1.0 : 0.0);

        std::vector<double> dh(opts.lstm.hidden, 0.0);
        for (int k = 0; k < classes; ++k)
          for (std::size_t j = 0; j < dh.size(); ++j) dh[j] += head_w(k, j) * dz[k];
        const LstmGrads grads = lstm.backward(dh);

        std::vector<double> flat;
        flat.reserve(params.size());
        LstmLayer::accumulate(flat, grads);
        for (int k = 0; k < classes; ++k)
          for (std::size_t j = 0; j < head_w.cols(); ++j) flat.push_back(dz[k] * h[j]);
        for (int k = 0; k < classes; ++k) flat.push_back(dz[k]);
        adam.step(params, flat);
      }
    }
    trained = true;
  }

  int classify(std::span<const double> recent) const {
    if (!trained || recent.empty()) return 0;
    std::vector<double> tail(opts.lstm.seq_len);
    for (std::size_t i = 0; i < opts.lstm.seq_len; ++i) {
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(recent.size()) -
                                 static_cast<std::ptrdiff_t>(opts.lstm.seq_len) +
                                 static_cast<std::ptrdiff_t>(i);
      tail[i] = idx >= 0 ? recent[static_cast<std::size_t>(idx)] : recent.front();
    }
    auto* self = const_cast<Impl*>(this);
    const auto h = self->lstm.forward(self->window(tail, 0));
    const auto z = logits(h);
    return static_cast<int>(std::max_element(z.begin(), z.end()) - z.begin());
  }
};

InvocationClassifier::InvocationClassifier(Options options)
    : impl_(std::make_unique<Impl>(options)) {}
InvocationClassifier::~InvocationClassifier() = default;

void InvocationClassifier::fit(std::span<const double> counts) { impl_->train(counts); }

int InvocationClassifier::predict_bucket(std::span<const double> recent) const {
  return impl_->classify(recent);
}

double InvocationClassifier::predict_next(std::span<const double> recent) const {
  const int bucket = impl_->classify(recent);
  // Upper bound of the bucket, then the +3% compensation of §VII-C2.
  const double upper = static_cast<double>((bucket + 1) * impl_->opts.bucket_size);
  return upper * (1.0 + impl_->opts.compensation);
}

const InvocationClassifier::Options& InvocationClassifier::options() const {
  return impl_->opts;
}

}  // namespace smiless::predictor
