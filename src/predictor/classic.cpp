#include "predictor/classic.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "math/fft.hpp"
#include "math/matrix.hpp"
#include "math/stats.hpp"

namespace smiless::predictor {

namespace {

std::vector<double> difference(std::span<const double> s, int d) {
  std::vector<double> cur(s.begin(), s.end());
  for (int k = 0; k < d; ++k) {
    if (cur.size() < 2) return {};
    std::vector<double> next(cur.size() - 1);
    for (std::size_t i = 1; i < cur.size(); ++i) next[i - 1] = cur[i] - cur[i - 1];
    cur = std::move(next);
  }
  return cur;
}

}  // namespace

ArimaPredictor::ArimaPredictor(int p, int d) : p_(p), d_(d) {
  SMILESS_CHECK(p >= 1 && d >= 0);
}

void ArimaPredictor::fit(std::span<const double> series) {
  const auto diffed = difference(series, d_);
  const auto p = static_cast<std::size_t>(p_);
  if (diffed.size() < p + 2) {
    trained_ = false;
    return;
  }
  const std::size_t rows = diffed.size() - p;
  math::Matrix design(rows, p + 1);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t lag = 0; lag < p; ++lag) design(r, lag) = diffed[r + p - 1 - lag];
    design(r, p) = 1.0;  // intercept
    y[r] = diffed[r + p];
  }
  try {
    coef_ = math::solve_least_squares(design, y);
    trained_ = true;
    drift_ = 0.0;
  } catch (const CheckError&) {
    // Degenerate design (e.g. the differenced series is constant): fall
    // back to a drift model, predicting last + mean difference.
    trained_ = false;
    drift_ = 0.0;
    for (double v : diffed) drift_ += v;
    drift_ /= static_cast<double>(diffed.size());
  }
}

double ArimaPredictor::predict_next(std::span<const double> recent) const {
  if (recent.empty()) return 0.0;
  if (!trained_) return std::max(0.0, recent.back() + (d_ >= 1 ? drift_ : 0.0));
  const auto diffed = difference(recent, d_);
  const auto p = static_cast<std::size_t>(p_);
  if (diffed.size() < p) return recent.back();

  double dnext = coef_[p];
  for (std::size_t lag = 0; lag < p; ++lag)
    dnext += coef_[lag] * diffed[diffed.size() - 1 - lag];

  // Integrate back: one-step-ahead needs only the last value of each
  // difference level below d.
  double forecast = dnext;
  for (int k = d_ - 1; k >= 0; --k) {
    const auto lvl = difference(recent, k);
    if (lvl.empty()) return recent.back();
    forecast += lvl.back();
  }
  return std::max(0.0, forecast);
}

FipPredictor::FipPredictor(std::size_t top_k, std::size_t fit_window)
    : top_k_(top_k), fit_window_(fit_window) {
  SMILESS_CHECK(top_k >= 1 && fit_window >= 8);
}

void FipPredictor::fit(std::span<const double>) {
  // FIP is refit on the recent window at prediction time.
}

double FipPredictor::predict_next(std::span<const double> recent) const {
  if (recent.size() < 8) return recent.empty() ? 0.0 : recent.back();
  // Use the largest power-of-two tail: zero-padding a non-power-of-two
  // window would corrupt the harmonic amplitudes and phases.
  std::size_t n = 8;
  while (n * 2 <= std::min(fit_window_, recent.size())) n *= 2;
  const std::span<const double> window = recent.subspan(recent.size() - n, n);
  // Reconstruct the periodic extension and read the sample one step past the
  // training window.
  const auto series = math::harmonic_extrapolate(window, top_k_, n + 1);
  return std::max(0.0, series[n]);
}

double MovingAveragePredictor::predict_next(std::span<const double> recent) const {
  if (recent.empty()) return 0.0;
  const std::size_t n = std::min(horizon_, recent.size());
  double s = 0.0;
  for (std::size_t i = recent.size() - n; i < recent.size(); ++i) s += recent[i];
  return s / static_cast<double>(n);
}

}  // namespace smiless::predictor
