#pragma once

#include <functional>
#include <vector>

#include "obs/event.hpp"

namespace smiless::obs {

/// Synchronous in-simulation event bus. Producers hold a nullable
/// `EventBus*` and publish only when it is non-null, so a disabled run pays
/// one pointer test per site. The bus both retains the full event stream (for
/// the exporters, which need ordered replay) and fans out to registered
/// sinks (for online consumers such as the metric registry).
///
/// Publishing happens strictly from simulation callbacks, which the engine
/// runs single-threaded, so no synchronisation is needed; the recorded order
/// IS the deterministic simulation order.
class EventBus {
 public:
  using Sink = std::function<void(const Event&)>;

  void publish(const Event& event) {
    events_.push_back(event);
    for (const auto& sink : sinks_) sink(event);
  }

  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<Event> events_;
  std::vector<Sink> sinks_;
};

}  // namespace smiless::obs
