#pragma once

#include <cstdint>
#include <ostream>

#include "obs/event.hpp"

namespace smiless::obs {

class EventBus;

/// Live NDJSON event stream (DESIGN.md §16): one JSON object per line,
/// written and flushed as each event fires. This is the serving-mode
/// counterpart of the post-hoc Perfetto export — same Event vocabulary,
/// but streamed so an operator (or the CI serve smoke) can tail the run
/// while it is in flight.
///
/// Line schema, in fixed key order:
///   {"type": <event_type_name>, "t": <sim seconds>, ...}
/// followed by "t2"/"value" when non-zero, "app"/"node"/"request"/
/// "instance"/"machine" when >= 0, and "count" when non-zero — i.e. only
/// fields the event type actually set (event.hpp documents the per-type
/// meanings). All values are simulation-domain; no wall-clock field exists,
/// so the stream for a given trajectory is byte-stable regardless of
/// speedup. tests/golden/serve_stream.ndjson pins the format.
class StreamSink {
 public:
  /// `out` must outlive the sink (and the bus it is attached to).
  explicit StreamSink(std::ostream* out);

  /// Subscribe to `bus`; every published event becomes one flushed line.
  void attach(EventBus& bus);

  /// Format and write one event (attach() wires this as the bus sink; it is
  /// public so tests and replays can format events directly).
  void write(const Event& e);

  std::uint64_t lines() const { return lines_; }

 private:
  std::ostream* out_;  ///< not owned
  std::uint64_t lines_ = 0;
};

}  // namespace smiless::obs
