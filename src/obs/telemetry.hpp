#pragma once

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/json.hpp"
#include "obs/audit.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/timeseries.hpp"

namespace smiless::obs {

/// Per-run observability bundle: the event bus producers publish to, a
/// metric registry fed online from that bus (per-event-type counters plus
/// wait/inference/init/e2e latency histograms keyed by app and node), and
/// the policy decision audit log. Exporters render the retained event stream
/// into artifacts after the run. One Telemetry belongs to one experiment
/// cell; cross-cell artifacts are produced by the exp-layer artifact writers,
/// which iterate cells in deterministic order.
class Telemetry {
 public:
  Telemetry();

  EventBus& bus() { return bus_; }
  const EventBus& bus() const { return bus_; }
  MetricRegistry& registry() { return registry_; }
  const MetricRegistry& registry() const { return registry_; }
  AuditLog& audit() { return audit_; }
  const AuditLog& audit() const { return audit_; }

  /// Name the tracks for a deployed app: display name + DAG node names in
  /// NodeId order. Must be called before that app's events are interpreted
  /// by name (metrics use the names as keys). `sla` (seconds; 0 = none)
  /// feeds the time series' slo_attainment accounting.
  void register_app(int app, std::string name, std::vector<std::string> node_names,
                    double sla = 0.0);

  const std::map<int, AppTrackInfo>& apps() const { return apps_; }

  /// Start the fixed-cadence sim-time series (see timeseries.hpp). Call
  /// before the run; no-op repeat calls with the same cadence are fine.
  void enable_series(double cadence) { series_.enable(cadence); }
  bool series_enabled() const { return series_.enabled(); }
  /// Close the series' trailing bins at the run horizon. Idempotent.
  void finalize_series(double end) { series_.finalize(end); }
  const TimeSeries& series() const { return series_; }
  /// Serialized time series (requires enable_series + finalize_series).
  json::Value series_json() const { return series_.to_json(apps_); }

  /// Chrome trace-event array for this run (see perfetto.hpp).
  json::Value perfetto_json(int pid_base = 0, const std::string& label = "") const;
  /// Counters / gauges / histograms with deterministic p50/p90/p95/p99.
  json::Value metrics_json() const;
  /// Policy decision records (solver wall time excluded).
  json::Value audit_json() const;

 private:
  void on_event(const Event& e);
  std::string app_label(int app) const;
  std::string node_label(int app, int node) const;

  EventBus bus_;
  MetricRegistry registry_;
  AuditLog audit_;
  TimeSeries series_;
  std::map<int, AppTrackInfo> apps_;
  // (app, node, request) -> time the invocation became ready, for queue-wait.
  std::map<std::tuple<int, int, int>, double> ready_at_;
};

}  // namespace smiless::obs
