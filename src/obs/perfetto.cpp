#include "obs/perfetto.hpp"

#include <algorithm>
#include <set>
#include <tuple>

namespace smiless::obs {

namespace {

constexpr double kUsPerSec = 1e6;

std::string app_name(const std::map<int, AppTrackInfo>& apps, int app) {
  const auto it = apps.find(app);
  if (it != apps.end() && !it->second.name.empty()) return it->second.name;
  return "app" + std::to_string(app);
}

std::string node_name(const std::map<int, AppTrackInfo>& apps, int app, int node) {
  const auto it = apps.find(app);
  if (it != apps.end() && node >= 0 &&
      static_cast<std::size_t>(node) < it->second.node_names.size())
    return it->second.node_names[static_cast<std::size_t>(node)];
  return "node" + std::to_string(node);
}

json::Value meta_event(const char* what, int pid, int tid, const std::string& name) {
  auto v = json::Value::object();
  v["ph"] = "M";
  v["name"] = what;
  v["pid"] = pid;
  if (tid >= 0) v["tid"] = tid;
  auto args = json::Value::object();
  args["name"] = name;
  v["args"] = std::move(args);
  return v;
}

json::Value slice(const std::string& name, int pid, int tid, double start, double end) {
  auto v = json::Value::object();
  v["ph"] = "X";
  v["name"] = name;
  v["pid"] = pid;
  v["tid"] = tid;
  v["ts"] = start * kUsPerSec;
  v["dur"] = (end - start) * kUsPerSec;
  return v;
}

json::Value instant(const std::string& name, int pid, int tid, double t) {
  auto v = json::Value::object();
  v["ph"] = "i";
  v["name"] = name;
  v["pid"] = pid;
  v["tid"] = tid;
  v["ts"] = t * kUsPerSec;
  v["s"] = "t";  // thread-scoped instant
  return v;
}

json::Value flow(const char* ph, long long id, int pid, int tid, double t) {
  auto v = json::Value::object();
  v["ph"] = ph;
  v["cat"] = "request";
  v["name"] = "request";
  v["id"] = id;
  v["pid"] = pid;
  v["tid"] = tid;
  v["ts"] = t * kUsPerSec;
  if (ph[0] == 'f') v["bp"] = "e";
  return v;
}

}  // namespace

json::Value perfetto_trace(const std::vector<Event>& events,
                           const std::map<int, AppTrackInfo>& apps, int pid_base,
                           const std::string& label) {
  auto out = json::Value::array();
  const std::string prefix = label.empty() ? std::string() : label + "/";
  constexpr int kGatewayTid = 1;

  // --- Track discovery (deterministic: sets, not hash maps) ---------------
  std::set<int> machines;
  std::set<int> app_ids;
  // (app, node, instance) -> tid, assigned by sorted order below.
  std::map<std::tuple<int, int, int>, int> instance_tid;
  for (const auto& e : events) {
    if (e.type == EventType::MachineUp || e.type == EventType::MachineDown)
      machines.insert(e.machine);
    if (e.app >= 0) app_ids.insert(e.app);
    if (e.app >= 0 && e.instance >= 0)
      instance_tid.emplace(std::make_tuple(e.app, e.node, e.instance), 0);
  }
  for (const auto& [id, info] : apps) {
    (void)info;
    app_ids.insert(id);
  }
  {
    std::map<int, int> next_tid;  // per app
    for (auto& [key, tid] : instance_tid) {
      const int app = std::get<0>(key);
      auto [it, inserted] = next_tid.emplace(app, 2);
      tid = it->second++;
      (void)inserted;
    }
  }
  const auto app_pid = [&](int app) { return pid_base + 1 + app; };

  // --- Metadata ------------------------------------------------------------
  if (!machines.empty()) {
    out.push_back(meta_event("process_name", pid_base, -1, prefix + "cluster"));
    for (const int m : machines)
      out.push_back(
          meta_event("thread_name", pid_base, m + 1, "machine " + std::to_string(m)));
  }
  for (const int a : app_ids) {
    out.push_back(meta_event("process_name", app_pid(a), -1, prefix + app_name(apps, a)));
    out.push_back(meta_event("thread_name", app_pid(a), kGatewayTid, "gateway"));
  }
  for (const auto& [key, tid] : instance_tid) {
    const auto [app, node, inst] = key;
    out.push_back(meta_event("thread_name", app_pid(app), tid,
                             node_name(apps, app, node) + "#" + std::to_string(inst)));
  }

  // --- Slices and instants, in event-stream (= simulation) order ----------
  std::map<int, double> down_since;
  for (const auto& e : events) {
    switch (e.type) {
      case EventType::BatchEnd: {
        const int tid = instance_tid.at(std::make_tuple(e.app, e.node, e.instance));
        auto v = slice(node_name(apps, e.app, e.node), app_pid(e.app), tid, e.t2, e.t);
        auto args = json::Value::object();
        args["batch"] = e.count;
        args["request"] = e.request;
        v["args"] = std::move(args);
        out.push_back(std::move(v));
        break;
      }
      case EventType::InstanceReady: {
        const int tid = instance_tid.at(std::make_tuple(e.app, e.node, e.instance));
        out.push_back(slice("init", app_pid(e.app), tid, e.t2, e.t));
        break;
      }
      case EventType::InstanceInitFailed: {
        const int tid = instance_tid.at(std::make_tuple(e.app, e.node, e.instance));
        out.push_back(slice("init failed", app_pid(e.app), tid, e.t2, e.t));
        break;
      }
      case EventType::InstanceTerminated:
      case EventType::InstanceEvicted: {
        const int tid = instance_tid.at(std::make_tuple(e.app, e.node, e.instance));
        const char* name = e.type == EventType::InstanceEvicted ? "evict" : "terminate";
        out.push_back(instant(name, app_pid(e.app), tid, e.t));
        break;
      }
      case EventType::RequestSubmitted:
        out.push_back(instant("submit #" + std::to_string(e.request), app_pid(e.app),
                              kGatewayTid, e.t));
        break;
      case EventType::RequestCompleted:
        out.push_back(instant("complete #" + std::to_string(e.request), app_pid(e.app),
                              kGatewayTid, e.t));
        break;
      case EventType::RequestFailed:
        out.push_back(instant("fail #" + std::to_string(e.request), app_pid(e.app),
                              kGatewayTid, e.t));
        break;
      case EventType::PrewarmFired:
        out.push_back(instant("prewarm " + node_name(apps, e.app, e.node), app_pid(e.app),
                              kGatewayTid, e.t));
        break;
      case EventType::RetryScheduled:
        out.push_back(instant("retry " + node_name(apps, e.app, e.node), app_pid(e.app),
                              kGatewayTid, e.t));
        break;
      case EventType::TimeoutFired:
        out.push_back(instant("timeout #" + std::to_string(e.request), app_pid(e.app),
                              kGatewayTid, e.t));
        break;
      case EventType::MachineDown:
        down_since[e.machine] = e.t;
        break;
      case EventType::MachineUp: {
        const auto it = down_since.find(e.machine);
        if (it != down_since.end()) {
          out.push_back(slice("down", pid_base, e.machine + 1, it->second, e.t));
          down_since.erase(it);
        }
        break;
      }
      default:
        break;  // PrewarmSkipped / StragglerInjected etc.: counters only
    }
  }
  // Machines still down at end of trace: mark with an instant.
  for (const auto& [machine, since] : down_since)
    out.push_back(instant("down", pid_base, machine + 1, since));

  // --- Flow arrows: one chain per multi-stage request ---------------------
  // (app, request) -> spans as (start, node, instance), collected in event
  // order then sorted by (start, node) so the chain follows DAG execution.
  std::map<std::pair<int, int>, std::vector<std::tuple<double, int, int>>> chains;
  for (const auto& e : events) {
    if (e.type != EventType::InvocationDone) continue;
    chains[{e.app, e.request}].emplace_back(e.t2, e.node, e.instance);
  }
  for (auto& [key, spans] : chains) {
    if (spans.size() < 2) continue;
    std::sort(spans.begin(), spans.end());
    const auto [app, request] = key;
    const long long flow_id =
        static_cast<long long>(app_pid(app)) * 1000000LL + request;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const auto [start, node, inst] = spans[i];
      const int tid = instance_tid.at(std::make_tuple(app, node, inst));
      const char* ph = i == 0 ? "s" : (i + 1 == spans.size() ? "f" : "t");
      out.push_back(flow(ph, flow_id, app_pid(app), tid, start));
    }
  }

  return out;
}

}  // namespace smiless::obs
