#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace smiless::obs {

/// One policy decision with the inputs that drove it. `kind` is
/// "reoptimize" (full StrategyOptimizer pass over the DAG), "autoscale"
/// (burst Autoscaler solve) or "scale-in" (return to the baseline plan after
/// a calm period). `chosen` is a human-readable summary of the selected
/// configuration ("vgg16=cpu4/prewarm resnet=gpu20/keepalive").
struct DecisionRecord {
  double t = 0.0;
  std::string policy;
  std::string kind;
  int app = -1;
  double interarrival = 0.0;
  double predicted_count = 0.0;
  double sla = 0.0;
  std::string chosen;
  double prewarm_window = 0.0;
  double est_cost = 0.0;
  bool feasible = true;
  std::uint64_t nodes_explored = 0;
  /// Wall-clock spent inside the solver for this decision. Deliberately
  /// excluded from to_json(): it is the one nondeterministic field, kept only
  /// for the Fig. 16-style overhead accounting.
  double solver_seconds = 0.0;

  json::Value to_json() const;
  static DecisionRecord from_json(const json::Value& v);
};

/// Append-only audit log of policy decisions, plus the self-profiling
/// aggregate over solver wall time that bench_fig16_overhead reports.
class AuditLog {
 public:
  void record(DecisionRecord rec);

  const std::vector<DecisionRecord>& records() const { return records_; }
  std::uint64_t solver_calls() const { return solver_calls_; }
  double total_solver_seconds() const { return total_solver_seconds_; }

  /// {"decisions": [...]} — deterministic (solver wall time excluded).
  json::Value to_json() const;
  static AuditLog from_json(const json::Value& v);

 private:
  std::vector<DecisionRecord> records_;
  std::uint64_t solver_calls_ = 0;
  double total_solver_seconds_ = 0.0;
};

}  // namespace smiless::obs
