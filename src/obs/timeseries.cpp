#include "obs/timeseries.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "math/stats.hpp"

namespace smiless::obs {

void TimeSeries::enable(double cadence) {
  SMILESS_CHECK_MSG(cadence > 0.0, "series cadence must be > 0");
  if (cadence_ > 0.0) {
    SMILESS_CHECK_MSG(cadence_ == cadence, "series cadence changed mid-run");
    return;
  }
  SMILESS_CHECK_MSG(closed_.empty() && last_t_ == 0.0, "enable after events");
  cadence_ = cadence;
  bin_end_ = cadence;
}

void TimeSeries::set_app_sla(int app, double sla) { slas_[app] = sla; }

void TimeSeries::accumulate(double until) {
  const double dt = until - last_t_;
  if (dt > 0.0) {
    active_sec_ += dt * static_cast<double>(init_ + warm_ + busy_);
    busy_sec_ += dt * static_cast<double>(busy_);
    last_t_ = until;
  }
}

void TimeSeries::close_bin() {
  cur_.t = bin_end_;
  cur_.instances_init = init_;
  cur_.instances_warm = warm_;
  cur_.instances_busy = busy_;
  cur_.machines_busy = busy_machines_;
  cur_.queue_depth = queue_total_;
  cur_.p99 = cur_e2e_.empty() ? 0.0 : math::percentile(cur_e2e_, 99);
  cur_.utilization = active_sec_ > 0.0 ? busy_sec_ / active_sec_ : 0.0;
  cur_.cost_rate = active_sec_ / cadence_;
  closed_.push_back(cur_);
  for (auto& [key, series] : fn_series_) {
    const auto it = fn_queue_.find(key);
    series.push_back(it != fn_queue_.end() ? static_cast<double>(it->second) : 0.0);
  }
  cur_ = Bin{};
  cur_e2e_.clear();
  active_sec_ = 0.0;
  busy_sec_ = 0.0;
  bin_end_ += cadence_;
}

void TimeSeries::advance_to(double t) {
  SMILESS_CHECK_MSG(t >= last_t_, "time series saw time run backwards");
  // Right-inclusive bins: an event at exactly k*cadence belongs to bin k,
  // so a bin only closes once time moves strictly past its end.
  while (t > bin_end_) {
    accumulate(bin_end_);
    close_bin();
  }
  accumulate(t);
}

void TimeSeries::machine_add(int machine) {
  if (machine < 0) return;
  if (++machine_instances_[machine] == 1) ++busy_machines_;
}

void TimeSeries::machine_remove(int machine) {
  if (machine < 0) return;
  const auto it = machine_instances_.find(machine);
  if (it == machine_instances_.end()) return;
  if (--it->second <= 0) {
    machine_instances_.erase(it);
    --busy_machines_;
  }
}

void TimeSeries::remove_instance(const std::tuple<int, int, int>& key) {
  const auto it = instances_.find(key);
  if (it == instances_.end()) return;
  switch (it->second.state) {
    case 0: --init_; break;
    case 1: --warm_; break;
    default: --busy_; break;
  }
  machine_remove(it->second.machine);
  instances_.erase(it);
}

void TimeSeries::queue_erase(int app, int request, int node_or_minus1) {
  if (node_or_minus1 >= 0) {
    const auto it = queued_.find({app, request, node_or_minus1});
    if (it == queued_.end()) return;
    --fn_queue_[{app, node_or_minus1}];
    --queue_total_;
    queued_.erase(it);
    return;
  }
  // Strip every outstanding invocation of a failed request. The key order
  // (app, request, node) clusters them into one contiguous range.
  auto it = queued_.lower_bound({app, request, 0});
  while (it != queued_.end() && std::get<0>(it->first) == app &&
         std::get<1>(it->first) == request) {
    --fn_queue_[{app, std::get<2>(it->first)}];
    --queue_total_;
    it = queued_.erase(it);
  }
}

void TimeSeries::on_event(const Event& e) {
  if (!enabled() || finalized_) return;
  advance_to(e.t);
  switch (e.type) {
    case EventType::RequestSubmitted:
      ++cur_.arrivals;
      break;
    case EventType::RequestCompleted: {
      ++cur_.completions;
      const double e2e = e.t - e.t2;
      cur_e2e_.push_back(e2e);
      const auto it = slas_.find(e.app);
      const double sla = it != slas_.end() ? it->second : 0.0;
      if (sla <= 0.0 || e2e <= sla) ++cur_.slo_attained;
      break;
    }
    case EventType::RequestFailed:
      ++cur_.failures;
      queue_erase(e.app, e.request, -1);
      break;
    case EventType::InvocationReady:
      if (queued_.emplace(std::make_tuple(e.app, e.request, e.node), 1).second) {
        auto [fit, inserted] = fn_queue_.emplace(std::make_pair(e.app, e.node), 0);
        if (inserted || fn_series_.find(fit->first) == fn_series_.end())
          fn_series_.emplace(fit->first, std::vector<double>(closed_.size(), 0.0));
        ++fit->second;
        ++queue_total_;
      }
      break;
    case EventType::InvocationDone:
      queue_erase(e.app, e.request, e.node);
      break;
    case EventType::InstanceCreated: {
      ++cur_.cold_starts;
      ++init_;
      instances_[std::make_tuple(e.app, e.node, e.instance)] = InstanceRec{0, e.machine};
      machine_add(e.machine);
      break;
    }
    case EventType::InstanceReady: {
      const auto it = instances_.find(std::make_tuple(e.app, e.node, e.instance));
      if (it != instances_.end() && it->second.state == 0) {
        it->second.state = 1;
        --init_;
        ++warm_;
      }
      break;
    }
    case EventType::BatchStart: {
      const auto it = instances_.find(std::make_tuple(e.app, e.node, e.instance));
      if (it != instances_.end() && it->second.state == 1) {
        it->second.state = 2;
        --warm_;
        ++busy_;
      }
      break;
    }
    case EventType::BatchEnd: {
      const auto it = instances_.find(std::make_tuple(e.app, e.node, e.instance));
      if (it != instances_.end() && it->second.state == 2) {
        it->second.state = 1;
        --busy_;
        ++warm_;
      }
      break;
    }
    case EventType::InstanceInitFailed:
    case EventType::InstanceTerminated:
    case EventType::InstanceEvicted:
      remove_instance(std::make_tuple(e.app, e.node, e.instance));
      break;
    default:
      break;
  }
}

void TimeSeries::finalize(double end) {
  if (!enabled() || finalized_) return;
  finalized_ = true;
  SMILESS_CHECK(end >= last_t_);
  // Close every bin whose range intersects [0, end]; the final bin's
  // weighted integrals stop at `end` (its census gauges are still the
  // state at that moment).
  while (bin_end_ < end) {
    accumulate(bin_end_);
    close_bin();
  }
  accumulate(end);
  close_bin();
}

json::Value TimeSeries::to_json(const std::map<int, AppTrackInfo>& apps) const {
  SMILESS_CHECK_MSG(finalized_, "series exported before finalize()");
  json::Value doc = json::Value::object();
  doc["cadence"] = cadence_;
  doc["bins"] = static_cast<long long>(closed_.size());

  auto column = [this](auto&& get) {
    json::Value arr = json::Value::array();
    for (const Bin& b : closed_) arr.push_back(json::Value(get(b)));
    return arr;
  };
  doc["t"] = column([](const Bin& b) { return b.t; });
  doc["arrivals"] = column([](const Bin& b) { return static_cast<long long>(b.arrivals); });
  doc["completions"] =
      column([](const Bin& b) { return static_cast<long long>(b.completions); });
  doc["failures"] = column([](const Bin& b) { return static_cast<long long>(b.failures); });
  doc["slo_attainment"] = column([](const Bin& b) {
    return b.completions == 0
               ? 1.0
               : static_cast<double>(b.slo_attained) / static_cast<double>(b.completions);
  });
  doc["p99_latency"] = column([](const Bin& b) { return b.p99; });
  doc["cold_starts"] =
      column([](const Bin& b) { return static_cast<long long>(b.cold_starts); });
  doc["instances_init"] =
      column([](const Bin& b) { return static_cast<long long>(b.instances_init); });
  doc["instances_warm"] =
      column([](const Bin& b) { return static_cast<long long>(b.instances_warm); });
  doc["instances_busy"] =
      column([](const Bin& b) { return static_cast<long long>(b.instances_busy); });
  doc["machines_busy"] =
      column([](const Bin& b) { return static_cast<long long>(b.machines_busy); });
  doc["queue_depth"] =
      column([](const Bin& b) { return static_cast<long long>(b.queue_depth); });
  doc["utilization"] = column([](const Bin& b) { return b.utilization; });
  doc["cost_rate"] = column([](const Bin& b) { return b.cost_rate; });

  auto label = [&apps](int app, int node) {
    std::string a = "app" + std::to_string(app);
    std::string n = "node" + std::to_string(node);
    const auto it = apps.find(app);
    if (it != apps.end()) {
      if (!it->second.name.empty()) a = it->second.name;
      if (node >= 0 && static_cast<std::size_t>(node) < it->second.node_names.size())
        n = it->second.node_names[static_cast<std::size_t>(node)];
    }
    return a + "/" + n;
  };
  json::Value fns = json::Value::array();
  for (const auto& [key, series] : fn_series_) {
    json::Value v = json::Value::object();
    v["function"] = label(key.first, key.second);
    json::Value arr = json::Value::array();
    for (const double d : series) arr.push_back(json::Value(d));
    v["queue_depth"] = std::move(arr);
    fns.push_back(std::move(v));
  }
  doc["functions"] = std::move(fns);
  return doc;
}

}  // namespace smiless::obs
