#include "obs/audit.hpp"

namespace smiless::obs {

json::Value DecisionRecord::to_json() const {
  auto v = json::Value::object();
  v["t"] = t;
  v["policy"] = policy;
  v["kind"] = kind;
  v["app"] = app;
  v["interarrival"] = interarrival;
  v["predicted_count"] = predicted_count;
  v["sla"] = sla;
  v["chosen"] = chosen;
  v["prewarm_window"] = prewarm_window;
  v["est_cost"] = est_cost;
  v["feasible"] = feasible;
  v["nodes_explored"] = nodes_explored;
  return v;
}

DecisionRecord DecisionRecord::from_json(const json::Value& v) {
  DecisionRecord r;
  r.t = v.get("t", r.t);
  r.policy = v.get("policy", r.policy);
  r.kind = v.get("kind", r.kind);
  r.app = v.get("app", r.app);
  r.interarrival = v.get("interarrival", r.interarrival);
  r.predicted_count = v.get("predicted_count", r.predicted_count);
  r.sla = v.get("sla", r.sla);
  r.chosen = v.get("chosen", r.chosen);
  r.prewarm_window = v.get("prewarm_window", r.prewarm_window);
  r.est_cost = v.get("est_cost", r.est_cost);
  r.feasible = v.get("feasible", r.feasible);
  r.nodes_explored = static_cast<std::uint64_t>(
      v.get("nodes_explored", static_cast<long long>(r.nodes_explored)));
  return r;
}

void AuditLog::record(DecisionRecord rec) {
  if (rec.kind == "reoptimize" || rec.kind == "autoscale") {
    ++solver_calls_;
    total_solver_seconds_ += rec.solver_seconds;
  }
  records_.push_back(std::move(rec));
}

json::Value AuditLog::to_json() const {
  auto v = json::Value::object();
  auto decisions = json::Value::array();
  for (const auto& r : records_) decisions.push_back(r.to_json());
  v["decisions"] = std::move(decisions);
  return v;
}

AuditLog AuditLog::from_json(const json::Value& v) {
  AuditLog log;
  if (const auto* decisions = v.find("decisions")) {
    for (const auto& d : decisions->items()) log.record(DecisionRecord::from_json(d));
  }
  return log;
}

}  // namespace smiless::obs
