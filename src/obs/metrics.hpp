#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "common/json.hpp"

namespace smiless::obs {

/// Fixed-bucket log-scale histogram covering 1e-4 .. 1e4 seconds with 8
/// buckets per decade, plus underflow/overflow buckets. The bucket layout is
/// compile-time fixed, so two histograms built from the same samples in any
/// split are bit-identical after merge(), and quantiles are deterministic:
/// quantile() uses the nearest-rank definition from math/stats and returns a
/// bucket upper bound clamped to the observed [min, max]. That makes p50/p99
/// independent of sample arrival order and of how work was sharded across
/// threads — the property the raw-sample percentile helpers cannot give us.
class Histogram {
 public:
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kDecades = 8;           // 1e-4 .. 1e4
  static constexpr double kMinValue = 1e-4;
  // underflow + log-scale buckets + overflow
  static constexpr int kNumBuckets = kDecades * kBucketsPerDecade + 2;

  void add(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  /// Nearest-rank quantile, p in [0,100]. Returns 0 when empty.
  double quantile(double p) const;

  /// Upper bound of bucket i (inclusive); the value that quantile() reports
  /// for samples landing in that bucket.
  static double bucket_upper(int i);
  /// Bucket index a value falls into.
  static int bucket_index(double value);

  void merge(const Histogram& other);

  /// {"count", "sum", "min", "max", "p50", "p90", "p95", "p99",
  ///  "buckets": [[index, count], ...]} — buckets are sparse, ordered by index.
  json::Value to_json() const;

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named counters, gauges and histograms. Keys are hierarchical slash paths
/// ("e2e/wl1", "faults/init_failures"); std::map keeps serialization order
/// independent of insertion order, so merged registries dump byte-identically
/// however the cells were scheduled.
class MetricRegistry {
 public:
  void count(const std::string& name, std::uint64_t delta = 1) { counters_[name] += delta; }
  void gauge(const std::string& name, double value) { gauges_[name] = value; }
  void observe(const std::string& name, double value) { histograms_[name].add(value); }

  std::uint64_t counter(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  const Histogram* histogram(const std::string& name) const;

  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  /// Counters add, gauges take the other's value, histograms merge.
  void merge(const MetricRegistry& other);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}
  json::Value to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace smiless::obs
