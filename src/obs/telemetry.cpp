#include "obs/telemetry.hpp"

namespace smiless::obs {

Telemetry::Telemetry() {
  bus_.add_sink([this](const Event& e) { on_event(e); });
}

void Telemetry::register_app(int app, std::string name, std::vector<std::string> node_names,
                             double sla) {
  apps_[app] = AppTrackInfo{std::move(name), std::move(node_names)};
  series_.set_app_sla(app, sla);
}

std::string Telemetry::app_label(int app) const {
  const auto it = apps_.find(app);
  if (it != apps_.end() && !it->second.name.empty()) return it->second.name;
  return "app" + std::to_string(app);
}

std::string Telemetry::node_label(int app, int node) const {
  const auto it = apps_.find(app);
  if (it != apps_.end() && node >= 0 &&
      static_cast<std::size_t>(node) < it->second.node_names.size())
    return it->second.node_names[static_cast<std::size_t>(node)];
  return "node" + std::to_string(node);
}

void Telemetry::on_event(const Event& e) {
  series_.on_event(e);  // one branch when the series is disabled
  registry_.count(std::string("events/") + event_type_name(e.type));
  switch (e.type) {
    case EventType::InvocationReady:
      ready_at_[std::make_tuple(e.app, e.node, e.request)] = e.t;
      break;
    case EventType::InvocationDone: {
      const std::string key = app_label(e.app) + "/" + node_label(e.app, e.node);
      registry_.observe("infer/" + key, e.t - e.t2);
      const auto it = ready_at_.find(std::make_tuple(e.app, e.node, e.request));
      if (it != ready_at_.end()) {
        registry_.observe("wait/" + key, e.t2 - it->second);
        ready_at_.erase(it);
      }
      break;
    }
    case EventType::InstanceReady:
      registry_.observe("init/" + app_label(e.app) + "/" + node_label(e.app, e.node),
                        e.t - e.t2);
      break;
    case EventType::RequestCompleted:
      registry_.observe("e2e/" + app_label(e.app), e.t - e.t2);
      break;
    default:
      break;
  }
}

json::Value Telemetry::perfetto_json(int pid_base, const std::string& label) const {
  return perfetto_trace(bus_.events(), apps_, pid_base, label);
}

json::Value Telemetry::metrics_json() const { return registry_.to_json(); }

json::Value Telemetry::audit_json() const { return audit_.to_json(); }

}  // namespace smiless::obs
