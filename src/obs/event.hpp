#pragma once

/// Structured event vocabulary for the observability subsystem.
///
/// Producers (Platform, FaultInjector, policies) publish plain-data Event
/// records through a nullable EventBus pointer; with no bus attached the
/// publish site is a single branch, so simulation trajectories are identical
/// whether observability is on or off. Every field is simulation-domain data
/// (sim seconds, entity ids) — no wall-clock values ever enter an Event, which
/// is what keeps exported artifacts byte-stable across thread counts.

namespace smiless::obs {

enum class EventType {
  RequestSubmitted,
  RequestCompleted,
  RequestFailed,
  InvocationReady,
  InvocationDone,
  BatchStart,
  BatchEnd,
  InstanceCreated,
  InstanceReady,
  InstanceInitFailed,
  InstanceTerminated,
  InstanceEvicted,
  MachineUp,
  MachineDown,
  PrewarmFired,
  PrewarmSkipped,
  RetryScheduled,
  TimeoutFired,
  StragglerInjected,
};

/// Stable lower-snake name for an event type (used as metric keys and in the
/// exported JSON, so renames are format changes).
const char* event_type_name(EventType type);

/// One simulation event. Meaning of the generic fields per type:
///  - t   is always the simulation time the event was published.
///  - t2  is a second timestamp where the event closes an interval
///        (e.g. InstanceReady.t2 = creation time, RequestCompleted.t2 =
///        arrival time, BatchEnd.t2 = execution start).
///  - value carries a duration or magnitude (sampled init time, retry
///        backoff delay, straggler inflation factor).
///  - count carries a small integer (batch size, retry attempt number).
/// Unused fields stay at their defaults.
struct Event {
  EventType type = EventType::RequestSubmitted;
  double t = 0.0;
  double t2 = 0.0;
  int app = -1;
  int node = -1;
  int request = -1;
  int instance = -1;
  int machine = -1;
  double value = 0.0;
  int count = 0;
};

}  // namespace smiless::obs
