#pragma once

#include <vector>

#include "obs/telemetry.hpp"

namespace smiless::obs {

/// One lane's contribution to a sharded cell's merged telemetry
/// (DESIGN.md §14). The lane's Platform published events with *lane-local*
/// ids: app ids are deploy indices inside the lane and machine ids index the
/// lane's private cluster slice. `app_map` and `machine_base` translate both
/// back into the cell's global id spaces. Request and instance ids need no
/// translation — they are scoped per (app, node) by construction, so the app
/// remap alone makes them globally unambiguous.
struct LaneTelemetry {
  const Telemetry* telemetry = nullptr;   ///< the lane's bundle (required)
  const std::vector<int>* app_map = nullptr;  ///< lane-local app id -> global app id
  int machine_base = 0;  ///< global id of the lane's first machine
};

/// Deterministically merge per-lane telemetry into `dst`, which must already
/// have its apps registered under their *global* ids.
///
/// Events are k-way merged by (t, lane index, per-lane order) — each lane's
/// stream is nondecreasing in t, so this is a stable time-merge with the
/// lane index breaking cross-lane ties — and re-published through dst's bus,
/// so dst's online sinks (metric registry, queue-wait bookkeeping) observe
/// the merged stream exactly as if one monolithic platform had produced it.
/// Audit records merge under the same (t, lane, order) rule with their app
/// field remapped. The output is a pure function of the lane streams: it is
/// byte-identical at any thread count, and for a single lane with an
/// identity map it reproduces the lane's own stream verbatim.
void merge_lanes(const std::vector<LaneTelemetry>& lanes, Telemetry& dst);

}  // namespace smiless::obs
