#pragma once

/// Fixed-cadence simulation-time series over the obs event stream — the
/// data plane for the HTML serving report and (eventually) the live view.
///
/// A TimeSeries subscribes to the cell's Telemetry bus and folds every
/// event into right-inclusive bins ((k-1)*cadence, k*cadence], recording per
/// bin:
///   arrivals / completions / failures  - request flow counts
///   slo_attainment                     - completed within the app SLA
///                                        (apps without an SLA always attain)
///   p99_latency                        - nearest-rank p99 of the bin's e2e
///   cold_starts                        - InstanceCreated count
///   instances_init / warm / busy       - container census at bin close
///   machines_busy                      - machines hosting >= 1 container
///   queue_depth                        - ready-or-executing invocations at
///                                        bin close (total + per function)
///   utilization                        - busy instance-seconds over active
///                                        instance-seconds inside the bin
///   cost_rate                          - active instance-seconds per second
///                                        (multiply by a unit price for $/s)
///
/// Every input is simulation-domain (event times, ids) — no wall clock —
/// so the series is byte-identical at any --threads/--lane-threads/--lanes
/// setting. Under sharding the lanes' buses are republished through the
/// destination Telemetry by obs::merge_lanes in deterministic (t, lane,
/// order) order, so a series attached to the merged Telemetry is the
/// merge-associative fold of the lane streams: series(merge(lanes)) ==
/// series(monolithic stream) whenever the streams are equal, which the
/// sharding invariance suite asserts.
///
/// The cadence is a serialized experiment knob (ExperimentConfig::obs);
/// disabled (cadence 0) the series costs one branch per event.

#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "obs/event.hpp"
#include "obs/perfetto.hpp"

namespace smiless::obs {

class TimeSeries {
 public:
  /// Start recording with the given cadence (sim seconds, > 0). Must be
  /// called before any event is observed. Idempotent for the same cadence.
  void enable(double cadence);

  bool enabled() const { return cadence_ > 0.0; }
  double cadence() const { return cadence_; }

  /// SLA (seconds) used for the app's slo_attainment accounting; 0 or
  /// negative means "no SLA" and every completion attains.
  void set_app_sla(int app, double sla);

  /// Fold one event. Event times must be nondecreasing (bus order).
  void on_event(const Event& e);

  /// Close every bin through ceil(end/cadence); call once after the run.
  void finalize(double end);

  /// Number of closed bins (valid after finalize()).
  std::size_t bins() const { return closed_.size(); }

  /// Serialized series; `apps` supplies display names for the per-function
  /// breakdown (same map Telemetry uses for its other exporters).
  json::Value to_json(const std::map<int, AppTrackInfo>& apps) const;

 private:
  struct Bin {
    double t = 0.0;  ///< bin close time (k * cadence)
    long arrivals = 0;
    long completions = 0;
    long failures = 0;
    long slo_attained = 0;
    double p99 = 0.0;
    long cold_starts = 0;
    long instances_init = 0;
    long instances_warm = 0;
    long instances_busy = 0;
    long machines_busy = 0;
    long queue_depth = 0;
    double utilization = 0.0;
    double cost_rate = 0.0;
  };

  struct InstanceRec {
    int state = 0;  ///< 0 init, 1 warm, 2 busy
    int machine = -1;
  };

  void advance_to(double t);
  void accumulate(double until);
  void close_bin();
  void remove_instance(const std::tuple<int, int, int>& key);
  void machine_add(int machine);
  void machine_remove(int machine);
  void queue_erase(int app, int request, int node_or_minus1);

  double cadence_ = 0.0;
  double bin_end_ = 0.0;  ///< close time of the bin currently accumulating
  double last_t_ = 0.0;   ///< time the weighted integrals are advanced to
  bool finalized_ = false;

  // Current gauges (simulation state reconstructed from events).
  long init_ = 0, warm_ = 0, busy_ = 0;
  long busy_machines_ = 0;
  long queue_total_ = 0;
  std::map<std::tuple<int, int, int>, InstanceRec> instances_;  ///< (app,node,id)
  std::map<int, long> machine_instances_;
  std::map<std::pair<int, int>, long> fn_queue_;            ///< (app,node) -> depth
  std::map<std::tuple<int, int, int>, int> queued_;         ///< (app,request,node)
  std::map<int, double> slas_;

  // Current-bin accumulators.
  Bin cur_;
  std::vector<double> cur_e2e_;
  double active_sec_ = 0.0;  ///< integral of (init+warm+busy) dt in the bin
  double busy_sec_ = 0.0;    ///< integral of busy dt in the bin

  std::vector<Bin> closed_;
  /// Per-function queue-depth gauge per closed bin; functions appearing
  /// mid-run are backfilled with zeros.
  std::map<std::pair<int, int>, std::vector<double>> fn_series_;
};

}  // namespace smiless::obs
