#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/event.hpp"

namespace smiless::obs {

/// Track naming for one deployed application: the app's display name plus
/// its DAG node names in NodeId order (used to label instance tracks and
/// batch slices).
struct AppTrackInfo {
  std::string name;
  std::vector<std::string> node_names;
};

/// Render an event stream as a Chrome/Perfetto trace-event JSON array
/// (loadable at ui.perfetto.dev). Layout:
///  - process `pid_base`     : the cluster; one thread per machine (tid =
///                             machine + 1) carrying machine down/up slices.
///  - process `pid_base+1+a` : application `a`; tid 1 is the request gateway
///                             (submit/complete/fail/prewarm/retry/timeout
///                             instants), tids >= 2 are instance tracks with
///                             init and batch-execution slices. Instance tids
///                             are assigned by sorted (node, instance) so the
///                             mapping is independent of event order.
///  - flow arrows ("s"/"t"/"f") connect the per-node slices of each request
///    that traversed more than one DAG stage.
/// Timestamps are simulation seconds scaled to microseconds; the output is a
/// pure function of the event stream, so it is byte-stable across runs.
/// `pid_base` offsets every pid so multiple cells can share one trace file;
/// a non-empty `label` is prefixed onto process names.
json::Value perfetto_trace(const std::vector<Event>& events,
                           const std::map<int, AppTrackInfo>& apps, int pid_base = 0,
                           const std::string& label = "");

}  // namespace smiless::obs
