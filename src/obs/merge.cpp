#include "obs/merge.hpp"

#include <cstddef>
#include <limits>

#include "common/check.hpp"

namespace smiless::obs {

namespace {

int remap_app(const std::vector<int>* app_map, int app) {
  if (app < 0 || app_map == nullptr) return app;
  SMILESS_CHECK(static_cast<std::size_t>(app) < app_map->size());
  return (*app_map)[app];
}

}  // namespace

void merge_lanes(const std::vector<LaneTelemetry>& lanes, Telemetry& dst) {
  for (const auto& lane : lanes) SMILESS_CHECK(lane.telemetry != nullptr);

  // --- events: k-way stable time-merge, lane index breaks ties --------------
  std::vector<std::size_t> cursor(lanes.size(), 0);
  for (;;) {
    std::size_t best = lanes.size();
    double best_t = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      const auto& events = lanes[l].telemetry->bus().events();
      if (cursor[l] >= events.size()) continue;
      const double t = events[cursor[l]].t;
      if (t < best_t) {  // strict: on a tie the lowest lane index wins
        best_t = t;
        best = l;
      }
    }
    if (best == lanes.size()) break;
    Event e = lanes[best].telemetry->bus().events()[cursor[best]++];
    e.app = remap_app(lanes[best].app_map, e.app);
    if (e.machine >= 0) e.machine += lanes[best].machine_base;
    dst.bus().publish(e);
  }

  // --- audit: same merge rule, app field remapped ---------------------------
  std::vector<std::size_t> acursor(lanes.size(), 0);
  for (;;) {
    std::size_t best = lanes.size();
    double best_t = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      const auto& records = lanes[l].telemetry->audit().records();
      if (acursor[l] >= records.size()) continue;
      const double t = records[acursor[l]].t;
      if (t < best_t) {
        best_t = t;
        best = l;
      }
    }
    if (best == lanes.size()) break;
    DecisionRecord rec = lanes[best].telemetry->audit().records()[acursor[best]++];
    rec.app = remap_app(lanes[best].app_map, rec.app);
    dst.audit().record(std::move(rec));
  }
}

}  // namespace smiless::obs
