#include "obs/event.hpp"

namespace smiless::obs {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::RequestSubmitted: return "request_submitted";
    case EventType::RequestCompleted: return "request_completed";
    case EventType::RequestFailed: return "request_failed";
    case EventType::InvocationReady: return "invocation_ready";
    case EventType::InvocationDone: return "invocation_done";
    case EventType::BatchStart: return "batch_start";
    case EventType::BatchEnd: return "batch_end";
    case EventType::InstanceCreated: return "instance_created";
    case EventType::InstanceReady: return "instance_ready";
    case EventType::InstanceInitFailed: return "instance_init_failed";
    case EventType::InstanceTerminated: return "instance_terminated";
    case EventType::InstanceEvicted: return "instance_evicted";
    case EventType::MachineUp: return "machine_up";
    case EventType::MachineDown: return "machine_down";
    case EventType::PrewarmFired: return "prewarm_fired";
    case EventType::PrewarmSkipped: return "prewarm_skipped";
    case EventType::RetryScheduled: return "retry_scheduled";
    case EventType::TimeoutFired: return "timeout_fired";
    case EventType::StragglerInjected: return "straggler_injected";
  }
  return "unknown";
}

}  // namespace smiless::obs
