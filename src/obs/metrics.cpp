#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/stats.hpp"

namespace smiless::obs {

int Histogram::bucket_index(double value) {
  if (!(value >= kMinValue)) return 0;  // underflow (also NaN / negatives)
  const double pos = std::log10(value / kMinValue) * kBucketsPerDecade;
  const int idx = static_cast<int>(std::floor(pos));
  if (idx >= kDecades * kBucketsPerDecade) return kNumBuckets - 1;  // overflow
  return idx + 1;
}

double Histogram::bucket_upper(int i) {
  if (i <= 0) return kMinValue;
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kMinValue * std::pow(10.0, static_cast<double>(i) / kBucketsPerDecade);
}

void Histogram::add(double value) {
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::quantile(double p) const {
  if (count_ == 0) return 0.0;
  const std::uint64_t rank = math::nearest_rank(count_, p);
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      // Report the bucket's upper bound, clamped to the observed range so the
      // result is always a plausible sample value (and finite).
      return std::clamp(bucket_upper(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (int i = 0; i < kNumBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
  count_ += other.count_;
  sum_ += other.sum_;
}

json::Value Histogram::to_json() const {
  auto v = json::Value::object();
  v["count"] = count_;
  v["sum"] = sum_;
  v["min"] = min_;
  v["max"] = max_;
  v["mean"] = mean();
  v["p50"] = quantile(50.0);
  v["p90"] = quantile(90.0);
  v["p95"] = quantile(95.0);
  v["p99"] = quantile(99.0);
  auto buckets = json::Value::array();
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[static_cast<std::size_t>(i)] == 0) continue;
    auto pair = json::Value::array();
    pair.push_back(json::Value(i));
    pair.push_back(json::Value(buckets_[static_cast<std::size_t>(i)]));
    buckets.push_back(std::move(pair));
  }
  v["buckets"] = std::move(buckets);
  return v;
}

std::uint64_t MetricRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricRegistry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* MetricRegistry::histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] = v;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

json::Value MetricRegistry::to_json() const {
  auto v = json::Value::object();
  auto counters = json::Value::object();
  for (const auto& [name, value] : counters_) counters[name] = value;
  v["counters"] = std::move(counters);
  auto gauges = json::Value::object();
  for (const auto& [name, value] : gauges_) gauges[name] = value;
  v["gauges"] = std::move(gauges);
  auto hists = json::Value::object();
  for (const auto& [name, h] : histograms_) hists[name] = h.to_json();
  v["histograms"] = std::move(hists);
  return v;
}

}  // namespace smiless::obs
